package beesim

// Fault-plan determinism: arming the fault injector must not weaken the
// worker-count contract. The availability sweep's exports (series CSV,
// ledger JSONL, metrics CSV) and faulted deployment replicas are
// byte-identical at workers 1, 2 and 8, and an empty plan reproduces
// the fault-free exports exactly.

import (
	"bytes"
	"reflect"
	"testing"

	"beesim/internal/deployment"
	"beesim/internal/experiments"
	"beesim/internal/faults"
	"beesim/internal/ledger"
	"beesim/internal/obs"
	"beesim/internal/report"
)

// chaosPlan is a plan exercising every fault class at once.
func chaosPlan() faults.Plan {
	return faults.Plan{
		Seed: 21,
		Link: faults.LinkFaults{
			DropProb: 0.2,
			Outages:  []faults.Window{{StartS: 4 * 3600, DurationS: 3600}},
			Bursts:   []faults.Burst{{Window: faults.Window{StartS: 12 * 3600, DurationS: 1800}, DropProb: 0.9}},
		},
		Node:    faults.NodeFaults{Crashes: []faults.Window{{StartS: 18 * 3600, DurationS: 900}}, RebootS: 300},
		Battery: faults.BatteryFaults{Brownouts: []faults.Window{{StartS: 14 * 3600, DurationS: 1200}}},
		Sensors: faults.SensorFaults{DropProb: 0.1},
	}
}

// renderAvailabilitySweep flattens an availability sweep's observable
// output — series CSV, ledger JSONL, metrics CSV — into one byte slice.
func renderAvailabilitySweep(t *testing.T, workers int) []byte {
	t.Helper()
	cfg, err := experiments.DefaultAvailabilityConfig()
	if err != nil {
		t.Fatal(err)
	}
	cfg.Step = 50 // coarse client grid keeps the inner sweeps fast
	cfg.AvailSteps = 4
	cfg.Workers = workers
	cfg.Metrics = obs.NewRegistry()
	cfg.Ledger = ledger.New()
	pts, err := experiments.AvailabilitySweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	edge, cloud, crossover, delivered, uploadP50, uploadP99, err := experiments.AvailabilitySeries(pts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := report.WriteSeriesCSV(&buf, "availability", edge, cloud, crossover, delivered, uploadP50, uploadP99); err != nil {
		t.Fatal(err)
	}
	if err := cfg.Ledger.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if err := report.WriteMetricsCSV(&buf, maskWorkers(cfg.Metrics.Snapshot())); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestAvailabilitySweepDeterministicAcrossWorkers extends the sweep
// byte-identity contract to the fault layer's flagship experiment.
func TestAvailabilitySweepDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("availability sweep runs many inner sweeps; run without -short")
	}
	want := renderAvailabilitySweep(t, determinismWorkers[0])
	if len(want) == 0 {
		t.Fatal("empty render")
	}
	for _, w := range determinismWorkers[1:] {
		if got := renderAvailabilitySweep(t, w); !bytes.Equal(got, want) {
			t.Errorf("workers=%d availability sweep diverged from workers=1 (%d vs %d bytes)",
				w, len(got), len(want))
		}
	}
}

// TestFaultedReplicasDeterministicAcrossWorkers: a replica ensemble
// run under a full chaos plan is identical at every worker count.
func TestFaultedReplicasDeterministicAcrossWorkers(t *testing.T) {
	plan := chaosPlan()
	cfg := deployment.DefaultConfig()
	cfg.Days = 1
	cfg.Faults = &plan
	want, err := deployment.RunReplicas(cfg, 3, determinismWorkers[0])
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range determinismWorkers[1:] {
		got, err := deployment.RunReplicas(cfg, 3, w)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d faulted replica traces diverged from workers=1", w)
		}
	}
}

// TestEmptyPlanExportsMatchFaultFree: the acceptance gate for golden
// outputs — a nil plan and an armed-but-empty plan produce
// byte-identical ledger JSONL and metrics CSV for a full deployment
// day.
func TestEmptyPlanExportsMatchFaultFree(t *testing.T) {
	render := func(plan *faults.Plan) []byte {
		cfg := deployment.DefaultConfig()
		cfg.Days = 1
		cfg.Faults = plan
		cfg.Metrics = obs.NewRegistry()
		cfg.Ledger = ledger.New()
		if _, err := deployment.Run(cfg); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := cfg.Ledger.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		if err := report.WriteMetricsCSV(&buf, cfg.Metrics.Snapshot()); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	clean := render(nil)
	empty := render(&faults.Plan{})
	if !bytes.Equal(clean, empty) {
		t.Fatalf("empty plan changed the exports (%d vs %d bytes)", len(empty), len(clean))
	}
}
