package beesim

import (
	"math"
	"testing"
	"time"
)

// The root package is a façade; these tests pin the public API surface
// and its headline numbers so downstream users get a stable contract.

func TestServiceFacade(t *testing.T) {
	svc, err := NewService(CNN, DefaultPeriod)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(svc.EdgeOnlyCycle)-367.5) > 0.2 {
		t.Fatalf("edge-only cycle = %v", svc.EdgeOnlyCycle)
	}
	if math.Abs(float64(svc.EdgeCloudCycle)-322.0) > 0.2 {
		t.Fatalf("edge+cloud cycle = %v", svc.EdgeCloudCycle)
	}
}

func TestRecommendFacade(t *testing.T) {
	svc, err := NewService(CNN, DefaultPeriod)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := Recommend(5, DefaultServer(35), svc, Losses{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Placement != EdgeOnly {
		t.Fatalf("5 hives recommended %v, want edge", rec.Placement)
	}
	rec, err = Recommend(1500, DefaultServer(35), svc, Losses{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Placement != EdgeCloud {
		t.Fatalf("1500 hives recommended %v, want edge+cloud", rec.Placement)
	}
}

func TestAllocateFacade(t *testing.T) {
	svc, err := NewService(SVM, DefaultPeriod)
	if err != nil {
		t.Fatal(err)
	}
	alloc, err := Allocate(100, DefaultServer(10), svc, PaperLosses(false, false, false), FillSequential)
	if err != nil {
		t.Fatal(err)
	}
	if alloc.NumServers() != 1 {
		t.Fatalf("servers = %d", alloc.NumServers())
	}
}

func TestAveragePowerFacade(t *testing.T) {
	if p := AveragePower(5 * time.Minute); math.Abs(float64(p)-1.19) > 0.01 {
		t.Fatalf("average power at 5 min = %v, want 1.19 W", p)
	}
}

func TestTraceFacade(t *testing.T) {
	cfg := DefaultTraceConfig()
	cfg.Days = 1
	tr, err := RunTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Wakeups == 0 {
		t.Fatal("no wakeups")
	}
}

func TestQueenDetectionFacade(t *testing.T) {
	cfg := DefaultAudioConfig()
	cfg.Seconds = 1
	corpus, err := SynthesizeCorpus(cfg, 40)
	if err != nil {
		t.Fatal(err)
	}
	det, err := TrainSVMDetector(corpus, AudioSampleRate, 1)
	if err != nil {
		t.Fatal(err)
	}
	if det.Metrics.Accuracy < 0.85 {
		t.Fatalf("SVM detector accuracy = %v", det.Metrics.Accuracy)
	}
}

func TestExperimentEntryPoints(t *testing.T) {
	if _, err := TableI(); err != nil {
		t.Fatal(err)
	}
	if _, err := TableII(); err != nil {
		t.Fatal(err)
	}
	pts := Figure3()
	if len(pts) != 6 {
		t.Fatalf("figure 3 points = %d", len(pts))
	}
	st, err := RoutineStats(50)
	if err != nil {
		t.Fatal(err)
	}
	if st.Routines != 50 {
		t.Fatal("routine stats lost count")
	}
}
