package beesim_test

import (
	"fmt"
	"log"
	"time"

	"beesim"
)

// The placement question for a single apiary: where should 500 hives run
// their queen-detection model?
func ExampleRecommend() {
	svc, err := beesim.NewService(beesim.CNN, beesim.DefaultPeriod)
	if err != nil {
		log.Fatal(err)
	}
	rec, err := beesim.Recommend(500, beesim.DefaultServer(35), svc, beesim.Losses{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("placement: %v\n", rec.Placement)
	fmt.Printf("edge: %.1f J/hive/cycle, edge+cloud: %.1f J/hive/cycle\n",
		float64(rec.EdgeOnlyPerClient), float64(rec.EdgeCloudPerClient))
	// Output:
	// placement: edge+cloud
	// edge: 367.5 J/hive/cycle, edge+cloud: 361.6 J/hive/cycle
}

// The per-cycle cost profile of the paper's Tables I and II.
func ExampleNewService() {
	svc, err := beesim.NewService(beesim.SVM, beesim.DefaultPeriod)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s\n", svc.Name)
	fmt.Printf("edge scenario:       %.1f J per cycle\n", float64(svc.EdgeOnlyCycle))
	fmt.Printf("edge+cloud scenario: %.1f J per cycle at the hive\n", float64(svc.EdgeCloudCycle))
	// Output:
	// queen detection (SVM)
	// edge scenario:       366.3 J per cycle
	// edge+cloud scenario: 322.0 J per cycle at the hive
}

// Figure 3's question: what does a wake-up period cost in average power?
func ExampleAveragePower() {
	for _, minutes := range []int{5, 120} {
		p := beesim.AveragePower(time.Duration(minutes) * time.Minute)
		fmt.Printf("every %3d min: %.2f W\n", minutes, float64(p))
	}
	// Output:
	// every   5 min: 1.19 W
	// every 120 min: 0.65 W
}

// Allocating a fleet onto servers with the paper's sequential policy.
func ExampleAllocate() {
	svc, err := beesim.NewService(beesim.CNN, beesim.DefaultPeriod)
	if err != nil {
		log.Fatal(err)
	}
	alloc, err := beesim.Allocate(400, beesim.DefaultServer(10), svc,
		beesim.Losses{}, beesim.FillSequential)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("servers: %d\n", alloc.NumServers())
	fmt.Printf("first server carries %d hives\n", alloc.Servers[0].Clients())
	// Output:
	// servers: 3
	// first server carries 180 hives
}

// Planning a multi-service bundle: heavy services offload first.
func ExamplePlanServices() {
	plan, err := beesim.PlanServices(beesim.ServiceBundle{
		Kinds:  []beesim.ServiceKind{beesim.QueenDetectionService, beesim.BeeCountingService},
		Period: 30 * time.Minute,
	}, 3000, beesim.DefaultServer(35), beesim.Losses{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bee counting runs at: %v\n", plan.Decisions[beesim.BeeCountingService])
	// Output:
	// bee counting runs at: edge+cloud
}

// The orchestration optimizer: least energy within a freshness bound.
func ExampleOptimize() {
	res, err := beesim.Optimize(beesim.OptimizerRequirements{
		Hives:        50,
		Services:     []beesim.ServiceKind{beesim.QueenDetectionService},
		MaxStaleness: 30 * time.Minute,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wake every %v\n", res.Best.Period)
	// Output:
	// wake every 30m0s
}

// Counting bees on a synthesized entrance image.
func ExampleCountBees() {
	scene, err := beesim.SynthesizeEntranceImage(8, 3)
	if err != nil {
		log.Fatal(err)
	}
	count := beesim.CountBees(scene.Image)
	fmt.Printf("truth %d, counted within one: %v\n", len(scene.Bees),
		count >= len(scene.Bees)-1 && count <= len(scene.Bees)+1)
	// Output:
	// truth 8, counted within one: true
}
