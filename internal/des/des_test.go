package des

import (
	"testing"
	"time"
)

var t0 = time.Date(2023, 4, 10, 0, 0, 0, 0, time.UTC)

func TestAfterOrdering(t *testing.T) {
	s := New(t0)
	var order []int
	if _, err := s.After(2*time.Second, func() { order = append(order, 2) }); err != nil {
		t.Fatal(err)
	}
	if _, err := s.After(1*time.Second, func() { order = append(order, 1) }); err != nil {
		t.Fatal(err)
	}
	if _, err := s.After(3*time.Second, func() { order = append(order, 3) }); err != nil {
		t.Fatal(err)
	}
	s.Run(t0.Add(time.Minute))
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
}

func TestTieBreakIsFIFO(t *testing.T) {
	s := New(t0)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		if _, err := s.At(t0.Add(time.Second), func() { order = append(order, i) }); err != nil {
			t.Fatal(err)
		}
	}
	s.Run(t0.Add(time.Minute))
	for i, v := range order {
		if v != i {
			t.Fatalf("tie break not FIFO: %v", order)
		}
	}
}

func TestClockAdvances(t *testing.T) {
	s := New(t0)
	var seen time.Time
	if _, err := s.After(90*time.Second, func() { seen = s.Now() }); err != nil {
		t.Fatal(err)
	}
	s.Run(t0.Add(time.Hour))
	if !seen.Equal(t0.Add(90 * time.Second)) {
		t.Fatalf("handler saw clock %v", seen)
	}
	if !s.Now().Equal(t0.Add(time.Hour)) {
		t.Fatalf("final clock = %v, want horizon", s.Now())
	}
}

func TestSchedulePastRejected(t *testing.T) {
	s := New(t0)
	if _, err := s.At(t0.Add(-time.Second), func() {}); err == nil {
		t.Fatal("past scheduling accepted")
	}
	if _, err := s.After(-time.Second, func() {}); err == nil {
		t.Fatal("negative delay accepted")
	}
}

func TestCancel(t *testing.T) {
	s := New(t0)
	fired := false
	e, err := s.After(time.Second, func() { fired = true })
	if err != nil {
		t.Fatal(err)
	}
	e.Cancel()
	s.Run(t0.Add(time.Minute))
	if fired {
		t.Fatal("cancelled event fired")
	}
	if s.Fired() != 0 {
		t.Fatalf("Fired = %d, want 0", s.Fired())
	}
}

func TestHorizonStopsBeforeLaterEvents(t *testing.T) {
	s := New(t0)
	fired := false
	if _, err := s.After(2*time.Hour, func() { fired = true }); err != nil {
		t.Fatal(err)
	}
	s.Run(t0.Add(time.Hour))
	if fired {
		t.Fatal("event beyond horizon fired")
	}
	if !s.Now().Equal(t0.Add(time.Hour)) {
		t.Fatalf("clock = %v, want horizon", s.Now())
	}
	if s.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", s.Pending())
	}
	// A later Run picks the event up.
	s.Run(t0.Add(3 * time.Hour))
	if !fired {
		t.Fatal("event not fired on resumed run")
	}
}

func TestEvery(t *testing.T) {
	s := New(t0)
	count := 0
	stop, err := s.Every(10*time.Minute, func() { count++ })
	if err != nil {
		t.Fatal(err)
	}
	s.Run(t0.Add(time.Hour))
	if count != 6 {
		t.Fatalf("ticks in 1 h at 10 min = %d, want 6", count)
	}
	stop()
	s.Run(t0.Add(2 * time.Hour))
	if count != 6 {
		t.Fatalf("ticks after stop = %d, want 6", count)
	}
}

func TestEveryStopFromHandler(t *testing.T) {
	s := New(t0)
	count := 0
	var stop func()
	var err error
	stop, err = s.Every(time.Minute, func() {
		count++
		if count == 3 {
			stop()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Run(t0.Add(time.Hour))
	if count != 3 {
		t.Fatalf("count = %d, want 3 (stop from handler)", count)
	}
}

func TestEveryRejectsBadPeriod(t *testing.T) {
	s := New(t0)
	if _, err := s.Every(0, func() {}); err == nil {
		t.Fatal("zero period accepted")
	}
}

func TestStop(t *testing.T) {
	s := New(t0)
	count := 0
	if _, err := s.After(time.Second, func() { count++; s.Stop() }); err != nil {
		t.Fatal(err)
	}
	if _, err := s.After(2*time.Second, func() { count++ }); err != nil {
		t.Fatal(err)
	}
	s.Run(t0.Add(time.Minute))
	if count != 1 {
		t.Fatalf("count = %d, want 1 after Stop", count)
	}
}

func TestStepOnEmpty(t *testing.T) {
	s := New(t0)
	if s.Step() {
		t.Fatal("Step on empty calendar reported an event")
	}
}

func TestNestedScheduling(t *testing.T) {
	// A handler scheduling more events models routine chains.
	s := New(t0)
	var times []time.Duration
	if _, err := s.After(time.Second, func() {
		times = append(times, s.Now().Sub(t0))
		if _, err := s.After(2*time.Second, func() {
			times = append(times, s.Now().Sub(t0))
		}); err != nil {
			t.Error(err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	s.Run(t0.Add(time.Minute))
	if len(times) != 2 || times[0] != time.Second || times[1] != 3*time.Second {
		t.Fatalf("times = %v", times)
	}
}

func TestProcessChain(t *testing.T) {
	s := New(t0)
	p := NewProcess(s)
	var marks []time.Duration
	err := p.Then(10*time.Second, func(p *Process) {
		marks = append(marks, s.Now().Sub(t0))
		if err := p.Then(5*time.Second, func(p *Process) {
			marks = append(marks, s.Now().Sub(t0))
			p.Finish()
		}); err != nil {
			t.Error(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Run(t0.Add(time.Minute))
	if len(marks) != 2 || marks[0] != 10*time.Second || marks[1] != 15*time.Second {
		t.Fatalf("marks = %v", marks)
	}
	if !p.Done() {
		t.Fatal("process not done")
	}
	if err := p.Then(time.Second, func(*Process) {}); err == nil {
		t.Fatal("Then after Finish accepted")
	}
}

func TestProcessFinishSuppressesPending(t *testing.T) {
	s := New(t0)
	p := NewProcess(s)
	fired := false
	if err := p.Then(10*time.Second, func(*Process) { fired = true }); err != nil {
		t.Fatal(err)
	}
	p.Finish()
	s.Run(t0.Add(time.Minute))
	if fired {
		t.Fatal("stage ran after Finish")
	}
}

func TestRunForAdvancesRelative(t *testing.T) {
	s := New(t0)
	s.RunFor(30 * time.Minute)
	if !s.Now().Equal(t0.Add(30 * time.Minute)) {
		t.Fatalf("clock = %v", s.Now())
	}
}

func TestManyEventsHeapStress(t *testing.T) {
	s := New(t0)
	const n = 10000
	count := 0
	// Insert in a scrambled deterministic order.
	for i := 0; i < n; i++ {
		d := time.Duration((i*7919)%n) * time.Millisecond
		if _, err := s.After(d, func() { count++ }); err != nil {
			t.Fatal(err)
		}
	}
	last := s.Now()
	for s.Step() {
		if s.Now().Before(last) {
			t.Fatal("clock went backwards")
		}
		last = s.Now()
	}
	if count != n {
		t.Fatalf("fired %d, want %d", count, n)
	}
}

// TestEverySteadyStateNoAlloc pins the event-arena win: once a
// recurring timer reaches steady state, each tick recycles its pooled
// event instead of allocating a new one, so a long Every loop runs
// allocation-free.
func TestEverySteadyStateNoAlloc(t *testing.T) {
	s := New(t0)
	ticks := 0
	if _, err := s.Every(time.Second, func() { ticks++ }); err != nil {
		t.Fatal(err)
	}
	s.RunFor(10 * time.Second) // warm the free list
	if allocs := testing.AllocsPerRun(50, func() {
		s.RunFor(20 * time.Second)
	}); allocs != 0 {
		t.Fatalf("steady-state Every loop allocates %v per RunFor, want 0", allocs)
	}
	if ticks != 10+50*20+20 { // warmup + AllocsPerRun runs (incl. its one extra warmup run)
		t.Fatalf("ticks = %d", ticks)
	}
}

// TestEveryStopAfterRecycleIsNoOp is the recycle-safety property of
// the pooled recurrence: a stop handle whose event already fired (and
// whose arena slot now carries a different timer) must not cancel the
// new occupant. Loop A stops itself from inside its own handler — the
// exact window where its current event has been recycled — while loop
// B, scheduled into the reused slot, must keep ticking.
func TestEveryStopAfterRecycleIsNoOp(t *testing.T) {
	s := New(t0)
	ticksA, ticksB := 0, 0
	var stopA func()
	stopA, err := s.Every(time.Second, func() {
		ticksA++
		if ticksA == 3 {
			stopA()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Every(time.Second, func() { ticksB++ }); err != nil {
		t.Fatal(err)
	}
	s.RunFor(10 * time.Second)
	if ticksA != 3 {
		t.Fatalf("stopped loop ticked %d times, want 3", ticksA)
	}
	if ticksB != 10 {
		t.Fatalf("surviving loop ticked %d times, want 10 (stale cancel hit a recycled event)", ticksB)
	}
}

// TestEveryStopTwiceSafe checks a stop handle is idempotent and that
// stopping after many recycles cancels the right (current) event.
func TestEveryStopTwiceSafe(t *testing.T) {
	s := New(t0)
	ticks := 0
	stop, err := s.Every(time.Second, func() { ticks++ })
	if err != nil {
		t.Fatal(err)
	}
	s.RunFor(5 * time.Second)
	stop()
	stop()
	s.RunFor(5 * time.Second)
	if ticks != 5 {
		t.Fatalf("ticks = %d, want 5", ticks)
	}
}

// TestPublicEventNotPooled pins the API safety line: events handed out
// by At/After are never recycled, so a caller may hold the handle and
// Cancel it long after it fired without touching any later event.
func TestPublicEventNotPooled(t *testing.T) {
	s := New(t0)
	fired := 0
	e, err := s.After(time.Second, func() { fired++ })
	if err != nil {
		t.Fatal(err)
	}
	s.RunFor(2 * time.Second)
	if fired != 1 {
		t.Fatalf("fired = %d", fired)
	}
	e.Cancel() // late cancel of an already-fired, never-pooled event
	// New work — including pooled recurrences — must be unaffected.
	later := 0
	if _, err := s.Every(time.Second, func() { later++ }); err != nil {
		t.Fatal(err)
	}
	if _, err := s.After(time.Second, func() { later++ }); err != nil {
		t.Fatal(err)
	}
	s.RunFor(3 * time.Second)
	if later != 4 {
		t.Fatalf("later events fired %d times, want 4", later)
	}
}

// TestCancelledPooledEventRecycled checks that pooled events skipped by
// cancellation (not just fired ones) return to the arena: a stopped
// recurrence's pending event is reclaimed by the next pooled schedule.
func TestCancelledPooledEventRecycled(t *testing.T) {
	s := New(t0)
	stop, err := s.Every(time.Second, func() {})
	if err != nil {
		t.Fatal(err)
	}
	stop() // cancels the pending first tick
	ticks := 0
	if _, err := s.Every(time.Second, func() { ticks++ }); err != nil {
		t.Fatal(err)
	}
	s.RunFor(3 * time.Second)
	if ticks != 3 {
		t.Fatalf("ticks = %d, want 3", ticks)
	}
	if s.Pending() != 1 { // only the live recurrence's next event
		t.Fatalf("pending = %d, want 1", s.Pending())
	}
}

// TestProcessChainPooledSteadyState checks long Then chains ride the
// arena: after the first few stages the chain stops allocating events.
func TestProcessChainPooledSteadyState(t *testing.T) {
	s := New(t0)
	p := NewProcess(s)
	hops := 0
	var hop func(*Process)
	hop = func(pr *Process) {
		hops++
		if hops < 1000 {
			if err := pr.Then(time.Second, hop); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := p.Then(time.Second, hop); err != nil {
		t.Fatal(err)
	}
	s.RunFor(2000 * time.Second)
	if hops != 1000 {
		t.Fatalf("hops = %d, want 1000", hops)
	}
}
