package des

// Observability bridge: Instrument attaches an obs.Registry and/or
// obs.Tracer to a simulation. The engine itself only carries a single
// nil-checked pointer, so an uninstrumented Sim pays one predictable
// branch per event — the property the DES-loop benchmarks in
// bench_test.go guard (<5% overhead with observability disabled).

import (
	"time"

	"beesim/internal/obs"
)

// Metric names emitted by an instrumented simulation.
const (
	MetricEventsScheduled = "des_events_scheduled_total"
	MetricEventsFired     = "des_events_fired_total"
	MetricEventsCancelled = "des_events_cancelled_total"
	MetricProcessStages   = "des_process_stages_total"
	MetricPendingEvents   = "des_pending_events"
)

type simObs struct {
	scheduled *obs.Counter
	fired     *obs.Counter
	cancelled *obs.Counter
	stages    *obs.Counter
	pending   *obs.Gauge
	tr        *obs.Tracer
	traceAll  bool
}

// Instrument wires metrics and tracing into the simulation. Either
// argument may be nil: with a nil registry the counters are no-ops,
// with a nil tracer no timeline is recorded. With both nil the call
// detaches the probes entirely — the disabled configuration costs the
// engine exactly one nil-pointer branch per event, which is what the
// DESLoop benchmarks in bench_test.go verify (<5% over the bare loop).
//
// traceEvents additionally records every scheduled/fired/cancelled
// engine event as an instant on the engine track — complete but
// verbose; per-package spans usually tell the story with far fewer
// events.
func Instrument(s *Sim, m *obs.Registry, tr *obs.Tracer, traceEvents bool) {
	if m == nil && tr == nil {
		s.o = nil
		return
	}
	s.o = &simObs{
		scheduled: m.Counter(MetricEventsScheduled),
		fired:     m.Counter(MetricEventsFired),
		cancelled: m.Counter(MetricEventsCancelled),
		stages:    m.Counter(MetricProcessStages),
		pending:   m.Gauge(MetricPendingEvents),
		tr:        tr,
		traceAll:  traceEvents,
	}
	if tr != nil {
		tr.SetThreadName(obs.TidEngine, "des engine")
	}
}

// Uninstrument detaches all probes, restoring the zero-cost path.
func Uninstrument(s *Sim) { s.o = nil }

func (o *simObs) eventScheduled(s *Sim, e *Event) {
	o.scheduled.Inc()
	o.pending.Set(float64(len(s.queue)))
	if o.traceAll {
		o.tr.Instant("event scheduled", "des", obs.TidEngine, s.now,
			map[string]any{"seq": e.seq, "at_us": e.at.Sub(s.now).Microseconds()})
	}
}

func (o *simObs) eventFired(s *Sim, e *Event) {
	o.fired.Inc()
	o.pending.Set(float64(len(s.queue)))
	if o.traceAll {
		o.tr.Instant("event fired", "des", obs.TidEngine, e.at,
			map[string]any{"seq": e.seq})
	}
}

func (o *simObs) eventCancelled(s *Sim, e *Event) {
	o.cancelled.Inc()
	o.pending.Set(float64(len(s.queue)))
	if o.traceAll {
		o.tr.Instant("event cancelled", "des", obs.TidEngine, s.now,
			map[string]any{"seq": e.seq})
	}
}

func (o *simObs) processStage(s *Sim, name, label string, stage int, d time.Duration) {
	o.stages.Inc()
	spanName := name
	if label != "" {
		spanName = name + ": " + label
	}
	o.tr.Span(spanName, "process", obs.TidEngine, s.now, d,
		map[string]any{"stage": stage})
}
