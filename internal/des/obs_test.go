package des

import (
	"bytes"
	"testing"
	"time"

	"beesim/internal/obs"
)

func obsStart() time.Time { return time.Date(2023, 4, 10, 0, 0, 0, 0, time.UTC) }

func TestInstrumentCountsEngineEvents(t *testing.T) {
	s := New(obsStart())
	m := obs.NewRegistry()
	Instrument(s, m, nil, false)

	for i := 0; i < 5; i++ {
		if _, err := s.After(time.Duration(i+1)*time.Second, func() {}); err != nil {
			t.Fatal(err)
		}
	}
	e, err := s.After(10*time.Second, func() { t.Fatal("cancelled event fired") })
	if err != nil {
		t.Fatal(err)
	}
	e.Cancel()
	s.Run(obsStart().Add(time.Minute))

	if got := m.Counter(MetricEventsScheduled).Value(); got != 6 {
		t.Fatalf("scheduled = %v, want 6", got)
	}
	if got := m.Counter(MetricEventsFired).Value(); got != 5 {
		t.Fatalf("fired = %v, want 5", got)
	}
	if got := m.Counter(MetricEventsCancelled).Value(); got != 1 {
		t.Fatalf("cancelled = %v, want 1", got)
	}
	if got := m.Gauge(MetricPendingEvents).Value(); got != 0 {
		t.Fatalf("pending gauge = %v, want 0 after drain", got)
	}
}

func TestInstrumentTraceEvents(t *testing.T) {
	s := New(obsStart())
	tr := obs.NewTracer(obsStart())
	Instrument(s, nil, tr, true)
	if _, err := s.After(time.Second, func() {}); err != nil {
		t.Fatal(err)
	}
	s.Run(obsStart().Add(time.Minute))
	// thread_name metadata + scheduled + fired
	if got := tr.Len(); got != 3 {
		t.Fatalf("trace has %d events, want 3", got)
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"event scheduled", "event fired"} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Fatalf("trace missing %q:\n%s", want, buf.String())
		}
	}
}

func TestNamedProcessEmitsSpans(t *testing.T) {
	s := New(obsStart())
	m := obs.NewRegistry()
	tr := obs.NewTracer(obsStart())
	Instrument(s, m, tr, false)

	p := NewNamedProcess(s, "recorder")
	err := p.ThenNamed("boot", 10*time.Second, func(p *Process) {
		_ = p.ThenNamed("collect", 64*time.Second, func(p *Process) { p.Finish() })
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Run(obsStart().Add(5 * time.Minute))

	if got := m.Counter(MetricProcessStages).Value(); got != 2 {
		t.Fatalf("process stages = %v, want 2", got)
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"recorder: boot", "recorder: collect"} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Fatalf("trace missing span %q:\n%s", want, buf.String())
		}
	}
}

func TestUninstrumentRestoresBarePath(t *testing.T) {
	s := New(obsStart())
	m := obs.NewRegistry()
	Instrument(s, m, nil, false)
	Uninstrument(s)
	if _, err := s.After(time.Second, func() {}); err != nil {
		t.Fatal(err)
	}
	s.Run(obsStart().Add(time.Minute))
	if got := m.Counter(MetricEventsFired).Value(); got != 0 {
		t.Fatalf("fired = %v after Uninstrument, want 0", got)
	}
}

func TestInstrumentDisabledChangesNothing(t *testing.T) {
	// The disabled configuration — Instrument with neither a registry
	// nor a tracer — must not change engine behaviour.
	run := func(instr bool) (uint64, time.Time) {
		s := New(obsStart())
		if instr {
			Instrument(s, nil, nil, false)
		}
		n := 0
		stop, err := s.Every(time.Second, func() { n++ })
		if err != nil {
			t.Fatal(err)
		}
		defer stop()
		s.Run(obsStart().Add(time.Minute))
		return s.Fired(), s.Now()
	}
	bareFired, bareNow := run(false)
	obsFired, obsNow := run(true)
	if bareFired != obsFired || !bareNow.Equal(obsNow) {
		t.Fatalf("disabled instrumentation changed the run: fired %d vs %d, now %v vs %v",
			bareFired, obsFired, bareNow, obsNow)
	}
}
