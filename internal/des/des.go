// Package des is beesim's discrete-event simulation core.
//
// Every time-domain experiment in the paper runs on this engine: the
// week-long hive trace of Figure 2 (solar, battery, weather and routine
// processes interleaved), the 319-routine measurement campaign of Section
// IV, and the per-cycle scenario timelines behind Tables I and II.
//
// The engine is a classic event-calendar design: a binary heap of timed
// events, a virtual clock that jumps from event to event, and helper
// process abstractions on top. Determinism is guaranteed by breaking
// timestamp ties with a monotonically increasing sequence number, so two
// events scheduled for the same instant always fire in scheduling order.
package des

import (
	"container/heap"
	"errors"
	"fmt"
	"time"
)

// Event is a scheduled callback.
type Event struct {
	at     time.Time
	seq    uint64
	fn     func()
	cancel bool
	index  int // heap index, -1 once popped

	// pooled events are engine-owned: scheduled by the recurring-timer
	// and process paths, recycled into the simulation's free list once
	// fired or skipped. gen counts recycles so an internal cancel
	// handle can detect (and ignore) a stale reference; events handed
	// out by the public At/After API are never pooled, so a caller
	// keeping an *Event around stays safe.
	pooled bool
	gen    uint64
}

// Cancel prevents a pending event from firing. Cancelling an event that
// already fired is a no-op.
func (e *Event) Cancel() { e.cancel = true }

// At returns the virtual time the event is scheduled for.
func (e *Event) At() time.Time { return e.at }

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if !q[i].at.Equal(q[j].at) {
		return q[i].at.Before(q[j].at)
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Sim is a discrete-event simulation. Create one with New; the zero value
// is not usable.
type Sim struct {
	now     time.Time
	queue   eventQueue
	seq     uint64
	stopped bool
	fired   uint64
	o       *simObs  // nil unless Instrument was called
	free    []*Event // recycled pooled events (the event arena)
}

// maxFreeEvents caps the event free list so a burst of recurring
// timers cannot pin an unbounded arena.
const maxFreeEvents = 1024

// New creates a simulation whose clock starts at the given virtual time.
func New(start time.Time) *Sim {
	return &Sim{now: start}
}

// Now returns the current virtual time.
func (s *Sim) Now() time.Time { return s.now }

// Fired returns the number of events executed so far (for introspection
// and tests).
func (s *Sim) Fired() uint64 { return s.fired }

// Pending returns the number of events still scheduled.
func (s *Sim) Pending() int { return len(s.queue) }

// At schedules fn at absolute virtual time t. Scheduling in the past is an
// error: the calendar cannot rewind.
func (s *Sim) At(t time.Time, fn func()) (*Event, error) {
	return s.schedule(t, fn, false)
}

// schedule is the shared scheduling path. Pooled events come from (and
// return to) the simulation's free list; only the engine-internal
// recurring/process paths may request pooling, because they never leak
// the *Event to code that could touch it after it fires.
func (s *Sim) schedule(t time.Time, fn func(), pooled bool) (*Event, error) {
	if t.Before(s.now) {
		return nil, fmt.Errorf("des: schedule at %v before now %v", t, s.now)
	}
	var e *Event
	if pooled && len(s.free) > 0 {
		e = s.free[len(s.free)-1]
		s.free[len(s.free)-1] = nil
		s.free = s.free[:len(s.free)-1]
		e.at, e.seq, e.fn, e.cancel = t, s.seq, fn, false
	} else {
		e = &Event{at: t, seq: s.seq, fn: fn, pooled: pooled}
	}
	s.seq++
	heap.Push(&s.queue, e)
	if s.o != nil {
		s.o.eventScheduled(s, e)
	}
	return e, nil
}

// recycle returns a fired or skipped pooled event to the free list,
// bumping its generation so stale internal cancel handles miss.
func (s *Sim) recycle(e *Event) {
	if !e.pooled {
		return
	}
	e.gen++
	e.fn = nil
	if len(s.free) < maxFreeEvents {
		s.free = append(s.free, e)
	}
}

// afterPooled schedules fn after delay d on a pooled event. Callers
// must not retain the returned event beyond its firing except through
// a generation-checked cancel (cancelIfGen).
func (s *Sim) afterPooled(d time.Duration, fn func()) (*Event, error) {
	if d < 0 {
		return nil, errors.New("des: negative delay")
	}
	return s.schedule(s.now.Add(d), fn, true)
}

// cancelIfGen cancels the event only if it still is the scheduling the
// caller took the handle from — a recycled (and possibly reused) event
// has a newer generation and is left untouched.
func (e *Event) cancelIfGen(gen uint64) {
	if e.gen == gen {
		e.cancel = true
	}
}

// After schedules fn after delay d from now. Negative delays are errors.
func (s *Sim) After(d time.Duration, fn func()) (*Event, error) {
	if d < 0 {
		return nil, errors.New("des: negative delay")
	}
	return s.At(s.now.Add(d), fn)
}

// Every schedules fn at period p, first firing after one period. The
// returned stop function cancels the recurrence. Periods must be positive.
func (s *Sim) Every(p time.Duration, fn func()) (stop func(), err error) {
	if p <= 0 {
		return nil, errors.New("des: non-positive period")
	}
	// The recurrence schedules on pooled events: each tick's event is
	// recycled right after it fires, so a steady-state Every loop
	// allocates nothing. The stop handle therefore pairs the latest
	// event with its generation — once the event fired and was
	// recycled (or reused elsewhere), the stale cancel is a no-op.
	var cur *Event
	var curGen uint64
	stopped := false
	var tick func()
	tick = func() {
		if stopped {
			return
		}
		fn()
		if stopped { // fn may call stop
			return
		}
		cur, _ = s.afterPooled(p, tick) // never fails in a handler: delay > 0
		curGen = cur.gen
	}
	cur, err = s.afterPooled(p, tick)
	if err != nil {
		return nil, err
	}
	curGen = cur.gen
	return func() {
		stopped = true
		if cur != nil {
			cur.cancelIfGen(curGen)
		}
	}, nil
}

// Stop makes the current Run return after the in-flight event completes.
func (s *Sim) Stop() { s.stopped = true }

// Step fires the single earliest pending event and advances the clock to
// it. It reports whether an event was fired.
func (s *Sim) Step() bool {
	for len(s.queue) > 0 {
		e := heap.Pop(&s.queue).(*Event)
		if e.cancel {
			if s.o != nil {
				s.o.eventCancelled(s, e)
			}
			s.recycle(e)
			continue
		}
		s.now = e.at
		s.fired++
		if s.o != nil {
			s.o.eventFired(s, e)
		}
		fn := e.fn
		// Recycle before running the handler: e is already popped and
		// engine-owned, so the handler (which may schedule its own
		// successor — the Every recurrence) can reuse it immediately.
		s.recycle(e)
		fn()
		return true
	}
	return false
}

// Run executes events until the calendar is empty, Stop is called, or the
// clock would pass the horizon. The clock finishes exactly at the horizon
// when it is the limiting factor.
func (s *Sim) Run(horizon time.Time) {
	s.stopped = false
	for !s.stopped {
		// Peek: don't execute events beyond the horizon.
		next := s.peek()
		if next == nil {
			break
		}
		if next.at.After(horizon) {
			s.now = horizon
			return
		}
		s.Step()
	}
	if s.now.Before(horizon) && s.peek() == nil && !s.stopped {
		s.now = horizon
	}
}

// RunFor executes events for a virtual duration d from the current time.
func (s *Sim) RunFor(d time.Duration) { s.Run(s.now.Add(d)) }

// peek returns the earliest non-cancelled event without popping it.
func (s *Sim) peek() *Event {
	for len(s.queue) > 0 {
		e := s.queue[0]
		if !e.cancel {
			return e
		}
		heap.Pop(&s.queue)
		if s.o != nil {
			s.o.eventCancelled(s, e)
		}
		s.recycle(e)
	}
	return nil
}

// Process is a resumable sequential activity built from chained delays; it
// models things like "boot, collect for 64 s, transfer, shut down" without
// goroutines, keeping the engine single-threaded and deterministic.
type Process struct {
	sim   *Sim
	done  bool
	name  string
	stage int
}

// NewProcess creates a process bound to the simulation.
func NewProcess(s *Sim) *Process { return &Process{sim: s} }

// NewNamedProcess creates a process whose stages appear as spans in the
// simulation's trace (if one is attached via Instrument).
func NewNamedProcess(s *Sim, name string) *Process { return &Process{sim: s, name: name} }

// Then schedules the next stage after d. Chained stages run sequentially:
// each stage receives the process so it can schedule its successor.
// Calling Then on a finished process is a no-op returning an error.
func (p *Process) Then(d time.Duration, stage func(*Process)) error {
	return p.ThenNamed("", d, stage)
}

// ThenNamed is Then with a label: on an instrumented simulation the
// stage appears as a [now, now+d) span in the trace, named after the
// process (and the label, when given).
func (p *Process) ThenNamed(label string, d time.Duration, stage func(*Process)) error {
	if p.done {
		return errors.New("des: process already finished")
	}
	if p.sim.o != nil && p.name != "" {
		p.stage++
		p.sim.o.processStage(p.sim, p.name, label, p.stage, d)
	}
	// Stages ride pooled events: the process never retains the *Event
	// (Finish suppresses pending stages through p.done, not Cancel), so
	// a long stage chain recycles one arena slot instead of allocating
	// an event per hop.
	_, err := p.sim.afterPooled(d, func() {
		if !p.done {
			stage(p)
		}
	})
	return err
}

// Finish marks the process complete; pending stages are suppressed.
func (p *Process) Finish() { p.done = true }

// Done reports whether Finish was called.
func (p *Process) Done() bool { return p.done }

// Sim returns the simulation this process runs on.
func (p *Process) Sim() *Sim { return p.sim }
