package deployment

import (
	"reflect"
	"strings"
	"testing"

	"beesim/internal/faults"
	"beesim/internal/netsim"
	"beesim/internal/obs"
)

// faultMetricPrefixes are the metric families that must never leak into
// a fault-free snapshot (pre-registering them would change golden
// metrics exports).
var faultMetricPrefixes = []string{
	"deployment_upload", "deployment_sensor",
	"netsim_send_attempts", "netsim_send_failures", "netsim_send_retries",
	"netsim_send_drops", "netsim_retry_energy",
	"battery_brownouts",
}

func TestFaultMetricsAbsentWithoutPlan(t *testing.T) {
	cfg := shortCfg()
	cfg.Days = 1
	cfg.Metrics = obs.NewRegistry()
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	for _, c := range cfg.Metrics.Snapshot().Counters {
		for _, p := range faultMetricPrefixes {
			if strings.HasPrefix(c.Name, p) {
				t.Errorf("fault-free run registered %q", c.Name)
			}
		}
	}
}

func TestFaultMetricsPresentWithPlan(t *testing.T) {
	cfg := shortCfg()
	cfg.Days = 1
	cfg.Metrics = obs.NewRegistry()
	cfg.Faults = &faults.Plan{Seed: 2, Link: faults.LinkFaults{DropProb: 0.5}}
	tr, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	counters := map[string]float64{}
	for _, c := range cfg.Metrics.Snapshot().Counters {
		counters[c.Name] = c.Value
	}
	if counters[netsim.MetricSendAttempts] == 0 {
		t.Fatal("no send attempts counted under a lossy plan")
	}
	if counters[netsim.MetricSendRetries] == 0 || tr.UploadRetries == 0 {
		t.Fatalf("p=0.5 plan produced no retries (counter %g, trace %d)",
			counters[netsim.MetricSendRetries], tr.UploadRetries)
	}
	if float64(tr.UploadRetries) != counters[MetricUploadRetries] {
		t.Fatalf("trace retries %d != counter %g", tr.UploadRetries, counters[MetricUploadRetries])
	}
	if tr.RetryEnergy <= 0 {
		t.Fatal("retries burned no energy")
	}
}

// TestEmptyPlanTraceMatchesNoPlan: arming an empty plan must not change
// the simulation's outputs — the PR-4 byte-identity contract extended
// to the fault layer.
func TestEmptyPlanTraceMatchesNoPlan(t *testing.T) {
	base := shortCfg()
	base.Days = 1
	clean, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	armedCfg := shortCfg()
	armedCfg.Days = 1
	armedCfg.Faults = &faults.Plan{}
	armed, err := Run(armedCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(clean, armed) {
		t.Fatalf("empty plan changed the trace:\nclean: %+v\narmed: %+v", clean, armed)
	}
}

// TestNodeCrashCausesMissedWakeups: a midday crash window downs the
// node during hours the clean run works through.
func TestNodeCrashCausesMissedWakeups(t *testing.T) {
	base := shortCfg()
	base.Days = 1
	clean, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	crashed := shortCfg()
	crashed.Days = 1
	crashed.Faults = &faults.Plan{Node: faults.NodeFaults{
		Crashes: []faults.Window{{StartS: 11 * 3600, DurationS: 2 * 3600}},
		RebootS: 600,
	}}
	tr, err := Run(crashed)
	if err != nil {
		t.Fatal(err)
	}
	if tr.MissedWakeups <= clean.MissedWakeups {
		t.Fatalf("midday crash missed %d wake-ups, clean run %d",
			tr.MissedWakeups, clean.MissedWakeups)
	}
	if tr.Wakeups >= clean.Wakeups {
		t.Fatalf("crashed run completed %d routines, clean %d", tr.Wakeups, clean.Wakeups)
	}
}

// TestSensorDropoutsThinTheSeries: silenced sensors are counted and
// produce visibly fewer temperature samples.
func TestSensorDropoutsThinTheSeries(t *testing.T) {
	base := shortCfg()
	base.Days = 1
	clean, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	muted := shortCfg()
	muted.Days = 1
	muted.Faults = &faults.Plan{Seed: 4, Sensors: faults.SensorFaults{DropProb: 0.5}}
	tr, err := Run(muted)
	if err != nil {
		t.Fatal(err)
	}
	if tr.SensorDropouts == 0 {
		t.Fatal("p=0.5 sensors never dropped")
	}
	if tr.InsideTemp.Len() >= clean.InsideTemp.Len() {
		t.Fatalf("dropouts did not thin the series: %d vs clean %d",
			tr.InsideTemp.Len(), clean.InsideTemp.Len())
	}
	if tr.SensorDropouts+tr.InsideTemp.Len() != clean.InsideTemp.Len() {
		t.Fatalf("dropouts (%d) + samples (%d) != clean samples (%d)",
			tr.SensorDropouts, tr.InsideTemp.Len(), clean.InsideTemp.Len())
	}
}

// TestBrownoutWindowCounted: a plan brownout registers on the battery
// and downs the system inside its window.
func TestBrownoutWindowCounted(t *testing.T) {
	cfg := shortCfg()
	cfg.Days = 1
	cfg.Faults = &faults.Plan{Battery: faults.BatteryFaults{
		Brownouts: []faults.Window{{StartS: 12 * 3600, DurationS: 1800}},
	}}
	tr, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Brownouts < 1 {
		t.Fatalf("brownout window never registered: %d", tr.Brownouts)
	}
}
