package deployment

import (
	"bytes"
	"math"
	"testing"
	"time"

	"beesim/internal/hive"
	"beesim/internal/ledger"
	"beesim/internal/solar"
)

func shortCfg() Config {
	cfg := DefaultConfig()
	cfg.Days = 2
	return cfg
}

func TestRunValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Days = 0
	if _, err := Run(cfg); err == nil {
		t.Error("zero days accepted")
	}
	cfg = DefaultConfig()
	cfg.WakePeriod = 0
	if _, err := Run(cfg); err == nil {
		t.Error("zero wake period accepted")
	}
	cfg = DefaultConfig()
	cfg.Start = time.Time{}
	if _, err := Run(cfg); err == nil {
		t.Error("zero start accepted")
	}
}

func TestNightGapsInRecorderTrace(t *testing.T) {
	tr, err := Run(shortCfg())
	if err != nil {
		t.Fatal(err)
	}
	// The paper's Figure 2a shows the system down each night. With the
	// brownout behaviour on, the recorder power trace must have one long
	// gap per night.
	gaps := tr.RecorderPower.Gaps(2 * time.Hour)
	if len(gaps) < 1 {
		t.Fatalf("no multi-hour night gaps in a 2-day trace (outages=%d)", tr.Outages)
	}
	for _, g := range gaps {
		dur := g.End.Sub(g.Start)
		if dur < 4*time.Hour || dur > 16*time.Hour {
			t.Fatalf("night gap %v long, want a plausible night", dur)
		}
	}
	if tr.Outages < 2 {
		t.Fatalf("outages = %d, want >= 2 over two nights", tr.Outages)
	}
}

func TestWakeupsAtCadence(t *testing.T) {
	tr, err := Run(shortCfg())
	if err != nil {
		t.Fatal(err)
	}
	// With ~14 daylight hours at a 10-minute period, roughly 84 wakeups
	// per day succeed; the rest land during the night outage.
	perDay := float64(tr.Wakeups) / 2
	if perDay < 50 || perDay > 144 {
		t.Fatalf("wakeups/day = %v, want daylight-limited cadence", perDay)
	}
	if tr.MissedWakeups == 0 {
		t.Fatal("no missed wakeups despite night outages")
	}
	if tr.Wakeups+tr.MissedWakeups != 2*144 {
		t.Fatalf("wake signals = %d, want %d", tr.Wakeups+tr.MissedWakeups, 2*144)
	}
}

func TestRecorderSpikes(t *testing.T) {
	tr, err := Run(shortCfg())
	if err != nil {
		t.Fatal(err)
	}
	// The power trace alternates between the 0.625 W sleep level and the
	// ~2.14 W routine level.
	var sawSleep, sawActive bool
	for _, p := range tr.RecorderPower.Points() {
		switch {
		case p.V > 0.5 && p.V < 0.8:
			sawSleep = true
		case p.V > 1.8 && p.V < 2.5:
			sawActive = true
		case p.V <= 0 || p.V > 3:
			t.Fatalf("implausible recorder power %v", p.V)
		}
	}
	if !sawSleep || !sawActive {
		t.Fatalf("trace lacks sleep/active levels (sleep=%v active=%v)", sawSleep, sawActive)
	}
}

func TestInsideTempTracksColony(t *testing.T) {
	cfg := shortCfg()
	tr, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// A full colony holds the queen-excluder temperature well above the
	// April outside temperature.
	if tr.InsideTemp.Len() == 0 {
		t.Fatal("no inside temperature readings")
	}
	var insideSum float64
	for _, p := range tr.InsideTemp.Points() {
		insideSum += p.V
	}
	insideMean := insideSum / float64(tr.InsideTemp.Len())
	var outsideSum float64
	for _, p := range tr.OutsideTemp.Points() {
		outsideSum += p.V
	}
	outsideMean := outsideSum / float64(tr.OutsideTemp.Len())
	if insideMean < outsideMean+10 {
		t.Fatalf("inside mean %.1f not clearly above outside %.1f", insideMean, outsideMean)
	}
}

func TestEmptyHiveAbnormallyLowTemp(t *testing.T) {
	// The paper notes "the colony of bees was yet to be introduced inside
	// the beehive, hence the abnormally low inside temperature".
	cfg := shortCfg()
	cfg.Colony = hive.Config{Population: 0, BroodTarget: 35, Seed: 1}
	tr, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var insideSum, outsideSum float64
	for _, p := range tr.InsideTemp.Points() {
		insideSum += p.V
	}
	insideMean := insideSum / float64(tr.InsideTemp.Len())
	for _, p := range tr.OutsideTemp.Points() {
		outsideSum += p.V
	}
	outsideMean := outsideSum / float64(tr.OutsideTemp.Len())
	if insideMean > outsideMean+3 {
		t.Fatalf("empty hive inside %.1f should track outside %.1f", insideMean, outsideMean)
	}
}

func TestEnergyAccounting(t *testing.T) {
	tr, err := Run(shortCfg())
	if err != nil {
		t.Fatal(err)
	}
	if tr.RecorderEnergy <= 0 || tr.MonitorEnergy <= 0 || tr.HarvestedEnergy <= 0 {
		t.Fatalf("non-positive energies: rec=%v mon=%v harv=%v",
			tr.RecorderEnergy, tr.MonitorEnergy, tr.HarvestedEnergy)
	}
	// Harvest must exceed consumption on sunny April days (the panel is
	// rated 30 W against a ~1.5 W average load).
	if tr.HarvestedEnergy < tr.RecorderEnergy+tr.MonitorEnergy {
		t.Fatal("panel did not cover the load on clear spring days")
	}
}

func TestDeterminism(t *testing.T) {
	a, err := Run(shortCfg())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(shortCfg())
	if err != nil {
		t.Fatal(err)
	}
	if a.Wakeups != b.Wakeups || a.Outages != b.Outages ||
		a.RecorderEnergy != b.RecorderEnergy {
		t.Fatal("equal-seed runs differ")
	}
}

func TestNoBrownoutRunsThroughNight(t *testing.T) {
	cfg := shortCfg()
	cfg.NightBrownout = false
	tr, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// With a healthy bus, the battery carries the night: no multi-hour
	// gaps and nearly all wake-ups succeed.
	if gaps := tr.RecorderPower.Gaps(2 * time.Hour); len(gaps) != 0 {
		t.Fatalf("unexpected outage gaps without brownout: %v", gaps)
	}
	if tr.MissedWakeups != 0 {
		t.Fatalf("missed %d wakeups without brownout", tr.MissedWakeups)
	}
}

func TestLyonLocation(t *testing.T) {
	cfg := shortCfg()
	cfg.Location = solar.Lyon
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
}

// TestLedgerConservationAudit runs the Figure-2 deployment with the
// ledger attached and requires the conservation audit to balance with
// zero violations: the battery's harvest and loss entries against the
// monitor/recorder consume entries and the registered store delta.
func TestLedgerConservationAudit(t *testing.T) {
	cfg := shortCfg()
	lg := ledger.New()
	cfg.Ledger = lg
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	if lg.Len() == 0 {
		t.Fatal("ledger empty after an instrumented run")
	}
	rep := ledger.Audit(lg, ledger.DefaultTolerance())
	if !rep.OK() {
		t.Fatalf("conservation audit failed: %v", rep.Violations)
	}
	if rep.StoresChecked != 1 || rep.EntriesAudited == 0 || rep.AttributionOnly == 0 {
		t.Fatalf("audit saw too little: %+v", rep)
	}
	// The store delta names the default hive (location name).
	if s := lg.Stores(); len(s) != 1 || s[0].Hive != cfg.Location.Name {
		t.Fatalf("stores = %+v", lg.Stores())
	}
}

// TestLedgerEqualSeedByteIdentical exports two equal-seed runs and
// requires byte-identical JSONL — the structured log is keyed purely by
// virtual time.
func TestLedgerEqualSeedByteIdentical(t *testing.T) {
	export := func() []byte {
		cfg := shortCfg()
		cfg.Ledger = ledger.New()
		if _, err := Run(cfg); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := cfg.Ledger.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := export(), export()
	if !bytes.Equal(a, b) {
		t.Fatal("equal-seed runs exported different ledger bytes")
	}
	// A different seed must actually change the books (the equality
	// above is not vacuous).
	cfg := shortCfg()
	cfg.Seed = 99
	cfg.Ledger = ledger.New()
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	var c bytes.Buffer
	if err := cfg.Ledger.WriteJSONL(&c); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a, c.Bytes()) {
		t.Fatal("different seeds exported identical ledgers")
	}
}

// TestLedgerMatchesTraceTotals reconciles the ledger's aggregates with
// the run's own summary counters.
func TestLedgerMatchesTraceTotals(t *testing.T) {
	cfg := shortCfg()
	lg := ledger.New()
	cfg.Ledger = lg
	tr, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var monitorJ, recorderJ, chargeJ float64
	for _, e := range lg.Entries() {
		switch {
		case e.Component == "pi-zero":
			monitorJ += e.Joules
		case e.Component == "pi3b":
			recorderJ += e.Joules
		case e.Task == "charge":
			chargeJ += e.Joules
		}
	}
	if math.Abs(monitorJ-float64(tr.MonitorEnergy)) > 1e-6 {
		t.Fatalf("ledger monitor %v J, trace %v J", monitorJ, tr.MonitorEnergy)
	}
	if math.Abs(recorderJ-float64(tr.RecorderEnergy)) > 1e-6 {
		t.Fatalf("ledger recorder %v J, trace %v J", recorderJ, tr.RecorderEnergy)
	}
	if math.Abs(chargeJ-float64(tr.HarvestedEnergy)) > 1e-6 {
		t.Fatalf("ledger charge %v J, trace harvest %v J", chargeJ, tr.HarvestedEnergy)
	}
}
