// Package deployment runs the device-level simulation of one deployed
// smart beehive: the discrete-event interplay of sun, clouds, battery,
// the always-on Pi Zero monitor, the duty-cycled Pi 3B+ recorder, and
// the colony being measured.
//
// This is the simulation behind Figure 2: a multi-day trace showing the
// recorder's consumption spikes at each wake-up, the in-hive and outside
// temperature/humidity, and the night-time outages the paper attributes
// to the solar panel's output voltage going to "uncontrolled values"
// after sunset.
package deployment

import (
	"errors"
	"time"

	"beesim/internal/battery"
	"beesim/internal/des"
	"beesim/internal/faults"
	"beesim/internal/hive"
	"beesim/internal/ledger"
	"beesim/internal/netsim"
	"beesim/internal/obs"
	"beesim/internal/parallel"
	"beesim/internal/power"
	"beesim/internal/rng"
	"beesim/internal/routine"
	"beesim/internal/sensors"
	"beesim/internal/solar"
	"beesim/internal/timeseries"
	"beesim/internal/stats"
	"beesim/internal/units"
	"beesim/internal/weather"
)

// Config shapes a deployment run.
type Config struct {
	Location solar.Location
	Start    time.Time
	Days     int
	// WakePeriod is the Pi 3B+ wake-up period (10 min in Figure 2b).
	WakePeriod time.Duration
	// SampleEvery is the environment/trace sampling interval.
	SampleEvery time.Duration
	// Colony configures the hive biology (zero population = empty hive,
	// as at the start of the paper's trace).
	Colony hive.Config
	// InitialSoC is the battery's starting state of charge.
	InitialSoC float64
	// NightBrownout reproduces the deployed system's observed behaviour:
	// when the panel's light drops below its stability threshold, the
	// 5 V bus is unstable and both Pis shed load even if the battery
	// holds charge (the paper: "the low luminosity takes the solar
	// panel's output voltage to uncontrolled values, thus affecting the
	// batteries and the electronics").
	NightBrownout bool
	Seed          uint64

	// Metrics, when non-nil, receives counters/gauges/histograms from
	// the engine, battery, uplink and routine probes (see
	// docs/OBSERVABILITY.md for the name reference).
	Metrics *obs.Registry
	// Tracer, when non-nil, records the run as a Chrome trace_event
	// timeline keyed by virtual time: per-wakeup routine spans with
	// joules, uplink transfer spans, battery brownout instants and a
	// state-of-charge counter track.
	Tracer *obs.Tracer
	// TraceEngineEvents additionally records every DES scheduled/fired/
	// cancelled event as an instant (verbose; off by default).
	TraceEngineEvents bool

	// Faults, when non-nil, arms the deterministic fault injector: the
	// plan's windows are anchored at Start, its seed drives every
	// stochastic fault decision, and its retry policy (or the default)
	// governs uplink retries. A nil plan keeps the run on the exact
	// fault-free path with byte-identical outputs.
	Faults *faults.Plan
	// UploadBufferCap bounds the buffer-and-drain queue for failed
	// uploads (0 = routine.DefaultUploadBufferCap); only meaningful
	// with Faults armed.
	UploadBufferCap int

	// Ledger, when non-nil, records every energy flow of the run as a
	// typed entry: panel production, battery charge (harvest), monitor
	// and recorder consumption, radio overlay, discharge losses — plus
	// the battery's initial/final stored energy, so the export is
	// auditable for conservation offline. Entries are keyed by virtual
	// time, making equal-seed exports byte-identical.
	Ledger *ledger.Ledger
	// HiveID labels the ledger entries; defaults to the location name.
	HiveID string
}

// DefaultConfig reproduces the Figure 2 setting: a week in Cachan at a
// 10-minute wake-up period.
func DefaultConfig() Config {
	return Config{
		Location:      solar.Cachan,
		Start:         time.Date(2023, 4, 10, 0, 0, 0, 0, time.UTC),
		Days:          7,
		WakePeriod:    10 * time.Minute,
		SampleEvery:   time.Minute,
		Colony:        hive.DefaultConfig(),
		InitialSoC:    0.8,
		NightBrownout: true,
		Seed:          1,
	}
}

// Trace is the simulation output: the series Figure 2 plots plus
// summary counters.
type Trace struct {
	// RecorderPower is the Pi 3B+ supply power (the spiky red line of
	// Figure 2b); zero samples are omitted while the system is down.
	RecorderPower *timeseries.Series
	// InsideTemp/InsideHumidity are the SHT31 readings at each wake-up.
	InsideTemp     *timeseries.Series
	InsideHumidity *timeseries.Series
	// OutsideTemp/OutsideHumidity are the weather overlays.
	OutsideTemp     *timeseries.Series
	OutsideHumidity *timeseries.Series
	// BatterySoC tracks the energy buffer.
	BatterySoC *timeseries.Series
	// PanelPower is the harvested power after the converter.
	PanelPower *timeseries.Series

	// Wakeups counts completed data-collection routines.
	Wakeups int
	// MissedWakeups counts wake signals that found the system down.
	MissedWakeups int
	// Outages counts transitions into the down state.
	Outages int
	// RecorderEnergy is the Pi 3B+ total over the run.
	RecorderEnergy units.Joules
	// MonitorEnergy is the Pi Zero total over the run.
	MonitorEnergy units.Joules
	// HarvestedEnergy is the panel total over the run.
	HarvestedEnergy units.Joules

	// Fault/recovery counters; all zero unless Config.Faults is armed.
	//
	// FailedUploads counts wake-ups whose upload exhausted the retry
	// budget; their payloads go to the buffer. FlushedUploads counts
	// buffered payloads delivered on a later wake-up, DroppedUploads
	// payloads evicted from the full buffer, and BufferedUploads
	// payloads still queued at the end of the run. UploadRetries counts
	// attempts beyond each upload's first; RetryEnergy is the radio
	// energy those failed attempts burned. SensorDropouts counts
	// wake-ups whose SHT31 reading was lost to an injected sensor
	// fault. Brownouts counts injected battery brownout windows
	// entered.
	FailedUploads   int
	FlushedUploads  int
	DroppedUploads  int
	BufferedUploads int
	UploadRetries   int
	RetryEnergy     units.Joules
	SensorDropouts  int
	Brownouts       int
}

// Metric names emitted by an instrumented deployment run.
const (
	MetricWakeups       = "deployment_wakeups_total"
	MetricMissedWakeups = "deployment_missed_wakeups_total"
	MetricOutages       = "deployment_outages_total"
	MetricHarvestJ      = "deployment_harvest_j_total"
	MetricRecorderJ     = "deployment_recorder_j_total"
	MetricMonitorJ      = "deployment_monitor_j_total"
	MetricRoutineSecs   = "deployment_routine_seconds"
	// MetricWakeupJ distributes the edge energy of each wake-up routine
	// (fixed routine work plus radio-busy transmit time), so per-cycle
	// energy percentiles — joules per detection — are queryable next to
	// the duration percentiles.
	MetricWakeupJ = "deployment_wakeup_j"
)

// Metric names emitted only when Config.Faults is armed, so fault-free
// metric snapshots stay byte-identical to earlier releases.
const (
	MetricUploadFailures = "deployment_upload_failures_total"
	MetricUploadsFlushed = "deployment_uploads_flushed_total"
	MetricUploadsDropped = "deployment_uploads_dropped_total"
	MetricUploadRetries  = "deployment_upload_retries_total"
	MetricSensorDropouts = "deployment_sensor_dropouts_total"
)

// Run executes the deployment simulation.
func Run(cfg Config) (*Trace, error) {
	if cfg.Days <= 0 {
		return nil, errors.New("deployment: non-positive day count")
	}
	if cfg.WakePeriod <= 0 || cfg.SampleEvery <= 0 {
		return nil, errors.New("deployment: non-positive period")
	}
	if cfg.Start.IsZero() {
		return nil, errors.New("deployment: zero start time")
	}

	sim := des.New(cfg.Start)
	wxCfg := weather.DefaultConfig(cfg.Location)
	wxCfg.Seed = cfg.Seed
	wx := weather.NewGenerator(wxCfg)
	colony := hive.New(cfg.Colony)
	panel := solar.DefaultPanel()
	pack, err := battery.New(battery.DefaultConfig(), cfg.InitialSoC)
	if err != nil {
		return nil, err
	}
	pi := power.DefaultPi3B()
	zero := power.DefaultPiZero()
	sht := sensors.NewSHT31(cfg.Seed + 1)
	link, err := netsim.NewLink(netsim.DefaultConfig())
	if err != nil {
		return nil, err
	}

	tr := &Trace{
		RecorderPower:   timeseries.New("recorder power", "W"),
		InsideTemp:      timeseries.New("inside temperature", "C"),
		InsideHumidity:  timeseries.New("inside humidity", "RH"),
		OutsideTemp:     timeseries.New("outside temperature", "C"),
		OutsideHumidity: timeseries.New("outside humidity", "RH"),
		BatterySoC:      timeseries.New("battery SoC", ""),
		PanelPower:      timeseries.New("panel power", "W"),
	}

	// Observability: attach the engine, battery and uplink probes, label
	// the trace tracks, and build the deployment's own instruments. With
	// cfg.Metrics and cfg.Tracer nil this is all wired to no-ops.
	des.Instrument(sim, cfg.Metrics, cfg.Tracer, cfg.TraceEngineEvents)
	pack.Instrument(cfg.Metrics, cfg.Tracer, sim.Now)
	link.Instrument(cfg.Metrics, cfg.Tracer, sim.Now)
	hiveID := cfg.HiveID
	if hiveID == "" {
		hiveID = cfg.Location.Name
	}
	pack.AttachLedger(cfg.Ledger, hiveID, sim.Now)
	link.AttachLedger(cfg.Ledger, hiveID, sim.Now)
	meter := solar.NewMeter(cfg.Ledger, hiveID)
	initialStoredJ := float64(pack.Stored().Joules())
	if cfg.Tracer != nil {
		cfg.Tracer.SetThreadName(obs.TidRoutine, "recorder routine")
		cfg.Tracer.SetThreadName(obs.TidPower, "power")
		cfg.Tracer.SetThreadName(obs.TidNetwork, "uplink")
	}
	mWakeups := cfg.Metrics.Counter(MetricWakeups)
	mMissed := cfg.Metrics.Counter(MetricMissedWakeups)
	mOutages := cfg.Metrics.Counter(MetricOutages)
	mHarvest := cfg.Metrics.Counter(MetricHarvestJ)
	mRecorder := cfg.Metrics.Counter(MetricRecorderJ)
	mMonitor := cfg.Metrics.Counter(MetricMonitorJ)
	hRoutine := cfg.Metrics.Histogram(MetricRoutineSecs)
	hWakeupJ := cfg.Metrics.Histogram(MetricWakeupJ)

	// Fault injection: arm the uplink with retries, prepare the
	// buffer-and-drain queue, and register the fault counters — all
	// skipped for a nil or empty plan. An empty plan injects nothing,
	// so treating it as nil keeps every output (including the metrics
	// snapshot, which lists registered-but-zero counters) byte-identical
	// to a fault-free build.
	var inj *faults.Injector
	var buf *routine.UploadBuffer
	var mUploadFail, mFlushed, mDropped, mRetries, mSensorDrop *obs.Counter
	if cfg.Faults != nil && !cfg.Faults.Empty() {
		inj, err = faults.NewInjector(*cfg.Faults, cfg.Start)
		if err != nil {
			return nil, err
		}
		if err := link.AttachFaults(inj, cfg.Faults.RetryOrDefault(), cfg.Metrics); err != nil {
			return nil, err
		}
		buf = routine.NewUploadBuffer(cfg.UploadBufferCap)
		mUploadFail = cfg.Metrics.Counter(MetricUploadFailures)
		mFlushed = cfg.Metrics.Counter(MetricUploadsFlushed)
		mDropped = cfg.Metrics.Counter(MetricUploadsDropped)
		mRetries = cfg.Metrics.Counter(MetricUploadRetries)
		mSensorDrop = cfg.Metrics.Counter(MetricSensorDropouts)
	}

	systemUp := true
	routineUntil := cfg.Start // recorder is active until this time
	send := pi.SendAudio()
	routineTask := pi.Routine()
	fixedDur := routineTask.Duration - send.Duration
	fixedEnergy := routineTask.Energy - send.Energy

	// Environment tick: harvest, draw the always-on loads, record.
	envTick := func() {
		now := sim.Now()
		sample := wx.At(now)
		irr := sample.Irradiance
		pv, stable := panel.Output(irr)

		// Harvest into the battery over the interval.
		if pv > 0 {
			meter.Record(now, pv, cfg.SampleEvery)
			got := pack.Charge(pv, cfg.SampleEvery)
			tr.HarvestedEnergy += got
			mHarvest.Add(float64(got))
		}

		wasUp := systemUp
		if cfg.NightBrownout {
			systemUp = stable
		} else {
			systemUp = pack.LoadConnected()
		}
		if inj != nil {
			// Injected faults override the weather: a battery brownout
			// opens the pack's load path and a node crash (or its
			// reboot tail) takes the whole system down.
			bo := inj.BatteryBrownout(now)
			pack.SetBrownout(bo)
			if bo || !inj.NodeUp(now) {
				systemUp = false
			}
		}
		if wasUp && !systemUp {
			tr.Outages++
			mOutages.Inc()
			cfg.Tracer.Instant("outage", "deployment", obs.TidPower, now, nil)
		}

		if systemUp {
			// Continuous loads: monitor + recorder baseline.
			recorderPower := pi.SleepPower
			if now.Before(routineUntil) {
				recorderPower = routineTask.Power()
			}
			load := zero.ActivePower + recorderPower
			sustained := pack.Discharge(load, cfg.SampleEvery)
			frac := float64(sustained) / float64(cfg.SampleEvery)
			monJ := units.Joules(float64(zero.ActivePower.Energy(cfg.SampleEvery)) * frac)
			recJ := units.Joules(float64(recorderPower.Energy(cfg.SampleEvery)) * frac)
			tr.MonitorEnergy += monJ
			tr.RecorderEnergy += recJ
			mMonitor.Add(float64(monJ))
			mRecorder.Add(float64(recJ))
			if cfg.Ledger != nil && sustained > 0 {
				// monJ + recJ equals exactly the energy the pack
				// delivered over the (possibly partial) interval, so
				// these two entries close the conservation balance
				// against the battery's own harvest and loss entries.
				cfg.Ledger.Append(ledger.Entry{
					T: now, Hive: hiveID, Device: "monitor", Component: "pi-zero",
					Task: "energy monitor", Dir: ledger.Consume,
					Joules: float64(monJ), Seconds: sustained.Seconds(),
					Store: "battery",
				})
				cfg.Ledger.Append(ledger.Entry{
					T: now, Hive: hiveID, Device: "edge", Component: "pi3b",
					Task:   recorderTaskName(now.Before(routineUntil)),
					Dir:    ledger.Consume,
					Joules: float64(recJ), Seconds: sustained.Seconds(),
					Store: "battery",
				})
			}
			if sustained < cfg.SampleEvery {
				systemUp = false
				tr.Outages++
				mOutages.Inc()
				cfg.Tracer.Instant("outage", "deployment", obs.TidPower, now, nil)
			} else {
				tr.RecorderPower.MustAppend(now, float64(recorderPower))
			}
		}

		tr.OutsideTemp.MustAppend(now, float64(sample.Temperature))
		tr.OutsideHumidity.MustAppend(now, float64(sample.Humidity))
		tr.BatterySoC.MustAppend(now, pack.SoC())
		tr.PanelPower.MustAppend(now, float64(pv))
		cfg.Tracer.Sample("hive power", obs.TidPower, now, map[string]any{
			"battery_soc":  pack.SoC(),
			"panel_watts":  float64(pv),
			"irradiance_w": float64(irr),
		})
	}

	// Wake-up tick: the Pi Zero signals the Pi 3B+ over GPIO.
	wakeTick := func() {
		now := sim.Now()
		if !systemUp {
			tr.MissedWakeups++
			mMissed.Inc()
			cfg.Tracer.Instant("missed wake-up", "deployment", obs.TidRoutine, now, nil)
			return
		}
		tr.Wakeups++
		mWakeups.Inc()
		// Root span of this wake-up's causal trace. The identity is a
		// pure hash of (seed, hive, wake-up index) — see obs.NewRootSpan
		// — so replica traces are byte-identical at any worker count.
		// With no tracer armed sc stays nil and every *Ctx call below
		// collapses to its untraced twin.
		var sc *obs.SpanContext
		if cfg.Tracer != nil {
			sc = obs.NewRootSpan(cfg.Seed, hiveID, uint64(tr.Wakeups-1))
		}
		upSC := sc.Child("upload", 0)
		if inj == nil {
			// Fault-free path, byte-identical to earlier releases.
			// Routine duration varies with the link (Section IV).
			transfer := link.SendSpan(now, netsim.RoutinePayload(), upSC).Transfer
			routineDur := fixedDur + transfer.Duration
			routineUntil = now.Add(routineDur)
			hRoutine.ObserveExemplar(routineDur.Seconds(), sc)
			wakeJ := float64(fixedEnergy) + float64(send.Power().Energy(transfer.Duration))
			hWakeupJ.ObserveExemplar(wakeJ, sc)
			if sc != nil {
				cfg.Tracer.SpanCtx(sc.Child("compute", 0), "compute", "deployment",
					obs.TidRoutine, now.Add(transfer.Duration), fixedDur,
					map[string]any{"joules": float64(fixedEnergy)})
			}
			cfg.Tracer.SpanCtx(sc, "wake-up routine", "deployment", obs.TidRoutine, now, routineDur,
				map[string]any{
					"joules":         wakeJ,
					"transfer_bytes": int64(transfer.Payload),
					"transfer_us":    transfer.Duration.Microseconds(),
				})
		} else {
			// Fault-aware path: retry the upload under the armed
			// policy, buffer it on failure, and drain the backlog
			// behind a successful send. The radio-busy time (attempts,
			// backoff waits, transfers) extends the routine, so the
			// battery accounting in envTick prices every retry
			// automatically.
			out := link.SendSpan(now, netsim.RoutinePayload(), upSC)
			tr.UploadRetries += out.Attempts - 1
			mRetries.Add(float64(out.Attempts - 1))
			tr.RetryEnergy += out.RetryEnergy
			busy := out.TotalDuration
			if out.Delivered {
				t := now.Add(busy)
				var drainRetryE stats.Kahan
				for drainIdx := uint64(1); buf.Len() > 0; drainIdx++ {
					p, _ := buf.Pop()
					drain := link.SendSpan(t, p, sc.Child("drain", drainIdx))
					tr.UploadRetries += drain.Attempts - 1
					mRetries.Add(float64(drain.Attempts - 1))
					drainRetryE.Add(float64(drain.RetryEnergy))
					busy += drain.TotalDuration
					if !drain.Delivered {
						buf.PushFront(p)
						break
					}
					tr.FlushedUploads++
					mFlushed.Inc()
					t = t.Add(drain.TotalDuration)
				}
				tr.RetryEnergy += units.Joules(drainRetryE.Sum())
			} else {
				tr.FailedUploads++
				mUploadFail.Inc()
				if buf.Push(netsim.RoutinePayload()) {
					tr.DroppedUploads++
					mDropped.Inc()
				}
				cfg.Tracer.InstantCtx(sc, "upload failed", "deployment", obs.TidNetwork, now,
					map[string]any{"attempts": out.Attempts})
			}
			routineDur := fixedDur + busy
			routineUntil = now.Add(routineDur)
			hRoutine.ObserveExemplar(routineDur.Seconds(), sc)
			wakeJ := float64(fixedEnergy) + float64(send.Power().Energy(busy))
			hWakeupJ.ObserveExemplar(wakeJ, sc)
			if sc != nil {
				cfg.Tracer.SpanCtx(sc.Child("compute", 0), "compute", "deployment",
					obs.TidRoutine, now.Add(busy), fixedDur,
					map[string]any{"joules": float64(fixedEnergy)})
			}
			cfg.Tracer.SpanCtx(sc, "wake-up routine", "deployment", obs.TidRoutine, now, routineDur,
				map[string]any{
					"joules":    wakeJ,
					"attempts":  out.Attempts,
					"delivered": out.Delivered,
				})
		}

		// Sensor readings at the queen excluder; an injected sensor
		// dropout silences the reading (inj nil-safe: always OK).
		if inj.SensorOK(now) {
			st := colony.StateAt(wx.At(now))
			temp, rh := sht.Read(now, st)
			tr.InsideTemp.MustAppend(now, temp.Value)
			tr.InsideHumidity.MustAppend(now, rh.Value)
		} else {
			tr.SensorDropouts++
			mSensorDrop.Inc()
			cfg.Tracer.Instant("sensor dropout", "deployment", obs.TidRoutine, now, nil)
		}
	}

	if _, err := sim.Every(cfg.SampleEvery, envTick); err != nil {
		return nil, err
	}
	if _, err := sim.Every(cfg.WakePeriod, wakeTick); err != nil {
		return nil, err
	}
	sim.Run(cfg.Start.Add(time.Duration(cfg.Days) * 24 * time.Hour))
	cfg.Ledger.SetStore(hiveID, "battery", initialStoredJ, float64(pack.Stored().Joules()))
	if buf != nil {
		tr.BufferedUploads = buf.Len()
		tr.DroppedUploads = buf.Dropped()
	}
	tr.Brownouts = pack.Brownouts()
	return tr, nil
}

// RunReplicas executes n independent replicas of the deployment,
// fanning them across workers (0 = process default, 1 = serial).
// Replica i runs cfg with its seed replaced by the rng stream seed of
// (cfg.Seed, i), so the ensemble is a pure function of the
// configuration: byte-identical traces for every worker count, and
// replica 0 differs from a plain Run(cfg) only in the derived seed.
//
// Instrumentation sinks are per-run mutable state, so an instrumented
// config cannot fan out; attach Metrics/Tracer/Ledger to single runs
// instead.
func RunReplicas(cfg Config, n, workers int) ([]*Trace, error) {
	if n <= 0 {
		return nil, errors.New("deployment: replica ensemble needs n > 0")
	}
	if cfg.Metrics != nil || cfg.Tracer != nil || cfg.Ledger != nil {
		return nil, errors.New("deployment: replica ensembles cannot share Metrics/Tracer/Ledger sinks")
	}
	return parallel.Map(workers, n, func(i int) (*Trace, error) {
		rcfg := cfg
		rcfg.Seed = rng.StreamSeed(cfg.Seed, uint64(i))
		return Run(rcfg)
	})
}

// recorderTaskName labels the recorder's draw by its duty-cycle phase.
func recorderTaskName(active bool) string {
	if active {
		return "Data collection routine"
	}
	return "Sleep"
}
