// Package deployment runs the device-level simulation of one deployed
// smart beehive: the discrete-event interplay of sun, clouds, battery,
// the always-on Pi Zero monitor, the duty-cycled Pi 3B+ recorder, and
// the colony being measured.
//
// This is the simulation behind Figure 2: a multi-day trace showing the
// recorder's consumption spikes at each wake-up, the in-hive and outside
// temperature/humidity, and the night-time outages the paper attributes
// to the solar panel's output voltage going to "uncontrolled values"
// after sunset.
package deployment

import (
	"errors"
	"time"

	"beesim/internal/battery"
	"beesim/internal/des"
	"beesim/internal/hive"
	"beesim/internal/netsim"
	"beesim/internal/power"
	"beesim/internal/sensors"
	"beesim/internal/solar"
	"beesim/internal/timeseries"
	"beesim/internal/units"
	"beesim/internal/weather"
)

// Config shapes a deployment run.
type Config struct {
	Location solar.Location
	Start    time.Time
	Days     int
	// WakePeriod is the Pi 3B+ wake-up period (10 min in Figure 2b).
	WakePeriod time.Duration
	// SampleEvery is the environment/trace sampling interval.
	SampleEvery time.Duration
	// Colony configures the hive biology (zero population = empty hive,
	// as at the start of the paper's trace).
	Colony hive.Config
	// InitialSoC is the battery's starting state of charge.
	InitialSoC float64
	// NightBrownout reproduces the deployed system's observed behaviour:
	// when the panel's light drops below its stability threshold, the
	// 5 V bus is unstable and both Pis shed load even if the battery
	// holds charge (the paper: "the low luminosity takes the solar
	// panel's output voltage to uncontrolled values, thus affecting the
	// batteries and the electronics").
	NightBrownout bool
	Seed          uint64
}

// DefaultConfig reproduces the Figure 2 setting: a week in Cachan at a
// 10-minute wake-up period.
func DefaultConfig() Config {
	return Config{
		Location:      solar.Cachan,
		Start:         time.Date(2023, 4, 10, 0, 0, 0, 0, time.UTC),
		Days:          7,
		WakePeriod:    10 * time.Minute,
		SampleEvery:   time.Minute,
		Colony:        hive.DefaultConfig(),
		InitialSoC:    0.8,
		NightBrownout: true,
		Seed:          1,
	}
}

// Trace is the simulation output: the series Figure 2 plots plus
// summary counters.
type Trace struct {
	// RecorderPower is the Pi 3B+ supply power (the spiky red line of
	// Figure 2b); zero samples are omitted while the system is down.
	RecorderPower *timeseries.Series
	// InsideTemp/InsideHumidity are the SHT31 readings at each wake-up.
	InsideTemp     *timeseries.Series
	InsideHumidity *timeseries.Series
	// OutsideTemp/OutsideHumidity are the weather overlays.
	OutsideTemp     *timeseries.Series
	OutsideHumidity *timeseries.Series
	// BatterySoC tracks the energy buffer.
	BatterySoC *timeseries.Series
	// PanelPower is the harvested power after the converter.
	PanelPower *timeseries.Series

	// Wakeups counts completed data-collection routines.
	Wakeups int
	// MissedWakeups counts wake signals that found the system down.
	MissedWakeups int
	// Outages counts transitions into the down state.
	Outages int
	// RecorderEnergy is the Pi 3B+ total over the run.
	RecorderEnergy units.Joules
	// MonitorEnergy is the Pi Zero total over the run.
	MonitorEnergy units.Joules
	// HarvestedEnergy is the panel total over the run.
	HarvestedEnergy units.Joules
}

// Run executes the deployment simulation.
func Run(cfg Config) (*Trace, error) {
	if cfg.Days <= 0 {
		return nil, errors.New("deployment: non-positive day count")
	}
	if cfg.WakePeriod <= 0 || cfg.SampleEvery <= 0 {
		return nil, errors.New("deployment: non-positive period")
	}
	if cfg.Start.IsZero() {
		return nil, errors.New("deployment: zero start time")
	}

	sim := des.New(cfg.Start)
	wxCfg := weather.DefaultConfig(cfg.Location)
	wxCfg.Seed = cfg.Seed
	wx := weather.NewGenerator(wxCfg)
	colony := hive.New(cfg.Colony)
	panel := solar.DefaultPanel()
	pack, err := battery.New(battery.DefaultConfig(), cfg.InitialSoC)
	if err != nil {
		return nil, err
	}
	pi := power.DefaultPi3B()
	zero := power.DefaultPiZero()
	sht := sensors.NewSHT31(cfg.Seed + 1)
	link, err := netsim.NewLink(netsim.DefaultConfig())
	if err != nil {
		return nil, err
	}

	tr := &Trace{
		RecorderPower:   timeseries.New("recorder power", "W"),
		InsideTemp:      timeseries.New("inside temperature", "C"),
		InsideHumidity:  timeseries.New("inside humidity", "RH"),
		OutsideTemp:     timeseries.New("outside temperature", "C"),
		OutsideHumidity: timeseries.New("outside humidity", "RH"),
		BatterySoC:      timeseries.New("battery SoC", ""),
		PanelPower:      timeseries.New("panel power", "W"),
	}

	systemUp := true
	routineUntil := cfg.Start // recorder is active until this time
	send := pi.SendAudio()
	routineTask := pi.Routine()
	fixedDur := routineTask.Duration - send.Duration

	// Environment tick: harvest, draw the always-on loads, record.
	envTick := func() {
		now := sim.Now()
		sample := wx.At(now)
		irr := sample.Irradiance
		pv, stable := panel.Output(irr)

		// Harvest into the battery over the interval.
		if pv > 0 {
			tr.HarvestedEnergy += pack.Charge(pv, cfg.SampleEvery)
		}

		wasUp := systemUp
		if cfg.NightBrownout {
			systemUp = stable
		} else {
			systemUp = pack.LoadConnected()
		}
		if wasUp && !systemUp {
			tr.Outages++
		}

		if systemUp {
			// Continuous loads: monitor + recorder baseline.
			recorderPower := pi.SleepPower
			if now.Before(routineUntil) {
				recorderPower = routineTask.Power()
			}
			load := zero.ActivePower + recorderPower
			sustained := pack.Discharge(load, cfg.SampleEvery)
			frac := float64(sustained) / float64(cfg.SampleEvery)
			tr.MonitorEnergy += units.Joules(float64(zero.ActivePower.Energy(cfg.SampleEvery)) * frac)
			tr.RecorderEnergy += units.Joules(float64(recorderPower.Energy(cfg.SampleEvery)) * frac)
			if sustained < cfg.SampleEvery {
				systemUp = false
				tr.Outages++
			} else {
				tr.RecorderPower.MustAppend(now, float64(recorderPower))
			}
		}

		tr.OutsideTemp.MustAppend(now, float64(sample.Temperature))
		tr.OutsideHumidity.MustAppend(now, float64(sample.Humidity))
		tr.BatterySoC.MustAppend(now, pack.SoC())
		tr.PanelPower.MustAppend(now, float64(pv))
	}

	// Wake-up tick: the Pi Zero signals the Pi 3B+ over GPIO.
	wakeTick := func() {
		now := sim.Now()
		if !systemUp {
			tr.MissedWakeups++
			return
		}
		tr.Wakeups++
		// Routine duration varies with the link (Section IV).
		transfer := link.Send(netsim.RoutinePayload())
		routineUntil = now.Add(fixedDur + transfer.Duration)

		// Sensor readings at the queen excluder.
		st := colony.StateAt(wx.At(now))
		temp, rh := sht.Read(now, st)
		tr.InsideTemp.MustAppend(now, temp.Value)
		tr.InsideHumidity.MustAppend(now, rh.Value)
	}

	if _, err := sim.Every(cfg.SampleEvery, envTick); err != nil {
		return nil, err
	}
	if _, err := sim.Every(cfg.WakePeriod, wakeTick); err != nil {
		return nil, err
	}
	sim.Run(cfg.Start.Add(time.Duration(cfg.Days) * 24 * time.Hour))
	return tr, nil
}
