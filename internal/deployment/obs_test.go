package deployment

import (
	"bytes"
	"testing"

	"beesim/internal/battery"
	"beesim/internal/des"
	"beesim/internal/netsim"
	"beesim/internal/obs"
)

// instrumentedRun executes a short deployment with full observability
// and returns the trace, the serialized timeline and the serialized
// metrics snapshot.
func instrumentedRun(t *testing.T) (*Trace, []byte, []byte) {
	t.Helper()
	cfg := shortCfg()
	cfg.Days = 1
	cfg.Metrics = obs.NewRegistry()
	cfg.Tracer = obs.NewTracer(cfg.Start)
	tr, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var timeline, snap bytes.Buffer
	if err := cfg.Tracer.WriteJSON(&timeline); err != nil {
		t.Fatal(err)
	}
	if err := cfg.Metrics.Snapshot().WriteJSON(&snap); err != nil {
		t.Fatal(err)
	}
	return tr, timeline.Bytes(), snap.Bytes()
}

func TestInstrumentedRunIsByteDeterministic(t *testing.T) {
	// The acceptance bar for the telemetry layer: equal-seed runs must
	// serialize to byte-identical traces and snapshots, because both are
	// keyed by virtual time only.
	_, trace1, snap1 := instrumentedRun(t)
	_, trace2, snap2 := instrumentedRun(t)
	if !bytes.Equal(trace1, trace2) {
		t.Fatal("equal-seed runs produced different trace bytes")
	}
	if !bytes.Equal(snap1, snap2) {
		t.Fatal("equal-seed runs produced different metric snapshots")
	}
}

func TestMetricsAgreeWithTrace(t *testing.T) {
	cfg := shortCfg()
	cfg.Days = 1
	cfg.Metrics = obs.NewRegistry()
	tr, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := cfg.Metrics
	if got := m.Counter(MetricWakeups).Value(); got != float64(tr.Wakeups) {
		t.Fatalf("wakeups counter %v != trace %d", got, tr.Wakeups)
	}
	if got := m.Counter(MetricMissedWakeups).Value(); got != float64(tr.MissedWakeups) {
		t.Fatalf("missed counter %v != trace %d", got, tr.MissedWakeups)
	}
	if got := m.Counter(MetricOutages).Value(); got != float64(tr.Outages) {
		t.Fatalf("outages counter %v != trace %d", got, tr.Outages)
	}
	if got := m.Histogram(MetricRoutineSecs).Count(); got != uint64(tr.Wakeups) {
		t.Fatalf("routine histogram count %d != wakeups %d", got, tr.Wakeups)
	}
	// The probe counters accumulate the same joules the trace reports
	// (within float tolerance of the repeated additions).
	closeTo := func(a, b float64) bool {
		diff := a - b
		if diff < 0 {
			diff = -diff
		}
		return diff < 1e-6*(1+b)
	}
	if got := m.Counter(MetricHarvestJ).Value(); !closeTo(got, float64(tr.HarvestedEnergy)) {
		t.Fatalf("harvest counter %v != trace %v", got, tr.HarvestedEnergy)
	}
	if got := m.Counter(MetricRecorderJ).Value(); !closeTo(got, float64(tr.RecorderEnergy)) {
		t.Fatalf("recorder counter %v != trace %v", got, tr.RecorderEnergy)
	}
	// Engine, battery and uplink probes must all have fired.
	for _, name := range []string{
		des.MetricEventsFired,
		battery.MetricDischargeJ,
		battery.MetricChargeJ,
		netsim.MetricTransfers,
	} {
		if m.Counter(name).Value() <= 0 {
			t.Fatalf("probe counter %q never incremented", name)
		}
	}
}

func TestTraceContainsDeploymentSpans(t *testing.T) {
	tr, timeline, _ := instrumentedRun(t)
	if tr.Wakeups == 0 {
		t.Fatal("run had no wakeups; trace test is vacuous")
	}
	for _, want := range []string{
		`"wake-up routine"`,  // per-wakeup spans
		`"uplink transfer"`,  // netsim spans
		`"hive power"`,       // SoC/panel counter track
		`"outage"`,           // power instants
		`"recorder routine"`, // thread names
	} {
		if !bytes.Contains(timeline, []byte(want)) {
			t.Fatalf("timeline missing %s", want)
		}
	}
}

func TestUninstrumentedRunUnchangedByProbes(t *testing.T) {
	// Wiring the probes must not perturb the simulation itself: the
	// physics outputs with and without observability are identical.
	cfg := shortCfg()
	cfg.Days = 1
	bare, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	instr, _, _ := instrumentedRun(t) // same config plus registry+tracer
	if bare.Wakeups != instr.Wakeups ||
		bare.MissedWakeups != instr.MissedWakeups ||
		bare.Outages != instr.Outages ||
		bare.RecorderEnergy != instr.RecorderEnergy ||
		bare.HarvestedEnergy != instr.HarvestedEnergy {
		t.Fatal("probe wiring changed simulation results")
	}
}
