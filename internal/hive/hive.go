// Package hive models the biological side of a smart beehive: colony
// thermoregulation, in-hive humidity, foraging activity and queen state.
//
// The paper's sensors sit on the queen excluder inside the hive; the
// in-hive temperature and humidity they report (Figure 2) and the queen
// presence the audio classifier predicts (Section V) both come from the
// colony, so a reproduction needs a colony to measure. The model captures
// the well-established empirical facts the paper leans on: a populous
// colony holds its brood nest near 35 °C regardless of weather, an empty
// or weak hive tracks ambient (the paper notes "abnormally low inside
// temperature" before the colony was introduced), and the hive soundscape
// changes measurably when the queen is lost.
package hive

import (
	"math"
	"time"

	"beesim/internal/rng"
	"beesim/internal/units"
	"beesim/internal/weather"
)

// QueenState is the queen-related condition of the colony, the label the
// paper's classifiers predict from sound.
type QueenState int

// Queen states.
const (
	// QueenPresent: a laying queen is in the hive; the colony hum is calm.
	QueenPresent QueenState = iota
	// QueenLost: the colony is queenless; workers produce the
	// characteristic broadband "roar".
	QueenLost
	// QueenPiping: a virgin queen is piping (pre-swarm signal).
	QueenPiping
)

// String returns a human-readable queen state.
func (q QueenState) String() string {
	switch q {
	case QueenPresent:
		return "queen present"
	case QueenLost:
		return "queenless"
	case QueenPiping:
		return "queen piping"
	default:
		return "unknown"
	}
}

// Config shapes a colony.
type Config struct {
	// Population is the number of adult workers. A full summer colony is
	// ~40 000; 0 models the empty hive at the start of Figure 2a.
	Population int
	// BroodTarget is the temperature the colony defends in the brood nest.
	BroodTarget units.Celsius
	// Queen is the initial queen state.
	Queen QueenState
	// Seed drives the stochastic components (activity jitter).
	Seed uint64
}

// DefaultConfig is a healthy mid-season colony.
func DefaultConfig() Config {
	return Config{
		Population:  40000,
		BroodTarget: 35,
		Queen:       QueenPresent,
		Seed:        1,
	}
}

// State is the observable condition of the hive at one instant, the
// ground truth that the sensor models sample.
type State struct {
	Time time.Time
	// InsideTemp is the temperature at the queen excluder.
	InsideTemp units.Celsius
	// InsideHumidity is the relative humidity at the queen excluder.
	InsideHumidity units.RelativeHumidity
	// Activity is the foraging/fanning intensity in [0,1]; it modulates
	// hive sound level and entrance traffic.
	Activity float64
	// Queen is the current queen state.
	Queen QueenState
}

// Colony is a stateful hive model.
type Colony struct {
	cfg Config
	r   *rng.Source
}

// New creates a colony.
func New(cfg Config) *Colony {
	return &Colony{cfg: cfg, r: rng.New(cfg.Seed)}
}

// SetQueen changes the queen state (e.g. to script a queen-loss event in
// an experiment).
func (c *Colony) SetQueen(q QueenState) { c.cfg.Queen = q }

// Queen returns the current queen state.
func (c *Colony) Queen() QueenState { return c.cfg.Queen }

// Population returns the adult worker count.
func (c *Colony) Population() int { return c.cfg.Population }

// regulation returns the colony's thermoregulation strength in [0,1]:
// 0 = empty hive tracking ambient, 1 = full colony holding the target.
func (c *Colony) regulation() float64 {
	// Saturating with population; ~0.7 at 10k bees, ~0.9 at 40k.
	p := float64(c.cfg.Population)
	return p / (p + 4000)
}

// StateAt returns the hive state for the given outside weather sample.
func (c *Colony) StateAt(w weather.Sample) State {
	reg := c.regulation()
	outside := float64(w.Temperature)
	target := float64(c.cfg.BroodTarget)

	// The queen excluder sits below the brood nest: even a strong colony
	// shows some coupling to ambient there, plus a small diurnal lag.
	inside := outside + reg*(target-outside)*0.97
	// A weak stochastic wobble from cluster movement.
	inside += c.r.Gaussian(0, 0.15*(1-reg)+0.05)

	// Colony metabolism and nectar evaporation keep in-hive RH in the
	// 50-70% band for an active colony; an empty hive tracks outside.
	insideRH := float64(w.Humidity) + reg*(0.60-float64(w.Humidity))*0.8

	activity := c.activityAt(w)
	return State{
		Time:           w.Time,
		InsideTemp:     units.Celsius(inside),
		InsideHumidity: units.RelativeHumidity(insideRH).Clamp(),
		Activity:       activity,
		Queen:          c.cfg.Queen,
	}
}

// activityAt models foraging intensity: zero at night, rising with
// daylight irradiance, suppressed by cold, and noisier when queenless.
func (c *Colony) activityAt(w weather.Sample) float64 {
	if c.cfg.Population == 0 {
		return 0
	}
	light := math.Tanh(float64(w.Irradiance) / 300)
	warmth := sigmoid((float64(w.Temperature) - 10) / 3)
	act := light * warmth
	if c.cfg.Queen == QueenLost {
		// Queenless colonies forage less but fan and roar more; net
		// acoustic activity stays up while entrance traffic drops.
		act = 0.4*act + 0.3
	}
	act += c.r.Gaussian(0, 0.03)
	return clamp(act, 0, 1)
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
