package hive

import (
	"testing"
	"time"

	"beesim/internal/solar"
	"beesim/internal/units"
	"beesim/internal/weather"
)

func sampleAt(t *testing.T, hour int, cloud float64) weather.Sample {
	t.Helper()
	tt := time.Date(2023, 4, 15, hour, 0, 0, 0, time.UTC)
	return weather.Sample{
		Time:        tt,
		Temperature: 15,
		Humidity:    0.7,
		CloudCover:  cloud,
		Irradiance:  solar.Irradiance(solar.Cachan, tt, cloud),
	}
}

func TestFullColonyHoldsBroodTemperature(t *testing.T) {
	c := New(DefaultConfig())
	s := c.StateAt(sampleAt(t, 12, 0.2))
	if s.InsideTemp < 30 || s.InsideTemp > 36 {
		t.Fatalf("inside temp = %v, want near 35 °C for a full colony", s.InsideTemp)
	}
}

func TestEmptyHiveTracksAmbient(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Population = 0
	c := New(cfg)
	w := sampleAt(t, 12, 0.2)
	s := c.StateAt(w)
	if diff := float64(s.InsideTemp) - float64(w.Temperature); diff > 1.5 || diff < -1.5 {
		t.Fatalf("empty hive inside %v vs outside %v, want near-equal", s.InsideTemp, w.Temperature)
	}
	if s.Activity != 0 {
		t.Fatalf("empty hive activity = %v, want 0", s.Activity)
	}
}

func TestRegulationScalesWithPopulation(t *testing.T) {
	w := sampleAt(t, 12, 0.2)
	prev := -1.0
	for _, pop := range []int{0, 5000, 20000, 60000} {
		cfg := DefaultConfig()
		cfg.Population = pop
		cfg.Seed = 7
		s := New(cfg).StateAt(w)
		if float64(s.InsideTemp) < prev-0.5 {
			t.Fatalf("inside temp not monotone with population at %d bees", pop)
		}
		prev = float64(s.InsideTemp)
	}
}

func TestColdSnapStillRegulated(t *testing.T) {
	c := New(DefaultConfig())
	w := sampleAt(t, 12, 0.8)
	w.Temperature = -5
	s := c.StateAt(w)
	if s.InsideTemp < 25 {
		t.Fatalf("inside temp = %v in a cold snap, colony should defend the nest", s.InsideTemp)
	}
}

func TestHumidityBandForActiveColony(t *testing.T) {
	c := New(DefaultConfig())
	for hour := 0; hour < 24; hour++ {
		s := c.StateAt(sampleAt(t, hour, 0.4))
		if s.InsideHumidity < 0.4 || s.InsideHumidity > 0.8 {
			t.Fatalf("hour %d: in-hive RH = %v, want 40-80%%", hour, s.InsideHumidity)
		}
	}
}

func TestActivityDiurnal(t *testing.T) {
	c := New(DefaultConfig())
	day := c.StateAt(sampleAt(t, 12, 0.1))
	night := c.StateAt(sampleAt(t, 23, 0.1))
	if day.Activity <= night.Activity {
		t.Fatalf("day activity %v not above night %v", day.Activity, night.Activity)
	}
	if night.Activity > 0.15 {
		t.Fatalf("night activity = %v, want near zero", night.Activity)
	}
}

func TestActivityColdSuppression(t *testing.T) {
	c := New(DefaultConfig())
	warm := sampleAt(t, 12, 0.1)
	cold := sampleAt(t, 12, 0.1)
	cold.Temperature = 2
	if a, b := c.StateAt(warm).Activity, c.StateAt(cold).Activity; b >= a {
		t.Fatalf("cold day activity %v not below warm day %v", b, a)
	}
}

func TestQueenStateString(t *testing.T) {
	cases := map[QueenState]string{
		QueenPresent:  "queen present",
		QueenLost:     "queenless",
		QueenPiping:   "queen piping",
		QueenState(9): "unknown",
	}
	for q, want := range cases {
		if got := q.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", q, got, want)
		}
	}
}

func TestSetQueenPropagates(t *testing.T) {
	c := New(DefaultConfig())
	c.SetQueen(QueenLost)
	if c.Queen() != QueenLost {
		t.Fatal("SetQueen did not stick")
	}
	s := c.StateAt(sampleAt(t, 12, 0.2))
	if s.Queen != QueenLost {
		t.Fatal("state does not carry queen state")
	}
}

func TestQueenlessNightAcousticFloor(t *testing.T) {
	// A queenless colony roars even with no foraging: activity floor > 0.
	cfg := DefaultConfig()
	cfg.Queen = QueenLost
	c := New(cfg)
	s := c.StateAt(sampleAt(t, 23, 0.1))
	if s.Activity < 0.15 {
		t.Fatalf("queenless night activity = %v, want >= 0.15 (roar)", s.Activity)
	}
}

func TestActivityBounds(t *testing.T) {
	c := New(DefaultConfig())
	for hour := 0; hour < 24; hour++ {
		for _, cloud := range []float64{0, 0.5, 1} {
			if a := c.StateAt(sampleAt(t, hour, cloud)).Activity; a < 0 || a > 1 {
				t.Fatalf("activity %v out of [0,1]", a)
			}
		}
	}
}

func TestPopulationAccessor(t *testing.T) {
	if New(DefaultConfig()).Population() != 40000 {
		t.Fatal("population accessor mismatch")
	}
	_ = units.Celsius(0) // keep import in intent: config carries Celsius
}
