package report

// CSV export for obs metric snapshots, so a run's counters can land in
// the same spreadsheet as its timeseries.

import (
	"encoding/csv"
	"io"
	"strconv"

	"beesim/internal/obs"
)

// WriteMetricsCSV writes a metrics snapshot as CSV with the columns
// type,name,key,value. Counters and gauges take one row each (empty
// key). Histograms take fixed summary rows ("count", "sum", then for
// non-empty histograms "min", "max" and one "q:<quantile>" row per
// standard percentile), conditional accounting rows ("low", "high",
// "dropped" when non-zero), and one row per populated bucket
// ("le:<bound>"). Rows follow the snapshot's name-sorted order and the
// per-histogram key order is fixed, so output is byte-deterministic.
func WriteMetricsCSV(w io.Writer, s obs.Snapshot) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"type", "name", "key", "value"}); err != nil {
		return err
	}
	fv := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	uv := func(v uint64) string { return strconv.FormatUint(v, 10) }
	for _, c := range s.Counters {
		if err := cw.Write([]string{"counter", c.Name, "", fv(c.Value)}); err != nil {
			return err
		}
	}
	for _, g := range s.Gauges {
		if err := cw.Write([]string{"gauge", g.Name, "", fv(g.Value)}); err != nil {
			return err
		}
	}
	for _, h := range s.Histograms {
		if err := cw.Write([]string{"histogram", h.Name, "count", uv(h.Count)}); err != nil {
			return err
		}
		if err := cw.Write([]string{"histogram", h.Name, "sum", fv(h.Sum)}); err != nil {
			return err
		}
		if h.Count > 0 {
			if err := cw.Write([]string{"histogram", h.Name, "min", fv(h.Min)}); err != nil {
				return err
			}
			if err := cw.Write([]string{"histogram", h.Name, "max", fv(h.Max)}); err != nil {
				return err
			}
		}
		for _, q := range h.Quantiles {
			if err := cw.Write([]string{"histogram", h.Name, "q:" + fv(q.Q), fv(q.V)}); err != nil {
				return err
			}
		}
		if h.Low > 0 {
			if err := cw.Write([]string{"histogram", h.Name, "low", uv(h.Low)}); err != nil {
				return err
			}
		}
		if h.High > 0 {
			if err := cw.Write([]string{"histogram", h.Name, "high", uv(h.High)}); err != nil {
				return err
			}
		}
		if h.Dropped > 0 {
			if err := cw.Write([]string{"histogram", h.Name, "dropped", uv(h.Dropped)}); err != nil {
				return err
			}
		}
		for _, b := range h.Buckets {
			if b.Count == 0 {
				continue
			}
			if err := cw.Write([]string{"histogram", h.Name, "le:" + b.LE, uv(b.Count)}); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
