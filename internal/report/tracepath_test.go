package report

import (
	"strings"
	"testing"
	"time"

	"beesim/internal/obs"
)

func tracedSummaries(t *testing.T) ([]obs.TraceSummary, obs.Snapshot) {
	t.Helper()
	epoch := time.Date(2023, 4, 15, 0, 0, 0, 0, time.UTC)
	tr := obs.NewTracer(epoch)
	m := obs.NewRegistry()
	h := m.Histogram("upload_seconds")
	for i := 0; i < 3; i++ {
		sc := obs.NewRootSpan(7, "rep-hive", uint64(i))
		at := epoch.Add(time.Duration(i) * time.Minute)
		total := time.Duration(4+i) * time.Second
		tr.SpanCtx(sc.Child("compute", 0), "compute", "edge", obs.TidRoutine,
			at, 1*time.Second, nil)
		tr.SpanCtx(sc.Child("upload", 0), "uplink transfer", "net", obs.TidNetwork,
			at.Add(1*time.Second), total-1*time.Second, nil)
		tr.SpanCtx(sc, "wake-up cycle", "edge", obs.TidRoutine, at, total, nil)
		h.ObserveExemplar(total.Seconds(), sc)
	}
	sums := obs.AnalyzeTraces(tr.Events())
	if len(sums) != 3 {
		t.Fatalf("got %d traces, want 3", len(sums))
	}
	return sums, m.Snapshot()
}

func TestWriteTraceReport(t *testing.T) {
	sums, snap := tracedSummaries(t)
	var sb strings.Builder
	if err := WriteTraceReport(&sb, sums, 2, snap); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"traces: 3",
		"Slowest uploads (top 2)",
		"Latency decomposition by segment",
		"uplink transfer",
		"compute",
		"Histogram exemplars",
		"upload_seconds",
		sums[0].TraceID,
		"100.0%",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	// Slowest-first: the top row is the 6 s trace.
	if i6, i4 := strings.Index(out, "6000.000"), strings.Index(out, "4000.000"); i6 < 0 || i4 < 0 || i6 > i4 {
		t.Errorf("slowest trace not first:\n%s", out)
	}

	// Byte-deterministic render.
	var sb2 strings.Builder
	if err := WriteTraceReport(&sb2, sums, 2, snap); err != nil {
		t.Fatal(err)
	}
	if sb2.String() != out {
		t.Error("trace report not deterministic")
	}
}

func TestWriteTraceReportEmpty(t *testing.T) {
	var sb strings.Builder
	if err := WriteTraceReport(&sb, nil, 5, obs.Snapshot{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "no traced uploads") {
		t.Errorf("empty report = %q", sb.String())
	}
}
