package report

import (
	"encoding/csv"
	"io"
	"strconv"

	"beesim/internal/ledger"
)

// WriteLedgerCSV writes a ledger breakdown (per hive, device,
// component, task and direction) as CSV — the spreadsheet twin of
// hivereport's tables.
func WriteLedgerCSV(w io.Writer, rows []ledger.Row) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"hive", "device", "component", "task", "direction",
		"joules", "seconds", "entries",
	}); err != nil {
		return err
	}
	for _, r := range rows {
		if err := cw.Write([]string{
			r.Hive, r.Device, r.Component, r.Task, r.Dir.String(),
			strconv.FormatFloat(r.Joules, 'g', -1, 64),
			strconv.FormatFloat(r.Seconds, 'g', -1, 64),
			strconv.Itoa(r.Count),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
