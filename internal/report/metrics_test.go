package report

import (
	"bytes"
	"encoding/csv"
	"math"
	"strings"
	"testing"

	"beesim/internal/obs"
)

func TestWriteSeriesCSVEscaping(t *testing.T) {
	// Series names with commas, quotes and newlines must round-trip
	// through a standard CSV reader unchanged.
	hostile := []string{`edge, cloud`, `the "winner"`, "multi\nline"}
	a, _ := NewSeries(hostile[0], []float64{1, 2}, []float64{10, 20})
	b, _ := NewSeries(hostile[1], []float64{1, 2}, []float64{30, 40})
	c, _ := NewSeries(hostile[2], []float64{1, 2}, []float64{50, 60})
	var buf bytes.Buffer
	if err := WriteSeriesCSV(&buf, "x,axis", a, b, c); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("exported CSV does not parse back: %v", err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	wantHeader := []string{"x,axis", hostile[0], hostile[1], hostile[2]}
	for i, want := range wantHeader {
		if rows[0][i] != want {
			t.Fatalf("header[%d] = %q, want %q", i, rows[0][i], want)
		}
	}
	if rows[1][1] != "10" || rows[2][3] != "60" {
		t.Fatalf("data rows corrupted: %v", rows[1:])
	}
}

func TestWriteMetricsCSV(t *testing.T) {
	r := obs.NewRegistry()
	r.Counter("battery_discharge_j_total").Add(42.5)
	r.Counter(`odd "name", with comma`).Inc()
	r.Gauge("battery_soc").Set(0.8)
	h := r.Histogram("routine_seconds")
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(math.NaN()) // dropped
	var buf bytes.Buffer
	if err := WriteMetricsCSV(&buf, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("metrics CSV does not parse back: %v", err)
	}
	if got := rows[0]; strings.Join(got, "|") != "type|name|key|value" {
		t.Fatalf("header = %v", got)
	}
	find := func(typ, name, key string) string {
		for _, row := range rows[1:] {
			if row[0] == typ && row[1] == name && row[2] == key {
				return row[3]
			}
		}
		t.Fatalf("no row %s/%s/%s in:\n%s", typ, name, key, buf.String())
		return ""
	}
	if v := find("counter", "battery_discharge_j_total", ""); v != "42.5" {
		t.Fatalf("counter value = %q", v)
	}
	if v := find("counter", `odd "name", with comma`, ""); v != "1" {
		t.Fatalf("escaped counter value = %q", v)
	}
	if v := find("gauge", "battery_soc", ""); v != "0.8" {
		t.Fatalf("gauge value = %q", v)
	}
	if v := find("histogram", "routine_seconds", "count"); v != "2" {
		t.Fatalf("histogram count = %q", v)
	}
	if v := find("histogram", "routine_seconds", "dropped"); v != "1" {
		t.Fatalf("histogram dropped = %q", v)
	}
	if v := find("histogram", "routine_seconds", "min"); v != "0.5" {
		t.Fatalf("histogram min = %q", v)
	}
	if v := find("histogram", "routine_seconds", "max"); v != "5" {
		t.Fatalf("histogram max = %q", v)
	}
	// The percentile columns are the point of the export: p50 is the
	// rank-1 element's bucket bound, p99 the rank-2 element clamped to
	// the observed max.
	if v := find("histogram", "routine_seconds", "q:0.5"); v != "0.515625" {
		t.Fatalf("q:0.5 = %q", v)
	}
	if v := find("histogram", "routine_seconds", "q:0.99"); v != "5" {
		t.Fatalf("q:0.99 = %q", v)
	}
	// Log-linear buckets: 0.5 lands under 0.515625, 5 under 5.125.
	if v := find("histogram", "routine_seconds", "le:0.515625"); v != "1" {
		t.Fatalf("le:0.515625 bucket = %q", v)
	}
	if v := find("histogram", "routine_seconds", "le:5.125"); v != "1" {
		t.Fatalf("le:5.125 bucket = %q", v)
	}
}

func TestWriteMetricsCSVDeterministic(t *testing.T) {
	build := func() obs.Snapshot {
		r := obs.NewRegistry()
		r.Counter("zz").Inc()
		r.Counter("aa").Inc()
		r.Gauge("mm").Set(1)
		return r.Snapshot()
	}
	var a, b bytes.Buffer
	if err := WriteMetricsCSV(&a, build()); err != nil {
		t.Fatal(err)
	}
	if err := WriteMetricsCSV(&b, build()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("metrics CSV must be byte-deterministic")
	}
}

func TestChartSkipsNonFinitePoints(t *testing.T) {
	// A stray NaN or Inf sample must neither panic (int(NaN) as a grid
	// index) nor poison the axis ranges; the finite points still plot.
	c := NewChart("robust", "x", "y")
	s, _ := NewSeries("edge",
		[]float64{1, 2, math.NaN(), 4, 5},
		[]float64{10, math.Inf(1), 30, math.Inf(-1), 50})
	c.Add(s)
	var buf bytes.Buffer
	if err := c.Render(&buf); err != nil {
		t.Fatalf("chart with mixed finite/non-finite points failed: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "*") {
		t.Fatalf("finite points did not plot:\n%s", out)
	}
	// Axis labels must come from the finite points only (max y = 50).
	if !strings.Contains(out, "50") || strings.Contains(out, "Inf") || strings.Contains(out, "NaN") {
		t.Fatalf("axis range poisoned by non-finite samples:\n%s", out)
	}
}

func TestChartAllNonFiniteIsError(t *testing.T) {
	c := NewChart("empty", "", "")
	s, _ := NewSeries("bad",
		[]float64{math.NaN(), math.Inf(1)},
		[]float64{math.NaN(), math.Inf(-1)})
	c.Add(s)
	if err := c.Render(&bytes.Buffer{}); err == nil {
		t.Fatal("chart with no finite points must refuse to render")
	}
}
