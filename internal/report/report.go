// Package report renders beesim's experiment outputs: text tables in the
// layout of the paper's Tables I/II, ASCII line charts for quick looks at
// the figures, and CSV series for external plotting.
package report

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
	"text/tabwriter"
)

// Table is a simple column-oriented text table.
type Table struct {
	Title   string
	Columns []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends one row; the cell count must match the columns.
func (t *Table) AddRow(cells ...string) error {
	if len(cells) != len(t.Columns) {
		return fmt.Errorf("report: row has %d cells, table has %d columns",
			len(cells), len(t.Columns))
	}
	t.rows = append(t.rows, cells)
	return nil
}

// MustAddRow is AddRow that panics on a shape mismatch (a programming
// error in experiment code).
func (t *Table) MustAddRow(cells ...string) {
	if err := t.AddRow(cells...); err != nil {
		panic(err)
	}
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Render writes the table to w.
func (t *Table) Render(w io.Writer) error {
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n%s\n", t.Title, strings.Repeat("=", len(t.Title))); err != nil {
			return err
		}
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	if _, err := fmt.Fprintln(tw, strings.Join(t.Columns, "\t")); err != nil {
		return err
	}
	seps := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		seps[i] = strings.Repeat("-", len(c))
	}
	if _, err := fmt.Fprintln(tw, strings.Join(seps, "\t")); err != nil {
		return err
	}
	for _, row := range t.rows {
		if _, err := fmt.Fprintln(tw, strings.Join(row, "\t")); err != nil {
			return err
		}
	}
	return tw.Flush()
}

// String renders the table to a string.
func (t *Table) String() string {
	var sb strings.Builder
	if err := t.Render(&sb); err != nil {
		return "report: render error: " + err.Error()
	}
	return sb.String()
}

// Series is one named line of (x, y) points for charts and CSV export.
type Series struct {
	Name string
	X, Y []float64
}

// NewSeries validates and builds a series.
func NewSeries(name string, x, y []float64) (Series, error) {
	if len(x) != len(y) {
		return Series{}, fmt.Errorf("report: series %q has %d x but %d y", name, len(x), len(y))
	}
	return Series{Name: name, X: x, Y: y}, nil
}

// Chart is a rough ASCII line chart for terminal output: good enough to
// see crossovers and convergence without leaving the shell.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Width  int
	Height int
	series []Series
}

// NewChart creates a chart with sensible terminal dimensions.
func NewChart(title, xlabel, ylabel string) *Chart {
	return &Chart{Title: title, XLabel: xlabel, YLabel: ylabel, Width: 72, Height: 20}
}

// Add appends a series to the chart.
func (c *Chart) Add(s Series) { c.series = append(c.series, s) }

var markers = []byte{'*', 'o', '+', 'x', '#', '@'}

// Render draws the chart to w.
func (c *Chart) Render(w io.Writer) error {
	if len(c.series) == 0 {
		return errors.New("report: chart has no series")
	}
	// Only finite points participate: a stray NaN or Inf sample must not
	// poison the axis ranges (NaN comparisons) or the grid indexing
	// (int(NaN) is platform-defined and panics as an index).
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	empty := true
	for _, s := range c.series {
		for i := range s.X {
			if !isFinite(s.X[i]) || !isFinite(s.Y[i]) {
				continue
			}
			empty = false
			minX, maxX = math.Min(minX, s.X[i]), math.Max(maxX, s.X[i])
			minY, maxY = math.Min(minY, s.Y[i]), math.Max(maxY, s.Y[i])
		}
	}
	if empty {
		return errors.New("report: chart series have no finite points")
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, c.Height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", c.Width))
	}
	for si, s := range c.series {
		m := markers[si%len(markers)]
		for i := range s.X {
			if !isFinite(s.X[i]) || !isFinite(s.Y[i]) {
				continue
			}
			col := int((s.X[i] - minX) / (maxX - minX) * float64(c.Width-1))
			row := int((s.Y[i] - minY) / (maxY - minY) * float64(c.Height-1))
			grid[c.Height-1-row][col] = m
		}
	}
	if c.Title != "" {
		if _, err := fmt.Fprintln(w, c.Title); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%10.4g ┤%s\n", maxY, string(grid[0])); err != nil {
		return err
	}
	for _, line := range grid[1 : c.Height-1] {
		if _, err := fmt.Fprintf(w, "%10s │%s\n", "", string(line)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%10.4g ┤%s\n", minY, string(grid[c.Height-1])); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%10s └%s\n", "", strings.Repeat("─", c.Width)); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%11s%-10.4g%*s%10.4g\n", "", minX, c.Width-20, "", maxX); err != nil {
		return err
	}
	legend := make([]string, len(c.series))
	for i, s := range c.series {
		legend[i] = fmt.Sprintf("%c %s", markers[i%len(markers)], s.Name)
	}
	if _, err := fmt.Fprintf(w, "%11s%s", "", strings.Join(legend, "   ")); err != nil {
		return err
	}
	if c.XLabel != "" || c.YLabel != "" {
		if _, err := fmt.Fprintf(w, "\n%11sx: %s, y: %s", "", c.XLabel, c.YLabel); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

func isFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// WriteSeriesCSV writes series sharing an x column to w. All series must
// have identical x values.
func WriteSeriesCSV(w io.Writer, xName string, series ...Series) error {
	if len(series) == 0 {
		return errors.New("report: no series")
	}
	n := len(series[0].X)
	for _, s := range series[1:] {
		if len(s.X) != n {
			return fmt.Errorf("report: series %q length %d != %d", s.Name, len(s.X), n)
		}
		for i := range s.X {
			if s.X[i] != series[0].X[i] {
				return fmt.Errorf("report: series %q x values differ at %d", s.Name, i)
			}
		}
	}
	cw := csv.NewWriter(w)
	header := append([]string{xName}, make([]string, len(series))...)
	for i, s := range series {
		header[i+1] = s.Name
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, 1+len(series))
	for i := 0; i < n; i++ {
		row[0] = strconv.FormatFloat(series[0].X[i], 'g', -1, 64)
		for j, s := range series {
			row[j+1] = strconv.FormatFloat(s.Y[i], 'g', -1, 64)
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
