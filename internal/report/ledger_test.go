package report

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"beesim/internal/ledger"
)

func TestWriteLedgerCSV(t *testing.T) {
	lg := ledger.New()
	at := time.Date(2023, 4, 10, 6, 0, 0, 0, time.UTC)
	lg.Append(ledger.Entry{T: at, Hive: "h1", Device: "edge", Component: "pi3b",
		Task: "Sleep", Dir: ledger.Consume, Joules: 2.5, Seconds: 4, Store: "battery"})
	lg.Append(ledger.Entry{T: at, Hive: "h1", Device: "edge", Component: "pi3b",
		Task: "Sleep", Dir: ledger.Consume, Joules: 2.5, Seconds: 4, Store: "battery"})
	lg.Append(ledger.Entry{T: at, Hive: "h1", Device: "battery", Component: "pack",
		Task: "charge", Dir: ledger.Harvest, Joules: 10, Store: "battery"})

	var buf bytes.Buffer
	if err := WriteLedgerCSV(&buf, ledger.Breakdown(lg.Entries(), "")); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 { // header + 2 aggregated rows
		t.Fatalf("lines = %d:\n%s", len(lines), buf.String())
	}
	if lines[0] != "hive,device,component,task,direction,joules,seconds,entries" {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[1] != "h1,battery,pack,charge,harvest,10,0,1" {
		t.Fatalf("row 1 = %q", lines[1])
	}
	if lines[2] != "h1,edge,pi3b,Sleep,consume,5,8,2" {
		t.Fatalf("row 2 = %q", lines[2])
	}
}
