package report

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tbl := NewTable("Table I", "Task", "Energy (J)", "Time (s)")
	if err := tbl.AddRow("Sleep", "111.6", "178.5"); err != nil {
		t.Fatal(err)
	}
	tbl.MustAddRow("Shutdown", "21.0", "9.9")
	out := tbl.String()
	for _, want := range []string{"Table I", "Task", "Sleep", "111.6", "Shutdown"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
	if tbl.NumRows() != 2 {
		t.Fatalf("rows = %d", tbl.NumRows())
	}
}

func TestTableRowShape(t *testing.T) {
	tbl := NewTable("x", "a", "b")
	if err := tbl.AddRow("only one"); err == nil {
		t.Fatal("short row accepted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustAddRow did not panic on bad shape")
		}
	}()
	tbl.MustAddRow("1", "2", "3")
}

func TestNewSeriesValidation(t *testing.T) {
	if _, err := NewSeries("bad", []float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("mismatched series accepted")
	}
	s, err := NewSeries("ok", []float64{1, 2}, []float64{3, 4})
	if err != nil || s.Name != "ok" {
		t.Fatal("valid series rejected")
	}
}

func TestChartRender(t *testing.T) {
	c := NewChart("Figure 7", "clients", "J/client")
	edge, _ := NewSeries("edge", []float64{100, 500, 1000}, []float64{367.5, 367.5, 367.5})
	cloud, _ := NewSeries("edge+cloud", []float64{100, 500, 1000}, []float64{470, 380, 360})
	c.Add(edge)
	c.Add(cloud)
	var buf bytes.Buffer
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Figure 7", "edge", "edge+cloud", "clients", "J/client", "*", "o"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q", want)
		}
	}
	if lines := strings.Count(out, "\n"); lines < 20 {
		t.Fatalf("chart too short: %d lines", lines)
	}
}

func TestChartErrors(t *testing.T) {
	c := NewChart("x", "", "")
	if err := c.Render(&bytes.Buffer{}); err == nil {
		t.Fatal("empty chart rendered")
	}
	s, _ := NewSeries("e", nil, nil)
	c.Add(s)
	if err := c.Render(&bytes.Buffer{}); err == nil {
		t.Fatal("chart with empty series rendered")
	}
}

func TestChartConstantSeries(t *testing.T) {
	// A flat line must not divide by zero.
	c := NewChart("flat", "", "")
	s, _ := NewSeries("f", []float64{1, 2, 3}, []float64{5, 5, 5})
	c.Add(s)
	if err := c.Render(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
}

func TestWriteSeriesCSV(t *testing.T) {
	a, _ := NewSeries("edge", []float64{10, 20}, []float64{367.5, 367.5})
	b, _ := NewSeries("cloud", []float64{10, 20}, []float64{500, 430})
	var buf bytes.Buffer
	if err := WriteSeriesCSV(&buf, "clients", a, b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d:\n%s", len(lines), buf.String())
	}
	if lines[0] != "clients,edge,cloud" {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[1] != "10,367.5,500" {
		t.Fatalf("row = %q", lines[1])
	}
}

func TestWriteSeriesCSVErrors(t *testing.T) {
	if err := WriteSeriesCSV(&bytes.Buffer{}, "x"); err == nil {
		t.Error("no series accepted")
	}
	a, _ := NewSeries("a", []float64{1, 2}, []float64{1, 2})
	short, _ := NewSeries("s", []float64{1}, []float64{1})
	if err := WriteSeriesCSV(&bytes.Buffer{}, "x", a, short); err == nil {
		t.Error("mismatched lengths accepted")
	}
	shifted, _ := NewSeries("sh", []float64{1, 3}, []float64{1, 2})
	if err := WriteSeriesCSV(&bytes.Buffer{}, "x", a, shifted); err == nil {
		t.Error("mismatched x values accepted")
	}
}
