package report

// Critical-path report for traced campaigns: the top-K slowest uploads
// with their latency attribution, the aggregate per-segment
// decomposition, and the exemplar cross-reference tying histogram
// buckets back to concrete trace IDs. Shared by `hivereport trace` and
// the root determinism test so both render byte-identical text.

import (
	"fmt"
	"io"
	"strconv"

	"beesim/internal/obs"
)

// msFmt renders microseconds as milliseconds with fixed precision so
// tables line up and output is byte-deterministic.
func msFmt(us int64) string {
	return strconv.FormatFloat(float64(us)/1e3, 'f', 3, 64)
}

// pctFmt renders a ratio as a fixed-precision percentage.
func pctFmt(r float64) string {
	return strconv.FormatFloat(100*r, 'f', 1, 64) + "%"
}

// WriteTraceReport renders the critical-path analysis of a traced
// campaign: a slowest-uploads table (up to topK rows), the aggregate
// latency decomposition across all traces, and — when the metrics
// snapshot carries exemplars — the histogram-to-trace cross-reference.
// Traces must already be sorted slowest-first, as AnalyzeTraces returns
// them.
func WriteTraceReport(w io.Writer, sums []obs.TraceSummary, topK int, snap obs.Snapshot) error {
	if len(sums) == 0 {
		_, err := fmt.Fprintln(w, "no traced uploads found")
		return err
	}
	var totalUS int64
	for _, s := range sums {
		totalUS += s.TotalUS
	}
	if _, err := fmt.Fprintf(w, "traces: %d  end-to-end total: %s ms\n\n",
		len(sums), msFmt(totalUS)); err != nil {
		return err
	}

	if topK > len(sums) {
		topK = len(sums)
	}
	slow := NewTable(fmt.Sprintf("Slowest uploads (top %d)", topK),
		"trace", "root", "spans", "total (ms)", "covered", "dominant segment")
	for _, s := range sums[:topK] {
		dom := "-"
		if len(s.Segments) > 0 {
			dom = fmt.Sprintf("%s (%s ms)", s.Segments[0].Name, msFmt(s.Segments[0].US))
		}
		slow.MustAddRow(s.TraceID, s.RootName, strconv.Itoa(s.Spans),
			msFmt(s.TotalUS), pctFmt(s.Coverage()), dom)
	}
	if err := slow.Render(w); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}

	stats := obs.AggregateSegments(sums)
	agg := NewTable("Latency decomposition by segment",
		"segment", "traces", "spans", "total (ms)", "p50 (ms)", "p99 (ms)", "share")
	for _, st := range stats {
		share := 0.0
		if totalUS > 0 {
			share = float64(st.TotalUS) / float64(totalUS)
		}
		agg.MustAddRow(st.Name, strconv.Itoa(st.Traces), strconv.Itoa(st.Spans),
			msFmt(st.TotalUS), msFmt(st.P50US), msFmt(st.P99US), pctFmt(share))
	}
	if err := agg.Render(w); err != nil {
		return err
	}

	rows := exemplarRows(sums, snap)
	if len(rows) == 0 {
		return nil
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	ex := NewTable("Histogram exemplars",
		"metric", "le", "value", "trace", "analyzed")
	for _, r := range rows {
		ex.MustAddRow(r...)
	}
	return ex.Render(w)
}

// exemplarRows flattens the snapshot's histogram exemplars and marks
// whether each exemplar's trace appears in the analyzed set. Snapshot
// histograms are name-sorted and per-histogram exemplars are
// bound-sorted, so the rows are deterministic.
func exemplarRows(sums []obs.TraceSummary, snap obs.Snapshot) [][]string {
	known := make(map[string]bool, len(sums))
	for _, s := range sums {
		known[s.TraceID] = true
	}
	var rows [][]string
	for _, h := range snap.Histograms {
		for _, e := range h.Exemplars {
			analyzed := "no"
			if known[e.TraceID] {
				analyzed = "yes"
			}
			rows = append(rows, []string{
				h.Name, e.LE,
				strconv.FormatFloat(e.Value, 'g', -1, 64),
				e.TraceID, analyzed,
			})
		}
	}
	return rows
}
