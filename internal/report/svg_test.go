package report

import (
	"bytes"
	"encoding/xml"
	"strings"
	"testing"
)

func svgWithData(t *testing.T) *SVGChart {
	t.Helper()
	c := NewSVGChart("Figure 7", "clients", "J/client")
	edge, err := NewSeries("edge", []float64{100, 500, 1000}, []float64{367.5, 367.5, 367.5})
	if err != nil {
		t.Fatal(err)
	}
	cloud, err := NewSeries("edge+cloud", []float64{100, 500, 1000}, []float64{470, 380, 360})
	if err != nil {
		t.Fatal(err)
	}
	c.Add(edge)
	c.Add(cloud)
	return c
}

func TestSVGWellFormedXML(t *testing.T) {
	var buf bytes.Buffer
	if err := svgWithData(t).Render(&buf); err != nil {
		t.Fatal(err)
	}
	dec := xml.NewDecoder(bytes.NewReader(buf.Bytes()))
	for {
		if _, err := dec.Token(); err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("SVG is not well-formed XML: %v", err)
		}
	}
}

func TestSVGContainsExpectedElements(t *testing.T) {
	var buf bytes.Buffer
	if err := svgWithData(t).Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"<svg", "polyline", "Figure 7", "edge+cloud", "clients", "J/client",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	if strings.Count(out, "<polyline") != 2 {
		t.Fatalf("polylines = %d, want 2", strings.Count(out, "<polyline"))
	}
}

func TestSVGEscapesLabels(t *testing.T) {
	c := NewSVGChart(`a < b & "c"`, "", "")
	s, _ := NewSeries("x<y", []float64{0, 1}, []float64{0, 1})
	c.Add(s)
	var buf bytes.Buffer
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, `a < b`) {
		t.Fatal("unescaped < in title")
	}
	if !strings.Contains(out, "&lt;") || !strings.Contains(out, "&amp;") {
		t.Fatal("escaping missing")
	}
	// Still well-formed.
	dec := xml.NewDecoder(strings.NewReader(out))
	for {
		if _, err := dec.Token(); err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("escaped SVG not well-formed: %v", err)
		}
	}
}

func TestSVGErrors(t *testing.T) {
	c := NewSVGChart("empty", "", "")
	if err := c.Render(&bytes.Buffer{}); err == nil {
		t.Fatal("no-series chart rendered")
	}
	s, _ := NewSeries("e", nil, nil)
	c.Add(s)
	if err := c.Render(&bytes.Buffer{}); err == nil {
		t.Fatal("empty-series chart rendered")
	}
}

func TestSVGConstantSeries(t *testing.T) {
	c := NewSVGChart("flat", "", "")
	s, _ := NewSeries("f", []float64{1, 2}, []float64{5, 5})
	c.Add(s)
	if err := c.Render(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
}

func TestFormatTick(t *testing.T) {
	cases := map[float64]string{
		12345: "12345",
		367.5: "368",
		12.25: "12.2",
		0.5:   "0.50",
	}
	for in, want := range cases {
		if got := formatTick(in); got != want {
			t.Errorf("formatTick(%v) = %q, want %q", in, got, want)
		}
	}
}
