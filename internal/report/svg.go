package report

import (
	"errors"
	"fmt"
	"io"
	"math"
	"strings"
)

// SVG rendering: the CLIs can export publication-style figure images
// (polyline charts with axes, ticks and a legend) without any imaging
// dependency — SVG is plain XML.

// SVGChart renders series as a scalable vector graphic.
type SVGChart struct {
	Title  string
	XLabel string
	YLabel string
	Width  int
	Height int
	series []Series
}

// NewSVGChart creates a chart with figure-like proportions.
func NewSVGChart(title, xlabel, ylabel string) *SVGChart {
	return &SVGChart{Title: title, XLabel: xlabel, YLabel: ylabel, Width: 720, Height: 440}
}

// Add appends a series.
func (c *SVGChart) Add(s Series) { c.series = append(c.series, s) }

// palette holds the line colors, chosen to stay distinguishable in
// grayscale print.
var palette = []string{"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b"}

const (
	marginLeft   = 70
	marginRight  = 20
	marginTop    = 40
	marginBottom = 60
)

// Render writes the SVG document.
func (c *SVGChart) Render(w io.Writer) error {
	if len(c.series) == 0 {
		return errors.New("report: svg chart has no series")
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	empty := true
	for _, s := range c.series {
		for i := range s.X {
			empty = false
			minX, maxX = math.Min(minX, s.X[i]), math.Max(maxX, s.X[i])
			minY, maxY = math.Min(minY, s.Y[i]), math.Max(maxY, s.Y[i])
		}
	}
	if empty {
		return errors.New("report: svg chart series are empty")
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	// Pad the y range slightly so lines don't hug the frame.
	pad := (maxY - minY) * 0.05
	minY -= pad
	maxY += pad

	plotW := float64(c.Width - marginLeft - marginRight)
	plotH := float64(c.Height - marginTop - marginBottom)
	xPix := func(x float64) float64 { return marginLeft + (x-minX)/(maxX-minX)*plotW }
	yPix := func(y float64) float64 { return marginTop + plotH - (y-minY)/(maxY-minY)*plotH }

	var sb strings.Builder
	fmt.Fprintf(&sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		c.Width, c.Height, c.Width, c.Height)
	sb.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	if c.Title != "" {
		fmt.Fprintf(&sb, `<text x="%d" y="24" font-family="sans-serif" font-size="16" text-anchor="middle">%s</text>`+"\n",
			c.Width/2, xmlEscape(c.Title))
	}
	// Frame.
	fmt.Fprintf(&sb, `<rect x="%d" y="%d" width="%.0f" height="%.0f" fill="none" stroke="#333"/>`+"\n",
		marginLeft, marginTop, plotW, plotH)

	// Ticks and grid.
	for i := 0; i <= 5; i++ {
		fx := minX + (maxX-minX)*float64(i)/5
		px := xPix(fx)
		fmt.Fprintf(&sb, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#ddd"/>`+"\n",
			px, float64(marginTop), px, float64(marginTop)+plotH)
		fmt.Fprintf(&sb, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="11" text-anchor="middle">%s</text>`+"\n",
			px, float64(marginTop)+plotH+16, formatTick(fx))
		fy := minY + (maxY-minY)*float64(i)/5
		py := yPix(fy)
		fmt.Fprintf(&sb, `<line x1="%d" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#ddd"/>`+"\n",
			marginLeft, py, float64(marginLeft)+plotW, py)
		fmt.Fprintf(&sb, `<text x="%d" y="%.1f" font-family="sans-serif" font-size="11" text-anchor="end">%s</text>`+"\n",
			marginLeft-6, py+4, formatTick(fy))
	}

	// Axis labels.
	if c.XLabel != "" {
		fmt.Fprintf(&sb, `<text x="%d" y="%d" font-family="sans-serif" font-size="13" text-anchor="middle">%s</text>`+"\n",
			marginLeft+int(plotW)/2, c.Height-14, xmlEscape(c.XLabel))
	}
	if c.YLabel != "" {
		fmt.Fprintf(&sb, `<text x="16" y="%d" font-family="sans-serif" font-size="13" text-anchor="middle" transform="rotate(-90 16 %d)">%s</text>`+"\n",
			marginTop+int(plotH)/2, marginTop+int(plotH)/2, xmlEscape(c.YLabel))
	}

	// Series polylines.
	for si, s := range c.series {
		color := palette[si%len(palette)]
		var pts strings.Builder
		for i := range s.X {
			fmt.Fprintf(&pts, "%.1f,%.1f ", xPix(s.X[i]), yPix(s.Y[i]))
		}
		fmt.Fprintf(&sb, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.8"/>`+"\n",
			strings.TrimSpace(pts.String()), color)
	}

	// Legend.
	lx, ly := marginLeft+10, marginTop+14
	for si, s := range c.series {
		color := palette[si%len(palette)]
		fmt.Fprintf(&sb, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="2.5"/>`+"\n",
			lx, ly+si*18-4, lx+22, ly+si*18-4, color)
		fmt.Fprintf(&sb, `<text x="%d" y="%d" font-family="sans-serif" font-size="12">%s</text>`+"\n",
			lx+28, ly+si*18, xmlEscape(s.Name))
	}
	sb.WriteString("</svg>\n")
	_, err := io.WriteString(w, sb.String())
	return err
}

func formatTick(v float64) string {
	a := math.Abs(v)
	switch {
	case a >= 10000:
		return fmt.Sprintf("%.0f", v)
	case a >= 100:
		return fmt.Sprintf("%.0f", v)
	case a >= 1:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

func xmlEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
