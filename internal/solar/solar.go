// Package solar models the energy supply of a smart beehive: solar
// geometry, clear-sky irradiance, cloud attenuation, and the 30 W
// monocrystalline panel + DC/DC converter chain the paper deploys.
//
// The paper's Figure 2a shows the system browning out after sunset: "the
// low luminosity takes the solar panel's output voltage to uncontrolled
// values, thus affecting the batteries and the electronics". The panel
// model therefore exposes both a produced power and a Stable flag that
// goes false below a light threshold; the hive trace simulation uses the
// flag to reproduce the night gaps in the figure.
package solar

import (
	"math"
	"time"

	"beesim/internal/ledger"
	"beesim/internal/units"
)

// Location is a geographic deployment site.
type Location struct {
	Name      string
	LatDeg    float64 // latitude, degrees north
	LonDeg    float64 // longitude, degrees east
	TZOffsetH float64 // offset of local civil time from UTC, hours
}

// The two apiary sites of the paper.
var (
	Cachan = Location{Name: "Cachan", LatDeg: 48.79, LonDeg: 2.33, TZOffsetH: 2}
	Lyon   = Location{Name: "Lyon", LatDeg: 45.76, LonDeg: 4.84, TZOffsetH: 2}
)

const solarConstant = 1361 // W/m^2, extraterrestrial flux

// Declination returns the solar declination in radians for a day of year
// (1-based), using Cooper's formula.
func Declination(dayOfYear int) float64 {
	return 23.45 * math.Pi / 180 *
		math.Sin(2*math.Pi*float64(284+dayOfYear)/365)
}

// Elevation returns the solar elevation angle in radians at the location
// and instant t (interpreted via the location's fixed UTC offset).
func Elevation(loc Location, t time.Time) float64 {
	ut := t.UTC()
	doy := ut.YearDay()
	decl := Declination(doy)
	// Local solar time: civil time corrected by longitude within the zone.
	// (Equation-of-time is < 17 min and irrelevant to the figure's shape.)
	civilHour := float64(ut.Hour()) + float64(ut.Minute())/60 +
		float64(ut.Second())/3600 + loc.TZOffsetH
	solarHour := civilHour + (loc.LonDeg-15*loc.TZOffsetH)/15
	hourAngle := (solarHour - 12) * 15 * math.Pi / 180
	lat := loc.LatDeg * math.Pi / 180
	sinEl := math.Sin(lat)*math.Sin(decl) + math.Cos(lat)*math.Cos(decl)*math.Cos(hourAngle)
	return math.Asin(clamp(sinEl, -1, 1))
}

// ClearSkyIrradiance returns the global horizontal irradiance under a
// cloudless sky at the location and instant, using the standard
// 0.7^(AM^0.678) atmospheric transmission with the Kasten-Young air mass.
func ClearSkyIrradiance(loc Location, t time.Time) units.WattsPerSquareMeter {
	el := Elevation(loc, t)
	if el <= 0 {
		return 0
	}
	zenithDeg := 90 - el*180/math.Pi
	am := 1 / (math.Cos(zenithDeg*math.Pi/180) +
		0.50572*math.Pow(96.07995-zenithDeg, -1.6364))
	direct := solarConstant * math.Pow(0.7, math.Pow(am, 0.678))
	// Horizontal projection plus a ~10% diffuse contribution.
	ghi := direct*math.Sin(el) + 0.1*direct
	return units.WattsPerSquareMeter(ghi)
}

// Irradiance applies a cloud-cover attenuation (cover in [0,1]) to the
// clear-sky value. The attenuation follows the Kasten-Czeplak form
// 1 - 0.75*cover^3.4.
func Irradiance(loc Location, t time.Time, cloudCover float64) units.WattsPerSquareMeter {
	cover := clamp(cloudCover, 0, 1)
	clear := ClearSkyIrradiance(loc, t)
	return units.WattsPerSquareMeter(float64(clear) * (1 - 0.75*math.Pow(cover, 3.4)))
}

// Panel models the deployed photovoltaic chain: a rated panel feeding a
// DC/DC step-down converter.
type Panel struct {
	// RatedPower is the panel's nameplate output at standard test
	// conditions (1000 W/m^2). The paper's panel is rated 30 W.
	RatedPower units.Watts
	// ConverterEfficiency is the DC/DC step-down efficiency (0..1].
	ConverterEfficiency float64
	// StableThreshold is the minimum irradiance below which the panel's
	// output voltage is uncontrolled and the downstream electronics cannot
	// be powered reliably (the paper's observed night brownout).
	StableThreshold units.WattsPerSquareMeter
}

// DefaultPanel reproduces the paper's hardware: 30 W monocrystalline
// panel, 5 V / 3 A step-down converter (~90 % efficient), brownout under
// 30 W/m^2 of light.
func DefaultPanel() Panel {
	return Panel{
		RatedPower:          30,
		ConverterEfficiency: 0.90,
		StableThreshold:     30,
	}
}

// Output returns the usable electrical power delivered downstream of the
// converter for a given irradiance, and whether the supply is stable.
// Below the stability threshold the delivered power is zero.
func (p Panel) Output(irr units.WattsPerSquareMeter) (units.Watts, bool) {
	if irr < p.StableThreshold {
		return 0, false
	}
	raw := float64(p.RatedPower) * float64(irr) / 1000
	if raw > float64(p.RatedPower) {
		raw = float64(p.RatedPower)
	}
	return units.Watts(raw * p.ConverterEfficiency), true
}

// Meter records panel production in the energy ledger. Its entries are
// attribution-only (no store): the joules actually banked are recorded
// by the battery's own charge probe — after converter curtailment and
// charge efficiency — so the panel overlay must stay out of the
// conservation balance or every stored joule would count twice. A nil
// meter is a no-op, matching the repo's probe idiom.
type Meter struct {
	lg   *ledger.Ledger
	hive string
}

// NewMeter wires a production meter for one hive's panel. Returns nil
// (a valid no-op meter) when lg is nil.
func NewMeter(lg *ledger.Ledger, hive string) *Meter {
	if lg == nil {
		return nil
	}
	return &Meter{lg: lg, hive: hive}
}

// Record appends one production observation: power p sustained for d at
// virtual time t. Zero production intervals are skipped, so a night of
// brownout adds no entries.
func (m *Meter) Record(t time.Time, p units.Watts, d time.Duration) {
	if m == nil || p <= 0 || d <= 0 {
		return
	}
	m.lg.Append(ledger.Entry{
		T: t, Hive: m.hive, Device: "panel", Component: "pv",
		Task: "panel output", Dir: ledger.Harvest,
		Joules: float64(p.Energy(d)), Seconds: d.Seconds(),
	})
}

// Daylight reports whether the sun is above the horizon at the location.
func Daylight(loc Location, t time.Time) bool {
	return Elevation(loc, t) > 0
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
