package solar

import (
	"math"
	"testing"
	"time"

	"beesim/internal/ledger"
)

// Spring noon/midnight in Cachan, expressed in UTC (TZ offset +2).
var (
	noon     = time.Date(2023, 4, 15, 10, 0, 0, 0, time.UTC)
	midnight = time.Date(2023, 4, 15, 22, 0, 0, 0, time.UTC)
)

func TestDeclinationRange(t *testing.T) {
	for d := 1; d <= 365; d++ {
		decl := Declination(d) * 180 / math.Pi
		if decl < -23.46 || decl > 23.46 {
			t.Fatalf("declination day %d = %v°, out of ±23.45", d, decl)
		}
	}
	// Summer solstice ~ +23.45°, winter ~ -23.45°.
	if decl := Declination(172) * 180 / math.Pi; decl < 23.3 {
		t.Errorf("solstice declination = %v°, want ~23.45", decl)
	}
	if decl := Declination(355) * 180 / math.Pi; decl > -23.3 {
		t.Errorf("winter declination = %v°, want ~-23.45", decl)
	}
}

func TestElevationDayNight(t *testing.T) {
	if el := Elevation(Cachan, noon); el <= 0 {
		t.Fatalf("noon elevation = %v rad, want > 0", el)
	}
	if el := Elevation(Cachan, midnight); el >= 0 {
		t.Fatalf("midnight elevation = %v rad, want < 0", el)
	}
}

func TestElevationPeaksNearNoon(t *testing.T) {
	best := -1.0
	bestHour := -1
	for h := 0; h < 24; h++ {
		tt := time.Date(2023, 4, 15, h, 0, 0, 0, time.UTC)
		if el := Elevation(Cachan, tt); el > best {
			best = el
			bestHour = h
		}
	}
	// Solar noon for +2 civil offset at lon 2.33°E is close to 10:50 UTC.
	if bestHour < 9 || bestHour > 12 {
		t.Fatalf("peak elevation at %d UTC, want near 10-11", bestHour)
	}
}

func TestClearSkyIrradiance(t *testing.T) {
	irr := ClearSkyIrradiance(Cachan, noon)
	if irr < 500 || irr > 1100 {
		t.Fatalf("spring noon GHI = %v, want 500-1100 W/m²", irr)
	}
	if irr := ClearSkyIrradiance(Cachan, midnight); irr != 0 {
		t.Fatalf("midnight GHI = %v, want 0", irr)
	}
}

func TestLyonVsCachan(t *testing.T) {
	// Lyon is ~3° further south: higher sun at local solar noon.
	lyonNoon := time.Date(2023, 4, 15, 10, 40, 0, 0, time.UTC)
	if Elevation(Lyon, lyonNoon) <= Elevation(Cachan, noon)-0.2 {
		t.Fatal("Lyon noon sun unexpectedly much lower than Cachan")
	}
}

func TestCloudAttenuation(t *testing.T) {
	clear := Irradiance(Cachan, noon, 0)
	overcast := Irradiance(Cachan, noon, 1)
	if float64(overcast) >= float64(clear) {
		t.Fatal("full cloud cover did not attenuate")
	}
	ratio := float64(overcast) / float64(clear)
	if math.Abs(ratio-0.25) > 0.01 {
		t.Fatalf("overcast ratio = %v, want 0.25 (Kasten-Czeplak)", ratio)
	}
	// Cover outside [0,1] is clamped.
	if Irradiance(Cachan, noon, -3) != clear {
		t.Fatal("negative cover not clamped")
	}
	if Irradiance(Cachan, noon, 7) != overcast {
		t.Fatal("cover > 1 not clamped")
	}
}

func TestPanelOutput(t *testing.T) {
	p := DefaultPanel()
	out, ok := p.Output(1000)
	if !ok {
		t.Fatal("full sun reported unstable")
	}
	if math.Abs(float64(out)-27) > 1e-9 { // 30 W * 0.90
		t.Fatalf("full-sun output = %v, want 27 W", out)
	}
	half, ok := p.Output(500)
	if !ok || math.Abs(float64(half)-13.5) > 1e-9 {
		t.Fatalf("half-sun output = %v (%v), want 13.5 W", half, ok)
	}
}

func TestPanelBrownout(t *testing.T) {
	p := DefaultPanel()
	out, ok := p.Output(10) // below the 30 W/m² threshold
	if ok || out != 0 {
		t.Fatalf("below threshold: output = %v stable = %v, want 0, false", out, ok)
	}
}

func TestPanelClampsAtRated(t *testing.T) {
	p := DefaultPanel()
	out, _ := p.Output(1500)
	if math.Abs(float64(out)-27) > 1e-9 {
		t.Fatalf("over-irradiance output = %v, want clamp at 27 W", out)
	}
}

func TestDaylight(t *testing.T) {
	if !Daylight(Cachan, noon) {
		t.Fatal("noon reported as night")
	}
	if Daylight(Cachan, midnight) {
		t.Fatal("midnight reported as day")
	}
}

func TestDaylightHoursSpring(t *testing.T) {
	// Mid-April at 48.8°N has roughly 13-14 daylight hours.
	hours := 0
	for h := 0; h < 24; h++ {
		tt := time.Date(2023, 4, 15, h, 30, 0, 0, time.UTC)
		if Daylight(Cachan, tt) {
			hours++
		}
	}
	if hours < 12 || hours > 15 {
		t.Fatalf("daylight hours = %d, want 12-15 in mid-April", hours)
	}
}

func TestIrradianceContinuityAcrossDays(t *testing.T) {
	// The model must not jump discontinuously at midnight rollovers.
	a := ClearSkyIrradiance(Cachan, time.Date(2023, 4, 15, 23, 59, 0, 0, time.UTC))
	b := ClearSkyIrradiance(Cachan, time.Date(2023, 4, 16, 0, 1, 0, 0, time.UTC))
	if a != 0 || b != 0 {
		t.Fatalf("irradiance around midnight = %v, %v, want 0, 0", a, b)
	}
}

func TestMeterRecordsAttributionOnly(t *testing.T) {
	lg := ledger.New()
	m := NewMeter(lg, "cachan-1")
	at := time.Date(2023, 4, 10, 12, 0, 0, 0, time.UTC)
	m.Record(at, 20, time.Minute)
	m.Record(at, 0, time.Minute) // night: skipped
	m.Record(at, 20, 0)          // degenerate: skipped
	entries := lg.Entries()
	if len(entries) != 1 {
		t.Fatalf("entries = %d, want 1", len(entries))
	}
	e := entries[0]
	if e.Dir != ledger.Harvest || e.Store != "" || e.Joules != 20*60 {
		t.Fatalf("entry = %+v", e)
	}
	// Attribution-only entries never disturb conservation.
	if rep := ledger.Audit(lg, ledger.DefaultTolerance()); !rep.OK() {
		t.Fatalf("panel overlay entered the balance: %v", rep.Violations)
	}

	// Nil-safe: a nil meter (or nil ledger) records nothing.
	var nilM *Meter
	nilM.Record(at, 20, time.Minute)
	if NewMeter(nil, "h") != nil {
		t.Fatal("NewMeter(nil) should return the no-op nil meter")
	}
}
