package proto

import (
	"bytes"
	"io"
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	body := Hello{HiveID: "cachan-1", WakePeriodSeconds: 300, Version: 1}
	raw := []byte{1, 2, 3, 4, 5}
	if err := Encode(&buf, TypeHello, body, raw); err != nil {
		t.Fatal(err)
	}
	f, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != TypeHello {
		t.Fatalf("type = %v", f.Type)
	}
	var back Hello
	if err := f.Unmarshal(TypeHello, &back); err != nil {
		t.Fatal(err)
	}
	if back != body {
		t.Fatalf("body = %+v, want %+v", back, body)
	}
	if !bytes.Equal(f.Raw, raw) {
		t.Fatalf("raw = %v", f.Raw)
	}
}

func TestFrameNoBodyNoRaw(t *testing.T) {
	var buf bytes.Buffer
	if err := Encode(&buf, TypeAck, nil, nil); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 13 {
		t.Fatalf("bare frame = %d bytes, want 13", buf.Len())
	}
	f, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != TypeAck || f.Body != nil || f.Raw != nil {
		t.Fatalf("frame = %+v", f)
	}
}

func TestDecodeBadMagic(t *testing.T) {
	data := make([]byte, 13)
	if _, err := Decode(bytes.NewReader(data)); err == nil {
		t.Fatal("zero magic accepted")
	}
}

func TestDecodeTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := Encode(&buf, TypeResult, Result{HiveID: "x"}, []byte{9, 9, 9}); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()
	for cut := 1; cut < len(whole); cut += 5 {
		if _, err := Decode(bytes.NewReader(whole[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestDecodeOversizeRejected(t *testing.T) {
	header := make([]byte, 13)
	header[0], header[1], header[2], header[3] = 0x42, 0x45, 0x45, 0x31
	header[4] = byte(TypeAck)
	// body length beyond MaxBody
	header[5], header[6], header[7], header[8] = 0xFF, 0xFF, 0xFF, 0xFF
	if _, err := Decode(bytes.NewReader(header)); err == nil {
		t.Fatal("oversized body accepted")
	}
}

func TestUnmarshalTypeMismatch(t *testing.T) {
	var buf bytes.Buffer
	if err := Encode(&buf, TypeResult, Result{}, nil); err != nil {
		t.Fatal(err)
	}
	f, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var h Hello
	if err := f.Unmarshal(TypeHello, &h); err == nil {
		t.Fatal("type mismatch accepted")
	}
}

func TestMultipleFramesOnOneStream(t *testing.T) {
	var buf bytes.Buffer
	for i := 0; i < 5; i++ {
		if err := Encode(&buf, TypeSensorReport, SensorReport{
			HiveID: "h", Time: time.Unix(int64(i), 0).UTC(), InsideTempC: 35,
		}, nil); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		f, err := Decode(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		var r SensorReport
		if err := f.Unmarshal(TypeSensorReport, &r); err != nil {
			t.Fatal(err)
		}
		if r.Time.Unix() != int64(i) {
			t.Fatalf("frame %d out of order: %v", i, r.Time)
		}
	}
	if _, err := Decode(&buf); err != io.EOF {
		t.Fatalf("stream end = %v, want EOF", err)
	}
}

func TestPCMRoundTrip(t *testing.T) {
	samples := []float64{0, 0.5, -0.5, 1, -1, 0.123, -0.987}
	raw := PCMEncode(samples)
	if len(raw) != 2*len(samples) {
		t.Fatalf("raw = %d bytes", len(raw))
	}
	back, err := PCMDecode(raw)
	if err != nil {
		t.Fatal(err)
	}
	for i := range samples {
		if math.Abs(back[i]-samples[i]) > 1.0/32000 {
			t.Fatalf("sample %d: %v vs %v", i, back[i], samples[i])
		}
	}
}

func TestPCMClipsAndValidates(t *testing.T) {
	raw := PCMEncode([]float64{7, -7})
	back, err := PCMDecode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if back[0] < 0.99 || back[1] > -0.99 {
		t.Fatalf("clipping failed: %v", back)
	}
	if _, err := PCMDecode([]byte{1, 2, 3}); err == nil {
		t.Fatal("odd PCM length accepted")
	}
}

func TestPropertyFrameRoundTrip(t *testing.T) {
	f := func(hive string, period float64, rawLen uint8) bool {
		if strings.ContainsRune(hive, 0) {
			hive = "h"
		}
		var buf bytes.Buffer
		raw := make([]byte, rawLen)
		for i := range raw {
			raw[i] = byte(i)
		}
		body := Hello{HiveID: hive, WakePeriodSeconds: period, Version: 1}
		if err := Encode(&buf, TypeHello, body, raw); err != nil {
			return false
		}
		fr, err := Decode(&buf)
		if err != nil {
			return false
		}
		var back Hello
		if err := fr.Unmarshal(TypeHello, &back); err != nil {
			return false
		}
		return back.HiveID == hive && bytes.Equal(fr.Raw, raw) &&
			(period != period || back.WakePeriodSeconds == period) // NaN-safe
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTypeStrings(t *testing.T) {
	for _, tt := range []Type{TypeHello, TypeWelcome, TypeSensorReport,
		TypeAudioUpload, TypeResult, TypeAck, TypeError, TypeBye, Type(0)} {
		if tt.String() == "" {
			t.Fatalf("type %d has empty name", tt)
		}
	}
}
