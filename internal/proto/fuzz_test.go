package proto

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzDecode hardens the frame parser against arbitrary bytes: it must
// never panic, never allocate beyond the declared limits, and round-trip
// anything it accepts.
func FuzzDecode(f *testing.F) {
	// Seed with valid frames of each type plus near-miss corruptions.
	var buf bytes.Buffer
	_ = Encode(&buf, TypeHello, Hello{HiveID: "h", WakePeriodSeconds: 300, Version: 1}, nil)
	f.Add(buf.Bytes())
	buf.Reset()
	_ = Encode(&buf, TypeAudioUpload, AudioUpload{HiveID: "h", SampleRate: 22050, Samples: 2},
		PCMEncode([]float64{0.1, -0.2}))
	f.Add(buf.Bytes())
	buf.Reset()
	_ = Encode(&buf, TypeAck, nil, nil)
	seed := buf.Bytes()
	f.Add(seed)
	// Corrupt magic.
	bad := append([]byte(nil), seed...)
	bad[0] ^= 0xFF
	f.Add(bad)
	// Oversized declared body.
	big := append([]byte(nil), seed...)
	binary.BigEndian.PutUint32(big[5:9], 0xFFFFFFFF)
	f.Add(big)
	f.Add([]byte{})
	f.Add([]byte("GET / HTTP/1.1\r\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := Decode(bytes.NewReader(data))
		if err != nil {
			return // rejection is fine; panics are not
		}
		// Anything accepted must re-encode losslessly.
		var out bytes.Buffer
		header := make([]byte, 13)
		binary.BigEndian.PutUint32(header[0:4], Magic)
		header[4] = byte(fr.Type)
		binary.BigEndian.PutUint32(header[5:9], uint32(len(fr.Body)))
		binary.BigEndian.PutUint32(header[9:13], uint32(len(fr.Raw)))
		out.Write(header)
		out.Write(fr.Body)
		out.Write(fr.Raw)
		back, err := Decode(&out)
		if err != nil {
			t.Fatalf("re-decode of accepted frame failed: %v", err)
		}
		if back.Type != fr.Type || !bytes.Equal(back.Body, fr.Body) || !bytes.Equal(back.Raw, fr.Raw) {
			t.Fatal("accepted frame did not round-trip")
		}
	})
}

// FuzzPCMDecode hardens the PCM parser.
func FuzzPCMDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1})
	f.Add(PCMEncode([]float64{0.5, -0.5, 1, -1}))
	f.Fuzz(func(t *testing.T, data []byte) {
		samples, err := PCMDecode(data)
		if err != nil {
			return
		}
		for _, v := range samples {
			if v < -1.001 || v > 1.001 {
				t.Fatalf("decoded sample %v out of range", v)
			}
		}
		// Round trip within quantization.
		back := PCMEncode(samples)
		if len(back) != len(data) {
			t.Fatalf("length changed: %d -> %d", len(data), len(back))
		}
	})
}
