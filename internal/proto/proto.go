// Package proto defines the wire protocol between a smart beehive's edge
// agent and the cloud service: a length-prefixed binary framing with
// JSON-encoded message bodies and a raw binary channel for audio
// payloads.
//
// The paper's system uploads sensor batches, audio and images over Wi-Fi
// each cycle (Figure 4's sequence); this protocol is the concrete
// realization used by internal/hivenet's runnable client and server.
//
// Frame layout (big endian):
//
//	magic   uint32  'BEE1'
//	type    uint8   message type
//	bodyLen uint32  JSON body length
//	rawLen  uint32  raw payload length
//	body    []byte  JSON
//	raw     []byte  opaque payload (PCM samples, image bytes)
package proto

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"time"
)

// Magic identifies a beesim frame.
const Magic uint32 = 0x42454531 // "BEE1"

// MaxBody and MaxRaw bound frame sizes defensively.
const (
	MaxBody = 1 << 20  // 1 MiB of JSON
	MaxRaw  = 64 << 20 // 64 MiB of payload
)

// Type enumerates the protocol messages.
type Type uint8

// Message types.
const (
	// TypeHello opens a session: the agent introduces its hive and asks
	// for a time slot.
	TypeHello Type = iota + 1
	// TypeWelcome is the server's reply: assigned slot and parameters.
	TypeWelcome
	// TypeSensorReport carries one cycle's scalar readings.
	TypeSensorReport
	// TypeAudioUpload carries one audio clip for cloud inference; the
	// raw payload is 16-bit little-endian PCM.
	TypeAudioUpload
	// TypeResult carries a queen-detection verdict (either direction:
	// agent reporting an edge inference, or server answering an upload).
	TypeResult
	// TypeAck is a bare acknowledgement.
	TypeAck
	// TypeError reports a failure; the body is an ErrorBody.
	TypeError
	// TypeBye closes a session gracefully.
	TypeBye
	// TypeReject is the server's typed 429-style backpressure answer:
	// the request was well-formed but admission control refused it (over
	// the inflight budget, session cap reached). Unlike TypeError the
	// session stays open; the body is a RejectBody telling the client
	// why and how long to back off before retrying.
	TypeReject
)

// String names the message type.
func (t Type) String() string {
	switch t {
	case TypeHello:
		return "hello"
	case TypeWelcome:
		return "welcome"
	case TypeSensorReport:
		return "sensor-report"
	case TypeAudioUpload:
		return "audio-upload"
	case TypeResult:
		return "result"
	case TypeAck:
		return "ack"
	case TypeError:
		return "error"
	case TypeBye:
		return "bye"
	case TypeReject:
		return "reject"
	default:
		return fmt.Sprintf("type(%d)", uint8(t))
	}
}

// Hello opens a session.
type Hello struct {
	HiveID string `json:"hive_id"`
	// WakePeriodSeconds is the agent's cycle length, for slot planning.
	WakePeriodSeconds float64 `json:"wake_period_seconds"`
	// Version guards compatibility.
	Version int `json:"version"`
}

// Welcome assigns the session's parameters.
type Welcome struct {
	// Slot is the time-slot index the hive must use.
	Slot int `json:"slot"`
	// MaxParallel echoes the server's per-slot capacity.
	MaxParallel int `json:"max_parallel"`
}

// SensorReport is one cycle's scalar readings.
type SensorReport struct {
	HiveID       string    `json:"hive_id"`
	Time         time.Time `json:"time"`
	InsideTempC  float64   `json:"inside_temp_c"`
	InsideRH     float64   `json:"inside_rh"`
	OutsideTempC float64   `json:"outside_temp_c"`
	BatterySoC   float64   `json:"battery_soc"`
	// Traceparent is the W3C trace-context header of the agent's
	// wake-up span, empty when the agent runs untraced. omitempty
	// keeps untraced frames byte-identical to earlier releases.
	Traceparent string `json:"traceparent,omitempty"`
}

// AudioUpload describes the raw PCM payload accompanying the frame.
type AudioUpload struct {
	HiveID     string    `json:"hive_id"`
	Time       time.Time `json:"time"`
	SampleRate int       `json:"sample_rate"`
	// Samples is the PCM sample count in the raw payload.
	Samples int `json:"samples"`
	// Traceparent propagates the upload span's W3C trace context so the
	// server can join its handler span into the same trace; empty (and
	// absent from the wire) when the agent runs untraced.
	Traceparent string `json:"traceparent,omitempty"`
}

// Result is a queen-detection verdict.
type Result struct {
	HiveID       string    `json:"hive_id"`
	Time         time.Time `json:"time"`
	QueenPresent bool      `json:"queen_present"`
	// Confidence is the decision margin mapped to [0, 1].
	Confidence float64 `json:"confidence"`
	// ComputedAt names the placement that produced the verdict
	// ("edge" or "cloud").
	ComputedAt string `json:"computed_at"`
	// Traceparent echoes the request's trace context (server span for
	// cloud verdicts), empty on untraced sessions.
	Traceparent string `json:"traceparent,omitempty"`
}

// ErrorBody carries a failure description.
type ErrorBody struct {
	Message string `json:"message"`
}

// Reject codes carried by a RejectBody.
const (
	// RejectOverCapacity: the server's inflight upload budget is
	// exhausted; retry the upload after backing off.
	RejectOverCapacity = "over_capacity"
	// RejectServerFull: the server's session cap is reached; the
	// connection is closed after this frame.
	RejectServerFull = "server_full"
)

// RejectBody is the payload of a TypeReject frame: a machine-readable
// code, a human-readable message, and a backoff hint in seconds (zero
// means "use your own policy").
type RejectBody struct {
	Code        string  `json:"code"`
	Message     string  `json:"message,omitempty"`
	RetryAfterS float64 `json:"retry_after_s,omitempty"`
}

// Frame is one decoded protocol frame.
type Frame struct {
	Type Type
	Body []byte // JSON
	Raw  []byte // opaque payload
}

// Encode marshals body to JSON and writes a frame to w.
func Encode(w io.Writer, t Type, body any, raw []byte) error {
	var bodyBytes []byte
	if body != nil {
		var err error
		bodyBytes, err = json.Marshal(body)
		if err != nil {
			return fmt.Errorf("proto: marshaling %v body: %w", t, err)
		}
	}
	if len(bodyBytes) > MaxBody {
		return fmt.Errorf("proto: %v body %d bytes exceeds limit", t, len(bodyBytes))
	}
	if len(raw) > MaxRaw {
		return fmt.Errorf("proto: %v raw payload %d bytes exceeds limit", t, len(raw))
	}
	header := make([]byte, 13)
	binary.BigEndian.PutUint32(header[0:4], Magic)
	header[4] = byte(t)
	binary.BigEndian.PutUint32(header[5:9], uint32(len(bodyBytes)))
	binary.BigEndian.PutUint32(header[9:13], uint32(len(raw)))
	if _, err := w.Write(header); err != nil {
		return err
	}
	if len(bodyBytes) > 0 {
		if _, err := w.Write(bodyBytes); err != nil {
			return err
		}
	}
	if len(raw) > 0 {
		if _, err := w.Write(raw); err != nil {
			return err
		}
	}
	return nil
}

// Decode reads one frame from r.
func Decode(r io.Reader) (Frame, error) {
	header := make([]byte, 13)
	if _, err := io.ReadFull(r, header); err != nil {
		return Frame{}, err
	}
	if got := binary.BigEndian.Uint32(header[0:4]); got != Magic {
		return Frame{}, fmt.Errorf("proto: bad magic %#x", got)
	}
	f := Frame{Type: Type(header[4])}
	bodyLen := binary.BigEndian.Uint32(header[5:9])
	rawLen := binary.BigEndian.Uint32(header[9:13])
	if bodyLen > MaxBody {
		return Frame{}, fmt.Errorf("proto: body %d bytes exceeds limit", bodyLen)
	}
	if rawLen > MaxRaw {
		return Frame{}, fmt.Errorf("proto: raw payload %d bytes exceeds limit", rawLen)
	}
	if bodyLen > 0 {
		f.Body = make([]byte, bodyLen)
		if _, err := io.ReadFull(r, f.Body); err != nil {
			return Frame{}, fmt.Errorf("proto: reading body: %w", err)
		}
	}
	if rawLen > 0 {
		f.Raw = make([]byte, rawLen)
		if _, err := io.ReadFull(r, f.Raw); err != nil {
			return Frame{}, fmt.Errorf("proto: reading raw payload: %w", err)
		}
	}
	return f, nil
}

// Unmarshal decodes the frame's JSON body into dst, checking the type.
func (f Frame) Unmarshal(want Type, dst any) error {
	if f.Type != want {
		return fmt.Errorf("proto: got %v, want %v", f.Type, want)
	}
	if len(f.Body) == 0 {
		return errors.New("proto: empty body")
	}
	return json.Unmarshal(f.Body, dst)
}

// PCMEncode converts float samples in [-1, 1] to 16-bit little-endian
// PCM bytes (the audio-upload payload format).
func PCMEncode(samples []float64) []byte {
	out := make([]byte, 2*len(samples))
	for i, v := range samples {
		if v > 1 {
			v = 1
		}
		if v < -1 {
			v = -1
		}
		binary.LittleEndian.PutUint16(out[2*i:], uint16(int16(v*32767)))
	}
	return out
}

// PCMDecode converts 16-bit little-endian PCM bytes back to floats.
func PCMDecode(raw []byte) ([]float64, error) {
	if len(raw)%2 != 0 {
		return nil, errors.New("proto: odd PCM byte count")
	}
	out := make([]float64, len(raw)/2)
	for i := range out {
		out[i] = float64(int16(binary.LittleEndian.Uint16(raw[2*i:]))) / 32767
	}
	return out, nil
}
