package obs

import (
	"math"
	"sort"
)

// Critical-path analysis over span-tagged trace events: group complete
// ("X") events by trace ID, pick each trace's root span, and attribute
// the trace's end-to-end latency to named segments (compute, uplink
// transfer, uplink retry, backoff, server handling, …). This is the
// engine behind `hivereport trace`: quantiles say *that* p99 is slow,
// the decomposition says *where* those seconds went.
//
// Everything here is deterministic: ordering is by explicit sort keys,
// never map order, so reports over byte-identical traces are
// byte-identical themselves.

// Segment is one named component of a trace's latency.
type Segment struct {
	// Name is the span name the time was spent under.
	Name string `json:"name"`
	// Spans is how many spans of that name the trace contains.
	Spans int `json:"spans"`
	// US is their summed duration in microseconds. Segments may
	// overlap in time (a server handling span can run while the edge
	// shuts down), so the segment sum can exceed TotalUS; CoveredUS is
	// the overlap-free union.
	US int64 `json:"us"`
}

// TraceSummary is the analysis of one trace.
type TraceSummary struct {
	TraceID string `json:"trace_id"`
	// RootName is the root span's name (the span without a parent; if
	// a trace arrives without one, the longest span stands in).
	RootName string `json:"root"`
	// StartUS/EndUS bound every span of the trace; TotalUS = End-Start
	// is the end-to-end latency the segments decompose.
	StartUS int64 `json:"start_us"`
	EndUS   int64 `json:"end_us"`
	TotalUS int64 `json:"total_us"`
	// CoveredUS is the union of all non-root span intervals clipped to
	// [StartUS, EndUS]: the part of the end-to-end latency attributed
	// to named segments. CoveredUS/TotalUS is the attribution ratio.
	CoveredUS int64 `json:"covered_us"`
	// Segments is the per-name decomposition, largest first.
	Segments []Segment `json:"segments"`
	// Spans counts all spans in the trace, root included.
	Spans int `json:"spans"`
}

// Coverage returns the attributed fraction of the end-to-end latency
// (0 when the trace is empty).
func (s TraceSummary) Coverage() float64 {
	if s.TotalUS <= 0 {
		return 0
	}
	return float64(s.CoveredUS) / float64(s.TotalUS)
}

// Segment returns the named segment's summed microseconds (0 when the
// trace has no such segment).
func (s TraceSummary) Segment(name string) int64 {
	for _, seg := range s.Segments {
		if seg.Name == name {
			return seg.US
		}
	}
	return 0
}

// eventTraceID extracts the trace_id arg ("" when untagged).
func eventTraceID(e TraceEvent) string {
	if e.Args == nil {
		return ""
	}
	id, _ := e.Args[ArgTraceID].(string)
	return id
}

// eventHasParent reports whether the event carries a parent_span_id.
func eventHasParent(e TraceEvent) bool {
	if e.Args == nil {
		return false
	}
	_, ok := e.Args[ArgParentID]
	return ok
}

// AnalyzeTraces groups the span-tagged complete events of a trace file
// by trace ID and summarizes each trace's latency decomposition.
// Untagged events (the classic single-run timeline spans) are ignored.
// Results are sorted slowest-first, ties broken by trace ID, so the
// top-K slowest traces are the head of the slice.
func AnalyzeTraces(events []TraceEvent) []TraceSummary {
	byTrace := make(map[string][]TraceEvent)
	order := make([]string, 0)
	for _, e := range events {
		if e.Phase != "X" {
			continue
		}
		id := eventTraceID(e)
		if id == "" {
			continue
		}
		if _, seen := byTrace[id]; !seen {
			order = append(order, id)
		}
		byTrace[id] = append(byTrace[id], e)
	}
	sort.Strings(order)
	out := make([]TraceSummary, 0, len(order))
	for _, id := range order {
		out = append(out, summarizeTrace(id, byTrace[id]))
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].TotalUS != out[j].TotalUS {
			return out[i].TotalUS > out[j].TotalUS
		}
		return out[i].TraceID < out[j].TraceID
	})
	return out
}

func summarizeTrace(id string, spans []TraceEvent) TraceSummary {
	s := TraceSummary{TraceID: id, Spans: len(spans)}
	rootIdx := -1
	for i, e := range spans {
		end := e.TS + e.Dur
		if i == 0 || e.TS < s.StartUS {
			s.StartUS = e.TS
		}
		if i == 0 || end > s.EndUS {
			s.EndUS = end
		}
		if eventHasParent(e) {
			continue
		}
		// Root candidate: earliest parentless span, ties to the longer
		// one so a wake-up root beats a same-instant instant-ish span.
		if rootIdx < 0 || e.TS < spans[rootIdx].TS ||
			(e.TS == spans[rootIdx].TS && e.Dur > spans[rootIdx].Dur) {
			rootIdx = i
		}
	}
	if rootIdx < 0 {
		// No parentless span (e.g. a server-only trace slice): the
		// longest span stands in as the root.
		for i, e := range spans {
			if rootIdx < 0 || e.Dur > spans[rootIdx].Dur ||
				(e.Dur == spans[rootIdx].Dur && e.TS < spans[rootIdx].TS) {
				rootIdx = i
			}
		}
	}
	s.RootName = spans[rootIdx].Name
	s.TotalUS = s.EndUS - s.StartUS

	type interval struct{ lo, hi int64 }
	segs := make(map[string]*Segment)
	names := make([]string, 0, 4)
	intervals := make([]interval, 0, len(spans))
	for i, e := range spans {
		if i == rootIdx {
			continue
		}
		seg, ok := segs[e.Name]
		if !ok {
			seg = &Segment{Name: e.Name}
			segs[e.Name] = seg
			names = append(names, e.Name)
		}
		seg.Spans++
		seg.US += e.Dur
		intervals = append(intervals, interval{e.TS, e.TS + e.Dur})
	}
	sort.Strings(names)
	for _, n := range names {
		s.Segments = append(s.Segments, *segs[n])
	}
	sort.SliceStable(s.Segments, func(i, j int) bool {
		if s.Segments[i].US != s.Segments[j].US {
			return s.Segments[i].US > s.Segments[j].US
		}
		return s.Segments[i].Name < s.Segments[j].Name
	})

	// Overlap-free union of the non-root spans, clipped to the trace.
	sort.Slice(intervals, func(i, j int) bool {
		if intervals[i].lo != intervals[j].lo {
			return intervals[i].lo < intervals[j].lo
		}
		return intervals[i].hi < intervals[j].hi
	})
	var covered, cursor int64
	cursor = s.StartUS
	for _, iv := range intervals {
		if iv.hi > s.EndUS {
			iv.hi = s.EndUS
		}
		if iv.lo < cursor {
			iv.lo = cursor
		}
		if iv.hi > iv.lo {
			covered += iv.hi - iv.lo
			cursor = iv.hi
		}
	}
	s.CoveredUS = covered
	return s
}

// SegmentStats aggregates one segment name across many traces.
type SegmentStats struct {
	Name string `json:"name"`
	// Traces is how many traces contain the segment at least once.
	Traces int `json:"traces"`
	// Spans is the total span count across those traces.
	Spans int `json:"spans"`
	// TotalUS sums the segment across all traces; P50US/P99US are
	// exact-rank quantiles of the per-trace segment totals.
	TotalUS int64 `json:"total_us"`
	P50US   int64 `json:"p50_us"`
	P99US   int64 `json:"p99_us"`
}

// AggregateSegments computes the per-segment latency decomposition
// table over a set of trace summaries: for each segment name, the
// p50/p99 of its per-trace totals and the grand total. Sorted by total
// descending, ties by name, so the dominant segment leads the table.
func AggregateSegments(sums []TraceSummary) []SegmentStats {
	perName := make(map[string]*SegmentStats)
	samples := make(map[string][]int64)
	names := make([]string, 0, 8)
	for _, s := range sums {
		for _, seg := range s.Segments {
			st, ok := perName[seg.Name]
			if !ok {
				st = &SegmentStats{Name: seg.Name}
				perName[seg.Name] = st
				names = append(names, seg.Name)
			}
			st.Traces++
			st.Spans += seg.Spans
			st.TotalUS += seg.US
			samples[seg.Name] = append(samples[seg.Name], seg.US)
		}
	}
	sort.Strings(names)
	out := make([]SegmentStats, 0, len(names))
	for _, n := range names {
		st := *perName[n]
		vals := samples[n]
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		st.P50US = rankQuantile(vals, 0.5)
		st.P99US = rankQuantile(vals, 0.99)
		out = append(out, st)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].TotalUS != out[j].TotalUS {
			return out[i].TotalUS > out[j].TotalUS
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// rankQuantile picks the rank-ceil(q*n) element of sorted vals — the
// same exact-count rule Histogram.Quantile uses.
func rankQuantile(vals []int64, q float64) int64 {
	if len(vals) == 0 {
		return 0
	}
	rank := int(math.Ceil(q * float64(len(vals))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(vals) {
		rank = len(vals)
	}
	return vals[rank-1]
}
