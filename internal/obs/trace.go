package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Tracer records a timeline in the Chrome trace_event format, loadable
// in chrome://tracing and Perfetto (ui.perfetto.dev). Timestamps are
// derived from the *virtual* simulation clock relative to a fixed
// epoch, never from the wall clock, so traces from two runs with the
// same seed are byte-identical.
//
// Tracks are addressed by (pid, tid); beesim uses a single pid and one
// tid per subsystem (see the Tid* constants). A nil *Tracer ignores all
// operations, so instrumented code can hold one unconditionally.
type Tracer struct {
	mu     sync.Mutex
	epoch  time.Time
	events []TraceEvent
}

// Conventional trace tracks for beesim subsystems. Callers may use any
// tid; these keep the per-package probes on consistent rows.
const (
	TidEngine  = 0 // DES event loop
	TidRoutine = 1 // edge wake-up routines
	TidPower   = 2 // battery / solar
	TidNetwork = 3 // uplink transfers
	TidServer  = 4 // cloud service
)

// TraceEvent is one Chrome trace_event entry. Fields map 1:1 onto the
// JSON the Trace Event Format specifies; Args must hold only
// JSON-marshalable, deterministic values.
type TraceEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	TS    int64          `json:"ts"` // microseconds since the trace epoch
	Dur   int64          `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Args  map[string]any `json:"args,omitempty"`
}

// NewTracer creates a tracer whose timestamps count microseconds from
// epoch (use the simulation's start time).
func NewTracer(epoch time.Time) *Tracer {
	return &Tracer{epoch: epoch}
}

// Len returns the number of recorded events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

func (t *Tracer) append(e TraceEvent) {
	t.mu.Lock()
	t.events = append(t.events, e)
	t.mu.Unlock()
}

func (t *Tracer) ts(at time.Time) int64 { return at.Sub(t.epoch).Microseconds() }

// Span records a complete ("X") event covering [start, start+d) in
// virtual time.
func (t *Tracer) Span(name, cat string, tid int, start time.Time, d time.Duration, args map[string]any) {
	if t == nil {
		return
	}
	dur := d.Microseconds()
	if dur < 1 {
		dur = 1 // Perfetto drops zero-width slices; keep them visible
	}
	t.append(TraceEvent{Name: name, Cat: cat, Phase: "X", TS: t.ts(start), Dur: dur, PID: 1, TID: tid, Args: args})
}

// Instant records a zero-duration ("i") event at the given virtual time.
func (t *Tracer) Instant(name, cat string, tid int, at time.Time, args map[string]any) {
	if t == nil {
		return
	}
	t.append(TraceEvent{Name: name, Cat: cat, Phase: "i", TS: t.ts(at), PID: 1, TID: tid, Args: args})
}

// Sample records a counter ("C") event: Perfetto renders each key of
// values as a stacked counter track, ideal for battery state of charge
// or queue depths over virtual time.
func (t *Tracer) Sample(name string, tid int, at time.Time, values map[string]any) {
	if t == nil {
		return
	}
	t.append(TraceEvent{Name: name, Phase: "C", TS: t.ts(at), PID: 1, TID: tid, Args: values})
}

// SetThreadName labels a tid's track in the trace viewer.
func (t *Tracer) SetThreadName(tid int, name string) {
	if t == nil {
		return
	}
	t.append(TraceEvent{
		Name: "thread_name", Phase: "M", PID: 1, TID: tid,
		Args: map[string]any{"name": name},
	})
}

// Events returns a copy of the recorded events in recording order.
// Use it to stitch several tracers' timelines into one file (see
// Stitch); a nil tracer has no events.
func (t *Tracer) Events() []TraceEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]TraceEvent, len(t.events))
	copy(out, t.events)
	return out
}

// WriteJSON writes the trace in the Chrome trace_event JSON object
// format. Events appear in recording order; encoding/json sorts arg
// maps by key, so output bytes are deterministic for a deterministic
// event sequence.
func (t *Tracer) WriteJSON(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, `{"displayTimeUnit":"ms","traceEvents":[]}`+"\n")
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return writeEventsJSON(w, t.events)
}

// WriteTraceJSON writes an explicit event list in the same Chrome
// trace_event JSON object format Tracer.WriteJSON produces, so stitched
// multi-agent timelines load in Perfetto exactly like single-run ones.
func WriteTraceJSON(w io.Writer, events []TraceEvent) error {
	return writeEventsJSON(w, events)
}

func writeEventsJSON(w io.Writer, events []TraceEvent) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(`{"displayTimeUnit":"ms","traceEvents":[`); err != nil {
		return err
	}
	for i, e := range events {
		if i > 0 {
			if err := bw.WriteByte(','); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
		b, err := json.Marshal(e)
		if err != nil {
			return err
		}
		if _, err := bw.Write(b); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// ParseTraceJSON reads a Chrome trace file back into its event list, so
// the critical-path analyzer (and tests) can work offline on exported
// traces. It accepts both the object format WriteJSON emits and a bare
// JSON array of events.
func ParseTraceJSON(data []byte) ([]TraceEvent, error) {
	var obj struct {
		TraceEvents []TraceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &obj); err == nil && obj.TraceEvents != nil {
		return obj.TraceEvents, nil
	}
	var events []TraceEvent
	if err := json.Unmarshal(data, &events); err != nil {
		return nil, fmt.Errorf("obs: parse trace: %w", err)
	}
	return events, nil
}

// Stitch merges several event lists — one per agent, hive or process —
// into a single timeline ordered by timestamp. The sort is stable with
// list order as the outer key, so stitching per-hive traces in index
// order yields byte-identical output at any worker count (the same
// contract internal/parallel's index-ordered merge pins for metrics).
func Stitch(lists ...[]TraceEvent) []TraceEvent {
	var n int
	for _, l := range lists {
		n += len(l)
	}
	out := make([]TraceEvent, 0, n)
	for _, l := range lists {
		out = append(out, l...)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].TS < out[j].TS })
	return out
}
