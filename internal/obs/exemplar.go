package obs

import (
	"math"
	"sort"
)

// Histogram exemplars: each populated bucket keeps a tiny reservoir of
// (value, trace ID) pairs, so a quantile is not just a number — "p99
// upload latency is 41 s" comes with the trace IDs of actual uploads in
// that bucket, and `hivereport trace` (or GET /api/trace/{id}) shows
// exactly where those seconds went.
//
// The reservoir policy is a pure function of the observed multiset, not
// of arrival order: each bucket keeps its exemplarsPerBucket largest
// values, ties broken toward the lexicographically smallest trace ID.
// That makes exemplar sets order-independent, which is what lets them
// survive Merge with byte-identical results at any worker count.
//
// Exemplars are recorded only through ObserveExemplar with a non-nil
// SpanContext; the plain Observe path and the nil-context path never
// touch the reservoir (or its lock), keeping untraced runs zero-alloc
// and untraced snapshots byte-identical to earlier releases.

// exemplarsPerBucket is the reservoir capacity per histogram bucket.
// Two is enough to answer "show me a trace behind this quantile" while
// keeping merge traffic and snapshot size negligible.
const exemplarsPerBucket = 2

// Bucket keys for observations outside the shared grid.
const (
	exemplarLowKey  = -1          // finite observations <= 0
	exemplarHighKey = histBuckets // finite observations >= the grid top
)

// Exemplar is one (value, trace ID) pair kept by a bucket reservoir.
type Exemplar struct {
	Value   float64
	TraceID string // 32-digit lowercase hex
}

// exemplarLess orders a reservoir: larger values first, ties toward the
// smaller trace ID. The order doubles as the eviction rule.
func exemplarLess(a, b Exemplar) bool {
	if a.Value != b.Value {
		return a.Value > b.Value
	}
	return a.TraceID < b.TraceID
}

// exemplarKey maps a finite observation onto its reservoir key,
// mirroring Observe's bucket routing exactly.
func exemplarKey(v float64) int {
	if v <= 0 {
		return exemplarLowKey
	}
	if i, ok := bucketIndex(v); ok {
		return i
	}
	return exemplarHighKey
}

// ObserveExemplar records one sample like Observe and, when sc is
// non-nil, offers (v, trace ID) to the sample's bucket reservoir. With
// a nil context it is exactly Observe — no lock, no allocation — so
// instrumented code threads its SpanContext unconditionally.
func (h *Histogram) ObserveExemplar(v float64, sc *SpanContext) {
	h.Observe(v)
	if h == nil || sc == nil || math.IsNaN(v) || math.IsInf(v, 0) {
		return
	}
	key := exemplarKey(v)
	e := Exemplar{Value: v, TraceID: sc.TraceHex()}
	h.exMu.Lock()
	h.offerLocked(key, e)
	h.exMu.Unlock()
}

// offerLocked inserts e into bucket key's reservoir, keeping the list
// sorted by exemplarLess and truncated to exemplarsPerBucket. Must be
// called with exMu held.
func (h *Histogram) offerLocked(key int, e Exemplar) {
	if h.ex == nil {
		h.ex = make(map[int][]Exemplar)
	}
	list := h.ex[key]
	i := sort.Search(len(list), func(i int) bool { return !exemplarLess(list[i], e) })
	if i >= exemplarsPerBucket {
		return // ranks below everything the reservoir keeps
	}
	list = append(list, Exemplar{})
	copy(list[i+1:], list[i:])
	list[i] = e
	if len(list) > exemplarsPerBucket {
		list = list[:exemplarsPerBucket]
	}
	h.ex[key] = list
}

// mergeExemplars folds src's reservoirs into h. Offers are made in
// sorted key order, but the top-K policy is order-independent anyway:
// the merged reservoir equals the one a single histogram would hold
// after observing both sample streams.
func (h *Histogram) mergeExemplars(src *Histogram) {
	src.exMu.Lock()
	if src.ex == nil {
		src.exMu.Unlock()
		return
	}
	type keyed struct {
		key  int
		list []Exemplar
	}
	pairs := make([]keyed, 0, len(src.ex))
	for k, list := range src.ex { // collected then sorted below
		cp := make([]Exemplar, len(list))
		copy(cp, list)
		pairs = append(pairs, keyed{k, cp})
	}
	src.exMu.Unlock()
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].key < pairs[j].key })
	h.exMu.Lock()
	for _, p := range pairs {
		for _, e := range p.list {
			h.offerLocked(p.key, e)
		}
	}
	h.exMu.Unlock()
}

// exemplarLE labels a reservoir key the way bucket snapshots label
// bounds: the containing grid bucket's upper bound, "0" for the low
// bucket, "+Inf" for the overflow bucket.
func exemplarLE(key int) string {
	switch {
	case key == exemplarLowKey:
		return "0"
	case key >= histBuckets:
		return "+Inf"
	default:
		return formatBound(bucketBound(key))
	}
}

// Exemplars returns the histogram's current exemplars sorted by bucket
// (then by the reservoir order: value descending, trace ID ascending).
// Empty for a nil histogram or one that never saw a traced observation.
func (h *Histogram) Exemplars() []ExemplarSnap {
	if h == nil {
		return nil
	}
	h.exMu.Lock()
	type keyed struct {
		key  int
		list []Exemplar
	}
	pairs := make([]keyed, 0, len(h.ex))
	for k, list := range h.ex { // collected then sorted below
		cp := make([]Exemplar, len(list))
		copy(cp, list)
		pairs = append(pairs, keyed{k, cp})
	}
	h.exMu.Unlock()
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].key < pairs[j].key })
	var out []ExemplarSnap
	for _, p := range pairs {
		for _, e := range p.list {
			out = append(out, ExemplarSnap{LE: exemplarLE(p.key), Value: e.Value, TraceID: e.TraceID})
		}
	}
	return out
}
