package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"sort"
	"strings"
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(2.5)
	if got := c.Value(); got != 3.5 {
		t.Fatalf("counter = %v, want 3.5", got)
	}
	c.Add(-1) // counters are monotone: negative deltas ignored
	c.Add(math.NaN())
	if got := c.Value(); got != 3.5 {
		t.Fatalf("counter after bad adds = %v, want 3.5", got)
	}
}

func TestNilInstrumentsAreNoOps(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var r *Registry
	var tr *Tracer
	c.Inc()
	c.Add(1)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	h.Merge(nil)
	r.Merge(NewRegistry())
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil instruments must read as zero")
	}
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Fatal("nil histogram quantile must be NaN")
	}
	if got := r.Counter("x"); got != nil {
		t.Fatal("nil registry must hand out nil counters")
	}
	if got := r.Gauge("x"); got != nil {
		t.Fatal("nil registry must hand out nil gauges")
	}
	if got := r.Histogram("x"); got != nil {
		t.Fatal("nil registry must hand out nil histograms")
	}
	if !r.Snapshot().Empty() {
		t.Fatal("nil registry snapshot must be empty")
	}
	tr.Span("s", "c", 0, timeEpoch(), 0, nil)
	tr.Instant("i", "c", 0, timeEpoch(), nil)
	tr.Sample("v", 0, timeEpoch(), nil)
	if tr.Len() != 0 {
		t.Fatal("nil tracer must record nothing")
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %v, want 7", got)
	}
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	for _, v := range []float64{0.5, 0.9, 3, 7, 100} {
		h.Observe(v)
	}
	h.Observe(math.NaN())
	h.Observe(math.Inf(1))
	if got := h.Count(); got != 5 {
		t.Fatalf("count = %d, want 5 (non-finite dropped)", got)
	}
	if got := h.Dropped(); got != 2 {
		t.Fatalf("dropped = %d, want 2", got)
	}
	if got := h.Sum(); got != 111.4 {
		t.Fatalf("sum = %v, want 111.4", got)
	}
	if got := h.Min(); got != 0.5 {
		t.Fatalf("min = %v, want 0.5", got)
	}
	if got := h.Max(); got != 100 {
		t.Fatalf("max = %v, want 100", got)
	}
	// Exact-count ranks over {0.5, 0.9, 3, 7, 100}: p50 is the 3rd
	// element (3) and the log-linear bound is within 1/32 of it.
	if got := h.Quantile(0.5); got < 3 || got > 3*(1+1.0/histSub) {
		t.Fatalf("p50 = %v, want within one sub-bucket above 3", got)
	}
	if got := h.Quantile(1); got != 100 {
		t.Fatalf("p100 = %v, want max 100", got)
	}
	snap := r.Snapshot()
	if len(snap.Histograms) != 1 {
		t.Fatalf("snapshot has %d histograms", len(snap.Histograms))
	}
	hs := snap.Histograms[0]
	var bucketTotal uint64
	for _, b := range hs.Buckets {
		if b.Count == 0 {
			t.Fatalf("snapshot exported an empty bucket: %+v", b)
		}
		bucketTotal += b.Count
	}
	if hs.Low+bucketTotal+hs.High != hs.Count {
		t.Fatalf("conservation broken: low=%d buckets=%d high=%d count=%d",
			hs.Low, bucketTotal, hs.High, hs.Count)
	}
	if len(hs.Quantiles) != len(StandardQuantiles) {
		t.Fatalf("quantiles = %+v, want %d entries", hs.Quantiles, len(StandardQuantiles))
	}
}

// TestHistogramOutOfRange is the conservation regression test: values
// below, above and outside the grid must all stay accounted, so
// rank-based quantiles never walk off the end of the counts.
func TestHistogramOutOfRange(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("odd")
	samples := []float64{-3, 0, 1e-12, 2.5, 1e13}
	for _, v := range samples {
		h.Observe(v)
	}
	h.Observe(math.Inf(-1))
	if got := h.Count(); got != uint64(len(samples)) {
		t.Fatalf("count = %d, want %d: out-of-range values must still count", got, len(samples))
	}
	if got := h.Low(); got != 2 {
		t.Fatalf("low = %d, want 2 (one negative, one zero)", got)
	}
	if got := h.High(); got != 1 {
		t.Fatalf("high = %d, want 1 (1e13 is beyond the grid)", got)
	}
	if got := h.Dropped(); got != 1 {
		t.Fatalf("dropped = %d, want 1 (only non-finite)", got)
	}
	if got := h.Min(); got != -3 {
		t.Fatalf("min = %v, want -3", got)
	}
	if got := h.Max(); got != 1e13 {
		t.Fatalf("max = %v, want 1e13", got)
	}
	// Rank accounting over all five samples: the lowest ranks report
	// min, the highest reports max, nothing is lost.
	if got := h.Quantile(0.2); got != -3 {
		t.Fatalf("p20 = %v, want min -3 (low bucket)", got)
	}
	if got := h.Quantile(1); got != 1e13 {
		t.Fatalf("p100 = %v, want max 1e13 (high bucket)", got)
	}
	hs := r.Snapshot().Histograms[0]
	var bucketTotal uint64
	for _, b := range hs.Buckets {
		bucketTotal += b.Count
	}
	if hs.Low+bucketTotal+hs.High != hs.Count {
		t.Fatalf("snapshot conservation broken: %+v", hs)
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("acc")
	n := 1000
	for i := 1; i <= n; i++ {
		h.Observe(float64(i))
	}
	for _, q := range StandardQuantiles {
		exact := float64(int(math.Ceil(q * float64(n)))) // rank statistic of 1..n
		got := h.Quantile(q)
		if got < exact*(1-1.0/histSub) || got > exact*(1+1.0/histSub) {
			t.Fatalf("q=%g: got %v, want within 1/%d of %v", q, got, histSub, exact)
		}
	}
	if got := h.Quantile(1); got != float64(n) {
		t.Fatalf("p100 = %v, want %d", got, n)
	}
}

// TestHistogramMergeMatchesSingle pins the merge contract: observing a
// sample set on one histogram and observing it sharded then merged must
// snapshot to identical bytes. Samples are exact binary fractions so
// the sums are associative.
func TestHistogramMergeMatchesSingle(t *testing.T) {
	samples := []float64{0.25, 0.5, 0.5, 1, 2, 2, 4, 7.5, 16, 1024, -1, 1e13}
	single := NewRegistry()
	for _, v := range samples {
		single.Histogram("m").Observe(v)
	}
	shards := make([]*Registry, 3)
	for i := range shards {
		shards[i] = NewRegistry()
	}
	for i, v := range samples {
		shards[i%3].Histogram("m").Observe(v)
	}
	merged := NewRegistry()
	for _, s := range shards {
		merged.Merge(s)
	}
	var a, b bytes.Buffer
	if err := single.Snapshot().WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := merged.Snapshot().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("merged shards diverge from single histogram:\n%s\n%s", a.String(), b.String())
	}
}

func TestRegistryMerge(t *testing.T) {
	src := NewRegistry()
	src.Counter("c").Add(3)
	src.Counter("zero") // registered but never incremented
	src.Gauge("g").Set(7)
	src.Histogram("h").Observe(2)
	dst := NewRegistry()
	dst.Counter("c").Add(1)
	dst.Histogram("h").Observe(4)
	dst.Merge(src)
	if got := dst.Counter("c").Value(); got != 4 {
		t.Fatalf("merged counter = %v, want 4", got)
	}
	if got := dst.Gauge("g").Value(); got != 7 {
		t.Fatalf("merged gauge = %v, want 7", got)
	}
	if got := dst.Histogram("h").Count(); got != 2 {
		t.Fatalf("merged histogram count = %d, want 2", got)
	}
	// The union of names lands in the snapshot, including the
	// never-incremented counter.
	if _, ok := dst.Snapshot().FindCounter("zero"); !ok {
		t.Fatal("merge must register src-only instruments")
	}
	// Self-merge must not double anything.
	dst.Merge(dst)
	if got := dst.Counter("c").Value(); got != 4 {
		t.Fatalf("self-merge changed counter to %v", got)
	}
}

func TestSnapshotQuantileRoundTrip(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("rt")
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) / 8)
	}
	var buf bytes.Buffer
	if err := r.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ParseSnapshot(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	hs, ok := back.FindHistogram("rt")
	if !ok {
		t.Fatal("round-tripped snapshot lost the histogram")
	}
	for _, q := range StandardQuantiles {
		live := r.Histogram("rt").Quantile(q)
		offline, ok := hs.Quantile(q)
		if !ok {
			t.Fatalf("offline quantile %g unavailable", q)
		}
		if offline != live {
			t.Fatalf("q=%g: offline %v != live %v", q, offline, live)
		}
	}
}

func TestRegistryReusesByName(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Fatal("same name must return the same counter")
	}
	if r.Histogram("h") != r.Histogram("h") {
		t.Fatal("same name must return the same histogram")
	}
}

func TestSnapshotSortedAndDeterministic(t *testing.T) {
	build := func() Snapshot {
		r := NewRegistry()
		r.Counter("zeta").Add(1)
		r.Counter("alpha").Add(2)
		r.Gauge("mid").Set(3)
		r.Histogram("h").Observe(1.5)
		return r.Snapshot()
	}
	s := build()
	if s.Counters[0].Name != "alpha" || s.Counters[1].Name != "zeta" {
		t.Fatalf("counters not sorted: %+v", s.Counters)
	}
	var a, b bytes.Buffer
	if err := build().WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two identical registries must export identical JSON")
	}
	if !json.Valid(a.Bytes()) {
		t.Fatal("snapshot JSON is invalid")
	}
	var text bytes.Buffer
	if err := s.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"counter", "alpha", "gauge", "mid", "histogram", "q=0.5", "le=1.53125"} {
		if !strings.Contains(text.String(), want) {
			t.Fatalf("text snapshot missing %q:\n%s", want, text.String())
		}
	}
}

func TestBucketGrid(t *testing.T) {
	// Every bucket's bound must be finite, positive and strictly
	// ascending, and bucketIndex must be the inverse of the bound walk:
	// a value strictly inside bucket i indexes to i.
	prev := 0.0
	for i := 0; i < histBuckets; i++ {
		b := bucketBound(i)
		if !(b > prev) || math.IsInf(b, 0) || math.IsNaN(b) {
			t.Fatalf("bucket %d bound %v not ascending past %v", i, b, prev)
		}
		mid := (prev + b) / 2
		if i == 0 {
			mid = b * 0.999
		}
		if got, ok := bucketIndex(mid); !ok || got != i {
			t.Fatalf("bucketIndex(%v) = %d,%v, want %d", mid, got, ok, i)
		}
		prev = b
	}
	// Boundary values fall upward into the next bucket (half-open).
	if got, ok := bucketIndex(bucketBound(0)); !ok || got != 1 {
		t.Fatalf("bound 0 value indexes to %d, want 1", got)
	}
	if got, ok := bucketIndex(1.0); !ok {
		t.Fatal("1.0 must be on the grid")
	} else if bucketBound(got) <= 1.0 {
		t.Fatalf("1.0 landed in bucket %d with bound %v <= 1", got, bucketBound(got))
	}
	// sort.SearchFloat64s-style sanity: bounds strictly sorted.
	bounds := make([]float64, histBuckets)
	for i := range bounds {
		bounds[i] = bucketBound(i)
	}
	if !sort.Float64sAreSorted(bounds) {
		t.Fatal("grid bounds not sorted")
	}
}

func TestConcurrentInstruments(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("c")
			h := r.Histogram("h")
			g := r.Gauge("g")
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(float64(j%150) + 0.5)
				g.Add(1)
				r.Snapshot() // concurrent readers must be safe too
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != 8000 {
		t.Fatalf("counter = %v, want 8000", got)
	}
	if got := r.Histogram("h").Count(); got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
	if got := r.Gauge("g").Value(); got != 8000 {
		t.Fatalf("gauge = %v, want 8000", got)
	}
}

// TestConcurrentMerge exercises the merge path under the race detector:
// worker registries observe while the destination merges and snapshots.
func TestConcurrentMerge(t *testing.T) {
	dst := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			src := NewRegistry()
			for j := 0; j < 500; j++ {
				src.Counter("n").Inc()
				src.Histogram("h").Observe(float64(j + 1))
			}
			dst.Merge(src)
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			dst.Snapshot()
		}
	}()
	wg.Wait()
	<-done
	if got := dst.Counter("n").Value(); got != 2000 {
		t.Fatalf("merged counter = %v, want 2000", got)
	}
	if got := dst.Histogram("h").Count(); got != 2000 {
		t.Fatalf("merged histogram count = %d, want 2000", got)
	}
}
