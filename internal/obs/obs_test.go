package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(2.5)
	if got := c.Value(); got != 3.5 {
		t.Fatalf("counter = %v, want 3.5", got)
	}
	c.Add(-1) // counters are monotone: negative deltas ignored
	c.Add(math.NaN())
	if got := c.Value(); got != 3.5 {
		t.Fatalf("counter after bad adds = %v, want 3.5", got)
	}
}

func TestNilInstrumentsAreNoOps(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var r *Registry
	var tr *Tracer
	c.Inc()
	c.Add(1)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil instruments must read as zero")
	}
	if got := r.Counter("x"); got != nil {
		t.Fatal("nil registry must hand out nil counters")
	}
	if got := r.Gauge("x"); got != nil {
		t.Fatal("nil registry must hand out nil gauges")
	}
	if got := r.Histogram("x", nil); got != nil {
		t.Fatal("nil registry must hand out nil histograms")
	}
	if !r.Snapshot().Empty() {
		t.Fatal("nil registry snapshot must be empty")
	}
	tr.Span("s", "c", 0, timeEpoch(), 0, nil)
	tr.Instant("i", "c", 0, timeEpoch(), nil)
	tr.Sample("v", 0, timeEpoch(), nil)
	if tr.Len() != 0 {
		t.Fatal("nil tracer must record nothing")
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %v, want 7", got)
	}
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{1, 5, 10})
	for _, v := range []float64{0.5, 0.9, 3, 7, 100} {
		h.Observe(v)
	}
	h.Observe(math.NaN())
	h.Observe(math.Inf(1))
	if got := h.Count(); got != 5 {
		t.Fatalf("count = %d, want 5 (non-finite dropped)", got)
	}
	if got := h.Dropped(); got != 2 {
		t.Fatalf("dropped = %d, want 2", got)
	}
	if got := h.Sum(); got != 111.4 {
		t.Fatalf("sum = %v, want 111.4", got)
	}
	snap := r.Snapshot()
	if len(snap.Histograms) != 1 {
		t.Fatalf("snapshot has %d histograms", len(snap.Histograms))
	}
	counts := map[string]uint64{}
	for _, b := range snap.Histograms[0].Buckets {
		counts[b.LE] = b.Count
	}
	want := map[string]uint64{"1": 2, "5": 1, "10": 1, "+Inf": 1}
	for le, n := range want {
		if counts[le] != n {
			t.Fatalf("bucket le=%s count = %d, want %d (all: %v)", le, counts[le], n, counts)
		}
	}
}

func TestRegistryReusesByName(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Fatal("same name must return the same counter")
	}
	if r.Histogram("h", []float64{1}) != r.Histogram("h", []float64{2}) {
		t.Fatal("same name must return the same histogram")
	}
}

func TestSnapshotSortedAndDeterministic(t *testing.T) {
	build := func() Snapshot {
		r := NewRegistry()
		r.Counter("zeta").Add(1)
		r.Counter("alpha").Add(2)
		r.Gauge("mid").Set(3)
		r.Histogram("h", []float64{1, 2}).Observe(1.5)
		return r.Snapshot()
	}
	s := build()
	if s.Counters[0].Name != "alpha" || s.Counters[1].Name != "zeta" {
		t.Fatalf("counters not sorted: %+v", s.Counters)
	}
	var a, b bytes.Buffer
	if err := build().WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two identical registries must export identical JSON")
	}
	if !json.Valid(a.Bytes()) {
		t.Fatal("snapshot JSON is invalid")
	}
	var text bytes.Buffer
	if err := s.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"counter", "alpha", "gauge", "mid", "histogram", "le=2"} {
		if !strings.Contains(text.String(), want) {
			t.Fatalf("text snapshot missing %q:\n%s", want, text.String())
		}
	}
}

func TestConcurrentInstruments(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("c")
			h := r.Histogram("h", []float64{10, 100})
			g := r.Gauge("g")
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(float64(j % 150))
				g.Add(1)
				r.Snapshot() // concurrent readers must be safe too
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != 8000 {
		t.Fatalf("counter = %v, want 8000", got)
	}
	if got := r.Histogram("h", nil).Count(); got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
	if got := r.Gauge("g").Value(); got != 8000 {
		t.Fatalf("gauge = %v, want 8000", got)
	}
}
