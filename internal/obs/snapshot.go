package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"text/tabwriter"
)

// StandardQuantiles are the percentiles exported with every histogram
// snapshot: p50, p90, p99 and p99.9.
var StandardQuantiles = []float64{0.5, 0.9, 0.99, 0.999}

// MetricSnap is one counter or gauge value at snapshot time.
type MetricSnap struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// BucketSnap is one populated histogram bucket: the count of
// observations below the upper bound (buckets are half-open on the
// shared log-linear grid). LE renders the bound so the snapshot
// survives JSON; UpperBound carries the same value in-process.
type BucketSnap struct {
	UpperBound float64 `json:"-"`
	LE         string  `json:"le"`
	Count      uint64  `json:"count"`
}

// bound returns the numeric upper bound, recovering it from LE after a
// JSON round trip (grid bounds are always positive, so a zero
// UpperBound means "parse LE").
func (b BucketSnap) bound() float64 {
	if b.UpperBound != 0 {
		return b.UpperBound
	}
	if b.LE == "+Inf" {
		return math.Inf(1)
	}
	v, err := strconv.ParseFloat(b.LE, 64)
	if err != nil {
		return math.NaN()
	}
	return v
}

// QuantileSnap is one exported percentile.
type QuantileSnap struct {
	Q float64 `json:"q"`
	V float64 `json:"v"`
}

// ExemplarSnap is one exported histogram exemplar: a concrete traced
// observation from the bucket labeled LE, linking the quantile ladder
// back to a specific trace ID.
type ExemplarSnap struct {
	LE      string  `json:"le"`
	Value   float64 `json:"value"`
	TraceID string  `json:"trace_id"`
}

// HistogramSnap is one histogram at snapshot time. Only populated grid
// buckets are exported (the grid has thousands of mostly-empty
// buckets); conservation still holds over the export:
//
//	Count == Low + sum(Buckets[i].Count) + High
//
// Min and Max are 0 when Count is 0.
type HistogramSnap struct {
	Name      string         `json:"name"`
	Count     uint64         `json:"count"`
	Sum       float64        `json:"sum"`
	Min       float64        `json:"min"`
	Max       float64        `json:"max"`
	Low       uint64         `json:"low,omitempty"`
	High      uint64         `json:"high,omitempty"`
	Dropped   uint64         `json:"dropped,omitempty"`
	Quantiles []QuantileSnap `json:"quantiles,omitempty"`
	Buckets   []BucketSnap   `json:"buckets"`
	// Exemplars carries the bucket reservoirs' (value, trace ID)
	// pairs; empty (and omitted from JSON) unless the histogram saw
	// traced observations via ObserveExemplar.
	Exemplars []ExemplarSnap `json:"exemplars,omitempty"`
}

// ExemplarNear returns the exemplar whose value is closest to v — the
// "show me a trace behind this quantile" lookup: pass a quantile
// estimate and get a concrete trace ID from that neighborhood. Ties
// break toward the smaller trace ID. ok=false when the snapshot holds
// no exemplars or v is not finite.
func (h HistogramSnap) ExemplarNear(v float64) (ExemplarSnap, bool) {
	if len(h.Exemplars) == 0 || math.IsNaN(v) || math.IsInf(v, 0) {
		return ExemplarSnap{}, false
	}
	best := h.Exemplars[0]
	bestD := math.Abs(best.Value - v)
	for _, e := range h.Exemplars[1:] {
		d := math.Abs(e.Value - v)
		if d < bestD || (d == bestD && e.TraceID < best.TraceID) {
			best, bestD = e, d
		}
	}
	return best, true
}

// Quantile computes the q-quantile (0 < q <= 1) from the exported
// buckets by exact-count rank, exactly as Histogram.Quantile does live.
// It works on snapshots loaded back from JSON too. The second return is
// false when the snapshot is empty or q is out of range.
func (h HistogramSnap) Quantile(q float64) (float64, bool) {
	if h.Count == 0 || !(q > 0 && q <= 1) {
		return 0, false
	}
	rank := uint64(math.Ceil(q * float64(h.Count)))
	if rank < 1 {
		rank = 1
	}
	if rank > h.Count {
		rank = h.Count
	}
	cum := h.Low
	if rank <= cum {
		return h.Min, true
	}
	for _, b := range h.Buckets {
		cum += b.Count
		if rank <= cum {
			return clampTo(b.bound(), h.Min, h.Max), true
		}
	}
	return h.Max, true
}

// Snapshot is a point-in-time copy of a registry, sorted by metric name
// so exports are deterministic and diffable.
type Snapshot struct {
	Counters   []MetricSnap    `json:"counters"`
	Gauges     []MetricSnap    `json:"gauges"`
	Histograms []HistogramSnap `json:"histograms"`
}

// Snapshot copies the registry's current values. A nil registry yields
// an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters = append(s.Counters, MetricSnap{Name: name, Value: c.Value()})
	}
	for name, g := range r.gauges {
		s.Gauges = append(s.Gauges, MetricSnap{Name: name, Value: g.Value()})
	}
	for name, h := range r.hists {
		s.Histograms = append(s.Histograms, snapHistogram(name, h))
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}

func snapHistogram(name string, h *Histogram) HistogramSnap {
	hs := HistogramSnap{
		Name:    name,
		Count:   h.Count(),
		Sum:     h.Sum(),
		Low:     h.Low(),
		High:    h.High(),
		Dropped: h.Dropped(),
	}
	if hs.Count > 0 {
		hs.Min = h.Min()
		hs.Max = h.Max()
	}
	for i := 0; i < histBuckets; i++ {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		bound := bucketBound(i)
		hs.Buckets = append(hs.Buckets, BucketSnap{
			UpperBound: bound,
			LE:         formatBound(bound),
			Count:      c,
		})
	}
	if hs.Count > 0 {
		for _, q := range StandardQuantiles {
			v, _ := hs.Quantile(q)
			hs.Quantiles = append(hs.Quantiles, QuantileSnap{Q: q, V: v})
		}
	}
	hs.Exemplars = h.Exemplars()
	return hs
}

func formatBound(b float64) string {
	if math.IsInf(b, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(b, 'g', -1, 64)
}

// FindCounter returns the named counter's value.
func (s Snapshot) FindCounter(name string) (float64, bool) {
	i := sort.Search(len(s.Counters), func(i int) bool { return s.Counters[i].Name >= name })
	if i < len(s.Counters) && s.Counters[i].Name == name {
		return s.Counters[i].Value, true
	}
	return 0, false
}

// FindHistogram returns the named histogram snapshot.
func (s Snapshot) FindHistogram(name string) (HistogramSnap, bool) {
	i := sort.Search(len(s.Histograms), func(i int) bool { return s.Histograms[i].Name >= name })
	if i < len(s.Histograms) && s.Histograms[i].Name == name {
		return s.Histograms[i], true
	}
	return HistogramSnap{}, false
}

// Empty reports whether the snapshot holds no metrics at all.
func (s Snapshot) Empty() bool {
	return len(s.Counters) == 0 && len(s.Gauges) == 0 && len(s.Histograms) == 0
}

// WriteJSON writes the snapshot as one JSON object.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// ParseSnapshot reads a snapshot back from its WriteJSON form, so
// reports and SLO evaluation can run offline on an exported file.
func ParseSnapshot(data []byte) (Snapshot, error) {
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return Snapshot{}, fmt.Errorf("obs: parse snapshot: %w", err)
	}
	return s, nil
}

// WriteText writes an aligned human-readable snapshot: one line per
// counter and gauge, histograms with min/max/percentiles and their
// populated bucket ladders.
func (s Snapshot) WriteText(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	for _, c := range s.Counters {
		if _, err := fmt.Fprintf(tw, "counter\t%s\t%s\n", c.Name, formatValue(c.Value)); err != nil {
			return err
		}
	}
	for _, g := range s.Gauges {
		if _, err := fmt.Fprintf(tw, "gauge\t%s\t%s\n", g.Name, formatValue(g.Value)); err != nil {
			return err
		}
	}
	for _, h := range s.Histograms {
		if _, err := fmt.Fprintf(tw, "histogram\t%s\tcount=%d sum=%s min=%s max=%s\n",
			h.Name, h.Count, formatValue(h.Sum), formatValue(h.Min), formatValue(h.Max)); err != nil {
			return err
		}
		for _, q := range h.Quantiles {
			if _, err := fmt.Fprintf(tw, "\t  q=%s\t%s\n",
				formatValue(q.Q), formatValue(q.V)); err != nil {
				return err
			}
		}
		for _, b := range h.Buckets {
			if b.Count == 0 {
				continue
			}
			if _, err := fmt.Fprintf(tw, "\t  le=%s\t%d\n", b.LE, b.Count); err != nil {
				return err
			}
		}
		if h.Low > 0 {
			if _, err := fmt.Fprintf(tw, "\t  low(<=0)\t%d\n", h.Low); err != nil {
				return err
			}
		}
		if h.High > 0 {
			if _, err := fmt.Fprintf(tw, "\t  high(overflow)\t%d\n", h.High); err != nil {
				return err
			}
		}
		if h.Dropped > 0 {
			if _, err := fmt.Fprintf(tw, "\t  dropped(non-finite)\t%d\n", h.Dropped); err != nil {
				return err
			}
		}
		for _, e := range h.Exemplars {
			if _, err := fmt.Fprintf(tw, "\t  exemplar le=%s v=%s\ttrace=%s\n",
				e.LE, formatValue(e.Value), e.TraceID); err != nil {
				return err
			}
		}
	}
	return tw.Flush()
}

func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
