package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"text/tabwriter"
)

// MetricSnap is one counter or gauge value at snapshot time.
type MetricSnap struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// BucketSnap is one histogram bucket: the count of observations at or
// below the upper bound. LE renders the bound ("+Inf" for the overflow
// bucket) so the snapshot survives JSON, which cannot encode infinity.
type BucketSnap struct {
	UpperBound float64 `json:"-"`
	LE         string  `json:"le"`
	Count      uint64  `json:"count"`
}

// HistogramSnap is one histogram at snapshot time.
type HistogramSnap struct {
	Name    string       `json:"name"`
	Count   uint64       `json:"count"`
	Sum     float64      `json:"sum"`
	Dropped uint64       `json:"dropped,omitempty"`
	Buckets []BucketSnap `json:"buckets"`
}

// Snapshot is a point-in-time copy of a registry, sorted by metric name
// so exports are deterministic and diffable.
type Snapshot struct {
	Counters   []MetricSnap    `json:"counters"`
	Gauges     []MetricSnap    `json:"gauges"`
	Histograms []HistogramSnap `json:"histograms"`
}

// Snapshot copies the registry's current values. A nil registry yields
// an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters = append(s.Counters, MetricSnap{Name: name, Value: c.Value()})
	}
	for name, g := range r.gauges {
		s.Gauges = append(s.Gauges, MetricSnap{Name: name, Value: g.Value()})
	}
	for name, h := range r.hists {
		hs := HistogramSnap{
			Name:    name,
			Count:   h.Count(),
			Sum:     h.Sum(),
			Dropped: h.Dropped(),
		}
		for i := range h.counts {
			bound := math.Inf(1)
			if i < len(h.bounds) {
				bound = h.bounds[i]
			}
			hs.Buckets = append(hs.Buckets, BucketSnap{
				UpperBound: bound,
				LE:         formatBound(bound),
				Count:      h.counts[i].Load(),
			})
		}
		s.Histograms = append(s.Histograms, hs)
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}

func formatBound(b float64) string {
	if math.IsInf(b, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(b, 'g', -1, 64)
}

// Empty reports whether the snapshot holds no metrics at all.
func (s Snapshot) Empty() bool {
	return len(s.Counters) == 0 && len(s.Gauges) == 0 && len(s.Histograms) == 0
}

// WriteJSON writes the snapshot as one JSON object.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteText writes an aligned human-readable snapshot: one line per
// counter and gauge, histograms with their bucket ladders.
func (s Snapshot) WriteText(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	for _, c := range s.Counters {
		if _, err := fmt.Fprintf(tw, "counter\t%s\t%s\n", c.Name, formatValue(c.Value)); err != nil {
			return err
		}
	}
	for _, g := range s.Gauges {
		if _, err := fmt.Fprintf(tw, "gauge\t%s\t%s\n", g.Name, formatValue(g.Value)); err != nil {
			return err
		}
	}
	for _, h := range s.Histograms {
		if _, err := fmt.Fprintf(tw, "histogram\t%s\tcount=%d sum=%s\n",
			h.Name, h.Count, formatValue(h.Sum)); err != nil {
			return err
		}
		for _, b := range h.Buckets {
			if b.Count == 0 {
				continue
			}
			if _, err := fmt.Fprintf(tw, "\t  le=%s\t%d\n", b.LE, b.Count); err != nil {
				return err
			}
		}
		if h.Dropped > 0 {
			if _, err := fmt.Fprintf(tw, "\t  dropped(non-finite)\t%d\n", h.Dropped); err != nil {
				return err
			}
		}
	}
	return tw.Flush()
}

func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
