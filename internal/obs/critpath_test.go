package obs

import (
	"math"
	"testing"
	"time"
)

// buildTracedUpload emits a synthetic wake-up trace: a root span, a
// compute child, two uplink attempts with a backoff between them, and a
// server handler span — the same shape deployment + netsim + hivenet
// produce. Returns the trace ID.
func buildTracedUpload(tr *Tracer, seed uint64, hive string, wake uint64, at time.Time) string {
	sc := NewRootSpan(seed, hive, wake)
	up := sc.Child("upload", 0)
	// Root covers the full 10 s episode.
	tr.SpanCtx(sc, "wake-up routine", "deployment", TidRoutine, at, 10*time.Second, nil)
	tr.SpanCtx(sc.Child("compute", 0), "compute", "routine", TidRoutine, at, 2*time.Second, nil)
	tr.SpanCtx(up.Child("attempt", 1), "uplink retry", "net", TidNetwork, at.Add(2*time.Second), 1*time.Second, nil)
	tr.SpanCtx(up.Child("backoff", 1), "uplink backoff", "net", TidNetwork, at.Add(3*time.Second), 2*time.Second, nil)
	tr.SpanCtx(up.Child("attempt", 2), "uplink transfer", "net", TidNetwork, at.Add(5*time.Second), 3*time.Second, nil)
	tr.SpanCtx(up.Child("server", 0), "server handle upload", "server", TidServer, at.Add(8*time.Second), 2*time.Second, nil)
	return sc.TraceHex()
}

func TestAnalyzeTracesDecomposition(t *testing.T) {
	epoch := time.Date(2026, 3, 1, 0, 0, 0, 0, time.UTC)
	tr := NewTracer(epoch)
	id := buildTracedUpload(tr, 7, "hive-1", 0, epoch)
	// An untagged legacy span must be ignored.
	tr.Span("engine tick", "des", TidEngine, epoch, time.Second, nil)

	sums := AnalyzeTraces(tr.Events())
	if len(sums) != 1 {
		t.Fatalf("got %d traces, want 1", len(sums))
	}
	s := sums[0]
	if s.TraceID != id || s.RootName != "wake-up routine" {
		t.Fatalf("root mis-identified: %+v", s)
	}
	if s.TotalUS != 10_000_000 {
		t.Fatalf("TotalUS = %d, want 10s", s.TotalUS)
	}
	// Non-root spans tile the whole window: full attribution.
	if s.CoveredUS != s.TotalUS {
		t.Fatalf("CoveredUS = %d, want %d", s.CoveredUS, s.TotalUS)
	}
	if got := s.Coverage(); math.Abs(got-1) > 1e-12 {
		t.Fatalf("Coverage = %v, want 1", got)
	}
	wantSegs := map[string]int64{
		"compute":              2_000_000,
		"uplink retry":         1_000_000,
		"uplink backoff":       2_000_000,
		"uplink transfer":      3_000_000,
		"server handle upload": 2_000_000,
	}
	for name, us := range wantSegs {
		if got := s.Segment(name); got != us {
			t.Fatalf("segment %q = %d us, want %d", name, got, us)
		}
	}
	if s.Segments[0].Name != "uplink transfer" {
		t.Fatalf("segments not sorted largest-first: %+v", s.Segments)
	}
	if s.Segment("no-such") != 0 {
		t.Fatalf("missing segment must read 0")
	}
}

func TestAnalyzeTracesSortsSlowestFirst(t *testing.T) {
	epoch := time.Date(2026, 3, 1, 0, 0, 0, 0, time.UTC)
	tr := NewTracer(epoch)
	// Three wake-ups; wake 1 is stretched by a long backoff.
	buildTracedUpload(tr, 7, "hive-1", 0, epoch)
	slow := NewRootSpan(7, "hive-1", 1)
	tr.SpanCtx(slow, "wake-up routine", "deployment", TidRoutine, epoch.Add(time.Hour), 30*time.Second, nil)
	tr.SpanCtx(slow.Child("backoff", 1), "uplink backoff", "net", TidNetwork, epoch.Add(time.Hour), 30*time.Second, nil)
	buildTracedUpload(tr, 7, "hive-1", 2, epoch.Add(2*time.Hour))

	sums := AnalyzeTraces(tr.Events())
	if len(sums) != 3 {
		t.Fatalf("got %d traces, want 3", len(sums))
	}
	if sums[0].TraceID != slow.TraceHex() || sums[0].TotalUS != 30_000_000 {
		t.Fatalf("slowest trace not first: %+v", sums[0])
	}
	if sums[1].TotalUS < sums[2].TotalUS {
		t.Fatalf("summaries not sorted by TotalUS desc")
	}
}

func TestAnalyzeTracesOverlapUnion(t *testing.T) {
	epoch := time.Date(2026, 3, 1, 0, 0, 0, 0, time.UTC)
	tr := NewTracer(epoch)
	sc := NewRootSpan(1, "h", 0)
	tr.SpanCtx(sc, "root", "x", 0, epoch, 10*time.Second, nil)
	// Two fully-overlapping children: union is 4 s, not 8.
	tr.SpanCtx(sc.Child("a", 0), "a", "x", 0, epoch, 4*time.Second, nil)
	tr.SpanCtx(sc.Child("b", 0), "b", "x", 0, epoch, 4*time.Second, nil)
	s := AnalyzeTraces(tr.Events())[0]
	if s.CoveredUS != 4_000_000 {
		t.Fatalf("overlap union = %d, want 4s", s.CoveredUS)
	}
	if s.Segment("a")+s.Segment("b") != 8_000_000 {
		t.Fatalf("segment sums must not dedupe overlap")
	}
}

func TestAnalyzeTracesServerOnlySlice(t *testing.T) {
	// A trace slice with no parentless span (server saw the upload but
	// the edge file was lost): the longest span stands in as root.
	epoch := time.Date(2026, 3, 1, 0, 0, 0, 0, time.UTC)
	tr := NewTracer(epoch)
	sc := NewRootSpan(1, "h", 0)
	tr.SpanCtx(sc.Child("server", 0), "server handle upload", "server", TidServer, epoch, 2*time.Second, nil)
	tr.SpanCtx(sc.Child("server", 1), "server store", "server", TidServer, epoch, time.Second, nil)
	sums := AnalyzeTraces(tr.Events())
	if len(sums) != 1 || sums[0].RootName != "server handle upload" {
		t.Fatalf("server-only slice mishandled: %+v", sums)
	}
}

func TestAggregateSegments(t *testing.T) {
	epoch := time.Date(2026, 3, 1, 0, 0, 0, 0, time.UTC)
	tr := NewTracer(epoch)
	for w := 0; w < 10; w++ {
		buildTracedUpload(tr, 7, "hive-1", uint64(w), epoch.Add(time.Duration(w)*time.Hour))
	}
	stats := AggregateSegments(AnalyzeTraces(tr.Events()))
	if len(stats) != 5 {
		t.Fatalf("got %d segments, want 5: %+v", len(stats), stats)
	}
	if stats[0].Name != "uplink transfer" || stats[0].TotalUS != 30_000_000 {
		t.Fatalf("dominant segment wrong: %+v", stats[0])
	}
	for _, st := range stats {
		if st.Traces != 10 || st.Spans != 10 {
			t.Fatalf("segment %q counts wrong: %+v", st.Name, st)
		}
		if st.P50US != st.P99US {
			t.Fatalf("identical traces must have flat quantiles: %+v", st)
		}
	}
	if got := AggregateSegments(nil); len(got) != 0 {
		t.Fatalf("empty input must aggregate to empty")
	}
}

func TestRankQuantile(t *testing.T) {
	vals := []int64{10, 20, 30, 40}
	cases := []struct {
		q    float64
		want int64
	}{{0.25, 10}, {0.5, 20}, {0.75, 30}, {0.99, 40}, {1, 40}}
	for _, c := range cases {
		if got := rankQuantile(vals, c.q); got != c.want {
			t.Errorf("rankQuantile(%v) = %d, want %d", c.q, got, c.want)
		}
	}
	if rankQuantile(nil, 0.5) != 0 {
		t.Errorf("empty rankQuantile must be 0")
	}
}
