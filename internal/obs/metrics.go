// Package obs is beesim's observability layer: a metrics registry
// (counters, gauges, mergeable log-linear histograms) and a
// discrete-event tracer that together make the paper's accounting —
// joules per task, seconds per routine, losses per allocation round —
// visible *inside* a run instead of only as end-of-run summaries.
//
// The package is stdlib-only and designed to cost nothing when unused:
// every instrument is nil-safe (methods on a nil *Counter, *Gauge,
// *Histogram or *Tracer are no-ops), so instrumented packages hold the
// probes unconditionally and skip all branching in the disabled case.
// The enabled hot path is lock-free (atomics); only registration and
// snapshotting take a lock.
//
// Determinism matters here: snapshots are sorted by name, histogram
// buckets are a fixed function of the value (no per-histogram bucket
// configuration to drift), and the tracer is keyed by virtual
// simulation time, so two runs with the same seed produce
// byte-identical exports — which is what makes energy-model regressions
// diffable in CI.
package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing float64 metric. Increments are
// atomic; a nil counter ignores all operations.
type Counter struct {
	bits atomic.Uint64
}

// Add increases the counter by v. Negative or NaN deltas are ignored to
// keep counters monotone.
func (c *Counter) Add(v float64) {
	if c == nil || v <= 0 || math.IsNaN(v) {
		return
	}
	for {
		old := c.bits.Load()
		upd := math.Float64bits(math.Float64frombits(old) + v)
		if c.bits.CompareAndSwap(old, upd) {
			return
		}
	}
}

// Inc increases the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current total (0 for a nil counter).
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return math.Float64frombits(c.bits.Load())
}

// Gauge is a float64 metric that can move both ways. A nil gauge
// ignores all operations.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add shifts the gauge by v.
func (g *Gauge) Add(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		upd := math.Float64bits(math.Float64frombits(old) + v)
		if g.bits.CompareAndSwap(old, upd) {
			return
		}
	}
}

// Value returns the current value (0 for a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Log-linear (HDR-style) histogram layout. Every histogram shares one
// fixed bucket grid: each power-of-two tier [2^t, 2^(t+1)) is split
// into histSub equal-width sub-buckets, giving a worst-case relative
// error of 1/histSub (~3.1%) on any reported bound or quantile. The
// grid being a pure function of the value — not of construction-time
// configuration — is what makes histograms from different workers,
// shards or processes mergeable bucket-for-bucket.
const (
	histSubBits = 5
	// histSub is the number of linear sub-buckets per power-of-two tier.
	histSub = 1 << histSubBits
	// histTierMin..histTierMax is the covered magnitude range: tier t
	// holds values in [2^t, 2^(t+1)). 2^-30 ≈ 0.93 ns in seconds-space;
	// 2^40 ≈ 1.1e12 covers joule totals for multi-year fleet runs.
	histTierMin = -30
	histTierMax = 39
	histTiers   = histTierMax - histTierMin + 1
	histBuckets = histTiers * histSub
)

// bucketIndex maps a finite v > 0 onto the grid, clamping magnitudes
// below the first tier into bucket 0. It reports ok=false for values at
// or above 2^(histTierMax+1), which belong in the high overflow bucket.
// The sub-bucket arithmetic is exact: f-0.5 is exact by Sterbenz's
// lemma and the scale factor is a power of two, so equal values land in
// equal buckets on every platform.
func bucketIndex(v float64) (int, bool) {
	f, exp := math.Frexp(v) // v = f * 2^exp, f in [0.5, 1)
	tier := exp - 1
	if tier > histTierMax {
		return 0, false
	}
	if tier < histTierMin {
		return 0, true
	}
	sub := int((f - 0.5) * (2 * histSub))
	return (tier-histTierMin)*histSub + sub, true
}

// bucketBound returns the exclusive upper bound of grid bucket i: the
// bucket holds observations in [lower, bound).
func bucketBound(i int) float64 {
	tier := histTierMin + i/histSub
	sub := i % histSub
	return math.Ldexp(0.5+float64(sub+1)/(2*histSub), tier+1)
}

// orderedBits maps float bits onto uint64 so that the integer order
// matches the float order — the standard trick that lets min/max be
// maintained with plain integer compare-and-swap.
func orderedBits(v float64) uint64 {
	b := math.Float64bits(v)
	if b&(1<<63) != 0 {
		return ^b
	}
	return b | (1 << 63)
}

// floatFromOrdered inverts orderedBits.
func floatFromOrdered(b uint64) float64 {
	if b&(1<<63) != 0 {
		return math.Float64frombits(b &^ (1 << 63))
	}
	return math.Float64frombits(^b)
}

func atomicOrderMin(a *atomic.Uint64, ord uint64) {
	for {
		old := a.Load()
		if ord >= old {
			return
		}
		if a.CompareAndSwap(old, ord) {
			return
		}
	}
}

func atomicOrderMax(a *atomic.Uint64, ord uint64) {
	for {
		old := a.Load()
		if ord <= old {
			return
		}
		if a.CompareAndSwap(old, ord) {
			return
		}
	}
}

func atomicAddFloat(a *atomic.Uint64, v float64) {
	for {
		old := a.Load()
		upd := math.Float64bits(math.Float64frombits(old) + v)
		if a.CompareAndSwap(old, upd) {
			return
		}
	}
}

// Histogram counts observations on the shared log-linear grid and
// tracks exact count, sum, min and max. Observations are conserved:
//
//	Count() == Low() + sum(buckets) + High()
//
// Finite values <= 0 land in the dedicated low bucket, finite values at
// or above the grid's top in the dedicated high bucket — both still
// count toward Count, Sum, Min and Max, so quantile rank accounting
// never loses samples. Only non-finite observations (NaN, ±Inf) are
// rejected, and those are counted in Dropped. A nil histogram ignores
// all operations.
//
// Obtain histograms from a Registry; the zero value has unusable
// min/max sentinels.
type Histogram struct {
	counts  [histBuckets]atomic.Uint64
	low     atomic.Uint64 // finite observations <= 0
	high    atomic.Uint64 // finite observations >= 2^(histTierMax+1)
	sum     atomic.Uint64 // float64 bits
	count   atomic.Uint64 // low + grid + high
	dropped atomic.Uint64 // non-finite observations
	minOrd  atomic.Uint64 // orderedBits; valid iff count > 0
	maxOrd  atomic.Uint64

	// Exemplar reservoirs, keyed by bucket (see exemplar.go). Lazily
	// allocated under exMu on the first traced observation, so
	// untraced histograms never touch the lock or the map.
	exMu sync.Mutex
	ex   map[int][]Exemplar
}

// newHistogram returns a histogram with min/max sentinels armed.
func newHistogram() *Histogram {
	h := &Histogram{}
	h.minOrd.Store(^uint64(0))
	h.maxOrd.Store(0)
	return h
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		h.dropped.Add(1)
		return
	}
	if v <= 0 {
		h.low.Add(1)
	} else if i, ok := bucketIndex(v); ok {
		h.counts[i].Add(1)
	} else {
		h.high.Add(1)
	}
	h.count.Add(1)
	atomicAddFloat(&h.sum, v)
	ord := orderedBits(v)
	atomicOrderMin(&h.minOrd, ord)
	atomicOrderMax(&h.maxOrd, ord)
}

// Count returns the number of accepted observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of accepted observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Dropped returns the number of non-finite observations rejected.
func (h *Histogram) Dropped() uint64 {
	if h == nil {
		return 0
	}
	return h.dropped.Load()
}

// Low returns the count of finite observations <= 0.
func (h *Histogram) Low() uint64 {
	if h == nil {
		return 0
	}
	return h.low.Load()
}

// High returns the count of finite observations at or above the grid's
// upper edge.
func (h *Histogram) High() uint64 {
	if h == nil {
		return 0
	}
	return h.high.Load()
}

// Min returns the smallest accepted observation (NaN when empty).
func (h *Histogram) Min() float64 {
	if h == nil || h.count.Load() == 0 {
		return math.NaN()
	}
	return floatFromOrdered(h.minOrd.Load())
}

// Max returns the largest accepted observation (NaN when empty).
func (h *Histogram) Max() float64 {
	if h == nil || h.count.Load() == 0 {
		return math.NaN()
	}
	return floatFromOrdered(h.maxOrd.Load())
}

// Quantile returns the q-quantile (0 < q <= 1) by exact-count rank over
// the bucket grid: the element of rank ceil(q*Count) is located and its
// bucket's upper bound reported, clamped into [Min, Max] so the
// estimate never leaves the observed range. Samples in the low bucket
// rank below the grid and report Min; samples in the high bucket rank
// above it and report Max. Returns NaN when the histogram is empty or q
// is out of range.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return math.NaN()
	}
	total := h.count.Load()
	if total == 0 || !(q > 0 && q <= 1) {
		return math.NaN()
	}
	min, max := h.Min(), h.Max()
	rank := uint64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	cum := h.low.Load()
	if rank <= cum {
		return min
	}
	for i := 0; i < histBuckets; i++ {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		cum += c
		if rank <= cum {
			return clampTo(bucketBound(i), min, max)
		}
	}
	return max
}

func clampTo(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Merge folds src's observations into h bucket-for-bucket: counts, sum,
// min/max, and the low/high/dropped accounting all accumulate. Both
// histograms share the fixed grid, so the merge is exact — merging
// per-worker shards in index order yields the same counts as observing
// every sample on one histogram. A nil receiver or source is a no-op.
func (h *Histogram) Merge(src *Histogram) {
	if h == nil || src == nil {
		return
	}
	for i := range src.counts {
		if c := src.counts[i].Load(); c > 0 {
			h.counts[i].Add(c)
		}
	}
	h.low.Add(src.low.Load())
	h.high.Add(src.high.Load())
	h.dropped.Add(src.dropped.Load())
	if n := src.count.Load(); n > 0 {
		h.count.Add(n)
		atomicAddFloat(&h.sum, src.Sum())
		atomicOrderMin(&h.minOrd, src.minOrd.Load())
		atomicOrderMax(&h.maxOrd, src.maxOrd.Load())
	}
	h.mergeExemplars(src)
}

// Registry holds named instruments. The zero value is not usable;
// create one with NewRegistry. A nil *Registry hands out nil
// instruments, so "no registry" disables a package's probes without any
// call-site branching.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns a nil (no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. A nil
// registry returns a nil (no-op) gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
// All histograms share the fixed log-linear bucket grid, so no bucket
// configuration is needed (or possible — fixed buckets are what keep
// shards mergeable). A nil registry returns a nil (no-op) histogram.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram()
		r.hists[name] = h
	}
	return h
}

// Merge folds every instrument of src into r: counters add their
// totals, gauges take src's value, histograms merge bucket-for-bucket.
// Instruments missing from r are created, so the merged registry's
// snapshot covers the union of names. Iteration is in sorted-name
// order and src's instruments are collected before r's lock is touched,
// so merging is deterministic and two registries can never deadlock
// each other. A nil receiver or source is a no-op.
func (r *Registry) Merge(src *Registry) {
	if r == nil || src == nil || r == src {
		return
	}
	type namedCounter struct {
		name string
		v    float64
	}
	type namedGauge struct {
		name string
		v    float64
	}
	type namedHist struct {
		name string
		h    *Histogram
	}
	src.mu.Lock()
	counters := make([]namedCounter, 0, len(src.counters))
	for name, c := range src.counters {
		counters = append(counters, namedCounter{name, c.Value()})
	}
	gauges := make([]namedGauge, 0, len(src.gauges))
	for name, g := range src.gauges {
		gauges = append(gauges, namedGauge{name, g.Value()})
	}
	hists := make([]namedHist, 0, len(src.hists))
	for name, h := range src.hists {
		hists = append(hists, namedHist{name, h})
	}
	src.mu.Unlock()
	sort.Slice(counters, func(i, j int) bool { return counters[i].name < counters[j].name })
	sort.Slice(gauges, func(i, j int) bool { return gauges[i].name < gauges[j].name })
	sort.Slice(hists, func(i, j int) bool { return hists[i].name < hists[j].name })
	for _, c := range counters {
		r.Counter(c.name).Add(c.v)
	}
	for _, g := range gauges {
		r.Gauge(g.name).Set(g.v)
	}
	for _, h := range hists {
		r.Histogram(h.name).Merge(h.h)
	}
}
