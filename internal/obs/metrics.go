// Package obs is beesim's observability layer: a metrics registry
// (counters, gauges, fixed-bucket histograms) and a discrete-event
// tracer that together make the paper's accounting — joules per task,
// seconds per routine, losses per allocation round — visible *inside* a
// run instead of only as end-of-run summaries.
//
// The package is stdlib-only and designed to cost nothing when unused:
// every instrument is nil-safe (methods on a nil *Counter, *Gauge,
// *Histogram or *Tracer are no-ops), so instrumented packages hold the
// probes unconditionally and skip all branching in the disabled case.
// The enabled hot path is lock-free (atomics); only registration and
// snapshotting take a lock.
//
// Determinism matters here: snapshots are sorted by name and the tracer
// is keyed by virtual simulation time, so two runs with the same seed
// produce byte-identical exports — which is what makes energy-model
// regressions diffable in CI.
package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing float64 metric. Increments are
// atomic; a nil counter ignores all operations.
type Counter struct {
	bits atomic.Uint64
}

// Add increases the counter by v. Negative or NaN deltas are ignored to
// keep counters monotone.
func (c *Counter) Add(v float64) {
	if c == nil || v <= 0 || math.IsNaN(v) {
		return
	}
	for {
		old := c.bits.Load()
		upd := math.Float64bits(math.Float64frombits(old) + v)
		if c.bits.CompareAndSwap(old, upd) {
			return
		}
	}
}

// Inc increases the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current total (0 for a nil counter).
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return math.Float64frombits(c.bits.Load())
}

// Gauge is a float64 metric that can move both ways. A nil gauge
// ignores all operations.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add shifts the gauge by v.
func (g *Gauge) Add(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		upd := math.Float64bits(math.Float64frombits(old) + v)
		if g.bits.CompareAndSwap(old, upd) {
			return
		}
	}
}

// Value returns the current value (0 for a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets. Bucket i counts
// observations <= bounds[i]; one implicit overflow bucket catches the
// rest. Non-finite observations are dropped (and counted separately) so
// a stray NaN cannot poison the sum. A nil histogram ignores all
// operations.
type Histogram struct {
	bounds  []float64 // ascending upper bounds
	counts  []atomic.Uint64
	sum     atomic.Uint64 // float64 bits
	count   atomic.Uint64
	dropped atomic.Uint64 // non-finite observations
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		h.dropped.Add(1)
		return
	}
	// Binary search for the first bound >= v.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		upd := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, upd) {
			return
		}
	}
}

// Count returns the number of accepted observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of accepted observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Dropped returns the number of non-finite observations rejected.
func (h *Histogram) Dropped() uint64 {
	if h == nil {
		return 0
	}
	return h.dropped.Load()
}

// DefaultSecondsBuckets suit task and transfer durations in seconds:
// sub-second service handling up to multi-minute routines.
func DefaultSecondsBuckets() []float64 {
	return []float64{0.001, 0.005, 0.025, 0.1, 0.5, 1, 5, 10, 15, 20, 30, 60, 120, 300}
}

// Registry holds named instruments. The zero value is not usable;
// create one with NewRegistry. A nil *Registry hands out nil
// instruments, so "no registry" disables a package's probes without any
// call-site branching.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns a nil (no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. A nil
// registry returns a nil (no-op) gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// ascending upper bounds on first use (later calls reuse the original
// buckets). A nil registry returns a nil (no-op) histogram.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		bs := make([]float64, len(bounds))
		copy(bs, bounds)
		sort.Float64s(bs)
		h = &Histogram{bounds: bs, counts: make([]atomic.Uint64, len(bs)+1)}
		r.hists[name] = h
	}
	return h
}
