package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"
)

// scFor builds a span context with a recognizable trace ID for tests.
func scFor(seed uint64, hive string, wake uint64) *SpanContext {
	return NewRootSpan(seed, hive, wake)
}

func TestObserveExemplarKeepsTopK(t *testing.T) {
	h := &Histogram{}
	// Five observations landing in distinct buckets plus three crowding
	// one bucket: each bucket keeps at most exemplarsPerBucket, largest
	// values first.
	ids := make(map[float64]string)
	for i, v := range []float64{1.0, 1.01, 1.02, 8, 64} {
		sc := scFor(uint64(i), "hive", uint64(i))
		ids[v] = sc.TraceHex()
		h.ObserveExemplar(v, sc)
	}
	ex := h.Exemplars()
	if len(ex) == 0 {
		t.Fatalf("no exemplars recorded")
	}
	perBucket := map[string]int{}
	for _, e := range ex {
		perBucket[e.LE]++
		if e.TraceID != ids[e.Value] {
			t.Fatalf("exemplar %v carries wrong trace ID", e)
		}
	}
	for le, n := range perBucket {
		if n > exemplarsPerBucket {
			t.Fatalf("bucket %s holds %d exemplars, cap is %d", le, n, exemplarsPerBucket)
		}
	}
	// 1.0, 1.01, 1.02 share a bucket: only the two largest survive.
	for _, e := range ex {
		if e.Value == 1.0 {
			t.Fatalf("smallest of three same-bucket values must be evicted")
		}
	}
}

func TestObserveExemplarNilAndNonFinite(t *testing.T) {
	h := &Histogram{}
	h.ObserveExemplar(1.5, nil)
	h.ObserveExemplar(math.NaN(), scFor(1, "h", 0))
	h.ObserveExemplar(math.Inf(1), scFor(1, "h", 0))
	if got := h.Exemplars(); len(got) != 0 {
		t.Fatalf("nil/non-finite observations must not record exemplars: %v", got)
	}
	if h.Count() != 1 {
		t.Fatalf("nil-context ObserveExemplar must still count: %d", h.Count())
	}
	var nilH *Histogram
	nilH.ObserveExemplar(1, scFor(1, "h", 0)) // must not panic
	if nilH.Exemplars() != nil {
		t.Fatalf("nil histogram exemplars must be nil")
	}
}

func TestObserveExemplarNilContextZeroAlloc(t *testing.T) {
	h := &Histogram{}
	allocs := testing.AllocsPerRun(100, func() {
		h.ObserveExemplar(2.5, nil)
	})
	if allocs != 0 {
		t.Fatalf("untraced ObserveExemplar allocates: %v allocs/op", allocs)
	}
}

func TestExemplarMergeOrderIndependent(t *testing.T) {
	// The merged reservoir must equal the one a single histogram holds
	// after observing the union, regardless of how samples were split.
	samples := []struct {
		v  float64
		sc *SpanContext
	}{
		{1.0, scFor(1, "a", 0)}, {1.01, scFor(2, "b", 0)}, {1.02, scFor(3, "c", 0)},
		{8, scFor(4, "d", 0)}, {8.1, scFor(5, "e", 0)}, {8.2, scFor(6, "f", 0)},
		{0, scFor(7, "g", 0)}, {1e40, scFor(8, "h", 0)},
	}
	single := &Histogram{}
	for _, s := range samples {
		single.ObserveExemplar(s.v, s.sc)
	}
	splits := [][]int{
		{0, 1, 0, 1, 0, 1, 0, 1},
		{1, 1, 1, 1, 0, 0, 0, 0},
		{0, 0, 0, 0, 1, 1, 1, 1},
	}
	for si, split := range splits {
		parts := []*Histogram{{}, {}}
		for i, s := range samples {
			parts[split[i]].ObserveExemplar(s.v, s.sc)
		}
		merged := &Histogram{}
		merged.Merge(parts[0])
		merged.Merge(parts[1])
		got, want := merged.Exemplars(), single.Exemplars()
		if len(got) != len(want) {
			t.Fatalf("split %d: %d exemplars, want %d", si, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("split %d: exemplar %d = %v, want %v", si, i, got[i], want[i])
			}
		}
	}
}

func TestExemplarsSurviveSnapshotJSON(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("upload_seconds")
	h.ObserveExemplar(3.5, scFor(9, "hive-2", 4))
	h.ObserveExemplar(41.0, scFor(9, "hive-2", 5))
	snap := r.Snapshot()

	var buf bytes.Buffer
	if err := snap.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	back, err := ParseSnapshot(buf.Bytes())
	if err != nil {
		t.Fatalf("ParseSnapshot: %v", err)
	}
	hs, ok := back.FindHistogram("upload_seconds")
	if !ok || len(hs.Exemplars) != 2 {
		t.Fatalf("exemplars lost in JSON round trip: %+v", hs.Exemplars)
	}
	// ExemplarNear links a quantile estimate back to a trace.
	want := scFor(9, "hive-2", 5).TraceHex()
	e, ok := hs.ExemplarNear(40)
	if !ok || e.TraceID != want || e.Value != 41.0 {
		t.Fatalf("ExemplarNear(40) = %+v, want trace %s", e, want)
	}
	// Untraced histograms keep the old snapshot shape: no exemplars key.
	r2 := NewRegistry()
	r2.Histogram("plain").Observe(1)
	var buf2 bytes.Buffer
	if err := r2.Snapshot().WriteJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(buf2.Bytes(), []byte("exemplars")) {
		t.Fatalf("untraced snapshot must omit exemplars field:\n%s", buf2.String())
	}
}

func TestExemplarNearEmpty(t *testing.T) {
	var hs HistogramSnap
	if _, ok := hs.ExemplarNear(1); ok {
		t.Fatalf("empty snapshot must report no exemplar")
	}
	hs.Exemplars = []ExemplarSnap{{LE: "1", Value: 1, TraceID: "aa"}}
	if _, ok := hs.ExemplarNear(math.NaN()); ok {
		t.Fatalf("NaN lookup must report no exemplar")
	}
}

func TestExemplarJSONShape(t *testing.T) {
	e := ExemplarSnap{LE: "2", Value: 1.5, TraceID: "deadbeef"}
	b, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"le":"2","value":1.5,"trace_id":"deadbeef"}`
	if string(b) != want {
		t.Fatalf("exemplar JSON = %s, want %s", b, want)
	}
}

func BenchmarkHistogramObserveExemplar(b *testing.B) {
	b.Run("untraced", func(b *testing.B) {
		h := &Histogram{}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h.ObserveExemplar(1.5, nil)
		}
	})
	b.Run("traced", func(b *testing.B) {
		h := &Histogram{}
		sc := scFor(1, "hive-1", 0)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h.ObserveExemplar(1.5, sc)
		}
	})
}
