package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestNewRootSpanDeterministic(t *testing.T) {
	a := NewRootSpan(42, "hive-1", 7)
	b := NewRootSpan(42, "hive-1", 7)
	if a.Trace != b.Trace || a.Span != b.Span {
		t.Fatalf("same inputs produced different identities: %v vs %v", a, b)
	}
	if a.Flags != 1 {
		t.Fatalf("root span flags = %#x, want 0x01 (sampled)", a.Flags)
	}
	if a.Parent != (SpanID{}) {
		t.Fatalf("root span must have zero parent, got %x", a.Parent)
	}
	// Any input change must move the trace ID.
	for _, other := range []*SpanContext{
		NewRootSpan(43, "hive-1", 7),
		NewRootSpan(42, "hive-2", 7),
		NewRootSpan(42, "hive-1", 8),
	} {
		if other.Trace == a.Trace {
			t.Fatalf("distinct inputs collided on trace ID %s", a.TraceHex())
		}
	}
}

func TestChildDerivation(t *testing.T) {
	root := NewRootSpan(1, "hive-1", 0)
	c1 := root.Child("attempt", 1)
	c2 := root.Child("attempt", 2)
	ck := root.Child("backoff", 1)
	if c1.Trace != root.Trace {
		t.Fatalf("child changed trace ID")
	}
	if c1.Parent != root.Span {
		t.Fatalf("child parent = %x, want root span %x", c1.Parent, root.Span)
	}
	if c1.Span == c2.Span || c1.Span == ck.Span {
		t.Fatalf("children of distinct (kind,index) must differ")
	}
	again := root.Child("attempt", 1)
	if again.Span != c1.Span {
		t.Fatalf("child derivation is not pure: %x vs %x", again.Span, c1.Span)
	}
	// Grandchildren chain the parent pointer.
	g := c1.Child("server", 0)
	if g.Parent != c1.Span || g.Trace != root.Trace {
		t.Fatalf("grandchild lineage broken")
	}
	if (*SpanContext)(nil).Child("x", 0) != nil {
		t.Fatalf("nil.Child must stay nil")
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	sc := NewRootSpan(99, "hive-3", 12)
	tp := sc.Traceparent()
	if len(tp) != 55 || !strings.HasPrefix(tp, "00-") {
		t.Fatalf("bad traceparent %q", tp)
	}
	got, err := ParseTraceparent(tp)
	if err != nil {
		t.Fatalf("ParseTraceparent(%q): %v", tp, err)
	}
	if got.Trace != sc.Trace || got.Span != sc.Span || got.Flags != sc.Flags {
		t.Fatalf("round trip lost identity: %v vs %v", got, *sc)
	}
	if got.Traceparent() != tp {
		t.Fatalf("re-serialize mismatch: %q vs %q", got.Traceparent(), tp)
	}
	if (*SpanContext)(nil).Traceparent() != "" {
		t.Fatalf("nil traceparent must be empty")
	}
}

func TestParseTraceparentRejects(t *testing.T) {
	valid := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	if _, err := ParseTraceparent(valid); err != nil {
		t.Fatalf("reference header rejected: %v", err)
	}
	bad := map[string]string{
		"short":        valid[:54],
		"long":         valid + "0",
		"version-ff":   "ff" + valid[2:],
		"version-01":   "01" + valid[2:],
		"uppercase":    strings.Replace(valid, "4bf", "4BF", 1),
		"bad-dash":     strings.Replace(valid, "-00f", "_00f", 1),
		"zero-trace":   "00-00000000000000000000000000000000-00f067aa0ba902b7-01",
		"zero-span":    "00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01",
		"nonhex-flags": valid[:53] + "zz",
	}
	for name, s := range bad {
		if _, err := ParseTraceparent(s); err == nil {
			t.Errorf("%s: ParseTraceparent(%q) accepted invalid input", name, s)
		}
	}
}

func TestSpanCtxTagsEvents(t *testing.T) {
	epoch := time.Date(2026, 3, 1, 0, 0, 0, 0, time.UTC)
	tr := NewTracer(epoch)
	sc := NewRootSpan(5, "hive-1", 0)
	child := sc.Child("attempt", 1)
	args := map[string]any{"hive": "hive-1"}
	tr.SpanCtx(sc, "wake-up routine", "deployment", TidRoutine, epoch, time.Second, args)
	tr.SpanCtx(child, "uplink transfer", "net", TidNetwork, epoch, time.Second, nil)
	tr.SpanCtx(nil, "untraced", "net", TidNetwork, epoch, time.Second, map[string]any{"k": 1})

	if len(args) != 1 {
		t.Fatalf("SpanCtx mutated the caller's args map: %v", args)
	}
	ev := tr.Events()
	if len(ev) != 3 {
		t.Fatalf("got %d events, want 3", len(ev))
	}
	root := ev[0]
	if root.Args[ArgTraceID] != sc.TraceHex() || root.Args[ArgSpanID] != sc.SpanHex() {
		t.Fatalf("root span not tagged: %v", root.Args)
	}
	if _, ok := root.Args[ArgParentID]; ok {
		t.Fatalf("root span must not carry a parent ID")
	}
	if root.Args["hive"] != "hive-1" {
		t.Fatalf("caller args lost: %v", root.Args)
	}
	att := ev[1]
	if att.Args[ArgParentID] != sc.SpanHex() || att.Args[ArgTraceID] != sc.TraceHex() {
		t.Fatalf("child span lineage not tagged: %v", att.Args)
	}
	if _, ok := ev[2].Args[ArgTraceID]; ok {
		t.Fatalf("nil context must leave events untagged")
	}
}

func TestStitchAndParseRoundTrip(t *testing.T) {
	epoch := time.Date(2026, 3, 1, 0, 0, 0, 0, time.UTC)
	t1 := NewTracer(epoch)
	t2 := NewTracer(epoch)
	t1.Span("a", "x", 0, epoch.Add(2*time.Second), time.Second, nil)
	t1.Span("b", "x", 0, epoch, time.Second, nil)
	t2.Span("c", "x", 1, epoch.Add(time.Second), time.Second, nil)

	merged := Stitch(t1.Events(), t2.Events())
	if len(merged) != 3 {
		t.Fatalf("stitched %d events, want 3", len(merged))
	}
	for i := 1; i < len(merged); i++ {
		if merged[i].TS < merged[i-1].TS {
			t.Fatalf("stitched events out of order at %d", i)
		}
	}

	var buf bytes.Buffer
	if err := WriteTraceJSON(&buf, merged); err != nil {
		t.Fatalf("WriteTraceJSON: %v", err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("trace JSON invalid")
	}
	back, err := ParseTraceJSON(buf.Bytes())
	if err != nil {
		t.Fatalf("ParseTraceJSON: %v", err)
	}
	if len(back) != len(merged) {
		t.Fatalf("round trip lost events: %d vs %d", len(back), len(merged))
	}
	for i := range back {
		if back[i].Name != merged[i].Name || back[i].TS != merged[i].TS {
			t.Fatalf("event %d changed in round trip", i)
		}
	}
	// Bare-array form parses too.
	arr, _ := json.Marshal(merged)
	back2, err := ParseTraceJSON(arr)
	if err != nil || len(back2) != len(merged) {
		t.Fatalf("bare array parse: %v (%d events)", err, len(back2))
	}
}

func TestStitchOrderIndependentOfListSplit(t *testing.T) {
	epoch := time.Date(2026, 3, 1, 0, 0, 0, 0, time.UTC)
	// Two hives with interleaved, tie-heavy timestamps: stitching the
	// same per-hive lists must give identical bytes regardless of how
	// they were produced (simulating different worker counts, which
	// always merge in hive index order).
	h1 := NewTracer(epoch)
	h2 := NewTracer(epoch)
	for i := 0; i < 5; i++ {
		at := epoch.Add(time.Duration(i) * time.Second)
		h1.Span("h1", "x", 0, at, time.Second, nil)
		h2.Span("h2", "x", 1, at, time.Second, nil)
	}
	a := Stitch(h1.Events(), h2.Events())
	b := Stitch(h1.Events(), h2.Events())
	var ba, bb bytes.Buffer
	if err := WriteTraceJSON(&ba, a); err != nil {
		t.Fatal(err)
	}
	if err := WriteTraceJSON(&bb, b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ba.Bytes(), bb.Bytes()) {
		t.Fatalf("stitch not deterministic")
	}
	// Ties keep list order: h1's event precedes h2's at each instant.
	for i := 0; i < len(a); i += 2 {
		if a[i].Name != "h1" || a[i+1].Name != "h2" {
			t.Fatalf("tie order broken at %d: %s,%s", i, a[i].Name, a[i+1].Name)
		}
	}
}

func BenchmarkSpanStart(b *testing.B) {
	b.ReportAllocs()
	var sink *SpanContext
	for i := 0; i < b.N; i++ {
		sc := NewRootSpan(42, "hive-1", uint64(i))
		sink = sc.Child("attempt", 1)
	}
	_ = sink
}
