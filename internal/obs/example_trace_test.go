package obs_test

import (
	"fmt"
	"time"

	"beesim/internal/obs"
)

// Example_tracedUpload walks the full tracing loop referenced from
// docs/OBSERVABILITY.md: derive a deterministic root span for a hive
// wake-up, emit child spans for the compute and radio phases plus a
// joined server span, record the upload latency with an exemplar, then
// run the critical-path analyzer and look the slow upload back up by
// its trace ID. Every ID is a pure hash of (seed, hive, wake-up), so
// the output never changes.
func Example_tracedUpload() {
	epoch := time.Date(2023, 4, 15, 12, 0, 0, 0, time.UTC)
	tr := obs.NewTracer(epoch)
	m := obs.NewRegistry()
	h := m.Histogram("upload_seconds")

	// The edge derives the wake-up's identity and spans its phases.
	sc := obs.NewRootSpan(42, "cachan-1", 0)
	tr.SpanCtx(sc.Child("compute", 0), "compute", "edge", obs.TidRoutine,
		epoch, 2*time.Second, nil)
	up := sc.Child("upload", 0)
	tr.SpanCtx(up.Child("attempt", 1), "uplink transfer", "net", obs.TidNetwork,
		epoch.Add(2*time.Second), 5*time.Second, nil)

	// The wire carries the context as a W3C traceparent; the cloud
	// parses it and its handler span joins the same trace.
	srv, err := obs.ParseTraceparent(up.Traceparent())
	if err != nil {
		fmt.Println("parse:", err)
		return
	}
	tr.SpanCtx(srv.Child("server", 0), "server handle upload", "server", obs.TidServer,
		epoch.Add(7*time.Second), time.Second, nil)
	tr.SpanCtx(sc, "wake-up cycle", "edge", obs.TidRoutine, epoch, 8*time.Second, nil)

	// The latency histogram keeps (value, trace) exemplars per bucket.
	h.ObserveExemplar(8.0, sc)

	sums := obs.AnalyzeTraces(tr.Events())
	s := sums[0]
	fmt.Printf("root %q covers %.0f%% of %.0fs\n",
		s.RootName, 100*s.Coverage(), float64(s.TotalUS)/1e6)
	for _, seg := range s.Segments {
		fmt.Printf("  %-20s %.0fs\n", seg.Name, float64(seg.US)/1e6)
	}

	// The exemplar near 8 s points back at the trace we just analyzed.
	snap := m.Snapshot()
	if hs, ok := snap.FindHistogram("upload_seconds"); ok {
		if ex, ok := hs.ExemplarNear(8.0); ok {
			fmt.Println("exemplar trace matches:", ex.TraceID == s.TraceID)
		}
	}
	// Output:
	// root "wake-up cycle" covers 100% of 8s
	//   uplink transfer      5s
	//   compute              2s
	//   server handle upload 1s
	// exemplar trace matches: true
}
