package obs

import (
	"errors"
	"time"

	"beesim/internal/rng"
)

// Distributed tracing identities. A SpanContext names one span inside
// one trace; it crosses process boundaries as a W3C-style traceparent
// header (`00-<trace>-<span>-<flags>`), so the hivenet server can join
// its handler spans into the trace an edge agent opened.
//
// Determinism is the whole point: IDs are *hashed*, never drawn from a
// stateful generator, wall clock or global counter. A root span's trace
// ID is a pure function of (seed, hive, wake-up index) through
// rng.StreamSeed, and every child span ID is a pure function of
// (parent span ID, kind, index) — so stitched traces are byte-identical
// at any worker count, the same contract internal/parallel pins for
// metrics and ledgers.
//
// A nil *SpanContext is a no-op everywhere, mirroring the nil *Tracer
// convention: untraced runs thread nil through the whole upload path
// and pay no allocations.

// TraceID is the 16-byte trace identity shared by every span of one
// causal chain (one wake-up's upload, edge to cloud).
type TraceID [16]byte

// SpanID is the 8-byte identity of one span within a trace.
type SpanID [8]byte

// SpanContext identifies one span: the trace it belongs to, its own ID,
// and its parent's ID (zero for a root span).
type SpanContext struct {
	Trace  TraceID
	Span   SpanID
	Parent SpanID
	// Flags is the traceparent trace-flags byte (bit 0 = sampled).
	// NewRootSpan sets it to 1; ParseTraceparent preserves the wire
	// value so headers round-trip exactly.
	Flags byte
}

// fnv64a hashes s with FNV-1a, allocation-free (hash/fnv's New64a
// escapes to the heap; span derivation sits on the per-attempt path).
func fnv64a(s string) uint64 {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return h
}

func putU64(b []byte, v uint64) {
	_ = b[7]
	b[0] = byte(v >> 56)
	b[1] = byte(v >> 48)
	b[2] = byte(v >> 40)
	b[3] = byte(v >> 32)
	b[4] = byte(v >> 24)
	b[5] = byte(v >> 16)
	b[6] = byte(v >> 8)
	b[7] = byte(v)
}

func u64(b []byte) uint64 {
	_ = b[7]
	return uint64(b[0])<<56 | uint64(b[1])<<48 | uint64(b[2])<<40 | uint64(b[3])<<32 |
		uint64(b[4])<<24 | uint64(b[5])<<16 | uint64(b[6])<<8 | uint64(b[7])
}

// NewRootSpan derives the root span of one wake-up's trace. The trace
// ID mixes (seed, hive, wakeup) through two StreamSeed finalizations;
// the root span ID is a further derivation of the trace ID. All-zero
// IDs are forbidden by the traceparent format, so the (astronomically
// unlikely) zero hash is nudged deterministically.
func NewRootSpan(seed uint64, hive string, wakeup uint64) *SpanContext {
	hi := rng.StreamSeed(seed, fnv64a(hive))
	lo := rng.StreamSeed(hi, wakeup)
	sc := &SpanContext{Flags: 1}
	putU64(sc.Trace[0:8], hi)
	putU64(sc.Trace[8:16], lo)
	if sc.Trace == (TraceID{}) {
		sc.Trace[15] = 1
	}
	span := rng.StreamSeed(lo^hi, wakeup)
	if span == 0 {
		span = 1
	}
	putU64(sc.Span[:], span)
	return sc
}

// Child derives the span for one sub-operation: kind names the
// operation class ("upload", "attempt", "backoff", "server") and index
// distinguishes repetitions (the retry attempt number). The child
// shares the trace ID, records the receiver as its parent, and its span
// ID is a pure function of (parent span ID, kind, index). A nil
// receiver returns nil, so untraced code paths stay no-ops.
func (sc *SpanContext) Child(kind string, index uint64) *SpanContext {
	if sc == nil {
		return nil
	}
	c := *sc
	c.Parent = sc.Span
	id := rng.StreamSeed(u64(sc.Span[:])^fnv64a(kind), index)
	if id == 0 {
		id = 1
	}
	putU64(c.Span[:], id)
	return &c
}

const hexDigits = "0123456789abcdef"

func appendHex(dst []byte, b []byte) []byte {
	for _, v := range b {
		dst = append(dst, hexDigits[v>>4], hexDigits[v&0x0f])
	}
	return dst
}

// TraceHex returns the 32-digit lowercase hex trace ID ("" for nil).
func (sc *SpanContext) TraceHex() string {
	if sc == nil {
		return ""
	}
	return string(appendHex(make([]byte, 0, 32), sc.Trace[:]))
}

// SpanHex returns the 16-digit lowercase hex span ID ("" for nil).
func (sc *SpanContext) SpanHex() string {
	if sc == nil {
		return ""
	}
	return string(appendHex(make([]byte, 0, 16), sc.Span[:]))
}

// ParentHex returns the 16-digit lowercase hex parent span ID ("" for
// nil contexts and for root spans).
func (sc *SpanContext) ParentHex() string {
	if sc == nil || sc.Parent == (SpanID{}) {
		return ""
	}
	return string(appendHex(make([]byte, 0, 16), sc.Parent[:]))
}

// Traceparent serializes the context in the W3C trace-context format:
//
//	00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01
//
// (version 00, 32 hex trace ID, 16 hex span ID, 2 hex flags). A nil
// context serializes to "".
func (sc *SpanContext) Traceparent() string {
	if sc == nil {
		return ""
	}
	b := make([]byte, 0, 55)
	b = append(b, '0', '0', '-')
	b = appendHex(b, sc.Trace[:])
	b = append(b, '-')
	b = appendHex(b, sc.Span[:])
	b = append(b, '-', hexDigits[sc.Flags>>4], hexDigits[sc.Flags&0x0f])
	return string(b)
}

// Traceparent parse errors.
var (
	errTraceparentLen     = errors.New("obs: traceparent must be 55 bytes (00-<32 hex>-<16 hex>-<2 hex>)")
	errTraceparentDash    = errors.New("obs: traceparent field separators must be '-'")
	errTraceparentVersion = errors.New("obs: unsupported traceparent version (only 00)")
	errTraceparentHex     = errors.New("obs: traceparent IDs must be lowercase hex")
	errTraceparentZeroID  = errors.New("obs: traceparent trace and span IDs must not be all-zero")
)

// hexNibble decodes one lowercase hex digit; ok=false otherwise.
// Uppercase is rejected on purpose: the W3C format mandates lowercase,
// and accepting both would break the serialize-parse round trip the
// fuzz target pins.
func hexNibble(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	default:
		return 0, false
	}
}

func decodeHex(dst, src []byte) bool {
	for i := 0; i < len(dst); i++ {
		hi, ok1 := hexNibble(src[2*i])
		lo, ok2 := hexNibble(src[2*i+1])
		if !ok1 || !ok2 {
			return false
		}
		dst[i] = hi<<4 | lo
	}
	return true
}

// ParseTraceparent parses a W3C traceparent header strictly: exactly
// version 00, lowercase hex, correct field lengths, and non-zero trace
// and span IDs. The parent span ID is not carried on the wire, so the
// result has a zero Parent; the caller decides whether the parsed span
// becomes a parent (Child) or is used as-is.
func ParseTraceparent(s string) (SpanContext, error) {
	var sc SpanContext
	if len(s) != 55 {
		return SpanContext{}, errTraceparentLen
	}
	if s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return SpanContext{}, errTraceparentDash
	}
	if s[0] != '0' || s[1] != '0' {
		// Reject every non-00 version, including the forbidden ff:
		// future versions may legally carry longer payloads, and
		// guessing at their layout would mis-join traces.
		return SpanContext{}, errTraceparentVersion
	}
	raw := []byte(s)
	if !decodeHex(sc.Trace[:], raw[3:35]) || !decodeHex(sc.Span[:], raw[36:52]) {
		return SpanContext{}, errTraceparentHex
	}
	hi, ok1 := hexNibble(raw[53])
	lo, ok2 := hexNibble(raw[54])
	if !ok1 || !ok2 {
		return SpanContext{}, errTraceparentHex
	}
	sc.Flags = hi<<4 | lo
	if sc.Trace == (TraceID{}) || sc.Span == (SpanID{}) {
		return SpanContext{}, errTraceparentZeroID
	}
	return sc, nil
}

// Span-context arg keys recorded on tagged trace events. The critical
// path analyzer (AnalyzeTraces) and the dashboard's /api/trace join on
// these.
const (
	ArgTraceID  = "trace_id"
	ArgSpanID   = "span_id"
	ArgParentID = "parent_span_id"
)

// tag returns args with the span identity added, copying so the
// caller's map is never mutated. A nil context returns args unchanged
// (and allocates nothing).
func (sc *SpanContext) tag(args map[string]any) map[string]any {
	if sc == nil {
		return args
	}
	out := make(map[string]any, len(args)+3)
	for k, v := range args { // copy into a map: key order cannot leak
		out[k] = v
	}
	out[ArgTraceID] = sc.TraceHex()
	out[ArgSpanID] = sc.SpanHex()
	if p := sc.ParentHex(); p != "" {
		out[ArgParentID] = p
	}
	return out
}

// SpanCtx records a complete span tagged with the span context's trace,
// span and parent IDs (as the trace_id / span_id / parent_span_id
// args). With a nil context it is exactly Span; with a nil tracer it is
// a no-op either way.
func (t *Tracer) SpanCtx(sc *SpanContext, name, cat string, tid int, start time.Time, d time.Duration, args map[string]any) {
	if t == nil {
		return
	}
	t.Span(name, cat, tid, start, d, sc.tag(args))
}

// InstantCtx records a tagged zero-duration event; nil context falls
// back to Instant.
func (t *Tracer) InstantCtx(sc *SpanContext, name, cat string, tid int, at time.Time, args map[string]any) {
	if t == nil {
		return
	}
	t.Instant(name, cat, tid, at, sc.tag(args))
}
