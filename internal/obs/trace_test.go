package obs

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

func timeEpoch() time.Time { return time.Date(2023, 4, 10, 0, 0, 0, 0, time.UTC) }

func buildTrace() *Tracer {
	tr := NewTracer(timeEpoch())
	tr.SetThreadName(TidRoutine, "routine")
	tr.Span("wake-up", "deployment", TidRoutine, timeEpoch().Add(10*time.Minute),
		90*time.Second, map[string]any{"joules": 190.1, "bytes": int64(2_225_000)})
	tr.Instant("cutoff", "battery", TidPower, timeEpoch().Add(20*time.Hour),
		map[string]any{"soc": 0.05})
	tr.Sample("hive power", TidPower, timeEpoch().Add(time.Minute),
		map[string]any{"battery_soc": 0.8})
	return tr
}

func TestTracerWritesValidChromeTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := buildTrace().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			TS    int64          `json:"ts"`
			Dur   int64          `json:"dur"`
			PID   int            `json:"pid"`
			TID   int            `json:"tid"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != 4 {
		t.Fatalf("got %d events, want 4", len(doc.TraceEvents))
	}
	span := doc.TraceEvents[1]
	if span.Phase != "X" || span.Name != "wake-up" {
		t.Fatalf("unexpected span event: %+v", span)
	}
	if want := (10 * time.Minute).Microseconds(); span.TS != want {
		t.Fatalf("span ts = %d, want %d (virtual-time keyed)", span.TS, want)
	}
	if want := (90 * time.Second).Microseconds(); span.Dur != want {
		t.Fatalf("span dur = %d, want %d", span.Dur, want)
	}
	if doc.TraceEvents[2].Phase != "i" || doc.TraceEvents[3].Phase != "C" {
		t.Fatalf("phases wrong: %+v", doc.TraceEvents)
	}
}

func TestTracerDeterministicBytes(t *testing.T) {
	var a, b bytes.Buffer
	if err := buildTrace().WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := buildTrace().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("identical event sequences must serialize to identical bytes")
	}
}

func TestTracerZeroDurationSpanStaysVisible(t *testing.T) {
	tr := NewTracer(timeEpoch())
	tr.Span("blip", "", 0, timeEpoch(), 0, nil)
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"dur":1`)) {
		t.Fatalf("zero-duration span should clamp to 1us: %s", buf.String())
	}
}

func TestNilTracerWritesEmptyTrace(t *testing.T) {
	var tr *Tracer
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("nil tracer output invalid: %s", buf.String())
	}
}
