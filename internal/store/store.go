// Package store is the cloud side's data archive: the paper's edge
// devices transfer every cycle's readings "to a remote data storage
// cloud server", and the beekeeper-facing services query it back out.
//
// The implementation is an append-only, length-prefixed binary log with
// an in-memory index per hive, safe for concurrent use. Records are
// timestamped measurements or detection results; queries select by hive
// and time range. The on-disk format is self-describing enough to be
// re-opened and re-indexed after a restart.
package store

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"time"
)

// Kind tags a record.
type Kind uint8

// Record kinds.
const (
	// KindSensor is a scalar sensor batch.
	KindSensor Kind = iota + 1
	// KindResult is a service verdict (e.g. queen detection).
	KindResult
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindSensor:
		return "sensor"
	case KindResult:
		return "result"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Record is one archived entry.
type Record struct {
	Hive string    `json:"hive"`
	Time time.Time `json:"time"`
	Kind Kind      `json:"kind"`
	// Fields carries the payload (sensor values or verdict details).
	Fields map[string]float64 `json:"fields,omitempty"`
	// Text carries non-numeric payload entries.
	Text map[string]string `json:"text,omitempty"`
}

// Validate checks a record is storable.
func (r Record) Validate() error {
	if r.Hive == "" {
		return errors.New("store: empty hive id")
	}
	if r.Time.IsZero() {
		return errors.New("store: zero timestamp")
	}
	if r.Kind != KindSensor && r.Kind != KindResult {
		return fmt.Errorf("store: invalid kind %d", r.Kind)
	}
	return nil
}

// Store is an append-only archive. Create with Open (file-backed) or
// OpenMemory (tests, ephemeral servers).
type Store struct {
	mu    sync.RWMutex
	w     io.Writer
	f     *os.File // nil for memory stores
	index map[string][]Record
	count int

	// cap bounds the resident index (0 = unbounded). When an append
	// would exceed it, the oldest indexed record is shed first — the
	// bounded-memory ingestion policy a saturated server needs. The
	// on-disk log (file-backed stores) keeps every record; only the
	// queryable in-memory index is capped.
	cap     int
	arrival []string // hive of each indexed record, oldest first
	evicted int
}

// OpenMemory creates an in-memory store.
func OpenMemory() *Store {
	return &Store{w: io.Discard, index: map[string][]Record{}}
}

// Open creates or re-opens a file-backed store at path, re-indexing any
// existing records.
func Open(path string) (*Store, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	s := &Store{f: f, w: f, index: map[string][]Record{}}
	if err := s.reindex(); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

// reindex scans the log from the start and rebuilds the index.
func (s *Store) reindex() error {
	if _, err := s.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	for {
		rec, err := readRecord(s.f)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("store: corrupt log: %w", err)
		}
		s.insert(rec)
	}
}

// Close releases the backing file.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.f.Close()
	s.f = nil
	s.w = nil
	return err
}

// Append stores one record.
func (s *Store) Append(rec Record) error {
	if err := rec.Validate(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.w == nil {
		return errors.New("store: closed")
	}
	if err := writeRecord(s.w, rec); err != nil {
		return err
	}
	s.insert(rec)
	if s.cap > 0 {
		s.arrival = append(s.arrival, rec.Hive)
		for s.count > s.cap {
			s.evictOldest()
		}
	}
	return nil
}

// SetCap bounds the in-memory index to at most n records (n <= 0
// removes the bound). When the cap is exceeded the store sheds records
// oldest-arrival-first, so a saturated server's memory stays bounded
// while the freshest data remains queryable. Records already indexed
// count against the cap immediately, in (time, hive) order.
func (s *Store) SetCap(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n <= 0 {
		s.cap = 0
		s.arrival = nil
		return
	}
	s.cap = n
	// Rebuild the arrival order for records indexed before the cap was
	// armed: oldest timestamp first, ties broken by hive id, so the
	// shed order is deterministic.
	type stamped struct {
		t    time.Time
		hive string
	}
	all := make([]stamped, 0, s.count)
	for hive, rs := range s.index {
		for _, r := range rs {
			all = append(all, stamped{r.Time, hive})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if !all[i].t.Equal(all[j].t) {
			return all[i].t.Before(all[j].t)
		}
		return all[i].hive < all[j].hive
	})
	s.arrival = make([]string, len(all))
	for i, a := range all {
		s.arrival[i] = a.hive
	}
	for s.count > s.cap {
		s.evictOldest()
	}
}

// evictOldest drops the oldest-arrival indexed record. Within that
// record's hive the time-ordered slice sheds its head — the hive's
// oldest record — so queries lose history from the far end first.
// Callers hold s.mu.
func (s *Store) evictOldest() {
	if len(s.arrival) == 0 {
		return
	}
	hive := s.arrival[0]
	s.arrival = s.arrival[1:]
	rs := s.index[hive]
	if len(rs) == 0 {
		return
	}
	copy(rs, rs[1:])
	s.index[hive] = rs[:len(rs)-1]
	if len(rs) == 1 {
		delete(s.index, hive)
	}
	s.count--
	s.evicted++
}

// Evicted returns the total number of records shed by the cap so far.
func (s *Store) Evicted() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.evicted
}

// insert adds to the index keeping each hive's slice time-ordered.
func (s *Store) insert(rec Record) {
	rs := s.index[rec.Hive]
	i := sort.Search(len(rs), func(i int) bool { return rs[i].Time.After(rec.Time) })
	rs = append(rs, Record{})
	copy(rs[i+1:], rs[i:])
	rs[i] = rec
	s.index[rec.Hive] = rs
	s.count++
}

// Len returns the total record count.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.count
}

// Hives returns the known hive ids, sorted.
func (s *Store) Hives() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.index))
	for h := range s.index {
		out = append(out, h)
	}
	sort.Strings(out)
	return out
}

// Query selects records for one hive with from <= t < to, optionally
// filtered by kind (0 selects all kinds).
func (s *Store) Query(hive string, from, to time.Time, kind Kind) ([]Record, error) {
	if hive == "" {
		return nil, errors.New("store: empty hive id")
	}
	if to.Before(from) {
		return nil, errors.New("store: inverted time range")
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	rs := s.index[hive]
	lo := sort.Search(len(rs), func(i int) bool { return !rs[i].Time.Before(from) })
	hi := sort.Search(len(rs), func(i int) bool { return !rs[i].Time.Before(to) })
	var out []Record
	for _, r := range rs[lo:hi] {
		if kind == 0 || r.Kind == kind {
			out = append(out, r)
		}
	}
	return out, nil
}

// Latest returns the most recent record of a kind for a hive.
func (s *Store) Latest(hive string, kind Kind) (Record, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	rs := s.index[hive]
	for i := len(rs) - 1; i >= 0; i-- {
		if kind == 0 || rs[i].Kind == kind {
			return rs[i], true
		}
	}
	return Record{}, false
}

// --- log framing ---

const recordMagic uint16 = 0xBEE5

func writeRecord(w io.Writer, rec Record) error {
	body, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	header := make([]byte, 6)
	binary.BigEndian.PutUint16(header[0:2], recordMagic)
	binary.BigEndian.PutUint32(header[2:6], uint32(len(body)))
	if _, err := w.Write(header); err != nil {
		return err
	}
	_, err = w.Write(body)
	return err
}

func readRecord(r io.Reader) (Record, error) {
	header := make([]byte, 6)
	if _, err := io.ReadFull(r, header); err != nil {
		if err == io.ErrUnexpectedEOF {
			return Record{}, errors.New("store: truncated header")
		}
		return Record{}, err
	}
	if binary.BigEndian.Uint16(header[0:2]) != recordMagic {
		return Record{}, errors.New("store: bad record magic")
	}
	n := binary.BigEndian.Uint32(header[2:6])
	if n > 1<<20 {
		return Record{}, errors.New("store: oversized record")
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return Record{}, errors.New("store: truncated body")
	}
	var rec Record
	if err := json.Unmarshal(body, &rec); err != nil {
		return Record{}, err
	}
	return rec, nil
}
