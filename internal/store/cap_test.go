package store

import (
	"testing"
	"time"
)

// TestCapShedsOldestOnAppend verifies the arrival-ordered shed path:
// once the cap is armed, every over-cap append evicts the
// oldest-arrival record and the eviction counter tracks exactly.
func TestCapShedsOldestOnAppend(t *testing.T) {
	s := OpenMemory()
	s.SetCap(3)
	for i := 0; i < 5; i++ {
		if err := s.Append(sensorRec("h1", time.Duration(i)*time.Minute, 30)); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != 3 {
		t.Fatalf("len = %d, want cap 3", s.Len())
	}
	if s.Evicted() != 2 {
		t.Fatalf("evicted = %d, want 2", s.Evicted())
	}
	// The survivors are the three freshest records: minutes 2, 3, 4.
	recs, err := s.Query("h1", t0.Add(-time.Hour), t0.Add(time.Hour), KindSensor)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 || !recs[0].Time.Equal(t0.Add(2*time.Minute)) {
		t.Fatalf("wrong survivors: %+v", recs)
	}
}

// TestSetCapAppliesToExistingRecords verifies the retroactive path:
// arming a cap below the current size sheds immediately, in
// deterministic (time, hive) order.
func TestSetCapAppliesToExistingRecords(t *testing.T) {
	s := OpenMemory()
	// Interleave hives and times; include a timestamp tie so the hive-id
	// tiebreak is exercised: at +1m both hB and hA hold a record, and hA
	// must shed first.
	for _, r := range []Record{
		sensorRec("hB", 1*time.Minute, 30),
		sensorRec("hA", 3*time.Minute, 30),
		sensorRec("hA", 1*time.Minute, 30),
		sensorRec("hC", 2*time.Minute, 30),
	} {
		if err := s.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	s.SetCap(2)
	if s.Len() != 2 || s.Evicted() != 2 {
		t.Fatalf("len=%d evicted=%d, want 2 and 2", s.Len(), s.Evicted())
	}
	// Shed order: (+1m, hA) then (+1m, hB). Survivors: hC@+2m, hA@+3m.
	if _, ok := s.Latest("hB", KindSensor); ok {
		t.Fatal("hB survived; the (time, hive) shed order broke")
	}
	if rec, ok := s.Latest("hA", KindSensor); !ok || !rec.Time.Equal(t0.Add(3*time.Minute)) {
		t.Fatalf("hA@+3m should survive, got %+v (ok=%v)", rec, ok)
	}
	if _, ok := s.Latest("hC", KindSensor); !ok {
		t.Fatal("hC@+2m should survive")
	}
}

// TestSetCapClearedStopsShedding verifies n <= 0 removes the bound:
// the store grows freely again, and the historical eviction count is
// retained rather than reset.
func TestSetCapClearedStopsShedding(t *testing.T) {
	s := OpenMemory()
	s.SetCap(1)
	for i := 0; i < 3; i++ {
		if err := s.Append(sensorRec("h1", time.Duration(i)*time.Minute, 30)); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != 1 || s.Evicted() != 2 {
		t.Fatalf("len=%d evicted=%d before clearing, want 1 and 2", s.Len(), s.Evicted())
	}
	s.SetCap(0)
	for i := 3; i < 7; i++ {
		if err := s.Append(sensorRec("h1", time.Duration(i)*time.Minute, 30)); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != 5 {
		t.Fatalf("len = %d after clearing cap, want 5", s.Len())
	}
	if s.Evicted() != 2 {
		t.Fatalf("evicted = %d, the historical count must survive clearing", s.Evicted())
	}
}

// TestCapIsPerRecordNotPerHive verifies the cap bounds the whole
// store: a burst from one hive can shed another hive's older records,
// which is exactly the shed-oldest semantics the server relies on.
func TestCapIsPerRecordNotPerHive(t *testing.T) {
	s := OpenMemory()
	s.SetCap(3)
	if err := s.Append(sensorRec("old", 0, 30)); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if err := s.Append(sensorRec("busy", time.Duration(i)*time.Minute, 30)); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := s.Latest("old", KindSensor); ok {
		t.Fatal("quiet hive's record survived a cap-sized burst from another hive")
	}
	if s.Len() != 3 || s.Evicted() != 1 {
		t.Fatalf("len=%d evicted=%d, want 3 and 1", s.Len(), s.Evicted())
	}
}
