package store

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

var t0 = time.Date(2023, 4, 10, 8, 0, 0, 0, time.UTC)

func sensorRec(hive string, offset time.Duration, temp float64) Record {
	return Record{
		Hive:   hive,
		Time:   t0.Add(offset),
		Kind:   KindSensor,
		Fields: map[string]float64{"inside_temp_c": temp},
	}
}

func TestValidate(t *testing.T) {
	good := sensorRec("h1", 0, 35)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Record{
		{Time: t0, Kind: KindSensor},
		{Hive: "h", Kind: KindSensor},
		{Hive: "h", Time: t0, Kind: Kind(9)},
	}
	for i, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("bad record %d accepted", i)
		}
	}
}

func TestAppendAndQuery(t *testing.T) {
	s := OpenMemory()
	for i := 0; i < 10; i++ {
		if err := s.Append(sensorRec("h1", time.Duration(i)*time.Hour, 30+float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != 10 {
		t.Fatalf("len = %d", s.Len())
	}
	got, err := s.Query("h1", t0.Add(2*time.Hour), t0.Add(5*time.Hour), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("query = %d records, want 3", len(got))
	}
	if got[0].Fields["inside_temp_c"] != 32 {
		t.Fatalf("first = %v", got[0].Fields)
	}
}

func TestQueryKindFilter(t *testing.T) {
	s := OpenMemory()
	if err := s.Append(sensorRec("h1", 0, 35)); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(Record{
		Hive: "h1", Time: t0.Add(time.Minute), Kind: KindResult,
		Text: map[string]string{"verdict": "queen present"},
	}); err != nil {
		t.Fatal(err)
	}
	results, err := s.Query("h1", t0, t0.Add(time.Hour), KindResult)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].Text["verdict"] != "queen present" {
		t.Fatalf("results = %+v", results)
	}
}

func TestQueryErrors(t *testing.T) {
	s := OpenMemory()
	if _, err := s.Query("", t0, t0.Add(time.Hour), 0); err == nil {
		t.Error("empty hive accepted")
	}
	if _, err := s.Query("h", t0.Add(time.Hour), t0, 0); err == nil {
		t.Error("inverted range accepted")
	}
}

func TestOutOfOrderAppendsIndexedInOrder(t *testing.T) {
	s := OpenMemory()
	offsets := []time.Duration{3 * time.Hour, time.Hour, 2 * time.Hour}
	for _, off := range offsets {
		if err := s.Append(sensorRec("h1", off, off.Hours())); err != nil {
			t.Fatal(err)
		}
	}
	got, err := s.Query("h1", t0, t0.Add(24*time.Hour), 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(got); i++ {
		if got[i].Time.Before(got[i-1].Time) {
			t.Fatal("query results not time-ordered")
		}
	}
}

func TestLatest(t *testing.T) {
	s := OpenMemory()
	if _, ok := s.Latest("none", 0); ok {
		t.Fatal("latest on empty store")
	}
	for i := 0; i < 5; i++ {
		if err := s.Append(sensorRec("h1", time.Duration(i)*time.Hour, float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	rec, ok := s.Latest("h1", KindSensor)
	if !ok || rec.Fields["inside_temp_c"] != 4 {
		t.Fatalf("latest = %+v, %v", rec, ok)
	}
}

func TestHives(t *testing.T) {
	s := OpenMemory()
	for _, h := range []string{"lyon-2", "cachan-1", "lyon-1"} {
		if err := s.Append(sensorRec(h, 0, 35)); err != nil {
			t.Fatal(err)
		}
	}
	got := s.Hives()
	want := []string{"cachan-1", "lyon-1", "lyon-2"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("hives = %v", got)
		}
	}
}

func TestFilePersistenceRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "archive.log")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := s.Append(sensorRec("h1", time.Duration(i)*time.Minute, float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != 20 {
		t.Fatalf("reopened len = %d, want 20", re.Len())
	}
	// Appends continue after reopening.
	if err := re.Append(sensorRec("h1", 21*time.Minute, 99)); err != nil {
		t.Fatal(err)
	}
	rec, ok := re.Latest("h1", KindSensor)
	if !ok || rec.Fields["inside_temp_c"] != 99 {
		t.Fatalf("latest after reopen = %+v", rec)
	}
}

func TestCorruptLogRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.log")
	if err := os.WriteFile(path, []byte("not a log at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Fatal("corrupt log accepted")
	}
}

func TestTruncatedLogRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trunc.log")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(sensorRec("h1", 0, 35)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Fatal("truncated log accepted")
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.log")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(sensorRec("h1", 0, 1)); err == nil {
		t.Fatal("append after close accepted")
	}
	if err := s.Close(); err != nil {
		t.Fatal("second close errored")
	}
}

func TestConcurrentAppendsAndQueries(t *testing.T) {
	s := OpenMemory()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			hive := []string{"a", "b"}[g%2]
			for i := 0; i < 100; i++ {
				_ = s.Append(sensorRec(hive, time.Duration(g*1000+i)*time.Second, float64(i)))
				if i%10 == 0 {
					_, _ = s.Query(hive, t0, t0.Add(2*time.Hour), 0)
					_, _ = s.Latest(hive, KindSensor)
				}
			}
		}(g)
	}
	wg.Wait()
	if s.Len() != 800 {
		t.Fatalf("len = %d, want 800", s.Len())
	}
}
