package loadgen

import "testing"

// BenchmarkLoadgenSchedule measures deriving the full checked-in
// fleet's open-loop schedule (200 hives x 6 wake-ups plus read
// traffic) — the pure-function core every planner probe and socket
// replay starts from.
func BenchmarkLoadgenSchedule(b *testing.B) {
	spec, err := LoadFile("../../examples/fleet_small.json")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if evs := Schedule(spec); len(evs) == 0 {
			b.Fatal("empty schedule")
		}
	}
}

// BenchmarkSimulateProbe measures one capacity-planner probe over the
// checked-in fleet at the sized deployment.
func BenchmarkSimulateProbe(b *testing.B) {
	spec, err := LoadFile("../../examples/fleet_small.json")
	if err != nil {
		b.Fatal(err)
	}
	evs := Schedule(spec)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Simulate(spec, evs, SimOptions{Servers: 4, Workers: 1})
		if err != nil {
			b.Fatal(err)
		}
		if res.Offered == 0 {
			b.Fatal("empty probe")
		}
	}
}
