package loadgen

import (
	"strings"
	"testing"
	"time"
)

// validSpecJSON is a minimal well-formed spec the rejection tests
// mutate away from.
const validSpecJSON = `{
  "name": "t", "seed": 1, "hives": 4, "wake_period_s": 300,
  "horizon_s": 900, "clip_s": 0.25, "phase_spread": 1, "shards": 1,
  "server": {"max_inflight": 2}
}`

func TestParseSpecAcceptsValid(t *testing.T) {
	s, err := ParseSpec([]byte(validSpecJSON))
	if err != nil {
		t.Fatal(err)
	}
	if s.Hives != 4 || s.WakesPerHive() != 3 {
		t.Fatalf("parsed %+v", s)
	}
}

func TestParseSpecRejects(t *testing.T) {
	cases := map[string]string{
		"unknown field":     `{"name":"t","seed":1,"hives":1,"wake_period_s":300,"horizon_s":900,"clip_s":0.25,"phase_spread":1,"shards":1,"server":{},"bogus":1}`,
		"trailing data":     validSpecJSON + `{"again":true}`,
		"NaN cadence":       strings.Replace(validSpecJSON, `"wake_period_s": 300`, `"wake_period_s": NaN`, 1),
		"negative cadence":  strings.Replace(validSpecJSON, `"wake_period_s": 300`, `"wake_period_s": -300`, 1),
		"zero hives":        strings.Replace(validSpecJSON, `"hives": 4`, `"hives": 0`, 1),
		"giant fleet":       strings.Replace(validSpecJSON, `"hives": 4`, `"hives": 100000000`, 1),
		"tiny clip":         strings.Replace(validSpecJSON, `"clip_s": 0.25`, `"clip_s": 0.01`, 1),
		"spread over 1":     strings.Replace(validSpecJSON, `"phase_spread": 1`, `"phase_spread": 1.5`, 1),
		"zero shards":       strings.Replace(validSpecJSON, `"shards": 1`, `"shards": 0`, 1),
		"negative budget":   strings.Replace(validSpecJSON, `{"max_inflight": 2}`, `{"max_inflight": -1}`, 1),
		"no wake in window": strings.Replace(validSpecJSON, `"horizon_s": 900`, `"horizon_s": 100`, 1),
		"missing name":      strings.Replace(validSpecJSON, `"name": "t", `, ``, 1),
		"bad retry":         strings.Replace(validSpecJSON, `"shards": 1,`, `"shards": 1, "retry": {"max_attempts": 0, "base_s": 1, "max_s": 2, "multiplier": 2, "jitter_frac": 0, "attempt_timeout_s": 1},`, 1),
	}
	for name, in := range cases {
		if _, err := ParseSpec([]byte(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestExampleFleetSpecParses(t *testing.T) {
	s, err := LoadFile("../../examples/fleet_small.json")
	if err != nil {
		t.Fatal(err)
	}
	if s.Hives != 200 || s.Shards != 2 {
		t.Fatalf("examples/fleet_small.json changed shape: %+v", s)
	}
	if s.Faults == nil {
		t.Fatal("examples/fleet_small.json lost its fault plan")
	}
}

func TestScheduleShape(t *testing.T) {
	s, err := ParseSpec([]byte(validSpecJSON))
	if err != nil {
		t.Fatal(err)
	}
	evs := Schedule(s)
	uploads := 0
	for i, ev := range evs {
		if i > 0 && evs[i-1].At > ev.At {
			t.Fatalf("schedule out of order at %d", i)
		}
		if ev.At < 0 || ev.At >= seconds(s.HorizonS) {
			t.Fatalf("event %d outside horizon: %v", i, ev.At)
		}
		if ev.Kind == EventUpload {
			uploads++
		}
	}
	if want := s.Hives * s.WakesPerHive(); uploads != want {
		t.Fatalf("uploads = %d, want %d", uploads, want)
	}
}

func TestScheduleSeedSensitivity(t *testing.T) {
	s, _ := ParseSpec([]byte(validSpecJSON))
	a := Schedule(s)
	s.Seed++
	b := Schedule(s)
	same := len(a) == len(b)
	if same {
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("seed change left the schedule untouched")
	}
}

func TestHiveIDStable(t *testing.T) {
	if got := HiveID(7); got != "hive-000007" {
		t.Fatalf("HiveID(7) = %q", got)
	}
}

func TestCampaignStartFixed(t *testing.T) {
	want := time.Date(2023, 4, 15, 0, 0, 0, 0, time.UTC)
	if !CampaignStart.Equal(want) {
		t.Fatalf("CampaignStart moved to %v; schedules are keyed to it", CampaignStart)
	}
}
