package loadgen

import (
	"testing"

	"beesim/internal/hivenet"
	"beesim/internal/netsim"
	"beesim/internal/slo"
)

// simSpec is a small healthy fleet the simulator tests share.
func simSpec(t *testing.T) LoadSpec {
	t.Helper()
	s, err := ParseSpec([]byte(`{
	  "name": "sim", "seed": 7, "hives": 40, "wake_period_s": 300,
	  "horizon_s": 1800, "clip_s": 0.25, "phase_spread": 1, "shards": 2,
	  "server": {"max_inflight": 2}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSimulateAccountingInvariant(t *testing.T) {
	spec := simSpec(t)
	evs := Schedule(spec)
	for _, scale := range []float64{1, 4} {
		res, err := Simulate(spec, evs, SimOptions{Servers: 2, RateScale: scale})
		if err != nil {
			t.Fatal(err)
		}
		if res.Offered != spec.Hives*spec.WakesPerHive() {
			t.Fatalf("scale %v: offered %d", scale, res.Offered)
		}
		if res.Delivered+res.Lost != res.Offered {
			t.Fatalf("scale %v: delivered %d + lost %d != offered %d",
				scale, res.Delivered, res.Lost, res.Offered)
		}
		snap := res.Registry.Snapshot()
		if c, _ := snap.FindCounter(netsim.MetricUploadEpisodes); int(c) != res.Offered {
			t.Fatalf("scale %v: episode counter %v != offered %d", scale, c, res.Offered)
		}
		if c, _ := snap.FindCounter(netsim.MetricSendDrops); int(c) != res.Lost {
			t.Fatalf("scale %v: drop counter %v != lost %d", scale, c, res.Lost)
		}
		if c, _ := snap.FindCounter(hivenet.MetricUploads); int(c) != res.Delivered {
			t.Fatalf("scale %v: uploads counter %v != delivered %d", scale, c, res.Delivered)
		}
	}
}

func TestSimulateSaturationRejects(t *testing.T) {
	spec := simSpec(t)
	evs := Schedule(spec)
	// One shard, budget 1, 8x load: the inflight budget must refuse
	// work, and delivery must degrade relative to the healthy probe.
	spec.Server.MaxInflight = 1
	hot, err := Simulate(spec, evs, SimOptions{Servers: 1, RateScale: 8})
	if err != nil {
		t.Fatal(err)
	}
	if hot.Rejected == 0 {
		t.Fatal("8x load on a budget-1 shard produced no rejects")
	}
	if hot.Lost == 0 {
		t.Fatal("8x load on a budget-1 shard lost nothing — retry budget cannot absorb that")
	}
	spec.Server.MaxInflight = 8
	cool, err := Simulate(spec, evs, SimOptions{Servers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if cool.DeliveredFrac() <= hot.DeliveredFrac() {
		t.Fatalf("cool %.3f <= hot %.3f delivered", cool.DeliveredFrac(), hot.DeliveredFrac())
	}
	snap := hot.Registry.Snapshot()
	if c, _ := snap.FindCounter(hivenet.MetricAdmissionRejects); int(c) != hot.Rejected {
		t.Fatalf("reject counter %v != %d", c, hot.Rejected)
	}
	if h, ok := snap.FindHistogram(hivenet.MetricQueueDepth); !ok || h.Count == 0 {
		t.Fatal("queue-depth histogram missing or empty")
	}
}

func TestSimulateArchiveShed(t *testing.T) {
	spec := simSpec(t)
	spec.Server.MaxArchiveRecords = 10
	evs := Schedule(spec)
	res, err := Simulate(spec, evs, SimOptions{Servers: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := 2*res.Delivered - 10
	if res.ArchiveShed != want {
		t.Fatalf("archive shed %d, want %d", res.ArchiveShed, want)
	}
}

func TestSimulateEnergyAndEntries(t *testing.T) {
	spec := simSpec(t)
	evs := Schedule(spec)
	res, err := Simulate(spec, evs, SimOptions{Servers: 2, NeedEntries: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.EdgeJ <= 0 || res.ServerJ <= 0 {
		t.Fatalf("energy: edge %v server %v", res.EdgeJ, res.ServerJ)
	}
	// One radio entry per episode, one server entry per delivery.
	if want := res.Offered + res.Delivered; len(res.Entries) != want {
		t.Fatalf("%d entries, want %d", len(res.Entries), want)
	}
	for i := 1; i < len(res.Entries); i++ {
		if res.Entries[i].T.Before(res.Entries[i-1].T) {
			t.Fatalf("entries out of time order at %d", i)
		}
	}
}

func TestPlanFindsMinimalServers(t *testing.T) {
	spec := simSpec(t)
	evs := Schedule(spec)
	sloSpec, err := slo.ParseSpec([]byte(`{
	  "name": "t", "objectives": [
	    {"name": "delivery", "kind": "availability",
	     "total_metric": "netsim_upload_episodes_total",
	     "bad_metric": "netsim_send_drops_total", "min_ratio": 0.95}
	  ]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Plan(spec, evs, sloSpec, PlanOptions{MaxServers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if rep.MinServers < 1 || rep.MinServers > 8 {
		t.Fatalf("min servers %d", rep.MinServers)
	}
	// The sized deployment passes; one server fewer (if any) fails.
	if !rep.Report.Pass() {
		t.Fatal("sized deployment breaches its own SLO")
	}
	if rep.MinServers > 1 {
		below, err := Simulate(spec, evs, SimOptions{Servers: rep.MinServers - 1})
		if err != nil {
			t.Fatal(err)
		}
		in := slo.Input{Snapshot: below.Registry.Snapshot(), Window: seconds(below.HorizonS)}
		r, err := slo.Evaluate(sloSpec, in)
		if err != nil {
			t.Fatal(err)
		}
		if r.Pass() {
			t.Fatalf("%d servers also pass; binary search overshot", rep.MinServers-1)
		}
	}
	if len(rep.Knee) != len(DefaultKneeMultipliers) {
		t.Fatalf("knee has %d points", len(rep.Knee))
	}
}
