// Socket stress tests against live hivenet servers. Wall-clock use
// (leak-drain polling, timeouts) never feeds a byte-compared artifact.
//
//beelint:allow walltime live-server stress tests poll real goroutine and fd counts
package loadgen

import (
	"net"
	"net/http"
	"os"
	"runtime"
	"testing"
	"time"

	"beesim/internal/hivenet"
	"beesim/internal/obs"
)

// stressSpec is the short-mode fleet: 200 hives x 2 wake-ups across 2
// shards, mild link faults, tight admission and archive caps — big
// enough to exercise retry storms and shedding, small enough for -race
// in the tier-1 gate.
func stressSpec(t *testing.T) LoadSpec {
	t.Helper()
	s, err := ParseSpec([]byte(`{
	  "name": "stress", "seed": 11, "hives": 200, "wake_period_s": 300,
	  "horizon_s": 600, "clip_s": 0.2, "phase_spread": 1,
	  "api_reads_per_wake": 0.1, "shards": 2,
	  "server": {"max_inflight": 8, "max_archive_records": 300, "stall_ms": 1},
	  "faults": {"link": {"drop_prob": 0.05}},
	  "retry": {"max_attempts": 4, "base_s": 0.05, "max_s": 0.2,
	            "multiplier": 2, "jitter_frac": 0.2, "attempt_timeout_s": 0.05}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// bootShards starts n live server shards (plus dashboards) sized for
// the spec and returns their addresses.
func bootShards(t *testing.T, spec LoadSpec, n int) (servers []*hivenet.Server, addrs, dashes []string) {
	t.Helper()
	cfg := hivenet.DefaultServerConfig()
	cfg.TrainCorpus = 12
	cfg.ClipSeconds = spec.ClipS
	cfg.Seed = spec.Seed
	cfg.MaxParallel = spec.Hives/n + 1
	cfg.Slots = 2
	cfg.Metrics = obs.NewRegistry()
	cfg.Admission = hivenet.AdmissionConfig{
		MaxSessions:        spec.Server.MaxSessions,
		MaxInflightUploads: spec.Server.MaxInflight,
		MaxArchiveRecords:  spec.Server.MaxArchiveRecords,
		UploadStall:        time.Duration(spec.Server.StallMS * float64(time.Millisecond)),
	}
	for i := 0; i < n; i++ {
		s, err := hivenet.NewServer("127.0.0.1:0", cfg)
		if err != nil {
			t.Fatal(err)
		}
		go func() { _ = s.Serve() }()
		t.Cleanup(func() { _ = s.Close() })
		servers = append(servers, s)
		addrs = append(addrs, s.Addr())
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = ln.Close() })
		go func() { _ = http.Serve(ln, hivenet.NewDashboard(s)) }()
		dashes = append(dashes, "http://"+ln.Addr().String())
	}
	return servers, addrs, dashes
}

// openFDs counts this process's open file descriptors.
func openFDs(t *testing.T) int {
	t.Helper()
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		t.Skip("no /proc/self/fd on this platform")
	}
	return len(ents)
}

// settle polls until fn holds or the deadline passes; used to let
// closed sessions and keep-alive conns drain before leak accounting.
func settle(timeout time.Duration, fn func() bool) bool {
	deadline := time.Now().Add(timeout)
	for !fn() {
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(20 * time.Millisecond)
	}
	return true
}

func TestStressReplayShortMode(t *testing.T) {
	spec := stressSpec(t)
	evs := Schedule(spec)
	servers, addrs, dashes := bootShards(t, spec, spec.Shards)

	goroutinesBefore := runtime.NumGoroutine()
	fdsBefore := openFDs(t)

	res, err := Run(spec, evs, RunOptions{
		Addrs:      addrs,
		Dashboards: dashes,
		SleepScale: 0.02,
		IOTimeout:  20 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}

	if res.FailedSessions != 0 {
		t.Fatalf("%d failed sessions, first: %v", res.FailedSessions, res.FirstErr)
	}
	if res.RefusedSessions != 0 {
		t.Fatalf("%d refused sessions with no session cap armed", res.RefusedSessions)
	}
	if res.Offered != spec.Hives*spec.WakesPerHive() {
		t.Fatalf("offered %d, want %d", res.Offered, spec.Hives*spec.WakesPerHive())
	}
	if res.Delivered+res.Lost+res.Unattempted != res.Offered {
		t.Fatalf("accounting broke: %+v", res)
	}
	if res.Delivered == 0 {
		t.Fatal("nothing delivered")
	}

	// The servers' own books must agree with the client's: rejects are
	// never counted as uploads, so delivered == sum of server uploads.
	serverUploads, serverSheds := 0, 0
	for _, s := range servers {
		st := s.Stats()
		serverUploads += st.Uploads
		serverSheds += st.ArchiveShed
		if cap := spec.Server.MaxArchiveRecords; s.Archive().Len() > cap {
			t.Fatalf("archive grew to %d past cap %d", s.Archive().Len(), cap)
		}
	}
	if serverUploads != res.Delivered {
		t.Fatalf("servers counted %d uploads, clients delivered %d", serverUploads, res.Delivered)
	}
	if serverSheds == 0 {
		t.Fatal("archive cap never shed despite 2 records per delivered wake-up")
	}

	// Wall latency got measured for every delivered upload.
	if h, ok := res.Registry.Snapshot().FindHistogram(MetricUploadWallSeconds); !ok || int(h.Count) != res.Delivered {
		t.Fatalf("wall-latency histogram count != delivered")
	}

	// No goroutine or fd leaks once sessions drain (server handlers
	// exit on client close; dashboards idle).
	if !settle(10*time.Second, func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= goroutinesBefore+5
	}) {
		t.Fatalf("goroutines leaked: before %d, after %d", goroutinesBefore, runtime.NumGoroutine())
	}
	if !settle(10*time.Second, func() bool { return openFDs(t) <= fdsBefore+5 }) {
		t.Fatalf("fds leaked: before %d, after %d", fdsBefore, openFDs(t))
	}
}

func TestRunRejectedByFullSessionCap(t *testing.T) {
	spec := stressSpec(t)
	spec.Hives = 8
	spec.Server.MaxSessions = 4
	spec.Faults = nil
	evs := Schedule(spec)
	_, addrs, _ := bootShards(t, spec, 1)
	res, err := Run(spec, evs, RunOptions{Addrs: addrs, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.RefusedSessions == 0 {
		t.Skip("all 8 sessions fit the cap sequentially; nothing to assert")
	}
	if res.Delivered+res.Lost+res.Unattempted != res.Offered {
		t.Fatalf("accounting broke under session caps: %+v", res)
	}
}
