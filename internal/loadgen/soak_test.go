//go:build soak

// The full soak: the checked-in fleet_small campaign (200 hives, six
// wake-ups, fault plan with an outage window) replayed twice against
// live shards, with leak accounting across both rounds. Run with
// `make soak`; the tier-1 gate runs the short-mode stress instead.
//
//beelint:allow walltime live-server soak measures the real stack
package loadgen

import (
	"runtime"
	"testing"
	"time"
)

func TestSoakFleetSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("soak is never short")
	}
	spec, err := LoadFile("../../examples/fleet_small.json")
	if err != nil {
		t.Fatal(err)
	}
	evs := Schedule(spec)
	servers, addrs, dashes := bootShards(t, spec, spec.Shards)

	goroutinesBefore := runtime.NumGoroutine()
	fdsBefore := openFDs(t)

	var totalDelivered int
	for round := 0; round < 2; round++ {
		res, err := Run(spec, evs, RunOptions{
			Addrs:      addrs,
			Dashboards: dashes,
			SleepScale: 0.01,
			IOTimeout:  60 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.FailedSessions != 0 {
			t.Fatalf("round %d: %d failed sessions, first: %v", round, res.FailedSessions, res.FirstErr)
		}
		if res.Delivered+res.Lost+res.Unattempted != res.Offered {
			t.Fatalf("round %d: accounting broke: %+v", round, res)
		}
		if res.Delivered == 0 {
			t.Fatalf("round %d: nothing delivered", round)
		}
		totalDelivered += res.Delivered
	}

	uploads := 0
	for _, s := range servers {
		uploads += s.Stats().Uploads
		if cap := spec.Server.MaxArchiveRecords; s.Archive().Len() > cap {
			t.Fatalf("archive grew to %d past cap %d", s.Archive().Len(), cap)
		}
	}
	if uploads != totalDelivered {
		t.Fatalf("servers counted %d uploads over both rounds, clients delivered %d", uploads, totalDelivered)
	}

	if !settle(15*time.Second, func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= goroutinesBefore+5
	}) {
		t.Fatalf("goroutines leaked: before %d, after %d", goroutinesBefore, runtime.NumGoroutine())
	}
	if !settle(15*time.Second, func() bool { return openFDs(t) <= fdsBefore+5 }) {
		t.Fatalf("fds leaked: before %d, after %d", fdsBefore, openFDs(t))
	}
}
