// Package loadgen is the fleet-scale load layer for internal/hivenet:
// a deterministic, open-loop traffic generator and a capacity planner.
//
// Three pieces share one strict-parsed LoadSpec:
//
//   - Schedule derives the fleet's open-loop arrival schedule — every
//     hive's wake-ups, upload attempts and dashboard reads — as a pure
//     function of (seed, hive, wake-up) through rng.StreamSeed, so the
//     offered load is byte-reproducible at any worker count.
//
//   - Simulate replays that schedule against a queueing model of N
//     hivenet server shards (inflight admission budget, calibrated
//     service and energy model, fault-plan retry storms) entirely in
//     virtual time. Plan binary-searches the minimal shard count that
//     meets an internal/slo spec and maps the saturation knee.
//
//   - Run replays the same schedule at socket level against real
//     hivenet.Server instances — real TCP, real frames, real admission
//     rejects — for stress and soak testing. Offered bytes stay
//     deterministic; only the measured wall-clock latencies vary.
package loadgen

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"time"

	"beesim/internal/faults"
)

// Spec bounds that keep a parsed spec simulatable: a fuzzer (or a
// typo) must not be able to request a quadrillion events.
const (
	// MaxHives bounds the fleet size.
	MaxHives = 1_000_000
	// MaxEvents bounds hives × wake-ups per schedule.
	MaxEvents = 50_000_000
	// MaxSpecSeconds bounds every duration field (about 30 years).
	MaxSpecSeconds = 1e9
	// MinClipSeconds keeps uploads long enough for the 2048-sample
	// queen-detection FFT frame at 22 050 Hz.
	MinClipSeconds = 0.1
	// MaxReadsPerWake bounds dashboard read amplification.
	MaxReadsPerWake = 100
)

// ServerShape is the admission shape the load is offered to: the
// knobs of hivenet.AdmissionConfig plus the planner's service model.
type ServerShape struct {
	// MaxInflight is the per-shard inflight upload budget
	// (hivenet.AdmissionConfig.MaxInflightUploads). 0 = unlimited.
	MaxInflight int `json:"max_inflight"`
	// MaxSessions caps concurrent sessions per shard. 0 = unlimited.
	MaxSessions int `json:"max_sessions,omitempty"`
	// MaxArchiveRecords caps each shard's resident archive index.
	MaxArchiveRecords int `json:"max_archive_records,omitempty"`
	// ServiceS overrides the planner's per-upload service time; 0 uses
	// the calibrated cloud model (15 s receive + 0.1 s SVM execute).
	ServiceS float64 `json:"service_s,omitempty"`
	// StallMS is the real per-upload handling stall (milliseconds)
	// armed on live servers in run/soak mode, standing in for heavier
	// inference so small fleets can saturate the budget.
	StallMS float64 `json:"stall_ms,omitempty"`
}

// LoadSpec is the versioned description of one fleet workload: who
// wakes when, what they upload, what degrades, and the server shape
// the load is offered to. Parse with ParseSpec (strict: unknown
// fields, NaN and out-of-range values are rejected).
type LoadSpec struct {
	Name string `json:"name"`
	// Seed drives every stochastic choice (phases, jitter, fault
	// draws) through pure rng.StreamSeed derivations.
	Seed uint64 `json:"seed"`
	// Hives is the fleet size.
	Hives int `json:"hives"`
	// WakePeriodS is the upload cadence per hive (the paper's 5-minute
	// wake-up cycle is 300).
	WakePeriodS float64 `json:"wake_period_s"`
	// HorizonS is the campaign length the schedule covers.
	HorizonS float64 `json:"horizon_s"`
	// ClipS is each upload's audio clip length in seconds.
	ClipS float64 `json:"clip_s"`
	// PhaseSpread in [0, 1] spreads hive phases across the wake
	// period: 0 is a synchronized thundering herd, 1 a uniform spread.
	PhaseSpread float64 `json:"phase_spread"`
	// ReadsPerWake is the expected dashboard/API reads generated per
	// wake-up (fractional: 0.1 means one read per ten wake-ups).
	ReadsPerWake float64 `json:"api_reads_per_wake,omitempty"`
	// Shards is the default server shard count offered the load (run
	// mode; the planner searches over shard counts).
	Shards int `json:"shards"`
	// Server is the per-shard admission shape.
	Server ServerShape `json:"server"`
	// Faults optionally degrades the fleet's uplink (drop rates,
	// outage windows) so retry storms ride the schedule; nil is a
	// healthy fleet.
	Faults *faults.Plan `json:"faults,omitempty"`
	// Retry overrides the client retry policy (defaults to the fault
	// plan's policy, or faults.DefaultRetryPolicy).
	Retry *faults.RetryPolicy `json:"retry,omitempty"`
}

// ParseSpec decodes and validates a LoadSpec from strict JSON: unknown
// fields, trailing data, NaN, negative cadences and fleet sizes beyond
// the bounds are all rejected, so a spec that parses is a spec the
// generator can schedule.
func ParseSpec(data []byte) (LoadSpec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s LoadSpec
	if err := dec.Decode(&s); err != nil {
		return LoadSpec{}, fmt.Errorf("loadgen: parse spec: %w", err)
	}
	if dec.More() {
		return LoadSpec{}, fmt.Errorf("loadgen: parse spec: trailing data after JSON object")
	}
	if err := s.Validate(); err != nil {
		return LoadSpec{}, err
	}
	return s, nil
}

// LoadFile reads and parses a spec file (the -spec flag).
func LoadFile(path string) (LoadSpec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return LoadSpec{}, fmt.Errorf("loadgen: %w", err)
	}
	return ParseSpec(data)
}

// checkFinite rejects NaN and infinities.
func checkFinite(field string, v float64) error {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return fmt.Errorf("loadgen: %s is not finite", field)
	}
	return nil
}

// Validate checks the spec's shape and bounds.
func (s LoadSpec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("loadgen: spec needs a name")
	}
	if s.Hives < 1 || s.Hives > MaxHives {
		return fmt.Errorf("loadgen: hives %d outside [1, %d]", s.Hives, MaxHives)
	}
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"wake_period_s", s.WakePeriodS},
		{"horizon_s", s.HorizonS},
		{"clip_s", s.ClipS},
		{"phase_spread", s.PhaseSpread},
		{"api_reads_per_wake", s.ReadsPerWake},
		{"server.service_s", s.Server.ServiceS},
		{"server.stall_ms", s.Server.StallMS},
	} {
		if err := checkFinite(f.name, f.v); err != nil {
			return err
		}
	}
	if s.WakePeriodS <= 0 || s.WakePeriodS > MaxSpecSeconds {
		return fmt.Errorf("loadgen: wake_period_s %g outside (0, %g]", s.WakePeriodS, float64(MaxSpecSeconds))
	}
	if s.HorizonS <= 0 || s.HorizonS > MaxSpecSeconds {
		return fmt.Errorf("loadgen: horizon_s %g outside (0, %g]", s.HorizonS, float64(MaxSpecSeconds))
	}
	if s.ClipS < MinClipSeconds || s.ClipS > MaxSpecSeconds {
		return fmt.Errorf("loadgen: clip_s %g outside [%g, %g]", s.ClipS, MinClipSeconds, float64(MaxSpecSeconds))
	}
	if !(s.PhaseSpread >= 0 && s.PhaseSpread <= 1) {
		return fmt.Errorf("loadgen: phase_spread %g outside [0, 1]", s.PhaseSpread)
	}
	if s.ReadsPerWake < 0 || s.ReadsPerWake > MaxReadsPerWake {
		return fmt.Errorf("loadgen: api_reads_per_wake %g outside [0, %d]", s.ReadsPerWake, MaxReadsPerWake)
	}
	if s.Shards < 1 {
		return fmt.Errorf("loadgen: shards %d must be >= 1", s.Shards)
	}
	if s.Server.MaxInflight < 0 || s.Server.MaxSessions < 0 || s.Server.MaxArchiveRecords < 0 {
		return fmt.Errorf("loadgen: negative server bound")
	}
	if s.Server.ServiceS < 0 || s.Server.ServiceS > MaxSpecSeconds {
		return fmt.Errorf("loadgen: server.service_s %g outside [0, %g]", s.Server.ServiceS, float64(MaxSpecSeconds))
	}
	if s.Server.StallMS < 0 || s.Server.StallMS > 1e6 {
		return fmt.Errorf("loadgen: server.stall_ms %g outside [0, 1e6]", s.Server.StallMS)
	}
	wakes := s.WakesPerHive()
	if wakes == 0 {
		return fmt.Errorf("loadgen: horizon_s %g fits no wake-up at period %g", s.HorizonS, s.WakePeriodS)
	}
	if ev := float64(s.Hives) * float64(wakes) * (1 + s.ReadsPerWake); ev > MaxEvents {
		return fmt.Errorf("loadgen: %g scheduled events exceed the %d cap", ev, MaxEvents)
	}
	if s.Faults != nil {
		if err := s.Faults.Validate(); err != nil {
			return err
		}
	}
	if s.Retry != nil {
		if err := s.Retry.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// WakesPerHive returns how many wake-ups the horizon fits per hive.
func (s LoadSpec) WakesPerHive() int {
	return int(math.Floor(s.HorizonS / s.WakePeriodS))
}

// RetryPolicy returns the effective client retry policy: the explicit
// override, else the fault plan's, else the default.
func (s LoadSpec) RetryPolicy() faults.RetryPolicy {
	if s.Retry != nil {
		return *s.Retry
	}
	if s.Faults != nil {
		return s.Faults.RetryOrDefault()
	}
	return faults.DefaultRetryPolicy()
}

// Injector arms the spec's fault plan at the campaign start (nil when
// the spec has no faults — the nil injector is a healthy fleet).
func (s LoadSpec) Injector(start time.Time) (*faults.Injector, error) {
	if s.Faults == nil {
		return nil, nil
	}
	return faults.NewInjector(*s.Faults, start)
}

// HiveID names hive i on the wire; zero-padded so sorted output is
// stable at any fleet size the bounds allow.
func HiveID(i int) string { return fmt.Sprintf("hive-%06d", i) }

// CampaignStart anchors every virtual timestamp the generator emits.
// A fixed instant (not wall clock) keeps schedules, frames and reports
// byte-identical across runs.
var CampaignStart = time.Date(2023, 4, 15, 0, 0, 0, 0, time.UTC)
