package loadgen

import (
	"fmt"
	"io"
	"sort"
	"time"

	"beesim/internal/parallel"
	"beesim/internal/rng"
)

// EventKind tags a scheduled arrival.
type EventKind uint8

// Scheduled arrival kinds.
const (
	// EventUpload is one wake-up's sensor report + audio upload.
	EventUpload EventKind = iota + 1
	// EventRead is one dashboard/API read.
	EventRead
)

// String names the kind (schedule CSV column).
func (k EventKind) String() string {
	switch k {
	case EventUpload:
		return "upload"
	case EventRead:
		return "read"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Event is one scheduled arrival: hive h's wake-up w offers work At
// after the campaign start. The schedule is open-loop — events fire at
// their offset regardless of how the servers are coping, which is what
// makes saturation measurable.
type Event struct {
	// At is the offset from CampaignStart.
	At time.Duration
	// Hive indexes the fleet [0, Hives).
	Hive int
	// Wake is the hive's wake-up ordinal this event belongs to.
	Wake int
	// Kind is upload or read.
	Kind EventKind
}

// Stream salts for schedule draws; distinct from any salt used by
// internal/faults so fault draws and schedule draws never correlate.
const (
	saltSchedule = 0x5c4ed01e0001
	saltPhase    = 1
	saltReads    = 2
)

// u01 maps a derived stream seed to a uniform in [0, 1) using the top
// 53 bits, same construction as rng.Source.Float64.
func u01(z uint64) float64 { return float64(z>>11) / (1 << 53) }

// hiveEvents derives hive h's complete event list, in time order. Pure
// function of (spec, h): no shared state, so any partition of hives
// across workers reproduces the same events.
func hiveEvents(spec LoadSpec, h int) []Event {
	base := rng.StreamSeed(spec.Seed, saltSchedule)
	hseed := rng.StreamSeed(base, uint64(h))
	period := spec.WakePeriodS
	phase := spec.PhaseSpread * period * u01(rng.StreamSeed(hseed, saltPhase))
	wakes := spec.WakesPerHive()
	out := make([]Event, 0, wakes)
	whole := int(spec.ReadsPerWake)
	frac := spec.ReadsPerWake - float64(whole)
	for w := 0; w < wakes; w++ {
		at := phase + float64(w)*period
		if at >= spec.HorizonS {
			break
		}
		out = append(out, Event{At: seconds(at), Hive: h, Wake: w, Kind: EventUpload})
		// Dashboard reads ride each wake-up: `whole` guaranteed reads
		// plus a Bernoulli(frac) extra, each spread uniformly across the
		// rest of the period — beekeepers refresh dashboards after data
		// lands, not in lockstep with it.
		wseed := rng.StreamSeed(hseed, saltReads+uint64(w)<<8)
		reads := whole
		if frac > 0 && u01(rng.StreamSeed(wseed, 1)) < frac {
			reads++
		}
		for r := 0; r < reads; r++ {
			off := period * u01(rng.StreamSeed(wseed, 2+uint64(r)))
			rat := at + off
			if rat >= spec.HorizonS {
				continue
			}
			out = append(out, Event{At: seconds(rat), Hive: h, Wake: w, Kind: EventRead})
		}
	}
	sortEvents(out)
	return out
}

// seconds converts a float offset to a Duration. Float64 → int64
// truncation is deterministic across platforms.
func seconds(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}

// sortEvents orders events by (At, Hive, Wake, Kind) — a total order,
// so ties between hives resolve identically everywhere.
func sortEvents(evs []Event) {
	sort.Slice(evs, func(i, j int) bool {
		a, b := evs[i], evs[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.Hive != b.Hive {
			return a.Hive < b.Hive
		}
		if a.Wake != b.Wake {
			return a.Wake < b.Wake
		}
		return a.Kind < b.Kind
	})
}

// Schedule derives the whole fleet's arrival schedule serially.
func Schedule(spec LoadSpec) []Event {
	evs, _ := ScheduleParallel(spec, 1) // serial path cannot fail
	return evs
}

// ScheduleParallel derives the fleet schedule with the given worker
// count (0 = GOMAXPROCS-bounded). Per-hive derivation is pure and the
// merge is index-ordered + totally sorted, so the result is
// byte-identical to Schedule at any concurrency.
func ScheduleParallel(spec LoadSpec, workers int) ([]Event, error) {
	perHive, err := parallel.Map(workers, spec.Hives, func(h int) ([]Event, error) {
		return hiveEvents(spec, h), nil
	})
	if err != nil {
		return nil, err
	}
	n := 0
	for _, evs := range perHive {
		n += len(evs)
	}
	all := make([]Event, 0, n)
	for _, evs := range perHive {
		all = append(all, evs...)
	}
	sortEvents(all)
	return all, nil
}

// ByHive regroups a sorted schedule into per-hive slices (index =
// hive), each in time order — the shape the socket runner replays.
func ByHive(spec LoadSpec, evs []Event) [][]Event {
	out := make([][]Event, spec.Hives)
	for _, ev := range evs {
		out[ev.Hive] = append(out[ev.Hive], ev)
	}
	return out
}

// WriteCSV emits the schedule as CSV (at_s, hive, wake, kind), the
// byte-comparable artifact the determinism suite diffs across worker
// counts.
func WriteCSV(w io.Writer, evs []Event) error {
	if _, err := fmt.Fprintln(w, "at_s,hive,wake,kind"); err != nil {
		return err
	}
	for _, ev := range evs {
		if _, err := fmt.Fprintf(w, "%.9f,%d,%d,%s\n",
			ev.At.Seconds(), ev.Hive, ev.Wake, ev.Kind); err != nil {
			return err
		}
	}
	return nil
}
