package loadgen

import (
	"math"
	"testing"
)

// FuzzLoadSpecJSON holds the spec parser to its contract on arbitrary
// bytes: never panic, and never accept a spec that violates the
// documented bounds — every field finite, every count in range, every
// accepted spec schedulable.
func FuzzLoadSpecJSON(f *testing.F) {
	f.Add([]byte(validSpecJSON))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"name":"x","hives":1e9}`))
	f.Add([]byte(`{"name":"x","seed":1,"hives":2,"wake_period_s":1e18,"horizon_s":1e18,"clip_s":0.25,"phase_spread":0,"shards":1,"server":{}}`))
	f.Add([]byte(`{"name":"n","seed":3,"hives":3,"wake_period_s":60,"horizon_s":120,"clip_s":0.25,"phase_spread":0.5,"api_reads_per_wake":1.5,"shards":2,"server":{"max_inflight":1},"faults":{"link":{"drop_prob":0.5}}}`))
	f.Add([]byte(`{"name":"t","seed":1,"hives":4,"wake_period_s":300,"horizon_s":900,"clip_s":0.25,"phase_spread":1,"shards":1,"server":{},"retry":{"max_attempts":2,"base_s":1,"max_s":2,"multiplier":2,"jitter_frac":0.1,"attempt_timeout_s":1}}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := ParseSpec(data)
		if err != nil {
			return
		}
		// Accepted specs must be inside every documented bound...
		for _, v := range []float64{
			spec.WakePeriodS, spec.HorizonS, spec.ClipS, spec.PhaseSpread,
			spec.ReadsPerWake, spec.Server.ServiceS, spec.Server.StallMS,
		} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("accepted non-finite field: %+v", spec)
			}
		}
		if spec.Hives < 1 || spec.Hives > MaxHives {
			t.Fatalf("accepted hives %d", spec.Hives)
		}
		if spec.WakePeriodS <= 0 || spec.HorizonS <= 0 || spec.ClipS < MinClipSeconds {
			t.Fatalf("accepted degenerate cadence: %+v", spec)
		}
		if spec.Server.MaxInflight < 0 || spec.Server.MaxSessions < 0 || spec.Server.MaxArchiveRecords < 0 {
			t.Fatalf("accepted negative server bound: %+v", spec)
		}
		wakes := spec.WakesPerHive()
		if wakes < 1 {
			t.Fatalf("accepted unschedulable spec: %+v", spec)
		}
		if ev := float64(spec.Hives) * float64(wakes) * (1 + spec.ReadsPerWake); ev > MaxEvents {
			t.Fatalf("accepted %g-event spec", ev)
		}
		// ...and schedulable: derive one hive's events without panic,
		// in order, inside the horizon.
		evs := hiveEvents(spec, 0)
		if len(evs) == 0 {
			t.Fatalf("accepted spec scheduled nothing: %+v", spec)
		}
		for i, ev := range evs {
			if ev.At < 0 || ev.At >= seconds(spec.HorizonS) {
				t.Fatalf("event outside horizon: %v", ev)
			}
			if i > 0 && evs[i-1].At > ev.At {
				t.Fatalf("events out of order at %d", i)
			}
		}
	})
}
