// Socket-level fleet replay: real TCP, real frames, real admission
// rejects against live hivenet servers. The offered traffic (who
// connects, what bytes, which virtual timestamps) is the same
// deterministic schedule the planner simulates; only the measured
// wall-clock latencies vary run to run, and nothing here ever feeds a
// byte-compared artifact.
//
//beelint:allow walltime live socket replay measures the real stack; deadlines, latencies and backoff sleeps are wall-clock by design
package loadgen

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"time"

	"beesim/internal/audio"
	"beesim/internal/faults"
	"beesim/internal/obs"
	"beesim/internal/parallel"
	"beesim/internal/proto"
	"beesim/internal/rng"
)

// MetricUploadWallSeconds distributes the wall-clock round-trip each
// delivered upload took against the live server (send through Result).
const MetricUploadWallSeconds = "loadgen_upload_wall_seconds"

// saltClip derives each hive's audio clip noise.
const saltClip = 0x5c4ed01e0002

// RunOptions shape a socket replay.
type RunOptions struct {
	// Addrs are the live server endpoints, one per shard; hive h
	// talks to Addrs[h % len(Addrs)]. Required.
	Addrs []string
	// Dashboards are optional HTTP base URLs (parallel to Addrs, or a
	// single one for all shards) the schedule's read events hit with
	// GET /api/stats.
	Dashboards []string
	// Workers bounds concurrent hive sessions (0 = GOMAXPROCS).
	Workers int
	// SleepScale scales the retry policy's real backoff sleeps: 1
	// replays backoff in real time, 0 (default) retries immediately —
	// the virtual timestamps in the frames carry the canonical delay
	// either way.
	SleepScale float64
	// IOTimeout is the per-frame deadline guarding the soak against a
	// stuck server (default 30s).
	IOTimeout time.Duration
	// DialTimeout bounds connection setup (default 10s).
	DialTimeout time.Duration
}

// RunResult aggregates a replay. The accounting invariant Offered ==
// Delivered + Lost + Unattempted holds by construction: every
// scheduled upload either produced a Result frame, exhausted its
// retry budget, or never got a healthy session to run in.
type RunResult struct {
	Offered     int
	Delivered   int
	Lost        int
	Unattempted int
	// Rejected counts typed over-capacity rejects (attempt
	// granularity); RefusedSessions counts server_full Hello rejects.
	Rejected        int
	DroppedLink     int
	RefusedSessions int
	// FailedSessions counts hives whose session died on a protocol or
	// transport error; FirstErr keeps the first such error.
	FailedSessions int
	FirstErr       error
	Reads          int
	ReadErrors     int
	// Registry carries MetricUploadWallSeconds.
	Registry *obs.Registry
}

// hiveOutcome is one session's tallies, folded in hive order.
type hiveOutcome struct {
	offered, delivered, lost, unattempted int
	rejected, droppedLink                 int
	refused, failed                       bool
	reads, readErrors                     int
	err                                   error
}

// clipPCM builds hive h's deterministic audio payload: band-limited
// noise is enough to exercise the real decode + FFT + SVM path.
func clipPCM(spec LoadSpec, h int) ([]byte, int) {
	n := int(spec.ClipS * audio.SampleRate)
	src := rng.Stream(spec.Seed, saltClip+uint64(h))
	samples := make([]float64, n)
	for i := range samples {
		samples[i] = 0.2 * (2*src.Float64() - 1)
	}
	return proto.PCMEncode(samples), n
}

// sensorReport synthesizes wake w's scalar readings for hive h —
// plausible in-range values, deterministic per (hive, wake).
func sensorReport(spec LoadSpec, h, w int, at time.Time) proto.SensorReport {
	z := rng.StreamSeed(rng.StreamSeed(spec.Seed, saltClip), uint64(h)<<20|uint64(w))
	return proto.SensorReport{
		HiveID:       HiveID(h),
		Time:         at,
		InsideTempC:  34 + 2*u01(z),
		InsideRH:     55 + 10*u01(z>>7),
		OutsideTempC: 15 + 10*u01(z>>13),
		BatterySoC:   0.5 + 0.5*u01(z>>23),
	}
}

// Run replays the spec's schedule against live servers. It returns an
// error only for unusable options; per-hive transport failures are
// tallied in the result instead, so a soak can assert on them.
func Run(spec LoadSpec, evs []Event, opt RunOptions) (RunResult, error) {
	if len(opt.Addrs) == 0 {
		return RunResult{}, fmt.Errorf("loadgen: run needs at least one server address")
	}
	if opt.IOTimeout <= 0 {
		opt.IOTimeout = 30 * time.Second
	}
	if opt.DialTimeout <= 0 {
		opt.DialTimeout = 10 * time.Second
	}
	inj, err := spec.Injector(CampaignStart)
	if err != nil {
		return RunResult{}, err
	}
	policy := spec.RetryPolicy()
	byHive := ByHive(spec, evs)
	reg := obs.NewRegistry()
	hWall := reg.Histogram(MetricUploadWallSeconds)
	// Dedicated transport so the replay's keep-alive dashboard conns
	// are torn down when it returns — a soak must not leak fds.
	tr := &http.Transport{}
	defer tr.CloseIdleConnections()
	httpc := &http.Client{Timeout: opt.IOTimeout, Transport: tr}

	outs, err := parallel.Map(opt.Workers, spec.Hives, func(h int) (hiveOutcome, error) {
		return runHive(spec, byHive[h], h, opt, inj, policy, hWall, httpc), nil
	})
	if err != nil {
		return RunResult{}, err
	}

	res := RunResult{Registry: reg}
	for _, o := range outs {
		res.Offered += o.offered
		res.Delivered += o.delivered
		res.Lost += o.lost
		res.Unattempted += o.unattempted
		res.Rejected += o.rejected
		res.DroppedLink += o.droppedLink
		res.Reads += o.reads
		res.ReadErrors += o.readErrors
		if o.refused {
			res.RefusedSessions++
		}
		if o.failed {
			res.FailedSessions++
			if res.FirstErr == nil {
				res.FirstErr = o.err
			}
		}
	}
	return res, nil
}

// runHive drives one hive's whole session: dial, hello, then the
// hive's schedule in order. A transport or protocol failure abandons
// the session; the remaining uploads count as unattempted.
func runHive(spec LoadSpec, evs []Event, h int, opt RunOptions,
	inj *faults.Injector, policy faults.RetryPolicy,
	hWall *obs.Histogram, httpc *http.Client) hiveOutcome {
	var out hiveOutcome
	for _, ev := range evs {
		if ev.Kind == EventUpload {
			out.offered++
		}
	}
	if out.offered == 0 && len(evs) == 0 {
		return out
	}

	fail := func(err error) hiveOutcome {
		out.failed = true
		out.err = fmt.Errorf("loadgen: %s: %w", HiveID(h), err)
		out.unattempted = out.offered - out.delivered - out.lost
		return out
	}

	addr := opt.Addrs[h%len(opt.Addrs)]
	conn, err := net.DialTimeout("tcp", addr, opt.DialTimeout)
	if err != nil {
		return fail(err)
	}
	defer conn.Close()
	deadline := func() { _ = conn.SetDeadline(time.Now().Add(opt.IOTimeout)) }

	deadline()
	if err := proto.Encode(conn, proto.TypeHello, proto.Hello{
		HiveID:            HiveID(h),
		WakePeriodSeconds: spec.WakePeriodS,
		Version:           1,
	}, nil); err != nil {
		return fail(err)
	}
	f, err := proto.Decode(conn)
	if err != nil {
		return fail(err)
	}
	switch f.Type {
	case proto.TypeWelcome:
	case proto.TypeReject:
		out.refused = true
		out.unattempted = out.offered
		return out
	default:
		return fail(fmt.Errorf("hello answered with %v", f.Type))
	}

	pcm, samples := clipPCM(spec, h)
	dash := ""
	if len(opt.Dashboards) == 1 {
		dash = opt.Dashboards[0]
	} else if len(opt.Dashboards) > 0 {
		dash = opt.Dashboards[h%len(opt.Dashboards)]
	}

	for _, ev := range evs {
		vt := CampaignStart.Add(ev.At)
		switch ev.Kind {
		case EventRead:
			if dash == "" {
				continue
			}
			resp, err := httpc.Get(dash + "/api/stats")
			if err != nil {
				out.readErrors++
				continue
			}
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				out.readErrors++
			} else {
				out.reads++
			}

		case EventUpload:
			deadline()
			if err := proto.Encode(conn, proto.TypeSensorReport,
				sensorReport(spec, h, ev.Wake, vt), nil); err != nil {
				return fail(err)
			}
			ack, err := proto.Decode(conn)
			if err != nil {
				return fail(err)
			}
			if ack.Type != proto.TypeAck {
				return fail(fmt.Errorf("sensor report answered with %v", ack.Type))
			}
			delivered, err := uploadWithRetry(spec, conn, h, vt, pcm, samples,
				opt, inj, policy, hWall, &out)
			if err != nil {
				return fail(err)
			}
			if delivered {
				out.delivered++
			} else {
				out.lost++
			}
		}
	}

	deadline()
	if err := proto.Encode(conn, proto.TypeBye, nil, nil); err == nil {
		_, _ = proto.Decode(conn) // best-effort ack; the session is done
	}
	return out
}

// uploadWithRetry runs one upload episode: link-fault draws and typed
// over-capacity rejects consume retry attempts with (optionally
// scaled) backoff sleeps, exactly the degraded-client behavior of
// faults.RetryPolicy. The virtual timestamp advances with each retry
// so the server-side e2e latency histogram sees the storm.
func uploadWithRetry(spec LoadSpec, conn net.Conn, h int, wake time.Time,
	pcm []byte, samples int, opt RunOptions, inj *faults.Injector,
	policy faults.RetryPolicy, hWall *obs.Histogram, out *hiveOutcome) (bool, error) {
	vt := wake
	for attempt := 1; ; attempt++ {
		backoff := func(extra time.Duration) bool {
			if attempt >= policy.MaxAttempts {
				return false
			}
			d := extra + policy.Backoff(attempt, inj.JitterU(vt, attempt))
			vt = vt.Add(d)
			if opt.SleepScale > 0 {
				time.Sleep(time.Duration(float64(d) * opt.SleepScale))
			}
			return true
		}
		// Link faults eat the attempt before any bytes are sent.
		if inj.DropUpload(vt, attempt) {
			out.droppedLink++
			if !backoff(policy.AttemptTimeout) {
				return false, nil
			}
			continue
		}
		_ = conn.SetDeadline(time.Now().Add(opt.IOTimeout))
		sent := time.Now()
		if err := proto.Encode(conn, proto.TypeAudioUpload, proto.AudioUpload{
			HiveID:     HiveID(h),
			Time:       vt,
			SampleRate: audio.SampleRate,
			Samples:    samples,
		}, pcm); err != nil {
			return false, err
		}
		f, err := proto.Decode(conn)
		if err != nil {
			return false, err
		}
		switch f.Type {
		case proto.TypeResult:
			hWall.Observe(time.Since(sent).Seconds())
			return true, nil
		case proto.TypeReject:
			var rej proto.RejectBody
			if err := f.Unmarshal(proto.TypeReject, &rej); err != nil {
				return false, err
			}
			out.rejected++
			extra := time.Duration(0)
			if rej.RetryAfterS > 0 {
				extra = time.Duration(rej.RetryAfterS * float64(time.Second))
			}
			if !backoff(extra) {
				return false, nil
			}
		default:
			return false, fmt.Errorf("upload answered with %v", f.Type)
		}
	}
}
