package loadgen

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"

	"beesim/internal/netsim"
	"beesim/internal/parallel"
	"beesim/internal/slo"
)

// DefaultMaxServers bounds the capacity search when the caller does
// not override it.
const DefaultMaxServers = 64

// DefaultKneeMultipliers is the offered-rate sweep used to map the
// saturation knee around the sized deployment.
var DefaultKneeMultipliers = []float64{0.5, 0.75, 1, 1.25, 1.5, 2, 3, 4}

// PlanOptions shape a capacity plan.
type PlanOptions struct {
	// MaxServers is the search ceiling (default DefaultMaxServers).
	MaxServers int
	// Workers bounds concurrency; any value is byte-identical.
	Workers int
	// Multipliers overrides the knee sweep (default
	// DefaultKneeMultipliers).
	Multipliers []float64
}

// Probe is one capacity probe: did `Servers` shards meet the SLO?
type Probe struct {
	Servers  int
	Pass     bool
	Breaches int
	// DeliveredFrac and P99 summarize the probe for the report.
	DeliveredFrac float64
	P99           float64
}

// KneePoint is one offered-rate sweep sample at the sized deployment.
type KneePoint struct {
	Mult          float64
	OfferedPerS   float64
	Offered       int
	Delivered     int
	Rejected      int
	Lost          int
	DeliveredFrac float64
	P50           float64
	P99           float64
	EdgeWh        float64
	ServerWh      float64
	JPerDelivered float64
}

// PlanReport is a full capacity plan: the binary-search trace, the
// minimal satisfying server count, and the saturation knee around it.
type PlanReport struct {
	SpecName string
	SLOName  string
	Seed     uint64
	Hives    int
	Offered  int
	// MinServers is the smallest shard count meeting the SLO, or 0
	// when even MaxServers breaches it.
	MinServers int
	MaxServers int
	Probes     []Probe
	// Report is the SLO evaluation at MinServers (or MaxServers when
	// unsatisfiable).
	Report slo.Report
	Knee   []KneePoint
}

// needsEntries reports whether any objective needs ledger entries.
func needsEntries(spec slo.Spec) bool {
	for _, o := range spec.Objectives {
		if o.Kind == "energy" {
			return true
		}
	}
	return false
}

// probeOnce sizes one candidate: simulate, evaluate, summarize.
func probeOnce(spec LoadSpec, evs []Event, sloSpec slo.Spec, servers, workers int, scale float64) (SimResult, slo.Report, error) {
	sim, err := Simulate(spec, evs, SimOptions{
		Servers:     servers,
		Workers:     workers,
		RateScale:   scale,
		NeedEntries: needsEntries(sloSpec),
	})
	if err != nil {
		return SimResult{}, slo.Report{}, err
	}
	rep, err := slo.Evaluate(sloSpec, slo.Input{
		Snapshot: sim.Registry.Snapshot(),
		Entries:  sim.Entries,
		Window:   seconds(sim.HorizonS),
	})
	if err != nil {
		return SimResult{}, slo.Report{}, err
	}
	return sim, rep, nil
}

// p of the probe's upload-latency histogram (0 with no samples).
func latQ(sim SimResult, q float64) float64 {
	h, ok := sim.Registry.Snapshot().FindHistogram(netsim.MetricUploadSeconds)
	if !ok {
		return 0
	}
	v, ok := h.Quantile(q)
	if !ok {
		return 0
	}
	return v
}

// Plan sizes the fleet's deployment: binary-search the minimal server
// (shard) count whose simulated replay of the spec's schedule meets
// the SLO, then sweep offered-rate multipliers at that size to map
// the saturation knee. Monotonicity assumption: more shards never
// hurt — true for this admission model, where shards are independent
// and adding one only reduces per-shard load.
func Plan(spec LoadSpec, evs []Event, sloSpec slo.Spec, opt PlanOptions) (PlanReport, error) {
	maxServers := opt.MaxServers
	if maxServers <= 0 {
		maxServers = DefaultMaxServers
	}
	mults := opt.Multipliers
	if len(mults) == 0 {
		mults = DefaultKneeMultipliers
	}
	out := PlanReport{
		SpecName:   spec.Name,
		SLOName:    sloSpec.Name,
		Seed:       spec.Seed,
		Hives:      spec.Hives,
		MaxServers: maxServers,
	}

	probe := func(servers int) (bool, error) {
		sim, rep, err := probeOnce(spec, evs, sloSpec, servers, opt.Workers, 1)
		if err != nil {
			return false, err
		}
		out.Offered = sim.Offered
		out.Probes = append(out.Probes, Probe{
			Servers:       servers,
			Pass:          rep.Pass(),
			Breaches:      rep.Breaches(),
			DeliveredFrac: sim.DeliveredFrac(),
			P99:           latQ(sim, 0.99),
		})
		return rep.Pass(), nil
	}

	// Feasibility first: if the ceiling itself breaches, report that
	// and skip the search.
	ok, err := probe(maxServers)
	if err != nil {
		return PlanReport{}, err
	}
	sized := maxServers
	if ok {
		lo, hi := 1, maxServers
		for lo < hi {
			mid := lo + (hi-lo)/2
			pass, err := probe(mid)
			if err != nil {
				return PlanReport{}, err
			}
			if pass {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		out.MinServers = lo
		sized = lo
	}

	// Final evaluation at the sized deployment for the report body.
	_, rep, err := probeOnce(spec, evs, sloSpec, sized, opt.Workers, 1)
	if err != nil {
		return PlanReport{}, err
	}
	out.Report = rep

	// Knee sweep: each multiplier is an independent probe, so they
	// fan out; per-probe shard simulation stays serial to avoid
	// nested pools.
	knee, err := parallel.Map(opt.Workers, len(mults), func(i int) (KneePoint, error) {
		m := mults[i]
		sim, _, err := probeOnce(spec, evs, sloSpec, sized, 1, m)
		if err != nil {
			return KneePoint{}, err
		}
		kp := KneePoint{
			Mult:          m,
			Offered:       sim.Offered,
			Delivered:     sim.Delivered,
			Rejected:      sim.Rejected,
			Lost:          sim.Lost,
			DeliveredFrac: sim.DeliveredFrac(),
			P50:           latQ(sim, 0.5),
			P99:           latQ(sim, 0.99),
			EdgeWh:        sim.EdgeJ / 3600,
			ServerWh:      sim.ServerJ / 3600,
		}
		if sim.HorizonS > 0 {
			kp.OfferedPerS = float64(sim.Offered) / sim.HorizonS
		}
		if sim.Delivered > 0 {
			kp.JPerDelivered = (sim.EdgeJ + sim.ServerJ) / float64(sim.Delivered)
		}
		return kp, nil
	})
	if err != nil {
		return PlanReport{}, err
	}
	out.Knee = knee
	return out, nil
}

// WriteText renders the plan as a deterministic human-readable report.
func (p PlanReport) WriteText(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "capacity plan: spec %q vs SLO %q (seed %d, %d hives, %d uploads offered)\n",
		p.SpecName, p.SLOName, p.Seed, p.Hives, p.Offered)
	if p.MinServers > 0 {
		fmt.Fprintf(&b, "minimal deployment: %d server(s) (searched 1..%d)\n", p.MinServers, p.MaxServers)
	} else {
		fmt.Fprintf(&b, "UNSATISFIABLE within %d server(s)\n", p.MaxServers)
	}
	b.WriteString("\nprobes:\n")
	tw := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "  servers\tverdict\tbreaches\tdelivered\tp99_s")
	for _, pr := range p.Probes {
		verdict := "pass"
		if !pr.Pass {
			verdict = "FAIL"
		}
		fmt.Fprintf(tw, "  %d\t%s\t%d\t%.4f\t%.3f\n",
			pr.Servers, verdict, pr.Breaches, pr.DeliveredFrac, pr.P99)
	}
	tw.Flush()

	b.WriteString("\nobjectives at sized deployment:\n")
	tw = tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "  objective\tkind\tverdict\tvalue\tbound\tburn")
	for _, r := range p.Report.Results {
		verdict := "pass"
		if !r.Pass {
			verdict = "FAIL"
		}
		fmt.Fprintf(tw, "  %s\t%s\t%s\t%.4g\t%.4g\t%.3f\n",
			r.Name, r.Kind, verdict, r.Value, r.Bound, r.Burn)
	}
	tw.Flush()

	b.WriteString("\nsaturation knee (offered-rate sweep at sized deployment):\n")
	tw = tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "  xload\toffered/s\tdelivered\trejects\tlost\tp50_s\tp99_s\tedge_Wh\tserver_Wh\tJ/upload")
	for _, k := range p.Knee {
		fmt.Fprintf(tw, "  %.2f\t%.4f\t%.4f\t%d\t%d\t%.3f\t%.3f\t%.3f\t%.3f\t%.2f\n",
			k.Mult, k.OfferedPerS, k.DeliveredFrac, k.Rejected, k.Lost,
			k.P50, k.P99, k.EdgeWh, k.ServerWh, k.JPerDelivered)
	}
	tw.Flush()
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteKneeCSV emits the knee sweep as CSV for plotting.
func (p PlanReport) WriteKneeCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w,
		"mult,offered_per_s,offered,delivered,rejected,lost,delivered_frac,p50_s,p99_s,edge_wh,server_wh,j_per_delivered"); err != nil {
		return err
	}
	for _, k := range p.Knee {
		if _, err := fmt.Fprintf(w, "%.4f,%.6f,%d,%d,%d,%d,%.6f,%.6f,%.6f,%.6f,%.6f,%.6f\n",
			k.Mult, k.OfferedPerS, k.Offered, k.Delivered, k.Rejected, k.Lost,
			k.DeliveredFrac, k.P50, k.P99, k.EdgeWh, k.ServerWh, k.JPerDelivered); err != nil {
			return err
		}
	}
	return nil
}
