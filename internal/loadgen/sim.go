package loadgen

import (
	"container/heap"
	"fmt"
	"sort"
	"time"

	"beesim/internal/faults"
	"beesim/internal/hivenet"
	"beesim/internal/ledger"
	"beesim/internal/netsim"
	"beesim/internal/obs"
	"beesim/internal/parallel"
	"beesim/internal/power"
	"beesim/internal/stats"
)

// SimOptions shape one virtual-time capacity probe.
type SimOptions struct {
	// Servers is the shard count the load is offered to (hive →
	// shard by hive mod Servers). Must be >= 1.
	Servers int
	// Workers bounds shard-level concurrency (0 = GOMAXPROCS). Any
	// value produces byte-identical results.
	Workers int
	// RateScale multiplies the offered arrival rate by compressing
	// the schedule (2 = twice the load). 0 means 1.
	RateScale float64
	// NeedEntries synthesizes ledger entries (edge radio attempts,
	// cloud upload bursts) so energy SLO objectives can be evaluated.
	NeedEntries bool
}

// SimResult is one probe's outcome: the fleet's delivery accounting,
// energy totals, and an obs registry carrying the same metric
// vocabulary the live stack emits (netsim_upload_seconds,
// hivenet_admission_rejects_total, ...) so internal/slo specs written
// for either work unchanged.
type SimResult struct {
	Servers   int
	RateScale float64
	// HorizonS is the compressed campaign length the probe covered.
	HorizonS float64

	// Offered counts scheduled upload episodes; every episode ends
	// delivered or lost, so Offered == Delivered + Lost always.
	Offered   int
	Delivered int
	// Rejected counts admission rejects (attempt granularity).
	Rejected int
	// DroppedLink counts attempts lost to link faults before reaching
	// a server.
	DroppedLink int
	// Lost counts episodes that exhausted their retry budget.
	Lost int
	// Reads counts dashboard/API read arrivals (not queued — the read
	// path does not hold an upload slot).
	Reads int
	// ArchiveShed counts records shed by the per-shard archive cap.
	ArchiveShed int

	// EdgeJ is radio energy spent on attempts; ServerJ is above-idle
	// cloud energy spent on delivered uploads.
	EdgeJ   float64
	ServerJ float64

	Registry *obs.Registry
	Entries  []ledger.Entry
}

// DeliveredFrac is the delivery ratio (1 when nothing was offered).
func (r SimResult) DeliveredFrac() float64 {
	if r.Offered == 0 {
		return 1
	}
	return float64(r.Delivered) / float64(r.Offered)
}

// serviceSeconds is the planner's per-upload service time: the spec
// override, or the calibrated cloud model (receive + SVM execute).
func serviceSeconds(spec LoadSpec) float64 {
	if spec.Server.ServiceS > 0 {
		return spec.Server.ServiceS
	}
	cloud := power.DefaultCloud()
	return cloud.Receive().Duration.Seconds() + cloud.ExecSVM().Duration.Seconds()
}

// serverBurstJoules is the above-idle cloud energy one delivered
// upload costs (receive + SVM execute), mirroring the live server's
// accountUpload arithmetic.
func serverBurstJoules() float64 {
	cloud := power.DefaultCloud()
	idle := float64(cloud.IdlePower)
	rx, ex := cloud.Receive(), cloud.ExecSVM()
	return (float64(rx.Energy) - idle*rx.Duration.Seconds()) +
		(float64(ex.Energy) - idle*ex.Duration.Seconds())
}

// attemptItem is one pending upload attempt in a shard's event queue.
type attemptItem struct {
	at      time.Duration // attempt arrival (virtual)
	wakeAt  time.Duration // episode's scheduled wake-up (latency anchor)
	hive    int
	wake    int
	attempt int // 1-based
}

// attemptQueue is a min-heap ordered by (at, hive, wake, attempt) — a
// total order, so simultaneous retries pop identically everywhere.
type attemptQueue []attemptItem

func (q attemptQueue) Len() int { return len(q) }
func (q attemptQueue) Less(i, j int) bool {
	a, b := q[i], q[j]
	if a.at != b.at {
		return a.at < b.at
	}
	if a.hive != b.hive {
		return a.hive < b.hive
	}
	if a.wake != b.wake {
		return a.wake < b.wake
	}
	return a.attempt < b.attempt
}
func (q attemptQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *attemptQueue) Push(x any) { *q = append(*q, x.(attemptItem)) }
func (q *attemptQueue) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// busyHeap tracks inflight completion instants per shard.
type busyHeap []time.Duration

func (h busyHeap) Len() int           { return len(h) }
func (h busyHeap) Less(i, j int) bool { return h[i] < h[j] }
func (h busyHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *busyHeap) Push(x any)        { *h = append(*h, x.(time.Duration)) }
func (h *busyHeap) Pop() any {
	old := *h
	n := len(old)
	v := old[n-1]
	*h = old[:n-1]
	return v
}

// shardResult is one shard's tallies, merged serially in shard order.
type shardResult struct {
	delivered, rejected, droppedLink, lost, offered int
	edgeJ, serverJ                                  float64
	reg                                             *obs.Registry
	entries                                         []ledger.Entry
}

// simShard replays one shard's upload episodes through an M/G/c-style
// admission model in virtual time: c = MaxInflight concurrent
// handlers, no queue — an arrival finding every handler busy is
// rejected and retried by the client policy, exactly the live
// server's admission semantics.
func simShard(spec LoadSpec, evs []Event, scale float64, inj *faults.Injector,
	policy faults.RetryPolicy, needEntries bool) shardResult {
	res := shardResult{reg: obs.NewRegistry()}
	serviceS := serviceSeconds(spec)
	service := seconds(serviceS)
	burstJ := serverBurstJoules()
	send := power.DefaultPi3B().SendAudio()
	budget := spec.Server.MaxInflight

	hLatency := res.reg.Histogram(netsim.MetricUploadSeconds)
	hE2E := res.reg.Histogram(hivenet.MetricUploadE2ESeconds)
	hDepth := res.reg.Histogram(hivenet.MetricQueueDepth)
	hAttempts := res.reg.Histogram(netsim.MetricAttemptsPerUpload)
	cEpisodes := res.reg.Counter(netsim.MetricUploadEpisodes)
	cDrops := res.reg.Counter(netsim.MetricSendDrops)
	cAttempts := res.reg.Counter(netsim.MetricSendAttempts)
	cRejects := res.reg.Counter(hivenet.MetricAdmissionRejects)
	cUploads := res.reg.Counter(hivenet.MetricUploads)

	var edge, server stats.Kahan

	q := make(attemptQueue, 0, len(evs))
	for _, ev := range evs {
		at := time.Duration(float64(ev.At) / scale)
		q = append(q, attemptItem{at: at, wakeAt: at, hive: ev.Hive, wake: ev.Wake, attempt: 1})
	}
	heap.Init(&q)
	res.offered = len(evs)
	cEpisodes.Add(float64(len(evs)))

	var busy busyHeap
	// episode bookkeeping for the attempts-per-upload histogram: the
	// attempt count is carried in each item, so the final attempt's
	// value is the episode's total.
	finish := func(it attemptItem, deliveredAt time.Duration, ok bool) {
		hAttempts.Observe(float64(it.attempt))
		edge.Add(float64(it.attempt) * float64(send.Energy))
		end := deliveredAt
		if ok {
			res.delivered++
			cUploads.Inc()
			lat := (deliveredAt - it.wakeAt).Seconds()
			hLatency.Observe(lat)
			hE2E.Observe(lat)
			server.Add(burstJ)
		} else {
			res.lost++
			cDrops.Inc()
		}
		if needEntries {
			t := CampaignStart.Add(end)
			res.entries = append(res.entries, ledger.Entry{
				T: t, Hive: HiveID(it.hive), Device: "edge", Component: "radio",
				Task: send.Name, Dir: ledger.Consume,
				Joules:  float64(it.attempt) * float64(send.Energy),
				Seconds: float64(it.attempt) * send.Duration.Seconds(),
			})
			if ok {
				res.entries = append(res.entries, ledger.Entry{
					T: t, Hive: HiveID(it.hive), Device: "cloud", Component: "server",
					Task: "upload burst", Dir: ledger.Consume,
					Joules: burstJ, Seconds: serviceS,
				})
			}
		}
	}

	retry := func(it attemptItem, now time.Duration, extra time.Duration) bool {
		if it.attempt >= policy.MaxAttempts {
			return false
		}
		u := 0.5
		if inj != nil {
			u = inj.JitterU(CampaignStart.Add(now), it.attempt)
		}
		next := it
		next.attempt++
		next.at = now + extra + policy.Backoff(it.attempt, u)
		heap.Push(&q, next)
		return true
	}

	for q.Len() > 0 {
		it := heap.Pop(&q).(attemptItem)
		now := it.at
		for len(busy) > 0 && busy[0] <= now {
			heap.Pop(&busy)
		}
		cAttempts.Inc()
		// Link faults eat the attempt before the server ever sees it.
		if inj != nil && inj.DropUpload(CampaignStart.Add(now), it.attempt) {
			res.droppedLink++
			if !retry(it, now, policy.AttemptTimeout) {
				finish(it, now+policy.AttemptTimeout, false)
			}
			continue
		}
		hDepth.Observe(float64(len(busy)))
		if budget > 0 && len(busy) >= budget {
			res.rejected++
			cRejects.Inc()
			if !retry(it, now, 0) {
				finish(it, now, false)
			}
			continue
		}
		done := now + service
		heap.Push(&busy, done)
		finish(it, done, true)
	}

	res.edgeJ = edge.Sum()
	res.serverJ = server.Sum()
	if cap := spec.Server.MaxArchiveRecords; cap > 0 {
		// The live server archives two records per delivered wake-up
		// (sensor report + verdict); the cap sheds the overflow.
		if records := 2 * res.delivered; records > cap {
			res.reg.Counter(hivenet.MetricArchiveShed).Add(float64(records - cap))
		}
	}
	return res
}

// Simulate replays the spec's schedule against opt.Servers virtual
// hivenet shards. Per-shard simulation is pure; shard results merge
// serially in shard order, so the result is byte-identical at any
// opt.Workers.
func Simulate(spec LoadSpec, evs []Event, opt SimOptions) (SimResult, error) {
	if opt.Servers < 1 {
		return SimResult{}, fmt.Errorf("loadgen: simulate needs servers >= 1, got %d", opt.Servers)
	}
	scale := opt.RateScale
	if scale <= 0 {
		scale = 1
	}
	inj, err := spec.Injector(CampaignStart)
	if err != nil {
		return SimResult{}, err
	}
	policy := spec.RetryPolicy()

	shardEvs := make([][]Event, opt.Servers)
	reads := 0
	for _, ev := range evs {
		switch ev.Kind {
		case EventUpload:
			s := ev.Hive % opt.Servers
			shardEvs[s] = append(shardEvs[s], ev)
		case EventRead:
			reads++
		}
	}

	shards, err := parallel.Map(opt.Workers, opt.Servers, func(s int) (shardResult, error) {
		return simShard(spec, shardEvs[s], scale, inj, policy, opt.NeedEntries), nil
	})
	if err != nil {
		return SimResult{}, err
	}

	out := SimResult{
		Servers:   opt.Servers,
		RateScale: scale,
		HorizonS:  spec.HorizonS / scale,
		Reads:     reads,
		Registry:  obs.NewRegistry(),
	}
	var edge, server stats.Kahan
	for _, sh := range shards {
		out.Offered += sh.offered
		out.Delivered += sh.delivered
		out.Rejected += sh.rejected
		out.DroppedLink += sh.droppedLink
		out.Lost += sh.lost
		edge.Add(sh.edgeJ)
		server.Add(sh.serverJ)
		out.Registry.Merge(sh.reg)
		out.Entries = append(out.Entries, sh.entries...)
	}
	out.EdgeJ = edge.Sum()
	out.ServerJ = server.Sum()
	if shed, ok := out.Registry.Snapshot().FindCounter(hivenet.MetricArchiveShed); ok {
		out.ArchiveShed = int(shed)
	}
	out.Registry.Counter("loadgen_api_reads_total").Add(float64(reads))
	// Cross-shard entry order must not depend on shard sizes: impose
	// the total order (T, Hive, Task).
	sort.Slice(out.Entries, func(i, j int) bool {
		a, b := out.Entries[i], out.Entries[j]
		if !a.T.Equal(b.T) {
			return a.T.Before(b.T)
		}
		if a.Hive != b.Hive {
			return a.Hive < b.Hive
		}
		return a.Task < b.Task
	})
	return out, nil
}
