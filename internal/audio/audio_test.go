package audio

import (
	"bytes"
	"math"
	"testing"

	"beesim/internal/dsp"
	"beesim/internal/hive"
)

func shortCfg() Config {
	return Config{SampleRate: SampleRate, Seconds: 1, Seed: 7}
}

func TestNewSynthValidation(t *testing.T) {
	if _, err := NewSynth(Config{SampleRate: 0, Seconds: 1}); err == nil {
		t.Error("zero sample rate accepted")
	}
	if _, err := NewSynth(Config{SampleRate: 22050, Seconds: 0}); err == nil {
		t.Error("zero length accepted")
	}
}

func TestClipLengthAndRange(t *testing.T) {
	s, err := NewSynth(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	clip := s.Clip(hive.QueenPresent, 0.8)
	if len(clip) != SampleRate*ClipSeconds {
		t.Fatalf("clip length = %d, want %d", len(clip), SampleRate*ClipSeconds)
	}
	for i, v := range clip {
		if math.Abs(v) > 1 {
			t.Fatalf("sample %d = %v out of [-1,1]", i, v)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a, _ := NewSynth(shortCfg())
	b, _ := NewSynth(shortCfg())
	ca := a.Clip(hive.QueenPresent, 0.5)
	cb := b.Clip(hive.QueenPresent, 0.5)
	for i := range ca {
		if ca[i] != cb[i] {
			t.Fatalf("equal-seed clips differ at %d", i)
		}
	}
}

func TestClipsVaryBetweenCalls(t *testing.T) {
	s, _ := NewSynth(shortCfg())
	a := s.Clip(hive.QueenPresent, 0.5)
	b := s.Clip(hive.QueenPresent, 0.5)
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same > len(a)/10 {
		t.Fatal("consecutive clips are nearly identical; per-clip randomness missing")
	}
}

// spectralProfile returns the pooled mel vector of a clip.
func spectralProfile(t *testing.T, clip []float64) []float64 {
	t.Helper()
	mel, err := dsp.MelSpectrogram(clip, dsp.PaperSTFT(), 64, SampleRate)
	if err != nil {
		t.Fatal(err)
	}
	return mel.MeanPool()
}

func TestQueenPresentHumPeak(t *testing.T) {
	s, _ := NewSynth(shortCfg())
	clip := s.Clip(hive.QueenPresent, 0.8)
	spec, err := dsp.PowerSpectrogram(clip, dsp.PaperSTFT())
	if err != nil {
		t.Fatal(err)
	}
	// Time-average spectrum peak must sit near the ~250 Hz fundamental
	// (bin = f * 2048 / 22050 ≈ 23) or one of its low harmonics.
	best, bestV := 0, -1.0
	for b := 1; b < spec.Rows; b++ {
		var sum float64
		for c := 0; c < spec.Cols; c++ {
			sum += spec.At(b, c)
		}
		if sum > bestV {
			best, bestV = b, sum
		}
	}
	hz := float64(best) * SampleRate / 2048
	if hz < 180 || hz > 900 {
		t.Fatalf("dominant frequency = %.0f Hz, want a low hive-hum harmonic", hz)
	}
}

func TestClassesAreSpectrallySeparable(t *testing.T) {
	// Queenless clips must have flatter spectra: relatively more energy
	// in the upper mel bands than queen-present clips, on average.
	s, _ := NewSynth(shortCfg())
	ratio := func(state hive.QueenState) float64 {
		var low, high float64
		for i := 0; i < 5; i++ {
			p := spectralProfile(t, s.Clip(state, 0.6))
			for b := 0; b < 16; b++ {
				low += p[b]
			}
			for b := 32; b < 64; b++ {
				high += p[b]
			}
		}
		return high / low
	}
	if rq, rl := ratio(hive.QueenPresent), ratio(hive.QueenLost); rl <= rq {
		t.Fatalf("queenless high/low ratio %v not above queen-present %v", rl, rq)
	}
}

func TestPipingAddsMidTone(t *testing.T) {
	s, _ := NewSynth(Config{SampleRate: SampleRate, Seconds: 3, Seed: 11})
	// Piping boosts the bands around 400 Hz relative to total energy.
	// 400 Hz on a 64-band mel scale over 11 kHz lands near band 10.
	// Average the mid-band fraction over several clips: per-clip draws
	// (fundamental, noise) make single-clip comparisons noisy.
	midFraction := func(state hive.QueenState) float64 {
		var frac float64
		const reps = 6
		for i := 0; i < reps; i++ {
			p := spectralProfile(t, s.Clip(state, 0.5))
			var mid, total float64
			for b, v := range p {
				total += v
				if b >= 8 && b < 14 {
					mid += v
				}
			}
			frac += mid / total
		}
		return frac / reps
	}
	if plain, piping := midFraction(hive.QueenPresent), midFraction(hive.QueenPiping); piping <= plain {
		t.Fatalf("piping mid-band fraction %v not above plain %v", piping, plain)
	}
}

func TestUnknownStateIsNoise(t *testing.T) {
	s, _ := NewSynth(shortCfg())
	clip := s.Clip(hive.QueenState(42), 0.5)
	var rms float64
	for _, v := range clip {
		rms += v * v
	}
	rms = math.Sqrt(rms / float64(len(clip)))
	if rms > 0.1 {
		t.Fatalf("unknown-state clip RMS = %v, want quiet noise", rms)
	}
}

func TestActivityScalesLoudness(t *testing.T) {
	// Before normalization the hum scales with activity; after
	// normalization loudness is equal but SNR differs. Verify the noise
	// floor (high-frequency flatness) is relatively higher at low
	// activity.
	s, _ := NewSynth(shortCfg())
	quiet := spectralProfile(t, s.Clip(hive.QueenPresent, 0.05))
	busy := spectralProfile(t, s.Clip(hive.QueenPresent, 1.0))
	flat := func(p []float64) float64 {
		var low, high float64
		for b := 0; b < 8; b++ {
			low += p[b]
		}
		for b := 48; b < 64; b++ {
			high += p[b]
		}
		return high / low
	}
	if flat(quiet) <= flat(busy) {
		t.Fatalf("low-activity clip not noisier relative to hum: %v vs %v",
			flat(quiet), flat(busy))
	}
}

func TestCorpusBalanced(t *testing.T) {
	clips, err := Corpus(shortCfg(), 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(clips) != 20 {
		t.Fatalf("corpus size = %d", len(clips))
	}
	present := 0
	for _, c := range clips {
		if c.QueenPresent {
			present++
		}
	}
	if present != 10 {
		t.Fatalf("corpus balance = %d/20 queen-present, want 10", present)
	}
}

func TestCorpusErrors(t *testing.T) {
	if _, err := Corpus(shortCfg(), 0); err == nil {
		t.Error("empty corpus accepted")
	}
	if _, err := Corpus(Config{}, 4); err == nil {
		t.Error("bad config accepted")
	}
}

func TestWAVRoundTrip(t *testing.T) {
	s, _ := NewSynth(shortCfg())
	clip := s.Clip(hive.QueenPresent, 0.7)
	var buf bytes.Buffer
	if err := WriteWAV(&buf, clip, SampleRate); err != nil {
		t.Fatal(err)
	}
	// RIFF header + 16-bit samples.
	if buf.Len() != 44+2*len(clip) {
		t.Fatalf("wav size = %d, want %d", buf.Len(), 44+2*len(clip))
	}
	back, rate, err := ReadWAV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if rate != SampleRate {
		t.Fatalf("rate = %d", rate)
	}
	if len(back) != len(clip) {
		t.Fatalf("length = %d, want %d", len(back), len(clip))
	}
	for i := range clip {
		if math.Abs(back[i]-clip[i]) > 1.0/32000 {
			t.Fatalf("sample %d: %v vs %v beyond quantization", i, back[i], clip[i])
		}
	}
}

func TestWAVClipsOutOfRange(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteWAV(&buf, []float64{2.5, -3.0}, 8000); err != nil {
		t.Fatal(err)
	}
	back, _, err := ReadWAV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back[0] < 0.99 || back[1] > -0.99 {
		t.Fatalf("out-of-range samples not clipped: %v", back)
	}
}

func TestWAVErrors(t *testing.T) {
	if err := WriteWAV(&bytes.Buffer{}, []float64{0}, 0); err == nil {
		t.Error("zero rate accepted")
	}
	if _, _, err := ReadWAV(bytes.NewReader([]byte("JUNKJUNKJUNK"))); err == nil {
		t.Error("junk accepted as WAV")
	}
	if _, _, err := ReadWAV(bytes.NewReader(nil)); err == nil {
		t.Error("empty reader accepted")
	}
}
