// Package audio synthesizes the in-hive sound that the paper's
// queen-detection service classifies, and provides a WAV codec for the
// clips.
//
// The real study trains on 1647 ten-second recordings labeled with queen
// presence. Those recordings are not public, so we generate a synthetic
// corpus with the documented bioacoustic structure of hive sound:
//
//   - A colony with a queen produces a steady harmonic hum with a
//     fundamental near 250 Hz and energy falling off with harmonic index.
//   - A queenless colony produces the well-known "roar": the fundamental
//     drifts upward, the harmonics broaden (frequency jitter), and the
//     broadband noise floor rises.
//   - A piping queen superimposes pulsed tones near 400 Hz.
//
// The classes overlap through per-clip randomness (fundamental drift,
// activity level, microphone noise), so classifiers face a real learning
// problem, but the spectral signatures the paper's models rely on are
// present. See DESIGN.md for why this substitution preserves the
// experiments' behaviour.
package audio

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"beesim/internal/hive"
	"beesim/internal/rng"
)

// SampleRate is the paper's recording rate (22 050 Hz).
const SampleRate = 22050

// ClipSeconds is the paper's clip length (10 s).
const ClipSeconds = 10

// Config shapes a synthesizer.
type Config struct {
	SampleRate int
	// Seconds is the clip length.
	Seconds float64
	// Seed drives all per-clip randomness.
	Seed uint64
}

// DefaultConfig matches the paper's recording setup.
func DefaultConfig() Config {
	return Config{SampleRate: SampleRate, Seconds: ClipSeconds, Seed: 1}
}

// Synth generates labeled hive-sound clips.
type Synth struct {
	cfg Config
	r   *rng.Source
}

// NewSynth creates a synthesizer.
func NewSynth(cfg Config) (*Synth, error) {
	if cfg.SampleRate <= 0 {
		return nil, errors.New("audio: non-positive sample rate")
	}
	if cfg.Seconds <= 0 {
		return nil, errors.New("audio: non-positive clip length")
	}
	return &Synth{cfg: cfg, r: rng.New(cfg.Seed)}, nil
}

// Clip synthesizes one clip for the given queen state and colony
// activity level in [0,1]. Each call draws fresh per-clip randomness.
func (s *Synth) Clip(state hive.QueenState, activity float64) []float64 {
	n := int(s.cfg.Seconds * float64(s.cfg.SampleRate))
	out := make([]float64, n)
	if activity < 0 {
		activity = 0
	}
	if activity > 1 {
		activity = 1
	}

	// Per-clip draws: fundamental, drift, noise level.
	var (
		f0        float64
		jitter    float64 // harmonic frequency wobble depth
		noiseAmp  float64
		harmDecay float64
	)
	switch state {
	case hive.QueenPresent:
		f0 = s.r.Gaussian(250, 12)
		jitter = 0.004
		noiseAmp = 0.05 + 0.05*activity
		harmDecay = 1.0
	case hive.QueenLost:
		// Queenless roar: higher, unstable fundamental; flatter spectrum;
		// strong noise floor.
		f0 = s.r.Gaussian(310, 18)
		jitter = 0.03
		noiseAmp = 0.18 + 0.08*activity
		harmDecay = 0.55
	case hive.QueenPiping:
		f0 = s.r.Gaussian(250, 12)
		jitter = 0.006
		noiseAmp = 0.06 + 0.05*activity
		harmDecay = 1.0
	default:
		// Unknown state: ambient noise only.
		for i := range out {
			out[i] = 0.02 * s.r.Norm()
		}
		return out
	}

	humAmp := 0.25 + 0.5*activity
	const harmonics = 6
	// Random initial phases per harmonic, plus a slow random-walk pitch.
	phases := make([]float64, harmonics)
	for h := range phases {
		phases[h] = s.r.Range(0, 2*math.Pi)
	}
	pitch := f0
	dt := 1 / float64(s.cfg.SampleRate)
	// Slow amplitude modulation (fanning bursts) at ~0.3-2 Hz.
	amFreq := s.r.Range(0.3, 2)
	amPhase := s.r.Range(0, 2*math.Pi)

	for i := 0; i < n; i++ {
		// Pitch random walk, stronger when queenless.
		pitch += s.r.Gaussian(0, jitter*f0*0.02)
		// Mean-revert toward f0 so the walk stays bounded.
		pitch += (f0 - pitch) * 0.001

		var v float64
		for h := 0; h < harmonics; h++ {
			freq := pitch * float64(h+1)
			phases[h] += 2 * math.Pi * freq * dt
			amp := humAmp * math.Pow(float64(h+1), -harmDecay)
			v += amp * math.Sin(phases[h])
		}
		am := 1 + 0.25*math.Sin(2*math.Pi*amFreq*float64(i)*dt+amPhase)
		v *= am
		v += noiseAmp * s.r.Norm()
		out[i] = v
	}

	if state == hive.QueenPiping {
		s.addPiping(out)
	}

	normalize(out, 0.9)
	return out
}

// addPiping superimposes pulsed ~400 Hz queen toots: a ~1 s pulse train
// of short tones, repeated every few seconds.
func (s *Synth) addPiping(x []float64) {
	sr := float64(s.cfg.SampleRate)
	tootFreq := s.r.Gaussian(400, 20)
	pos := int(s.r.Range(0, 1.5) * sr)
	for pos < len(x) {
		// One toot sequence: a long pulse then several short ones.
		durations := []float64{1.0, 0.25, 0.25, 0.25, 0.25}
		for _, d := range durations {
			nd := int(d * sr)
			for i := 0; i < nd && pos+i < len(x); i++ {
				env := math.Sin(math.Pi * float64(i) / float64(nd)) // smooth pulse
				x[pos+i] += 0.5 * env * math.Sin(2*math.Pi*tootFreq*float64(i)/sr)
			}
			pos += nd + int(0.1*sr)
		}
		pos += int(s.r.Range(2, 4) * sr)
	}
}

func normalize(x []float64, peak float64) {
	var max float64
	for _, v := range x {
		if a := math.Abs(v); a > max {
			max = a
		}
	}
	if max == 0 {
		return
	}
	scale := peak / max
	for i := range x {
		x[i] *= scale
	}
}

// LabeledClip is one corpus item.
type LabeledClip struct {
	Samples []float64
	// QueenPresent is the binary classification label.
	QueenPresent bool
}

// Corpus synthesizes a balanced labeled corpus of n clips (half queen
// present, half queenless), with per-clip random activity levels. The
// paper's corpus has 1647 clips; tests and benchmarks use smaller ones.
func Corpus(cfg Config, n int) ([]LabeledClip, error) {
	if n <= 0 {
		return nil, errors.New("audio: corpus size must be positive")
	}
	s, err := NewSynth(cfg)
	if err != nil {
		return nil, err
	}
	out := make([]LabeledClip, n)
	for i := range out {
		present := i%2 == 0
		state := hive.QueenPresent
		if !present {
			state = hive.QueenLost
		}
		activity := s.r.Range(0.2, 1)
		out[i] = LabeledClip{Samples: s.Clip(state, activity), QueenPresent: present}
	}
	return out, nil
}

// --- WAV codec (16-bit PCM mono) ---

// WriteWAV encodes samples (clipped to [-1,1]) as a 16-bit PCM mono WAV.
func WriteWAV(w io.Writer, samples []float64, sampleRate int) error {
	if sampleRate <= 0 {
		return errors.New("audio: non-positive sample rate")
	}
	dataLen := uint32(len(samples) * 2)
	var header []any = []any{
		[4]byte{'R', 'I', 'F', 'F'},
		uint32(36 + dataLen),
		[4]byte{'W', 'A', 'V', 'E'},
		[4]byte{'f', 'm', 't', ' '},
		uint32(16),             // fmt chunk size
		uint16(1),              // PCM
		uint16(1),              // mono
		uint32(sampleRate),     // sample rate
		uint32(sampleRate * 2), // byte rate
		uint16(2),              // block align
		uint16(16),             // bits per sample
		[4]byte{'d', 'a', 't', 'a'},
		dataLen,
	}
	for _, v := range header {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	buf := make([]int16, len(samples))
	for i, v := range samples {
		if v > 1 {
			v = 1
		}
		if v < -1 {
			v = -1
		}
		buf[i] = int16(v * 32767)
	}
	return binary.Write(w, binary.LittleEndian, buf)
}

// ReadWAV decodes a 16-bit PCM mono WAV produced by WriteWAV.
func ReadWAV(r io.Reader) (samples []float64, sampleRate int, err error) {
	var riff, wave, fmtID [4]byte
	var riffLen, fmtLen uint32
	if err := binary.Read(r, binary.LittleEndian, &riff); err != nil {
		return nil, 0, fmt.Errorf("audio: reading RIFF: %w", err)
	}
	if riff != [4]byte{'R', 'I', 'F', 'F'} {
		return nil, 0, errors.New("audio: not a RIFF file")
	}
	if err := binary.Read(r, binary.LittleEndian, &riffLen); err != nil {
		return nil, 0, err
	}
	if err := binary.Read(r, binary.LittleEndian, &wave); err != nil {
		return nil, 0, err
	}
	if wave != [4]byte{'W', 'A', 'V', 'E'} {
		return nil, 0, errors.New("audio: not a WAVE file")
	}
	if err := binary.Read(r, binary.LittleEndian, &fmtID); err != nil {
		return nil, 0, err
	}
	if fmtID != [4]byte{'f', 'm', 't', ' '} {
		return nil, 0, errors.New("audio: missing fmt chunk")
	}
	if err := binary.Read(r, binary.LittleEndian, &fmtLen); err != nil {
		return nil, 0, err
	}
	var format, channels uint16
	var rate, byteRate uint32
	var blockAlign, bits uint16
	for _, dst := range []any{&format, &channels, &rate, &byteRate, &blockAlign, &bits} {
		if err := binary.Read(r, binary.LittleEndian, dst); err != nil {
			return nil, 0, err
		}
	}
	if format != 1 || channels != 1 || bits != 16 {
		return nil, 0, fmt.Errorf("audio: unsupported format (PCM=%d ch=%d bits=%d)",
			format, channels, bits)
	}
	var dataID [4]byte
	var dataLen uint32
	if err := binary.Read(r, binary.LittleEndian, &dataID); err != nil {
		return nil, 0, err
	}
	if dataID != [4]byte{'d', 'a', 't', 'a'} {
		return nil, 0, errors.New("audio: missing data chunk")
	}
	if err := binary.Read(r, binary.LittleEndian, &dataLen); err != nil {
		return nil, 0, err
	}
	raw := make([]int16, dataLen/2)
	if err := binary.Read(r, binary.LittleEndian, &raw); err != nil {
		return nil, 0, fmt.Errorf("audio: reading samples: %w", err)
	}
	out := make([]float64, len(raw))
	for i, v := range raw {
		out[i] = float64(v) / 32767
	}
	return out, int(rate), nil
}
