package audio

import (
	"bytes"
	"testing"
)

// FuzzReadWAV hardens the WAV decoder against arbitrary bytes: it must
// reject malformed input with an error, never panic, and agree with the
// encoder on everything it accepts.
func FuzzReadWAV(f *testing.F) {
	var buf bytes.Buffer
	if err := WriteWAV(&buf, []float64{0, 0.25, -0.25, 1, -1}, 22050); err != nil {
		f.Fatal(err)
	}
	seed := buf.Bytes()
	f.Add(seed)
	// Corrupt each header field once.
	for _, off := range []int{0, 8, 12, 20, 22, 34, 36} {
		bad := append([]byte(nil), seed...)
		bad[off] ^= 0xFF
		f.Add(bad)
	}
	f.Add([]byte{})
	f.Add([]byte("RIFF"))
	f.Add(seed[:20])

	f.Fuzz(func(t *testing.T, data []byte) {
		samples, rate, err := ReadWAV(bytes.NewReader(data))
		if err != nil {
			return
		}
		if rate == 0 {
			t.Fatal("accepted WAV with zero sample rate header field")
		}
		for _, v := range samples {
			if v < -1.001 || v > 1.001 {
				t.Fatalf("decoded sample %v out of range", v)
			}
		}
	})
}
