// Package power holds the calibrated device energy models of the
// deployment: the Raspberry Pi 3B+ edge node, the always-on Raspberry Pi
// Zero WH energy monitor, and the cloud server (Intel i7-8700K + RTX
// 2070).
//
// Every constant is derived from the paper's own measurements — Section
// IV's routine statistics and Figure 3 for the edge, Tables I and II for
// the per-task breakdowns of both scenarios. The scale simulation of
// Section VI is initialized "thanks to the measures described in Section
// IV and Section V"; this package is that initialization.
package power

import (
	"fmt"
	"time"

	"beesim/internal/ledger"
	"beesim/internal/stats"
	"beesim/internal/units"
)

// Task is one step of a device's duty cycle with its measured cost.
type Task struct {
	Name     string
	Energy   units.Joules
	Duration time.Duration
}

// NewTask builds a task from the paper's (joules, seconds) pairs.
func NewTask(name string, joules, seconds float64) Task {
	return Task{
		Name:     name,
		Energy:   units.Joules(joules),
		Duration: time.Duration(seconds * float64(time.Second)),
	}
}

// Power returns the task's average power.
func (t Task) Power() units.Watts { return t.Energy.Power(t.Duration) }

// String formats the task like a row of the paper's tables.
func (t Task) String() string {
	return fmt.Sprintf("%-28s %9.1f J %8.1f s", t.Name, float64(t.Energy), t.Duration.Seconds())
}

// Sum returns the total energy and duration of a task sequence.
func Sum(tasks []Task) (units.Joules, time.Duration) {
	var e stats.Kahan
	var d time.Duration
	for _, t := range tasks {
		e.Add(float64(t.Energy))
		d += t.Duration
	}
	return units.Joules(e.Sum()), d
}

// RecordTasks appends a task sequence to the energy ledger as consume
// entries, one per task, advancing the virtual clock by each task's
// duration — the ledger equivalent of tracing a duty cycle. device and
// component attribute the consumer; store binds the entries to a
// conservation balance ("" for attribution-only overlays such as
// grid-powered cloud tasks). It returns the time after the last task.
// A nil ledger records nothing but still advances time, so callers can
// share the same clock arithmetic on instrumented and bare runs.
func RecordTasks(lg *ledger.Ledger, at time.Time, hive, device, component, store string, tasks []Task) time.Time {
	for _, t := range tasks {
		if lg != nil && (t.Energy != 0 || t.Duration != 0) {
			lg.Append(ledger.Entry{
				T: at, Hive: hive, Device: device, Component: component,
				Task: t.Name, Dir: ledger.Consume,
				Joules: float64(t.Energy), Seconds: t.Duration.Seconds(),
				Store: store,
			})
		}
		at = at.Add(t.Duration)
	}
	return at
}

// Pi3B is the Raspberry Pi 3B+ edge-node energy model.
type Pi3B struct {
	// SleepPower is the draw while halted but able to receive the GPIO
	// wake-up signal. The per-cycle sleep rows of Tables I/II (111.6 J /
	// 178.5 s, 131.9 J / 211.1 s, 116.9 J / 187.0 s) all imply exactly
	// 0.625 W, which the text of Section IV rounds to "close to 0.62".
	SleepPower units.Watts
	// WakeOverhead is per-wake energy not attributed to any table row:
	// the boot inrush and the Pi Zero's consumption-data transfer. It is
	// calibrated so the 5-minute point of Figure 3 lands at the measured
	// 1.19 W given the 190.1 J routine.
	WakeOverhead units.Joules
}

// DefaultPi3B returns the calibrated edge model.
func DefaultPi3B() Pi3B {
	return Pi3B{SleepPower: 0.625, WakeOverhead: 35.0}
}

// Per-task measurements for the Raspberry Pi 3B+, straight from Tables I
// and II (joules, seconds).
func (p Pi3B) WakeAndCollect() Task { return NewTask("Wake up & Data collection", 131.8, 64.0) }
func (p Pi3B) InferSVM() Task       { return NewTask("Queen detection model (SVM)", 98.9, 46.1) }
func (p Pi3B) InferCNN() Task       { return NewTask("Queen detection model (CNN)", 94.8, 37.6) }
func (p Pi3B) SendResults() Task    { return NewTask("Send results", 3.0, 1.5) }
func (p Pi3B) SendAudio() Task      { return NewTask("Send audio", 37.3, 15.0) }
func (p Pi3B) Shutdown() Task       { return NewTask("Shutdown", 21.0, 9.9) }

// Sleep returns the sleep task filling duration d at the sleep power.
func (p Pi3B) Sleep(d time.Duration) Task {
	return Task{Name: "Sleep", Energy: p.SleepPower.Energy(d), Duration: d}
}

// Routine is Section IV's full measured data-collection routine (boot,
// collect, transfer, shutdown): 190.1 J over 1 min 29 s, mean 2.14 W.
func (p Pi3B) Routine() Task { return NewTask("Data collection routine", 190.1, 89.0) }

// AveragePower returns the long-run mean power of the edge device waking
// every period and running the Section-IV routine — the quantity Figure 3
// plots against the wake-up frequency. Periods not exceeding the active
// time are saturated (the device never sleeps).
func (p Pi3B) AveragePower(period time.Duration) units.Watts {
	r := p.Routine()
	active := r.Energy + p.WakeOverhead
	if period <= r.Duration {
		return (active).Power(r.Duration)
	}
	sleep := p.SleepPower.Energy(period - r.Duration)
	return (active + sleep).Power(period)
}

// PiZero is the always-on Raspberry Pi Zero WH energy monitor. It wakes
// the Pi 3B+ over GPIO and streams current measurements; the paper keeps
// it permanently powered.
type PiZero struct {
	// ActivePower is the steady draw with the three current sensors.
	ActivePower units.Watts
}

// DefaultPiZero returns a typical Zero WH + Grove hat draw.
func DefaultPiZero() PiZero { return PiZero{ActivePower: 0.75} }

// Energy returns the monitor's consumption over duration d.
func (p PiZero) Energy(d time.Duration) units.Joules { return p.ActivePower.Energy(d) }

// Cloud is the cloud server energy model (i7-8700K + RTX 2070).
// Table II implies: idle 9415 J / 211.1 s = 44.6 W, receive 1032 J / 15 s
// = 68.8 W, SVM execution 6.3 J / 0.1 s, CNN execution 108 J / 1.0 s.
type Cloud struct {
	IdlePower    units.Watts
	ReceivePower units.Watts
}

// DefaultCloud returns the calibrated server model.
func DefaultCloud() Cloud {
	return Cloud{IdlePower: 44.6, ReceivePower: 68.8}
}

// Idle returns an idle task spanning d.
func (c Cloud) Idle(d time.Duration) Task {
	return Task{Name: "Idle", Energy: c.IdlePower.Energy(d), Duration: d}
}

// Receive returns the audio-reception task for one client (15 s at the
// receive power: 1032 J).
func (c Cloud) Receive() Task { return NewTask("Receive audio", 1032, 15.0) }

// ExecSVM is the queen-detection SVM execution on the server.
func (c Cloud) ExecSVM() Task { return NewTask("Queen detection model (SVM)", 6.3, 0.1) }

// ExecCNN is the queen-detection CNN execution on the server (GPU burst).
func (c Cloud) ExecCNN() Task { return NewTask("Queen detection model (CNN)", 108, 1.0) }

// InferenceModel converts a model's arithmetic cost into edge energy and
// duration. Figure 5 shows the CNN's edge inference cost growing as a
// quadratic function of image side length (i.e. linearly in FLOPs, which
// for a fixed conv stack scale with pixel count); the efficiency constant
// is calibrated so a 100x100 input costs the Table-I CNN numbers.
type InferenceModel struct {
	// FLOPsPerJoule is the edge device's effective arithmetic efficiency.
	FLOPsPerJoule float64
	// FLOPsPerSecond is the sustained compute rate, fixing duration.
	FLOPsPerSecond float64
	// FixedEnergy covers model load and feature extraction, independent
	// of input size.
	FixedEnergy units.Joules
	// FixedDuration is the corresponding constant time.
	FixedDuration time.Duration
}

// DefaultEdgeInference is calibrated against Table I's CNN row: a
// 100x100-input CNN forward pass (~60 MFLOPs for our reference net)
// costing 94.8 J / 37.6 s on the Pi 3B+ including feature extraction.
func DefaultEdgeInference() InferenceModel {
	return InferenceModel{
		FLOPsPerJoule:  1.0e6,
		FLOPsPerSecond: 2.6e6,
		FixedEnergy:    34.8,
		FixedDuration:  14 * time.Second,
	}
}

// Cost returns the energy and wall time to run flops of arithmetic.
func (m InferenceModel) Cost(flops float64) (units.Joules, time.Duration) {
	if flops < 0 {
		flops = 0
	}
	e := m.FixedEnergy + units.Joules(flops/m.FLOPsPerJoule)
	d := m.FixedDuration + time.Duration(flops/m.FLOPsPerSecond*float64(time.Second))
	return e, d
}
