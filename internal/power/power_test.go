package power

import (
	"math"
	"testing"
	"time"

	"beesim/internal/ledger"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestTaskPower(t *testing.T) {
	task := NewTask("x", 190.1, 89.0)
	if !almostEq(float64(task.Power()), 2.136, 0.001) {
		t.Fatalf("routine power = %v, want ~2.14 W", task.Power())
	}
}

func TestSum(t *testing.T) {
	p := DefaultPi3B()
	tasks := []Task{p.WakeAndCollect(), p.SendAudio(), p.Shutdown()}
	e, d := Sum(tasks)
	if !almostEq(float64(e), 131.8+37.3+21.0, 1e-9) {
		t.Fatalf("sum energy = %v", e)
	}
	if !almostEq(d.Seconds(), 64.0+15.0+9.9, 1e-9) {
		t.Fatalf("sum duration = %v", d)
	}
}

func TestPaperTaskConstants(t *testing.T) {
	p := DefaultPi3B()
	c := DefaultCloud()
	cases := []struct {
		task    Task
		joules  float64
		seconds float64
	}{
		{p.WakeAndCollect(), 131.8, 64.0},
		{p.InferSVM(), 98.9, 46.1},
		{p.InferCNN(), 94.8, 37.6},
		{p.SendResults(), 3.0, 1.5},
		{p.SendAudio(), 37.3, 15.0},
		{p.Shutdown(), 21.0, 9.9},
		{c.Receive(), 1032, 15.0},
		{c.ExecSVM(), 6.3, 0.1},
		{c.ExecCNN(), 108, 1.0},
	}
	for _, tc := range cases {
		if !almostEq(float64(tc.task.Energy), tc.joules, 1e-9) {
			t.Errorf("%s energy = %v, want %v", tc.task.Name, tc.task.Energy, tc.joules)
		}
		if !almostEq(tc.task.Duration.Seconds(), tc.seconds, 1e-9) {
			t.Errorf("%s duration = %v, want %v s", tc.task.Name, tc.task.Duration, tc.seconds)
		}
	}
}

func TestSleepTask(t *testing.T) {
	p := DefaultPi3B()
	s := p.Sleep(time.Duration(178.5 * float64(time.Second)))
	// Table I's sleep row: 111.6 J over 178.5 s at exactly 0.625 W.
	if !almostEq(float64(s.Energy), 111.56, 0.01) {
		t.Fatalf("sleep energy = %v", s.Energy)
	}
}

func TestCloudIdlePower(t *testing.T) {
	c := DefaultCloud()
	idle := c.Idle(time.Duration(211.1 * float64(time.Second)))
	// Table II: 9415 J over 211.1 s.
	if !almostEq(float64(idle.Energy), 9415, 5) {
		t.Fatalf("idle energy = %v, want ~9415 J", idle.Energy)
	}
	if !almostEq(float64(c.Receive().Power()), 68.8, 0.01) {
		t.Fatalf("receive power = %v, want 68.8 W", c.Receive().Power())
	}
}

func TestAveragePowerFigure3Anchors(t *testing.T) {
	p := DefaultPi3B()
	// 5-minute wake-up: the paper measures 1.19 W.
	if got := p.AveragePower(5 * time.Minute); !almostEq(float64(got), 1.19, 0.01) {
		t.Fatalf("avg power @5min = %v, want 1.19 W", got)
	}
	// Long periods converge to the ~0.62 W sleep power.
	if got := p.AveragePower(120 * time.Minute); !almostEq(float64(got), 0.625, 0.05) {
		t.Fatalf("avg power @120min = %v, want ~0.62 W", got)
	}
}

func TestAveragePowerMonotoneDecreasing(t *testing.T) {
	p := DefaultPi3B()
	periods := []time.Duration{5, 10, 15, 30, 60, 120}
	prev := math.Inf(1)
	for _, m := range periods {
		got := float64(p.AveragePower(m * time.Minute))
		if got >= prev {
			t.Fatalf("avg power not decreasing at %d min: %v >= %v", m, got, prev)
		}
		prev = got
	}
}

func TestAveragePowerSaturatesBelowRoutine(t *testing.T) {
	p := DefaultPi3B()
	short := p.AveragePower(30 * time.Second)
	atRoutine := p.AveragePower(89 * time.Second)
	if short != atRoutine {
		t.Fatalf("saturated avg power differs: %v vs %v", short, atRoutine)
	}
	if float64(short) < 2 {
		t.Fatalf("saturated power = %v, want > 2 W (always active)", short)
	}
}

func TestPiZeroEnergy(t *testing.T) {
	z := DefaultPiZero()
	e := z.Energy(24 * time.Hour)
	// 0.75 W * 86400 s = 64.8 kJ = 18 Wh/day: a power bank alone lasts
	// only a few days, consistent with the paper's autonomy remarks.
	if !almostEq(float64(e), 64800, 1e-6) {
		t.Fatalf("daily monitor energy = %v", e)
	}
}

func TestInferenceModelCalibration(t *testing.T) {
	m := DefaultEdgeInference()
	// 60 MFLOPs (reference CNN at 100x100) must cost ~Table I's CNN row.
	e, d := m.Cost(60e6)
	if !almostEq(float64(e), 94.8, 0.5) {
		t.Fatalf("CNN 100x100 edge energy = %v, want ~94.8 J", e)
	}
	if !almostEq(d.Seconds(), 37.1, 1.0) {
		t.Fatalf("CNN 100x100 edge duration = %v, want ~37 s", d)
	}
}

func TestInferenceModelQuadraticInSide(t *testing.T) {
	// FLOPs scale with pixel count for a fixed conv stack, so energy as a
	// function of side length is quadratic: E(2s) - fixed = 4*(E(s)-fixed).
	m := DefaultEdgeInference()
	flopsAt := func(side float64) float64 { return 6000 * side * side } // 60 MFLOPs at side 100
	e1, _ := m.Cost(flopsAt(100))
	e2, _ := m.Cost(flopsAt(200))
	varPart1 := float64(e1 - m.FixedEnergy)
	varPart2 := float64(e2 - m.FixedEnergy)
	if !almostEq(varPart2/varPart1, 4, 1e-9) {
		t.Fatalf("energy ratio = %v, want 4 (quadratic)", varPart2/varPart1)
	}
}

func TestInferenceModelNegativeFlops(t *testing.T) {
	m := DefaultEdgeInference()
	e, d := m.Cost(-5)
	if e != m.FixedEnergy || d != m.FixedDuration {
		t.Fatalf("negative flops cost = %v/%v, want fixed only", e, d)
	}
}

func TestTaskString(t *testing.T) {
	s := DefaultPi3B().WakeAndCollect().String()
	if s == "" || len(s) < 20 {
		t.Fatalf("task string too short: %q", s)
	}
}

func TestRecordTasksAdvancesClockAndAttributes(t *testing.T) {
	pi := DefaultPi3B()
	tasks := []Task{pi.WakeAndCollect(), pi.InferCNN(), pi.SendResults()}
	lg := ledger.New()
	at := time.Date(2023, 4, 10, 6, 0, 0, 0, time.UTC)
	end := RecordTasks(lg, at, "cachan-1", "edge", "pi3b", "battery", tasks)

	_, wantDur := Sum(tasks)
	if got := end.Sub(at); got != wantDur {
		t.Fatalf("clock advanced %v, want %v", got, wantDur)
	}
	entries := lg.Entries()
	if len(entries) != 3 {
		t.Fatalf("entries = %d, want 3", len(entries))
	}
	for i, e := range entries {
		if e.Task != tasks[i].Name || e.Dir != ledger.Consume ||
			e.Joules != float64(tasks[i].Energy) || e.Store != "battery" {
			t.Fatalf("entry %d = %+v, want task %v", i, e, tasks[i])
		}
	}
	// Each entry's timestamp is the task's start, in sequence.
	if entries[1].T != at.Add(tasks[0].Duration) {
		t.Fatalf("entry 1 at %v, want %v", entries[1].T, at.Add(tasks[0].Duration))
	}

	// Nil ledger: same clock arithmetic, no entries.
	if got := RecordTasks(nil, at, "h", "edge", "pi3b", "", tasks); got != end {
		t.Fatalf("nil-ledger clock = %v, want %v", got, end)
	}
}
