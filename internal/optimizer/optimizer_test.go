package optimizer

import (
	"testing"
	"time"

	"beesim/internal/core"
	"beesim/internal/routine"
	"beesim/internal/services"
)

func queenOnly(hives int, staleness time.Duration) Requirements {
	return Requirements{
		Hives:        hives,
		Services:     []services.Kind{services.QueenDetection},
		MaxStaleness: staleness,
	}
}

func TestOptimizeValidation(t *testing.T) {
	opts := DefaultOptions()
	if _, err := Optimize(Requirements{}, opts); err == nil {
		t.Error("empty requirements accepted")
	}
	if _, err := Optimize(queenOnly(0, time.Hour), opts); err == nil {
		t.Error("zero hives accepted")
	}
	req := queenOnly(10, time.Hour)
	req.Services = nil
	if _, err := Optimize(req, opts); err == nil {
		t.Error("empty bundle accepted")
	}
	if _, err := Optimize(queenOnly(10, 0), opts); err == nil {
		t.Error("zero staleness accepted")
	}
	if _, err := Optimize(queenOnly(10, time.Hour), Options{}); err == nil {
		t.Error("empty search space accepted")
	}
}

func TestOptimizeRespectsStaleness(t *testing.T) {
	res, err := Optimize(queenOnly(50, 20*time.Minute), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Period > 20*time.Minute {
		t.Fatalf("best period %v violates the 20-minute staleness bound", res.Best.Period)
	}
	for _, c := range res.Frontier {
		if c.Period > 20*time.Minute {
			t.Fatalf("frontier period %v violates the bound", c.Period)
		}
	}
}

func TestOptimizeInfeasibleStaleness(t *testing.T) {
	if _, err := Optimize(queenOnly(10, time.Minute), DefaultOptions()); err == nil {
		t.Fatal("1-minute staleness should be infeasible on the ladder")
	}
}

func TestOptimizePrefersSlowCadenceForEnergy(t *testing.T) {
	// With a loose staleness bound, the cheapest daily energy comes from
	// the slowest allowed period.
	res, err := Optimize(queenOnly(50, 3*time.Hour), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Period != 2*time.Hour {
		t.Fatalf("best period = %v, want the 2-hour ladder top", res.Best.Period)
	}
}

func TestOptimizeSmallFleetStaysAtEdge(t *testing.T) {
	res, err := Optimize(queenOnly(5, time.Hour), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for k, p := range res.Best.Plan.Decisions {
		if p != routine.EdgeOnly {
			t.Fatalf("%v offloaded for a 5-hive fleet", k)
		}
	}
	if res.Best.Servers != 0 {
		t.Fatalf("servers = %d for an all-edge plan", res.Best.Servers)
	}
}

func TestOptimizeLargeFleetOffloadsHeavyBundle(t *testing.T) {
	req := Requirements{
		Hives:        3000,
		Services:     []services.Kind{services.QueenDetection, services.BeeCounting},
		MaxStaleness: time.Hour,
	}
	res, err := Optimize(req, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Plan.Decisions[services.BeeCounting] != routine.EdgeCloud {
		t.Fatal("bee counting not offloaded at 3000 hives")
	}
	if res.Best.Servers < 1 {
		t.Fatal("no servers counted despite offloading")
	}
}

func TestFrontierIsPareto(t *testing.T) {
	res, err := Optimize(queenOnly(500, 3*time.Hour), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Frontier) == 0 {
		t.Fatal("empty frontier")
	}
	for i := 1; i < len(res.Frontier); i++ {
		prev, cur := res.Frontier[i-1], res.Frontier[i]
		if cur.Period <= prev.Period {
			t.Fatal("frontier periods not increasing")
		}
		if cur.PerDay >= prev.PerDay {
			t.Fatal("frontier energy not decreasing: staler points must be cheaper")
		}
	}
	// The frontier's cheapest point is the optimizer's best.
	last := res.Frontier[len(res.Frontier)-1]
	if last.PerDay != res.Best.PerDay {
		t.Fatalf("frontier end %v J/day != best %v J/day", last.PerDay, res.Best.PerDay)
	}
}

func TestOptimizeCountsGrid(t *testing.T) {
	res, err := Optimize(queenOnly(50, 3*time.Hour), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// All 6 periods pass the staleness bound; 6 capacities each.
	if res.Evaluated != 36 {
		t.Fatalf("evaluated = %d, want 36", res.Evaluated)
	}
}

func TestOptimizeWithLosses(t *testing.T) {
	req := queenOnly(2000, time.Hour)
	req.Losses = core.PaperLosses(true, false, false)
	res, err := Optimize(req, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	noLoss, err := Optimize(queenOnly(2000, time.Hour), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if float64(res.Best.PerDay) < float64(noLoss.Best.PerDay)-1e-9 {
		t.Fatal("losses made the optimum cheaper")
	}
}
