// Package optimizer closes the loop the paper opens: given an apiary and
// a service bundle, search the orchestration space — wake-up period,
// server slot capacity, and per-service placements — for the
// configuration that minimizes energy subject to the beekeeper's
// freshness requirement (how stale the newest data may become).
//
// The search space is small but rugged (capacity steps, slot ceilings,
// placement flips), so the optimizer enumerates the discrete grid
// exactly, using the analytic scale model per point, and reports the
// full Pareto frontier between energy and data freshness alongside the
// single optimum.
package optimizer

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"beesim/internal/core"
	"beesim/internal/obs"
	"beesim/internal/parallel"
	"beesim/internal/routine"
	"beesim/internal/services"
	"beesim/internal/units"
)

// Requirements state what the beekeeper needs.
type Requirements struct {
	// Hives is the fleet size.
	Hives int
	// Services is the bundle every hive must run each cycle.
	Services []services.Kind
	// MaxStaleness bounds the wake-up period: data may never be older
	// than this.
	MaxStaleness time.Duration
	// Losses models the deployment's imperfections.
	Losses core.Losses
}

// Options bound the search space.
type Options struct {
	// Periods are the candidate wake-up periods (defaults to the
	// Figure 3 ladder).
	Periods []time.Duration
	// Capacities are the candidate per-slot client capacities.
	Capacities []int
	// Metrics, when non-nil, receives the search's candidate/infeasible
	// counters, the per-hive energy histogram over feasible candidates,
	// and the frontier-size gauge.
	Metrics *obs.Registry
	// Workers bounds the fan-out of the grid evaluation: 0 uses the
	// process default (parallel.Default), 1 forces the serial legacy
	// path. The result and every metric are byte-identical for any
	// worker count — candidates are scored independently and all
	// observable side effects commit in a serial pass in grid order.
	Workers int
}

// Metric names emitted by an instrumented search.
const (
	MetricCandidates   = "optimizer_candidates_total"
	MetricInfeasible   = "optimizer_infeasible_total"
	MetricFrontierSize = "optimizer_frontier_size"
	MetricPerHiveJ     = "optimizer_perhive_j"
)

// DefaultOptions search the paper's studied space.
func DefaultOptions() Options {
	return Options{
		Periods:    []time.Duration{5 * time.Minute, 10 * time.Minute, 15 * time.Minute, 30 * time.Minute, 60 * time.Minute, 120 * time.Minute},
		Capacities: []int{10, 15, 20, 26, 35, 50},
	}
}

// Candidate is one evaluated configuration.
type Candidate struct {
	Period      time.Duration
	MaxParallel int
	Plan        services.PlacementPlan
	// PerHive is the per-cycle energy per hive (edge + server share).
	PerHive units.Joules
	// PerDay is the fleet's daily energy.
	PerDay units.Joules
	// Servers used by the plan's cloud-placed services (0 if all edge).
	Servers int
}

// anyCloud reports whether the candidate offloads anything.
func (c Candidate) anyCloud() bool {
	for _, p := range c.Plan.Decisions {
		if p == routine.EdgeCloud {
			return true
		}
	}
	return false
}

// Result is the optimizer's output.
type Result struct {
	// Best is the feasible candidate with the least daily energy.
	Best Candidate
	// Frontier is the energy/staleness Pareto frontier over feasible
	// candidates, ordered by period.
	Frontier []Candidate
	// Evaluated counts grid points; Infeasible counts rejections.
	Evaluated  int
	Infeasible int
}

// Optimize searches the grid.
func Optimize(req Requirements, opts Options) (Result, error) {
	if req.Hives <= 0 {
		return Result{}, errors.New("optimizer: need at least one hive")
	}
	if len(req.Services) == 0 {
		return Result{}, errors.New("optimizer: empty service bundle")
	}
	if req.MaxStaleness <= 0 {
		return Result{}, errors.New("optimizer: non-positive staleness bound")
	}
	if len(opts.Periods) == 0 || len(opts.Capacities) == 0 {
		return Result{}, errors.New("optimizer: empty search space")
	}

	// Flatten the (period, capacity) grid to indexable points, dropping
	// periods that violate the freshness bound regardless of placement.
	type gridPoint struct {
		period time.Duration
		maxPar int
	}
	var grid []gridPoint
	for _, period := range opts.Periods {
		if period > req.MaxStaleness {
			continue
		}
		for _, maxPar := range opts.Capacities {
			grid = append(grid, gridPoint{period: period, maxPar: maxPar})
		}
	}

	// Score every grid point in parallel. Scoring is pure (PlanBundle
	// and the analytic scale model), so only the serial commit below
	// touches metrics — keeping counter order and histogram float sums
	// independent of the worker count.
	type gridEval struct {
		cand       Candidate
		infeasible bool
	}
	workers := parallel.Resolve(opts.Workers)
	evals, err := parallel.Map(workers, len(grid), func(i int) (gridEval, error) {
		pt := grid[i]
		bundle := services.Bundle{Kinds: req.Services, Period: pt.period}
		plan, err := services.PlanBundle(bundle, req.Hives,
			core.DefaultServer(pt.maxPar), req.Losses)
		if err != nil {
			return gridEval{infeasible: true}, nil
		}
		cand := Candidate{
			Period:      pt.period,
			MaxParallel: pt.maxPar,
			Plan:        plan,
			PerHive:     plan.TotalPerClient(),
		}
		cycles := float64(24*time.Hour) / float64(pt.period)
		cand.PerDay = units.Joules(float64(cand.PerHive) * cycles * float64(req.Hives))
		if cand.anyCloud() {
			cand.Servers = serversFor(req, pt.period, pt.maxPar)
		}
		return gridEval{cand: cand}, nil
	})
	if err != nil {
		return Result{}, err
	}

	parallel.Record(opts.Metrics, workers)
	mCandidates := opts.Metrics.Counter(MetricCandidates)
	mInfeasible := opts.Metrics.Counter(MetricInfeasible)
	hPerHive := opts.Metrics.Histogram(MetricPerHiveJ)

	var res Result
	var feasible []Candidate
	for _, ev := range evals {
		res.Evaluated++
		mCandidates.Inc()
		if ev.infeasible {
			res.Infeasible++
			mInfeasible.Inc()
			continue
		}
		hPerHive.Observe(float64(ev.cand.PerHive))
		feasible = append(feasible, ev.cand)
	}
	if len(feasible) == 0 {
		return Result{}, fmt.Errorf("optimizer: no feasible configuration within %v staleness",
			req.MaxStaleness)
	}

	// Best: least daily energy; ties broken toward fresher data.
	sort.Slice(feasible, func(i, j int) bool {
		if feasible[i].PerDay != feasible[j].PerDay {
			return feasible[i].PerDay < feasible[j].PerDay
		}
		return feasible[i].Period < feasible[j].Period
	})
	res.Best = feasible[0]

	// Pareto frontier over (period, daily energy): keep candidates not
	// dominated by a fresher-or-equal, cheaper-or-equal alternative.
	sort.Slice(feasible, func(i, j int) bool {
		if feasible[i].Period != feasible[j].Period {
			return feasible[i].Period < feasible[j].Period
		}
		return feasible[i].PerDay < feasible[j].PerDay
	})
	bestSoFar := units.Joules(0)
	for _, c := range feasible {
		if len(res.Frontier) > 0 {
			last := res.Frontier[len(res.Frontier)-1]
			if c.Period == last.Period {
				continue // only the cheapest per period
			}
			if c.PerDay >= bestSoFar {
				continue // dominated: staler and not cheaper
			}
		}
		res.Frontier = append(res.Frontier, c)
		bestSoFar = c.PerDay
	}
	opts.Metrics.Gauge(MetricFrontierSize).Set(float64(len(res.Frontier)))
	return res, nil
}

// serversFor estimates the server count the cloud-placed services need,
// using the heaviest service's slot shape (services share the upload
// window conservatively).
func serversFor(req Requirements, period time.Duration, maxPar int) int {
	worst := 0
	for _, k := range req.Services {
		p, err := services.Catalog(k)
		if err != nil {
			continue
		}
		svc, err := p.OrchestrationService(period)
		if err != nil {
			continue
		}
		spec := core.ServerSpec{IdlePower: 44.6, MaxParallel: maxPar, Period: period}
		capacity, err := spec.Capacity(svc, req.Losses)
		if err != nil || capacity <= 0 {
			continue
		}
		n := (req.Hives + capacity - 1) / capacity
		if n > worst {
			worst = n
		}
	}
	return worst
}
