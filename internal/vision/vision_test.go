package vision

import (
	"math"
	"testing"
)

func TestNewGrayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewGray(0,5) did not panic")
		}
	}()
	NewGray(0, 5)
}

func TestGraySetClamps(t *testing.T) {
	g := NewGray(4, 4)
	g.Set(1, 1, 2.5)
	if g.At(1, 1) != 1 {
		t.Fatalf("over-bright pixel = %v", g.At(1, 1))
	}
	g.Set(2, 2, -3)
	if g.At(2, 2) != 0 {
		t.Fatalf("negative pixel = %v", g.At(2, 2))
	}
}

func TestSynthesizeValidation(t *testing.T) {
	if _, err := Synthesize(SceneConfig{W: 8, H: 8, Bees: 1}); err == nil {
		t.Error("tiny image accepted")
	}
	if _, err := Synthesize(SceneConfig{W: 100, H: 100, Bees: -1}); err == nil {
		t.Error("negative bees accepted")
	}
	cfg := DefaultScene(3)
	cfg.PollenFraction = 1.5
	if _, err := Synthesize(cfg); err == nil {
		t.Error("pollen fraction > 1 accepted")
	}
}

func TestSynthesizeGroundTruth(t *testing.T) {
	cfg := DefaultScene(8)
	cfg.Seed = 3
	scene, err := Synthesize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(scene.Bees) != 8 {
		t.Fatalf("bees = %d", len(scene.Bees))
	}
	for _, v := range scene.Image.Pix {
		if v < 0 || v > 1 {
			t.Fatalf("pixel %v out of [0,1]", v)
		}
	}
	// Bee centers must be dark, board corners bright.
	for _, b := range scene.Bees {
		if c := scene.Image.At(int(b.X), int(b.Y)); c > 0.5 {
			t.Fatalf("bee center brightness %v, want dark", c)
		}
	}
	if corner := scene.Image.At(2, 2); corner < 0.6 {
		t.Fatalf("board corner brightness %v, want bright", corner)
	}
}

func TestOtsuSeparatesBimodal(t *testing.T) {
	g := NewGray(64, 64)
	for i := range g.Pix {
		if i%5 == 0 {
			g.Pix[i] = 0.15
		} else {
			g.Pix[i] = 0.85
		}
	}
	th := OtsuThreshold(g)
	if th <= 0.15 || th >= 0.85 {
		t.Fatalf("Otsu threshold = %v, want between the modes", th)
	}
}

func TestDarkBlobsFindsSquares(t *testing.T) {
	g := NewGray(64, 64)
	for i := range g.Pix {
		g.Pix[i] = 0.9
	}
	// Two 5x5 dark squares.
	for _, origin := range [][2]int{{10, 10}, {40, 30}} {
		for y := 0; y < 5; y++ {
			for x := 0; x < 5; x++ {
				g.Set(origin[0]+x, origin[1]+y, 0.1)
			}
		}
	}
	blobs := DarkBlobs(g, 0.5, 10, 100)
	if len(blobs) != 2 {
		t.Fatalf("blobs = %d, want 2", len(blobs))
	}
	for _, b := range blobs {
		if b.Area != 25 {
			t.Errorf("blob area = %d, want 25", b.Area)
		}
	}
	// Centroid of the first square is (12, 12).
	if math.Abs(blobs[0].CX-12) > 0.01 || math.Abs(blobs[0].CY-12) > 0.01 {
		t.Errorf("centroid = (%v,%v), want (12,12)", blobs[0].CX, blobs[0].CY)
	}
}

func TestDarkBlobsAreaFilter(t *testing.T) {
	g := NewGray(64, 64)
	for i := range g.Pix {
		g.Pix[i] = 0.9
	}
	g.Set(5, 5, 0.1) // single dark pixel: below min area
	blobs := DarkBlobs(g, 0.5, 5, 100)
	if len(blobs) != 0 {
		t.Fatalf("speck passed the area filter: %+v", blobs)
	}
}

func TestCountBeesEmptyBoard(t *testing.T) {
	scene, err := Synthesize(DefaultScene(0))
	if err != nil {
		t.Fatal(err)
	}
	if n := CountBees(scene.Image); n > 1 {
		t.Fatalf("counted %d bees on an empty board", n)
	}
}

func TestCountBeesAccuracy(t *testing.T) {
	for _, truth := range []int{3, 8, 15} {
		for seed := uint64(1); seed <= 3; seed++ {
			cfg := DefaultScene(truth)
			cfg.Seed = seed
			scene, err := Synthesize(cfg)
			if err != nil {
				t.Fatal(err)
			}
			got := CountBees(scene.Image)
			tol := 1 + truth/8
			if got < truth-tol || got > truth+tol {
				t.Errorf("seed %d: counted %d bees, truth %d (±%d)", seed, got, truth, tol)
			}
		}
	}
}

func TestDetectPollenTracksFraction(t *testing.T) {
	// All-pollen vs no-pollen boards must separate clearly.
	all := DefaultScene(10)
	all.PollenFraction = 1
	all.Seed = 5
	none := DefaultScene(10)
	none.PollenFraction = 0
	none.Seed = 5
	sceneAll, err := Synthesize(all)
	if err != nil {
		t.Fatal(err)
	}
	sceneNone, err := Synthesize(none)
	if err != nil {
		t.Fatal(err)
	}
	gotAll := DetectPollen(sceneAll.Image)
	gotNone := DetectPollen(sceneNone.Image)
	if gotAll < 6 {
		t.Errorf("all-pollen board detected %d/10", gotAll)
	}
	if gotNone > 2 {
		t.Errorf("no-pollen board detected %d false positives", gotNone)
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	a, err := Synthesize(DefaultScene(5))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Synthesize(DefaultScene(5))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Image.Pix {
		if a.Image.Pix[i] != b.Image.Pix[i] {
			t.Fatal("same-seed scenes differ")
		}
	}
}
