// Package vision implements the image side of the service catalog: the
// paper's camera "is placed at one end of the entrance of the beehive
// and faces the other end to take pictures of the whole bees' takeoff
// and landing area", feeding services like bee counting and pollen
// detection.
//
// The package provides a synthetic entrance-image generator (the
// deployment's camera module substitute) and classical, from-scratch
// computer vision to run the services: Otsu thresholding, connected
// components, blob filtering, and a pollen-spot detector. Everything
// operates on grayscale images in [0, 1].
package vision

import (
	"errors"
	"fmt"
	"math"

	"beesim/internal/rng"
)

// Gray is a grayscale image with pixels in [0, 1], row-major.
type Gray struct {
	W, H int
	Pix  []float64
}

// NewGray allocates a zeroed image.
func NewGray(w, h int) *Gray {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("vision: invalid image size %dx%d", w, h))
	}
	return &Gray{W: w, H: h, Pix: make([]float64, w*h)}
}

// At returns the pixel at (x, y).
func (g *Gray) At(x, y int) float64 { return g.Pix[y*g.W+x] }

// Set stores v at (x, y), clamped to [0, 1].
func (g *Gray) Set(x, y int, v float64) {
	if v < 0 {
		v = 0
	}
	if v > 1 {
		v = 1
	}
	g.Pix[y*g.W+x] = v
}

// Bee is the ground truth of one synthesized bee.
type Bee struct {
	X, Y float64 // center
	// Angle is the body orientation in radians.
	Angle float64
	// Length and Width are the body semi-axes in pixels.
	Length, Width float64
	// Pollen marks a visible pollen load on the hind legs.
	Pollen bool
}

// SceneConfig shapes an entrance image.
type SceneConfig struct {
	W, H int
	// Bees is the number of bees on the board.
	Bees int
	// PollenFraction is the probability each bee carries visible pollen.
	PollenFraction float64
	// Noise is the sensor noise sigma.
	Noise float64
	Seed  uint64
}

// DefaultScene matches the deployed camera's aspect at a tractable size.
func DefaultScene(bees int) SceneConfig {
	return SceneConfig{W: 200, H: 150, Bees: bees, PollenFraction: 0.3, Noise: 0.02, Seed: 1}
}

// Scene is a synthesized entrance image with its ground truth.
type Scene struct {
	Image *Gray
	Bees  []Bee
}

// Synthesize renders an entrance image: a bright wooden landing board,
// dark bee bodies (ellipses with a head-thorax-abdomen brightness
// profile), optional pollen spots, vignetting and sensor noise.
func Synthesize(cfg SceneConfig) (*Scene, error) {
	if cfg.W < 32 || cfg.H < 32 {
		return nil, errors.New("vision: image too small")
	}
	if cfg.Bees < 0 {
		return nil, errors.New("vision: negative bee count")
	}
	if cfg.PollenFraction < 0 || cfg.PollenFraction > 1 {
		return nil, errors.New("vision: pollen fraction out of [0,1]")
	}
	r := rng.New(cfg.Seed)
	img := NewGray(cfg.W, cfg.H)

	// Landing board: bright with a soft vertical gradient and grain.
	for y := 0; y < cfg.H; y++ {
		for x := 0; x < cfg.W; x++ {
			base := 0.78 + 0.08*float64(y)/float64(cfg.H)
			grain := 0.03 * math.Sin(float64(x)*0.7+3*math.Sin(float64(y)*0.05))
			img.Set(x, y, base+grain)
		}
	}

	// Place bees without heavy overlap (rejection sampling).
	scene := &Scene{Image: img}
	const margin = 10
	for len(scene.Bees) < cfg.Bees {
		b := Bee{
			X:      r.Range(margin, float64(cfg.W-margin)),
			Y:      r.Range(margin, float64(cfg.H-margin)),
			Angle:  r.Range(0, math.Pi),
			Length: r.Range(5.5, 7.5),
			Width:  r.Range(2.2, 3.2),
			Pollen: r.Float64() < cfg.PollenFraction,
		}
		tooClose := false
		for _, o := range scene.Bees {
			dx, dy := b.X-o.X, b.Y-o.Y
			if dx*dx+dy*dy < 18*18 {
				tooClose = true
				break
			}
		}
		if tooClose {
			continue
		}
		scene.Bees = append(scene.Bees, b)
		drawBee(img, b, r)
	}

	// Sensor noise.
	if cfg.Noise > 0 {
		for i, v := range img.Pix {
			nv := v + r.Gaussian(0, cfg.Noise)
			if nv < 0 {
				nv = 0
			}
			if nv > 1 {
				nv = 1
			}
			img.Pix[i] = nv
		}
	}
	return scene, nil
}

// drawBee renders one bee as a dark oriented ellipse with a brighter
// thorax band and an optional bright pollen dot.
func drawBee(img *Gray, b Bee, r *rng.Source) {
	cosA, sinA := math.Cos(b.Angle), math.Sin(b.Angle)
	x0 := int(b.X - b.Length - 2)
	x1 := int(b.X + b.Length + 2)
	y0 := int(b.Y - b.Length - 2)
	y1 := int(b.Y + b.Length + 2)
	for y := max(0, y0); y <= min(img.H-1, y1); y++ {
		for x := max(0, x0); x <= min(img.W-1, x1); x++ {
			// Body frame coordinates.
			dx, dy := float64(x)-b.X, float64(y)-b.Y
			u := dx*cosA + dy*sinA
			v := -dx*sinA + dy*cosA
			d := (u*u)/(b.Length*b.Length) + (v*v)/(b.Width*b.Width)
			if d <= 1 {
				// Dark abdomen, slightly lighter thorax stripe.
				shade := 0.12
				if u > -b.Length*0.2 && u < b.Length*0.25 {
					shade = 0.30
				}
				img.Set(x, y, shade+0.04*r.Norm()*0.2)
			}
		}
	}
	if b.Pollen {
		// Pollen basket: a small bright dot beside the abdomen.
		px := b.X - 0.5*b.Length*cosA - (b.Width+1.2)*sinA
		py := b.Y - 0.5*b.Length*sinA + (b.Width+1.2)*cosA
		for y := int(py) - 1; y <= int(py)+1; y++ {
			for x := int(px) - 1; x <= int(px)+1; x++ {
				if x >= 0 && x < img.W && y >= 0 && y < img.H {
					img.Set(x, y, 0.95)
				}
			}
		}
	}
}

// OtsuThreshold computes the Otsu optimal split of the image histogram,
// returning a threshold in [0, 1].
func OtsuThreshold(img *Gray) float64 {
	const bins = 256
	var hist [bins]int
	for _, v := range img.Pix {
		i := int(v * (bins - 1))
		hist[i]++
	}
	total := len(img.Pix)
	var sumAll float64
	for i, c := range hist {
		sumAll += float64(i) * float64(c)
	}
	var sumB, wB float64
	bestVar := -1.0
	bestLo, bestHi := 0, 0
	for t := 0; t < bins; t++ {
		wB += float64(hist[t])
		if wB == 0 {
			continue
		}
		wF := float64(total) - wB
		if wF == 0 {
			break
		}
		sumB += float64(t) * float64(hist[t])
		mB := sumB / wB
		mF := (sumAll - sumB) / wF
		between := wB * wF * (mB - mF) * (mB - mF)
		// Track the plateau of maxima: with a gap between the modes, every
		// split inside the gap scores identically; the conventional choice
		// is the plateau's midpoint.
		switch {
		case between > bestVar*(1+1e-12):
			bestVar = between
			bestLo, bestHi = t, t
		case between >= bestVar*(1-1e-12):
			bestHi = t
		}
	}
	mid := float64(bestLo+bestHi) / 2
	// The best split keeps bins <= mid in the lower class; the returned
	// threshold separates the classes strictly.
	return (mid + 0.5) / (bins - 1)
}

// Blob is one connected dark region.
type Blob struct {
	Area int
	// MinX..MaxY is the bounding box.
	MinX, MinY, MaxX, MaxY int
	// CX, CY is the centroid.
	CX, CY float64
}

// DarkBlobs thresholds the image (pixels below t are foreground) and
// extracts 4-connected components with area between minArea and maxArea.
func DarkBlobs(img *Gray, t float64, minArea, maxArea int) []Blob {
	visited := make([]bool, len(img.Pix))
	var blobs []Blob
	stack := make([]int, 0, 256)
	for start := range img.Pix {
		if visited[start] || img.Pix[start] >= t {
			continue
		}
		// Flood fill.
		blob := Blob{MinX: img.W, MinY: img.H}
		var sumX, sumY float64
		stack = stack[:0]
		stack = append(stack, start)
		visited[start] = true
		for len(stack) > 0 {
			idx := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			x, y := idx%img.W, idx/img.W
			blob.Area++
			sumX += float64(x)
			sumY += float64(y)
			if x < blob.MinX {
				blob.MinX = x
			}
			if x > blob.MaxX {
				blob.MaxX = x
			}
			if y < blob.MinY {
				blob.MinY = y
			}
			if y > blob.MaxY {
				blob.MaxY = y
			}
			for _, d := range [4][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
				nx, ny := x+d[0], y+d[1]
				if nx < 0 || nx >= img.W || ny < 0 || ny >= img.H {
					continue
				}
				nidx := ny*img.W + nx
				if !visited[nidx] && img.Pix[nidx] < t {
					visited[nidx] = true
					stack = append(stack, nidx)
				}
			}
		}
		if blob.Area >= minArea && blob.Area <= maxArea {
			blob.CX = sumX / float64(blob.Area)
			blob.CY = sumY / float64(blob.Area)
			blobs = append(blobs, blob)
		}
	}
	return blobs
}

// CountBees runs the counting service on an entrance image: Otsu
// threshold, connected components, and an area filter sized to bee
// bodies. Merged pairs are split by area (a blob twice the median bee
// area counts as two).
func CountBees(img *Gray) int {
	t := beeThreshold(img)
	// Bee bodies at the synthesizer's scale are ~40-70 px.
	blobs := DarkBlobs(img, t, 20, 400)
	if len(blobs) == 0 {
		return 0
	}
	// Median area as the single-bee reference.
	areas := make([]int, len(blobs))
	for i, b := range blobs {
		areas[i] = b.Area
	}
	median := medianInt(areas)
	count := 0
	for _, b := range blobs {
		n := int(math.Round(float64(b.Area) / float64(median)))
		if n < 1 {
			n = 1
		}
		count += n
	}
	return count
}

// DetectPollen reports how many detected bees carry a bright pollen spot
// within their padded bounding box.
func DetectPollen(img *Gray) int {
	t := beeThreshold(img)
	blobs := DarkBlobs(img, t, 20, 400)
	count := 0
	for _, b := range blobs {
		if hasBrightSpot(img, b) {
			count++
		}
	}
	return count
}

// beeThreshold is Otsu clamped to the physically meaningful range: bee
// bodies render below ~0.4 brightness and the board above ~0.6. On a
// bee-free (unimodal) image Otsu splits the board texture instead; the
// clamp keeps the foreground class empty there.
func beeThreshold(img *Gray) float64 {
	t := OtsuThreshold(img)
	if t > 0.55 {
		t = 0.55
	}
	return t
}

// hasBrightSpot scans the padded box around a blob for pollen-bright
// pixels (well above the board's brightness).
func hasBrightSpot(img *Gray, b Blob) bool {
	const pad = 4
	bright := 0
	for y := max(0, b.MinY-pad); y <= min(img.H-1, b.MaxY+pad); y++ {
		for x := max(0, b.MinX-pad); x <= min(img.W-1, b.MaxX+pad); x++ {
			if img.At(x, y) > 0.93 {
				bright++
			}
		}
	}
	return bright >= 4
}

func medianInt(xs []int) int {
	sorted := append([]int(nil), xs...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	return sorted[len(sorted)/2]
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
