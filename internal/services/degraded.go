// Availability-aware bundle planning: the same per-service placement
// question as PlanBundle, answered for a degraded uplink. Each
// cloud-placed candidate pays the expected retry/fallback tax of the
// link, so a service whose offload advantage is slimmer than the tax
// flips back to edge placement — availability constraints change
// orchestration decisions, not just their cost.

package services

import (
	"fmt"

	"beesim/internal/core"
	"beesim/internal/faults"
	"beesim/internal/units"
)

// DegradedLink describes the uplink quality a placement decision must
// survive: the per-attempt delivery probability and the retry budget
// that wraps it.
type DegradedLink struct {
	// Availability is the probability that one send attempt succeeds.
	Availability float64
	// Retry is the policy wrapped around each upload.
	Retry faults.RetryPolicy
}

// Validate rejects out-of-range availabilities and invalid policies.
func (dl DegradedLink) Validate() error {
	if !(dl.Availability >= 0 && dl.Availability <= 1) {
		return fmt.Errorf("services: availability %g outside [0, 1]", dl.Availability)
	}
	return dl.Retry.Validate()
}

// Tax returns the expected extra edge energy per cycle for a
// cloud-placed service with the given one-attempt upload cost and
// local-inference fallback cost.
func (dl DegradedLink) Tax(upload, fallback units.Joules) units.Joules {
	return units.Joules(dl.Retry.RetryTax(dl.Availability, float64(upload), float64(fallback)))
}

// PlanBundleDegraded decides placements like PlanBundle, but under a
// degraded uplink: every cloud-placement candidate is evaluated with
// its cycle cost raised by the link's expected retry tax (extra
// attempts re-paying the upload, undelivered cycles paying the local
// fallback). At Availability = 1 the tax vanishes and the plan equals
// PlanBundle's exactly.
func PlanBundleDegraded(b Bundle, n int, spec core.ServerSpec, l core.Losses, dl DegradedLink) (PlacementPlan, error) {
	if err := dl.Validate(); err != nil {
		return PlacementPlan{}, err
	}
	return planBundle(b, n, spec, l, &dl)
}
