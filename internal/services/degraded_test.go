package services

import (
	"reflect"
	"testing"
	"time"

	"beesim/internal/core"
	"beesim/internal/faults"
	"beesim/internal/routine"
)

func perfectLink() DegradedLink {
	return DegradedLink{Availability: 1, Retry: faults.DefaultRetryPolicy()}
}

func TestDegradedLinkValidate(t *testing.T) {
	if err := perfectLink().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []DegradedLink{
		{Availability: -0.1, Retry: faults.DefaultRetryPolicy()},
		{Availability: 1.1, Retry: faults.DefaultRetryPolicy()},
		{Availability: 0.5}, // zero retry policy is invalid
	}
	for i, dl := range bad {
		if err := dl.Validate(); err == nil {
			t.Errorf("bad link %d accepted: %+v", i, dl)
		}
	}
}

// TestPlanBundleDegradedPerfectLinkMatchesPlain: at availability 1 the
// retry tax vanishes and the degraded planner reproduces PlanBundle
// exactly.
func TestPlanBundleDegradedPerfectLinkMatchesPlain(t *testing.T) {
	b := Bundle{
		Kinds:  []Kind{QueenDetection, PollenDetection, BeeCounting, SwarmPrediction},
		Period: 30 * time.Minute,
	}
	for _, n := range []int{5, 400, 3000} {
		plain, err := PlanBundle(b, n, core.DefaultServer(35), core.Losses{})
		if err != nil {
			t.Fatal(err)
		}
		degraded, err := PlanBundleDegraded(b, n, core.DefaultServer(35), core.Losses{}, perfectLink())
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(plain, degraded) {
			t.Fatalf("n=%d: perfect-link degraded plan diverged:\n%+v\n%+v", n, plain, degraded)
		}
	}
}

// TestPlanBundleDegradedFlipsPlacement: a service the planner offloads
// on a healthy link flips back to edge when the link is bad enough —
// availability changes orchestration decisions, not just their cost.
func TestPlanBundleDegradedFlipsPlacement(t *testing.T) {
	b := Bundle{
		Kinds:  []Kind{QueenDetection, PollenDetection, BeeCounting, SwarmPrediction},
		Period: 30 * time.Minute,
	}
	n := 3000
	spec := core.DefaultServer(35)
	healthy, err := PlanBundleDegraded(b, n, spec, core.Losses{}, perfectLink())
	if err != nil {
		t.Fatal(err)
	}
	if healthy.Decisions[BeeCounting] != routine.EdgeCloud {
		t.Fatalf("healthy link does not offload bee counting: %+v", healthy.Decisions)
	}
	lossy := DegradedLink{Availability: 0.05, Retry: faults.DefaultRetryPolicy()}
	degraded, err := PlanBundleDegraded(b, n, spec, core.Losses{}, lossy)
	if err != nil {
		t.Fatal(err)
	}
	flipped := false
	for k, placement := range healthy.Decisions {
		if placement == routine.EdgeCloud && degraded.Decisions[k] == routine.EdgeOnly {
			flipped = true
		}
		if placement == routine.EdgeOnly && degraded.Decisions[k] == routine.EdgeCloud {
			t.Fatalf("%v moved TO the cloud as the link degraded", k)
		}
	}
	if !flipped {
		t.Fatalf("no placement flipped to edge at 5%% availability:\nhealthy: %+v\ndegraded: %+v",
			healthy.Decisions, degraded.Decisions)
	}
}

// TestDegradedTaxMonotone: a worse link never lowers the planning tax.
func TestDegradedTaxMonotone(t *testing.T) {
	retry := faults.DefaultRetryPolicy()
	var prev float64 = -1
	for _, a := range []float64{1, 0.8, 0.6, 0.4, 0.2, 0} {
		tax := float64(DegradedLink{Availability: a, Retry: retry}.Tax(100, 200))
		if tax < prev {
			t.Fatalf("tax fell from %g to %g as availability dropped to %g", prev, tax, a)
		}
		prev = tax
	}
	if zero := (DegradedLink{Availability: 1, Retry: retry}).Tax(100, 200); zero != 0 {
		t.Fatalf("perfect link taxed %v", zero)
	}
}
