package services

import (
	"math"
	"testing"
	"time"

	"beesim/internal/core"
	"beesim/internal/ledger"
	"beesim/internal/power"
	"beesim/internal/routine"
	"beesim/internal/units"
)

func powerPi() power.Pi3B { return power.DefaultPi3B() }

func TestCatalogCoversAllKinds(t *testing.T) {
	for _, k := range AllKinds() {
		p, err := Catalog(k)
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if p.Kind != k {
			t.Errorf("%v: profile kind mismatch", k)
		}
		if p.Payload <= 0 || p.EdgeFLOPs <= 0 || p.MinPeriod <= 0 {
			t.Errorf("%v: incomplete profile %+v", k, p)
		}
		if p.CloudExec.Energy <= 0 || p.CloudExec.Duration <= 0 {
			t.Errorf("%v: missing cloud exec", k)
		}
		if k.String() == "" {
			t.Errorf("kind %d has no name", k)
		}
	}
	if _, err := Catalog(Kind(99)); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestQueenDetectionMatchesPaperCalibration(t *testing.T) {
	p, err := Catalog(QueenDetection)
	if err != nil {
		t.Fatal(err)
	}
	e, d := p.EdgeCost()
	// Table I's CNN row: 94.8 J / 37.6 s.
	if math.Abs(float64(e)-94.8) > 1 {
		t.Errorf("edge cost = %v, want ~94.8 J", e)
	}
	if math.Abs(d.Seconds()-37.6) > 1.5 {
		t.Errorf("edge duration = %v, want ~37.6 s", d)
	}
	svc, err := p.OrchestrationService(5 * time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	// The derived per-cycle totals should land near the measured tables
	// (the payload here is the single audio clip, as in Table II).
	if math.Abs(float64(svc.EdgeOnlyCycle)-367.5) > 10 {
		t.Errorf("edge-only cycle = %v, want ~367.5 J", svc.EdgeOnlyCycle)
	}
	if math.Abs(float64(svc.EdgeCloudCycle)-310) > 15 {
		t.Errorf("edge+cloud cycle = %v, want ~300-320 J", svc.EdgeCloudCycle)
	}
}

func TestHeavierServicesCostMoreAtTheEdge(t *testing.T) {
	var prev float64
	for _, k := range []Kind{SwarmPrediction, QueenDetection, PollenDetection, BeeCounting} {
		p, err := Catalog(k)
		if err != nil {
			t.Fatal(err)
		}
		e, _ := p.EdgeCost()
		if float64(e) <= prev {
			t.Fatalf("%v edge cost %v not above the previous service", k, e)
		}
		prev = float64(e)
	}
}

func TestOrchestrationServicePeriodGuards(t *testing.T) {
	p, err := Catalog(SwarmPrediction)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.OrchestrationService(5 * time.Minute); err == nil {
		t.Error("period below MinPeriod accepted")
	}
	if _, err := p.OrchestrationService(30 * time.Minute); err != nil {
		t.Errorf("valid period rejected: %v", err)
	}
}

func TestHeavyServicesPreferCloudSooner(t *testing.T) {
	// The heavier the edge inference, the fewer clients are needed for
	// the cloud to win. Compare the minimum winning fleet of queen
	// detection vs bee counting at cap 35.
	spec := core.DefaultServer(35)
	minWin := func(k Kind) int {
		p, err := Catalog(k)
		if err != nil {
			t.Fatal(err)
		}
		svc, err := p.OrchestrationService(10 * time.Minute)
		if err != nil {
			t.Fatal(err)
		}
		for n := 10; n <= 4000; n += 10 {
			rec, err := core.Recommend(n, spec, svc, core.Losses{})
			if err != nil {
				t.Fatal(err)
			}
			if rec.Placement == routine.EdgeCloud {
				return n
			}
		}
		return -1
	}
	queen := minWin(QueenDetection)
	counting := minWin(BeeCounting)
	if counting == -1 {
		t.Fatal("bee counting never preferred the cloud")
	}
	if queen != -1 && counting >= queen {
		t.Fatalf("bee counting crossover (%d) not earlier than queen detection (%d)",
			counting, queen)
	}
}

func TestBundleValidate(t *testing.T) {
	good := Bundle{Kinds: []Kind{QueenDetection, PollenDetection}, Period: 10 * time.Minute}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid bundle rejected: %v", err)
	}
	cases := []Bundle{
		{Kinds: nil, Period: 10 * time.Minute},
		{Kinds: []Kind{QueenDetection}, Period: 0},
		{Kinds: []Kind{QueenDetection, QueenDetection}, Period: 10 * time.Minute},
		{Kinds: []Kind{SwarmPrediction}, Period: 5 * time.Minute}, // below MinPeriod
		{Kinds: []Kind{Kind(42)}, Period: time.Hour},
	}
	for i, b := range cases {
		if err := b.Validate(); err == nil {
			t.Errorf("bad bundle %d accepted", i)
		}
	}
}

func TestPlanBundleSmallFleetStaysAtEdge(t *testing.T) {
	b := Bundle{Kinds: []Kind{QueenDetection, SwarmPrediction}, Period: 30 * time.Minute}
	plan, err := PlanBundle(b, 5, core.DefaultServer(35), core.Losses{})
	if err != nil {
		t.Fatal(err)
	}
	for k, placement := range plan.Decisions {
		if placement != routine.EdgeOnly {
			t.Errorf("%v placed at %v for a 5-hive fleet", k, placement)
		}
	}
	if plan.CloudShare != 0 {
		t.Errorf("cloud share = %v for an all-edge plan", plan.CloudShare)
	}
	if plan.EdgeEnergy <= 0 {
		t.Error("plan lost the edge energy")
	}
}

func TestPlanBundleLargeFleetOffloadsHeavyServices(t *testing.T) {
	b := Bundle{
		Kinds:  []Kind{QueenDetection, PollenDetection, BeeCounting, SwarmPrediction},
		Period: 30 * time.Minute,
	}
	plan, err := PlanBundle(b, 3000, core.DefaultServer(35), core.Losses{})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Decisions[BeeCounting] != routine.EdgeCloud {
		t.Error("bee counting not offloaded at 3000 hives")
	}
	if plan.CloudShare <= 0 {
		t.Error("no cloud share despite offloading")
	}
	if plan.TotalPerClient() != plan.EdgeEnergy+plan.CloudShare {
		t.Error("total != edge + cloud share")
	}
}

func TestPlanBundleMixedBeatsAllEdgeForLargeFleets(t *testing.T) {
	// The planner's per-service decisions must not cost more than the
	// naive all-edge bundle.
	b := Bundle{
		Kinds:  []Kind{QueenDetection, PollenDetection, BeeCounting},
		Period: 30 * time.Minute,
	}
	plan, err := PlanBundle(b, 3000, core.DefaultServer(35), core.Losses{})
	if err != nil {
		t.Fatal(err)
	}
	// All-edge cost: collect + all inferences + send results + shutdown,
	// plus the sleep fill.
	pi := powerPi()
	allEdge := float64(pi.WakeAndCollect().Energy + pi.SendResults().Energy + pi.Shutdown().Energy)
	activeDur := pi.WakeAndCollect().Duration + pi.SendResults().Duration + pi.Shutdown().Duration
	for _, k := range b.Kinds {
		p, err := Catalog(k)
		if err != nil {
			t.Fatal(err)
		}
		e, d := p.EdgeCost()
		allEdge += float64(e)
		activeDur += d
	}
	allEdge += float64(pi.Sleep(b.Period - activeDur).Energy)
	if float64(plan.TotalPerClient()) > allEdge {
		t.Fatalf("planned total %v above the naive all-edge total %v",
			plan.TotalPerClient(), allEdge)
	}
}

func TestPlanBundleErrors(t *testing.T) {
	b := Bundle{Kinds: []Kind{QueenDetection}, Period: 10 * time.Minute}
	if _, err := PlanBundle(b, 0, core.DefaultServer(10), core.Losses{}); err == nil {
		t.Error("zero hives accepted")
	}
	bad := Bundle{Kinds: nil, Period: 10 * time.Minute}
	if _, err := PlanBundle(bad, 10, core.DefaultServer(10), core.Losses{}); err == nil {
		t.Error("invalid bundle accepted")
	}
}

func TestPlanBundleRecordLedgerBalancesBreakdown(t *testing.T) {
	b := Bundle{Kinds: AllKinds(), Period: 30 * time.Minute}
	plan, err := PlanBundle(b, 100, core.DefaultServer(35), core.Losses{})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.PerService) != len(b.Kinds) {
		t.Fatalf("PerService has %d entries, want %d", len(plan.PerService), len(b.Kinds))
	}
	// Per-service costs plus shared overhead reassemble the edge total.
	var sum units.Joules
	for _, e := range plan.PerService {
		if e <= 0 {
			t.Fatalf("non-positive per-service energy: %+v", plan.PerService)
		}
		sum += e
	}
	if got := sum + plan.SharedEnergy(); math.Abs(float64(got-plan.EdgeEnergy)) > 1e-9 {
		t.Fatalf("breakdown sums to %v, EdgeEnergy %v", got, plan.EdgeEnergy)
	}

	lg := ledger.New()
	at := time.Date(2023, 4, 10, 6, 0, 0, 0, time.UTC)
	plan.RecordLedger(lg, "cachan-1", at)
	var total float64
	for _, e := range lg.Entries() {
		if e.Store != "" {
			t.Fatalf("plan projection bound to a store: %+v", e)
		}
		total += e.Joules
	}
	want := float64(plan.TotalPerClient())
	if math.Abs(total-want) > 1e-9 {
		t.Fatalf("ledger total %v J, plan per-client %v J", total, want)
	}
	plan.RecordLedger(nil, "h", at) // nil-safe
}
