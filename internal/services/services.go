// Package services is the smart beehive's service catalog. The paper
// focuses its measurements on queen detection but names the wider menu a
// Raspberry Pi 3B+ can run — "pollen detection, counting bees, and swarm
// prediction, among others" — and the orchestration question applies to
// each: every service has its own input payload, edge inference cost and
// cloud execution cost, so each gets its own placement answer.
//
// Costs for the non-measured services are derived from the calibrated
// inference model (internal/power) and each service's input modality:
// image services pay per pixel, audio services per sample, exactly like
// the measured queen detector.
package services

import (
	"errors"
	"fmt"
	"time"

	"beesim/internal/core"
	"beesim/internal/ledger"
	"beesim/internal/netsim"
	"beesim/internal/power"
	"beesim/internal/routine"
	"beesim/internal/units"
)

// Kind identifies a catalog service.
type Kind int

// The catalog.
const (
	// QueenDetection is the paper's measured service: queen presence
	// from one 10-second audio clip.
	QueenDetection Kind = iota
	// PollenDetection classifies pollen-bearing bees in entrance images.
	PollenDetection
	// BeeCounting counts takeoffs/landings in an entrance image burst.
	BeeCounting
	// SwarmPrediction fuses audio (piping) and colony trends to predict
	// swarming days ahead.
	SwarmPrediction
)

// String names the service.
func (k Kind) String() string {
	switch k {
	case QueenDetection:
		return "queen detection"
	case PollenDetection:
		return "pollen detection"
	case BeeCounting:
		return "bee counting"
	case SwarmPrediction:
		return "swarm prediction"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// AllKinds lists the catalog in a stable order.
func AllKinds() []Kind {
	return []Kind{QueenDetection, PollenDetection, BeeCounting, SwarmPrediction}
}

// Profile is one service's resource footprint.
type Profile struct {
	Kind Kind
	// Payload is the data uploaded per cycle in the edge+cloud scenario.
	Payload netsim.Bytes
	// EdgeFLOPs is the arithmetic of one edge inference.
	EdgeFLOPs float64
	// CloudExec is the server-side execution burst.
	CloudExec power.Task
	// MinPeriod is the shortest useful wake-up period (a temperature
	// tracker needs an hour; swarm season may need five minutes).
	MinPeriod time.Duration
}

// Catalog returns the profile for a service kind.
func Catalog(k Kind) (Profile, error) {
	switch k {
	case QueenDetection:
		// The measured service: one audio clip, CNN at 100x100.
		return Profile{
			Kind:      k,
			Payload:   netsim.AudioSample10s,
			EdgeFLOPs: 60e6, // calibrated to Table I's 94.8 J
			CloudExec: power.NewTask("Queen detection model (CNN)", 108, 1.0),
			MinPeriod: 5 * time.Minute,
		}, nil
	case PollenDetection:
		// Five entrance images per cycle; a per-image detector at the
		// camera's native crop costs ~4x the queen CNN at the edge.
		return Profile{
			Kind:      k,
			Payload:   5 * netsim.Image800x600,
			EdgeFLOPs: 240e6,
			CloudExec: power.NewTask("Pollen detection model", 260, 2.4),
			MinPeriod: 10 * time.Minute,
		}, nil
	case BeeCounting:
		// Counting is detection plus tracking over the burst: heavier
		// still, and the most attractive to offload.
		return Profile{
			Kind:      k,
			Payload:   5 * netsim.Image800x600,
			EdgeFLOPs: 400e6,
			CloudExec: power.NewTask("Bee counting model", 410, 3.8),
			MinPeriod: 10 * time.Minute,
		}, nil
	case SwarmPrediction:
		// Audio features plus a light temporal model over cached trends;
		// cheap at the edge, tiny in the cloud.
		return Profile{
			Kind:      k,
			Payload:   netsim.AudioSample10s + netsim.ScalarBatch,
			EdgeFLOPs: 20e6,
			CloudExec: power.NewTask("Swarm prediction model", 35, 0.4),
			MinPeriod: 30 * time.Minute,
		}, nil
	default:
		return Profile{}, fmt.Errorf("services: unknown kind %d", k)
	}
}

// EdgeCost returns the edge inference energy and duration of one run.
func (p Profile) EdgeCost() (units.Joules, time.Duration) {
	return power.DefaultEdgeInference().Cost(p.EdgeFLOPs)
}

// TransferCost returns the nominal upload duration and radio energy for
// the service's payload on the default link.
func (p Profile) TransferCost() (time.Duration, units.Joules, error) {
	cfg := netsim.DefaultConfig()
	cfg.Sigma = 0
	link, err := netsim.NewLink(cfg)
	if err != nil {
		return 0, 0, err
	}
	tr := link.Send(p.Payload)
	return tr.Duration, tr.ExtraEnergy, nil
}

// OrchestrationService converts the profile into a core.Service so the
// paper's scale model answers the placement question for it. period must
// be at least the profile's MinPeriod.
func (p Profile) OrchestrationService(period time.Duration) (core.Service, error) {
	if period < p.MinPeriod {
		return core.Service{}, fmt.Errorf(
			"services: %v needs a period of at least %v, got %v", p.Kind, p.MinPeriod, period)
	}
	pi := power.DefaultPi3B()
	cloud := power.DefaultCloud()

	edgeEnergy, edgeDur := p.EdgeCost()
	collect := pi.WakeAndCollect()
	sendResults := pi.SendResults()
	shutdown := pi.Shutdown()

	transferDur, _, err := p.TransferCost()
	if err != nil {
		return core.Service{}, err
	}
	// Upload energy at the edge: the device runs at the measured
	// send-audio power (which already includes the radio draw) for the
	// transfer duration.
	sendPower := pi.SendAudio().Power()
	uploadEnergy := sendPower.Energy(transferDur)

	activeEdgeOnly := collect.Duration + edgeDur + sendResults.Duration + shutdown.Duration
	activeEdgeCloud := collect.Duration + transferDur + shutdown.Duration
	if activeEdgeOnly >= period || activeEdgeCloud >= period {
		return core.Service{}, fmt.Errorf(
			"services: %v active time exceeds the %v period", p.Kind, period)
	}

	edgeOnly := collect.Energy + edgeEnergy + sendResults.Energy + shutdown.Energy +
		pi.Sleep(period-activeEdgeOnly).Energy
	edgeCloud := collect.Energy + uploadEnergy + shutdown.Energy +
		pi.Sleep(period-activeEdgeCloud).Energy

	recv := cloud.Receive()
	// Receive duration scales with the payload relative to the measured
	// audio upload.
	recvDur := time.Duration(float64(recv.Duration) *
		float64(p.Payload) / float64(netsim.AudioSample10s))

	return core.Service{
		Name:            p.Kind.String(),
		EdgeOnlyCycle:   edgeOnly,
		EdgeCloudCycle:  edgeCloud,
		ReceiveDuration: recvDur,
		ReceivePower:    recv.Power(),
		ExecDuration:    p.CloudExec.Duration,
		ExecPower:       p.CloudExec.Power(),
	}, nil
}

// Bundle is a set of services one smart beehive runs each cycle.
type Bundle struct {
	Kinds  []Kind
	Period time.Duration
}

// Validate checks the bundle is non-empty, deduplicated and period-feasible.
func (b Bundle) Validate() error {
	if len(b.Kinds) == 0 {
		return errors.New("services: empty bundle")
	}
	if b.Period <= 0 {
		return errors.New("services: non-positive period")
	}
	seen := map[Kind]bool{}
	for _, k := range b.Kinds {
		if seen[k] {
			return fmt.Errorf("services: duplicate %v in bundle", k)
		}
		seen[k] = true
		p, err := Catalog(k)
		if err != nil {
			return err
		}
		if b.Period < p.MinPeriod {
			return fmt.Errorf("services: %v needs >= %v, bundle period is %v",
				k, p.MinPeriod, b.Period)
		}
	}
	return nil
}

// PlacementPlan assigns each service of a bundle to a placement.
type PlacementPlan struct {
	Period    time.Duration
	Decisions map[Kind]routine.Placement
	// EdgeEnergy is the edge device's per-cycle total under the plan.
	EdgeEnergy units.Joules
	// CloudShare is the per-client server energy under the plan, for the
	// given fleet size.
	CloudShare units.Joules
	// PerService is each service's incremental edge energy: the
	// inference cost when edge-placed, the upload cost when
	// cloud-placed. The bundle's shared overhead (collect, shutdown,
	// result send, sleep) is EdgeEnergy minus the PerService sum.
	PerService map[Kind]units.Joules
}

// PlanBundle decides, service by service, where a bundle should run for
// a fleet of n hives behind servers of the given spec, then assembles
// the combined cycle: data is collected once, each edge-placed service
// adds its inference, each cloud-placed one its upload, results are sent
// once, and a single sleep fills the remainder — the multi-service
// generalization of the paper's single-service comparison.
func PlanBundle(b Bundle, n int, spec core.ServerSpec, l core.Losses) (PlacementPlan, error) {
	return planBundle(b, n, spec, l, nil)
}

// planBundle is the shared planner: with dl nil every upload succeeds
// first try (the paper's assumption); with dl set each cloud-placement
// candidate carries the degraded link's expected retry tax, both when
// choosing the placement and when pricing the chosen plan.
func planBundle(b Bundle, n int, spec core.ServerSpec, l core.Losses, dl *DegradedLink) (PlacementPlan, error) {
	if err := b.Validate(); err != nil {
		return PlacementPlan{}, err
	}
	if n <= 0 {
		return PlacementPlan{}, errors.New("services: need at least one hive")
	}
	pi := power.DefaultPi3B()
	plan := PlacementPlan{
		Period:     b.Period,
		Decisions:  map[Kind]routine.Placement{},
		PerService: map[Kind]units.Joules{},
	}

	collect := pi.WakeAndCollect()
	shutdown := pi.Shutdown()
	sendResults := pi.SendResults()
	sendPower := pi.SendAudio().Power()

	activeEnergy := collect.Energy + shutdown.Energy
	activeDur := collect.Duration + shutdown.Duration
	anyEdge := false

	for _, k := range b.Kinds {
		p, err := Catalog(k)
		if err != nil {
			return PlacementPlan{}, err
		}
		svc, err := p.OrchestrationService(b.Period)
		if err != nil {
			return PlacementPlan{}, err
		}
		var tax units.Joules
		if dl != nil {
			dur, _, err := p.TransferCost()
			if err != nil {
				return PlacementPlan{}, err
			}
			fallback, _ := p.EdgeCost()
			tax = dl.Tax(sendPower.Energy(dur), fallback)
			svc.EdgeCloudCycle += tax //beelint:allow accumfloat svc is loop-local, one addition per iteration, never carried across iterations
		}
		rec, err := core.Recommend(n, spec, svc, l)
		if err != nil {
			return PlacementPlan{}, err
		}
		plan.Decisions[k] = rec.Placement
		if rec.Placement == routine.EdgeCloud {
			dur, _, err := p.TransferCost()
			if err != nil {
				return PlacementPlan{}, err
			}
			upload := sendPower.Energy(dur) + tax
			activeEnergy += upload //beelint:allow accumfloat loop bounded by the service catalog (4 kinds); error far below audit tolerance
			activeDur += dur
			plan.PerService[k] = upload
			plan.CloudShare += rec.EdgeCloudPerClient - svc.EdgeCloudCycle //beelint:allow accumfloat loop bounded by the service catalog (4 kinds)
		} else {
			e, dur := p.EdgeCost()
			activeEnergy += e //beelint:allow accumfloat loop bounded by the service catalog (4 kinds); error far below audit tolerance
			activeDur += dur
			plan.PerService[k] = e
			anyEdge = true
		}
	}
	if anyEdge {
		activeEnergy += sendResults.Energy
		activeDur += sendResults.Duration
	}
	if activeDur >= b.Period {
		return PlacementPlan{}, fmt.Errorf(
			"services: bundle active time %v exceeds the %v period", activeDur, b.Period)
	}
	plan.EdgeEnergy = activeEnergy + pi.Sleep(b.Period-activeDur).Energy
	return plan, nil
}

// TotalPerClient returns the plan's combined per-client energy.
func (p PlacementPlan) TotalPerClient() units.Joules {
	return p.EdgeEnergy + p.CloudShare
}

// SharedEnergy returns the edge energy not attributable to any single
// service: data collection, shutdown, result send and sleep.
func (p PlacementPlan) SharedEnergy() units.Joules {
	shared := p.EdgeEnergy
	for _, e := range p.PerService {
		shared -= e
	}
	return shared
}

// RecordLedger appends the plan's per-cycle energy breakdown to the
// ledger at virtual time at: one consume entry per service (its
// incremental edge cost, labeled with the placement decision), one for
// the shared cycle overhead, and one for the per-client cloud share.
// All entries are attribution-only — a plan is a projection, not a
// simulated battery flow. A nil ledger records nothing.
func (p PlacementPlan) RecordLedger(lg *ledger.Ledger, hive string, at time.Time) {
	if lg == nil {
		return
	}
	for _, k := range AllKinds() {
		e, ok := p.PerService[k]
		if !ok {
			continue
		}
		lg.Append(ledger.Entry{
			T: at, Hive: hive, Device: "edge", Component: "pi3b",
			Task: fmt.Sprintf("%v (%v)", k, p.Decisions[k]),
			Dir:  ledger.Consume, Joules: float64(e),
		})
	}
	lg.Append(ledger.Entry{
		T: at, Hive: hive, Device: "edge", Component: "pi3b",
		Task: "shared cycle overhead", Dir: ledger.Consume,
		Joules: float64(p.SharedEnergy()), Seconds: p.Period.Seconds(),
	})
	if p.CloudShare > 0 {
		lg.Append(ledger.Entry{
			T: at, Hive: hive, Device: "cloud", Component: "server",
			Task: "per-client share", Dir: ledger.Consume,
			Joules: float64(p.CloudShare), Seconds: p.Period.Seconds(),
		})
	}
}
