package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with equal seeds diverged at draw %d", i)
		}
	}
}

func TestSeedSeparation(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("adjacent seeds produced %d identical draws out of 1000", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(11)
	counts := make([]int, 5)
	for i := 0; i < 50000; i++ {
		counts[r.Intn(5)]++
	}
	for i, c := range counts {
		if c < 9000 || c > 11000 {
			t.Errorf("Intn(5) bucket %d has %d/50000 draws, want ~10000", i, c)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormMoments(t *testing.T) {
	r := New(13)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.Norm()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("Norm mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("Norm variance = %v, want ~1", variance)
	}
}

func TestGaussianScaling(t *testing.T) {
	r := New(17)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Gaussian(40, 2)
	}
	if mean := sum / n; math.Abs(mean-40) > 0.05 {
		t.Errorf("Gaussian(40,2) mean = %v, want ~40", mean)
	}
}

func TestLogNormalPositive(t *testing.T) {
	r := New(19)
	for i := 0; i < 10000; i++ {
		if v := r.LogNormal(0, 0.5); v <= 0 {
			t.Fatalf("LogNormal produced non-positive %v", v)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShufflePreservesElements(t *testing.T) {
	r := New(23)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	for _, v := range xs {
		sum += v
	}
	if sum != 36 {
		t.Fatalf("shuffle changed element multiset, sum = %d", sum)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(31)
	child := parent.Split()
	// The child stream must not be a shifted copy of the parent stream.
	same := 0
	for i := 0; i < 1000; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("split child repeated %d parent draws", same)
	}
}

func TestRange(t *testing.T) {
	r := New(37)
	for i := 0; i < 10000; i++ {
		v := r.Range(-2, 3)
		if v < -2 || v >= 3 {
			t.Fatalf("Range(-2,3) = %v out of bounds", v)
		}
	}
}

func TestStreamDeterministicAndSeparated(t *testing.T) {
	// Pure function of (seed, stream): same inputs, same stream.
	a1, a2 := Stream(7, 42), Stream(7, 42)
	for i := 0; i < 100; i++ {
		if a1.Uint64() != a2.Uint64() {
			t.Fatal("Stream is not a pure function of its arguments")
		}
	}
	// Distinct stream ids (and distinct seeds) must not collide or
	// produce shifted copies.
	streams := []*Source{Stream(7, 0), Stream(7, 1), Stream(7, 2), Stream(8, 0)}
	draws := make(map[uint64]int)
	for si, s := range streams {
		for i := 0; i < 1000; i++ {
			v := s.Uint64()
			if prev, ok := draws[v]; ok {
				t.Fatalf("streams %d and %d repeated draw %x", prev, si, v)
			}
			draws[v] = si
		}
	}
	// Seeds derived for adjacent stream ids must differ in many bits.
	if StreamSeed(1, 0) == StreamSeed(1, 1) {
		t.Fatal("adjacent stream seeds collide")
	}
}
