// Package rng provides a small, deterministic pseudo-random number
// generator used by every stochastic component of beesim.
//
// Reproducibility is a hard requirement for the paper's experiments: the
// Gaussian client-loss model of Figure 8c produces visible spikes whose
// position must be stable across runs for the regression tests to hold.
// The implementation is xoshiro256** seeded through SplitMix64, the
// combination recommended by Blackman & Vigna; it has a 2^256-1 period and
// passes BigCrush. We deliberately avoid math/rand so the stream is fixed
// independent of the Go release.
package rng

import "math"

// Source is a deterministic random stream.
//
// The zero value is not usable; construct with New. A Source is not safe
// for concurrent use; give each goroutine its own Source (use Split).
type Source struct {
	s [4]uint64
	// spare Gaussian value from the last Box-Muller pair, if any.
	gauss    float64
	hasGauss bool
}

// New returns a Source seeded from seed via SplitMix64, so that nearby
// seeds still produce well-separated streams.
func New(seed uint64) *Source {
	r := Seeded(seed)
	return &r
}

// Seeded returns a Source value seeded exactly like New. Use it when
// the stream can live on the caller's stack or inside a struct — a
// per-task stream in a tight fan-out loop, for instance — instead of
// forcing a heap allocation per stream.
func Seeded(seed uint64) Source {
	var r Source
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

// Split derives an independent child stream. The parent advances by one
// draw; the child is seeded from that draw. Handy for giving each
// simulated client its own stream without correlating them.
func (r *Source) Split() *Source { return New(r.Uint64()) }

// StreamSeed derives the seed of an independent child stream from a
// base seed and a stable stream identity (a sweep point's client
// count, a replica index, a batch number). Unlike Split, the
// derivation is a pure function of (seed, stream): no generator state
// advances, so tasks fanned across a worker pool can each build their
// own stream without observing scheduling order. The mixing is one
// SplitMix64 finalization over the golden-ratio-weighted pair, the
// same separation argument New uses for nearby seeds.
func StreamSeed(seed, stream uint64) uint64 {
	z := seed + 0x9e3779b97f4a7c15*(stream+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Stream returns a Source for the child stream of seed identified by
// stream. Stream(s, a) and Stream(s, b) are well separated for a != b,
// and the result depends only on the two arguments — the per-task RNG
// constructor for deterministic parallel fan-out.
func Stream(seed, stream uint64) *Source { return New(StreamSeed(seed, stream)) }

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *Source) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Float64 returns a uniform variate in [0, 1) with 53 random bits.
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with non-positive n")
	}
	// Lemire's nearly-divisionless bounded sampling is overkill here;
	// simple rejection keeps the stream easy to reason about.
	max := uint64(n)
	limit := (^uint64(0) / max) * max
	for {
		v := r.Uint64()
		if v < limit {
			return int(v % max)
		}
	}
}

// Range returns a uniform variate in [lo, hi).
func (r *Source) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Norm returns a standard Gaussian variate (mean 0, stddev 1) using the
// Box-Muller transform, caching the second value of each generated pair.
func (r *Source) Norm() float64 {
	if r.hasGauss {
		r.hasGauss = false
		return r.gauss
	}
	var u float64
	for u == 0 { // avoid log(0)
		u = r.Float64()
	}
	v := r.Float64()
	rad := math.Sqrt(-2 * math.Log(u))
	r.gauss = rad * math.Sin(2*math.Pi*v)
	r.hasGauss = true
	return rad * math.Cos(2*math.Pi*v)
}

// Gaussian returns a Gaussian variate with the given mean and stddev.
func (r *Source) Gaussian(mean, stddev float64) float64 {
	return mean + stddev*r.Norm()
}

// LogNormal returns a lognormal variate where the underlying normal has
// parameters mu and sigma. Used by the network throughput model.
func (r *Source) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.Gaussian(mu, sigma))
}

// Perm returns a random permutation of [0, n).
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle permutes the order of n elements using swap, Fisher-Yates style.
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, r.Intn(i+1))
	}
}
