// Package adaptive implements the paper's stated future work: "build
// connected beehives' intelligence to tune its parameters and choose
// between a set of scenarios."
//
// A Controller runs on the smart beehive. Each cycle it observes the
// battery state of charge, the recent harvest, and a solar forecast, and
// decides two things the paper treats as fixed parameters:
//
//   - the wake-up period (Figure 3's ladder: 5, 10, 15, 30, 60, 120 min);
//   - the service placement (Section V's edge vs edge+cloud scenarios).
//
// The package also provides a cycle-level simulator to compare policies
// over multi-day weather, reporting data yield, energy and battery
// health — the experiment the paper's future-work section sketches.
package adaptive

import (
	"errors"
	"fmt"
	"time"

	"beesim/internal/battery"
	"beesim/internal/power"
	"beesim/internal/routine"
	"beesim/internal/solar"
	"beesim/internal/stats"
	"beesim/internal/units"
	"beesim/internal/weather"
)

// PeriodLadder is the paper's set of studied wake-up periods, fastest
// first.
var PeriodLadder = []time.Duration{
	5 * time.Minute, 10 * time.Minute, 15 * time.Minute,
	30 * time.Minute, 60 * time.Minute, 120 * time.Minute,
}

// Observation is what the controller sees at a decision point.
type Observation struct {
	Time time.Time
	// SoC is the battery state of charge in [0, 1].
	SoC float64
	// HarvestPower is the current panel output.
	HarvestPower units.Watts
	// ForecastDayJoules estimates the next 24 h of harvest.
	ForecastDayJoules units.Joules
}

// Action is the controller's decision for the next cycle.
type Action struct {
	Period    time.Duration
	Placement routine.Placement
}

// Policy decides the next cycle's parameters.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// Decide returns the action for the coming cycle.
	Decide(obs Observation) Action
}

// FixedPolicy always returns the same action — the paper's deployed
// behaviour, used as the baseline.
type FixedPolicy struct {
	Action Action
}

// Name implements Policy.
func (p FixedPolicy) Name() string {
	return fmt.Sprintf("fixed(%s,%s)", p.Action.Period, p.Action.Placement)
}

// Decide implements Policy.
func (p FixedPolicy) Decide(Observation) Action { return p.Action }

// ThresholdPolicy picks the period from the ladder by battery bands, and
// offloads to the cloud when energy runs low (the edge+cloud scenario
// spends 12% less at the hive).
type ThresholdPolicy struct {
	// HighSoC and LowSoC delimit the bands: above HighSoC the fastest
	// period is used; below LowSoC the slowest.
	HighSoC, LowSoC float64
}

// DefaultThreshold returns a conservative banded policy.
func DefaultThreshold() ThresholdPolicy {
	return ThresholdPolicy{HighSoC: 0.7, LowSoC: 0.3}
}

// Name implements Policy.
func (p ThresholdPolicy) Name() string { return "threshold" }

// Decide implements Policy.
func (p ThresholdPolicy) Decide(obs Observation) Action {
	n := len(PeriodLadder)
	var idx int
	switch {
	case obs.SoC >= p.HighSoC:
		idx = 0
	case obs.SoC <= p.LowSoC:
		idx = n - 1
	default:
		// Linear interpolation across the middle band.
		frac := (p.HighSoC - obs.SoC) / (p.HighSoC - p.LowSoC)
		idx = 1 + int(frac*float64(n-2))
		if idx > n-1 {
			idx = n - 1
		}
	}
	placement := routine.EdgeOnly
	if obs.SoC < p.LowSoC+0.2 {
		placement = routine.EdgeCloud
	}
	return Action{Period: PeriodLadder[idx], Placement: placement}
}

// ForecastPolicy budgets against tomorrow's predicted harvest: it picks
// the fastest period whose daily cost fits inside a fraction of the
// forecast plus the spendable battery margin.
type ForecastPolicy struct {
	// SpendFraction is how much of the forecast harvest the hive may
	// commit to (the rest covers model error and the monitor).
	SpendFraction float64
	// ReserveSoC is the battery level the policy refuses to plan below.
	ReserveSoC float64
	// Capacity is the battery capacity, for converting SoC margins into
	// joules.
	Capacity units.WattHours
}

// DefaultForecast returns the forecast-driven policy for the deployed
// 74 Wh pack.
func DefaultForecast() ForecastPolicy {
	return ForecastPolicy{SpendFraction: 0.6, ReserveSoC: 0.25, Capacity: 74}
}

// Name implements Policy.
func (p ForecastPolicy) Name() string { return "forecast" }

// Decide implements Policy.
func (p ForecastPolicy) Decide(obs Observation) Action {
	pi := power.DefaultPi3B()
	margin := units.Joules(0)
	if obs.SoC > p.ReserveSoC {
		margin = units.WattHours(float64(p.Capacity) * (obs.SoC - p.ReserveSoC)).Joules()
	}
	budget := units.Joules(float64(obs.ForecastDayJoules)*p.SpendFraction) + margin

	// The edge+cloud placement always spends less at the hive; use it
	// whenever the budget is tight (below twice the fastest-cadence cost).
	day := 24 * time.Hour
	costPerDay := func(period time.Duration, placement routine.Placement) units.Joules {
		cycles := float64(day) / float64(period)
		per := pi.AveragePower(period).Energy(period)
		if placement == routine.EdgeCloud {
			// The hive saves the inference but pays the upload: net ~12%
			// of the active share, from Tables I/II.
			saving := 0.12 * (float64(per) - float64(pi.SleepPower.Energy(period)))
			per -= units.Joules(saving)
		}
		return units.Joules(float64(per) * cycles)
	}

	for _, period := range PeriodLadder {
		for _, placement := range []routine.Placement{routine.EdgeOnly, routine.EdgeCloud} {
			if costPerDay(period, placement) <= budget {
				return Action{Period: period, Placement: placement}
			}
		}
	}
	return Action{Period: PeriodLadder[len(PeriodLadder)-1], Placement: routine.EdgeCloud}
}

// ForecastDay estimates the next 24 h of usable panel output at a
// location given the current cloudiness persisting (a standard
// persistence forecast).
func ForecastDay(loc solar.Location, panel solar.Panel, from time.Time, cloudCover float64) units.Joules {
	var total stats.Kahan
	const step = 15 * time.Minute
	for t := from; t.Before(from.Add(24 * time.Hour)); t = t.Add(step) {
		irr := solar.Irradiance(loc, t, cloudCover)
		if out, ok := panel.Output(irr); ok {
			total.Add(float64(out.Energy(step)))
		}
	}
	return units.Joules(total.Sum())
}

// Config shapes a policy-comparison simulation.
type Config struct {
	Location   solar.Location
	Start      time.Time
	Days       int
	InitialSoC float64
	Seed       uint64
}

// DefaultConfig simulates a week in Cachan starting from a half-charged
// pack (a protected power path — the brownout-free design — so the
// battery actually governs behaviour).
func DefaultConfig() Config {
	return Config{
		Location:   solar.Cachan,
		Start:      time.Date(2023, 4, 10, 0, 0, 0, 0, time.UTC),
		Days:       7,
		InitialSoC: 0.5,
		Seed:       1,
	}
}

// Result summarizes one policy's simulated run.
type Result struct {
	Policy string
	// Routines completed, and the data yield they represent (a routine
	// at a 5-minute cadence observes more than one at 120 minutes; yield
	// counts routines directly).
	Routines int
	// MissedRoutines counts cycles skipped because the battery was at
	// its cutoff.
	MissedRoutines int
	// EdgeEnergy is the hive's total consumption.
	EdgeEnergy units.Joules
	// CloudCycles counts cycles that offloaded to the cloud.
	CloudCycles int
	// MinSoC is the lowest battery level seen.
	MinSoC float64
	// FinalSoC is the battery level at the end.
	FinalSoC float64
}

// Simulate runs one policy through the configured weather and battery.
func Simulate(cfg Config, policy Policy) (Result, error) {
	if cfg.Days <= 0 {
		return Result{}, errors.New("adaptive: non-positive day count")
	}
	if policy == nil {
		return Result{}, errors.New("adaptive: nil policy")
	}
	wxCfg := weather.DefaultConfig(cfg.Location)
	wxCfg.Seed = cfg.Seed
	wx := weather.NewGenerator(wxCfg)
	panel := solar.DefaultPanel()
	pack, err := battery.New(battery.DefaultConfig(), cfg.InitialSoC)
	if err != nil {
		return Result{}, err
	}
	pi := power.DefaultPi3B()
	zero := power.DefaultPiZero()

	res := Result{Policy: policy.Name(), MinSoC: cfg.InitialSoC}
	end := cfg.Start.Add(time.Duration(cfg.Days) * 24 * time.Hour)

	// Multi-day runs fold thousands of per-cycle quanta into the edge
	// total; compensated summation keeps the result order-exact.
	var edgeEnergy stats.Kahan
	now := cfg.Start
	for now.Before(end) {
		sample := wx.At(now)
		obs := Observation{
			Time:              now,
			SoC:               pack.SoC(),
			HarvestPower:      0,
			ForecastDayJoules: ForecastDay(cfg.Location, panel, now, sample.CloudCover),
		}
		if out, ok := panel.Output(sample.Irradiance); ok {
			obs.HarvestPower = out
		}
		action := policy.Decide(obs)
		if action.Period <= 0 {
			return Result{}, fmt.Errorf("adaptive: policy %q returned period %v",
				policy.Name(), action.Period)
		}

		// Harvest over the cycle at the current irradiance (persistence
		// within a cycle; cycles are minutes long).
		if out, ok := panel.Output(sample.Irradiance); ok {
			pack.Charge(out, action.Period)
		}

		// Always-on loads: monitor + recorder sleep.
		base := zero.ActivePower + pi.SleepPower
		sustained := pack.Discharge(base, action.Period)
		edgeEnergy.Add(float64(base.Energy(sustained)))

		// The routine itself: the active energy above sleep, by placement.
		if sustained == action.Period {
			active := routineActiveEnergy(pi, action.Placement)
			dur := active.Duration(pi.Routine().Power())
			if got := pack.Discharge(active.Power(dur), dur); got == dur {
				res.Routines++
				edgeEnergy.Add(float64(active))
				if action.Placement == routine.EdgeCloud {
					res.CloudCycles++
				}
			} else {
				res.MissedRoutines++
			}
		} else {
			res.MissedRoutines++
		}

		if soc := pack.SoC(); soc < res.MinSoC {
			res.MinSoC = soc
		}
		now = now.Add(action.Period)
	}
	res.EdgeEnergy = units.Joules(edgeEnergy.Sum())
	res.FinalSoC = pack.SoC()
	return res, nil
}

// routineActiveEnergy returns the above-sleep energy of one cycle's
// active tasks for a placement, from the calibrated tables.
func routineActiveEnergy(pi power.Pi3B, p routine.Placement) units.Joules {
	collect := pi.WakeAndCollect()
	shutdown := pi.Shutdown()
	if p == routine.EdgeCloud {
		return collect.Energy + pi.SendAudio().Energy + shutdown.Energy
	}
	return collect.Energy + pi.InferCNN().Energy + pi.SendResults().Energy + shutdown.Energy
}

// Compare runs several policies through identical weather and returns
// their results in input order.
func Compare(cfg Config, policies ...Policy) ([]Result, error) {
	if len(policies) == 0 {
		return nil, errors.New("adaptive: no policies")
	}
	out := make([]Result, 0, len(policies))
	for _, p := range policies {
		r, err := Simulate(cfg, p)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}
