package adaptive

import (
	"testing"
	"time"

	"beesim/internal/routine"
	"beesim/internal/solar"
	"beesim/internal/units"
)

func TestFixedPolicy(t *testing.T) {
	p := FixedPolicy{Action: Action{Period: 10 * time.Minute, Placement: routine.EdgeOnly}}
	a := p.Decide(Observation{SoC: 0.1})
	if a.Period != 10*time.Minute || a.Placement != routine.EdgeOnly {
		t.Fatalf("fixed policy changed its action: %+v", a)
	}
	if p.Name() == "" {
		t.Fatal("empty name")
	}
}

func TestThresholdPolicyBands(t *testing.T) {
	p := DefaultThreshold()
	full := p.Decide(Observation{SoC: 0.95})
	if full.Period != PeriodLadder[0] {
		t.Errorf("full battery period = %v, want fastest", full.Period)
	}
	if full.Placement != routine.EdgeOnly {
		t.Errorf("full battery placement = %v, want edge", full.Placement)
	}
	empty := p.Decide(Observation{SoC: 0.1})
	if empty.Period != PeriodLadder[len(PeriodLadder)-1] {
		t.Errorf("empty battery period = %v, want slowest", empty.Period)
	}
	if empty.Placement != routine.EdgeCloud {
		t.Errorf("empty battery placement = %v, want edge+cloud", empty.Placement)
	}
	// Monotone: lower SoC never speeds the cadence up.
	prev := time.Duration(0)
	for soc := 1.0; soc >= 0; soc -= 0.05 {
		a := p.Decide(Observation{SoC: soc})
		if a.Period < prev {
			t.Fatalf("period ladder not monotone at SoC %.2f", soc)
		}
		prev = a.Period
	}
}

func TestForecastDaySunnyVsOvercast(t *testing.T) {
	from := time.Date(2023, 4, 10, 0, 0, 0, 0, time.UTC)
	panel := solar.DefaultPanel()
	sunny := ForecastDay(solar.Cachan, panel, from, 0)
	cloudy := ForecastDay(solar.Cachan, panel, from, 1)
	if sunny <= cloudy {
		t.Fatalf("sunny forecast %v not above overcast %v", sunny, cloudy)
	}
	if sunny <= 0 {
		t.Fatal("zero sunny forecast")
	}
	// A clear April day on a 30 W panel yields a few hundred kJ.
	if float64(sunny) < 100e3 || float64(sunny) > 1e6 {
		t.Fatalf("sunny day forecast = %v, implausible", sunny)
	}
}

func TestForecastPolicyBudgets(t *testing.T) {
	p := DefaultForecast()
	rich := p.Decide(Observation{SoC: 0.9, ForecastDayJoules: 600e3})
	if rich.Period != PeriodLadder[0] {
		t.Errorf("rich budget period = %v, want fastest", rich.Period)
	}
	poor := p.Decide(Observation{SoC: 0.26, ForecastDayJoules: 5e3})
	if poor.Period < 30*time.Minute {
		t.Errorf("poor budget period = %v, want a slow cadence", poor.Period)
	}
	// Destitute: falls back to the slowest cloud cycle.
	broke := p.Decide(Observation{SoC: 0.1, ForecastDayJoules: 0})
	if broke.Period != PeriodLadder[len(PeriodLadder)-1] || broke.Placement != routine.EdgeCloud {
		t.Errorf("destitute action = %+v", broke)
	}
}

func TestSimulateValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Days = 0
	if _, err := Simulate(cfg, DefaultThreshold()); err == nil {
		t.Error("zero days accepted")
	}
	if _, err := Simulate(DefaultConfig(), nil); err == nil {
		t.Error("nil policy accepted")
	}
}

func TestSimulateFixedAggressiveDrainsInBadWeather(t *testing.T) {
	// A fixed 5-minute, edge-only cadence through a cloudy winter week
	// starting half-charged must miss routines; the threshold policy
	// must not.
	cfg := DefaultConfig()
	cfg.Start = time.Date(2023, 1, 5, 0, 0, 0, 0, time.UTC) // winter
	cfg.InitialSoC = 0.3
	cfg.Seed = 3

	aggressive, err := Simulate(cfg, FixedPolicy{Action: Action{
		Period: 5 * time.Minute, Placement: routine.EdgeOnly}})
	if err != nil {
		t.Fatal(err)
	}
	adaptive, err := Simulate(cfg, DefaultThreshold())
	if err != nil {
		t.Fatal(err)
	}
	if aggressive.MissedRoutines == 0 {
		t.Fatalf("aggressive winter run missed nothing (minSoC %.2f)", aggressive.MinSoC)
	}
	// Deep winter can drive both to the protection cutoff; the adaptive
	// policy must never end up worse off.
	if adaptive.MinSoC < aggressive.MinSoC {
		t.Fatalf("adaptive minSoC %.2f below aggressive %.2f",
			adaptive.MinSoC, aggressive.MinSoC)
	}
	missRate := func(r Result) float64 {
		total := r.Routines + r.MissedRoutines
		if total == 0 {
			return 0
		}
		return float64(r.MissedRoutines) / float64(total)
	}
	if missRate(adaptive) >= missRate(aggressive) {
		t.Fatalf("adaptive miss rate %.2f not below aggressive %.2f",
			missRate(adaptive), missRate(aggressive))
	}
}

func TestSimulateSpringYields(t *testing.T) {
	// In sunny April the threshold policy should sustain a fast cadence:
	// clearly more routines than a fixed 2-hour baseline.
	cfg := DefaultConfig()
	slow, err := Simulate(cfg, FixedPolicy{Action: Action{
		Period: 2 * time.Hour, Placement: routine.EdgeOnly}})
	if err != nil {
		t.Fatal(err)
	}
	adaptive, err := Simulate(cfg, DefaultThreshold())
	if err != nil {
		t.Fatal(err)
	}
	if adaptive.Routines <= 2*slow.Routines {
		t.Fatalf("adaptive yield %d not well above slow baseline %d",
			adaptive.Routines, slow.Routines)
	}
}

func TestSimulateEnergyAccounting(t *testing.T) {
	res, err := Simulate(DefaultConfig(), DefaultThreshold())
	if err != nil {
		t.Fatal(err)
	}
	if res.EdgeEnergy <= 0 {
		t.Fatal("no energy recorded")
	}
	if res.MinSoC < 0 || res.MinSoC > 1 || res.FinalSoC < 0 || res.FinalSoC > 1 {
		t.Fatalf("SoC out of range: min %.2f final %.2f", res.MinSoC, res.FinalSoC)
	}
	if res.Policy != "threshold" {
		t.Fatalf("policy name = %q", res.Policy)
	}
}

func TestCompareRunsAll(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Days = 2
	results, err := Compare(cfg,
		FixedPolicy{Action: Action{Period: 10 * time.Minute, Placement: routine.EdgeOnly}},
		DefaultThreshold(),
		DefaultForecast(),
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("results = %d", len(results))
	}
	for _, r := range results {
		if r.Routines+r.MissedRoutines == 0 {
			t.Fatalf("policy %q did nothing", r.Policy)
		}
	}
	if _, err := Compare(cfg); err == nil {
		t.Error("empty policy list accepted")
	}
}

func TestForecastPolicyOffloadsWhenTight(t *testing.T) {
	// In a tight budget the forecast policy should reach the edge+cloud
	// placement before giving up cadence entirely.
	p := DefaultForecast()
	sawCloud := false
	for f := 600e3; f >= 0; f -= 10e3 {
		a := p.Decide(Observation{SoC: 0.3, ForecastDayJoules: units.Joules(f)})
		if a.Placement == routine.EdgeCloud {
			sawCloud = true
			break
		}
	}
	if !sawCloud {
		t.Fatal("forecast policy never offloaded")
	}
}
