// Retry policy: capped exponential backoff with deterministic jitter.

package faults

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"time"
)

// MaxAttemptBudget bounds MaxAttempts: no policy may spin more than
// this many attempts per upload, so a retry loop always terminates.
const MaxAttemptBudget = 64

// RetryPolicy is the recovery side of a fault plan: how the uplink
// retries a failed send. Backoff grows geometrically from Base by
// Multiplier per failure, is capped at Max, and is spread by a
// deterministic jitter of ±JitterFrac around the nominal delay. Each
// failed attempt costs the radio the link setup time plus
// AttemptTimeout of transmit-power draw before the failure is declared.
type RetryPolicy struct {
	// MaxAttempts is the total attempt budget per upload (first try
	// included), in [1, MaxAttemptBudget].
	MaxAttempts int
	// Base is the nominal delay before the first retry.
	Base time.Duration
	// Max caps the backoff delay, jitter included.
	Max time.Duration
	// Multiplier scales the delay after each failure (>= 1).
	Multiplier float64
	// JitterFrac spreads each delay uniformly in ±JitterFrac of its
	// nominal value, in [0, 1].
	JitterFrac float64
	// AttemptTimeout is how long the radio waits on an unresponsive
	// link before declaring one attempt failed.
	AttemptTimeout time.Duration
}

// DefaultRetryPolicy is the policy used when a plan does not override
// it: four attempts, 2 s initial backoff doubling to a 30 s cap with
// ±20 % jitter, 5 s per-attempt timeout.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts:    4,
		Base:           2 * time.Second,
		Max:            30 * time.Second,
		Multiplier:     2,
		JitterFrac:     0.2,
		AttemptTimeout: 5 * time.Second,
	}
}

// Validate rejects policies that could stall the simulation or produce
// negative delays.
func (p RetryPolicy) Validate() error {
	if p.MaxAttempts < 1 || p.MaxAttempts > MaxAttemptBudget {
		return fmt.Errorf("faults: retry max_attempts %d outside [1, %d]", p.MaxAttempts, MaxAttemptBudget)
	}
	if p.Base < 0 {
		return fmt.Errorf("faults: negative retry base %v", p.Base)
	}
	if p.Max < p.Base {
		return fmt.Errorf("faults: retry max %v below base %v", p.Max, p.Base)
	}
	if math.IsNaN(p.Multiplier) || math.IsInf(p.Multiplier, 0) || p.Multiplier < 1 {
		return fmt.Errorf("faults: retry multiplier %g must be finite and >= 1", p.Multiplier)
	}
	if !(p.JitterFrac >= 0 && p.JitterFrac <= 1) {
		return fmt.Errorf("faults: retry jitter_frac %g outside [0, 1]", p.JitterFrac)
	}
	if p.AttemptTimeout < 0 {
		return fmt.Errorf("faults: negative retry attempt_timeout %v", p.AttemptTimeout)
	}
	return nil
}

// Backoff returns the delay before the retry that follows failed
// attempt number attempt (1-based), using u in [0, 1) as the jitter
// draw. The result is always in [0, Max]: the nominal delay
// Base·Multiplier^(attempt-1) is capped at Max before and after the
// jitter factor 1 + JitterFrac·(2u−1) is applied, and a sub-zero
// product (impossible for JitterFrac <= 1, but guarded anyway) clamps
// to zero. Backoff never draws randomness itself — callers supply u,
// typically from Injector.JitterU, keeping the delay a pure function of
// the upload's identity.
func (p RetryPolicy) Backoff(attempt int, u float64) time.Duration {
	if attempt < 1 {
		attempt = 1
	}
	maxS := p.Max.Seconds()
	d := p.Base.Seconds() * math.Pow(p.Multiplier, float64(attempt-1))
	if !(d < maxS) { // also catches NaN/+Inf from extreme pow results
		d = maxS
	}
	if !(u >= 0 && u < 1) {
		u = 0.5 // out-of-range or NaN draws degrade to no jitter
	}
	d *= 1 + p.JitterFrac*(2*u-1)
	if d < 0 {
		d = 0
	}
	if d > maxS {
		d = maxS
	}
	return time.Duration(d * float64(time.Second))
}

// DeliveryProb returns the probability that an upload is delivered
// within the attempt budget when each attempt independently succeeds
// with probability avail.
func (p RetryPolicy) DeliveryProb(avail float64) float64 {
	avail = clamp01(avail)
	return 1 - math.Pow(1-avail, float64(p.MaxAttempts))
}

// ExpectedAttempts returns the expected number of attempts consumed per
// upload (counting the final, possibly failed, attempt) when each
// attempt independently succeeds with probability avail.
func (p RetryPolicy) ExpectedAttempts(avail float64) float64 {
	avail = clamp01(avail)
	k := float64(p.MaxAttempts)
	if avail == 0 {
		return k
	}
	// Sum over the truncated geometric distribution:
	// E[N] = (1 - (1-a)^K) / a, clamped to its mathematical range
	// [1, K] — the float evaluation can land a few ulps below 1
	// (e.g. K = 1, a = 1/6), which would leak a negative retry tax.
	e := (1 - math.Pow(1-avail, k)) / avail
	if e < 1 {
		return 1
	}
	if e > k {
		return k
	}
	return e
}

// RetryTax returns the expected extra edge energy per upload cycle on
// a link where each attempt succeeds with probability avail: every
// attempt beyond the first re-pays the upload energy, and an upload
// that exhausts the budget pays the local-inference fallback instead.
// At avail = 1 the tax is zero, which is how degraded planning reduces
// to the paper's fault-free model.
func (p RetryPolicy) RetryTax(avail, uploadEnergy, fallbackEnergy float64) float64 {
	return (p.ExpectedAttempts(avail)-1)*uploadEnergy +
		(1-p.DeliveryProb(avail))*fallbackEnergy
}

func clamp01(x float64) float64 {
	if !(x > 0) { // catches NaN and negatives
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// retryWire is the JSON form of a policy: durations as float seconds,
// so a plan file reads naturally and the parser can reject non-finite
// values before they become time.Durations.
type retryWire struct {
	MaxAttempts     int     `json:"max_attempts"`
	BaseS           float64 `json:"base_s"`
	MaxS            float64 `json:"max_s"`
	Multiplier      float64 `json:"multiplier"`
	JitterFrac      float64 `json:"jitter_frac"`
	AttemptTimeoutS float64 `json:"attempt_timeout_s"`
}

// MarshalJSON encodes the policy with durations as float seconds.
func (p RetryPolicy) MarshalJSON() ([]byte, error) {
	return json.Marshal(retryWire{
		MaxAttempts:     p.MaxAttempts,
		BaseS:           p.Base.Seconds(),
		MaxS:            p.Max.Seconds(),
		Multiplier:      p.Multiplier,
		JitterFrac:      p.JitterFrac,
		AttemptTimeoutS: p.AttemptTimeout.Seconds(),
	})
}

// UnmarshalJSON decodes the float-seconds wire form, rejecting unknown
// fields and non-finite or overflowing durations. Range validation
// (negative durations, out-of-range probabilities) happens in Validate.
func (p *RetryPolicy) UnmarshalJSON(data []byte) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var w retryWire
	if err := dec.Decode(&w); err != nil {
		return err
	}
	base, err := secondsToDuration("retry.base_s", w.BaseS)
	if err != nil {
		return err
	}
	maxD, err := secondsToDuration("retry.max_s", w.MaxS)
	if err != nil {
		return err
	}
	timeout, err := secondsToDuration("retry.attempt_timeout_s", w.AttemptTimeoutS)
	if err != nil {
		return err
	}
	*p = RetryPolicy{
		MaxAttempts:    w.MaxAttempts,
		Base:           base,
		Max:            maxD,
		Multiplier:     w.Multiplier,
		JitterFrac:     w.JitterFrac,
		AttemptTimeout: timeout,
	}
	return nil
}

// secondsToDuration converts wire float seconds to a duration,
// rejecting NaN, infinities and magnitudes that would overflow int64
// nanoseconds. Negative values convert (and are rejected by Validate)
// so the error message can name the field that went negative.
func secondsToDuration(field string, s float64) (time.Duration, error) {
	if math.IsNaN(s) || math.IsInf(s, 0) {
		return 0, fmt.Errorf("faults: %s is not finite", field)
	}
	if math.Abs(s) > maxPlanSeconds {
		return 0, fmt.Errorf("faults: %s exceeds %g s", field, float64(maxPlanSeconds))
	}
	return time.Duration(s * float64(time.Second)), nil
}
