// Package faults is the deterministic fault-injection subsystem: it
// turns a declarative fault plan (link outages, burst packet loss, node
// crash/reboot cycles, battery brownout windows, sensor dropouts) into
// pure predicates over virtual time that the netsim, battery, routine
// and deployment layers consult.
//
// Two properties make the subsystem DES-native and reproducible:
//
//   - Everything is keyed off virtual time. A fault window is an offset
//     from the simulation start, never a wall-clock instant, so a plan
//     replays identically regardless of when or where it runs.
//
//   - Stochastic decisions are stateless. A drop or jitter draw is a
//     pure hash of (plan seed, virtual instant, attempt number) through
//     the internal/rng stream-derivation mix — not a stateful generator
//     — so the verdict for a given upload attempt does not depend on
//     how many other draws happened before it. That makes fault
//     schedules independent of evaluation order (and hence of the
//     worker count), and couples plans across drop probabilities: the
//     set of attempts dropped at p=0.2 is a superset of the set dropped
//     at p=0.1, which is what lets the chaos suite assert a monotone
//     delivered count.
//
// Plans are validated on parse: probabilities must lie in [0, 1] and
// every duration must be finite and non-negative, so NaN, infinities
// and negative windows are rejected before they can reach a simulation.
package faults

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"time"
)

// maxPlanSeconds bounds every window offset and duration (about 30
// years); beyond it float seconds no longer convert to time.Duration
// without overflow.
const maxPlanSeconds = 1e9

// Window is a half-open interval of virtual time, expressed as float
// seconds offset from the simulation start: [start_s, start_s+duration_s).
type Window struct {
	StartS    float64 `json:"start_s"`
	DurationS float64 `json:"duration_s"`
}

// Active reports whether t falls inside the window for a simulation
// that began at start.
func (w Window) Active(start, t time.Time) bool {
	off := t.Sub(start).Seconds()
	return off >= w.StartS && off < w.StartS+w.DurationS
}

// validate rejects non-finite, negative or overflowing offsets.
func (w Window) validate() error {
	if err := checkSeconds("start_s", w.StartS); err != nil {
		return err
	}
	return checkSeconds("duration_s", w.DurationS)
}

// checkSeconds rejects NaN, infinite, negative or absurdly large
// second counts — the values that would corrupt virtual-time math.
func checkSeconds(field string, s float64) error {
	if math.IsNaN(s) || math.IsInf(s, 0) {
		return fmt.Errorf("faults: %s is not finite", field)
	}
	if s < 0 {
		return fmt.Errorf("faults: negative %s (%g)", field, s)
	}
	if s > maxPlanSeconds {
		return fmt.Errorf("faults: %s exceeds %g s", field, float64(maxPlanSeconds))
	}
	return nil
}

// checkProb rejects probabilities outside [0, 1]; the negated
// comparison also catches NaN.
func checkProb(field string, p float64) error {
	if !(p >= 0 && p <= 1) {
		return fmt.Errorf("faults: %s = %g outside [0, 1]", field, p)
	}
	return nil
}

// Burst is a window during which the link's drop probability rises to
// DropProb (if higher than the steady-state rate).
type Burst struct {
	Window
	DropProb float64 `json:"drop_prob"`
}

// LinkFaults degrades the uplink: a steady per-attempt drop
// probability, hard outage windows, and loss bursts.
type LinkFaults struct {
	// DropProb is the steady-state probability that any single send
	// attempt is lost.
	DropProb float64 `json:"drop_prob,omitempty"`
	// Outages are windows during which every attempt fails.
	Outages []Window `json:"outages,omitempty"`
	// Bursts raise the drop probability inside their windows.
	Bursts []Burst `json:"bursts,omitempty"`
}

func (f LinkFaults) validate() error {
	if err := checkProb("link.drop_prob", f.DropProb); err != nil {
		return err
	}
	for i, w := range f.Outages {
		if err := w.validate(); err != nil {
			return fmt.Errorf("link.outages[%d]: %w", i, err)
		}
	}
	for i, b := range f.Bursts {
		if err := b.validate(); err != nil {
			return fmt.Errorf("link.bursts[%d]: %w", i, err)
		}
		if err := checkProb(fmt.Sprintf("link.bursts[%d].drop_prob", i), b.DropProb); err != nil {
			return err
		}
	}
	return nil
}

// NodeFaults crashes the whole edge node: during a crash window (plus
// the reboot tail appended to it) the node is down — no wake-ups, no
// monitoring, no uploads.
type NodeFaults struct {
	Crashes []Window `json:"crashes,omitempty"`
	// RebootS extends every crash window: after the fault clears the
	// node still needs this many seconds to boot.
	RebootS float64 `json:"reboot_s,omitempty"`
}

func (f NodeFaults) validate() error {
	if err := checkSeconds("node.reboot_s", f.RebootS); err != nil {
		return err
	}
	for i, w := range f.Crashes {
		if err := w.validate(); err != nil {
			return fmt.Errorf("node.crashes[%d]: %w", i, err)
		}
	}
	return nil
}

// BatteryFaults opens the battery's load path: during a brownout
// window the pack delivers nothing, as if the bus converter stalled.
type BatteryFaults struct {
	Brownouts []Window `json:"brownouts,omitempty"`
}

func (f BatteryFaults) validate() error {
	for i, w := range f.Brownouts {
		if err := w.validate(); err != nil {
			return fmt.Errorf("battery.brownouts[%d]: %w", i, err)
		}
	}
	return nil
}

// SensorFaults silences the hive-monitoring sensors: readings inside a
// dropout window, or unlucky under the steady drop probability, are
// simply never produced.
type SensorFaults struct {
	DropProb float64  `json:"drop_prob,omitempty"`
	Dropouts []Window `json:"dropouts,omitempty"`
}

func (f SensorFaults) validate() error {
	if err := checkProb("sensors.drop_prob", f.DropProb); err != nil {
		return err
	}
	for i, w := range f.Dropouts {
		if err := w.validate(); err != nil {
			return fmt.Errorf("sensors.dropouts[%d]: %w", i, err)
		}
	}
	return nil
}

// Plan is a composable fault plan: which failures happen, when, and how
// the system is allowed to retry around them. The zero value is the
// empty plan — an armed injector that never injects anything.
type Plan struct {
	// Seed drives every stochastic fault decision; plans with the same
	// seed produce identical fault schedules.
	Seed    uint64        `json:"seed,omitempty"`
	Link    LinkFaults    `json:"link"`
	Node    NodeFaults    `json:"node"`
	Battery BatteryFaults `json:"battery"`
	Sensors SensorFaults  `json:"sensors"`
	// Retry overrides the default retry policy when non-nil.
	Retry *RetryPolicy `json:"retry,omitempty"`
}

// Validate checks every window, probability and the retry policy.
func (p Plan) Validate() error {
	if err := p.Link.validate(); err != nil {
		return err
	}
	if err := p.Node.validate(); err != nil {
		return err
	}
	if err := p.Battery.validate(); err != nil {
		return err
	}
	if err := p.Sensors.validate(); err != nil {
		return err
	}
	if p.Retry != nil {
		if err := p.Retry.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Empty reports whether the plan injects nothing: no link, node,
// battery or sensor faults. An empty plan behaves exactly like no plan
// (every attempt succeeds on the first try), so consumers check this to
// stay on the fault-free fast path — and its golden, byte-identical
// outputs — when a -faults file turns out to be a no-op.
func (p Plan) Empty() bool {
	return p.Link.DropProb == 0 && len(p.Link.Outages) == 0 && len(p.Link.Bursts) == 0 &&
		len(p.Node.Crashes) == 0 &&
		len(p.Battery.Brownouts) == 0 &&
		p.Sensors.DropProb == 0 && len(p.Sensors.Dropouts) == 0
}

// RetryOrDefault returns the plan's retry policy, or the default when
// the plan does not override it.
func (p Plan) RetryOrDefault() RetryPolicy {
	if p.Retry != nil {
		return *p.Retry
	}
	return DefaultRetryPolicy()
}

// ParsePlan decodes and validates a JSON fault plan. Unknown fields and
// trailing garbage are rejected, as are NaN, infinite or negative
// durations and out-of-range probabilities.
func ParsePlan(data []byte) (Plan, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var p Plan
	if err := dec.Decode(&p); err != nil {
		return Plan{}, fmt.Errorf("faults: parse plan: %w", err)
	}
	if dec.More() {
		return Plan{}, fmt.Errorf("faults: trailing data after plan")
	}
	if err := p.Validate(); err != nil {
		return Plan{}, err
	}
	return p, nil
}

// LoadPlan reads and parses a fault plan file (the -faults flag).
func LoadPlan(path string) (Plan, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Plan{}, err
	}
	return ParsePlan(data)
}
