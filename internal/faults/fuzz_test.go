// Fuzz targets for the two parsing/arithmetic surfaces a hostile plan
// file can reach: the JSON plan decoder and the backoff arithmetic.
// Run continuously with `make chaos` (a short -fuzztime smoke) or
// standalone:
//
//	go test ./internal/faults -fuzz FuzzFaultPlanJSON -fuzztime 30s

package faults

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"
	"time"
)

// FuzzFaultPlanJSON: any input ParsePlan accepts must validate, survive
// a marshal/parse round trip, and marshal to stable bytes. Inputs
// carrying NaN, infinities or negative durations must be rejected.
func FuzzFaultPlanJSON(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"seed": 42, "link": {"drop_prob": 0.15}}`))
	f.Add([]byte(`{"link": {"outages": [{"start_s": 3600, "duration_s": 1800}]}}`))
	f.Add([]byte(`{"link": {"bursts": [{"start_s": 0, "duration_s": 60, "drop_prob": 0.9}]}}`))
	f.Add([]byte(`{"node": {"crashes": [{"start_s": 10, "duration_s": 20}], "reboot_s": 120}}`))
	f.Add([]byte(`{"battery": {"brownouts": [{"start_s": 1, "duration_s": 2}]}}`))
	f.Add([]byte(`{"sensors": {"drop_prob": 0.05, "dropouts": [{"start_s": 9, "duration_s": 9}]}}`))
	f.Add([]byte(`{"retry": {"max_attempts": 4, "base_s": 2, "max_s": 30, "multiplier": 2, "jitter_frac": 0.2, "attempt_timeout_s": 5}}`))
	f.Add([]byte(`{"link": {"drop_prob": -0.5}}`))
	f.Add([]byte(`{"link": {"outages": [{"start_s": -1, "duration_s": 1e300}]}}`))
	f.Add([]byte(`{"seed": 1} trailing`))

	f.Fuzz(func(t *testing.T, data []byte) {
		plan, err := ParsePlan(data)
		if err != nil {
			return // rejected inputs are fine; panics are not
		}
		// Accepted plans are valid by construction...
		if err := plan.Validate(); err != nil {
			t.Fatalf("ParsePlan accepted an invalid plan: %v", err)
		}
		// ...carry no non-finite or negative windows...
		for _, w := range windowsOf(plan) {
			if math.IsNaN(w.StartS) || math.IsInf(w.StartS, 0) || w.StartS < 0 ||
				math.IsNaN(w.DurationS) || math.IsInf(w.DurationS, 0) || w.DurationS < 0 {
				t.Fatalf("accepted window %+v", w)
			}
		}
		// ...and round-trip to stable bytes.
		first, err := json.Marshal(plan)
		if err != nil {
			t.Fatalf("marshal accepted plan: %v", err)
		}
		back, err := ParsePlan(first)
		if err != nil {
			t.Fatalf("re-parse own marshal: %v\n%s", err, first)
		}
		second, err := json.Marshal(back)
		if err != nil {
			t.Fatalf("re-marshal: %v", err)
		}
		if !bytes.Equal(first, second) {
			t.Fatalf("marshal unstable:\n%s\n%s", first, second)
		}
	})
}

// windowsOf flattens every window in a plan for invariant checks.
func windowsOf(p Plan) []Window {
	var ws []Window
	ws = append(ws, p.Link.Outages...)
	for _, b := range p.Link.Bursts {
		ws = append(ws, b.Window)
	}
	ws = append(ws, p.Node.Crashes...)
	ws = append(ws, p.Battery.Brownouts...)
	ws = append(ws, p.Sensors.Dropouts...)
	return ws
}

// FuzzRetryPolicy: for every policy Validate accepts, Backoff never
// returns a negative or above-cap delay for any attempt or draw, and a
// full retry episode consumes bounded attempts and finite virtual time.
func FuzzRetryPolicy(f *testing.F) {
	f.Add(4, int64(2_000_000_000), int64(30_000_000_000), 2.0, 0.2, int64(5_000_000_000), 0.5)
	f.Add(1, int64(0), int64(0), 1.0, 0.0, int64(0), 0.0)
	f.Add(64, int64(1), int64(1_000_000_000_000), 1e300, 1.0, int64(3_600_000_000_000), 0.999999)
	f.Add(8, int64(-5), int64(10), 0.5, -0.1, int64(-1), 2.0)

	f.Fuzz(func(t *testing.T, attempts int, baseNs, maxNs int64, mult, jitter float64, timeoutNs int64, u float64) {
		p := RetryPolicy{
			MaxAttempts:    attempts,
			Base:           time.Duration(baseNs),
			Max:            time.Duration(maxNs),
			Multiplier:     mult,
			JitterFrac:     jitter,
			AttemptTimeout: time.Duration(timeoutNs),
		}
		if p.Validate() != nil {
			return // invalid policies never reach Backoff in production
		}
		if p.MaxAttempts > MaxAttemptBudget {
			t.Fatalf("validated policy exceeds the attempt budget: %d", p.MaxAttempts)
		}
		var total time.Duration
		for a := 1; a <= p.MaxAttempts; a++ {
			d := p.Backoff(a, u)
			if d < 0 {
				t.Fatalf("negative backoff %v at attempt %d (%+v, u=%g)", d, a, p, u)
			}
			if d > p.Max {
				t.Fatalf("backoff %v above cap %v at attempt %d (%+v, u=%g)", d, p.Max, a, p, u)
			}
			total += d + p.AttemptTimeout
			if total < 0 {
				t.Fatalf("episode time overflowed at attempt %d (%+v)", a, p)
			}
		}
		// The expected-value helpers stay finite and in range for any
		// availability, even out-of-domain ones.
		for _, a := range []float64{math.NaN(), math.Inf(1), -1, 0, 0.5, 1, 2, u} {
			dp := p.DeliveryProb(a)
			if !(dp >= 0 && dp <= 1) {
				t.Fatalf("DeliveryProb(%g) = %g", a, dp)
			}
			ea := p.ExpectedAttempts(a)
			if !(ea >= 1 && ea <= float64(p.MaxAttempts)) {
				t.Fatalf("ExpectedAttempts(%g) = %g", a, ea)
			}
		}
	})
}
