package faults

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

var t0 = time.Date(2023, 4, 10, 0, 0, 0, 0, time.UTC)

func mustInjector(t *testing.T, plan Plan) *Injector {
	t.Helper()
	in, err := NewInjector(plan, t0)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestWindowActiveHalfOpen(t *testing.T) {
	w := Window{StartS: 60, DurationS: 30}
	cases := []struct {
		off  time.Duration
		want bool
	}{
		{0, false},
		{59 * time.Second, false},
		{60 * time.Second, true},
		{89 * time.Second, true},
		{89*time.Second + 999*time.Millisecond, true},
		{90 * time.Second, false},
	}
	for _, c := range cases {
		if got := w.Active(t0, t0.Add(c.off)); got != c.want {
			t.Errorf("Active at +%v = %v, want %v", c.off, got, c.want)
		}
	}
}

func TestParsePlanRejects(t *testing.T) {
	bad := map[string]string{
		"unknown field":    `{"seed": 1, "surprise": true}`,
		"trailing data":    `{"seed": 1} {"seed": 2}`,
		"negative start":   `{"link": {"outages": [{"start_s": -5, "duration_s": 10}]}}`,
		"negative length":  `{"link": {"outages": [{"start_s": 5, "duration_s": -10}]}}`,
		"huge duration":    `{"link": {"outages": [{"start_s": 0, "duration_s": 1e300}]}}`,
		"probability > 1":  `{"link": {"drop_prob": 1.5}}`,
		"negative prob":    `{"sensors": {"drop_prob": -0.25}}`,
		"burst prob":       `{"link": {"bursts": [{"start_s": 0, "duration_s": 1, "drop_prob": 2}]}}`,
		"negative reboot":  `{"node": {"reboot_s": -1}}`,
		"bad retry":        `{"retry": {"max_attempts": 0, "base_s": 1, "max_s": 2, "multiplier": 2}}`,
		"retry overflow":   `{"retry": {"max_attempts": 4, "base_s": 1e300, "max_s": 2, "multiplier": 2}}`,
		"not a plan":       `[1, 2, 3]`,
	}
	for name, src := range bad {
		if _, err := ParsePlan([]byte(src)); err == nil {
			t.Errorf("%s: accepted %s", name, src)
		}
	}
}

func TestParsePlanEmptyIsValid(t *testing.T) {
	p, err := ParsePlan([]byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	if p.Retry != nil {
		t.Fatal("empty plan grew a retry policy")
	}
	if p.RetryOrDefault() != DefaultRetryPolicy() {
		t.Fatal("empty plan does not fall back to the default policy")
	}
}

// TestPlanEmpty: only plans that inject nothing are empty; seed and
// retry overrides alone do not make a plan non-empty.
func TestPlanEmpty(t *testing.T) {
	def := DefaultRetryPolicy()
	empties := []Plan{
		{},
		{Seed: 42},
		{Retry: &def},
	}
	for i, p := range empties {
		if !p.Empty() {
			t.Errorf("plan %d should be empty: %+v", i, p)
		}
	}
	w := Window{StartS: 0, DurationS: 60}
	armed := []Plan{
		{Link: LinkFaults{DropProb: 0.1}},
		{Link: LinkFaults{Outages: []Window{w}}},
		{Link: LinkFaults{Bursts: []Burst{{Window: w, DropProb: 0.5}}}},
		{Node: NodeFaults{Crashes: []Window{w}}},
		{Battery: BatteryFaults{Brownouts: []Window{w}}},
		{Sensors: SensorFaults{DropProb: 0.1}},
		{Sensors: SensorFaults{Dropouts: []Window{w}}},
	}
	for i, p := range armed {
		if p.Empty() {
			t.Errorf("plan %d should not be empty: %+v", i, p)
		}
	}
}

func TestPlanJSONRoundTrip(t *testing.T) {
	retry := DefaultRetryPolicy()
	plan := Plan{
		Seed: 42,
		Link: LinkFaults{
			DropProb: 0.15,
			Outages:  []Window{{StartS: 3600, DurationS: 1800}},
			Bursts:   []Burst{{Window: Window{StartS: 7200, DurationS: 600}, DropProb: 0.9}},
		},
		Node:    NodeFaults{Crashes: []Window{{StartS: 10, DurationS: 20}}, RebootS: 120},
		Battery: BatteryFaults{Brownouts: []Window{{StartS: 30, DurationS: 40}}},
		Sensors: SensorFaults{DropProb: 0.05, Dropouts: []Window{{StartS: 50, DurationS: 60}}},
		Retry:   &retry,
	}
	data, err := json.Marshal(plan)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParsePlan(data)
	if err != nil {
		t.Fatal(err)
	}
	again, err := json.Marshal(back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Fatalf("round trip unstable:\n%s\n%s", data, again)
	}
}

// TestInjectorScheduleDeterminism is the core reproducibility property:
// two injectors armed with the same plan and start produce identical
// verdicts at every probed instant, in any probe order, while a
// different seed produces a different schedule.
func TestInjectorScheduleDeterminism(t *testing.T) {
	plan := Plan{
		Seed:    7,
		Link:    LinkFaults{DropProb: 0.3, Outages: []Window{{StartS: 1000, DurationS: 500}}},
		Sensors: SensorFaults{DropProb: 0.2},
	}
	a := mustInjector(t, plan)
	b := mustInjector(t, plan)
	other := plan
	other.Seed = 8
	c := mustInjector(t, other)

	diverged := false
	// Probe b in reverse order: statelessness means order cannot matter.
	type probe struct {
		at      time.Time
		attempt int
	}
	var probes []probe
	for i := 0; i < 200; i++ {
		for attempt := 1; attempt <= 3; attempt++ {
			probes = append(probes, probe{t0.Add(time.Duration(i) * 37 * time.Second), attempt})
		}
	}
	got := make(map[probe][3]bool, len(probes))
	for _, p := range probes {
		got[p] = [3]bool{a.DropUpload(p.at, p.attempt), a.SensorOK(p.at), a.LinkUp(p.at)}
	}
	for i := len(probes) - 1; i >= 0; i-- {
		p := probes[i]
		want := got[p]
		if b.DropUpload(p.at, p.attempt) != want[0] || b.SensorOK(p.at) != want[1] || b.LinkUp(p.at) != want[2] {
			t.Fatalf("equal seeds diverged at %v attempt %d", p.at, p.attempt)
		}
		if b.JitterU(p.at, p.attempt) != a.JitterU(p.at, p.attempt) {
			t.Fatalf("jitter draws diverged at %v attempt %d", p.at, p.attempt)
		}
		if c.DropUpload(p.at, p.attempt) != want[0] {
			diverged = true
		}
	}
	if !diverged {
		t.Fatal("different seeds produced the identical drop schedule")
	}
}

// TestDropSupersetCoupling: for a fixed seed, every attempt dropped at a
// lower probability is also dropped at a higher one — the property that
// makes delivered counts monotone across a loss sweep.
func TestDropSupersetCoupling(t *testing.T) {
	low := mustInjector(t, Plan{Seed: 3, Link: LinkFaults{DropProb: 0.1}})
	high := mustInjector(t, Plan{Seed: 3, Link: LinkFaults{DropProb: 0.4}})
	dropsLow, dropsHigh := 0, 0
	for i := 0; i < 3000; i++ {
		at := t0.Add(time.Duration(i) * time.Minute)
		if low.DropUpload(at, 1) {
			dropsLow++
			if !high.DropUpload(at, 1) {
				t.Fatalf("attempt at %v dropped at p=0.1 but delivered at p=0.4", at)
			}
		}
		if high.DropUpload(at, 1) {
			dropsHigh++
		}
	}
	if dropsLow == 0 || dropsHigh <= dropsLow {
		t.Fatalf("coupling test not exercised: %d drops at 0.1, %d at 0.4", dropsLow, dropsHigh)
	}
}

func TestNilInjectorHealthy(t *testing.T) {
	var in *Injector
	at := t0.Add(time.Hour)
	if !in.LinkUp(at) || !in.NodeUp(at) || !in.SensorOK(at) {
		t.Fatal("nil injector reported a fault")
	}
	if in.DropUpload(at, 1) || in.BatteryBrownout(at) {
		t.Fatal("nil injector injected a fault")
	}
	if in.DropProb(at) != 0 {
		t.Fatal("nil injector has a drop probability")
	}
	if u := in.JitterU(at, 1); u != 0.5 {
		t.Fatalf("nil jitter = %g, want 0.5", u)
	}
	if !in.Start().IsZero() {
		t.Fatal("nil injector has a start")
	}
}

func TestOutageAndBurstWindows(t *testing.T) {
	in := mustInjector(t, Plan{
		Seed: 1,
		Link: LinkFaults{
			DropProb: 0.1,
			Outages:  []Window{{StartS: 100, DurationS: 50}},
			Bursts:   []Burst{{Window: Window{StartS: 300, DurationS: 50}, DropProb: 0.8}},
		},
	})
	if !in.LinkUp(t0.Add(99 * time.Second)) {
		t.Fatal("link down before the outage")
	}
	if in.LinkUp(t0.Add(120 * time.Second)) {
		t.Fatal("link up inside the outage")
	}
	if !in.LinkUp(t0.Add(150 * time.Second)) {
		t.Fatal("link down after the outage")
	}
	if p := in.DropProb(t0.Add(200 * time.Second)); p != 0.1 {
		t.Fatalf("steady drop prob = %g, want 0.1", p)
	}
	if p := in.DropProb(t0.Add(320 * time.Second)); p != 0.8 {
		t.Fatalf("burst drop prob = %g, want 0.8", p)
	}
	// A burst weaker than the steady rate must not lower it.
	weak := mustInjector(t, Plan{Link: LinkFaults{
		DropProb: 0.5,
		Bursts:   []Burst{{Window: Window{StartS: 0, DurationS: 10}, DropProb: 0.2}},
	}})
	if p := weak.DropProb(t0.Add(5 * time.Second)); p != 0.5 {
		t.Fatalf("weak burst lowered the drop prob to %g", p)
	}
}

func TestNodeCrashIncludesRebootTail(t *testing.T) {
	in := mustInjector(t, Plan{
		Node: NodeFaults{Crashes: []Window{{StartS: 100, DurationS: 50}}, RebootS: 25},
	})
	if !in.NodeUp(t0.Add(99 * time.Second)) {
		t.Fatal("node down before the crash")
	}
	if in.NodeUp(t0.Add(120 * time.Second)) {
		t.Fatal("node up mid-crash")
	}
	if in.NodeUp(t0.Add(160 * time.Second)) {
		t.Fatal("node up during the reboot tail")
	}
	if !in.NodeUp(t0.Add(175 * time.Second)) {
		t.Fatal("node still down after the reboot tail")
	}
}

func TestBatteryBrownoutWindow(t *testing.T) {
	in := mustInjector(t, Plan{
		Battery: BatteryFaults{Brownouts: []Window{{StartS: 10, DurationS: 5}}},
	})
	if in.BatteryBrownout(t0.Add(9 * time.Second)) {
		t.Fatal("brownout before its window")
	}
	if !in.BatteryBrownout(t0.Add(12 * time.Second)) {
		t.Fatal("no brownout inside the window")
	}
	if in.BatteryBrownout(t0.Add(15 * time.Second)) {
		t.Fatal("brownout after its window")
	}
}

func TestSensorDropoutWindowAndRate(t *testing.T) {
	in := mustInjector(t, Plan{
		Seed:    5,
		Sensors: SensorFaults{DropProb: 0.5, Dropouts: []Window{{StartS: 0, DurationS: 60}}},
	})
	if in.SensorOK(t0.Add(30 * time.Second)) {
		t.Fatal("sensor delivered inside a dropout window")
	}
	ok, lost := 0, 0
	for i := 0; i < 2000; i++ {
		if in.SensorOK(t0.Add(time.Hour + time.Duration(i)*time.Minute)) {
			ok++
		} else {
			lost++
		}
	}
	// At p = 0.5 both verdicts must appear in force.
	if ok < 600 || lost < 600 {
		t.Fatalf("steady sensor rate skewed: %d ok, %d lost", ok, lost)
	}
	// p = 1 silences the sensors entirely, p = 0 never does.
	mute := mustInjector(t, Plan{Sensors: SensorFaults{DropProb: 1}})
	if mute.SensorOK(t0) {
		t.Fatal("p=1 sensor delivered")
	}
	loud := mustInjector(t, Plan{Sensors: SensorFaults{DropProb: 0}})
	if !loud.SensorOK(t0) {
		t.Fatal("p=0 sensor dropped")
	}
}

func TestNewInjectorRejectsInvalidPlan(t *testing.T) {
	_, err := NewInjector(Plan{Link: LinkFaults{DropProb: 2}}, t0)
	if err == nil || !strings.Contains(err.Error(), "drop_prob") {
		t.Fatalf("invalid plan accepted (err = %v)", err)
	}
}
