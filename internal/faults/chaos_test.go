// The chaos/property suite: the fault subsystem exercised through the
// real uplink, campaign and deployment layers. Three properties anchor
// it — same seed, same schedule; every joule of retry energy is
// ledgered; and the energy books stay balanced under every plan — plus
// a loss soak from a perfect link to a dead one.

package faults_test

import (
	"math"
	"reflect"
	"testing"
	"time"

	"beesim/internal/deployment"
	"beesim/internal/faults"
	"beesim/internal/ledger"
	"beesim/internal/netsim"
	"beesim/internal/power"
	"beesim/internal/routine"
)

var t0 = time.Date(2023, 4, 10, 0, 0, 0, 0, time.UTC)

// TestRetryLedgerEnergyMatchesOutcome: the "uplink retry" ledger
// entries of an upload episode sum exactly to the Outcome's
// RetryEnergy, and each one prices a single failed attempt at transmit
// power times setup-plus-timeout.
func TestRetryLedgerEnergyMatchesOutcome(t *testing.T) {
	cfg := netsim.DefaultConfig()
	link, err := netsim.NewLink(cfg)
	if err != nil {
		t.Fatal(err)
	}
	lg := ledger.New()
	link.AttachLedger(lg, "chaos-1", func() time.Time { return t0 })
	// An outage covering the whole episode forces every attempt to fail.
	inj, err := faults.NewInjector(faults.Plan{
		Link: faults.LinkFaults{Outages: []faults.Window{{StartS: 0, DurationS: 86400}}},
	}, t0)
	if err != nil {
		t.Fatal(err)
	}
	pol := faults.DefaultRetryPolicy()
	if err := link.AttachFaults(inj, pol, nil); err != nil {
		t.Fatal(err)
	}

	out := link.SendAt(t0, netsim.RoutinePayload())
	if out.Delivered {
		t.Fatal("delivered through a total outage")
	}
	if out.Attempts != pol.MaxAttempts {
		t.Fatalf("attempts = %d, want the full budget %d", out.Attempts, pol.MaxAttempts)
	}

	perAttempt := float64(cfg.TxPower.Energy(cfg.SetupTime + pol.AttemptTimeout))
	var sum float64
	entries := lg.Entries()
	for _, e := range entries {
		if e.Task != "uplink retry" {
			t.Fatalf("unexpected ledger task %q", e.Task)
		}
		if e.Store != "" {
			t.Fatalf("retry entry is store-bound: %+v", e)
		}
		if math.Abs(e.Joules-perAttempt) > 1e-12 {
			t.Fatalf("retry entry = %g J, want %g J", e.Joules, perAttempt)
		}
		sum += e.Joules
	}
	if len(entries) != pol.MaxAttempts {
		t.Fatalf("ledger entries = %d, want one per failed attempt (%d)", len(entries), pol.MaxAttempts)
	}
	if math.Abs(sum-float64(out.RetryEnergy)) > 1e-9 {
		t.Fatalf("ledger retry energy %g != outcome retry energy %g", sum, float64(out.RetryEnergy))
	}
}

// chaosPlans is the table of fault plans the conservation property must
// hold under.
func chaosPlans() map[string]faults.Plan {
	aggressive := faults.RetryPolicy{
		MaxAttempts: 6, Base: time.Second, Max: 10 * time.Second,
		Multiplier: 3, JitterFrac: 0.5, AttemptTimeout: 2 * time.Second,
	}
	return map[string]faults.Plan{
		"empty": {},
		"lossy link": {Seed: 11, Link: faults.LinkFaults{DropProb: 0.3}},
		"outage plus burst": {Seed: 12, Link: faults.LinkFaults{
			DropProb: 0.1,
			Outages:  []faults.Window{{StartS: 4 * 3600, DurationS: 2 * 3600}},
			Bursts:   []faults.Burst{{Window: faults.Window{StartS: 10 * 3600, DurationS: 3600}, DropProb: 0.95}},
		}},
		"node crashes": {Seed: 13, Node: faults.NodeFaults{
			Crashes: []faults.Window{{StartS: 6 * 3600, DurationS: 1800}, {StartS: 20 * 3600, DurationS: 900}},
			RebootS: 300,
		}},
		"brownouts": {Seed: 14, Battery: faults.BatteryFaults{
			Brownouts: []faults.Window{{StartS: 2 * 3600, DurationS: 1200}},
		}},
		"sensor dropouts": {Seed: 15, Sensors: faults.SensorFaults{
			DropProb: 0.2,
			Dropouts: []faults.Window{{StartS: 8 * 3600, DurationS: 3600}},
		}},
		"everything at once": {Seed: 16,
			Link:    faults.LinkFaults{DropProb: 0.25, Outages: []faults.Window{{StartS: 3 * 3600, DurationS: 3600}}},
			Node:    faults.NodeFaults{Crashes: []faults.Window{{StartS: 15 * 3600, DurationS: 600}}, RebootS: 120},
			Battery: faults.BatteryFaults{Brownouts: []faults.Window{{StartS: 22 * 3600, DurationS: 1800}}},
			Sensors: faults.SensorFaults{DropProb: 0.1},
			Retry:   &aggressive,
		},
	}
}

// TestConservationGreenUnderEveryPlan: a full deployment day under each
// chaos plan keeps the energy ledger's conservation audit green — the
// retry/fallback machinery must never mint or lose joules.
func TestConservationGreenUnderEveryPlan(t *testing.T) {
	for name, plan := range chaosPlans() {
		plan := plan
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cfg := deployment.DefaultConfig()
			cfg.Days = 1
			cfg.Ledger = ledger.New()
			cfg.Faults = &plan
			tr, err := deployment.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := ledger.AuditTrip(cfg.Ledger, ledger.DefaultTolerance())
			if err != nil {
				t.Fatal(err)
			}
			if !rep.OK() {
				t.Fatalf("conservation audit failed under %q: %s (%v)", name, rep.String(), rep.Violations)
			}
			if tr.Wakeups == 0 {
				t.Fatalf("plan %q stalled the deployment: no routines ran", name)
			}
		})
	}
}

// TestFaultyDeploymentDeterminism: two runs of the same faulted
// deployment agree field for field — the chaos machinery introduces no
// hidden state.
func TestFaultyDeploymentDeterminism(t *testing.T) {
	plan := chaosPlans()["everything at once"]
	run := func() *deployment.Trace {
		cfg := deployment.DefaultConfig()
		cfg.Days = 1
		cfg.Faults = &plan
		tr, err := deployment.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("equal faulted runs diverged:\n%+v\n%+v", a, b)
	}
}

// TestChaosSoak sweeps the steady loss rate from a perfect link to a
// dead one and asserts the campaign's global invariants at every point:
// it terminates, conserves every payload, and its fresh delivered count
// never rises as the loss rate climbs (the superset-coupling property
// of the stateless injector).
func TestChaosSoak(t *testing.T) {
	const n = 60
	prevDelivered := n + 1
	for step := 0; step <= 20; step++ {
		p := float64(step) / 20
		st, err := routine.SimulateFaultyCampaign(power.DefaultPi3B(), routine.FaultyCampaignConfig{
			Link:     netsim.DefaultConfig(),
			Plan:     faults.Plan{Seed: 99, Link: faults.LinkFaults{DropProb: p}},
			Start:    t0,
			Period:   10 * time.Minute,
			Routines: n,
		})
		if err != nil {
			t.Fatalf("p=%.2f: %v", p, err)
		}
		if !st.Conserved() {
			t.Fatalf("p=%.2f: payloads not conserved: %+v", p, st)
		}
		budget := faults.DefaultRetryPolicy().MaxAttempts
		if st.Attempts < n || st.Attempts > 2*n*budget {
			t.Fatalf("p=%.2f: implausible attempt count %d", p, st.Attempts)
		}
		if st.Delivered > prevDelivered {
			t.Fatalf("p=%.2f: delivered count rose from %d to %d as loss increased",
				p, prevDelivered, st.Delivered)
		}
		prevDelivered = st.Delivered
		switch {
		case p == 0:
			if st.Delivered != n || st.Attempts != n || st.RetryEnergy != 0 {
				t.Fatalf("lossless campaign took damage: %+v", st)
			}
		case p == 1:
			if st.Delivered != 0 || st.Fallbacks != n {
				t.Fatalf("dead link delivered: %+v", st)
			}
			if st.Dropped == 0 {
				t.Fatalf("dead link never overflowed the buffer: %+v", st)
			}
		}
	}
}

// TestFaultyCampaignDeterminism: the campaign is a pure function of its
// config.
func TestFaultyCampaignDeterminism(t *testing.T) {
	cfg := routine.FaultyCampaignConfig{
		Link:     netsim.DefaultConfig(),
		Plan:     faults.Plan{Seed: 5, Link: faults.LinkFaults{DropProb: 0.4}},
		Start:    t0,
		Period:   10 * time.Minute,
		Routines: 80,
	}
	a, err := routine.SimulateFaultyCampaign(power.DefaultPi3B(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := routine.SimulateFaultyCampaign(power.DefaultPi3B(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("equal campaigns diverged:\n%+v\n%+v", a, b)
	}
}
