package faults

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"
	"time"
)

func TestDefaultRetryPolicyValid(t *testing.T) {
	if err := DefaultRetryPolicy().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRetryValidateRejects(t *testing.T) {
	ok := DefaultRetryPolicy()
	bad := []RetryPolicy{
		func() RetryPolicy { p := ok; p.MaxAttempts = 0; return p }(),
		func() RetryPolicy { p := ok; p.MaxAttempts = MaxAttemptBudget + 1; return p }(),
		func() RetryPolicy { p := ok; p.Base = -time.Second; return p }(),
		func() RetryPolicy { p := ok; p.Max = ok.Base - time.Second; return p }(),
		func() RetryPolicy { p := ok; p.Multiplier = 0.5; return p }(),
		func() RetryPolicy { p := ok; p.Multiplier = math.NaN(); return p }(),
		func() RetryPolicy { p := ok; p.Multiplier = math.Inf(1); return p }(),
		func() RetryPolicy { p := ok; p.JitterFrac = -0.1; return p }(),
		func() RetryPolicy { p := ok; p.JitterFrac = 1.5; return p }(),
		func() RetryPolicy { p := ok; p.JitterFrac = math.NaN(); return p }(),
		func() RetryPolicy { p := ok; p.AttemptTimeout = -time.Second; return p }(),
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad policy %d accepted: %+v", i, p)
		}
	}
}

func TestBackoffBounds(t *testing.T) {
	p := DefaultRetryPolicy()
	for attempt := -1; attempt <= 12; attempt++ {
		for _, u := range []float64{0, 0.25, 0.5, 0.75, 0.999999} {
			d := p.Backoff(attempt, u)
			if d < 0 || d > p.Max {
				t.Fatalf("Backoff(%d, %g) = %v outside [0, %v]", attempt, u, d, p.Max)
			}
		}
	}
}

func TestBackoffGrowsGeometricallyUntilCap(t *testing.T) {
	p := DefaultRetryPolicy()
	p.JitterFrac = 0
	if got := p.Backoff(1, 0.5); got != 2*time.Second {
		t.Fatalf("first backoff = %v, want 2 s", got)
	}
	if got := p.Backoff(2, 0.5); got != 4*time.Second {
		t.Fatalf("second backoff = %v, want 4 s", got)
	}
	if got := p.Backoff(10, 0.5); got != p.Max {
		t.Fatalf("deep backoff = %v, want cap %v", got, p.Max)
	}
	// Even an absurd multiplier must land exactly on the cap, not
	// overflow or go negative.
	p.Multiplier = 1e308
	if got := p.Backoff(60, 0.5); got != p.Max {
		t.Fatalf("overflowing backoff = %v, want cap %v", got, p.Max)
	}
}

func TestBackoffJitterSpread(t *testing.T) {
	p := DefaultRetryPolicy() // base 2 s, ±20 %
	lo := p.Backoff(1, 0)
	hi := p.Backoff(1, 0.999999999)
	if lo >= hi {
		t.Fatalf("jitter did not spread: lo %v, hi %v", lo, hi)
	}
	if lo < 1600*time.Millisecond-time.Millisecond || hi > 2400*time.Millisecond+time.Millisecond {
		t.Fatalf("jitter range [%v, %v] outside ±20%% of 2 s", lo, hi)
	}
}

func TestBackoffDegradesBadDraws(t *testing.T) {
	p := DefaultRetryPolicy()
	want := p.Backoff(1, 0.5)
	for _, u := range []float64{math.NaN(), -1, 1, 2, math.Inf(1)} {
		if got := p.Backoff(1, u); got != want {
			t.Fatalf("Backoff(1, %g) = %v, want jitterless %v", u, got, want)
		}
	}
}

func TestDeliveryProbAndExpectedAttempts(t *testing.T) {
	p := DefaultRetryPolicy() // 4 attempts
	if got := p.DeliveryProb(1); got != 1 {
		t.Fatalf("DeliveryProb(1) = %g", got)
	}
	if got := p.DeliveryProb(0); got != 0 {
		t.Fatalf("DeliveryProb(0) = %g", got)
	}
	if got := p.ExpectedAttempts(1); got != 1 {
		t.Fatalf("ExpectedAttempts(1) = %g", got)
	}
	if got := p.ExpectedAttempts(0); got != 4 {
		t.Fatalf("ExpectedAttempts(0) = %g", got)
	}
	// a = 0.5, K = 4: P(delivered) = 1 - 0.5^4 = 0.9375,
	// E[N] = (1 - 0.5^4) / 0.5 = 1.875.
	if got := p.DeliveryProb(0.5); math.Abs(got-0.9375) > 1e-12 {
		t.Fatalf("DeliveryProb(0.5) = %g, want 0.9375", got)
	}
	if got := p.ExpectedAttempts(0.5); math.Abs(got-1.875) > 1e-12 {
		t.Fatalf("ExpectedAttempts(0.5) = %g, want 1.875", got)
	}
	// Out-of-range availabilities clamp instead of exploding.
	if got := p.DeliveryProb(math.NaN()); got != 0 {
		t.Fatalf("DeliveryProb(NaN) = %g", got)
	}
	if got := p.ExpectedAttempts(2); got != 1 {
		t.Fatalf("ExpectedAttempts(2) = %g", got)
	}
}

func TestRetryTax(t *testing.T) {
	p := DefaultRetryPolicy()
	if got := p.RetryTax(1, 100, 200); got != 0 {
		t.Fatalf("tax at full availability = %g, want 0", got)
	}
	// a = 0: K-1 wasted uploads plus the guaranteed fallback.
	if got := p.RetryTax(0, 100, 200); math.Abs(got-(3*100+200)) > 1e-9 {
		t.Fatalf("tax at zero availability = %g, want 500", got)
	}
	// The tax shrinks monotonically as the link heals.
	prev := math.Inf(1)
	for _, a := range []float64{0, 0.25, 0.5, 0.75, 1} {
		tax := p.RetryTax(a, 100, 200)
		if tax > prev {
			t.Fatalf("tax grew as availability rose: %g -> %g at a=%g", prev, tax, a)
		}
		prev = tax
	}
}

func TestRetryPolicyJSONRoundTrip(t *testing.T) {
	p := DefaultRetryPolicy()
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	var back RetryPolicy
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back != p {
		t.Fatalf("round trip changed the policy: %+v -> %+v", p, back)
	}
	again, err := json.Marshal(back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Fatalf("marshal not stable: %s vs %s", data, again)
	}
}

func TestRetryPolicyJSONRejects(t *testing.T) {
	cases := []string{
		`{"max_attempts": 4, "base_s": 1e300}`,              // overflows a duration
		`{"max_attempts": 4, "unknown": 1}`,                 // unknown field
		`{"max_attempts": 4, "base_s": "2"}`,                // wrong type
		`{"max_attempts": 4, "attempt_timeout_s": -1e300}`,  // overflow, negative
	}
	for _, src := range cases {
		var p RetryPolicy
		if err := json.Unmarshal([]byte(src), &p); err == nil {
			t.Errorf("accepted %s as %+v", src, p)
		}
	}
	// A merely negative duration parses (so errors can name the field)
	// but must then fail validation.
	var p RetryPolicy
	if err := json.Unmarshal([]byte(`{"max_attempts": 4, "base_s": -2, "max_s": 30, "multiplier": 2}`), &p); err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err == nil {
		t.Fatal("negative base survived validation")
	}
}
