// The injector: a validated plan bound to a simulation start time,
// answering pure predicates over virtual time.

package faults

import (
	"time"

	"beesim/internal/rng"
)

// Distinct stream salts keep the independent fault decisions (drop
// verdicts, backoff jitter, sensor luck) uncorrelated even though they
// may share a virtual instant.
const (
	saltDrop   = 0x6c696e6b64726f70 // "linkdrop"
	saltJitter = 0x6a69747465727531 // "jitteru1"
	saltSensor = 0x73656e736f726f6b // "sensorok"
)

// Injector is a fault plan armed at a simulation start time. All
// methods are pure functions of virtual time (and, for per-attempt
// draws, the attempt number): no internal state advances, so calls may
// happen in any order — or from replicas evaluated on any worker — and
// still agree. A nil *Injector reports a perfectly healthy system from
// every method, so probe sites need no guards and the fault-free hot
// path allocates nothing.
type Injector struct {
	plan  Plan
	start time.Time
}

// NewInjector validates plan and arms it at the simulation start time.
func NewInjector(plan Plan, start time.Time) (*Injector, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	return &Injector{plan: plan, start: start}, nil
}

// Plan returns the armed plan.
func (in *Injector) Plan() Plan {
	if in == nil {
		return Plan{}
	}
	return in.plan
}

// Start returns the virtual instant the plan is anchored to.
func (in *Injector) Start() time.Time {
	if in == nil {
		return time.Time{}
	}
	return in.start
}

// uniform derives a draw in [0, 1) from the plan seed, a purpose salt,
// the virtual instant and the attempt number. Chaining the stream-seed
// mix (SplitMix64 finalization at each step) gives a well-distributed
// hash whose value is independent of every other draw.
func (in *Injector) uniform(salt uint64, t time.Time, attempt int) float64 {
	z := rng.StreamSeed(in.plan.Seed, salt)
	z = rng.StreamSeed(z, uint64(t.UnixNano()))
	z = rng.StreamSeed(z, uint64(attempt))
	return float64(z>>11) / (1 << 53)
}

// LinkUp reports whether the uplink is outside every outage window.
func (in *Injector) LinkUp(t time.Time) bool {
	if in == nil {
		return true
	}
	for _, w := range in.plan.Link.Outages {
		if w.Active(in.start, t) {
			return false
		}
	}
	return true
}

// DropProb returns the effective per-attempt drop probability at t:
// the steady rate, raised by any active burst.
func (in *Injector) DropProb(t time.Time) float64 {
	if in == nil {
		return 0
	}
	p := in.plan.Link.DropProb
	for _, b := range in.plan.Link.Bursts {
		if b.DropProb > p && b.Active(in.start, t) {
			p = b.DropProb
		}
	}
	return p
}

// DropUpload decides whether send attempt number attempt (1-based) at
// virtual instant t is lost. The verdict is u < DropProb(t) for a draw
// u keyed on (seed, t, attempt): for a fixed seed the dropped set at a
// higher probability is a superset of the set at a lower one.
func (in *Injector) DropUpload(t time.Time, attempt int) bool {
	if in == nil {
		return false
	}
	p := in.DropProb(t)
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return in.uniform(saltDrop, t, attempt) < p
}

// JitterU returns the deterministic jitter draw in [0, 1) for the
// backoff that follows failed attempt number attempt at instant t.
func (in *Injector) JitterU(t time.Time, attempt int) float64 {
	if in == nil {
		return 0.5
	}
	return in.uniform(saltJitter, t, attempt)
}

// NodeUp reports whether the edge node is outside every crash window,
// including each window's reboot tail.
func (in *Injector) NodeUp(t time.Time) bool {
	if in == nil {
		return true
	}
	for _, w := range in.plan.Node.Crashes {
		down := w
		down.DurationS += in.plan.Node.RebootS
		if down.Active(in.start, t) {
			return false
		}
	}
	return true
}

// BatteryBrownout reports whether a battery brownout window is active.
func (in *Injector) BatteryBrownout(t time.Time) bool {
	if in == nil {
		return false
	}
	for _, w := range in.plan.Battery.Brownouts {
		if w.Active(in.start, t) {
			return true
		}
	}
	return false
}

// SensorOK reports whether the monitoring sensors deliver a reading at
// t: false inside any dropout window or when the steady sensor drop
// probability claims the keyed draw.
func (in *Injector) SensorOK(t time.Time) bool {
	if in == nil {
		return true
	}
	for _, w := range in.plan.Sensors.Dropouts {
		if w.Active(in.start, t) {
			return false
		}
	}
	p := in.plan.Sensors.DropProb
	if p <= 0 {
		return true
	}
	if p >= 1 {
		return false
	}
	return in.uniform(saltSensor, t, 0) >= p
}
