// Package stats provides the descriptive statistics used to summarize
// beesim's measurement campaigns: online moments (Welford), percentiles,
// histograms, least-squares fits and series crossover detection.
//
// Section IV of the paper reports the 319-routine campaign through exactly
// these summaries (mean routine length 1 m 29 s, sigma 3.5 s; mean power
// 2.14 W, sigma 0.009 W), and Figure 7's analysis hinges on locating the
// client counts where the edge and edge+cloud energy series cross.
package stats

import (
	"errors"
	"math"
	"sort"
)

// Online accumulates count, mean and variance in one pass using Welford's
// algorithm. The zero value is ready to use.
type Online struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds one observation into the accumulator.
func (o *Online) Add(x float64) {
	o.n++
	if o.n == 1 {
		o.min, o.max = x, x
	} else {
		if x < o.min {
			o.min = x
		}
		if x > o.max {
			o.max = x
		}
	}
	delta := x - o.mean
	o.mean += delta / float64(o.n)
	o.m2 += delta * (x - o.mean)
}

// N returns the number of observations.
func (o *Online) N() int { return o.n }

// Mean returns the sample mean, or 0 with no observations.
func (o *Online) Mean() float64 { return o.mean }

// Var returns the unbiased sample variance (n-1 denominator).
func (o *Online) Var() float64 {
	if o.n < 2 {
		return 0
	}
	return o.m2 / float64(o.n-1)
}

// StdDev returns the unbiased sample standard deviation.
func (o *Online) StdDev() float64 { return math.Sqrt(o.Var()) }

// Min returns the smallest observation, or 0 with no observations.
func (o *Online) Min() float64 { return o.min }

// Max returns the largest observation, or 0 with no observations.
func (o *Online) Max() float64 { return o.max }

// Sum returns n * mean, the total of all observations.
func (o *Online) Sum() float64 { return float64(o.n) * o.mean }

// Merge combines another accumulator into o (parallel Welford merge).
func (o *Online) Merge(p *Online) {
	if p.n == 0 {
		return
	}
	if o.n == 0 {
		*o = *p
		return
	}
	n := o.n + p.n
	delta := p.mean - o.mean
	mean := o.mean + delta*float64(p.n)/float64(n)
	m2 := o.m2 + p.m2 + delta*delta*float64(o.n)*float64(p.n)/float64(n)
	if p.min < o.min {
		o.min = p.min
	}
	if p.max > o.max {
		o.max = p.max
	}
	o.n, o.mean, o.m2 = n, mean, m2
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the unbiased standard deviation of xs.
func StdDev(xs []float64) float64 {
	var o Online
	for _, x := range xs {
		o.Add(x)
	}
	return o.StdDev()
}

// Percentile returns the p-th percentile (p in [0,100]) of xs using linear
// interpolation between closest ranks. It returns an error for empty input
// or out-of-range p.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, errors.New("stats: percentile of empty slice")
	}
	if p < 0 || p > 100 {
		return 0, errors.New("stats: percentile out of [0,100]")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Histogram is a fixed-width binning of observations over [Lo, Hi).
type Histogram struct {
	Lo, Hi float64
	Counts []int
	under  int
	over   int
}

// NewHistogram creates a histogram with n equal bins over [lo, hi).
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 || hi <= lo {
		panic("stats: invalid histogram shape")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, n)}
}

// Add places one observation. Values outside [Lo, Hi) are tallied in
// separate under/overflow counters rather than clamped.
func (h *Histogram) Add(x float64) {
	switch {
	case x < h.Lo:
		h.under++
	case x >= h.Hi:
		h.over++
	default:
		i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
		if i == len(h.Counts) { // guard against FP rounding at the top edge
			i--
		}
		h.Counts[i]++
	}
}

// Total returns the number of in-range observations.
func (h *Histogram) Total() int {
	t := 0
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// Outliers returns the underflow and overflow counts.
func (h *Histogram) Outliers() (under, over int) { return h.under, h.over }

// LinearFit returns the least-squares line y = a + b*x through the points,
// plus the coefficient of determination r2. It returns an error when fewer
// than two points or a degenerate x spread make the fit ill-defined.
func LinearFit(xs, ys []float64) (a, b, r2 float64, err error) {
	if len(xs) != len(ys) {
		return 0, 0, 0, errors.New("stats: mismatched fit inputs")
	}
	if len(xs) < 2 {
		return 0, 0, 0, errors.New("stats: fit needs at least two points")
	}
	n := float64(len(xs))
	var sx, sy, sxx, sxy, syy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
		syy += ys[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, 0, 0, errors.New("stats: degenerate x values")
	}
	b = (n*sxy - sx*sy) / den
	a = (sy - b*sx) / n
	ssTot := syy - sy*sy/n
	if ssTot == 0 {
		return a, b, 1, nil
	}
	var ssRes float64
	for i := range xs {
		r := ys[i] - (a + b*xs[i])
		ssRes += r * r
	}
	r2 = 1 - ssRes/ssTot
	return a, b, r2, nil
}

// PolyFit2 fits y = c0 + c1*x + c2*x^2 by solving the 3x3 normal equations.
// Figure 5's claim that inference energy grows quadratically with pixel
// count is verified with this fit.
func PolyFit2(xs, ys []float64) (c [3]float64, err error) {
	if len(xs) != len(ys) || len(xs) < 3 {
		return c, errors.New("stats: quadratic fit needs >= 3 matched points")
	}
	// Normal equations: (X^T X) c = X^T y with X rows [1 x x^2].
	var m [3][4]float64
	for i := range xs {
		x := xs[i]
		row := [3]float64{1, x, x * x}
		for r := 0; r < 3; r++ {
			for cidx := 0; cidx < 3; cidx++ {
				m[r][cidx] += row[r] * row[cidx]
			}
			m[r][3] += row[r] * ys[i]
		}
	}
	// Gaussian elimination with partial pivoting.
	for col := 0; col < 3; col++ {
		piv := col
		for r := col + 1; r < 3; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[piv][col]) {
				piv = r
			}
		}
		m[col], m[piv] = m[piv], m[col]
		if math.Abs(m[col][col]) < 1e-12 {
			return c, errors.New("stats: singular quadratic fit")
		}
		for r := 0; r < 3; r++ {
			if r == col {
				continue
			}
			f := m[r][col] / m[col][col]
			for k := col; k < 4; k++ {
				m[r][k] -= f * m[col][k]
			}
		}
	}
	for i := 0; i < 3; i++ {
		c[i] = m[i][3] / m[i][i]
	}
	return c, nil
}

// Crossover is a point where series a overtakes series b (or vice versa).
type Crossover struct {
	Index int     // first index at or after which the sign flips
	X     float64 // interpolated x position of equality
}

// Crossovers returns every x position where (a - b) changes sign, with
// linear interpolation between samples. xs must be strictly increasing and
// all three slices the same length.
func Crossovers(xs, a, b []float64) ([]Crossover, error) {
	if len(xs) != len(a) || len(xs) != len(b) {
		return nil, errors.New("stats: mismatched crossover inputs")
	}
	var out []Crossover
	for i := 1; i < len(xs); i++ {
		if xs[i] <= xs[i-1] {
			return nil, errors.New("stats: x values not strictly increasing")
		}
		d0 := a[i-1] - b[i-1]
		d1 := a[i] - b[i]
		if d0 == 0 {
			continue // equality at a sample counts with the next interval
		}
		if (d0 < 0) != (d1 < 0) || d1 == 0 {
			t := d0 / (d0 - d1)
			out = append(out, Crossover{Index: i, X: xs[i-1] + t*(xs[i]-xs[i-1])})
		}
	}
	return out, nil
}

// ArgMax returns the index of the largest element, or -1 for empty input.
func ArgMax(xs []float64) int {
	best := -1
	for i, x := range xs {
		if best == -1 || x > xs[best] {
			best = i
		}
	}
	return best
}

// ArgMin returns the index of the smallest element, or -1 for empty input.
func ArgMin(xs []float64) int {
	best := -1
	for i, x := range xs {
		if best == -1 || x < xs[best] {
			best = i
		}
	}
	return best
}
