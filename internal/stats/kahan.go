package stats

import "math"

// Kahan accumulates float64 values with compensated summation
// (Kahan–Babuška–Neumaier). A running += over n values loses O(n·eps)
// relative accuracy and makes the total depend on summation order;
// compensated summation keeps the error at O(eps) independent of n,
// which is what lets week-long energy traces balance against the
// ledger's conservation auditor at tight tolerances. The beelint
// accumfloat check points loop accumulation of units.Joules here.
//
// The zero value is ready to use.
type Kahan struct {
	sum float64
	c   float64 // running compensation for lost low-order bits
}

// Add folds x into the sum. Neumaier's variant of the classic Kahan
// update also stays accurate when |x| exceeds |sum|.
func (k *Kahan) Add(x float64) {
	t := k.sum + x
	if math.Abs(k.sum) >= math.Abs(x) {
		k.c += (k.sum - t) + x
	} else {
		k.c += (x - t) + k.sum
	}
	k.sum = t
}

// Sum returns the compensated total.
func (k *Kahan) Sum() float64 { return k.sum + k.c }
