package stats

import (
	"math"
	"testing"
	"testing/quick"

	"beesim/internal/rng"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestOnlineAgainstDirect(t *testing.T) {
	xs := []float64{2.11, 2.14, 2.15, 2.13, 2.14, 2.16, 2.12}
	var o Online
	for _, x := range xs {
		o.Add(x)
	}
	if o.N() != len(xs) {
		t.Fatalf("N = %d, want %d", o.N(), len(xs))
	}
	if !almostEq(o.Mean(), Mean(xs), 1e-12) {
		t.Errorf("mean = %v, want %v", o.Mean(), Mean(xs))
	}
	direct := 0.0
	m := Mean(xs)
	for _, x := range xs {
		direct += (x - m) * (x - m)
	}
	direct /= float64(len(xs) - 1)
	if !almostEq(o.Var(), direct, 1e-12) {
		t.Errorf("var = %v, want %v", o.Var(), direct)
	}
	if o.Min() != 2.11 || o.Max() != 2.16 {
		t.Errorf("min/max = %v/%v, want 2.11/2.16", o.Min(), o.Max())
	}
}

func TestOnlineEmptyAndSingle(t *testing.T) {
	var o Online
	if o.Mean() != 0 || o.Var() != 0 || o.StdDev() != 0 {
		t.Fatal("zero-value Online must report zeros")
	}
	o.Add(5)
	if o.Var() != 0 {
		t.Fatalf("single observation variance = %v, want 0", o.Var())
	}
	if o.Mean() != 5 || o.Min() != 5 || o.Max() != 5 {
		t.Fatal("single observation summary wrong")
	}
}

func TestOnlineMergeMatchesSequential(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw) + 2
		r := rng.New(seed)
		var whole, left, right Online
		for i := 0; i < n; i++ {
			x := r.Gaussian(10, 3)
			whole.Add(x)
			if i < n/2 {
				left.Add(x)
			} else {
				right.Add(x)
			}
		}
		left.Merge(&right)
		return left.N() == whole.N() &&
			almostEq(left.Mean(), whole.Mean(), 1e-9) &&
			almostEq(left.Var(), whole.Var(), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	for _, c := range []struct{ p, want float64 }{
		{0, 1}, {50, 5.5}, {100, 10}, {25, 3.25},
	} {
		got, err := Percentile(xs, c.p)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEq(got, c.want, 1e-12) {
			t.Errorf("P%v = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPercentileErrors(t *testing.T) {
	if _, err := Percentile(nil, 50); err == nil {
		t.Error("empty percentile did not error")
	}
	if _, err := Percentile([]float64{1}, -1); err == nil {
		t.Error("negative percentile did not error")
	}
	if _, err := Percentile([]float64{1}, 101); err == nil {
		t.Error("percentile > 100 did not error")
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	if _, err := Percentile(xs, 50); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Percentile mutated its input")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 0, 1.9, 2, 5, 9.999, 10, 42} {
		h.Add(x)
	}
	under, over := h.Outliers()
	if under != 1 || over != 2 {
		t.Fatalf("outliers = %d/%d, want 1/2", under, over)
	}
	if h.Total() != 5 {
		t.Fatalf("total = %d, want 5", h.Total())
	}
	want := []int{2, 1, 1, 0, 1}
	for i, c := range h.Counts {
		if c != want[i] {
			t.Errorf("bin %d = %d, want %d", i, c, want[i])
		}
	}
}

func TestHistogramPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewHistogram(1,0,3) did not panic")
		}
	}()
	NewHistogram(1, 0, 3)
}

func TestLinearFitExact(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{3, 5, 7, 9} // y = 1 + 2x
	a, b, r2, err := LinearFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(a, 1, 1e-9) || !almostEq(b, 2, 1e-9) || !almostEq(r2, 1, 1e-9) {
		t.Fatalf("fit = (%v, %v, r2=%v), want (1, 2, 1)", a, b, r2)
	}
}

func TestLinearFitErrors(t *testing.T) {
	if _, _, _, err := LinearFit([]float64{1}, []float64{1}); err == nil {
		t.Error("one-point fit did not error")
	}
	if _, _, _, err := LinearFit([]float64{1, 1}, []float64{1, 2}); err == nil {
		t.Error("degenerate x fit did not error")
	}
	if _, _, _, err := LinearFit([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("mismatched lengths did not error")
	}
}

func TestPolyFit2RecoversQuadratic(t *testing.T) {
	// The Fig-5 energy law: E = c0 + c2 * px^2.
	xs := []float64{20, 40, 60, 80, 100, 120, 140, 160}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 5 + 0.003*x*x
	}
	c, err := PolyFit2(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(c[0], 5, 1e-6) || !almostEq(c[1], 0, 1e-6) || !almostEq(c[2], 0.003, 1e-9) {
		t.Fatalf("coefficients = %v, want [5 0 0.003]", c)
	}
}

func TestPolyFit2Errors(t *testing.T) {
	if _, err := PolyFit2([]float64{1, 2}, []float64{1, 2}); err == nil {
		t.Error("two-point quadratic fit did not error")
	}
	if _, err := PolyFit2([]float64{1, 1, 1}, []float64{1, 1, 1}); err == nil {
		t.Error("singular quadratic fit did not error")
	}
}

func TestCrossovers(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4}
	a := []float64{0, 1, 2, 3, 4}
	b := []float64{2, 2, 2, 2, 2} // a crosses b between x=1 and x=2 (equality at 2)
	cs, err := Crossovers(xs, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 1 {
		t.Fatalf("crossovers = %d, want 1 (%v)", len(cs), cs)
	}
	if !almostEq(cs[0].X, 2, 1e-12) {
		t.Fatalf("crossover at %v, want 2", cs[0].X)
	}
}

func TestCrossoversNone(t *testing.T) {
	xs := []float64{0, 1, 2}
	a := []float64{5, 6, 7}
	b := []float64{1, 2, 3}
	cs, err := Crossovers(xs, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 0 {
		t.Fatalf("unexpected crossovers %v", cs)
	}
}

func TestCrossoversErrors(t *testing.T) {
	if _, err := Crossovers([]float64{0, 0}, []float64{1, 2}, []float64{2, 1}); err == nil {
		t.Error("non-increasing xs did not error")
	}
	if _, err := Crossovers([]float64{0}, []float64{1, 2}, []float64{2, 1}); err == nil {
		t.Error("mismatched lengths did not error")
	}
}

func TestArgMaxMin(t *testing.T) {
	xs := []float64{3, 9, 1, 9, -4}
	if i := ArgMax(xs); i != 1 {
		t.Errorf("ArgMax = %d, want 1 (first max)", i)
	}
	if i := ArgMin(xs); i != 4 {
		t.Errorf("ArgMin = %d, want 4", i)
	}
	if ArgMax(nil) != -1 || ArgMin(nil) != -1 {
		t.Error("empty ArgMax/ArgMin must be -1")
	}
}

func TestMeanStdDevEmpty(t *testing.T) {
	if Mean(nil) != 0 || StdDev(nil) != 0 {
		t.Fatal("empty Mean/StdDev must be 0")
	}
}
