package stats

import (
	"math"
	"testing"
)

func TestKahanZeroValue(t *testing.T) {
	var k Kahan
	if k.Sum() != 0 {
		t.Fatalf("zero Kahan sums to %v", k.Sum())
	}
	k.Add(1.5)
	if k.Sum() != 1.5 {
		t.Fatalf("single add: got %v", k.Sum())
	}
}

// The classic failure: summing 0.1 a million times drifts by ~1e-9
// naively; the compensated sum stays within one ulp of the true value.
func TestKahanBeatsNaiveSum(t *testing.T) {
	const n = 1_000_000
	var naive float64
	var k Kahan
	for i := 0; i < n; i++ {
		naive += 0.1
		k.Add(0.1)
	}
	want := 0.1 * n
	if err := math.Abs(k.Sum() - want); err > 1e-10 {
		t.Fatalf("compensated sum off by %g", err)
	}
	if math.Abs(naive-want) <= math.Abs(k.Sum()-want) {
		t.Fatalf("expected naive drift (%g) to exceed compensated error (%g)",
			naive-want, k.Sum()-want)
	}
}

// Neumaier's variant must survive a large term swamping the running
// sum: 1 + 1e100 + 1 - 1e100 == 2, where plain Kahan returns 0.
func TestKahanLargeCancellation(t *testing.T) {
	var k Kahan
	for _, x := range []float64{1, 1e100, 1, -1e100} {
		k.Add(x)
	}
	if got := k.Sum(); got != 2 {
		t.Fatalf("cancellation sum = %v, want 2", got)
	}
}

// Summation order must not change the compensated total beyond one ulp
// — the property the energy ledger's determinism bar leans on.
func TestKahanOrderInsensitive(t *testing.T) {
	xs := make([]float64, 0, 2000)
	for i := 0; i < 1000; i++ {
		xs = append(xs, 1e-3*float64(i), 1e6/float64(i+1))
	}
	var fwd, rev Kahan
	for i := range xs {
		fwd.Add(xs[i])
		rev.Add(xs[len(xs)-1-i])
	}
	if diff := math.Abs(fwd.Sum() - rev.Sum()); diff > 1e-6 {
		t.Fatalf("order changed compensated sum by %g", diff)
	}
}
