package lint

// errdrop: the ledger, the observability layer and the record store
// are the module's durable write paths — a swallowed error there is a
// truncated JSONL ledger that still audits "ok", a metrics export
// missing its tail, an archive that silently lost records. Any call
// into internal/ledger, internal/obs or internal/store whose error
// result is discarded — a bare expression statement, an assignment to
// blank, or a go/defer statement — is a finding. Genuine best-effort
// sites (error paths that already return a better error) carry
// //beelint:allow errdrop <reason> like every other audited escape.

import (
	"go/ast"
	"go/types"
)

// errDropPkgs are the write-path packages whose error results must not
// be dropped.
var errDropPkgs = []string{
	"internal/ledger",
	"internal/obs",
	"internal/store",
}

// droppablePathErr reports whether call targets an error-returning
// function declared in one of the guarded packages, returning the
// rendered name for the message.
func droppablePathErr(info *types.Info, call *ast.CallExpr) (string, bool) {
	fn := StaticCallee(info, call)
	if fn == nil || fn.Pkg() == nil {
		return "", false
	}
	guarded := false
	for _, p := range errDropPkgs {
		if pathHasSuffix(fn.Pkg().Path(), p) {
			guarded = true
			break
		}
	}
	if !guarded {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return "", false
	}
	res := sig.Results()
	if res.Len() == 0 {
		return "", false
	}
	last := res.At(res.Len() - 1).Type()
	named, ok := last.(*types.Named)
	if !ok || named.Obj().Name() != "error" || named.Obj().Pkg() != nil {
		return "", false
	}
	return shortFunc(fn), true
}

var analyzerErrDrop = &Analyzer{
	Name: "errdrop",
	Doc:  "discarded errors on ledger/obs/store write paths",
	Run: func(p *Pass) {
		info := p.Pkg.Info
		report := func(call *ast.CallExpr, how string) {
			name, ok := droppablePathErr(info, call)
			if !ok {
				return
			}
			p.Reportf(call.Pos(),
				"%s returns an error that is %s; ledger/obs/store write errors must be "+
					"handled (annotate best-effort sites with //beelint:allow errdrop <reason>)",
				name, how)
		}
		inspectFiles(p, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.ExprStmt:
				if call, ok := s.X.(*ast.CallExpr); ok {
					report(call, "discarded")
				}
			case *ast.GoStmt:
				report(s.Call, "discarded by go")
			case *ast.DeferStmt:
				report(s.Call, "discarded by defer")
			case *ast.AssignStmt:
				// Blank assignment of the error position: `_ = w.Close()`
				// or `v, _ := store.Open(...)` where _ holds the error.
				for i, rhs := range s.Rhs {
					call, ok := rhs.(*ast.CallExpr)
					if !ok {
						continue
					}
					// Single call on the RHS: the error is the last LHS
					// slot; one-to-one assignments align by index.
					var errLHS ast.Expr
					if len(s.Rhs) == 1 {
						errLHS = s.Lhs[len(s.Lhs)-1]
					} else if i < len(s.Lhs) {
						errLHS = s.Lhs[i]
					}
					if id, ok := errLHS.(*ast.Ident); ok && id.Name == "_" {
						report(call, "assigned to _")
					}
				}
			}
			return true
		})
	},
}
