package fixcorpus

import "beesim/internal/units"

func totalEnergy(quanta []units.Joules) units.Joules {
	var total units.Joules
	for _, q := range quanta {
		total += q
	}
	return total
}
