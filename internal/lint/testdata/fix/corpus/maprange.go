// Fixture: -fix corpus input. Each file in this package carries
// exactly the findings whose mechanical rewrite beelint -fix ships;
// the .golden siblings pin the fixed output byte for byte.
package fixcorpus

import "fmt"

func printTallies(m map[string]int) {
	for k := range m {
		fmt.Println(k, m[k])
	}
}
