package fixcorpus

import "math/rand"

func jitter(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return r.Float64()
}
