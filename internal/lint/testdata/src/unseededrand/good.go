package unseededrand

import "beesim/internal/rng"

func draw(seed uint64) float64 { return rng.New(seed).Float64() }
