// Fixture: banned randomness imports.
package unseededrand

import (
	_ "crypto/rand" // want unseededrand
	_ "math/rand" // want unseededrand
)
