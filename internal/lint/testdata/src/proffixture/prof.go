// Fixture: checked under the import path fixture/internal/prof, which
// matches the walltime exemption for the profiling package — wall-clock
// reads here are the package's whole purpose.
package prof

import "time"

func Stamp() time.Time { return time.Now() }
