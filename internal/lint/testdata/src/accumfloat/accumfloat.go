// Fixture: accumfloat flags += accumulation of Joules inside loops,
// which should route through the compensated summation in
// internal/stats instead.
package accumfloat

import (
	"beesim/internal/stats"

	"beesim/internal/units"
)

func naive(quanta []units.Joules) units.Joules {
	var total units.Joules
	for _, q := range quanta {
		total += q // want accumfloat
	}
	return total
}

func fine(quanta []units.Joules) units.Joules {
	var once units.Joules
	once += quanta[0]

	var raw float64
	for _, q := range quanta {
		raw += float64(q)
	}
	_ = raw

	var k stats.Kahan
	for _, q := range quanta {
		k.Add(float64(q))
	}
	return once + units.Joules(k.Sum())
}
