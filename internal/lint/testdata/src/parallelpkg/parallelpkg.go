// Fixture: checked under the synthetic import path
// "fixture/internal/parallel", so the gostmt analyzer treats it as the
// sanctioned concurrency package — its worker-pool goroutines need no
// //beelint:allow annotations.
package parallelpkg

import "sync"

// fanOut spawns a worker pool the way internal/parallel does; inside
// the sanctioned package this is not a finding.
func fanOut(workers int, fn func(int)) {
	var wg sync.WaitGroup
	wg.Add(workers)
	for g := 0; g < workers; g++ {
		g := g
		go func() {
			defer wg.Done()
			fn(g)
		}()
	}
	wg.Wait()
}
