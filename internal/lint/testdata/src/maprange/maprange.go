// Fixture: maprange flags map iteration whose order leaks into
// appends, printed output, or writer sinks; collect-then-sort and
// per-iteration locals are exempt.
package maprange

import (
	"fmt"
	"sort"
	"strings"
)

func leaky(m map[string]int) []string {
	var keys []string
	for k := range m { // want maprange
		keys = append(keys, k)
	}
	for k, v := range m { // want maprange
		fmt.Println(k, v)
	}
	var b strings.Builder
	for k := range m { // want maprange
		b.WriteString(k)
	}
	return keys
}

func clean(m map[string]int, xs []int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	n := 0
	for range m {
		n++
	}
	_ = n

	var out []int
	for _, x := range xs {
		out = append(out, x)
	}
	_ = out

	type row struct{ vals []int }
	var rows []row
	for k := range m {
		r := row{}
		r.vals = append(r.vals, len(k))
		rows = append(rows, r)
	}
	sort.Slice(rows, func(i, j int) bool { return len(rows[i].vals) < len(rows[j].vals) })
	return keys
}
