// Fixture: walltime flags wall-clock reads; pure time arithmetic and
// time.Time values passed in are fine.
package walltime

import "time"

func clocky(d time.Duration) time.Duration {
	t0 := time.Now() // want walltime
	time.Sleep(d)    // want walltime
	el := time.Since(t0) // want walltime
	return el + d
}

func pure(d time.Duration, at time.Time) time.Time {
	base := time.Date(2023, 7, 1, 0, 0, 0, 0, time.UTC)
	if at.After(base) {
		return at.Add(d)
	}
	return base.Add(2 * d)
}
