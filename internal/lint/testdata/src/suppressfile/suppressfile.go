// Fixture: a file-level directive before the package clause silences a
// check for the whole file.
//beelint:allow walltime fixture: the whole file talks to the real clock
package suppressfile

import "time"

func A() time.Time { return time.Now() }

func B() { time.Sleep(0) }
