// Fixture: sharedcapture flags writes to captured state inside task
// closures handed to internal/parallel; writes to each task's private
// index slot (derived from the closure's own parameters) stay clean.
package sharedcapture

import "beesim/internal/parallel"

func racyCounter(n int) int {
	total := 0
	_ = parallel.MapChunks(0, n, func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			total++ // want sharedcapture
		}
		return nil
	})
	return total
}

func racyMap(n int, seen map[int]bool) {
	_ = parallel.MapChunks(0, n, func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			seen[i] = true // want sharedcapture
		}
		return nil
	})
}

func racyAssign(n int) error {
	var last int
	_, err := parallel.Map(0, n, func(i int) (int, error) {
		last = i // want sharedcapture
		return i * i, nil
	})
	_ = last
	return err
}

func cleanSlots(n int) []float64 {
	out := make([]float64, n)
	_ = parallel.MapChunks(0, n, func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			out[i] = float64(i) // private slot: exempt
		}
		return nil
	})
	return out
}

func cleanReturns(n int) ([]int, error) {
	return parallel.Map(0, n, func(i int) (int, error) {
		local := i * 2
		return local, nil
	})
}

func audited(n int) int {
	hits := 0
	_ = parallel.MapChunks(1, n, func(lo, hi int) error {
		hits += hi - lo //beelint:allow sharedcapture single worker by construction
		return nil
	})
	return hits
}
