// Fixture: unitcast flags float64 casts that mix distinct unit types
// in one additive expression, and bare numeric literals passed where a
// unit type is expected.
package unitcast

import "beesim/internal/units"

func consume(e units.Joules) {}

func consumeMany(es ...units.Joules) {}

func mix(j units.Joules, w units.Watts) {
	_ = float64(j) + float64(w) // want unitcast
	_ = float64(j) - float64(w) // want unitcast

	j2 := units.Joules(1)
	_ = float64(j) + float64(j2)
	_ = float64(j) / float64(w)
	_ = float64(j) + 3.0
}

func literals(j units.Joules) {
	consume(2.5) // want unitcast
	consumeMany(j, 7) // want unitcast
	consume(units.Joules(2.5))
	consume(0)
	consume(j)
}
