// Fixture: gostmt flags go statements spawned inside DES event
// handlers, where they would race the single-threaded virtual clock.
package gostmt

import (
	"time"

	"beesim/internal/des"
)

func work() {}

func schedule(start time.Time) {
	s := des.New(start)
	_, _ = s.After(time.Minute, func() {
		go work() // want gostmt
	})
	_, _ = s.At(start.Add(time.Hour), func() {
		work()
	})
	p := des.NewProcess(s)
	_ = p.Then(time.Second, func(pp *des.Process) {
		go work() // want gostmt
	})
	go work()
	s.Run(start.Add(2 * time.Hour))
}
