// Fixture: gostmt flags go statements spawned inside DES event
// handlers (where they would race the single-threaded virtual clock),
// calls into internal/parallel from inside a handler (fan-out must
// stay outside the event loop), and any other go statement in
// simulated code (concurrency goes through internal/parallel).
package gostmt

import (
	"time"

	"beesim/internal/des"
	"beesim/internal/parallel"
)

func work() {}

func schedule(start time.Time) {
	s := des.New(start)
	_, _ = s.After(time.Minute, func() {
		go work() // want gostmt
	})
	_, _ = s.At(start.Add(time.Hour), func() {
		work()
	})
	_, _ = s.Every(time.Minute, func() {
		_, _ = parallel.Map(2, 4, func(i int) (int, error) { return i, nil }) // want gostmt
	})
	p := des.NewProcess(s)
	_ = p.Then(time.Second, func(pp *des.Process) {
		go work() // want gostmt
	})
	go work() // want gostmt
	s.Run(start.Add(2 * time.Hour))
}

// fanOut calls the sanctioned layer outside any event handler: fine.
func fanOut() ([]int, error) {
	return parallel.Map(2, 4, func(i int) (int, error) { return i * i, nil })
}
