// Fixture: checked under the synthetic import path
// "fixture/internal/ledger", so errdrop treats its error-returning
// functions as guarded write paths.
package ledgerpkg

// Book stands in for the energy ledger.
type Book struct{ n int }

// Append records one entry and can fail.
func (b *Book) Append(n int) error {
	b.n += n
	return nil
}

// Flush persists the book and can fail.
func Flush() error { return nil }

// Open loads a book from disk.
func Open() (*Book, error) { return &Book{}, nil }

// Peek returns the running total; no error to drop.
func Peek(b *Book) int { return b.n }
