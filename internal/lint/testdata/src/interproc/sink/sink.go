// Fixture: output-sink summaries. Log prints (a direct sink); Describe
// only touches a function-local builder and is not a sink.
package sink

import (
	"fmt"
	"strings"
)

// Log prints one line — a direct output sink.
func Log(s string) { fmt.Println(s) }

// Relay forwards to Log — a transitive output sink.
func Relay(s string) { Log(s) }

// Describe builds a string locally; order is not observable.
func Describe(s string) string {
	var b strings.Builder
	b.WriteString("<")
	b.WriteString(s)
	b.WriteString(">")
	return b.String()
}
