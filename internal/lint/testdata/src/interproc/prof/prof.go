// Fixture: interprocedural walltime source. Checked under
// "fixture/ip/internal/prof", an exempt path suffix, so the wall-clock
// read below is audited — file-locally clean, but it taints callers.
package prof

import "time"

// Stamp reads the wall clock under the profiling exemption.
func Stamp() time.Time { return time.Now() }
