// Fixture: the laundering hop. The call into the profiling clock is
// audited here, so the taint passes through Helper quietly — the next
// unannotated cross-package caller is the one that gets reported.
package mid

import (
	"time"

	"fixture/ip/internal/prof"
)

// Helper forwards the profiling clock behind an audited call site.
func Helper() time.Time {
	//beelint:allow walltime profiling timestamp for offline reports
	return prof.Stamp()
}
