// Fixture: an audited randomness source. The file-header directive
// suppresses the import finding, so Draw taints its cross-package
// callers instead of being reported here.
//
//beelint:allow unseededrand audited noise source for robustness sweeps
package randsrc

import "math/rand"

// Draw pulls from the audited source.
func Draw() float64 { return rand.Float64() }
