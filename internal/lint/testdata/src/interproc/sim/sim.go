// Fixture: the simulated side. Every finding in this file exists only
// because of the module-wide pass — file-locally each call is an
// innocent cross-package function call.
package sim

import (
	"time"

	"fixture/ip/mid"
	"fixture/ip/randsrc"
	"fixture/ip/sink"
)

// Run reaches the wall clock two hops away (sim -> mid -> prof).
func Run() time.Time {
	return mid.Helper() // want walltime
}

// Jitter reaches the audited randomness source.
func Jitter() float64 {
	return randsrc.Draw() // want unseededrand
}

// Dump leaks map order through a transitive print helper.
func Dump(m map[string]int) {
	for k := range m { // want maprange
		sink.Relay(k)
	}
	for k := range m {
		_ = sink.Describe(k) // not a sink: clean
	}
}

// Audited annotates the laundered clock call; the taint passes through
// quietly and this function produces no finding.
func Audited() time.Time {
	//beelint:allow walltime report-generation timestamp
	return mid.Helper()
}
