// Fixture: malformed directives are findings themselves and never
// suppress anything.
package suppressbad

import "time"

func missingReason() time.Time {
	return time.Now() //beelint:allow walltime
}

func unknownCheck() {
	_ = 1 //beelint:allow nosuchcheck because reasons
}

//beelint:allow maprange
func bareDirective() {}
