// Fixture: exhaustive requires switches over closed module enum sets
// (two or more package-level constants of one named type) to cover
// every constant or carry an audited default. Stdlib enums and
// open-ended switches are out of scope.
package exhaustive

import "time"

type Phase int

const (
	Idle Phase = iota
	Sense
	Upload
)

type Mode string

const (
	Edge  Mode = "edge"
	Cloud Mode = "cloud"
)

// Lone has a single constant: not a closed set, never flagged.
type Lone int

const Only Lone = 1

func missing(p Phase) string {
	switch p { // want exhaustive
	case Idle:
		return "idle"
	case Sense:
		return "sense"
	}
	return "?"
}

func full(p Phase) string {
	switch p {
	case Idle:
		return "idle"
	case Sense:
		return "sense"
	case Upload:
		return "upload"
	}
	return "?"
}

func defaulted(m Mode) string {
	switch m {
	case Edge:
		return "edge"
	default:
		return "elsewhere"
	}
}

func dynamic(p, q Phase) string {
	// A non-constant case makes coverage undecidable; treated as an
	// audit like a default.
	switch p {
	case q:
		return "same"
	}
	return "other"
}

func stdlib(m time.Month) bool {
	switch m {
	case time.January:
		return true
	}
	return false
}

func lone(l Lone) bool {
	switch l {
	case Only:
		return true
	}
	return false
}

func suppressed(m Mode) string {
	//beelint:allow exhaustive cloud handled by the caller's fallback
	switch m {
	case Edge:
		return "edge"
	}
	return ""
}
