// Fixture: checked under fixture/internal/rng — the one package
// allowed to touch the standard library's randomness.
package rng

import _ "math/rand"
