// Fixture: errdrop flags discarded errors from calls into the guarded
// write-path packages (ledger/obs/store): bare statements, blank
// assignments, and go/defer statements. Handled errors and audited
// best-effort sites stay clean.
package errdrop

import ledger "fixture/internal/ledger"

func drops(b *ledger.Book) {
	b.Append(1)       // want errdrop
	_ = b.Append(2)   // want errdrop
	defer b.Append(3) // want errdrop
	ledger.Flush()    // want errdrop
}

func dropsBlankOpen() *ledger.Book {
	bk, _ := ledger.Open() // want errdrop
	return bk
}

func handled(b *ledger.Book) error {
	if err := b.Append(1); err != nil {
		return err
	}
	bk, err := ledger.Open()
	if err != nil {
		return err
	}
	_ = ledger.Peek(bk) // no error result: clean
	return ledger.Flush()
}

func audited(b *ledger.Book) {
	_ = b.Append(9) //beelint:allow errdrop best-effort flush on shutdown
}
