// Fixture: line-level directives cover their own line and the next;
// unscoped findings survive.
package suppress

import "time"

func trailing() time.Time {
	return time.Now() //beelint:allow walltime fixture: trailing directive
}

func above() time.Time {
	//beelint:allow walltime fixture: directive on the line above
	return time.Now()
}

func unsuppressed() time.Time {
	return time.Now() // want walltime
}
