package lint

// The ratchet. A lint gate that can only be adopted on a perfectly
// clean tree never gets adopted; one that silently tolerates existing
// debt never pays it down. The baseline file is the middle path: a
// checked-in inventory of currently-accepted findings, keyed by
// (file, check) with a count. CI fails on anything beyond the
// baseline — new debt is impossible — while stale entries (fixed debt
// the file still lists) are reported so the baseline only ever
// shrinks. Regenerate with beelint -write-baseline after paying debt.

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// BaselineEntry accepts Count findings of one check in one file.
type BaselineEntry struct {
	File  string `json:"file"`
	Check string `json:"check"`
	Count int    `json:"count"`
}

// Baseline is the persisted ratchet state.
type Baseline struct {
	Version int             `json:"version"`
	Entries []BaselineEntry `json:"entries"`
}

// NewBaseline inventories findings into a baseline, sorted for stable
// serialization. Findings must carry module-relative paths so the file
// is checkout-independent.
func NewBaseline(findings []Finding) *Baseline {
	counts := make(map[[2]string]int)
	for _, f := range findings {
		counts[[2]string{f.File, f.Check}]++
	}
	b := &Baseline{Version: 1, Entries: []BaselineEntry{}}
	for key, n := range counts {
		b.Entries = append(b.Entries, BaselineEntry{File: key[0], Check: key[1], Count: n})
	}
	sort.Slice(b.Entries, func(i, j int) bool {
		a, c := b.Entries[i], b.Entries[j]
		if a.File != c.File {
			return a.File < c.File
		}
		return a.Check < c.Check
	})
	return b
}

// LoadBaseline reads a baseline file. A missing file is not an error:
// it loads as the empty baseline, the strictest possible ratchet.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &Baseline{Version: 1, Entries: []BaselineEntry{}}, nil
	}
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("lint: parsing baseline %s: %w", path, err)
	}
	if b.Version != 1 {
		return nil, fmt.Errorf("lint: baseline %s has unsupported version %d", path, b.Version)
	}
	return &b, nil
}

// Write persists the baseline as indented JSON.
func (b *Baseline) Write(path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Diff splits findings against the baseline: fresh findings exceed the
// accepted count for their (file, check) key and must fail the build;
// stale entries accept findings that no longer occur and should be
// ratcheted out of the file.
func (b *Baseline) Diff(findings []Finding) (fresh []Finding, stale []BaselineEntry) {
	allowed := make(map[[2]string]int, len(b.Entries))
	for _, e := range b.Entries {
		allowed[[2]string{e.File, e.Check}] = e.Count
	}
	seen := make(map[[2]string]int)
	for _, f := range findings {
		key := [2]string{f.File, f.Check}
		seen[key]++
		if seen[key] > allowed[key] {
			fresh = append(fresh, f)
		}
	}
	for _, e := range b.Entries {
		if seen[[2]string{e.File, e.Check}] < e.Count {
			stale = append(stale, e)
		}
	}
	return fresh, stale
}
