package lint

// Suppression directives. A finding is a conversation between the
// linter and the author; //beelint:allow is the author's documented
// side of it:
//
//	//beelint:allow <check> <reason...>
//
// Placed in a file's header (any comment ending on or before the
// package clause's line), the directive suppresses <check> for the
// whole file. Placed anywhere else, it suppresses <check> on its own
// line and on the line immediately below — so it can trail the
// offending statement or sit on its own line above it.
//
// The reason is mandatory: a suppression without one, or one naming an
// unknown check, is itself reported (check "directive") and cannot be
// suppressed. That keeps every escape hatch auditable with
// `grep -rn beelint:allow`.

import (
	"go/token"
	"strconv"
	"strings"
)

const directivePrefix = "//beelint:allow"

// suppressor indexes the parsed directives of one package.
type suppressor struct {
	// file-level: file -> set of allowed checks
	file map[string]map[string]bool
	// line-level: file -> line -> set of allowed checks
	line map[string]map[int]map[string]bool
}

func (s *suppressor) suppressed(f Finding) bool {
	if f.Check == "directive" {
		return false
	}
	if checks, ok := s.file[f.File]; ok && checks[f.Check] {
		return true
	}
	lines := s.line[f.File]
	if lines == nil {
		return false
	}
	// A directive covers its own line and the next one.
	return lines[f.Line][f.Check] || lines[f.Line-1][f.Check]
}

// ParseDirective classifies one comment's text as a //beelint:allow
// directive against the known check set. It returns the allowed check
// name when the directive is well-formed (ok true); a non-empty
// problem when the text is a malformed directive that deserves a
// "directive" finding; and ("", false, "") when the text is not a
// beelint directive at all. Exported for the fuzz harness: the parser
// must hold these invariants (and not panic) on arbitrary input.
func ParseDirective(text string, known map[string]bool) (check string, ok bool, problem string) {
	if !strings.HasPrefix(text, directivePrefix) {
		return "", false, ""
	}
	rest := strings.TrimPrefix(text, directivePrefix)
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		// e.g. //beelint:allowance — not ours.
		return "", false, ""
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return "", false, "malformed //beelint:allow: missing check name and reason"
	}
	if !known[fields[0]] {
		return "", false, "//beelint:allow names unknown check " + strconv.Quote(fields[0])
	}
	if len(fields) < 2 {
		return "", false, "//beelint:allow " + fields[0] + ": a reason is mandatory"
	}
	return fields[0], true, ""
}

// parseDirectives scans every comment in the package for
// //beelint:allow directives, returning the suppression index and any
// findings about malformed directives.
func parseDirectives(pkg *Package, fset *token.FileSet) (*suppressor, []Finding) {
	sup := &suppressor{
		file: make(map[string]map[string]bool),
		line: make(map[string]map[int]map[string]bool),
	}
	known := AnalyzerNames()
	var findings []Finding
	for _, f := range pkg.Files {
		pkgLine := fset.Position(f.Package).Line
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				check, ok, problem := ParseDirective(c.Text, known)
				if !ok && problem == "" {
					continue
				}
				pos := fset.Position(c.Pos())
				if problem != "" {
					findings = append(findings, Finding{
						File: pos.Filename, Line: pos.Line, Col: pos.Column,
						Check: "directive", Msg: problem,
					})
					continue
				}
				endLine := fset.Position(c.End()).Line
				if endLine <= pkgLine {
					set := sup.file[pos.Filename]
					if set == nil {
						set = make(map[string]bool)
						sup.file[pos.Filename] = set
					}
					set[check] = true
					continue
				}
				lines := sup.line[pos.Filename]
				if lines == nil {
					lines = make(map[int]map[string]bool)
					sup.line[pos.Filename] = lines
				}
				set := lines[pos.Line]
				if set == nil {
					set = make(map[string]bool)
					lines[pos.Line] = set
				}
				set[check] = true
			}
		}
	}
	return sup, findings
}
