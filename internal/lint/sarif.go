package lint

// SARIF 2.1.0 output. CI systems (and editors) ingest SARIF natively,
// so beelint -format sarif turns findings into inline review
// annotations without a format shim. Only the small stable core of the
// spec is emitted: one run, one rule per analyzer, one result per
// finding with a physical location. Output is byte-stable for a given
// finding set — the same contract as the text and JSON forms.

import (
	"encoding/json"
	"io"
	"path/filepath"
)

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF renders the findings as a SARIF 2.1.0 log. Findings are
// expected to be sorted (SortFindings) and to carry module-relative
// file paths; absolute paths are passed through as-is.
func WriteSARIF(w io.Writer, findings []Finding) error {
	rules := []sarifRule{{
		ID:               "directive",
		ShortDescription: sarifMessage{Text: "malformed //beelint:allow suppression directive"},
	}}
	for _, a := range Analyzers() {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: a.Doc}})
	}
	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		results = append(results, sarifResult{
			RuleID:  f.Check,
			Level:   "error",
			Message: sarifMessage{Text: f.Msg},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: filepath.ToSlash(f.File)},
					Region:           sarifRegion{StartLine: f.Line, StartColumn: f.Col},
				},
			}},
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "beelint", Rules: rules}},
			Results: results,
		}},
	})
}
