package lint

// accumfloat: a week-long trace folds hundreds of thousands of small
// energy quanta into running totals. Naive `total += e` in a loop
// accumulates O(n·eps) rounding error — enough to trip the ledger's
// conservation auditor at tight tolerances — and makes the final joule
// count depend on summation order. Loop accumulation onto units.Joules
// must go through compensated summation (stats.Kahan) or carry an
// explicit //beelint:allow accumfloat justification (e.g. bounded loop
// counts where the error is provably below the audit tolerance).

import (
	"go/ast"
	"go/token"
)

type accumVisitor struct {
	pass   *Pass
	inLoop bool
}

func (v *accumVisitor) Visit(n ast.Node) ast.Visitor {
	switch s := n.(type) {
	case *ast.ForStmt, *ast.RangeStmt:
		return &accumVisitor{pass: v.pass, inLoop: true}
	case *ast.AssignStmt:
		if !v.inLoop || s.Tok != token.ADD_ASSIGN || len(s.Lhs) != 1 {
			break
		}
		named, ok := unitsType(v.pass.Pkg.Info.TypeOf(s.Lhs[0]))
		if !ok || named.Obj().Name() != "Joules" {
			break
		}
		v.pass.Reportf(s.Pos(),
			"+= on units.Joules inside a loop loses precision as the total grows; "+
				"accumulate through stats.Kahan (compensated summation)")
	}
	return v
}

var analyzerAccumFloat = &Analyzer{
	Name: "accumfloat",
	Doc:  "naive += Joules accumulation in loops (use compensated summation)",
	Run: func(p *Pass) {
		for _, f := range p.Pkg.Files {
			ast.Walk(&accumVisitor{pass: p}, f)
		}
	},
}
