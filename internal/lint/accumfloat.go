package lint

// accumfloat: a week-long trace folds hundreds of thousands of small
// energy quanta into running totals. Naive `total += e` in a loop
// accumulates O(n·eps) rounding error — enough to trip the ledger's
// conservation auditor at tight tolerances — and makes the final joule
// count depend on summation order. Loop accumulation onto units.Joules
// must go through compensated summation (stats.Kahan) or carry an
// explicit //beelint:allow accumfloat justification (e.g. bounded loop
// counts where the error is provably below the audit tolerance).

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

type accumVisitor struct {
	pass *Pass
	file *ast.File
	// loop is the innermost enclosing for/range statement, nil at the
	// top level.
	loop ast.Stmt
}

func (v *accumVisitor) Visit(n ast.Node) ast.Visitor {
	switch s := n.(type) {
	case *ast.ForStmt:
		return &accumVisitor{pass: v.pass, file: v.file, loop: s}
	case *ast.RangeStmt:
		return &accumVisitor{pass: v.pass, file: v.file, loop: s}
	case *ast.AssignStmt:
		if v.loop == nil || s.Tok != token.ADD_ASSIGN || len(s.Lhs) != 1 {
			break
		}
		named, ok := unitsType(v.pass.Pkg.Info.TypeOf(s.Lhs[0]))
		if !ok || named.Obj().Name() != "Joules" {
			break
		}
		v.pass.ReportFixf(s.Pos(), accumFix(v.pass, v.file, v.loop, s, named),
			"+= on units.Joules inside a loop loses precision as the total grows; "+
				"accumulate through stats.Kahan (compensated summation)")
	}
	return v
}

// accumFix builds the compensated-summation rewrite: a stats.Kahan
// accumulator declared before the loop collects the quanta, and the
// original total receives one rounded add after it. Nil when the loop
// holds more than one Joules accumulation (the declarations would
// collide) or required names are taken.
func accumFix(p *Pass, file *ast.File, loop ast.Stmt, s *ast.AssignStmt, joules *types.Named) *Fix {
	if countJoulesAccums(p, loop) != 1 {
		return nil
	}
	if rootIdent(s.Lhs[0]) == nil {
		return nil
	}
	statsPath := modulePrefix(joules.Obj().Pkg().Path()) + "/internal/stats"
	if !nameFreeAt(p.Pkg, loop.Pos(), "acc", "") || !nameFreeAt(p.Pkg, loop.Pos(), "stats", statsPath) {
		return nil
	}
	qual, ok := joulesQualifier(p, file, joules)
	if !ok {
		return nil
	}
	lhs := types.ExprString(s.Lhs[0])
	rhs := types.ExprString(s.Rhs[0])
	return &Fix{
		Edits: []FixEdit{
			{Pos: loop.Pos(), End: loop.Pos(), New: "var acc stats.Kahan\n"},
			{Pos: s.Pos(), End: s.End(), New: fmt.Sprintf("acc.Add(float64(%s))", rhs)},
			{Pos: loop.End(), End: loop.End(), New: fmt.Sprintf("\n%s += %s(acc.Sum())", lhs, qual)},
		},
		Imports: []FixImport{{Path: statsPath}},
	}
}

// countJoulesAccums counts the += statements onto units.Joules directly
// inside loop (nested loops report on their own).
func countJoulesAccums(p *Pass, loop ast.Stmt) int {
	n := 0
	ast.Inspect(loop, func(node ast.Node) bool {
		if node != loop {
			switch node.(type) {
			case *ast.ForStmt, *ast.RangeStmt, *ast.FuncLit:
				return false
			}
		}
		if s, ok := node.(*ast.AssignStmt); ok && s.Tok == token.ADD_ASSIGN && len(s.Lhs) == 1 {
			if named, ok := unitsType(p.Pkg.Info.TypeOf(s.Lhs[0])); ok && named.Obj().Name() == "Joules" {
				n++
			}
		}
		return true
	})
	return n
}

// joulesQualifier renders the conversion back to the units type as the
// file refers to it: "Joules" inside the defining package, or
// "<localname>.Joules" through the file's import of it.
func joulesQualifier(p *Pass, file *ast.File, joules *types.Named) (string, bool) {
	if joules.Obj().Pkg() == p.Pkg.Types {
		return joules.Obj().Name(), true
	}
	for _, imp := range file.Imports {
		path := importPathOf(imp)
		if path != joules.Obj().Pkg().Path() {
			continue
		}
		name := joules.Obj().Pkg().Name()
		if imp.Name != nil {
			name = imp.Name.Name
		}
		if name == "." || name == "_" {
			return "", false
		}
		return name + "." + joules.Obj().Name(), true
	}
	return "", false
}

var analyzerAccumFloat = &Analyzer{
	Name: "accumfloat",
	Doc:  "naive += Joules accumulation in loops (use compensated summation)",
	Run: func(p *Pass) {
		for _, f := range p.Pkg.Files {
			ast.Walk(&accumVisitor{pass: p, file: f}, f)
		}
	},
}
