package lint

// The interprocedural pass. Three v1 analyzers get module-wide
// summaries layered on top of their file-local checks:
//
//   - walltime: a function that (transitively) reads the wall clock
//     under an audited context — an exempt package like internal/prof,
//     or a //beelint:allow walltime annotation — is wall-TAINTED. The
//     audit covers the context it was written for; a call into the
//     tainted function from a *different, non-exempt package* is a new,
//     unaudited context and is reported at the call site, with the full
//     call chain down to the clock read in the message.
//
//   - unseededrand: the same scheme for banned randomness. A function
//     in a rand-audited file (exempt package or suppressed import) that
//     draws from math/rand or crypto/rand taints its cross-package
//     callers.
//
//   - maprange: the dual direction. A function that (transitively)
//     performs order-observable output — prints, writes to an external
//     writer, or mutates the ledger/obs layer — is a SINK. A map range
//     whose body calls a sink function leaks iteration order exactly
//     like a direct fmt.Println in the loop, and is reported at the
//     range with the chain from the called helper down to the output.
//
// Taint spreads quietly through same-package calls, exempt packages,
// and annotated call sites; it stops — and reports — at the first
// unannotated cross-package call from simulated code. That makes every
// audit boundary walk outward one explicit annotation at a time: the
// ratchet the determinism contract wants.
//
// Sources that are *not* audited (an unsuppressed time.Now in a normal
// package) are already findings from the file-local pass; propagating
// them again would report the same bug at every caller, so they do not
// taint.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
)

// Module is the whole-program view handed to the interprocedural pass.
type Module struct {
	Pkgs  []*Package
	Fset  *token.FileSet
	Graph *CallGraph
	// Root is the directory findings are reported relative to (the
	// module root for real runs, the repo root for fixture tests).
	Root string
	// sup is the union of every package's suppression directives.
	sup *suppressor
	// pkgSet indexes the analyzed packages by path, distinguishing
	// module-internal callees from stdlib ones.
	pkgSet map[string]*Package
}

// NewModule builds the call graph and directive index for a package
// set. The returned Module is ready for InterproceduralFindings.
func NewModule(pkgs []*Package, fset *token.FileSet, root string) *Module {
	merged := &suppressor{
		file: make(map[string]map[string]bool),
		line: make(map[string]map[int]map[string]bool),
	}
	pkgSet := make(map[string]*Package, len(pkgs))
	for _, pkg := range pkgs {
		pkgSet[pkg.Path] = pkg
		sup, _ := parseDirectives(pkg, fset)
		for file, checks := range sup.file {
			merged.file[file] = checks
		}
		for file, lines := range sup.line {
			merged.line[file] = lines
		}
	}
	return &Module{
		Pkgs:   pkgs,
		Fset:   fset,
		Graph:  BuildCallGraph(pkgs, fset),
		Root:   root,
		sup:    merged,
		pkgSet: pkgSet,
	}
}

// suppressedAt reports whether a finding of the given check at the
// given position would be suppressed by a directive anywhere in the
// module.
func (m *Module) suppressedAt(pos token.Pos, check string) bool {
	p := m.Fset.Position(pos)
	return m.sup.suppressed(Finding{File: p.Filename, Line: p.Line, Check: check})
}

// relPos renders a position module-root-relative for use inside
// finding messages, so messages are byte-stable across checkouts.
func (m *Module) relPos(pos token.Pos) string {
	p := m.Fset.Position(pos)
	file := p.Filename
	if rel, err := filepath.Rel(m.Root, file); err == nil && !strings.HasPrefix(rel, "..") {
		file = filepath.ToSlash(rel)
	}
	return fmt.Sprintf("%s:%d", file, p.Line)
}

// shortFunc renders a function as pkgname.Func or pkgname.Recv.Method
// for chain messages.
func shortFunc(fn *types.Func) string {
	name := fn.Name()
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		t := recv.Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := types.Unalias(t).(*types.Named); ok {
			name = named.Obj().Name() + "." + name
		}
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + name
	}
	return name
}

// taint records why a function is considered tainted: either a direct
// audited source, or a call into another tainted function.
type taint struct {
	// src describes the ultimate source ("time.Now", "math/rand"), set
	// on every link for convenience.
	src string
	// srcPos is the source reference's position.
	srcPos token.Pos
	// via is the tainted callee this function reaches the source
	// through (nil for direct sources).
	via *types.Func
}

// chain renders the call path from fn down to the source:
// "a.Run -> b.Helper -> time.Now (internal/b/b.go:12)".
func (m *Module) chain(taints map[*types.Func]*taint, fn *types.Func) string {
	var b strings.Builder
	t := taints[fn]
	b.WriteString(shortFunc(fn))
	for t != nil && t.via != nil {
		b.WriteString(" -> ")
		b.WriteString(shortFunc(t.via))
		t = taints[t.via]
	}
	if t != nil {
		fmt.Fprintf(&b, " -> %s (%s)", t.src, m.relPos(t.srcPos))
	}
	return b.String()
}

// interprocCheck parameterizes the quiet-taint propagation shared by
// walltime and unseededrand.
type interprocCheck struct {
	// name is the check the findings carry ("walltime", ...).
	name string
	// directSource scans one function node for audited source
	// references and returns the first (description, position), or ok
	// false. Unaudited sources must return ok false — the file-local
	// pass already reported them.
	directSource func(m *Module, node *FuncNode) (string, token.Pos, bool)
	// exemptCaller reports packages whose calls never produce findings
	// (taint spreads through them quietly).
	exemptCaller func(pkgPath string) bool
	// message renders the finding for a call site given the callee
	// chain.
	message func(chain string) string
}

// propagate runs the quiet-taint BFS for one check and appends the
// call-site findings.
func (c *interprocCheck) propagate(m *Module, findings *[]Finding) {
	taints := make(map[*types.Func]*taint)
	reported := make(map[*types.Func]bool)
	var queue []*FuncNode
	for _, node := range m.Graph.Funcs {
		if desc, pos, ok := c.directSource(m, node); ok {
			taints[node.Fn] = &taint{src: desc, srcPos: pos}
			queue = append(queue, node)
		}
	}
	for len(queue) > 0 {
		callee := queue[0]
		queue = queue[1:]
		for _, caller := range m.Graph.Callers[callee.Fn] {
			if taints[caller.Fn] != nil || reported[caller.Fn] {
				continue
			}
			site := firstCallTo(caller, callee.Fn)
			quiet := c.exemptCaller(caller.Pkg.Path) ||
				caller.Pkg == callee.Pkg ||
				m.suppressedAt(site, c.name)
			if quiet {
				taints[caller.Fn] = &taint{
					src:    taints[callee.Fn].src,
					srcPos: taints[callee.Fn].srcPos,
					via:    callee.Fn,
				}
				queue = append(queue, caller)
				continue
			}
			// The frontier: an unannotated cross-package call from
			// non-exempt code. Report once; the taint stops here until
			// the author audits the site (after which it spreads to the
			// next ring of callers).
			reported[caller.Fn] = true
			pos := m.Fset.Position(site)
			*findings = append(*findings, Finding{
				File:  pos.Filename,
				Line:  pos.Line,
				Col:   pos.Column,
				Check: c.name,
				Msg:   c.message(shortFunc(caller.Fn) + " -> " + m.chain(taints, callee.Fn)),
			})
		}
	}
}

// firstCallTo returns the position of the first call site in caller
// that targets callee.
func firstCallTo(caller *FuncNode, callee *types.Func) token.Pos {
	for _, cs := range caller.Calls {
		if cs.Callee == callee {
			return cs.Pos
		}
	}
	return caller.Decl.Pos()
}

// walltimeInterprocExempt are packages whose *calls* into wall-tainted
// helpers are not findings: the profiling layer and the live network
// service, where real time is the point. Everything else — the
// simulator, the deterministic CLIs — must annotate such calls.
var walltimeInterprocExempt = append([]string{
	"internal/hivenet",
	"internal/loadgen", // socket replay against live servers: deadlines and latencies are wall-clock
	"cmd/hivenet",
	"cmd/hiveload", // drives loadgen's live replay
	"examples/networkedapiary",
}, walltimeExemptPkgs...)

// walltimeSource finds an audited wall-clock read in node: a reference
// to a banned time function either inside an exempt package or
// suppressed by an allow directive. Unaudited reads return false (the
// file-local analyzer owns them).
func walltimeSource(m *Module, node *FuncNode) (string, token.Pos, bool) {
	if node.Decl.Body == nil {
		return "", token.NoPos, false
	}
	exempt := false
	for _, e := range walltimeExemptPkgs {
		if pathHasSuffix(node.Pkg.Path, e) {
			exempt = true
			break
		}
	}
	var desc string
	var at token.Pos
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		if desc != "" {
			return false
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		name, ok := pkgFuncRef(node.Pkg.Info, sel, "time")
		if !ok || !walltimeFuncs[name] {
			return true
		}
		if _, isFunc := node.Pkg.Info.Uses[sel.Sel].(*types.Func); !isFunc {
			return true
		}
		if !exempt && !m.suppressedAt(sel.Pos(), "walltime") {
			return true // loud: the file-local pass reports this one
		}
		desc, at = "time."+name, sel.Pos()
		return false
	})
	return desc, at, desc != ""
}

// randAuditedFile reports whether every banned randomness import in
// the file holding pos is audited (exempt package or suppressed).
func randAuditedFile(m *Module, pkg *Package, pos token.Pos) bool {
	if pathHasSuffix(pkg.Path, "internal/rng") {
		return true
	}
	file := m.Fset.Position(pos).Filename
	for _, f := range pkg.Files {
		if m.Fset.Position(f.Package).Filename != file {
			continue
		}
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if _, banned := bannedRandImports[path]; !banned {
				continue
			}
			if !m.suppressedAt(imp.Pos(), "unseededrand") {
				return false
			}
		}
	}
	return true
}

// randSource finds an audited use of a banned randomness package in
// node.
func randSource(m *Module, node *FuncNode) (string, token.Pos, bool) {
	if node.Decl.Body == nil {
		return "", token.NoPos, false
	}
	var desc string
	var at token.Pos
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		if desc != "" {
			return false
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		ident, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pn, ok := node.Pkg.Info.Uses[ident].(*types.PkgName)
		if !ok {
			return true
		}
		path := pn.Imported().Path()
		if _, banned := bannedRandImports[path]; !banned {
			return true
		}
		if !randAuditedFile(m, node.Pkg, sel.Pos()) {
			return true // loud: the import finding already fired
		}
		desc, at = path, sel.Pos()
		return false
	})
	return desc, at, desc != ""
}

// InterproceduralFindings runs the module-wide passes and returns
// their findings (unsorted; the caller merges and sorts).
func (m *Module) InterproceduralFindings() []Finding {
	var findings []Finding
	(&interprocCheck{
		name:         "walltime",
		directSource: walltimeSource,
		exemptCaller: func(path string) bool {
			for _, e := range walltimeInterprocExempt {
				if pathHasSuffix(path, e) {
					return true
				}
			}
			return false
		},
		message: func(chain string) string {
			return fmt.Sprintf("call reaches a wall-clock read through an audited helper "+
				"(call chain: %s); simulated code must take time from des.Sim.Now "+
				"(annotate real I/O with //beelint:allow walltime <reason>)", chain)
		},
	}).propagate(m, &findings)
	(&interprocCheck{
		name:         "unseededrand",
		directSource: randSource,
		exemptCaller: func(path string) bool { return pathHasSuffix(path, "internal/rng") },
		message: func(chain string) string {
			return fmt.Sprintf("call reaches banned randomness through an audited helper "+
				"(call chain: %s); draw from internal/rng instead "+
				"(annotate audited sites with //beelint:allow unseededrand <reason>)", chain)
		},
	}).propagate(m, &findings)
	findings = append(findings, m.mapRangeSinkFindings()...)
	return findings
}

// --- maprange: order-sink summaries -------------------------------

// sinkSummaries computes, for every declared function, whether calling
// it makes output observable (directly or transitively): printing,
// writing to a non-local writer, or mutating the ledger/obs layer.
func (m *Module) sinkSummaries() map[*types.Func]*taint {
	sinks := make(map[*types.Func]*taint)
	var queue []*FuncNode
	for _, node := range m.Graph.Funcs {
		if desc, pos, ok := directOutputSink(node); ok {
			sinks[node.Fn] = &taint{src: desc, srcPos: pos}
			queue = append(queue, node)
		}
	}
	for len(queue) > 0 {
		callee := queue[0]
		queue = queue[1:]
		for _, caller := range m.Graph.Callers[callee.Fn] {
			if sinks[caller.Fn] != nil {
				continue
			}
			sinks[caller.Fn] = &taint{
				src:    sinks[callee.Fn].src,
				srcPos: sinks[callee.Fn].srcPos,
				via:    callee.Fn,
			}
			queue = append(queue, caller)
		}
	}
	return sinks
}

// directOutputSink reports whether node's body performs observable
// output itself: fmt printing, Write*/Encode on a receiver that is not
// function-local (a parameter, field or captured writer outlives the
// call, so per-call ordering is observable), or a mutating ledger/obs
// method.
func directOutputSink(node *FuncNode) (string, token.Pos, bool) {
	if node.Decl.Body == nil {
		return "", token.NoPos, false
	}
	info := node.Pkg.Info
	var desc string
	var at token.Pos
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		if desc != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if name, ok := pkgFuncRef(info, sel, "fmt"); ok {
			switch name {
			case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
				desc, at = "fmt."+name, call.Pos()
				return false
			}
		}
		switch sel.Sel.Name {
		case "Write", "WriteString", "WriteByte", "WriteRune", "Encode":
			// Writes to writers created inside this function (a local
			// strings.Builder, say) are invisible to callers unless the
			// result escapes — which the caller-side maprange check
			// already covers via return-value appends.
			if root := rootIdent(sel.X); root != nil &&
				declaredWithin(info, root, node.Decl) && !isParam(info, root, node.Decl) {
				return true
			}
			desc, at = sel.Sel.Name+" call", call.Pos()
			return false
		}
		if mutatingSinkMethods[sel.Sel.Name] {
			recv := info.TypeOf(sel.X)
			if _, ok := namedFrom(recv, "internal/ledger"); ok {
				desc, at = "energy-ledger "+sel.Sel.Name, call.Pos()
				return false
			}
			if _, ok := namedFrom(recv, "internal/obs"); ok {
				desc, at = "obs "+sel.Sel.Name, call.Pos()
				return false
			}
		}
		return true
	})
	return desc, at, desc != ""
}

// isParam reports whether id resolves to a parameter (or receiver) of
// the enclosing declaration.
func isParam(info *types.Info, id *ast.Ident, decl *ast.FuncDecl) bool {
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	if obj == nil || decl.Body == nil {
		return false
	}
	// Parameters are declared between the func keyword and the body.
	return obj.Pos() >= decl.Pos() && obj.Pos() < decl.Body.Pos()
}

// mapRangeSinkFindings reports map ranges whose bodies call functions
// summarized as output sinks — the interprocedural completion of the
// file-local maprange analyzer.
func (m *Module) mapRangeSinkFindings() []Finding {
	sinks := m.sinkSummaries()
	var findings []Finding
	for _, node := range m.Graph.Funcs {
		if node.Decl.Body == nil {
			continue
		}
		info := node.Pkg.Info
		ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := info.TypeOf(rng.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			var sunk *taint
			var sunkFn *types.Func
			ast.Inspect(rng.Body, func(b ast.Node) bool {
				if sunk != nil {
					return false
				}
				call, ok := b.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := StaticCallee(info, call)
				if callee == nil || callee == node.Fn {
					return true
				}
				if s := sinks[callee]; s != nil {
					sunk, sunkFn = s, callee
					return false
				}
				return true
			})
			if sunk == nil {
				return true
			}
			if m.suppressedAt(rng.Pos(), "maprange") {
				return true
			}
			pos := m.Fset.Position(rng.Pos())
			findings = append(findings, Finding{
				File:  pos.Filename,
				Line:  pos.Line,
				Col:   pos.Column,
				Check: "maprange",
				Msg: fmt.Sprintf("map iteration order is nondeterministic but this loop calls "+
					"a helper that performs observable output (call chain: %s); "+
					"iterate over sorted keys instead", m.chain(sinks, sunkFn)),
			})
			return true
		})
	}
	return findings
}
