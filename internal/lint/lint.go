// Package lint is beelint: a static analyzer suite that enforces the
// simulator's determinism and unit-safety invariants.
//
// The reproduction's whole value rests on byte-deterministic,
// energy-conserving simulation — equal seeds must yield byte-identical
// traces, metrics and ledgers, and the conservation auditor must
// balance to the joule. Those properties are easy to break with code
// that compiles fine: a time.Now in an event handler, a map iteration
// feeding an export, a Joules laundered through float64 and added to
// Watts. beelint turns each of those into a build failure.
//
// The suite is pure standard library (go/parser + go/types + a source
// importer); it type-checks every package in the module and runs nine
// analyzers:
//
//	walltime      wall-clock reads outside real-I/O code
//	unseededrand  math/rand and crypto/rand imports outside internal/rng
//	maprange      map iteration feeding slices, output or the ledger
//	unitcast      float64 casts mixing distinct units types, and bare
//	              constants passed where a units type is expected
//	gostmt        goroutines outside internal/parallel, and concurrency
//	              (goroutines or parallel.* calls) inside DES handlers
//	accumfloat    naive += Joules accumulation in loops
//	sharedcapture parallel.Map task closures writing captured state
//	exhaustive    non-exhaustive switches over local enum types
//	errdrop       discarded errors on the ledger/store write path
//
// On top of the per-package passes, RunModule's interprocedural mode
// (interproc.go) builds a module-wide call graph and traces
// walltime/unseededrand/maprange violations through helper functions
// and across package boundaries, reporting the first unannotated
// cross-package caller with the full call chain. Some findings carry
// mechanical fixes (fix.go) applied by beelint -fix.
//
// Findings can be suppressed — with a mandatory reason — by
// //beelint:allow directives (see directive.go). docs/LINTING.md is the
// user-facing reference.
package lint

import (
	"fmt"
	"go/token"
	"sort"
)

// Finding is one reported violation.
type Finding struct {
	// File is the path as recorded in the fileset (absolute for module
	// loads), Line/Col the 1-based position.
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
	// Check is the analyzer name ("walltime", ...) or "directive" for
	// malformed suppression directives.
	Check string `json:"check"`
	// Msg is the human-readable diagnosis.
	Msg string `json:"msg"`
	// Fixable reports whether Fix carries a mechanical rewrite.
	Fixable bool `json:"fixable,omitempty"`
	// Fix is the suggested rewrite, applied by beelint -fix.
	Fix *Fix `json:"-"`
}

// String formats the finding in the conventional file:line:col style.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.File, f.Line, f.Col, f.Check, f.Msg)
}

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	Name string
	// Doc is a one-line description (shown by beelint -help and in
	// docs/LINTING.md).
	Doc string
	Run func(*Pass)
}

// Pass is the per-package context handed to an analyzer.
type Pass struct {
	Pkg  *Package
	Fset *token.FileSet

	findings *[]Finding
	check    string
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	*p.findings = append(*p.findings, Finding{
		File:  position.Filename,
		Line:  position.Line,
		Col:   position.Column,
		Check: p.check,
		Msg:   fmt.Sprintf(format, args...),
	})
}

// ReportFixf records a finding at pos carrying a mechanical rewrite
// for beelint -fix. A nil fix degrades to a plain Reportf.
func (p *Pass) ReportFixf(pos token.Pos, fix *Fix, format string, args ...any) {
	p.Reportf(pos, format, args...)
	if fix != nil {
		f := &(*p.findings)[len(*p.findings)-1]
		f.Fixable = true
		f.Fix = fix
	}
}

// Analyzers returns the full suite in a fixed order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		analyzerWalltime,
		analyzerUnseededRand,
		analyzerMapRange,
		analyzerUnitCast,
		analyzerGoStmt,
		analyzerAccumFloat,
		analyzerSharedCapture,
		analyzerExhaustive,
		analyzerErrDrop,
	}
}

// AnalyzerNames returns the known check names, including the implicit
// "directive" check, for validating suppression directives.
func AnalyzerNames() map[string]bool {
	names := map[string]bool{"directive": true}
	for _, a := range Analyzers() {
		names[a.Name] = true
	}
	return names
}

// Runner applies a set of analyzers to packages and filters the
// findings through the packages' suppression directives.
type Runner struct {
	Analyzers []*Analyzer
}

// NewRunner returns a runner over the full suite.
func NewRunner() *Runner { return &Runner{Analyzers: Analyzers()} }

// RunPackage runs every analyzer over one package, validates the
// package's //beelint:allow directives, applies suppressions, and
// returns the surviving findings sorted by position.
func (r *Runner) RunPackage(pkg *Package, fset *token.FileSet) []Finding {
	var findings []Finding
	for _, a := range r.Analyzers {
		pass := &Pass{Pkg: pkg, Fset: fset, findings: &findings, check: a.Name}
		a.Run(pass)
	}
	sup, directiveFindings := parseDirectives(pkg, fset)
	findings = append(findings, directiveFindings...)
	kept := findings[:0]
	for _, f := range findings {
		if !sup.suppressed(f) {
			kept = append(kept, f)
		}
	}
	return SortFindings(kept)
}

// ModuleOptions steers RunModule.
type ModuleOptions struct {
	// Interprocedural enables the module-wide call-graph pass
	// (cross-package taint and sink summaries). Disabling it restores
	// the v1 file-local behavior — useful for measuring exactly what
	// the whole-program analysis buys.
	Interprocedural bool
}

// RunModule runs the per-package suite over every package and then, if
// enabled, the interprocedural pass over the whole set. root is the
// directory chain positions inside messages are rendered relative to.
func (r *Runner) RunModule(pkgs []*Package, fset *token.FileSet, root string, opts ModuleOptions) []Finding {
	var all []Finding
	for _, pkg := range pkgs {
		all = append(all, r.RunPackage(pkg, fset)...)
	}
	if opts.Interprocedural {
		all = append(all, NewModule(pkgs, fset, root).InterproceduralFindings()...)
	}
	return SortFindings(all)
}

// SortFindings orders findings by (file, line, col, check, msg) so the
// linter's output — text or JSON — is byte-stable across runs.
func SortFindings(fs []Finding) []Finding {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Msg < b.Msg
	})
	return fs
}
