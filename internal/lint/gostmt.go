package lint

// gostmt: the DES engine is single-threaded by design — determinism is
// guaranteed by a sequence-numbered event calendar, and a goroutine
// launched from inside an event handler races the calendar itself.
// Concurrency belongs outside the simulation (the real TCP service) or
// is expressed as interleaved events (des.Process). This analyzer flags
// `go` statements inside function literals handed to the engine:
// Sim.At/After/Every callbacks and Process.Then/ThenNamed stages.

import (
	"go/ast"
)

// desCallbackMethods maps des receiver type name -> methods whose
// function-literal arguments run as event handlers.
var desCallbackMethods = map[string]map[string]bool{
	"Sim":     {"At": true, "After": true, "Every": true},
	"Process": {"Then": true, "ThenNamed": true},
}

var analyzerGoStmt = &Analyzer{
	Name: "gostmt",
	Doc:  "go statements inside DES event handlers (the engine is single-threaded)",
	Run: func(p *Pass) {
		info := p.Pkg.Info
		inspectFiles(p, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			named, ok := namedFrom(info.TypeOf(sel.X), "internal/des")
			if !ok {
				return true
			}
			methods := desCallbackMethods[named.Obj().Name()]
			if methods == nil || !methods[sel.Sel.Name] {
				return true
			}
			for _, arg := range call.Args {
				lit, ok := arg.(*ast.FuncLit)
				if !ok {
					continue
				}
				ast.Inspect(lit.Body, func(b ast.Node) bool {
					if g, ok := b.(*ast.GoStmt); ok {
						p.Reportf(g.Pos(),
							"go statement inside a des.%s.%s handler: the event calendar is "+
								"single-threaded; schedule further events instead of spawning goroutines",
							named.Obj().Name(), sel.Sel.Name)
					}
					return true
				})
			}
			return true
		})
	},
}
