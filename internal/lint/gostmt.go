package lint

// gostmt: the DES engine is single-threaded by design — determinism is
// guaranteed by a sequence-numbered event calendar, and a goroutine
// launched from inside an event handler races the calendar itself.
// Since internal/parallel landed, it is the single sanctioned
// concurrency entry point for simulated code, so the analyzer enforces
// three rules:
//
//  1. go statements inside DES event handlers (Sim.At/After/Every
//     callbacks, Process.Then/ThenNamed stages) are findings, as before.
//  2. Calls into internal/parallel from inside a DES event handler are
//     findings too: fan-out must happen outside the simulated event
//     loop, or the pool's goroutines race the calendar just the same.
//  3. Any other go statement in simulated code is a finding — express
//     the concurrency through parallel.Map/MapChunks so the
//     determinism contract (index-ordered merge, per-task rng streams)
//     comes for free. internal/parallel itself and the real-I/O
//     networking code are exempt.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// desCallbackMethods maps des receiver type name -> methods whose
// function-literal arguments run as event handlers.
var desCallbackMethods = map[string]map[string]bool{
	"Sim":     {"At": true, "After": true, "Every": true},
	"Process": {"Then": true, "ThenNamed": true},
}

// gostmtExemptPkgs may spawn goroutines without annotation:
// internal/parallel is the sanctioned fork/join layer, and the hivenet
// server, CLI and example are real network I/O where goroutine-per-
// connection is the idiom and no virtual clock exists to race.
var gostmtExemptPkgs = []string{
	"internal/parallel",
	"internal/hivenet",
	"cmd/hivenet",
	"cmd/hiveload", // boots in-process server shards (goroutine-per-listener, like cmd/hivenet)
	"examples/networkedapiary",
}

var analyzerGoStmt = &Analyzer{
	Name: "gostmt",
	Doc:  "goroutines outside internal/parallel, and concurrency launched from DES event handlers",
	Run: func(p *Pass) {
		for _, exempt := range gostmtExemptPkgs {
			if pathHasSuffix(p.Pkg.Path, exempt) {
				return
			}
		}
		info := p.Pkg.Info

		// handlerRanges are the body extents of DES event-handler
		// literals; go statements inside them get the handler-specific
		// diagnosis, everything else the general one.
		type handlerRange struct{ pos, end token.Pos }
		var handlers []handlerRange

		inspectFiles(p, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			named, ok := namedFrom(info.TypeOf(sel.X), "internal/des")
			if !ok {
				return true
			}
			methods := desCallbackMethods[named.Obj().Name()]
			if methods == nil || !methods[sel.Sel.Name] {
				return true
			}
			for _, arg := range call.Args {
				lit, ok := arg.(*ast.FuncLit)
				if !ok {
					continue
				}
				handlers = append(handlers, handlerRange{pos: lit.Body.Pos(), end: lit.Body.End()})
				ast.Inspect(lit.Body, func(b ast.Node) bool {
					switch b := b.(type) {
					case *ast.GoStmt:
						p.Reportf(b.Pos(),
							"go statement inside a des.%s.%s handler: the event calendar is "+
								"single-threaded; schedule further events instead of spawning goroutines",
							named.Obj().Name(), sel.Sel.Name)
					case *ast.SelectorExpr:
						if fn, ok := info.Uses[b.Sel].(*types.Func); ok &&
							fromPkgSuffix(fn.Pkg(), "internal/parallel") {
							p.Reportf(b.Pos(),
								"parallel.%s inside a des.%s.%s handler: the event calendar is "+
									"single-threaded; fan out before or after the simulated event loop, not from within it",
								b.Sel.Name, named.Obj().Name(), sel.Sel.Name)
						}
					}
					return true
				})
			}
			return true
		})

		inHandler := func(pos token.Pos) bool {
			for _, h := range handlers {
				if pos >= h.pos && pos < h.end {
					return true
				}
			}
			return false
		}
		inspectFiles(p, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok || inHandler(g.Pos()) {
				return true
			}
			p.Reportf(g.Pos(),
				"go statement outside internal/parallel: simulated code fans out through "+
					"parallel.Map/MapChunks so results stay deterministic "+
					"(annotate real I/O with //beelint:allow gostmt <reason>)")
			return true
		})
	},
}
