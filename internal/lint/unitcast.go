package lint

// unitcast: internal/units exists so that a Joules can never silently
// become a Watts. Two patterns defeat it:
//
//  1. laundering — `float64(e) + float64(p)` strips both wrappers and
//     adds energy to power inside one expression; the compiler is
//     happy, the physics is wrong. Addition and subtraction of two
//     different units types through float64 casts is flagged
//     (multiplication and division are legitimate dimensional math).
//
//  2. bare constants — passing an untyped constant where a units
//     parameter is expected (`NewBattery(12, 100)`) type-checks via
//     implicit conversion, hiding which argument is the Volts and
//     which the AmpereHours. Non-zero constants must be written as
//     explicit conversions (`units.Volts(12)`).

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// castUnitsNames collects the sorted, distinct names of internal/units
// types that appear as float64(conversion) sources anywhere inside e.
// Sorted names keep the eventual diagnostic byte-stable.
func castUnitsNames(info *types.Info, e ast.Expr) []string {
	seen := make(map[string]bool)
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return true
		}
		tv, ok := info.Types[call.Fun]
		if !ok || !tv.IsType() {
			return true
		}
		basic, ok := tv.Type.Underlying().(*types.Basic)
		if !ok || basic.Kind() != types.Float64 {
			return true
		}
		if named, ok := unitsType(info.TypeOf(call.Args[0])); ok {
			seen[named.Obj().Name()] = true
		}
		return true
	})
	names := make([]string, 0, len(seen))
	for name := range seen {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// unitCastMix reports an add/sub whose operands cast two different
// units types down to float64.
func unitCastMix(p *Pass, bin *ast.BinaryExpr) {
	info := p.Pkg.Info
	left := castUnitsNames(info, bin.X)
	right := castUnitsNames(info, bin.Y)
	for _, l := range left {
		for _, r := range right {
			if l != r {
				p.Reportf(bin.OpPos,
					"float64 casts mix %s and %s across %q: dimensionally distinct units "+
						"must be converted explicitly before combining", l, r, bin.Op)
				return
			}
		}
	}
}

// bareConstArg reports non-zero untyped constants passed where a
// units-typed parameter is expected.
func bareConstArg(p *Pass, call *ast.CallExpr) {
	info := p.Pkg.Info
	if tv, ok := info.Types[call.Fun]; !ok || tv.IsType() {
		return // conversions like units.Joules(5) are the fix, not the bug
	}
	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if slice, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = slice.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		named, ok := unitsType(pt)
		if !ok {
			continue
		}
		lit := bareNumericLit(arg)
		if lit == nil {
			continue
		}
		if tv, ok := info.Types[arg]; !ok || tv.Value == nil {
			continue // not a constant after all
		}
		if lit.Value == "0" || lit.Value == "0.0" {
			continue // the zero value is unambiguous
		}
		p.Reportf(arg.Pos(),
			"untyped constant becomes %s implicitly; write %s(%s) so the unit is visible "+
				"at the call site", named.Obj().Name(), named.Obj().Name(), lit.Value)
	}
}

// bareNumericLit unwraps parens and a leading minus down to a numeric
// literal, or returns nil.
func bareNumericLit(e ast.Expr) *ast.BasicLit {
	for {
		switch v := e.(type) {
		case *ast.ParenExpr:
			e = v.X
		case *ast.UnaryExpr:
			if v.Op != token.SUB && v.Op != token.ADD {
				return nil
			}
			e = v.X
		case *ast.BasicLit:
			if v.Kind == token.INT || v.Kind == token.FLOAT {
				return v
			}
			return nil
		default:
			return nil
		}
	}
}

var analyzerUnitCast = &Analyzer{
	Name: "unitcast",
	Doc:  "float64 casts mixing distinct units types; bare constants where units are expected",
	Run: func(p *Pass) {
		inspectFiles(p, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.BinaryExpr:
				if v.Op == token.ADD || v.Op == token.SUB {
					unitCastMix(p, v)
				}
			case *ast.CallExpr:
				bareConstArg(p, v)
			}
			return true
		})
	},
}
