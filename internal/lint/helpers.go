package lint

// Shared type-resolution helpers for the analyzers.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// fromPkgSuffix reports whether obj belongs to a package whose import
// path is suffix or ends in "/"+suffix. Matching by suffix keeps the
// analyzers independent of the module path, so fixture packages under
// testdata exercise them with synthetic import paths.
func fromPkgSuffix(pkg *types.Package, suffix string) bool {
	if pkg == nil {
		return false
	}
	path := pkg.Path()
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// pathHasSuffix is fromPkgSuffix over a raw import path.
func pathHasSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// namedFrom returns the named type behind t (unwrapping pointers and
// aliases) when it is declared in a package matching suffix.
func namedFrom(t types.Type, suffix string) (*types.Named, bool) {
	if t == nil {
		return nil, false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok || named.Obj() == nil {
		return nil, false
	}
	if !fromPkgSuffix(named.Obj().Pkg(), suffix) {
		return nil, false
	}
	return named, true
}

// unitsType returns the internal/units named type behind t, if any.
func unitsType(t types.Type) (*types.Named, bool) {
	return namedFrom(t, "internal/units")
}

// pkgFuncRef reports whether sel is a reference to pkgPath.name — i.e.
// a selector on a package identifier, resolved through the type info.
func pkgFuncRef(info *types.Info, sel *ast.SelectorExpr, pkgPath string) (string, bool) {
	ident, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := info.Uses[ident].(*types.PkgName)
	if !ok || pn.Imported().Path() != pkgPath {
		return "", false
	}
	return sel.Sel.Name, true
}

// inspectFiles walks every file of the pass's package.
func inspectFiles(p *Pass, fn func(ast.Node) bool) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, fn)
	}
}

// importPathOf unquotes an import spec's path, returning "" on
// malformed source (which would not have type-checked anyway).
func importPathOf(imp *ast.ImportSpec) string {
	path, err := strconv.Unquote(imp.Path.Value)
	if err != nil {
		return ""
	}
	return path
}

// modulePrefix returns the first segment of an import path — the
// module-path-independent way fix builders derive sibling import paths
// ("beesim/internal/units" -> "beesim" -> "beesim/internal/stats").
func modulePrefix(path string) string {
	if i := strings.IndexByte(path, '/'); i >= 0 {
		return path[:i]
	}
	return path
}

// nameFreeAt reports whether name is unbound at pos, or bound to a
// package named by importing wantPath — the two situations where a fix
// may introduce a reference to it. Anything else (a local variable
// shadowing "sort", a different package under the name) vetoes the fix.
func nameFreeAt(pkg *Package, pos token.Pos, name, wantPath string) bool {
	scope := pkg.Types.Scope().Innermost(pos)
	if scope == nil {
		scope = pkg.Types.Scope()
	}
	_, obj := scope.LookupParent(name, pos)
	if obj == nil {
		return true
	}
	pn, ok := obj.(*types.PkgName)
	return ok && pn.Imported().Path() == wantPath
}
