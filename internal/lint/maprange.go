package lint

// maprange: Go randomizes map iteration order on purpose, so a
// `for range` over a map that appends to a slice, writes output, or
// feeds the ledger/trace produces a different byte stream every run —
// the classic way a "deterministic" export quietly isn't.
//
// One idiom is recognized as safe: collect-then-sort. When the slice a
// map range appends to is later passed to a sorting call in the same
// function (sort.*, slices.Sort*, or any callee whose name contains
// "sort"), the iteration order washes out and no finding is reported.
// Everything else — printing, io/bufio/builder writes, JSON encoding,
// ledger/obs mutation — is order-observable and flagged. The fix is
// always the same: iterate over sorted keys.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// mutatingSinkMethods are method names that push data into the ledger
// or observability layer; pure reads (Value, Count, Snapshot) are not
// sinks.
var mutatingSinkMethods = map[string]bool{
	"Append": true, "Add": true, "Inc": true, "Set": true,
	"Observe": true, "Emit": true, "Record": true, "Trip": true,
}

// orderSink classifies a call inside a map-range body that makes
// iteration order observable. It returns a short description (or "")
// and, for appends, the rendered append target for the
// collect-then-sort exemption.
func orderSink(info *types.Info, n ast.Node) (desc string, appendTarget ast.Expr) {
	call, ok := n.(*ast.CallExpr)
	if !ok {
		return "", nil
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if fun.Name == "append" && len(call.Args) > 0 {
			if _, isBuiltin := info.Uses[fun].(*types.Builtin); isBuiltin {
				return "a slice append", call.Args[0]
			}
		}
	case *ast.SelectorExpr:
		if name, ok := pkgFuncRef(info, fun, "fmt"); ok {
			switch name {
			case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
				return "fmt output", nil
			}
		}
		switch fun.Sel.Name {
		case "Write", "WriteString", "WriteByte", "WriteRune", "Encode":
			return "a " + fun.Sel.Name + " call", nil
		}
		recv := info.TypeOf(fun.X)
		if mutatingSinkMethods[fun.Sel.Name] {
			if _, ok := namedFrom(recv, "internal/ledger"); ok {
				return "the energy ledger", nil
			}
			if _, ok := namedFrom(recv, "internal/obs"); ok {
				return "the observability layer", nil
			}
		}
	}
	return "", nil
}

// rootIdent unwraps selectors and index expressions down to the
// leftmost identifier (hs.Buckets -> hs, rows[i] -> rows).
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return v
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// declaredWithin reports whether the identifier's object is declared
// inside the given node — an append onto a variable created fresh each
// iteration is order-insensitive.
func declaredWithin(info *types.Info, id *ast.Ident, n ast.Node) bool {
	if id == nil {
		return false
	}
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	return obj != nil && obj.Pos() >= n.Pos() && obj.Pos() < n.End()
}

// sortedLater reports whether, after pos, the function body calls a
// sorting function with target among its arguments.
func sortedLater(info *types.Info, body *ast.BlockStmt, pos ast.Node, target string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= pos.End() || !sortishCallee(info, call.Fun) {
			return true
		}
		for _, a := range call.Args {
			if types.ExprString(a) == target {
				found = true
			}
		}
		return true
	})
	return found
}

// sortishCallee recognizes sort.*, slices.Sort*, and local helpers
// whose name mentions sorting (sortRows, ...).
func sortishCallee(info *types.Info, fun ast.Expr) bool {
	switch f := fun.(type) {
	case *ast.Ident:
		return strings.Contains(strings.ToLower(f.Name), "sort")
	case *ast.SelectorExpr:
		if _, ok := pkgFuncRef(info, f, "sort"); ok {
			return true
		}
		if name, ok := pkgFuncRef(info, f, "slices"); ok {
			return strings.HasPrefix(name, "Sort")
		}
		return strings.Contains(strings.ToLower(f.Sel.Name), "sort")
	}
	return false
}

// checkMapRanges examines the map ranges directly inside one function
// body (nested function literals are visited on their own, so the
// collect-then-sort search runs against the right scope).
func checkMapRanges(p *Pass, body *ast.BlockStmt) {
	info := p.Pkg.Info
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && lit.Body != body {
			return false
		}
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := info.TypeOf(rng.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		reported := ""
		ast.Inspect(rng.Body, func(b ast.Node) bool {
			if reported != "" {
				return false
			}
			desc, target := orderSink(info, b)
			if desc == "" {
				return true
			}
			if target != nil {
				// Appends onto per-iteration locals are order-insensitive;
				// appends later sorted in this function wash the order out.
				if declaredWithin(info, rootIdent(target), rng.Body) {
					return true
				}
				if sortedLater(info, body, rng, types.ExprString(target)) {
					return true
				}
			}
			reported = desc
			return false
		})
		if reported != "" {
			p.ReportFixf(rng.Pos(), mapRangeFix(p, rng),
				"map iteration order is nondeterministic but this loop feeds %s; "+
					"iterate over sorted keys instead", reported)
		}
		return true
	})
}

// mapRangeFix builds the collect/sort/iterate rewrite for a flagged map
// range, or nil when the loop's shape is not mechanically rewritable:
// the fix only applies to `for k := range m` over unnamed string keys,
// with a side-effect-free map expression and no name collisions on
// "keys" or "sort" at the loop's scope.
func mapRangeFix(p *Pass, rng *ast.RangeStmt) *Fix {
	info := p.Pkg.Info
	key, ok := rng.Key.(*ast.Ident)
	if !ok || key.Name == "_" || rng.Value != nil || rng.Tok != token.DEFINE {
		return nil
	}
	mt, ok := info.TypeOf(rng.X).Underlying().(*types.Map)
	if !ok || !types.Identical(mt.Key(), types.Typ[types.String]) {
		return nil
	}
	if rootIdent(rng.X) == nil {
		return nil // the map expression would be evaluated three times
	}
	if !nameFreeAt(p.Pkg, rng.Pos(), "keys", "") || !nameFreeAt(p.Pkg, rng.Pos(), "sort", "sort") {
		return nil
	}
	m := types.ExprString(rng.X)
	header := fmt.Sprintf(
		"keys := make([]string, 0, len(%s))\nfor %s := range %s {\nkeys = append(keys, %s)\n}\nsort.Strings(keys)\nfor _, %s := range keys {",
		m, key.Name, m, key.Name, key.Name)
	return &Fix{
		Edits:   []FixEdit{{Pos: rng.Pos(), End: rng.Body.Lbrace + 1, New: header}},
		Imports: []FixImport{{Path: "sort"}},
	}
}

var analyzerMapRange = &Analyzer{
	Name: "maprange",
	Doc:  "map iteration feeding slices, output, or the ledger/trace (nondeterministic order)",
	Run: func(p *Pass) {
		for _, f := range p.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				var body *ast.BlockStmt
				switch fn := n.(type) {
				case *ast.FuncDecl:
					body = fn.Body
				case *ast.FuncLit:
					body = fn.Body
				}
				if body != nil {
					checkMapRanges(p, body)
				}
				return true
			})
		}
	},
}
