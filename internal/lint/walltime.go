package lint

// walltime: the DES engine owns time. Simulation code that reads the
// wall clock (time.Now, time.Since, time.Sleep, ...) produces results
// that differ run to run, which breaks the byte-determinism bar every
// trace, metrics snapshot and ledger export is held to. Real-I/O code
// (the live TCP service, profilers, CLIs stamping real reports) may
// read the wall clock, but each such use must carry a
// //beelint:allow walltime <reason> so the boundary stays auditable.

import (
	"go/ast"
	"go/types"
)

// walltimeFuncs are the time-package references that read or depend on
// the wall clock. Pure-value helpers (time.Date, time.Parse,
// time.Duration arithmetic) are fine: they are deterministic.
var walltimeFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
	"AfterFunc": true,
}

// walltimeExemptPkgs never need annotations: their entire purpose is
// wall-clock measurement of the real process.
var walltimeExemptPkgs = []string{
	"internal/prof", // pprof capture timing is inherently wall-clock
}

var analyzerWalltime = &Analyzer{
	Name: "walltime",
	Doc:  "wall-clock reads (time.Now/Since/Sleep/...) outside annotated real-I/O code",
	Run: func(p *Pass) {
		for _, exempt := range walltimeExemptPkgs {
			if pathHasSuffix(p.Pkg.Path, exempt) {
				return
			}
		}
		info := p.Pkg.Info
		inspectFiles(p, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			name, ok := pkgFuncRef(info, sel, "time")
			if !ok || !walltimeFuncs[name] {
				return true
			}
			// Referencing the function at all (including passing time.Now
			// as a value) couples the code to the wall clock.
			if _, isFunc := info.Uses[sel.Sel].(*types.Func); !isFunc {
				return true
			}
			p.Reportf(sel.Pos(),
				"time.%s reads the wall clock; simulated code must take time from des.Sim.Now "+
					"(annotate real I/O with //beelint:allow walltime <reason>)", name)
			return true
		})
	},
}
