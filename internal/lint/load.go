package lint

// Package loading: discover, parse and type-check every package in the
// module using only the standard library (go/build for file selection,
// go/parser for syntax, go/types with a source importer for semantics).
// No golang.org/x/tools dependency — beelint must build in the same
// zero-dependency world as the simulator it polices.

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one type-checked package: syntax plus semantics, test
// files excluded. Determinism and unit-safety are production-code
// invariants; tests are free to use wall clocks and raw floats.
type Package struct {
	// Path is the import path ("beesim/internal/des").
	Path string
	// Dir is the absolute directory the files came from.
	Dir string
	// Files are the parsed non-test Go files, sorted by file name.
	Files []*ast.File
	// Types and Info carry the go/types results for the files.
	Types *types.Package
	Info  *types.Info
}

// Loader discovers, parses and type-checks module packages. It caches
// checked packages so shared dependencies are checked once, and
// delegates standard-library imports to a source importer.
type Loader struct {
	Fset *token.FileSet
	// Root is the absolute module root (the directory with go.mod).
	Root string
	// ModulePath is the module's import path prefix ("beesim").
	ModulePath string

	std      types.ImporterFrom
	pkgs     map[string]*Package // by import path
	checking map[string]bool     // import-cycle guard
}

// NewLoader prepares a loader for the module rooted at root. The module
// path is read from go.mod.
func NewLoader(root string) (*Loader, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("lint: source importer does not implement ImporterFrom")
	}
	return &Loader{
		Fset:       fset,
		Root:       root,
		ModulePath: modPath,
		std:        std,
		pkgs:       make(map[string]*Package),
		checking:   make(map[string]bool),
	}, nil
}

// modulePath extracts the module declaration from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("lint: no module line in %s", gomod)
}

// FindModuleRoot walks up from dir to the nearest directory containing
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, "", 0)
}

// ImportFrom implements types.ImporterFrom: module-internal paths are
// checked from source in the module tree; everything else is assumed to
// be standard library and handed to the source importer.
func (l *Loader) ImportFrom(path, _ string, _ types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	// Already-checked packages (including fixture packages registered
	// under synthetic import paths via Check) resolve from the cache,
	// so fixture trees can span multiple packages that import each
	// other.
	if pkg, ok := l.pkgs[path]; ok {
		return pkg.Types, nil
	}
	if rel, ok := l.moduleRel(path); ok {
		pkg, err := l.check(filepath.Join(l.Root, filepath.FromSlash(rel)), path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	// Standard library: resolve relative to GOROOT/src so vendored
	// golang.org/x deps inside the stdlib are found.
	return l.std.ImportFrom(path, filepath.Join(runtime.GOROOT(), "src"), 0)
}

// moduleRel reports whether path names a package inside the module and
// returns its slash-separated path relative to the module root.
func (l *Loader) moduleRel(path string) (string, bool) {
	if path == l.ModulePath {
		return ".", true
	}
	if rest, ok := strings.CutPrefix(path, l.ModulePath+"/"); ok {
		return rest, true
	}
	return "", false
}

// Check parses and type-checks the package in dir under the given
// import path, reusing the cache. Fixture packages (testdata dirs) are
// checked the same way the real tree is, just with a synthetic path.
func (l *Loader) Check(dir, importPath string) (*Package, error) {
	return l.check(dir, importPath)
}

func (l *Loader) check(dir, importPath string) (*Package, error) {
	if pkg, ok := l.pkgs[importPath]; ok {
		return pkg, nil
	}
	if l.checking[importPath] {
		return nil, fmt.Errorf("lint: import cycle through %s", importPath)
	}
	l.checking[importPath] = true
	defer delete(l.checking, importPath)

	bp, err := build.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("lint: %s: %w", dir, err)
	}
	names := append([]string(nil), bp.GoFiles...)
	sort.Strings(names)
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := types.Config{
		Importer: l,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	tpkg, err := conf.Check(importPath, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", importPath, err)
	}
	pkg := &Package{Path: importPath, Dir: dir, Files: files, Types: tpkg, Info: info}
	l.pkgs[importPath] = pkg
	return pkg, nil
}

// LoadModule discovers every package directory in the module (skipping
// testdata, hidden and underscore-prefixed directories) and type-checks
// them all. Packages are returned sorted by import path so downstream
// output is deterministic.
func (l *Loader) LoadModule() ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(l.Root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.Root && (name == "testdata" || strings.HasPrefix(name, ".") ||
			strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, dir := range dirs {
		if _, err := build.ImportDir(dir, 0); err != nil {
			if _, noGo := err.(*build.NoGoError); noGo {
				continue
			}
			return nil, fmt.Errorf("lint: %s: %w", dir, err)
		}
		rel, err := filepath.Rel(l.Root, dir)
		if err != nil {
			return nil, err
		}
		path := l.ModulePath
		if rel != "." {
			path = l.ModulePath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := l.check(dir, path)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}
