package lint

// exhaustive: the repo leans on closed enum sets — ledger.Direction,
// routine.Placement, proto.Type, store.Kind, … — and dispatches on
// them with switch statements. A switch that silently falls through
// when a new constant is added is how a new fault kind ships without
// ledger accounting, or a new frame type gets dropped on the floor.
//
// The rule: a switch over a module-declared named type with a closed
// constant set (two or more package-level constants of exactly that
// type in its defining package) must either cover every constant or
// carry a default clause. The default is the audit — it is where the
// author decides what an unknown value means (usually an error).
// Switches missing both are findings, listing the uncovered constants
// by name.
//
// Only module types count (the defining package shares the module's
// first path segment with the package under analysis), so switches
// over stdlib types like reflect.Kind are never flagged.

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// enumSet returns the package-level constants of exactly type named,
// keyed by their constant value's string form, or nil when named is
// not a closed module enum relative to fromPkg.
func enumSet(named *types.Named, fromPkg *Package) map[string]*types.Const {
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil {
		return nil
	}
	basic, ok := named.Underlying().(*types.Basic)
	if !ok || basic.Info()&(types.IsInteger|types.IsString) == 0 {
		return nil
	}
	if !sameModuleTree(obj.Pkg().Path(), fromPkg.Path) {
		return nil
	}
	scope := obj.Pkg().Scope()
	consts := make(map[string]*types.Const)
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), named) {
			continue
		}
		consts[c.Val().ExactString()] = c
	}
	if len(consts) < 2 {
		return nil
	}
	return consts
}

// sameModuleTree reports whether two import paths share their first
// segment — the module-path-independent way to tell "declared in this
// module" (beesim/... vs beesim/..., fixture/... vs fixture/...) from
// stdlib or foreign types.
func sameModuleTree(a, b string) bool {
	cut := func(p string) string {
		if i := strings.IndexByte(p, '/'); i >= 0 {
			return p[:i]
		}
		return p
	}
	return cut(a) == cut(b)
}

var analyzerExhaustive = &Analyzer{
	Name: "exhaustive",
	Doc:  "switches over closed module enum sets must cover every constant or carry a default",
	Run: func(p *Pass) {
		info := p.Pkg.Info
		inspectFiles(p, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			tagType := info.TypeOf(sw.Tag)
			if tagType == nil {
				return true
			}
			named, ok := types.Unalias(tagType).(*types.Named)
			if !ok {
				return true
			}
			consts := enumSet(named, p.Pkg)
			if consts == nil {
				return true
			}
			covered := make(map[string]bool)
			hasDefault := false
			for _, stmt := range sw.Body.List {
				cc, ok := stmt.(*ast.CaseClause)
				if !ok {
					continue
				}
				if cc.List == nil {
					hasDefault = true
					continue
				}
				for _, e := range cc.List {
					tv, ok := info.Types[e]
					if !ok || tv.Value == nil {
						// A non-constant case expression makes coverage
						// undecidable; treat it like a default.
						hasDefault = true
						continue
					}
					covered[tv.Value.ExactString()] = true
				}
			}
			if hasDefault {
				return true
			}
			var missing []string
			for key, c := range consts {
				if !covered[key] {
					missing = append(missing, c.Name())
				}
			}
			if len(missing) == 0 {
				return true
			}
			sort.Strings(missing)
			p.Reportf(sw.Pos(),
				"switch over %s.%s is missing cases %s and has no default; "+
					"cover every constant or add an audited default",
				named.Obj().Pkg().Name(), named.Obj().Name(), strings.Join(missing, ", "))
			return true
		})
	},
}
