package lint

import (
	"strings"
	"testing"
	"unicode/utf8"
)

// FuzzLintDirective hammers the //beelint:allow parser with arbitrary
// comment text. The parser is the one piece of beelint that reads
// author-controlled free text, so it must never panic and must hold
// its classification invariants on any input: a well-formed directive
// names a known check and carries no problem; a malformed one carries
// a problem and no check; anything else is silently not a directive.
func FuzzLintDirective(f *testing.F) {
	seeds := []string{
		"//beelint:allow walltime real service uptime anchor",
		"//beelint:allow errdrop best-effort flush on shutdown",
		"//beelint:allow walltime",
		"//beelint:allow",
		"//beelint:allow  ",
		"//beelint:allow unknowncheck some reason",
		"//beelint:allowance is a different word",
		"//beelint:allow\twalltime\ttabbed reason",
		"// beelint:allow walltime spaced prefix is not a directive",
		"/*beelint:allow walltime block*/",
		"//beelint:allow walltime \x00\xff",
		"//beelint:allow walltime " + strings.Repeat("r", 1<<12),
		"",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	known := AnalyzerNames()
	f.Fuzz(func(t *testing.T, text string) {
		check, ok, problem := ParseDirective(text, known)
		switch {
		case ok:
			if problem != "" {
				t.Fatalf("ok with problem %q for %q", problem, text)
			}
			if !known[check] {
				t.Fatalf("accepted unknown check %q from %q", check, text)
			}
			if !strings.HasPrefix(text, "//beelint:allow") {
				t.Fatalf("accepted non-directive %q", text)
			}
		case problem != "":
			if check != "" {
				t.Fatalf("problem %q but check %q for %q", problem, check, text)
			}
			if !strings.HasPrefix(text, "//beelint:allow") {
				t.Fatalf("diagnosed non-directive %q: %s", text, problem)
			}
			if !utf8.ValidString(problem) && utf8.ValidString(text) {
				t.Fatalf("problem message corrupted UTF-8 for valid input %q", text)
			}
		default:
			if check != "" {
				t.Fatalf("check %q without ok for %q", check, text)
			}
		}
	})
}
