package lint

// Module-wide call graph. beelint v1 judged every function in
// isolation, which meant an invariant could be laundered through one
// level of indirection: a helper in another package reads the wall
// clock under its own audited annotation, and a simulated caller picks
// the value up scot-free. The call graph is the substrate that closes
// that hole — it records, for every function declared in the module
// (and in fixture trees checked alongside it), which declared functions
// it statically calls and where.
//
// The graph is deliberately simple: nodes are *types.Func objects for
// declared functions and methods; edges are direct static calls
// (package-level calls, method calls on concrete receivers, and calls
// through function-valued selectors that go/types resolves to a single
// *types.Func). Calls through interface methods or function values are
// not resolved — the analyzers that consume the graph treat them the
// way v1 treated everything: invisible. That keeps the engine sound
// for its purpose (no false "clean" from a *resolved* edge) without
// dragging in pointer analysis.
//
// Everything is ordered: nodes sort by position, edges by call-site
// offset, so any traversal — and therefore any finding message built
// from a chain — is byte-stable across runs.

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// CallSite is one static call edge origin.
type CallSite struct {
	// Pos is the position of the call expression.
	Pos token.Pos
	// Callee is the resolved target.
	Callee *types.Func
}

// FuncNode is one declared function or method in the analyzed package
// set.
type FuncNode struct {
	// Fn is the canonical object (methods use the declared receiver's
	// object, never an instantiation).
	Fn *types.Func
	// Decl is the syntax, with Body possibly nil for declarations
	// without bodies (assembly stubs; none exist in this module, but
	// the graph tolerates them).
	Decl *ast.FuncDecl
	// Pkg is the analyzed package the declaration lives in.
	Pkg *Package
	// Calls are the static call sites inside Decl (including those in
	// nested function literals, which execute with the enclosing
	// function's dynamic extent for the invariants beelint polices),
	// ordered by position.
	Calls []CallSite
}

// CallGraph indexes the declared functions of a package set.
type CallGraph struct {
	// Nodes maps each declared function to its node.
	Nodes map[*types.Func]*FuncNode
	// Funcs lists the nodes in deterministic (file, offset) order.
	Funcs []*FuncNode
	// Callers maps a callee to the nodes that call it, in the same
	// deterministic order.
	Callers map[*types.Func][]*FuncNode
}

// BuildCallGraph constructs the call graph over the given packages.
// Packages must share the fset they were parsed with.
func BuildCallGraph(pkgs []*Package, fset *token.FileSet) *CallGraph {
	g := &CallGraph{
		Nodes:   make(map[*types.Func]*FuncNode),
		Callers: make(map[*types.Func][]*FuncNode),
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Name == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				node := &FuncNode{Fn: obj, Decl: fd, Pkg: pkg}
				if fd.Body != nil {
					node.Calls = collectCalls(pkg.Info, fd.Body)
				}
				g.Nodes[obj] = node
			}
		}
	}
	for _, node := range g.Nodes {
		g.Funcs = append(g.Funcs, node)
	}
	sort.Slice(g.Funcs, func(i, j int) bool {
		pi := fset.Position(g.Funcs[i].Decl.Pos())
		pj := fset.Position(g.Funcs[j].Decl.Pos())
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		return pi.Offset < pj.Offset
	})
	for _, node := range g.Funcs {
		seen := make(map[*types.Func]bool)
		for _, cs := range node.Calls {
			if seen[cs.Callee] {
				continue
			}
			seen[cs.Callee] = true
			g.Callers[cs.Callee] = append(g.Callers[cs.Callee], node)
		}
	}
	return g
}

// collectCalls gathers the static call sites in body, ordered by
// position (ast.Inspect visits in source order).
func collectCalls(info *types.Info, body *ast.BlockStmt) []CallSite {
	var calls []CallSite
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if callee := StaticCallee(info, call); callee != nil {
			calls = append(calls, CallSite{Pos: call.Pos(), Callee: callee})
		}
		return true
	})
	return calls
}

// StaticCallee resolves a call expression to the declared function it
// invokes, or nil for builtins, conversions, function values and
// interface-method calls. Generic instantiations resolve to their
// origin so summaries are computed once per declaration.
func StaticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.IndexExpr: // generic instantiation f[T](...)
		if base, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			id = base
		}
	default:
		return nil
	}
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	// Interface methods have no body to summarize; the dynamic callee
	// is unknowable statically, so the edge is dropped.
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		if types.IsInterface(recv.Type()) {
			return nil
		}
	}
	return fn.Origin()
}
