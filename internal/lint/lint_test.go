package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
)

// The fixture corpus lives under testdata/src/<case>. Each case is a
// self-contained package checked under a synthetic import path, so
// path-suffix exemptions (internal/prof, internal/rng) can be
// exercised without touching real module packages. Expected findings
// are marked in the fixture source with "// want <check>" comments.

var (
	loaderOnce sync.Once
	testLoad   *Loader
	loaderErr  error
)

func sharedLoader(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() {
		root, err := FindModuleRoot(".")
		if err != nil {
			loaderErr = err
			return
		}
		testLoad, loaderErr = NewLoader(root)
	})
	if loaderErr != nil {
		t.Fatalf("loader: %v", loaderErr)
	}
	return testLoad
}

func fixtureDir(t *testing.T, name string) string {
	t.Helper()
	abs, err := filepath.Abs(filepath.Join("testdata", "src", name))
	if err != nil {
		t.Fatalf("abs: %v", err)
	}
	return abs
}

// runFixture type-checks one fixture package and runs the full
// analyzer suite (including directive validation and suppression).
func runFixture(t *testing.T, l *Loader, name, importPath string) []Finding {
	t.Helper()
	pkg, err := l.Check(fixtureDir(t, name), importPath)
	if err != nil {
		t.Fatalf("check fixture %s: %v", name, err)
	}
	return NewRunner().RunPackage(pkg, l.Fset)
}

// parseWants reads every fixture file and collects "basename:line: check"
// expectations from trailing "// want <check> [<check>...]" comments.
func parseWants(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("read fixture dir: %v", err)
	}
	var wants []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatalf("read fixture file: %v", err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			_, tail, ok := strings.Cut(line, "// want ")
			if !ok {
				continue
			}
			for _, check := range strings.Fields(tail) {
				wants = append(wants, fmt.Sprintf("%s:%d: %s", e.Name(), i+1, check))
			}
		}
	}
	sort.Strings(wants)
	return wants
}

func findingKeys(fs []Finding) []string {
	keys := make([]string, 0, len(fs))
	for _, f := range fs {
		keys = append(keys, fmt.Sprintf("%s:%d: %s", filepath.Base(f.File), f.Line, f.Check))
	}
	sort.Strings(keys)
	return keys
}

func diffKeys(t *testing.T, name string, got, want []string, fs []Finding) {
	t.Helper()
	gotSet := map[string]int{}
	for _, k := range got {
		gotSet[k]++
	}
	wantSet := map[string]int{}
	for _, k := range want {
		wantSet[k]++
	}
	for _, k := range want {
		if gotSet[k] < wantSet[k] {
			t.Errorf("%s: missing expected finding %s", name, k)
			wantSet[k] = gotSet[k]
		}
	}
	for _, k := range got {
		if wantSet[k] < gotSet[k] {
			t.Errorf("%s: unexpected finding %s", name, k)
			gotSet[k] = wantSet[k]
		}
	}
	if t.Failed() {
		for _, f := range fs {
			t.Logf("%s: got %s", name, f)
		}
	}
}

func TestFixtures(t *testing.T) {
	cases := []struct {
		name       string
		importPath string
	}{
		{"walltime", "fixture/walltime"},
		{"proffixture", "fixture/internal/prof"},
		{"unseededrand", "fixture/unseededrand"},
		{"rngself", "fixture/internal/rng"},
		{"maprange", "fixture/maprange"},
		{"unitcast", "fixture/unitcast"},
		{"gostmt", "fixture/gostmt"},
		{"parallelpkg", "fixture/internal/parallel"},
		{"accumfloat", "fixture/accumfloat"},
		{"suppress", "fixture/suppress"},
		{"suppressfile", "fixture/suppressfile"},
	}
	l := sharedLoader(t)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fs := runFixture(t, l, tc.name, tc.importPath)
			diffKeys(t, tc.name, findingKeys(fs), parseWants(t, fixtureDir(t, tc.name)), fs)
		})
	}
}

// TestMalformedDirectives pins the directive contract: a directive
// without a reason or with an unknown check is itself a finding, and
// suppresses nothing. Expectations are spelled out by hand because the
// malformed directives occupy the comment slot a want marker would use.
func TestMalformedDirectives(t *testing.T) {
	l := sharedLoader(t)
	fs := runFixture(t, l, "suppressbad", "fixture/suppressbad")
	want := []string{
		"suppressbad.go:8: directive",  // missing reason
		"suppressbad.go:8: walltime",   // ...so the finding survives
		"suppressbad.go:12: directive", // unknown check name
		"suppressbad.go:15: directive", // bare directive, no reason
	}
	sort.Strings(want)
	diffKeys(t, "suppressbad", findingKeys(fs), want, fs)
}

// TestFindingsDeterministic re-runs the whole fixture corpus on a
// fresh loader and requires byte-identical JSON, the same contract
// cmd/beelint -json exposes.
func TestFindingsDeterministic(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatalf("module root: %v", err)
	}
	run := func() []byte {
		l, err := NewLoader(root)
		if err != nil {
			t.Fatalf("loader: %v", err)
		}
		var all []Finding
		for _, tc := range []struct{ name, path string }{
			{"walltime", "fixture/walltime"},
			{"unseededrand", "fixture/unseededrand"},
			{"maprange", "fixture/maprange"},
			{"unitcast", "fixture/unitcast"},
			{"gostmt", "fixture/gostmt"},
			{"accumfloat", "fixture/accumfloat"},
			{"suppressbad", "fixture/suppressbad"},
		} {
			all = append(all, runFixture(t, l, tc.name, tc.path)...)
		}
		all = SortFindings(all)
		data, err := json.MarshalIndent(all, "", "  ")
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		return data
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Errorf("findings JSON differs between runs:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", a, b)
	}
}

// TestModuleClean runs the full analyzer suite over the real module:
// the tree must stay free of unsuppressed findings, which is the same
// bar make verify enforces through cmd/beelint.
func TestModuleClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module type check is slow; run without -short")
	}
	l := sharedLoader(t)
	pkgs, err := l.LoadModule()
	if err != nil {
		t.Fatalf("load module: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("suspiciously few packages loaded: %d", len(pkgs))
	}
	r := NewRunner()
	var all []Finding
	for _, pkg := range pkgs {
		all = append(all, r.RunPackage(pkg, l.Fset)...)
	}
	for _, f := range all {
		t.Errorf("module not lint-clean: %s", f)
	}
}
