package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
)

// The fixture corpus lives under testdata/src/<case>. Each case is a
// self-contained package checked under a synthetic import path, so
// path-suffix exemptions (internal/prof, internal/rng) can be
// exercised without touching real module packages. Expected findings
// are marked in the fixture source with "// want <check>" comments.

var (
	loaderOnce sync.Once
	testLoad   *Loader
	loaderErr  error
)

func sharedLoader(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() {
		root, err := FindModuleRoot(".")
		if err != nil {
			loaderErr = err
			return
		}
		testLoad, loaderErr = NewLoader(root)
	})
	if loaderErr != nil {
		t.Fatalf("loader: %v", loaderErr)
	}
	return testLoad
}

func fixtureDir(t *testing.T, name string) string {
	t.Helper()
	abs, err := filepath.Abs(filepath.Join("testdata", "src", name))
	if err != nil {
		t.Fatalf("abs: %v", err)
	}
	return abs
}

// runFixture type-checks one fixture package and runs the full
// analyzer suite (including directive validation and suppression).
func runFixture(t *testing.T, l *Loader, name, importPath string) []Finding {
	t.Helper()
	pkg, err := l.Check(fixtureDir(t, name), importPath)
	if err != nil {
		t.Fatalf("check fixture %s: %v", name, err)
	}
	return NewRunner().RunPackage(pkg, l.Fset)
}

// parseWants reads every fixture file and collects "basename:line: check"
// expectations from trailing "// want <check> [<check>...]" comments.
func parseWants(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("read fixture dir: %v", err)
	}
	var wants []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatalf("read fixture file: %v", err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			_, tail, ok := strings.Cut(line, "// want ")
			if !ok {
				continue
			}
			for _, check := range strings.Fields(tail) {
				wants = append(wants, fmt.Sprintf("%s:%d: %s", e.Name(), i+1, check))
			}
		}
	}
	sort.Strings(wants)
	return wants
}

func findingKeys(fs []Finding) []string {
	keys := make([]string, 0, len(fs))
	for _, f := range fs {
		keys = append(keys, fmt.Sprintf("%s:%d: %s", filepath.Base(f.File), f.Line, f.Check))
	}
	sort.Strings(keys)
	return keys
}

func diffKeys(t *testing.T, name string, got, want []string, fs []Finding) {
	t.Helper()
	gotSet := map[string]int{}
	for _, k := range got {
		gotSet[k]++
	}
	wantSet := map[string]int{}
	for _, k := range want {
		wantSet[k]++
	}
	for _, k := range want {
		if gotSet[k] < wantSet[k] {
			t.Errorf("%s: missing expected finding %s", name, k)
			wantSet[k] = gotSet[k]
		}
	}
	for _, k := range got {
		if wantSet[k] < gotSet[k] {
			t.Errorf("%s: unexpected finding %s", name, k)
			gotSet[k] = wantSet[k]
		}
	}
	if t.Failed() {
		for _, f := range fs {
			t.Logf("%s: got %s", name, f)
		}
	}
}

func TestFixtures(t *testing.T) {
	cases := []struct {
		name       string
		importPath string
		// deps are fixture packages checked first so the case's imports
		// resolve from the loader cache (dir then import path).
		deps [][2]string
	}{
		{"walltime", "fixture/walltime", nil},
		{"proffixture", "fixture/internal/prof", nil},
		{"unseededrand", "fixture/unseededrand", nil},
		{"rngself", "fixture/internal/rng", nil},
		{"maprange", "fixture/maprange", nil},
		{"unitcast", "fixture/unitcast", nil},
		{"gostmt", "fixture/gostmt", nil},
		{"parallelpkg", "fixture/internal/parallel", nil},
		{"accumfloat", "fixture/accumfloat", nil},
		{"suppress", "fixture/suppress", nil},
		{"suppressfile", "fixture/suppressfile", nil},
		{"sharedcapture", "fixture/sharedcapture", nil},
		{"exhaustive", "fixture/exhaustive", nil},
		{"ledgerpkg", "fixture/internal/ledger", nil},
		{"errdrop", "fixture/errdrop", [][2]string{{"ledgerpkg", "fixture/internal/ledger"}}},
	}
	l := sharedLoader(t)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for _, d := range tc.deps {
				if _, err := l.Check(fixtureDir(t, d[0]), d[1]); err != nil {
					t.Fatalf("check dep %s: %v", d[0], err)
				}
			}
			fs := runFixture(t, l, tc.name, tc.importPath)
			diffKeys(t, tc.name, findingKeys(fs), parseWants(t, fixtureDir(t, tc.name)), fs)
		})
	}
}

// interprocFixtures checks the multi-package interprocedural fixture
// tree, deepest-first, and returns the packages.
func interprocFixtures(t *testing.T, l *Loader) []*Package {
	t.Helper()
	var pkgs []*Package
	for _, d := range [][2]string{
		{"interproc/prof", "fixture/ip/internal/prof"},
		{"interproc/mid", "fixture/ip/mid"},
		{"interproc/randsrc", "fixture/ip/randsrc"},
		{"interproc/sink", "fixture/ip/sink"},
		{"interproc/sim", "fixture/ip/sim"},
	} {
		pkg, err := l.Check(fixtureDir(t, d[0]), d[1])
		if err != nil {
			t.Fatalf("check %s: %v", d[0], err)
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs
}

// TestInterprocedural pins the module-wide pass end to end: the
// laundered wall-clock read, the audited randomness source, and the
// transitive print sink are each invisible to the file-local pass and
// reported — with full call-chain traces — by the interprocedural one.
func TestInterprocedural(t *testing.T) {
	l := sharedLoader(t)
	pkgs := interprocFixtures(t, l)
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}

	// A: file-local only. Every audited hop is quiet, so the corpus is
	// clean — proving the findings below need the whole-program view.
	local := NewRunner().RunModule(pkgs, l.Fset, root, ModuleOptions{})
	for _, f := range local {
		t.Errorf("file-local pass should be clean, got %s", f)
	}

	// B: interprocedural. The wants in interproc/sim fire.
	full := NewRunner().RunModule(pkgs, l.Fset, root, ModuleOptions{Interprocedural: true})
	var want []string
	for _, dir := range []string{"interproc/prof", "interproc/mid", "interproc/randsrc", "interproc/sink", "interproc/sim"} {
		want = append(want, parseWants(t, fixtureDir(t, dir))...)
	}
	sort.Strings(want)
	diffKeys(t, "interproc", findingKeys(full), want, full)

	// The walltime finding must carry the two-hop chain down to the
	// clock read.
	const chain = "sim.Run -> mid.Helper -> prof.Stamp -> time.Now"
	found := false
	for _, f := range full {
		if f.Check == "walltime" && strings.Contains(f.Msg, chain) {
			found = true
		}
	}
	if !found {
		t.Errorf("no walltime finding carries chain %q; findings: %v", chain, full)
	}
}

// TestMalformedDirectives pins the directive contract: a directive
// without a reason or with an unknown check is itself a finding, and
// suppresses nothing. Expectations are spelled out by hand because the
// malformed directives occupy the comment slot a want marker would use.
func TestMalformedDirectives(t *testing.T) {
	l := sharedLoader(t)
	fs := runFixture(t, l, "suppressbad", "fixture/suppressbad")
	want := []string{
		"suppressbad.go:8: directive",  // missing reason
		"suppressbad.go:8: walltime",   // ...so the finding survives
		"suppressbad.go:12: directive", // unknown check name
		"suppressbad.go:15: directive", // bare directive, no reason
	}
	sort.Strings(want)
	diffKeys(t, "suppressbad", findingKeys(fs), want, fs)
}

// TestFindingsDeterministic re-runs the whole fixture corpus on a
// fresh loader and requires byte-identical JSON, the same contract
// cmd/beelint -json exposes.
func TestFindingsDeterministic(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatalf("module root: %v", err)
	}
	run := func() []byte {
		l, err := NewLoader(root)
		if err != nil {
			t.Fatalf("loader: %v", err)
		}
		var all []Finding
		for _, tc := range []struct{ name, path string }{
			{"walltime", "fixture/walltime"},
			{"unseededrand", "fixture/unseededrand"},
			{"maprange", "fixture/maprange"},
			{"unitcast", "fixture/unitcast"},
			{"gostmt", "fixture/gostmt"},
			{"accumfloat", "fixture/accumfloat"},
			{"suppressbad", "fixture/suppressbad"},
		} {
			all = append(all, runFixture(t, l, tc.name, tc.path)...)
		}
		all = SortFindings(all)
		data, err := json.MarshalIndent(all, "", "  ")
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		return data
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Errorf("findings JSON differs between runs:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", a, b)
	}
}

// TestModuleClean runs the full analyzer suite — interprocedural pass
// included — over the real module: the tree must stay free of
// unsuppressed findings, which is the same bar make verify enforces
// through cmd/beelint.
func TestModuleClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module type check is slow; run without -short")
	}
	l := sharedLoader(t)
	pkgs, err := l.LoadModule()
	if err != nil {
		t.Fatalf("load module: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("suspiciously few packages loaded: %d", len(pkgs))
	}
	all := NewRunner().RunModule(pkgs, l.Fset, l.Root, ModuleOptions{Interprocedural: true})
	for _, f := range all {
		t.Errorf("module not lint-clean: %s", f)
	}
}

// TestFixCorpus pins the -fix contract on the golden corpus: every
// corpus finding carries a fix, the fixed bytes match the .golden
// files, the fixed package re-lints clean, and a second fix pass has
// nothing to do (idempotency).
func TestFixCorpus(t *testing.T) {
	l := sharedLoader(t)
	dir, err := filepath.Abs(filepath.Join("testdata", "fix", "corpus"))
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.Check(dir, "beesim/fixcorpus")
	if err != nil {
		t.Fatalf("check corpus: %v", err)
	}
	findings := NewRunner().RunPackage(pkg, l.Fset)
	if len(findings) != 3 {
		t.Fatalf("corpus findings = %d, want 3: %v", len(findings), findings)
	}
	for _, f := range findings {
		if !f.Fixable || f.Fix == nil {
			t.Errorf("corpus finding not fixable: %s", f)
		}
	}

	fx := &Fixer{Fset: l.Fset}
	results, err := fx.Apply(findings)
	if err != nil {
		t.Fatalf("apply: %v", err)
	}
	if len(results) != 3 {
		t.Fatalf("fixed files = %d, want 3", len(results))
	}
	fixedDir := t.TempDir()
	for _, r := range results {
		name := filepath.Base(r.File)
		golden := r.File + ".golden"
		if os.Getenv("BEELINT_UPDATE_GOLDEN") != "" {
			if err := os.WriteFile(golden, r.Content, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		want, err := os.ReadFile(golden)
		if err != nil {
			t.Fatalf("missing golden (set BEELINT_UPDATE_GOLDEN=1 to create): %v", err)
		}
		if !bytes.Equal(r.Content, want) {
			t.Errorf("%s: fixed output differs from golden:\n%s", name, r.Content)
		}
		if err := os.WriteFile(filepath.Join(fixedDir, name), r.Content, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	// Round trip: the fixed corpus type-checks, re-lints clean, and
	// offers no further fixes.
	fixedPkg, err := l.Check(fixedDir, "beesim/fixcorpusfixed")
	if err != nil {
		t.Fatalf("fixed corpus does not type-check: %v", err)
	}
	refind := NewRunner().RunPackage(fixedPkg, l.Fset)
	for _, f := range refind {
		t.Errorf("fixed corpus not lint-clean: %s", f)
	}
	again, err := fx.Apply(refind)
	if err != nil {
		t.Fatalf("second apply: %v", err)
	}
	if len(again) != 0 {
		t.Errorf("second fix pass rewrote %d file(s); -fix must be idempotent", len(again))
	}
}
