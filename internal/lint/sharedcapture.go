package lint

// sharedcapture: internal/parallel's contract is fork/join with an
// index-ordered merge — each task returns its result (Map) or writes
// only its own index range (MapChunks). The contract dies quietly when
// a task closure writes to state captured from the enclosing scope: a
// captured counter += is a data race -race may or may not catch, and a
// captured map write corrupts the map outright. This analyzer is the
// static complement to the race detector: it flags, inside function
// literals passed to internal/parallel entry points, every write to a
// variable declared outside the literal.
//
// The sanctioned idiom stays clean: writes through an index expression
// whose index is derived from the literal's own parameters
// (out[i] = …, rows[f] with f := lo…hi) are each task's private slot
// and are exempt. Captured map writes are never exempt — concurrent
// map writes race even on distinct keys.

import (
	"go/ast"
	"go/token"
	"go/types"
)

var analyzerSharedCapture = &Analyzer{
	Name: "sharedcapture",
	Doc:  "mutable state captured by closures passed to internal/parallel (races the fork/join contract)",
	Run: func(p *Pass) {
		info := p.Pkg.Info
		inspectFiles(p, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := StaticCallee(info, call)
			if fn == nil || fn.Pkg() == nil || !pathHasSuffix(fn.Pkg().Path(), "internal/parallel") {
				return true
			}
			for _, arg := range call.Args {
				lit, ok := arg.(*ast.FuncLit)
				if !ok {
					continue
				}
				checkCapturedWrites(p, lit, fn.Name())
			}
			return true
		})
	},
}

// checkCapturedWrites walks a task literal's body and reports writes
// to captured variables.
func checkCapturedWrites(p *Pass, lit *ast.FuncLit, entry string) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				reportCapturedWrite(p, lit, lhs, entry)
			}
		case *ast.IncDecStmt:
			reportCapturedWrite(p, lit, s.X, entry)
		case *ast.RangeStmt:
			// for k, v = range … with = (not :=) assigns captured vars.
			if s.Tok == token.ASSIGN {
				if s.Key != nil {
					reportCapturedWrite(p, lit, s.Key, entry)
				}
				if s.Value != nil {
					reportCapturedWrite(p, lit, s.Value, entry)
				}
			}
		}
		return true
	})
}

// reportCapturedWrite reports lhs when it writes to state captured
// from outside lit, honoring the private-slot exemption.
func reportCapturedWrite(p *Pass, lit *ast.FuncLit, lhs ast.Expr, entry string) {
	info := p.Pkg.Info
	root := rootIdent(lhs)
	if root == nil || root.Name == "_" {
		return
	}
	if declaredWithin(info, root, lit) {
		return // task-local state
	}
	// Writes through an index derived from the literal's own
	// parameters or locals hit each task's private slot — the
	// sanctioned MapChunks idiom. Maps are excluded: concurrent map
	// writes race regardless of key.
	if idx, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
		if !baseIsMap(info.TypeOf(idx.X)) && indexUsesLocal(info, idx.Index, lit) {
			return
		}
	}
	p.Reportf(lhs.Pos(),
		"write to %q captured from outside the task closure passed to parallel.%s: "+
			"tasks must return results or write only their own index slot "+
			"(the fork/join contract; see docs/PERFORMANCE.md)", root.Name, entry)
}

// baseIsMap reports whether t's underlying (after pointers) is a map.
func baseIsMap(t types.Type) bool {
	if t == nil {
		return false
	}
	u := t.Underlying()
	if ptr, ok := u.(*types.Pointer); ok {
		u = ptr.Elem().Underlying()
	}
	_, ok := u.(*types.Map)
	return ok
}

// indexUsesLocal reports whether the index expression references any
// identifier declared inside the literal (parameters included).
func indexUsesLocal(info *types.Info, index ast.Expr, lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(index, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && declaredWithin(info, id, lit) {
			found = true
		}
		return !found
	})
	return found
}
