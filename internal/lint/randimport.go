package lint

// unseededrand: every stochastic draw in beesim flows through
// internal/rng (xoshiro256** behind a fixed seed) so that the paper's
// figures — Gaussian client-loss spikes included — are reproducible
// bit for bit and independent of the Go release. math/rand's stream
// changes across Go versions and its default source is shared mutable
// state; crypto/rand is nondeterministic by design. Neither belongs in
// simulator code.

import (
	"fmt"
	"go/ast"
	"go/types"
)

var bannedRandImports = map[string]string{
	"math/rand":    "its stream varies across Go releases and its default source is global state",
	"math/rand/v2": "its stream is not guaranteed stable for reproduction purposes",
	"crypto/rand":  "it is nondeterministic by design",
}

var analyzerUnseededRand = &Analyzer{
	Name: "unseededrand",
	Doc:  "math/rand and crypto/rand imports outside internal/rng",
	Run: func(p *Pass) {
		if pathHasSuffix(p.Pkg.Path, "internal/rng") {
			return
		}
		for _, f := range p.Pkg.Files {
			for _, imp := range f.Imports {
				path := importPathOf(imp)
				why, banned := bannedRandImports[path]
				if !banned {
					continue
				}
				p.ReportFixf(imp.Pos(), randImportFix(p, f, imp, path),
					"import %q: %s; draw from internal/rng instead", path, why)
			}
		}
	},
}

// randImportFix builds the seeded-rng substitution: when every use of a
// math/rand import in the file is the rand.New(rand.NewSource(seed))
// idiom, each becomes rng.New(uint64(seed)) and the import is retargeted
// to the module's internal/rng. (The deterministic Source covers the
// overlapping method set — Float64, Intn, Perm, Shuffle, Uint64, … —
// so the swap is mechanical.) Nil when any other use of the package
// remains, the import is renamed, or "rng" is already bound.
func randImportFix(p *Pass, f *ast.File, imp *ast.ImportSpec, path string) *Fix {
	if path != "math/rand" || imp.Name != nil {
		return nil
	}
	info := p.Pkg.Info
	pn, ok := info.Implicits[imp].(*types.PkgName)
	if !ok {
		return nil
	}
	rngPath := modulePrefix(p.Pkg.Path) + "/internal/rng"
	if p.Pkg.Types.Scope().Lookup("rng") != nil {
		return nil
	}
	for _, other := range f.Imports {
		name := ""
		if other.Name != nil {
			name = other.Name.Name
		} else if i := importPathOf(other); i != "" {
			// Default names match the path's last segment closely enough
			// for a collision veto.
			name = i[lastSlash(i)+1:]
		}
		if name == "rng" {
			return nil
		}
	}

	// Collect the rewrite sites and the rand selectors they account for.
	accounted := make(map[*ast.SelectorExpr]bool)
	var edits []FixEdit
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		outer, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !isRandRef(info, outer, pn) || outer.Sel.Name != "New" || len(call.Args) != 1 {
			return true
		}
		src, ok := call.Args[0].(*ast.CallExpr)
		if !ok || len(src.Args) != 1 {
			return true
		}
		inner, ok := src.Fun.(*ast.SelectorExpr)
		if !ok || !isRandRef(info, inner, pn) || inner.Sel.Name != "NewSource" {
			return true
		}
		accounted[outer], accounted[inner] = true, true
		edits = append(edits, FixEdit{
			Pos: call.Pos(), End: call.End(),
			New: fmt.Sprintf("rng.New(uint64(%s))", types.ExprString(src.Args[0])),
		})
		return true
	})
	if len(edits) == 0 {
		return nil
	}

	// Any rand reference outside the matched pattern blocks the fix.
	blocked := false
	ast.Inspect(f, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if ok && isRandRef(info, sel, pn) && !accounted[sel] {
			blocked = true
		}
		return !blocked
	})
	if blocked {
		return nil
	}
	edits = append(edits, FixEdit{Pos: imp.Pos(), End: imp.End(), New: fmt.Sprintf("%q", rngPath)})
	return &Fix{Edits: edits}
}

// isRandRef reports whether sel selects through the given rand package
// name.
func isRandRef(info *types.Info, sel *ast.SelectorExpr, pn *types.PkgName) bool {
	id, ok := sel.X.(*ast.Ident)
	return ok && info.Uses[id] == pn
}

// lastSlash returns the index of the last '/' in s, or -1.
func lastSlash(s string) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '/' {
			return i
		}
	}
	return -1
}
