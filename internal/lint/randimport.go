package lint

// unseededrand: every stochastic draw in beesim flows through
// internal/rng (xoshiro256** behind a fixed seed) so that the paper's
// figures — Gaussian client-loss spikes included — are reproducible
// bit for bit and independent of the Go release. math/rand's stream
// changes across Go versions and its global source is shared mutable
// state; crypto/rand is nondeterministic by design. Neither belongs in
// simulator code.

import "strconv"

var bannedRandImports = map[string]string{
	"math/rand":    "its stream varies across Go releases and its default source is global state",
	"math/rand/v2": "its stream is not guaranteed stable for reproduction purposes",
	"crypto/rand":  "it is nondeterministic by design",
}

var analyzerUnseededRand = &Analyzer{
	Name: "unseededrand",
	Doc:  "math/rand and crypto/rand imports outside internal/rng",
	Run: func(p *Pass) {
		if pathHasSuffix(p.Pkg.Path, "internal/rng") {
			return
		}
		for _, f := range p.Pkg.Files {
			for _, imp := range f.Imports {
				path, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					continue
				}
				why, banned := bannedRandImports[path]
				if !banned {
					continue
				}
				p.Reportf(imp.Pos(),
					"import %q: %s; draw from internal/rng instead", path, why)
			}
		}
	},
}
