package lint

// Autofix. A finding whose rewrite is purely mechanical — no judgment,
// no behavior choice — can carry a Fix: a set of textual edits plus
// the imports the rewritten code needs. beelint -fix applies them,
// reformats, and writes the files back; the contract (pinned by the
// golden corpus in testdata) is that fixing is idempotent and the
// fixed source is lint-clean for the originating check.
//
// Three rewrites ship:
//
//	maprange     collect keys, sort, iterate the sorted slice
//	accumfloat   wrap the loop in a stats.Kahan accumulator
//	unseededrand swap rand.New(rand.NewSource(s)) for internal/rng
//
// Edits are byte-offset replacements against the file as parsed, so
// applying is order-independent and overlap is detectable; the result
// runs through go/format for canonical layout.

import (
	"fmt"
	"go/format"
	"go/token"
	"os"
	"sort"
	"strings"
)

// FixEdit is one textual replacement: source bytes [Pos, End) become
// New. Pos == End inserts.
type FixEdit struct {
	Pos, End token.Pos
	New      string
}

// FixImport is an import the rewritten file must carry.
type FixImport struct {
	// Path is the import path; the package's default name must match
	// the name the rewritten code uses.
	Path string
}

// Fix is a mechanical rewrite attached to a Finding. All edits target
// the finding's file.
type Fix struct {
	Edits   []FixEdit
	Imports []FixImport
}

// Fixer applies fixes to source files.
type Fixer struct {
	Fset *token.FileSet
	// ReadFile loads a file's current bytes (os.ReadFile when nil, so
	// tests can redirect).
	ReadFile func(string) ([]byte, error)
}

// FixResult reports one rewritten file.
type FixResult struct {
	File    string
	Applied int
	Content []byte
}

// Apply applies the fixes of every fixable finding, returning the
// rewritten files sorted by path. Findings whose edits overlap a fix
// already taken (in SortFindings order) are skipped — the next -fix
// run picks them up once the file has settled.
func (fx *Fixer) Apply(findings []Finding) ([]FixResult, error) {
	readFile := fx.ReadFile
	if readFile == nil {
		readFile = os.ReadFile
	}
	type fileState struct {
		edits   []FixEdit
		imports []FixImport
	}
	perFile := make(map[string]*fileState)
	var files []string
	for _, f := range findings {
		if f.Fix == nil {
			continue
		}
		st := perFile[f.File]
		if st == nil {
			st = &fileState{}
			perFile[f.File] = st
			files = append(files, f.File)
		}
		if overlaps(st.edits, f.Fix.Edits) {
			continue
		}
		st.edits = append(st.edits, f.Fix.Edits...)
		st.imports = append(st.imports, f.Fix.Imports...)
	}
	sort.Strings(files)
	var results []FixResult
	for _, file := range files {
		st := perFile[file]
		src, err := readFile(file)
		if err != nil {
			return nil, err
		}
		out, n, err := fx.applyFile(file, src, st.edits, st.imports)
		if err != nil {
			return nil, fmt.Errorf("lint: fixing %s: %w", file, err)
		}
		results = append(results, FixResult{File: file, Applied: n, Content: out})
	}
	return results, nil
}

// offsets converts a FixEdit to byte offsets within its file.
func (fx *Fixer) offsets(e FixEdit) (int, int) {
	return fx.Fset.Position(e.Pos).Offset, fx.Fset.Position(e.End).Offset
}

// overlaps reports whether any new edit intersects the accepted set.
func overlaps(accepted, next []FixEdit) bool {
	for _, n := range next {
		for _, a := range accepted {
			if n.Pos < a.End && a.Pos < n.End {
				return true
			}
		}
	}
	return false
}

func (fx *Fixer) applyFile(file string, src []byte, edits []FixEdit, imports []FixImport) ([]byte, int, error) {
	sorted := append([]FixEdit(nil), edits...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Pos > sorted[j].Pos })
	out := append([]byte(nil), src...)
	for _, e := range sorted {
		start, end := fx.offsets(e)
		if start < 0 || end > len(out) || start > end {
			return nil, 0, fmt.Errorf("edit out of range [%d,%d)", start, end)
		}
		out = append(out[:start], append([]byte(e.New), out[end:]...)...)
	}
	var err error
	out, err = insertImports(out, imports)
	if err != nil {
		return nil, 0, err
	}
	out, err = format.Source(out)
	if err != nil {
		return nil, 0, fmt.Errorf("rewritten source does not format: %w", err)
	}
	return out, len(edits), nil
}

// insertImports adds any missing imports as standalone import lines
// directly after the package clause; go/format keeps them stable.
func insertImports(src []byte, imports []FixImport) ([]byte, error) {
	if len(imports) == 0 {
		return src, nil
	}
	text := string(src)
	need := make(map[string]bool)
	var order []string
	for _, imp := range imports {
		if !need[imp.Path] && !strings.Contains(text, `"`+imp.Path+`"`) {
			need[imp.Path] = true
			order = append(order, imp.Path)
		}
	}
	if len(order) == 0 {
		return src, nil
	}
	sort.Strings(order)
	// The package clause ends at the first newline after a "package "
	// at the start of a line (not one inside a doc comment).
	idx := -1
	if strings.HasPrefix(text, "package ") {
		idx = 0
	} else if i := strings.Index(text, "\npackage "); i >= 0 {
		idx = i + 1
	}
	if idx < 0 {
		return nil, fmt.Errorf("no package clause")
	}
	nl := strings.IndexByte(text[idx:], '\n')
	if nl < 0 {
		return nil, fmt.Errorf("unterminated package clause")
	}
	at := idx + nl + 1
	var b strings.Builder
	b.WriteString(text[:at])
	for _, path := range order {
		fmt.Fprintf(&b, "\nimport %q\n", path)
	}
	b.WriteString(text[at:])
	return []byte(b.String()), nil
}
