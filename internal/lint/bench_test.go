package lint

import "testing"

// BenchmarkLintModule measures one full-module analysis — discovery,
// parse, type-check, the per-package analyzer suite, and the
// interprocedural call-graph pass — i.e. the wall time every `make
// lint` pays. One iteration is one cold run (no loader reuse);
// bench-diff takes the min of -count runs to shed scheduler noise.
func BenchmarkLintModule(b *testing.B) {
	root, err := FindModuleRoot(".")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l, err := NewLoader(root)
		if err != nil {
			b.Fatal(err)
		}
		pkgs, err := l.LoadModule()
		if err != nil {
			b.Fatal(err)
		}
		findings := NewRunner().RunModule(pkgs, l.Fset, root, ModuleOptions{Interprocedural: true})
		if len(findings) != 0 {
			b.Fatalf("module not lint-clean: %v", findings)
		}
	}
}
