package lint

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func mkFinding(file, check string, line int) Finding {
	return Finding{File: file, Check: check, Line: line, Col: 1, Msg: "m"}
}

func TestBaselineDiff(t *testing.T) {
	findings := []Finding{
		mkFinding("a.go", "walltime", 3),
		mkFinding("a.go", "walltime", 9),
		mkFinding("b.go", "errdrop", 4),
	}
	base := NewBaseline([]Finding{
		mkFinding("a.go", "walltime", 3), // one accepted, second is fresh
		mkFinding("c.go", "maprange", 1), // paid off: stale
	})
	fresh, stale := base.Diff(findings)
	if len(fresh) != 2 {
		t.Fatalf("fresh = %v, want 2 (a.go walltime #2, b.go errdrop)", fresh)
	}
	if fresh[0].File != "a.go" || fresh[1].File != "b.go" {
		t.Errorf("fresh = %v", fresh)
	}
	if len(stale) != 1 || stale[0].File != "c.go" {
		t.Errorf("stale = %v, want the paid-off c.go entry", stale)
	}
}

func TestBaselineEmptyIsStrict(t *testing.T) {
	base, err := LoadBaseline(filepath.Join(t.TempDir(), "missing.json"))
	if err != nil {
		t.Fatal(err)
	}
	fresh, stale := base.Diff([]Finding{mkFinding("a.go", "walltime", 1)})
	if len(fresh) != 1 || len(stale) != 0 {
		t.Fatalf("fresh=%v stale=%v; empty baseline must reject everything", fresh, stale)
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	findings := []Finding{
		mkFinding("b.go", "errdrop", 4),
		mkFinding("a.go", "walltime", 3),
		mkFinding("a.go", "walltime", 9),
	}
	path := filepath.Join(t.TempDir(), "base.json")
	if err := NewBaseline(findings).Write(path); err != nil {
		t.Fatal(err)
	}
	base, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Entries) != 2 {
		t.Fatalf("entries = %v, want 2", base.Entries)
	}
	if base.Entries[0].File != "a.go" || base.Entries[0].Count != 2 {
		t.Errorf("entries not sorted/counted: %v", base.Entries)
	}
	fresh, stale := base.Diff(findings)
	if len(fresh) != 0 || len(stale) != 0 {
		t.Errorf("round trip not neutral: fresh=%v stale=%v", fresh, stale)
	}
	// Serialization is byte-stable: writing the loaded baseline again
	// reproduces the file.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	path2 := filepath.Join(t.TempDir(), "base2.json")
	if err := base.Write(path2); err != nil {
		t.Fatal(err)
	}
	data2, err := os.ReadFile(path2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Errorf("baseline serialization unstable:\n%s\nvs\n%s", data, data2)
	}
}

func TestSARIF(t *testing.T) {
	findings := []Finding{
		mkFinding("internal/a/a.go", "walltime", 3),
		mkFinding("internal/b/b.go", "errdrop", 7),
	}
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, findings); err != nil {
		t.Fatal(err)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("SARIF output is not valid JSON: %v\n%s", err, buf.String())
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("version=%q runs=%d", log.Version, len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "beelint" {
		t.Errorf("driver name = %q", run.Tool.Driver.Name)
	}
	// Every analyzer (plus the directive pseudo-check) is a rule, and
	// every finding's check resolves to one.
	rules := make(map[string]bool)
	for _, r := range run.Tool.Driver.Rules {
		rules[r.ID] = true
	}
	if want := len(Analyzers()) + 1; len(rules) != want {
		t.Errorf("rules = %d, want %d", len(rules), want)
	}
	if len(run.Results) != 2 {
		t.Fatalf("results = %d, want 2", len(run.Results))
	}
	for i, r := range run.Results {
		if !rules[r.RuleID] {
			t.Errorf("result %d ruleId %q has no rule", i, r.RuleID)
		}
	}
	if uri := run.Results[0].Locations[0].PhysicalLocation.ArtifactLocation.URI; uri != "internal/a/a.go" {
		t.Errorf("uri = %q", uri)
	}
	if line := run.Results[1].Locations[0].PhysicalLocation.Region.StartLine; line != 7 {
		t.Errorf("startLine = %d, want 7", line)
	}
	if strings.Contains(buf.String(), "\\u") {
		t.Logf("note: non-ASCII escapes present (fine, just informational)")
	}
	// Determinism: a second render is byte-identical.
	var buf2 bytes.Buffer
	if err := WriteSARIF(&buf2, findings); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("SARIF output differs between renders")
	}
}
