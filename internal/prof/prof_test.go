package prof

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

func TestDisabledProfilerIsInert(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	p := Register(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := p.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}
	var nilP *Profiler
	if err := nilP.Start(); err != nil {
		t.Fatalf("nil Start: %v", err)
	}
	if err := nilP.Stop(); err != nil {
		t.Fatalf("nil Stop: %v", err)
	}
}

func TestProfilesAreWritten(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	p := Register(fs)
	if err := fs.Parse([]string{"-cpuprofile", cpu, "-memprofile", mem}); err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	// Burn a little CPU so the profile has something to sample.
	x := 0
	for i := 0; i < 1e6; i++ {
		x += i % 7
	}
	_ = x
	if err := p.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}
	for _, path := range []string{cpu, mem} {
		st, err := os.Stat(path)
		if err != nil {
			t.Fatalf("profile missing: %v", err)
		}
		if st.Size() == 0 {
			t.Fatalf("%s is empty", path)
		}
	}
	// A second Stop must not re-profile or error.
	if err := p.Stop(); err == nil {
		// mem profile is rewritten (idempotent by design); only verify
		// no error and the CPU file handle stayed closed.
		if p.cpuFile != nil {
			t.Fatal("cpu file handle leaked")
		}
	} else {
		t.Fatalf("second Stop: %v", err)
	}
}

func TestStartErrorOnBadPath(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	p := Register(fs)
	bad := filepath.Join(t.TempDir(), "no", "such", "dir", "cpu.pprof")
	if err := fs.Parse([]string{"-cpuprofile", bad}); err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err == nil {
		t.Fatal("Start on unwritable path should fail")
	}
}
