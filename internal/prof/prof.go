// Package prof wires runtime/pprof CPU and heap profiling into a CLI
// with two flags and two calls:
//
//	p := prof.Register(flag.CommandLine)
//	flag.Parse()
//	if err := p.Start(); err != nil { ... }
//	defer func() { err = errors.Join(err, p.Stop()) }()
//
// Stop returns file close errors instead of swallowing them, so a full
// disk surfaces in the CLI's exit code rather than as a silently
// truncated profile.
package prof

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Profiler holds the flag values and the open CPU profile file.
type Profiler struct {
	cpuPath *string
	memPath *string
	cpuFile *os.File
}

// Register adds -cpuprofile and -memprofile to fs and returns the
// profiler to Start after parsing.
func Register(fs *flag.FlagSet) *Profiler {
	return &Profiler{
		cpuPath: fs.String("cpuprofile", "", "write a CPU profile to this file"),
		memPath: fs.String("memprofile", "", "write a heap profile to this file on exit"),
	}
}

// Start begins CPU profiling when -cpuprofile was given. Call after
// flag parsing and before the workload.
func (p *Profiler) Start() error {
	if p == nil || *p.cpuPath == "" {
		return nil
	}
	f, err := os.Create(*p.cpuPath)
	if err != nil {
		return err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return fmt.Errorf("prof: starting CPU profile: %w", err)
	}
	p.cpuFile = f
	return nil
}

// Stop ends CPU profiling and writes the heap profile when -memprofile
// was given. Safe to call when Start did nothing; every file error —
// including close — is returned.
func (p *Profiler) Stop() error {
	if p == nil {
		return nil
	}
	var errs []error
	if p.cpuFile != nil {
		pprof.StopCPUProfile()
		if err := p.cpuFile.Close(); err != nil {
			errs = append(errs, err)
		}
		p.cpuFile = nil
	}
	if *p.memPath != "" {
		f, err := os.Create(*p.memPath)
		if err != nil {
			errs = append(errs, err)
		} else {
			runtime.GC() // up-to-date allocation statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				errs = append(errs, fmt.Errorf("prof: writing heap profile: %w", err))
			}
			if err := f.Close(); err != nil {
				errs = append(errs, err)
			}
		}
	}
	return errors.Join(errs...)
}
