package dsp

import (
	"errors"
	"math"
)

// This file completes the classical audio front end with mel-frequency
// cepstral coefficients: the DCT-II of the log-mel spectrum. The paper's
// classifiers use the mel spectrogram directly, but MFCCs are the
// standard compact alternative for classical models, and the catalog's
// lighter services (swarm prediction) benefit from the smaller feature
// vector.

// DCTII computes the orthonormal type-II discrete cosine transform of x.
func DCTII(x []float64) []float64 {
	n := len(x)
	out := make([]float64, n)
	if n == 0 {
		return out
	}
	scale0 := math.Sqrt(1 / float64(n))
	scale := math.Sqrt(2 / float64(n))
	for k := 0; k < n; k++ {
		var sum float64
		for i := 0; i < n; i++ {
			sum += x[i] * math.Cos(math.Pi*float64(k)*(float64(i)+0.5)/float64(n))
		}
		if k == 0 {
			out[k] = sum * scale0
		} else {
			out[k] = sum * scale
		}
	}
	return out
}

// IDCTII inverts the orthonormal DCT-II (i.e. computes the DCT-III).
func IDCTII(c []float64) []float64 {
	n := len(c)
	out := make([]float64, n)
	if n == 0 {
		return out
	}
	scale0 := math.Sqrt(1 / float64(n))
	scale := math.Sqrt(2 / float64(n))
	for i := 0; i < n; i++ {
		sum := c[0] * scale0
		for k := 1; k < n; k++ {
			sum += c[k] * scale * math.Cos(math.Pi*float64(k)*(float64(i)+0.5)/float64(n))
		}
		out[i] = sum
	}
	return out
}

// MFCC computes nCoeffs mel-frequency cepstral coefficients per frame of
// the signal: power STFT -> mel filterbank (nMels bands) -> log ->
// DCT-II -> truncation. The result is nCoeffs rows by frames columns.
func MFCC(signal []float64, cfg STFTConfig, nMels, nCoeffs, sampleRate int) (*Matrix, error) {
	if nCoeffs <= 0 || nCoeffs > nMels {
		return nil, errors.New("dsp: coefficient count out of (0, nMels]")
	}
	mel, err := MelSpectrogram(signal, cfg, nMels, sampleRate)
	if err != nil {
		return nil, err
	}
	out := NewMatrix(nCoeffs, mel.Cols)
	col := make([]float64, nMels)
	for f := 0; f < mel.Cols; f++ {
		for m := 0; m < nMels; m++ {
			col[m] = mel.At(m, f)
		}
		coeffs := DCTII(col)
		for k := 0; k < nCoeffs; k++ {
			out.Set(k, f, coeffs[k])
		}
	}
	return out, nil
}

// MFCCVector returns the time-pooled MFCC feature vector of a clip: the
// per-coefficient mean, a compact fixed-size input for classical models.
func MFCCVector(signal []float64, cfg STFTConfig, nMels, nCoeffs, sampleRate int) ([]float64, error) {
	m, err := MFCC(signal, cfg, nMels, nCoeffs, sampleRate)
	if err != nil {
		return nil, err
	}
	return m.MeanPool(), nil
}
