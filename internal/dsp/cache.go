package dsp

import (
	"math"
	"math/cmplx"
	"sync"
)

// This file memoizes the shape-invariant precomputations of the
// pipeline — FFT twiddle factors, Hann windows, mel filterbanks — so
// repeated queendetect calls with the paper's fixed front end (FFT
// 2048, hop 512, 128 mels at 22 050 Hz) stop rebuilding them on every
// clip. All cached values are built once, stored immutable, and shared
// read-only across goroutines; sync.Map gives the lock-free read path
// the parallel spectrogram workers hit.
//
// Determinism note: the cached twiddle tables are generated with the
// exact incremental recurrence (w *= wStep from w = 1) the butterflies
// used inline before caching existed. Regenerating them with per-index
// cmplx.Exp calls would perturb the low bits of the transforms and
// break the byte-identical-output contract, so don't.

var (
	twiddleCache sync.Map // twiddleKey -> [][]complex128
	rfftTwCache  sync.Map // int -> []complex128
	hannCache    sync.Map // int -> []float64
	melCache     sync.Map // melKey -> *Matrix
	planCache    sync.Map // planKey -> *Plan
)

// twiddleKey identifies one FFT plan.
type twiddleKey struct {
	n       int
	inverse bool
}

// melKey identifies one filterbank shape.
type melKey struct {
	nMels, fftSize, sampleRate int
}

// ResetCaches drops every memoized table and plan. Benchmarks use it to
// measure the cold path; production code never needs it.
func ResetCaches() {
	twiddleCache = sync.Map{}
	rfftTwCache = sync.Map{}
	hannCache = sync.Map{}
	melCache = sync.Map{}
	planCache = sync.Map{}
}

// twiddles returns the per-stage twiddle-factor tables of an n-point
// transform: tables[s][k] is the k-th factor of the stage with
// butterfly size 2<<s. n must be a power of two >= 2.
func twiddles(n int, inverse bool) [][]complex128 {
	key := twiddleKey{n: n, inverse: inverse}
	if v, ok := twiddleCache.Load(key); ok {
		return v.([][]complex128)
	}
	var tables [][]complex128
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		angle := -2 * math.Pi / float64(size)
		if inverse {
			angle = -angle
		}
		wStep := cmplx.Exp(complex(0, angle))
		t := make([]complex128, half)
		w := complex(1, 0)
		for k := 0; k < half; k++ {
			t[k] = w
			w *= wStep
		}
		tables = append(tables, t)
	}
	v, _ := twiddleCache.LoadOrStore(key, tables)
	return v.([][]complex128)
}

// rfftTwiddles returns the untangling factors of an n-point packed real
// FFT: tw[k] = exp(-2*pi*i*k/n) for k = 0..n/4. Built with the same
// incremental recurrence as the butterfly tables so cold and warm
// builds are bit-identical.
func rfftTwiddles(n int) []complex128 {
	if v, ok := rfftTwCache.Load(n); ok {
		return v.([]complex128)
	}
	wStep := cmplx.Exp(complex(0, -2*math.Pi/float64(n)))
	t := make([]complex128, n/4+1)
	w := complex(1, 0)
	for k := range t {
		t[k] = w
		w *= wStep
	}
	v, _ := rfftTwCache.LoadOrStore(n, t)
	return v.([]complex128)
}

// hannWindow returns the shared n-point Hann window. Callers must not
// mutate it; the public HannWindow copies it out.
func hannWindow(n int) []float64 {
	if v, ok := hannCache.Load(n); ok {
		return v.([]float64)
	}
	w := make([]float64, n)
	for i := range w {
		w[i] = 0.5 * (1 - math.Cos(2*math.Pi*float64(i)/float64(n)))
	}
	v, _ := hannCache.LoadOrStore(n, w)
	return v.([]float64)
}

// melFilterbank returns the shared filterbank for the shape. Callers
// must not mutate it; the public MelFilterbank copies it out.
func melFilterbank(nMels, fftSize, sampleRate int) (*Matrix, error) {
	key := melKey{nMels: nMels, fftSize: fftSize, sampleRate: sampleRate}
	if v, ok := melCache.Load(key); ok {
		return v.(*Matrix), nil
	}
	fb, err := buildMelFilterbank(nMels, fftSize, sampleRate)
	if err != nil {
		return nil, err
	}
	v, _ := melCache.LoadOrStore(key, fb)
	return v.(*Matrix), nil
}
