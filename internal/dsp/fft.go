// Package dsp implements the signal-processing pipeline of Section V:
// radix-2 FFT, Hann-windowed STFT, power spectrograms, the mel filterbank
// (FFT window 2048, hop 512, 128 mel bands at 22 050 Hz) and the bilinear
// resize that converts spectrograms into the CNN's square inputs.
//
// Everything is implemented from scratch on float64/complex128; there is
// no external numerics dependency.
package dsp

import (
	"errors"
	"fmt"
	"math/bits"
)

// FFT computes the in-place radix-2 decimation-in-time fast Fourier
// transform of x. The length must be a power of two.
func FFT(x []complex128) error {
	return fft(x, false)
}

// IFFT computes the inverse FFT in place (including the 1/N scaling).
func IFFT(x []complex128) error {
	return fft(x, true)
}

func fft(x []complex128, inverse bool) error {
	n := len(x)
	if n == 0 {
		return errors.New("dsp: empty FFT input")
	}
	if n&(n-1) != 0 {
		return errors.New("dsp: FFT length must be a power of two")
	}
	// Bit-reversal permutation.
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	if n == 1 {
		return nil
	}
	// Danielson-Lanczos butterflies over the memoized per-stage twiddle
	// tables (bit-identical to the former inline w *= wStep recurrence).
	tw := twiddles(n, inverse)
	for s, size := 0, 2; size <= n; s, size = s+1, size<<1 {
		half := size >> 1
		t := tw[s]
		for start := 0; start < n; start += size {
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half] * t[k]
				x[start+k] = a + b
				x[start+k+half] = a - b
			}
		}
	}
	if inverse {
		scale := complex(1/float64(n), 0)
		for i := range x {
			x[i] *= scale
		}
	}
	return nil
}

// RFFT computes the FFT of a real signal and returns the n/2+1
// non-redundant bins. The input length must be a power of two.
//
// Unlike a complex transform of the zero-padded signal, RFFT exploits
// conjugate symmetry with the packed real-FFT algorithm: the n real
// samples fold into an n/2-point complex transform plus an O(n)
// untangling pass, halving the butterfly work. The low-order bits of
// the result therefore differ from FFT of the widened signal; the
// agreement is pinned to a tight ulp bound by TestRFFTMatchesFFT.
func RFFT(x []float64) ([]complex128, error) {
	return RFFTInto(make([]complex128, len(x)/2+1), x)
}

// RFFTInto is the no-alloc variant of RFFT: it computes the transform
// into dst, which must have capacity for the n/2+1 output bins, and
// returns dst[:n/2+1]. The contents of dst are fully overwritten; no
// other scratch is used, so a caller looping over frames can reuse one
// buffer for a zero-allocation steady state.
func RFFTInto(dst []complex128, x []float64) ([]complex128, error) {
	n := len(x)
	if n == 0 {
		return nil, errors.New("dsp: empty FFT input")
	}
	if n&(n-1) != 0 {
		return nil, errors.New("dsp: FFT length must be a power of two")
	}
	bins := n/2 + 1
	if cap(dst) < bins {
		return nil, fmt.Errorf("dsp: RFFT destination capacity %d < %d bins", cap(dst), bins)
	}
	dst = dst[:bins]
	if n == 1 {
		dst[0] = complex(x[0], 0)
		return dst, nil
	}
	// Pack adjacent sample pairs into one half-length complex signal:
	// z[k] = x[2k] + i*x[2k+1].
	n2 := n / 2
	z := dst[:n2]
	for k := 0; k < n2; k++ {
		z[k] = complex(x[2*k], x[2*k+1])
	}
	if err := fft(z, false); err != nil {
		return nil, err
	}
	// Untangle the packed transform Z into the real signal's spectrum:
	//   X[k] = (Z[k] + conj(Z[n2-k]))/2 - i/2 * w^k * (Z[k] - conj(Z[n2-k]))
	// with w = exp(-2*pi*i/n) and Z[n2] === Z[0]. Bins 0 and n/2 are the
	// purely real DC and Nyquist terms; interior bins pair up as
	// (k, n2-k), so the pass runs in place over dst.
	z0 := z[0]
	dst[n2] = complex(real(z0)-imag(z0), 0)
	dst[0] = complex(real(z0)+imag(z0), 0)
	tw := rfftTwiddles(n)
	for k := 1; k <= n2/2; k++ {
		j := n2 - k
		a, b := z[k], z[j]
		sumR, sumI := real(a)+real(b), imag(a)-imag(b)   // Z[k] + conj(Z[j])
		diffR, diffI := real(a)-real(b), imag(a)+imag(b) // Z[k] - conj(Z[j])
		w := tw[k]
		mR := real(w)*diffR - imag(w)*diffI // m = w^k * diff
		mI := real(w)*diffI + imag(w)*diffR
		dst[k] = complex(0.5*(sumR+mI), 0.5*(sumI-mR))
		// X[j] follows from the same pair: w^j = -conj(w^k), so the
		// mirrored bin reuses m with conjugated signs.
		dst[j] = complex(0.5*(sumR-mI), 0.5*(-sumI-mR))
	}
	return dst, nil
}

// NextPow2 returns the smallest power of two >= n (minimum 1).
func NextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// HannWindow returns the n-point periodic Hann window used for STFT
// analysis. The returned slice is the caller's to mutate; the shared
// memoized copy stays internal.
func HannWindow(n int) []float64 {
	return append([]float64(nil), hannWindow(n)...)
}
