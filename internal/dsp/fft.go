// Package dsp implements the signal-processing pipeline of Section V:
// radix-2 FFT, Hann-windowed STFT, power spectrograms, the mel filterbank
// (FFT window 2048, hop 512, 128 mel bands at 22 050 Hz) and the bilinear
// resize that converts spectrograms into the CNN's square inputs.
//
// Everything is implemented from scratch on float64/complex128; there is
// no external numerics dependency.
package dsp

import (
	"errors"
	"math/bits"
)

// FFT computes the in-place radix-2 decimation-in-time fast Fourier
// transform of x. The length must be a power of two.
func FFT(x []complex128) error {
	return fft(x, false)
}

// IFFT computes the inverse FFT in place (including the 1/N scaling).
func IFFT(x []complex128) error {
	return fft(x, true)
}

func fft(x []complex128, inverse bool) error {
	n := len(x)
	if n == 0 {
		return errors.New("dsp: empty FFT input")
	}
	if n&(n-1) != 0 {
		return errors.New("dsp: FFT length must be a power of two")
	}
	// Bit-reversal permutation.
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	if n == 1 {
		return nil
	}
	// Danielson-Lanczos butterflies over the memoized per-stage twiddle
	// tables (bit-identical to the former inline w *= wStep recurrence).
	tw := twiddles(n, inverse)
	for s, size := 0, 2; size <= n; s, size = s+1, size<<1 {
		half := size >> 1
		t := tw[s]
		for start := 0; start < n; start += size {
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half] * t[k]
				x[start+k] = a + b
				x[start+k+half] = a - b
			}
		}
	}
	if inverse {
		scale := complex(1/float64(n), 0)
		for i := range x {
			x[i] *= scale
		}
	}
	return nil
}

// RFFT computes the FFT of a real signal and returns the n/2+1
// non-redundant bins. The input length must be a power of two.
func RFFT(x []float64) ([]complex128, error) {
	buf := make([]complex128, len(x))
	for i, v := range x {
		buf[i] = complex(v, 0)
	}
	if err := FFT(buf); err != nil {
		return nil, err
	}
	return buf[:len(x)/2+1], nil
}

// NextPow2 returns the smallest power of two >= n (minimum 1).
func NextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// HannWindow returns the n-point periodic Hann window used for STFT
// analysis. The returned slice is the caller's to mutate; the shared
// memoized copy stays internal.
func HannWindow(n int) []float64 {
	return append([]float64(nil), hannWindow(n)...)
}
