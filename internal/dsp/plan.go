package dsp

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"beesim/internal/parallel"
)

// This file is the DSP front end's plan/arena layer. A Plan freezes
// every per-shape precomputation of the paper's pipeline — the Hann
// window, the packed real-FFT twiddle tables, and the mel filterbank in
// sparse CSR form — and carries a pool of scratch arenas (windowed
// frame, spectrum, power row) so the steady-state hot path performs no
// per-frame allocations. Plans are immutable after construction and
// safe for concurrent use: every mutable buffer lives in the per-chunk
// scratch, never on the Plan itself.
//
// Two algorithmic wins over the legacy column-strided pipeline live
// here:
//
//  1. Frames go through RFFTInto — the packed real-input FFT — which
//     folds the 2048 real samples into a 1024-point complex transform,
//     halving the butterfly work per frame.
//  2. The mel projection uses the CSR filterbank: each triangle's
//     support is a small contiguous bin range, so band m reduces to a
//     short dot product over power[lo:hi] instead of a branchy scan of
//     all fftSize/2+1 bins. The projection runs frame-major: each
//     frame computes its contiguous power row once and feeds all
//     nMels bands from it while the row is hot in cache.

// melBand is one CSR row of the filterbank: the triangle's first
// supported FFT bin and its contiguous weights. Weights are the exact
// float64 values of the dense MelFilterbank row, so sparse and dense
// projections agree bit for bit (TestSparseBankMatchesDense).
type melBand struct {
	lo int
	w  []float64
}

// planKey identifies one memoized Plan shape.
type planKey struct {
	fftSize, hop, nMels, sampleRate int
}

// planScratch is one worker's arena: the windowed frame, the packed
// spectrum, and the power row. Every field is fully overwritten before
// use, so pooled reuse cannot leak state between frames or callers.
type planScratch struct {
	frame []float64    // fftSize windowed samples
	spec  []complex128 // fftSize/2+1 spectrum bins
	power []float64    // fftSize/2+1 power row
}

// Plan is a reusable, shape-specialized DSP pipeline: per-shape
// precomputed state plus pooled scratch arenas. Build one with NewPlan
// or fetch the shared memoized instance with PlanFor. The zero value is
// not usable.
//
// A Plan with nMels == 0 is a power-spectrogram plan; calling
// MelSpectrogram on it is an error.
type Plan struct {
	cfg        STFTConfig
	nMels      int
	sampleRate int
	bins       int

	window []float64 // shared read-only Hann window
	bands  []melBand // CSR filterbank; nil for power-only plans

	scratch sync.Pool // *planScratch
}

// NewPlan precomputes the pipeline state for one front-end shape.
// nMels == 0 builds a power-spectrogram-only plan (sampleRate is then
// ignored); nMels > 0 additionally builds the CSR mel filterbank and
// requires a positive sample rate.
func NewPlan(cfg STFTConfig, nMels, sampleRate int) (*Plan, error) {
	if cfg.FFTSize <= 0 || cfg.FFTSize&(cfg.FFTSize-1) != 0 {
		return nil, fmt.Errorf("dsp: FFT size %d is not a power of two", cfg.FFTSize)
	}
	if cfg.Hop <= 0 {
		return nil, errors.New("dsp: non-positive hop")
	}
	if nMels < 0 {
		return nil, errors.New("dsp: negative mel band count")
	}
	p := &Plan{
		cfg:        cfg,
		nMels:      nMels,
		sampleRate: sampleRate,
		bins:       cfg.FFTSize/2 + 1,
		window:     hannWindow(cfg.FFTSize),
	}
	// Warm the shared twiddle tables once at plan build so the hot path
	// never takes the cache-miss branch.
	if cfg.FFTSize >= 2 {
		twiddles(cfg.FFTSize/2, false)
		rfftTwiddles(cfg.FFTSize)
	}
	if nMels > 0 {
		fb, err := melFilterbank(nMels, cfg.FFTSize, sampleRate)
		if err != nil {
			return nil, err
		}
		p.bands = sparseBands(fb)
	}
	p.scratch.New = func() any {
		return &planScratch{
			frame: make([]float64, cfg.FFTSize),
			spec:  make([]complex128, p.bins),
			power: make([]float64, p.bins),
		}
	}
	return p, nil
}

// PlanFor returns the shared memoized Plan for a shape, building it on
// first use. The same instance is returned to every caller; Plans are
// immutable and concurrency-safe, so the whole process amortizes one
// precomputation per shape. ResetCaches drops the memo.
func PlanFor(cfg STFTConfig, nMels, sampleRate int) (*Plan, error) {
	key := planKey{fftSize: cfg.FFTSize, hop: cfg.Hop, nMels: nMels, sampleRate: sampleRate}
	if v, ok := planCache.Load(key); ok {
		return v.(*Plan), nil
	}
	p, err := NewPlan(cfg, nMels, sampleRate)
	if err != nil {
		return nil, err
	}
	v, _ := planCache.LoadOrStore(key, p)
	return v.(*Plan), nil
}

// sparseBands converts a dense filterbank matrix into CSR rows: each
// band keeps the contiguous [first, last] nonzero span of its row. The
// weight values are aliased, not copied — the memoized filterbank is
// immutable.
func sparseBands(fb *Matrix) []melBand {
	bands := make([]melBand, fb.Rows)
	for m := 0; m < fb.Rows; m++ {
		row := fb.Data[m*fb.Cols : (m+1)*fb.Cols]
		lo, hi := -1, -1
		for b, w := range row {
			if w != 0 {
				if lo < 0 {
					lo = b
				}
				hi = b
			}
		}
		if lo < 0 {
			// Degenerate empty triangle: keep a zero-length span so the
			// projection yields the same 0.0 the dense scan would.
			lo, hi = 0, -1
		}
		bands[m] = melBand{lo: lo, w: row[lo : hi+1]}
	}
	return bands
}

// Frames returns the number of STFT frames a signal of sigLen samples
// produces under the plan's configuration, or 0 when the signal is
// shorter than one analysis window.
func (p *Plan) Frames(sigLen int) int {
	if sigLen < p.cfg.FFTSize {
		return 0
	}
	return 1 + (sigLen-p.cfg.FFTSize)/p.cfg.Hop
}

// Config returns the plan's STFT shape.
func (p *Plan) Config() STFTConfig { return p.cfg }

// NMels returns the plan's mel band count (0 for power-only plans).
func (p *Plan) NMels() int { return p.nMels }

// getScratch pops a pooled arena (or builds one on first use).
func (p *Plan) getScratch() *planScratch { return p.scratch.Get().(*planScratch) }

// putScratch returns an arena to the pool.
func (p *Plan) putScratch(s *planScratch) { p.scratch.Put(s) }

// checkSignal validates a signal against the plan shape and returns the
// frame count.
func (p *Plan) checkSignal(signal []float64) (int, error) {
	frames := p.Frames(len(signal))
	if frames == 0 {
		return 0, fmt.Errorf("dsp: signal (%d samples) shorter than one window (%d)",
			len(signal), p.cfg.FFTSize)
	}
	return frames, nil
}

// frameInto windows frame f of the signal into s.frame, transforms it
// with the packed real FFT, and fills s.power with the |X|^2 row.
func (p *Plan) frameInto(s *planScratch, signal []float64, f int) error {
	off := f * p.cfg.Hop
	src := signal[off : off+p.cfg.FFTSize]
	for i, w := range p.window {
		s.frame[i] = src[i] * w
	}
	spec, err := RFFTInto(s.spec, s.frame)
	if err != nil {
		return err
	}
	for b, v := range spec {
		re, im := real(v), imag(v)
		s.power[b] = re*re + im*im
	}
	return nil
}

// reuseMatrix shapes dst to rows x cols, reusing its backing array when
// the capacity suffices; dst == nil allocates a fresh matrix.
func reuseMatrix(dst *Matrix, rows, cols int) *Matrix {
	if dst == nil {
		return NewMatrix(rows, cols)
	}
	if cap(dst.Data) < rows*cols {
		dst.Data = make([]float64, rows*cols)
	}
	dst.Rows, dst.Cols, dst.Data = rows, cols, dst.Data[:rows*cols]
	return dst
}

// PowerSpectrogram computes |STFT|^2 with the plan's window, one
// frequency bin per row (fftSize/2+1 x frames) — the legacy layout of
// the package-level PowerSpectrogram, now via the packed real FFT.
func (p *Plan) PowerSpectrogram(signal []float64) (*Matrix, error) {
	return p.powerSpectrogram(nil, signal, false)
}

// PowerFrames computes the same power spectrogram in frame-major layout
// — one frame per contiguous row (frames x fftSize/2+1) — the
// cache-friendly orientation for per-frame band reductions.
func (p *Plan) PowerFrames(signal []float64) (*Matrix, error) {
	return p.powerSpectrogram(nil, signal, true)
}

// PowerFramesInto is PowerFrames reusing dst's backing storage.
func (p *Plan) PowerFramesInto(dst *Matrix, signal []float64) (*Matrix, error) {
	return p.powerSpectrogram(dst, signal, true)
}

func (p *Plan) powerSpectrogram(dst *Matrix, signal []float64, frameMajor bool) (*Matrix, error) {
	frames, err := p.checkSignal(signal)
	if err != nil {
		return nil, err
	}
	if frameMajor {
		dst = reuseMatrix(dst, frames, p.bins)
	} else {
		dst = reuseMatrix(dst, p.bins, frames)
	}
	// Frames are independent: each reads its own signal slice (plus the
	// shared read-only window/twiddles) and writes its own row or
	// column, so chunks fan out across the worker pool; per-frame math
	// never depends on the chunk boundaries.
	err = parallel.MapChunks(0, frames, func(lo, hi int) error {
		s := p.getScratch()
		defer p.putScratch(s)
		for f := lo; f < hi; f++ {
			if err := p.frameInto(s, signal, f); err != nil {
				return err
			}
			if frameMajor {
				copy(dst.Data[f*p.bins:(f+1)*p.bins], s.power)
			} else {
				for b, v := range s.power {
					dst.Data[b*frames+f] = v
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return dst, nil
}

// MelSpectrogram computes the log-compressed mel spectrogram (nMels
// rows by frames columns) of a signal through the fused plan pipeline:
// windowed packed real FFT, per-frame power row, sparse CSR mel
// projection, log1p. The full power spectrogram is never materialized —
// the only allocation is the output matrix.
func (p *Plan) MelSpectrogram(signal []float64) (*Matrix, error) {
	return p.MelSpectrogramInto(nil, signal)
}

// MelSpectrogramInto is MelSpectrogram reusing dst's backing storage
// when its capacity suffices — the zero-allocation steady-state path
// for per-clip feature loops.
func (p *Plan) MelSpectrogramInto(dst *Matrix, signal []float64) (*Matrix, error) {
	if p.nMels == 0 {
		return nil, errors.New("dsp: power-only plan has no mel filterbank")
	}
	frames, err := p.checkSignal(signal)
	if err != nil {
		return nil, err
	}
	dst = reuseMatrix(dst, p.nMels, frames)
	// Frame-major fusion: each frame computes its contiguous power row
	// once, then every mel band takes its short dot product while the
	// row is cache-hot. Each frame writes only its own output column,
	// so frame chunks fan out across the pool without changing a bit.
	err = parallel.MapChunks(0, frames, func(lo, hi int) error {
		s := p.getScratch()
		defer p.putScratch(s)
		for f := lo; f < hi; f++ {
			if err := p.frameInto(s, signal, f); err != nil {
				return err
			}
			for m := range p.bands {
				band := &p.bands[m]
				pw := s.power[band.lo : band.lo+len(band.w)]
				var sum float64
				for i, w := range band.w {
					// Skip exact zeros like the dense scan does, so
					// sparse and dense projections are bit-identical.
					if w != 0 {
						sum += w * pw[i]
					}
				}
				dst.Data[m*frames+f] = math.Log1p(sum)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return dst, nil
}
