package dsp

import (
	"errors"
	"math"
)

// Matrix is a dense row-major 2D array (rows x cols).
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix allocates a zeroed rows x cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns the element at (r, c).
func (m *Matrix) At(r, c int) float64 { return m.Data[r*m.Cols+c] }

// Set stores v at (r, c).
func (m *Matrix) Set(r, c int, v float64) { m.Data[r*m.Cols+c] = v }

// MinMax returns the smallest and largest elements.
func (m *Matrix) MinMax() (min, max float64) {
	if len(m.Data) == 0 {
		return 0, 0
	}
	min, max = m.Data[0], m.Data[0]
	for _, v := range m.Data[1:] {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return min, max
}

// Normalize rescales the matrix in place to [0, 1]; a constant matrix
// becomes all zeros.
func (m *Matrix) Normalize() {
	min, max := m.MinMax()
	span := max - min
	if span == 0 {
		for i := range m.Data {
			m.Data[i] = 0
		}
		return
	}
	for i, v := range m.Data {
		m.Data[i] = (v - min) / span
	}
}

// STFTConfig shapes the short-time Fourier transform.
type STFTConfig struct {
	// FFTSize is the analysis window length (a power of two).
	FFTSize int
	// Hop is the number of samples between adjacent frames.
	Hop int
}

// PaperSTFT is the paper's configuration: "the length of the fast-Fourier
// transform window is 2048, the number of audio samples between adjacent
// short-time Fourier transform columns is 512".
func PaperSTFT() STFTConfig { return STFTConfig{FFTSize: 2048, Hop: 512} }

// PowerSpectrogram computes |STFT|^2 of the signal with a Hann window.
// The result has FFTSize/2+1 rows (frequency bins) and one column per
// frame; signals shorter than one window are an error. The computation
// goes through the shared memoized Plan for the shape — packed real
// FFT, pooled scratch arenas — so repeated calls with the paper's fixed
// front end pay no precomputation.
func PowerSpectrogram(signal []float64, cfg STFTConfig) (*Matrix, error) {
	p, err := PlanFor(cfg, 0, 0)
	if err != nil {
		return nil, err
	}
	return p.PowerSpectrogram(signal)
}

// HzToMel converts frequency to the HTK mel scale.
func HzToMel(hz float64) float64 { return 2595 * math.Log10(1+hz/700) }

// MelToHz converts the HTK mel scale back to frequency.
func MelToHz(mel float64) float64 { return 700 * (math.Pow(10, mel/2595) - 1) }

// MelFilterbank builds nMels triangular filters over FFT bins for the
// given sample rate, spanning 0 Hz to Nyquist. The returned matrix is
// nMels x (fftSize/2+1); each row sums the power bins of one mel band.
// The build is memoized by shape; the caller gets a private copy.
func MelFilterbank(nMels, fftSize, sampleRate int) (*Matrix, error) {
	fb, err := melFilterbank(nMels, fftSize, sampleRate)
	if err != nil {
		return nil, err
	}
	return &Matrix{Rows: fb.Rows, Cols: fb.Cols, Data: append([]float64(nil), fb.Data...)}, nil
}

// buildMelFilterbank is the uncached construction behind MelFilterbank.
func buildMelFilterbank(nMels, fftSize, sampleRate int) (*Matrix, error) {
	if nMels <= 0 || fftSize <= 0 || sampleRate <= 0 {
		return nil, errors.New("dsp: invalid filterbank shape")
	}
	bins := fftSize/2 + 1
	maxMel := HzToMel(float64(sampleRate) / 2)
	// nMels+2 edge points define nMels triangles.
	edges := make([]float64, nMels+2)
	for i := range edges {
		mel := maxMel * float64(i) / float64(nMels+1)
		edges[i] = MelToHz(mel) * float64(fftSize) / float64(sampleRate)
	}
	fb := NewMatrix(nMels, bins)
	for m := 0; m < nMels; m++ {
		lo, center, hi := edges[m], edges[m+1], edges[m+2]
		for b := 0; b < bins; b++ {
			f := float64(b)
			var w float64
			switch {
			case f < lo || f > hi:
				w = 0
			case f <= center:
				if center > lo {
					w = (f - lo) / (center - lo)
				}
			default:
				if hi > center {
					w = (hi - f) / (hi - center)
				}
			}
			fb.Set(m, b, w)
		}
	}
	return fb, nil
}

// MelSpectrogram computes the log-compressed mel spectrogram of a signal
// using the paper's front end: power STFT, mel filterbank, log(1+x).
// The result is nMels rows by frames columns. The computation goes
// through the shared memoized Plan for the shape: packed real FFT,
// fused frame-major sparse mel projection, pooled scratch — the full
// power spectrogram is never materialized.
func MelSpectrogram(signal []float64, cfg STFTConfig, nMels, sampleRate int) (*Matrix, error) {
	if nMels <= 0 {
		return nil, errors.New("dsp: invalid filterbank shape")
	}
	p, err := PlanFor(cfg, nMels, sampleRate)
	if err != nil {
		return nil, err
	}
	return p.MelSpectrogram(signal)
}

// Resize maps the matrix onto a rows x cols grid with bilinear
// interpolation — how the 128 x frames mel image becomes the CNN's
// square N x N input for Figure 5's size sweep.
func (m *Matrix) Resize(rows, cols int) (*Matrix, error) {
	if rows <= 0 || cols <= 0 {
		return nil, errors.New("dsp: non-positive resize target")
	}
	if m.Rows == 0 || m.Cols == 0 {
		return nil, errors.New("dsp: resize of empty matrix")
	}
	out := NewMatrix(rows, cols)
	// The column mapping (sc, c0, fc, c1) is identical for every output
	// row, so hoist it out of the row loop instead of redoing the
	// floor/clamp math rows times.
	c0s := make([]int, cols)
	c1s := make([]int, cols)
	fcs := make([]float64, cols)
	for c := 0; c < cols; c++ {
		sc := (float64(c)+0.5)*float64(m.Cols)/float64(cols) - 0.5
		c0 := int(math.Floor(sc))
		fcs[c] = sc - float64(c0)
		c0s[c] = clampInt(c0, 0, m.Cols-1)
		c1s[c] = clampInt(c0+1, 0, m.Cols-1)
	}
	for r := 0; r < rows; r++ {
		// Map output pixel centers onto the source grid.
		sr := (float64(r)+0.5)*float64(m.Rows)/float64(rows) - 0.5
		r0 := int(math.Floor(sr))
		fr := sr - float64(r0)
		r1 := r0 + 1
		r0 = clampInt(r0, 0, m.Rows-1)
		r1 = clampInt(r1, 0, m.Rows-1)
		row0 := m.Data[r0*m.Cols : (r0+1)*m.Cols]
		row1 := m.Data[r1*m.Cols : (r1+1)*m.Cols]
		dst := out.Data[r*cols : (r+1)*cols]
		for c := 0; c < cols; c++ {
			c0, c1, fc := c0s[c], c1s[c], fcs[c]
			dst[c] = row0[c0]*(1-fr)*(1-fc) +
				row1[c0]*fr*(1-fc) +
				row0[c1]*(1-fr)*fc +
				row1[c1]*fr*fc
		}
	}
	return out, nil
}

// Flatten returns a copy of the matrix contents as a vector, the SVM's
// feature representation.
func (m *Matrix) Flatten() []float64 {
	return append([]float64(nil), m.Data...)
}

// MeanPool collapses the time axis, returning the per-mel-band mean — a
// compact fixed-size vector feature for classical models regardless of
// clip length.
func (m *Matrix) MeanPool() []float64 {
	out := make([]float64, m.Rows)
	if m.Cols == 0 {
		return out
	}
	for r := 0; r < m.Rows; r++ {
		// One contiguous row-major pass per band — the matrix is
		// row-major, so this is a straight streaming sum.
		row := m.Data[r*m.Cols : (r+1)*m.Cols]
		var sum float64
		for _, v := range row {
			sum += v
		}
		out[r] = sum / float64(m.Cols)
	}
	return out
}

func clampInt(x, lo, hi int) int {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
