package dsp

import (
	"math"
	"testing"
	"testing/quick"

	"beesim/internal/rng"
)

func TestDCTIIConstantSignal(t *testing.T) {
	x := []float64{3, 3, 3, 3}
	c := DCTII(x)
	// All the energy of a constant lands in coefficient 0.
	if math.Abs(c[0]-6) > 1e-12 { // 3*4*sqrt(1/4)
		t.Fatalf("c0 = %v, want 6", c[0])
	}
	for k := 1; k < len(c); k++ {
		if math.Abs(c[k]) > 1e-12 {
			t.Fatalf("c%d = %v, want 0", k, c[k])
		}
	}
}

func TestDCTOrthonormalRoundTrip(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw)%32 + 1
		r := rng.New(seed)
		x := make([]float64, n)
		for i := range x {
			x[i] = r.Norm()
		}
		back := IDCTII(DCTII(x))
		for i := range x {
			if math.Abs(back[i]-x[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDCTParseval(t *testing.T) {
	// An orthonormal transform preserves the L2 norm.
	r := rng.New(7)
	x := make([]float64, 16)
	var before float64
	for i := range x {
		x[i] = r.Norm()
		before += x[i] * x[i]
	}
	c := DCTII(x)
	var after float64
	for _, v := range c {
		after += v * v
	}
	if math.Abs(before-after) > 1e-9 {
		t.Fatalf("DCT energy %v != signal energy %v", after, before)
	}
}

func TestDCTEmpty(t *testing.T) {
	if out := DCTII(nil); len(out) != 0 {
		t.Fatal("empty DCT produced output")
	}
	if out := IDCTII(nil); len(out) != 0 {
		t.Fatal("empty IDCT produced output")
	}
}

func TestMFCCShape(t *testing.T) {
	sig := tone(250, 22050, 22050)
	m, err := MFCC(sig, PaperSTFT(), 40, 13, 22050)
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows != 13 {
		t.Fatalf("coefficients = %d, want 13", m.Rows)
	}
	if m.Cols != 1+(22050-2048)/512 {
		t.Fatalf("frames = %d", m.Cols)
	}
}

func TestMFCCValidation(t *testing.T) {
	sig := tone(250, 22050, 22050)
	if _, err := MFCC(sig, PaperSTFT(), 40, 0, 22050); err == nil {
		t.Error("zero coefficients accepted")
	}
	if _, err := MFCC(sig, PaperSTFT(), 40, 41, 22050); err == nil {
		t.Error("more coefficients than mel bands accepted")
	}
	if _, err := MFCC(make([]float64, 10), PaperSTFT(), 40, 13, 22050); err == nil {
		t.Error("short signal accepted")
	}
}

func TestMFCCDistinguishesTones(t *testing.T) {
	// MFCCs of a 250 Hz and a 2.5 kHz tone must differ clearly.
	a, err := MFCCVector(tone(250, 22050, 22050), PaperSTFT(), 40, 13, 22050)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MFCCVector(tone(2500, 22050, 22050), PaperSTFT(), 40, 13, 22050)
	if err != nil {
		t.Fatal(err)
	}
	var dist float64
	for i := range a {
		d := a[i] - b[i]
		dist += d * d
	}
	if math.Sqrt(dist) < 1 {
		t.Fatalf("MFCC distance = %v, want clearly separated tones", math.Sqrt(dist))
	}
}

func TestMFCCVectorLength(t *testing.T) {
	v, err := MFCCVector(tone(440, 22050, 22050), PaperSTFT(), 40, 13, 22050)
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 13 {
		t.Fatalf("vector length = %d", len(v))
	}
}
