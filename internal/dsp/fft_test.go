package dsp

import (
	"encoding/binary"
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"

	"beesim/internal/rng"
)

func TestFFTErrors(t *testing.T) {
	if err := FFT(nil); err == nil {
		t.Error("empty FFT accepted")
	}
	if err := FFT(make([]complex128, 12)); err == nil {
		t.Error("non-power-of-two FFT accepted")
	}
}

func TestFFTImpulse(t *testing.T) {
	// FFT of a unit impulse is all ones.
	x := make([]complex128, 16)
	x[0] = 1
	if err := FFT(x); err != nil {
		t.Fatal(err)
	}
	for i, v := range x {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("bin %d = %v, want 1", i, v)
		}
	}
}

func TestFFTSingleTone(t *testing.T) {
	// A pure cosine at bin k concentrates in bins k and n-k.
	const n, k = 64, 5
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(math.Cos(2*math.Pi*float64(k*i)/n), 0)
	}
	if err := FFT(x); err != nil {
		t.Fatal(err)
	}
	for i, v := range x {
		mag := cmplx.Abs(v)
		if i == k || i == n-k {
			if math.Abs(mag-n/2) > 1e-9 {
				t.Fatalf("bin %d magnitude = %v, want %v", i, mag, n/2)
			}
		} else if mag > 1e-9 {
			t.Fatalf("bin %d magnitude = %v, want 0", i, mag)
		}
	}
}

func TestFFTInverseRoundTrip(t *testing.T) {
	r := rng.New(5)
	x := make([]complex128, 128)
	orig := make([]complex128, 128)
	for i := range x {
		x[i] = complex(r.Norm(), r.Norm())
		orig[i] = x[i]
	}
	if err := FFT(x); err != nil {
		t.Fatal(err)
	}
	if err := IFFT(x); err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if cmplx.Abs(x[i]-orig[i]) > 1e-10 {
			t.Fatalf("round trip differs at %d: %v vs %v", i, x[i], orig[i])
		}
	}
}

func TestFFTLinearityProperty(t *testing.T) {
	// FFT(a*x + b*y) == a*FFT(x) + b*FFT(y)
	f := func(seed uint64, aRaw, bRaw int8) bool {
		const n = 32
		a := complex(float64(aRaw)/16, 0)
		b := complex(float64(bRaw)/16, 0)
		r := rng.New(seed)
		x := make([]complex128, n)
		y := make([]complex128, n)
		combo := make([]complex128, n)
		for i := 0; i < n; i++ {
			x[i] = complex(r.Norm(), r.Norm())
			y[i] = complex(r.Norm(), r.Norm())
			combo[i] = a*x[i] + b*y[i]
		}
		if FFT(x) != nil || FFT(y) != nil || FFT(combo) != nil {
			return false
		}
		for i := 0; i < n; i++ {
			if cmplx.Abs(combo[i]-(a*x[i]+b*y[i])) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestParsevalProperty(t *testing.T) {
	// sum |x|^2 == (1/N) sum |X|^2
	f := func(seed uint64) bool {
		const n = 64
		r := rng.New(seed)
		x := make([]complex128, n)
		var timeEnergy float64
		for i := range x {
			x[i] = complex(r.Norm(), 0)
			timeEnergy += real(x[i]) * real(x[i])
		}
		if FFT(x) != nil {
			return false
		}
		var freqEnergy float64
		for _, v := range x {
			freqEnergy += real(v)*real(v) + imag(v)*imag(v)
		}
		return math.Abs(timeEnergy-freqEnergy/n) < 1e-9*math.Max(1, timeEnergy)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRFFT(t *testing.T) {
	x := make([]float64, 32)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * 3 * float64(i) / 32)
	}
	bins, err := RFFT(x)
	if err != nil {
		t.Fatal(err)
	}
	if len(bins) != 17 {
		t.Fatalf("rfft bins = %d, want 17", len(bins))
	}
	if mag := cmplx.Abs(bins[3]); math.Abs(mag-16) > 1e-9 {
		t.Fatalf("bin 3 magnitude = %v, want 16", mag)
	}
}

// rfftUlpBound is the packed real FFT's agreement contract with the
// complex transform: every bin of RFFT(x) must lie within this many
// ulps of FFT(widen(x)) — the ulp taken at the spectrum's peak
// magnitude, since FFT rounding error is relative to the whole
// transform's scale, not to individual (possibly tiny) bins. Both
// transforms build twiddles by incremental recurrence (the price of
// cold/warm cache bit-identity), so their divergence grows like
// sqrt(n) ulps-of-scale: measured worst cases run 4 ulp at n=16 to
// ~370 ulp at n=8192. 512 bounds that with margin while staying ~12
// orders of magnitude below the signal, so any algorithmic error —
// a wrong untangle term is O(scale) — still fails loudly.
const rfftUlpBound = 512

// checkRFFTAgainstFFT computes both transforms of x and fails if any
// bin disagrees beyond rfftUlpBound. It returns the packed result for
// further checks.
func checkRFFTAgainstFFT(t *testing.T, x []float64) []complex128 {
	t.Helper()
	got, err := RFFT(x)
	if err != nil {
		t.Fatal(err)
	}
	ref := make([]complex128, len(x))
	for i, v := range x {
		ref[i] = complex(v, 0)
	}
	if err := FFT(ref); err != nil {
		t.Fatal(err)
	}
	scale := 0.0
	for _, v := range ref {
		if m := cmplx.Abs(v); m > scale {
			scale = m
		}
	}
	tol := float64(rfftUlpBound) * (math.Nextafter(scale, math.Inf(1)) - scale)
	if scale == 0 {
		tol = 0
	}
	for k, v := range got {
		if d := cmplx.Abs(v - ref[k]); d > tol {
			t.Fatalf("n=%d bin %d: rfft %v vs fft %v, |diff| %g > %g (%d ulp at scale %g)",
				len(x), k, v, ref[k], d, tol, rfftUlpBound, scale)
		}
	}
	return got
}

// TestRFFTMatchesFFT is the real-FFT validation property the packed
// algorithm ships under: for every power-of-two size from 2 to 8192
// and random inputs, the n/2+1 bins agree with the complex transform
// within the stated ulp bound.
func TestRFFTMatchesFFT(t *testing.T) {
	r := rng.New(11)
	for n := 2; n <= 8192; n <<= 1 {
		for rep := 0; rep < 3; rep++ {
			x := make([]float64, n)
			for i := range x {
				x[i] = r.Norm()
			}
			checkRFFTAgainstFFT(t, x)
		}
	}
	// Degenerate single-sample transform.
	got, err := RFFT([]float64{3.25})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != complex(3.25, 0) {
		t.Fatalf("RFFT of one sample = %v", got)
	}
}

// TestRFFTConjugateSymmetryBins pins the two real-valued bins the
// untangling pass writes directly: DC carries the signal sum, Nyquist
// the alternating sum, both with zero imaginary part.
func TestRFFTConjugateSymmetryBins(t *testing.T) {
	r := rng.New(12)
	x := make([]float64, 256)
	var sum, alt float64
	for i := range x {
		x[i] = r.Norm()
		sum += x[i]
		if i%2 == 0 {
			alt += x[i]
		} else {
			alt -= x[i]
		}
	}
	bins, err := RFFT(x)
	if err != nil {
		t.Fatal(err)
	}
	if imag(bins[0]) != 0 || imag(bins[128]) != 0 {
		t.Fatalf("DC/Nyquist bins not purely real: %v, %v", bins[0], bins[128])
	}
	if math.Abs(real(bins[0])-sum) > 1e-9*math.Max(1, math.Abs(sum)) {
		t.Fatalf("DC bin %v, want signal sum %v", real(bins[0]), sum)
	}
	if math.Abs(real(bins[128])-alt) > 1e-9*math.Max(1, math.Abs(alt)) {
		t.Fatalf("Nyquist bin %v, want alternating sum %v", real(bins[128]), alt)
	}
}

// TestRFFTInto pins the no-alloc contract: a reused destination buffer
// yields bit-identical results to a fresh RFFT, and the steady-state
// loop performs zero allocations.
func TestRFFTInto(t *testing.T) {
	r := rng.New(13)
	x := make([]float64, 512)
	for i := range x {
		x[i] = r.Norm()
	}
	want, err := RFFT(x)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]complex128, len(x)/2+1)
	for rep := 0; rep < 3; rep++ {
		got, err := RFFTInto(dst, x)
		if err != nil {
			t.Fatal(err)
		}
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("rep %d bin %d: reused buffer %v != fresh %v", rep, k, got[k], want[k])
			}
		}
	}
	if allocs := testing.AllocsPerRun(100, func() {
		if _, err := RFFTInto(dst, x); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("RFFTInto allocates %v times per call, want 0", allocs)
	}
	if _, err := RFFTInto(make([]complex128, 4), x); err == nil {
		t.Error("undersized destination accepted")
	}
	if _, err := RFFTInto(dst, make([]float64, 12)); err == nil {
		t.Error("non-power-of-two input accepted")
	}
	if _, err := RFFTInto(dst, nil); err == nil {
		t.Error("empty input accepted")
	}
}

// FuzzRFFT feeds arbitrary byte strings to the packed real FFT as
// float64 samples and checks the two invariants the hot path relies
// on: agreement with the complex transform within rfftUlpBound, and
// bit-identical results when the destination buffer is reused. Wired
// into `make chaos`.
func FuzzRFFT(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16})
	seed := make([]byte, 64*8)
	r := rng.New(99)
	for i := 0; i < len(seed); i += 8 {
		binary.LittleEndian.PutUint64(seed[i:], math.Float64bits(r.Norm()))
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 16 {
			t.Skip()
		}
		n := 2
		for 2*n*8 <= len(data) && n < 4096 {
			n *= 2
		}
		x := make([]float64, n)
		for i := range x {
			v := math.Float64frombits(binary.LittleEndian.Uint64(data[i*8:]))
			// The agreement contract is stated for finite, sane inputs:
			// NaN/Inf poison every bin of both transforms and huge
			// magnitudes overflow |X|^2 downstream, so clamp them out
			// rather than skipping the whole case.
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e12 {
				v = 0
			}
			x[i] = v
		}
		want := checkRFFTAgainstFFT(t, x)
		dst := make([]complex128, n/2+1)
		for rep := 0; rep < 2; rep++ {
			got, err := RFFTInto(dst, x)
			if err != nil {
				t.Fatal(err)
			}
			for k := range want {
				if got[k] != want[k] {
					t.Fatalf("n=%d rep %d bin %d: reused %v != fresh %v", n, rep, k, got[k], want[k])
				}
			}
		}
	})
}

func TestNextPow2(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 17: 32, 2048: 2048, 2049: 4096}
	for in, want := range cases {
		if got := NextPow2(in); got != want {
			t.Errorf("NextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestHannWindow(t *testing.T) {
	w := HannWindow(8)
	if w[0] != 0 {
		t.Fatalf("Hann[0] = %v, want 0", w[0])
	}
	if math.Abs(w[4]-1) > 1e-12 {
		t.Fatalf("Hann midpoint = %v, want 1", w[4])
	}
	// Periodic Hann: w[k] == w[n-k].
	for k := 1; k < 8; k++ {
		if math.Abs(w[k]-w[8-k]) > 1e-12 {
			t.Fatalf("Hann asymmetric at %d", k)
		}
	}
}
