package dsp

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"

	"beesim/internal/rng"
)

func TestFFTErrors(t *testing.T) {
	if err := FFT(nil); err == nil {
		t.Error("empty FFT accepted")
	}
	if err := FFT(make([]complex128, 12)); err == nil {
		t.Error("non-power-of-two FFT accepted")
	}
}

func TestFFTImpulse(t *testing.T) {
	// FFT of a unit impulse is all ones.
	x := make([]complex128, 16)
	x[0] = 1
	if err := FFT(x); err != nil {
		t.Fatal(err)
	}
	for i, v := range x {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("bin %d = %v, want 1", i, v)
		}
	}
}

func TestFFTSingleTone(t *testing.T) {
	// A pure cosine at bin k concentrates in bins k and n-k.
	const n, k = 64, 5
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(math.Cos(2*math.Pi*float64(k*i)/n), 0)
	}
	if err := FFT(x); err != nil {
		t.Fatal(err)
	}
	for i, v := range x {
		mag := cmplx.Abs(v)
		if i == k || i == n-k {
			if math.Abs(mag-n/2) > 1e-9 {
				t.Fatalf("bin %d magnitude = %v, want %v", i, mag, n/2)
			}
		} else if mag > 1e-9 {
			t.Fatalf("bin %d magnitude = %v, want 0", i, mag)
		}
	}
}

func TestFFTInverseRoundTrip(t *testing.T) {
	r := rng.New(5)
	x := make([]complex128, 128)
	orig := make([]complex128, 128)
	for i := range x {
		x[i] = complex(r.Norm(), r.Norm())
		orig[i] = x[i]
	}
	if err := FFT(x); err != nil {
		t.Fatal(err)
	}
	if err := IFFT(x); err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if cmplx.Abs(x[i]-orig[i]) > 1e-10 {
			t.Fatalf("round trip differs at %d: %v vs %v", i, x[i], orig[i])
		}
	}
}

func TestFFTLinearityProperty(t *testing.T) {
	// FFT(a*x + b*y) == a*FFT(x) + b*FFT(y)
	f := func(seed uint64, aRaw, bRaw int8) bool {
		const n = 32
		a := complex(float64(aRaw)/16, 0)
		b := complex(float64(bRaw)/16, 0)
		r := rng.New(seed)
		x := make([]complex128, n)
		y := make([]complex128, n)
		combo := make([]complex128, n)
		for i := 0; i < n; i++ {
			x[i] = complex(r.Norm(), r.Norm())
			y[i] = complex(r.Norm(), r.Norm())
			combo[i] = a*x[i] + b*y[i]
		}
		if FFT(x) != nil || FFT(y) != nil || FFT(combo) != nil {
			return false
		}
		for i := 0; i < n; i++ {
			if cmplx.Abs(combo[i]-(a*x[i]+b*y[i])) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestParsevalProperty(t *testing.T) {
	// sum |x|^2 == (1/N) sum |X|^2
	f := func(seed uint64) bool {
		const n = 64
		r := rng.New(seed)
		x := make([]complex128, n)
		var timeEnergy float64
		for i := range x {
			x[i] = complex(r.Norm(), 0)
			timeEnergy += real(x[i]) * real(x[i])
		}
		if FFT(x) != nil {
			return false
		}
		var freqEnergy float64
		for _, v := range x {
			freqEnergy += real(v)*real(v) + imag(v)*imag(v)
		}
		return math.Abs(timeEnergy-freqEnergy/n) < 1e-9*math.Max(1, timeEnergy)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRFFT(t *testing.T) {
	x := make([]float64, 32)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * 3 * float64(i) / 32)
	}
	bins, err := RFFT(x)
	if err != nil {
		t.Fatal(err)
	}
	if len(bins) != 17 {
		t.Fatalf("rfft bins = %d, want 17", len(bins))
	}
	if mag := cmplx.Abs(bins[3]); math.Abs(mag-16) > 1e-9 {
		t.Fatalf("bin 3 magnitude = %v, want 16", mag)
	}
}

func TestNextPow2(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 17: 32, 2048: 2048, 2049: 4096}
	for in, want := range cases {
		if got := NextPow2(in); got != want {
			t.Errorf("NextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestHannWindow(t *testing.T) {
	w := HannWindow(8)
	if w[0] != 0 {
		t.Fatalf("Hann[0] = %v, want 0", w[0])
	}
	if math.Abs(w[4]-1) > 1e-12 {
		t.Fatalf("Hann midpoint = %v, want 1", w[4])
	}
	// Periodic Hann: w[k] == w[n-k].
	for k := 1; k < 8; k++ {
		if math.Abs(w[k]-w[8-k]) > 1e-12 {
			t.Fatalf("Hann asymmetric at %d", k)
		}
	}
}
