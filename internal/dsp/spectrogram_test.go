package dsp

import (
	"math"
	"testing"

	"beesim/internal/rng"
)

func tone(freq float64, sr, n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * freq * float64(i) / float64(sr))
	}
	return x
}

func TestPowerSpectrogramShape(t *testing.T) {
	sig := tone(440, 22050, 22050) // 1 s
	cfg := PaperSTFT()
	spec, err := PowerSpectrogram(sig, cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantFrames := 1 + (22050-2048)/512
	if spec.Rows != 1025 || spec.Cols != wantFrames {
		t.Fatalf("shape = %dx%d, want 1025x%d", spec.Rows, spec.Cols, wantFrames)
	}
}

func TestPowerSpectrogramPeakAtTone(t *testing.T) {
	const sr = 22050
	const freq = 440.0
	spec, err := PowerSpectrogram(tone(freq, sr, sr), PaperSTFT())
	if err != nil {
		t.Fatal(err)
	}
	// Column 0's argmax bin must be at freq * fftSize / sr.
	wantBin := int(math.Round(freq * 2048 / float64(sr)))
	best, bestV := 0, -1.0
	for b := 0; b < spec.Rows; b++ {
		if v := spec.At(b, 0); v > bestV {
			best, bestV = b, v
		}
	}
	if best < wantBin-1 || best > wantBin+1 {
		t.Fatalf("peak bin = %d, want ~%d", best, wantBin)
	}
}

func TestPowerSpectrogramErrors(t *testing.T) {
	if _, err := PowerSpectrogram(make([]float64, 100), PaperSTFT()); err == nil {
		t.Error("short signal accepted")
	}
	if _, err := PowerSpectrogram(make([]float64, 4096), STFTConfig{FFTSize: 1000, Hop: 512}); err == nil {
		t.Error("non-power-of-two FFT size accepted")
	}
	if _, err := PowerSpectrogram(make([]float64, 4096), STFTConfig{FFTSize: 2048, Hop: 0}); err == nil {
		t.Error("zero hop accepted")
	}
}

func TestMelScaleRoundTrip(t *testing.T) {
	for _, hz := range []float64{0, 100, 440, 1000, 8000, 11025} {
		if got := MelToHz(HzToMel(hz)); math.Abs(got-hz) > 1e-6 {
			t.Fatalf("mel round trip %v -> %v", hz, got)
		}
	}
	if HzToMel(1000) < HzToMel(500) {
		t.Fatal("mel scale not monotone")
	}
}

func TestMelFilterbankShapeAndCoverage(t *testing.T) {
	fb, err := MelFilterbank(128, 2048, 22050)
	if err != nil {
		t.Fatal(err)
	}
	if fb.Rows != 128 || fb.Cols != 1025 {
		t.Fatalf("filterbank shape = %dx%d", fb.Rows, fb.Cols)
	}
	// Every filter has non-negative weights and a non-empty support.
	for m := 0; m < fb.Rows; m++ {
		var sum float64
		for b := 0; b < fb.Cols; b++ {
			w := fb.At(m, b)
			if w < 0 {
				t.Fatalf("negative filter weight at (%d,%d)", m, b)
			}
			sum += w
		}
		if sum == 0 {
			t.Fatalf("mel filter %d is empty", m)
		}
	}
}

func TestMelFilterbankErrors(t *testing.T) {
	if _, err := MelFilterbank(0, 2048, 22050); err == nil {
		t.Error("zero mel bands accepted")
	}
	if _, err := MelFilterbank(128, 0, 22050); err == nil {
		t.Error("zero FFT size accepted")
	}
	if _, err := MelFilterbank(128, 2048, 0); err == nil {
		t.Error("zero sample rate accepted")
	}
}

func TestMelSpectrogramPipeline(t *testing.T) {
	// The paper's exact front end on a 10 s clip at 22 050 Hz.
	sig := tone(250, 22050, 22050*2) // 2 s is enough for the shape check
	mel, err := MelSpectrogram(sig, PaperSTFT(), 128, 22050)
	if err != nil {
		t.Fatal(err)
	}
	if mel.Rows != 128 {
		t.Fatalf("mel rows = %d, want 128", mel.Rows)
	}
	// Energy must concentrate in the low bands for a 250 Hz tone.
	low, high := 0.0, 0.0
	for m := 0; m < 16; m++ {
		low += mel.At(m, 0)
	}
	for m := 112; m < 128; m++ {
		high += mel.At(m, 0)
	}
	if low <= high {
		t.Fatalf("250 Hz tone: low-band energy %v not above high-band %v", low, high)
	}
	// log1p keeps everything finite and non-negative.
	for _, v := range mel.Data {
		if v < 0 || math.IsInf(v, 0) || math.IsNaN(v) {
			t.Fatalf("bad mel value %v", v)
		}
	}
}

func TestResizeExactOnConstant(t *testing.T) {
	m := NewMatrix(13, 29)
	for i := range m.Data {
		m.Data[i] = 3.7
	}
	r, err := m.Resize(100, 100)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range r.Data {
		if math.Abs(v-3.7) > 1e-12 {
			t.Fatalf("constant image resize changed value: %v", v)
		}
	}
}

func TestResizeIdentity(t *testing.T) {
	r := rng.New(3)
	m := NewMatrix(8, 8)
	for i := range m.Data {
		m.Data[i] = r.Float64()
	}
	same, err := m.Resize(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range m.Data {
		if math.Abs(m.Data[i]-same.Data[i]) > 1e-12 {
			t.Fatalf("identity resize altered element %d", i)
		}
	}
}

func TestResizePreservesRange(t *testing.T) {
	r := rng.New(4)
	m := NewMatrix(128, 420)
	for i := range m.Data {
		m.Data[i] = r.Range(-2, 5)
	}
	lo, hi := m.MinMax()
	for _, size := range []int{20, 60, 100, 160} {
		out, err := m.Resize(size, size)
		if err != nil {
			t.Fatal(err)
		}
		olo, ohi := out.MinMax()
		if olo < lo-1e-9 || ohi > hi+1e-9 {
			t.Fatalf("resize to %d escaped range: [%v,%v] from [%v,%v]", size, olo, ohi, lo, hi)
		}
	}
}

func TestResizeErrors(t *testing.T) {
	m := NewMatrix(4, 4)
	if _, err := m.Resize(0, 4); err == nil {
		t.Error("zero rows accepted")
	}
	empty := NewMatrix(0, 0)
	if _, err := empty.Resize(4, 4); err == nil {
		t.Error("empty source accepted")
	}
}

func TestNormalize(t *testing.T) {
	m := NewMatrix(2, 2)
	copy(m.Data, []float64{1, 2, 3, 5})
	m.Normalize()
	if m.Data[0] != 0 || m.Data[3] != 1 {
		t.Fatalf("normalize endpoints = %v", m.Data)
	}
	flat := NewMatrix(2, 2)
	copy(flat.Data, []float64{7, 7, 7, 7})
	flat.Normalize()
	for _, v := range flat.Data {
		if v != 0 {
			t.Fatalf("constant normalize = %v, want 0", v)
		}
	}
}

func TestFlattenAndMeanPool(t *testing.T) {
	m := NewMatrix(2, 3)
	copy(m.Data, []float64{1, 2, 3, 4, 5, 6})
	f := m.Flatten()
	f[0] = 99
	if m.Data[0] == 99 {
		t.Fatal("Flatten aliases the matrix")
	}
	pooled := m.MeanPool()
	if len(pooled) != 2 || pooled[0] != 2 || pooled[1] != 5 {
		t.Fatalf("mean pool = %v, want [2 5]", pooled)
	}
	emptyCols := NewMatrix(3, 0)
	if p := emptyCols.MeanPool(); len(p) != 3 {
		t.Fatal("mean pool of zero-column matrix must still size by rows")
	}
}
