package dsp

import (
	"fmt"
	"math"
	"testing"

	"beesim/internal/parallel"
	"beesim/internal/rng"
)

// planTestClip synthesizes a short noisy multi-tone clip long enough
// for several STFT frames under the paper configuration.
func planTestClip(seed uint64, samples int) []float64 {
	r := rng.New(seed)
	clip := make([]float64, samples)
	for i := range clip {
		clip[i] = r.Norm()
	}
	return clip
}

func TestPlanErrors(t *testing.T) {
	if _, err := NewPlan(STFTConfig{FFTSize: 100, Hop: 32}, 0, 0); err == nil {
		t.Error("non-power-of-two FFT size accepted")
	}
	if _, err := NewPlan(STFTConfig{FFTSize: 256, Hop: 0}, 0, 0); err == nil {
		t.Error("zero hop accepted")
	}
	if _, err := NewPlan(STFTConfig{FFTSize: 256, Hop: 64}, -1, 8000); err == nil {
		t.Error("negative mel count accepted")
	}
	if _, err := NewPlan(STFTConfig{FFTSize: 256, Hop: 64}, 16, 0); err == nil {
		t.Error("mel plan with zero sample rate accepted")
	}
	p, err := NewPlan(STFTConfig{FFTSize: 256, Hop: 64}, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.MelSpectrogram(planTestClip(1, 1024)); err == nil {
		t.Error("mel spectrogram on a power-only plan accepted")
	}
	if _, err := p.PowerSpectrogram(make([]float64, 100)); err == nil {
		t.Error("too-short signal accepted")
	}
}

func TestPlanFrames(t *testing.T) {
	p, err := NewPlan(STFTConfig{FFTSize: 256, Hop: 64}, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[int]int{0: 0, 255: 0, 256: 1, 319: 1, 320: 2, 256 + 64*9: 10}
	for sigLen, want := range cases {
		if got := p.Frames(sigLen); got != want {
			t.Errorf("Frames(%d) = %d, want %d", sigLen, got, want)
		}
	}
	if p.Config().FFTSize != 256 || p.NMels() != 0 {
		t.Errorf("plan shape accessors: cfg=%+v nMels=%d", p.Config(), p.NMels())
	}
}

// TestPlanMatchesPackageFunctions pins the compatibility contract: the
// package-level PowerSpectrogram and MelSpectrogram now route through
// the memoized Plan, and an independently constructed Plan produces
// byte-identical matrices to both.
func TestPlanMatchesPackageFunctions(t *testing.T) {
	cfg := STFTConfig{FFTSize: 512, Hop: 128}
	clip := planTestClip(21, 4096)

	wantPow, err := PowerSpectrogram(clip, cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantMel, err := MelSpectrogram(clip, cfg, 32, 16000)
	if err != nil {
		t.Fatal(err)
	}

	plan, err := NewPlan(cfg, 32, 16000)
	if err != nil {
		t.Fatal(err)
	}
	gotPow, err := plan.PowerSpectrogram(clip)
	if err != nil {
		t.Fatal(err)
	}
	gotMel, err := plan.MelSpectrogram(clip)
	if err != nil {
		t.Fatal(err)
	}
	mustEqualMatrix(t, "power", gotPow, wantPow)
	mustEqualMatrix(t, "mel", gotMel, wantMel)
}

// TestPowerFramesIsTranspose checks the frame-major layout holds
// exactly the same values as the bin-major spectrogram, transposed.
func TestPowerFramesIsTranspose(t *testing.T) {
	cfg := STFTConfig{FFTSize: 256, Hop: 64}
	clip := planTestClip(22, 2048)
	plan, err := NewPlan(cfg, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	binMajor, err := plan.PowerSpectrogram(clip)
	if err != nil {
		t.Fatal(err)
	}
	frameMajor, err := plan.PowerFrames(clip)
	if err != nil {
		t.Fatal(err)
	}
	if frameMajor.Rows != binMajor.Cols || frameMajor.Cols != binMajor.Rows {
		t.Fatalf("frame-major %dx%d vs bin-major %dx%d",
			frameMajor.Rows, frameMajor.Cols, binMajor.Rows, binMajor.Cols)
	}
	for f := 0; f < frameMajor.Rows; f++ {
		for b := 0; b < frameMajor.Cols; b++ {
			if frameMajor.At(f, b) != binMajor.At(b, f) {
				t.Fatalf("frame %d bin %d: %v != %v", f, b, frameMajor.At(f, b), binMajor.At(b, f))
			}
		}
	}
}

// TestSparseBankMatchesDense is the filterbank-equivalence property the
// CSR projection ships under: projecting the plan's own power
// spectrogram through the dense memoized filterbank — skipping exact
// zeros, as the legacy loop did — must reproduce the fused sparse mel
// output bit for bit.
func TestSparseBankMatchesDense(t *testing.T) {
	for _, tc := range []struct {
		nMels, sampleRate int
		cfg               STFTConfig
	}{
		{16, 8000, STFTConfig{FFTSize: 256, Hop: 64}},
		{64, 22050, STFTConfig{FFTSize: 1024, Hop: 256}},
		{128, 16000, PaperSTFT()},
		// More bands than FFT bins: some triangles are empty, which the
		// CSR build represents as zero-length spans.
		{200, 8000, STFTConfig{FFTSize: 256, Hop: 64}},
	} {
		plan, err := NewPlan(tc.cfg, tc.nMels, tc.sampleRate)
		if err != nil {
			t.Fatal(err)
		}
		clip := planTestClip(uint64(tc.nMels), 4*tc.cfg.FFTSize)
		got, err := plan.MelSpectrogram(clip)
		if err != nil {
			t.Fatal(err)
		}
		spec, err := plan.PowerSpectrogram(clip)
		if err != nil {
			t.Fatal(err)
		}
		fb, err := MelFilterbank(tc.nMels, tc.cfg.FFTSize, tc.sampleRate)
		if err != nil {
			t.Fatal(err)
		}
		want := NewMatrix(tc.nMels, spec.Cols)
		for m := 0; m < tc.nMels; m++ {
			for f := 0; f < spec.Cols; f++ {
				var sum float64
				for b := 0; b < fb.Cols; b++ {
					if w := fb.At(m, b); w != 0 {
						sum += w * spec.At(b, f)
					}
				}
				want.Set(m, f, math.Log1p(sum))
			}
		}
		mustEqualMatrix(t, fmt.Sprintf("mel %d bands", tc.nMels), got, want)
	}
}

// TestMelSpectrogramIntoReuse checks the arena contract of the Into
// variants: a destination reused across clips (including one of a
// different length) always matches a fresh computation, with zero
// steady-state allocations beyond the matrix header bookkeeping.
func TestMelSpectrogramIntoReuse(t *testing.T) {
	plan, err := NewPlan(STFTConfig{FFTSize: 512, Hop: 128}, 40, 16000)
	if err != nil {
		t.Fatal(err)
	}
	var dst *Matrix
	for i, samples := range []int{4096, 2048, 4096, 3000} {
		clip := planTestClip(uint64(30+i), samples)
		fresh, err := plan.MelSpectrogram(clip)
		if err != nil {
			t.Fatal(err)
		}
		dst, err = plan.MelSpectrogramInto(dst, clip)
		if err != nil {
			t.Fatal(err)
		}
		mustEqualMatrix(t, fmt.Sprintf("clip %d", i), dst, fresh)
	}

	powPlan, err := NewPlan(STFTConfig{FFTSize: 256, Hop: 64}, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	var pow *Matrix
	for i, samples := range []int{2048, 1024, 2048} {
		clip := planTestClip(uint64(40+i), samples)
		fresh, err := powPlan.PowerFrames(clip)
		if err != nil {
			t.Fatal(err)
		}
		pow, err = powPlan.PowerFramesInto(pow, clip)
		if err != nil {
			t.Fatal(err)
		}
		mustEqualMatrix(t, fmt.Sprintf("power clip %d", i), pow, fresh)
	}
}

// TestPlanForMemoizes checks PlanFor returns one shared instance per
// shape and distinct instances across shapes, and that ResetCaches
// drops the memo.
func TestPlanForMemoizes(t *testing.T) {
	ResetCaches()
	defer ResetCaches()
	cfg := STFTConfig{FFTSize: 256, Hop: 64}
	a, err := PlanFor(cfg, 16, 8000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PlanFor(cfg, 16, 8000)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("PlanFor rebuilt a memoized shape")
	}
	c, err := PlanFor(cfg, 32, 8000)
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Error("distinct shapes share a plan")
	}
	if _, err := PlanFor(STFTConfig{FFTSize: 100, Hop: 3}, 0, 0); err == nil {
		t.Error("invalid shape memoized without error")
	}
	ResetCaches()
	d, err := PlanFor(cfg, 16, 8000)
	if err != nil {
		t.Fatal(err)
	}
	if d == a {
		t.Error("ResetCaches left the plan memo intact")
	}
}

// TestPlanConcurrentReuse hammers one shared Plan from many goroutines
// (via the worker pool, the only sanctioned concurrency primitive) and
// checks every result is byte-identical to a serial baseline. Run under
// `make race` this doubles as the data-race proof for the pooled
// scratch arenas.
func TestPlanConcurrentReuse(t *testing.T) {
	plan, err := NewPlan(STFTConfig{FFTSize: 512, Hop: 128}, 40, 16000)
	if err != nil {
		t.Fatal(err)
	}
	const nClips = 16
	clips := make([][]float64, nClips)
	want := make([]*Matrix, nClips)
	for i := range clips {
		clips[i] = planTestClip(uint64(50+i), 3000+17*i)
		want[i], err = plan.MelSpectrogram(clips[i])
		if err != nil {
			t.Fatal(err)
		}
	}
	got, err := parallel.Map(8, nClips, func(i int) (*Matrix, error) {
		return plan.MelSpectrogram(clips[i])
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		mustEqualMatrix(t, fmt.Sprintf("concurrent clip %d", i), got[i], want[i])
	}
}

// mustEqualMatrix fails the test unless a and b have identical shape
// and bit-identical contents.
func mustEqualMatrix(t *testing.T, label string, got, want *Matrix) {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("%s: shape %dx%d, want %dx%d", label, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("%s: element %d = %v, want %v (bit-exact)", label, i, got.Data[i], want.Data[i])
		}
	}
}
