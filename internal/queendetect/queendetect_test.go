package queendetect

import (
	"testing"

	"beesim/internal/audio"
	"beesim/internal/hive"
)

// testCorpus builds a small corpus of short clips so the full pipeline
// stays fast under `go test`.
func testCorpus(t *testing.T, n int) []audio.LabeledClip {
	t.Helper()
	cfg := audio.Config{SampleRate: audio.SampleRate, Seconds: 1, Seed: 5}
	corpus, err := audio.Corpus(cfg, n)
	if err != nil {
		t.Fatal(err)
	}
	return corpus
}

func TestFeaturesShape(t *testing.T) {
	corpus := testCorpus(t, 2)
	mel, err := Features(corpus[0].Samples, audio.SampleRate)
	if err != nil {
		t.Fatal(err)
	}
	if mel.Rows != 128 {
		t.Fatalf("mel rows = %d, want 128 (paper)", mel.Rows)
	}
	lo, hi := mel.MinMax()
	if lo < 0 || hi > 1 {
		t.Fatalf("normalized mel range = [%v,%v]", lo, hi)
	}
}

func TestVectorFeaturesLength(t *testing.T) {
	corpus := testCorpus(t, 2)
	v, err := VectorFeatures(corpus[0].Samples, audio.SampleRate)
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 128 {
		t.Fatalf("vector features = %d dims, want 128", len(v))
	}
}

func TestImageFeaturesSizes(t *testing.T) {
	corpus := testCorpus(t, 2)
	for _, size := range []int{20, 60, 100} {
		img, err := ImageFeatures(corpus[0].Samples, audio.SampleRate, size)
		if err != nil {
			t.Fatal(err)
		}
		if img.Rows != size || img.Cols != size {
			t.Fatalf("image = %dx%d, want %dx%d", img.Rows, img.Cols, size, size)
		}
	}
}

func TestBuildDatasets(t *testing.T) {
	corpus := testCorpus(t, 8)
	d, err := BuildVectorDataset(corpus, audio.SampleRate)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 8 || d.Dim() != 128 || d.Classes() != 2 {
		t.Fatalf("vector dataset %d x %d, %d classes", d.Len(), d.Dim(), d.Classes())
	}
	examples, flat, err := BuildImageDataset(corpus, audio.SampleRate, 24)
	if err != nil {
		t.Fatal(err)
	}
	if len(examples) != 8 || flat.Dim() != 24*24 {
		t.Fatalf("image dataset %d examples, dim %d", len(examples), flat.Dim())
	}
	if _, err := BuildVectorDataset(nil, audio.SampleRate); err == nil {
		t.Error("empty corpus accepted")
	}
	if _, _, err := BuildImageDataset(nil, audio.SampleRate, 24); err == nil {
		t.Error("empty corpus accepted (image)")
	}
}

func TestSVMEndToEnd(t *testing.T) {
	corpus := testCorpus(t, 60)
	res, err := TrainSVM(corpus, audio.SampleRate, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Accuracy < 0.9 {
		t.Fatalf("SVM accuracy = %v, want >= 0.9 on synthetic corpus", res.Metrics.Accuracy)
	}
	if res.EdgeEnergy <= 0 || res.EdgeDuration <= 0 {
		t.Fatal("SVM edge cost not estimated")
	}

	// Fresh clips classify correctly most of the time.
	synth, err := audio.NewSynth(audio.Config{SampleRate: audio.SampleRate, Seconds: 1, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	const n = 10
	for i := 0; i < n; i++ {
		queen, err := res.Predict(synth.Clip(hive.QueenPresent, 0.7), audio.SampleRate)
		if err != nil {
			t.Fatal(err)
		}
		if queen {
			correct++
		}
		queen, err = res.Predict(synth.Clip(hive.QueenLost, 0.7), audio.SampleRate)
		if err != nil {
			t.Fatal(err)
		}
		if !queen {
			correct++
		}
	}
	if correct < 16 {
		t.Fatalf("fresh-clip accuracy = %d/20", correct)
	}
}

func TestCNNEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("CNN training is slow")
	}
	corpus := testCorpus(t, 60)
	opts := DefaultCNNOptions()
	opts.Size = 24 // small input keeps the test quick
	opts.Channels = 4
	opts.Train.Epochs = 8
	opts.Train.LR = 0.01
	res, err := TrainCNN(corpus, audio.SampleRate, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Accuracy < 0.85 {
		t.Fatalf("CNN accuracy = %v, want >= 0.85", res.Metrics.Accuracy)
	}
	if res.FLOPs <= 0 || res.EdgeEnergy <= 0 {
		t.Fatal("CNN cost not estimated")
	}
	queen, err := res.Predict(corpus[0].Samples, audio.SampleRate)
	if err != nil {
		t.Fatal(err)
	}
	if queen != corpus[0].QueenPresent {
		t.Log("single fresh prediction missed (acceptable; accuracy checked above)")
	}
}

func TestCNNEnergyGrowsWithSize(t *testing.T) {
	if testing.Short() {
		t.Skip("CNN training is slow")
	}
	corpus := testCorpus(t, 20)
	var prev float64
	for _, size := range []int{16, 32, 64} {
		opts := DefaultCNNOptions()
		opts.Size = size
		opts.Channels = 2
		opts.Train.Epochs = 1
		res, err := TrainCNN(corpus, audio.SampleRate, opts)
		if err != nil {
			t.Fatal(err)
		}
		if float64(res.EdgeEnergy) <= prev {
			t.Fatalf("edge energy not increasing at size %d", size)
		}
		prev = float64(res.EdgeEnergy)
	}
}

func TestFeatureErrorPaths(t *testing.T) {
	// Clips shorter than one STFT window are rejected end to end.
	short := make([]float64, 100)
	if _, err := Features(short, audio.SampleRate); err == nil {
		t.Error("short clip accepted by Features")
	}
	if _, err := VectorFeatures(short, audio.SampleRate); err == nil {
		t.Error("short clip accepted by VectorFeatures")
	}
	if _, err := ImageFeatures(short, audio.SampleRate, 32); err == nil {
		t.Error("short clip accepted by ImageFeatures")
	}
	// Invalid resize target.
	ok := make([]float64, 4096)
	if _, err := ImageFeatures(ok, audio.SampleRate, 0); err == nil {
		t.Error("zero image size accepted")
	}
}

func TestTrainSVMErrorPaths(t *testing.T) {
	if _, err := TrainSVM(nil, audio.SampleRate, 1); err == nil {
		t.Error("empty corpus accepted")
	}
	// A corpus too small to split 75/25 both ways non-empty.
	tiny := testCorpus(t, 1)
	if _, err := TrainSVM(tiny, audio.SampleRate, 1); err == nil {
		t.Error("single-clip corpus accepted")
	}
}

func TestTrainCNNErrorPaths(t *testing.T) {
	corpus := testCorpus(t, 8)
	opts := DefaultCNNOptions()
	opts.Size = 4 // below the CNN's minimum input
	if _, err := TrainCNN(corpus, audio.SampleRate, opts); err == nil {
		t.Error("tiny CNN input accepted")
	}
}

func TestPredictErrorPaths(t *testing.T) {
	corpus := testCorpus(t, 40)
	res, err := TrainSVM(corpus, audio.SampleRate, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.Predict(make([]float64, 10), audio.SampleRate); err == nil {
		t.Error("short clip accepted by SVM Predict")
	}
}
