// Package queendetect assembles the end-to-end queen-detection service
// of Section V: synthesize (or accept) labeled hive audio, extract the
// paper's mel-spectrogram features, train the SVM and CNN classifiers,
// and measure the accuracy and edge inference energy of each — the
// pipeline behind Figure 5 and the per-cycle model costs of Tables I/II.
package queendetect

import (
	"errors"
	"fmt"
	"time"

	"beesim/internal/audio"
	"beesim/internal/dsp"
	"beesim/internal/ml"
	"beesim/internal/ml/cnn"
	"beesim/internal/ml/svm"
	"beesim/internal/parallel"
	"beesim/internal/power"
	"beesim/internal/units"
)

// Labels for the binary task.
const (
	LabelQueenless = 0
	LabelQueen     = 1
)

// NMels is the paper's mel band count.
const NMels = 128

// FrontEnd returns the shared memoized DSP plan of the paper's front
// end (FFT 2048, hop 512, 128 bands) at the given sample rate: the
// precomputed real-FFT tables, sparse mel filterbank and scratch
// arenas every feature extraction below reuses.
func FrontEnd(sampleRate int) (*dsp.Plan, error) {
	return dsp.PlanFor(dsp.PaperSTFT(), NMels, sampleRate)
}

// Features computes the paper's front end for one clip: a mel
// spectrogram (FFT 2048, hop 512, 128 bands) normalized to [0,1].
func Features(clip []float64, sampleRate int) (*dsp.Matrix, error) {
	plan, err := FrontEnd(sampleRate)
	if err != nil {
		return nil, fmt.Errorf("queendetect: features: %w", err)
	}
	mel, err := plan.MelSpectrogram(clip)
	if err != nil {
		return nil, fmt.Errorf("queendetect: features: %w", err)
	}
	mel.Normalize()
	return mel, nil
}

// VectorFeatures returns the SVM's input: the time-pooled mel vector
// ("vector features are passed as is for the training phase of the SVM").
func VectorFeatures(clip []float64, sampleRate int) ([]float64, error) {
	mel, err := Features(clip, sampleRate)
	if err != nil {
		return nil, err
	}
	return mel.MeanPool(), nil
}

// ImageFeatures returns the CNN's input: the mel spectrogram resized to a
// square size x size image ("they are converted into images for the CNN
// model").
func ImageFeatures(clip []float64, sampleRate, size int) (*dsp.Matrix, error) {
	mel, err := Features(clip, sampleRate)
	if err != nil {
		return nil, err
	}
	return mel.Resize(size, size)
}

// BuildVectorDataset converts a labeled corpus into the SVM dataset.
func BuildVectorDataset(corpus []audio.LabeledClip, sampleRate int) (*ml.Dataset, error) {
	if len(corpus) == 0 {
		return nil, errors.New("queendetect: empty corpus")
	}
	// Feature extraction is per-clip pure work, fanned across the
	// default worker pool and merged in corpus order.
	x, err := parallel.Map(0, len(corpus), func(i int) ([]float64, error) {
		return VectorFeatures(corpus[i].Samples, sampleRate)
	})
	if err != nil {
		return nil, err
	}
	y := make([]int, len(corpus))
	for i, clip := range corpus {
		y[i] = label(clip.QueenPresent)
	}
	return ml.NewDataset(x, y)
}

// BuildImageDataset converts a labeled corpus into CNN examples at the
// given input size, returning flattened rows (for shared metrics) too.
func BuildImageDataset(corpus []audio.LabeledClip, sampleRate, size int) ([]cnn.Example, *ml.Dataset, error) {
	if len(corpus) == 0 {
		return nil, nil, errors.New("queendetect: empty corpus")
	}
	// As in BuildVectorDataset, the per-clip front end fans out and the
	// results merge back in corpus order.
	imgs, err := parallel.Map(0, len(corpus), func(i int) (*dsp.Matrix, error) {
		return ImageFeatures(corpus[i].Samples, sampleRate, size)
	})
	if err != nil {
		return nil, nil, err
	}
	examples := make([]cnn.Example, len(corpus))
	x := make([][]float64, len(corpus))
	y := make([]int, len(corpus))
	for i, img := range imgs {
		examples[i] = cnn.Example{Image: cnn.ImageFromMatrix(img), Label: label(corpus[i].QueenPresent)}
		x[i] = img.Flatten()
		y[i] = examples[i].Label
	}
	d, err := ml.NewDataset(x, y)
	if err != nil {
		return nil, nil, err
	}
	return examples, d, nil
}

func label(queenPresent bool) int {
	if queenPresent {
		return LabelQueen
	}
	return LabelQueenless
}

// SVMResult is a trained-and-evaluated SVM service.
type SVMResult struct {
	Model   *svm.Model
	Scaler  *ml.Scaler
	Metrics ml.BinaryMetrics
	// EdgeEnergy/EdgeDuration estimate one prediction on the Pi 3B+.
	EdgeEnergy   units.Joules
	EdgeDuration time.Duration
}

// TrainSVM trains and evaluates the classical model on a corpus split.
func TrainSVM(corpus []audio.LabeledClip, sampleRate int, seed uint64) (*SVMResult, error) {
	d, err := BuildVectorDataset(corpus, sampleRate)
	if err != nil {
		return nil, err
	}
	train, test, err := d.Split(0.75, seed)
	if err != nil {
		return nil, err
	}
	scaler := ml.FitScaler(train)
	cfg := svm.ScaleConfig()
	cfg.Seed = seed
	model, err := svm.Train(scaler.TransformAll(train), cfg)
	if err != nil {
		return nil, err
	}
	scaled := scaler.TransformAll(test)
	res := &SVMResult{
		Model:   model,
		Scaler:  scaler,
		Metrics: ml.EvaluateBinary(model, scaled),
	}
	res.EdgeEnergy, res.EdgeDuration = power.DefaultEdgeInference().Cost(model.FLOPs())
	return res, nil
}

// Predict classifies one clip with the trained SVM service.
func (r *SVMResult) Predict(clip []float64, sampleRate int) (bool, error) {
	v, err := VectorFeatures(clip, sampleRate)
	if err != nil {
		return false, err
	}
	return r.Model.Predict(r.Scaler.Transform(v)) == LabelQueen, nil
}

// CNNResult is a trained-and-evaluated CNN service at one input size.
type CNNResult struct {
	Network *cnn.Network
	Size    int
	Metrics ml.BinaryMetrics
	// FLOPs of one forward pass and the resulting edge cost.
	FLOPs        float64
	EdgeEnergy   units.Joules
	EdgeDuration time.Duration
}

// CNNOptions tune the deep model's training.
type CNNOptions struct {
	Size     int
	Train    cnn.TrainConfig
	Channels int
	Seed     uint64
}

// DefaultCNNOptions mirror the paper's schedule (4 epochs, LR 0.001) at
// the optimal 100x100 input.
func DefaultCNNOptions() CNNOptions {
	return CNNOptions{Size: 100, Train: cnn.PaperTrain(), Channels: 8, Seed: 1}
}

// TrainCNN trains and evaluates the deep model on a corpus split.
func TrainCNN(corpus []audio.LabeledClip, sampleRate int, opts CNNOptions) (*CNNResult, error) {
	_, flat, err := BuildImageDataset(corpus, sampleRate, opts.Size)
	if err != nil {
		return nil, err
	}
	net, err := cnn.New(cnn.Config{
		InputSize: opts.Size, Classes: 2, BaseChannels: opts.Channels, Seed: opts.Seed})
	if err != nil {
		return nil, err
	}
	// Deterministic split of examples aligned with the flat dataset.
	trainFlat, testFlat, err := flat.Split(0.75, opts.Seed)
	if err != nil {
		return nil, err
	}
	// Re-materialize example tensors for the training rows.
	trainExamples := make([]cnn.Example, trainFlat.Len())
	for i, row := range trainFlat.X {
		t := cnn.NewTensor(1, opts.Size, opts.Size)
		copy(t.Data, row)
		trainExamples[i] = cnn.Example{Image: t, Label: trainFlat.Y[i]}
	}
	if err := net.Train(trainExamples, opts.Train); err != nil {
		return nil, err
	}
	res := &CNNResult{
		Network: net,
		Size:    opts.Size,
		Metrics: ml.EvaluateBinary(net, testFlat),
		FLOPs:   net.FLOPs(),
	}
	res.EdgeEnergy, res.EdgeDuration = power.DefaultEdgeInference().Cost(res.FLOPs)
	return res, nil
}

// Predict classifies one clip with the trained CNN service.
func (r *CNNResult) Predict(clip []float64, sampleRate int) (bool, error) {
	img, err := ImageFeatures(clip, sampleRate, r.Size)
	if err != nil {
		return false, err
	}
	return r.Network.PredictImage(cnn.ImageFromMatrix(img)) == LabelQueen, nil
}
