package experiments

import (
	"testing"
	"time"

	"beesim/internal/adaptive"
	"beesim/internal/solar"
)

func TestSeasonalValidation(t *testing.T) {
	if _, err := Seasonal(solar.Cachan, 0, 10*time.Minute); err == nil {
		t.Error("zero days accepted")
	}
}

func TestSeasonalShape(t *testing.T) {
	pts, err := Seasonal(solar.Cachan, 1, 10*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 12 {
		t.Fatalf("months = %d", len(pts))
	}
	byMonth := map[time.Month]SeasonPoint{}
	for _, p := range pts {
		byMonth[p.Month] = p
		if p.RoutinesPerDay < 0 || p.HarvestPerDay < 0 {
			t.Fatalf("month %v has negative summary: %+v", p.Month, p)
		}
	}
	// Summer harvests and yields clearly exceed winter's.
	if byMonth[time.June].HarvestPerDay <= byMonth[time.December].HarvestPerDay {
		t.Errorf("June harvest %v not above December %v",
			byMonth[time.June].HarvestPerDay, byMonth[time.December].HarvestPerDay)
	}
	if byMonth[time.June].RoutinesPerDay <= byMonth[time.December].RoutinesPerDay {
		t.Errorf("June yield %.0f/day not above December %.0f/day",
			byMonth[time.June].RoutinesPerDay, byMonth[time.December].RoutinesPerDay)
	}
	// The brownout design misses wake-ups every month (nights exist).
	for _, p := range pts {
		if p.MissedPerDay == 0 {
			t.Errorf("month %v missed nothing despite night brownouts", p.Month)
		}
	}
}

func TestApiaryFiveHives(t *testing.T) {
	results, err := Apiary(1, 10*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 5 {
		t.Fatalf("hives = %d, want 5 (paper's deployment)", len(results))
	}
	cachan, lyon := 0, 0
	for _, r := range results {
		switch r.Hive.Location.Name {
		case "Cachan":
			cachan++
		case "Lyon":
			lyon++
		}
		if r.Trace.Wakeups == 0 {
			t.Errorf("hive %s collected nothing", r.Hive.Name)
		}
	}
	if cachan != 2 || lyon != 3 {
		t.Fatalf("deployment = %d Cachan + %d Lyon, want 2 + 3", cachan, lyon)
	}
	// Distinct seeds give distinct traces.
	if results[0].Trace.RecorderEnergy == results[1].Trace.RecorderEnergy {
		t.Error("two hives produced identical traces")
	}
}

func TestApiaryValidation(t *testing.T) {
	if _, err := Apiary(0, 10*time.Minute); err == nil {
		t.Error("zero days accepted")
	}
}

func TestPolicyComparison(t *testing.T) {
	cfg := adaptive.DefaultConfig()
	cfg.Days = 2
	results, err := PolicyComparison(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("policies = %d, want 4", len(results))
	}
	// The adaptive policies out-collect the conservative baseline (sunny
	// April lets them run fast) while staying at least as energy-efficient
	// per collected routine as the aggressive fixed baseline.
	aggressive, conservative := results[0], results[1]
	perRoutine := func(r adaptive.Result) float64 {
		if r.Routines == 0 {
			return 0
		}
		return float64(r.EdgeEnergy) / float64(r.Routines)
	}
	for _, r := range results[2:] {
		if r.Routines <= conservative.Routines {
			t.Errorf("%s yield %d not above the 2-hour baseline %d",
				r.Policy, r.Routines, conservative.Routines)
		}
		if perRoutine(r) > perRoutine(aggressive)*1.2 {
			t.Errorf("%s energy/routine %.1f well above the aggressive baseline %.1f",
				r.Policy, perRoutine(r), perRoutine(aggressive))
		}
	}
}
