package experiments

import (
	"bytes"
	"testing"

	"beesim/internal/faults"
	"beesim/internal/ledger"
	"beesim/internal/obs"
	"beesim/internal/report"
)

// fastAvailCfg shrinks the sweep to test size: a coarse client grid
// around the Figure 7 crossover and a short availability grid.
func fastAvailCfg(t *testing.T) AvailabilityConfig {
	t.Helper()
	cfg, err := DefaultAvailabilityConfig()
	if err != nil {
		t.Fatal(err)
	}
	cfg.Step = 50
	cfg.AvailSteps = 4
	return cfg
}

func TestAvailabilityConfigValidate(t *testing.T) {
	cfg := fastAvailCfg(t)
	bad := []func(*AvailabilityConfig){
		func(c *AvailabilityConfig) { c.AvailSteps = 0 },
		func(c *AvailabilityConfig) { c.AvailFrom = -0.1 },
		func(c *AvailabilityConfig) { c.AvailTo = 1.5 },
		func(c *AvailabilityConfig) { c.AvailFrom = 0.9; c.AvailTo = 0.5 },
		func(c *AvailabilityConfig) { c.Retry.MaxAttempts = 0 },
	}
	for i, mutate := range bad {
		c := cfg
		mutate(&c)
		if _, err := AvailabilitySweep(c); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestAvailabilityGrid(t *testing.T) {
	cfg := AvailabilityConfig{AvailFrom: 0.5, AvailTo: 1, AvailSteps: 6}
	g := cfg.grid()
	want := []float64{0.5, 0.6, 0.7, 0.8, 0.9, 1}
	if len(g) != len(want) {
		t.Fatalf("grid = %v", g)
	}
	for i := range want {
		if diff := g[i] - want[i]; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("grid[%d] = %g, want %g", i, g[i], want[i])
		}
	}
	one := AvailabilityConfig{AvailFrom: 0.7, AvailTo: 0.7, AvailSteps: 1}
	if g := one.grid(); len(g) != 1 || g[0] != 0.7 {
		t.Fatalf("single-point grid = %v", g)
	}
}

// TestAvailabilityCrossoverShifts is the Figure-6/7-style result the
// tentpole exists for: on a healthy link the edge+cloud scenario starts
// winning at the paper's crossover; as availability falls the crossover
// moves to larger fleets and finally disappears.
func TestAvailabilityCrossoverShifts(t *testing.T) {
	cfg := fastAvailCfg(t)
	cfg.AvailFrom, cfg.AvailTo, cfg.AvailSteps = 0.5, 1.0, 6
	pts, err := AvailabilitySweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	best := pts[len(pts)-1] // availability 1
	if best.Availability != 1 || best.FirstCrossover == 0 {
		t.Fatalf("healthy link has no crossover: %+v", best)
	}
	worst := pts[0] // availability 0.5
	if worst.FirstCrossover != 0 {
		t.Fatalf("half-dead link still crosses over at %d clients", worst.FirstCrossover)
	}
	// Where the crossover exists it must not shrink as the link degrades
	// (points are in ascending availability, so walk backwards).
	prev := best.FirstCrossover
	for i := len(pts) - 2; i >= 0; i-- {
		p := pts[i]
		if p.FirstCrossover == 0 {
			continue
		}
		if p.FirstCrossover < prev {
			t.Fatalf("crossover shrank from %d to %d as availability fell to %g",
				prev, p.FirstCrossover, p.Availability)
		}
		prev = p.FirstCrossover
	}
	// The edge-only scenario never touches the uplink: its energy must
	// be identical at every availability.
	for _, p := range pts {
		if p.EdgeJClient != best.EdgeJClient {
			t.Fatalf("edge-only energy moved with availability: %v vs %v",
				p.EdgeJClient, best.EdgeJClient)
		}
		if p.CloudJClient < best.CloudJClient {
			t.Fatalf("degraded cloud cycle cheaper than healthy: %+v", p)
		}
	}
}

// renderAvailability serializes every export of an availability sweep
// for byte-comparison across worker counts.
func renderAvailability(t *testing.T, workers int) []byte {
	t.Helper()
	cfg := fastAvailCfg(t)
	cfg.Workers = workers
	cfg.Metrics = obs.NewRegistry()
	cfg.Ledger = ledger.New()
	pts, err := AvailabilitySweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	edge, cloud, crossover, delivered, uploadP50, uploadP99, err := AvailabilitySeries(pts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := report.WriteSeriesCSV(&buf, "availability", edge, cloud, crossover, delivered, uploadP50, uploadP99); err != nil {
		t.Fatal(err)
	}
	if err := cfg.Ledger.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if err := report.WriteMetricsCSV(&buf, cfg.Metrics.Snapshot()); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestAvailabilitySweepWorkerByteIdentity: CSV, ledger JSONL and
// metrics snapshot agree byte for byte at any worker count (the
// parallel_workers gauge is masked by using equal worker values in the
// registry — the gauge records the resolved count, so compare 1 vs 2
// vs 8 after masking is not needed here because Record writes the
// resolved value; instead we strip it via the masked CSV in the root
// determinism suite and assert the rest here).
func TestAvailabilitySweepWorkerByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("inner sweeps are sizeable")
	}
	base := renderAvailability(t, 1)
	for _, w := range []int{2, 8} {
		if got := renderAvailability(t, w); !bytes.Equal(maskWorkerGauge(got), maskWorkerGauge(base)) {
			t.Fatalf("workers=%d output diverged from serial", w)
		}
	}
}

// maskWorkerGauge blanks the parallel_workers gauge line, the only
// export line that legitimately varies with the worker count.
func maskWorkerGauge(b []byte) []byte {
	lines := bytes.Split(b, []byte("\n"))
	for i, l := range lines {
		if bytes.Contains(l, []byte("parallel_workers")) {
			lines[i] = []byte("parallel_workers,MASKED")
		}
	}
	return bytes.Join(lines, []byte("\n"))
}

// TestAvailabilityLedgerAuditGreen: the sweep's attribution entries
// audit clean at every point.
func TestAvailabilityLedgerAuditGreen(t *testing.T) {
	cfg := fastAvailCfg(t)
	cfg.Ledger = ledger.New()
	if _, err := AvailabilitySweep(cfg); err != nil {
		t.Fatal(err)
	}
	rep := ledger.Audit(cfg.Ledger, ledger.DefaultTolerance())
	if !rep.OK() {
		t.Fatalf("availability ledger audit failed: %s (%v)", rep.String(), rep.Violations)
	}
	if cfg.Ledger.Len() != 2*cfg.AvailSteps {
		t.Fatalf("ledger entries = %d, want two per point (%d)", cfg.Ledger.Len(), 2*cfg.AvailSteps)
	}
}

func TestDegradeServiceLeavesEdgeAlone(t *testing.T) {
	svc, err := defaultService()
	if err != nil {
		t.Fatal(err)
	}
	d := DegradeService(svc, 0.5, faults.DefaultRetryPolicy(), 100, 200)
	if d.EdgeOnlyCycle != svc.EdgeOnlyCycle {
		t.Fatal("degradation touched the edge-only cycle")
	}
	if d.EdgeCloudCycle <= svc.EdgeCloudCycle {
		t.Fatal("degradation did not raise the edge+cloud cycle")
	}
	if same := DegradeService(svc, 1, faults.DefaultRetryPolicy(), 100, 200); same != svc {
		t.Fatal("availability 1 changed the service")
	}
}
