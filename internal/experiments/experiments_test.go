package experiments

import (
	"fmt"
	"math"
	"strings"
	"testing"
	"time"

	"beesim/internal/core"
	"beesim/internal/ledger"
	"beesim/internal/routine"
	"beesim/internal/stats"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestTableI(t *testing.T) {
	tables, err := TableI()
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("Table I scenarios = %d, want 2 (SVM, CNN)", len(tables))
	}
	totals := map[routine.Model]float64{routine.SVM: 366.3, routine.CNN: 367.5}
	for _, s := range tables {
		want := totals[s.Spec.Model]
		if !almostEq(float64(s.Cycle.EdgeEnergy()), want, 0.2) {
			t.Errorf("%v total = %v, want %v", s.Spec.Model, s.Cycle.EdgeEnergy(), want)
		}
		rendered := RenderScenario(s).String()
		if !strings.Contains(rendered, "Sleep") || !strings.Contains(rendered, "Total") {
			t.Errorf("rendered table missing rows:\n%s", rendered)
		}
	}
}

func TestTableII(t *testing.T) {
	tables, err := TableII()
	if err != nil {
		t.Fatal(err)
	}
	cloudTotals := map[routine.Model]float64{routine.SVM: 13744.3, routine.CNN: 13806}
	for _, s := range tables {
		if !almostEq(float64(s.Cycle.EdgeEnergy()), 322.0, 0.2) {
			t.Errorf("%v edge total = %v, want 322.0", s.Spec.Model, s.Cycle.EdgeEnergy())
		}
		if !almostEq(float64(s.Cycle.CloudEnergy()), cloudTotals[s.Spec.Model], 2) {
			t.Errorf("%v cloud total = %v, want %v", s.Spec.Model,
				s.Cycle.CloudEnergy(), cloudTotals[s.Spec.Model])
		}
		rendered := RenderScenario(s).String()
		if !strings.Contains(rendered, "Receive audio") {
			t.Errorf("rendered Table II missing cloud column:\n%s", rendered)
		}
	}
}

func TestRoutineStatsCampaign(t *testing.T) {
	st, err := RoutineStats(319)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(st.MeanDuration.Seconds(), 89, 3) {
		t.Errorf("campaign mean duration = %v, want ~89 s", st.MeanDuration)
	}
	if !almostEq(float64(st.MeanPower), 2.14, 0.02) {
		t.Errorf("campaign mean power = %v, want 2.14 W", st.MeanPower)
	}
}

func TestFigure3(t *testing.T) {
	pts := Figure3()
	if len(pts) != 6 {
		t.Fatalf("figure 3 points = %d, want 6", len(pts))
	}
	if pts[0].Period != 5*time.Minute {
		t.Fatalf("first period = %v", pts[0].Period)
	}
	if !almostEq(float64(pts[0].AvgPower), 1.19, 0.01) {
		t.Errorf("5-min average power = %v, want 1.19 W", pts[0].AvgPower)
	}
	if !almostEq(float64(pts[5].AvgPower), 0.625, 0.04) {
		t.Errorf("120-min average power = %v, want ~0.62 W", pts[5].AvgPower)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].AvgPower >= pts[i-1].AvgPower {
			t.Fatal("figure 3 not monotone decreasing")
		}
	}
	s := Figure3Series()
	if len(s.X) != 6 || s.X[0] != 5 {
		t.Fatalf("figure 3 series = %+v", s)
	}
}

func TestFigure6(t *testing.T) {
	pts, err := Figure6()
	if err != nil {
		t.Fatal(err)
	}
	if pts[0].Clients != 10 || pts[len(pts)-1].Clients != 400 {
		t.Fatalf("figure 6 range = %d..%d", pts[0].Clients, pts[len(pts)-1].Clients)
	}
	// Edge per-client flat at 322 J in the edge+cloud scenario.
	for _, p := range pts {
		if !almostEq(float64(p.EdgeCloud.PerClientEdge()), 322, 0.5) {
			t.Fatalf("edge share at %d clients = %v", p.Clients, p.EdgeCloud.PerClientEdge())
		}
	}
	// Server share converges toward ~116 J at multiples of 180.
	at180 := pts[180-10]
	if at180.Clients != 180 {
		t.Fatalf("index arithmetic wrong: %d", at180.Clients)
	}
	if !almostEq(float64(at180.EdgeCloud.PerClientServer()), 116, 2) {
		t.Errorf("server share at 180 = %v, want ~116", at180.EdgeCloud.PerClientServer())
	}
	// Server count steps at the 180-client capacity.
	if pts[170-10].EdgeCloud.Servers != 1 || pts[181-10].EdgeCloud.Servers != 2 {
		t.Errorf("server steps wrong: %d then %d",
			pts[170-10].EdgeCloud.Servers, pts[181-10].EdgeCloud.Servers)
	}
}

func TestFigure7Milestones(t *testing.T) {
	pts, err := Figure7(35)
	if err != nil {
		t.Fatal(err)
	}
	m := MilestonesOf(pts)
	if m.FirstCrossover < 400 || m.FirstCrossover > 412 {
		t.Errorf("first crossover = %d, want ~406", m.FirstCrossover)
	}
	if m.PeakClients != 630 {
		t.Errorf("peak at %d clients, want 630", m.PeakClients)
	}
	if !almostEq(float64(m.PeakAdvantage), 12.5, 1.0) {
		t.Errorf("peak advantage = %v, want ~12.5 J", m.PeakAdvantage)
	}
	if m.PermanentFrom < 795 || m.PermanentFrom > 820 {
		t.Errorf("permanent win from = %d, want ~803-815", m.PermanentFrom)
	}
}

func TestFigure7Capacity10NeverWins(t *testing.T) {
	// Below the 26-client tipping point, the edge+cloud scenario can
	// never beat the edge scenario.
	pts, err := Figure7(10)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if p.Diff() > 0 {
			t.Fatalf("capacity 10 won at %d clients", p.Clients)
		}
	}
}

func TestFigure8Variants(t *testing.T) {
	floorA := 0.0
	for _, v := range []LossVariant{LossA, LossB, LossC, LossAll} {
		pts, err := Figure8(v)
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		if len(pts) == 0 {
			t.Fatalf("%v: empty sweep", v)
		}
		if v == LossA {
			// Server cost at a full server (~180 clients) near 186 J.
			p := pts[180-10]
			floorA = float64(p.EdgeCloud.PerClientServer())
			if !almostEq(floorA, 186, 4) {
				t.Errorf("loss A floor = %v, want ~186", floorA)
			}
		}
		if v.String() == "" || strings.HasPrefix(v.String(), "LossVariant") {
			t.Errorf("missing name for variant %d", v)
		}
	}
	// Loss-C survival: fewer active than provisioned clients on average.
	pts, err := Figure8(LossC)
	if err != nil {
		t.Fatal(err)
	}
	var active, total int
	for _, p := range pts {
		active += p.EdgeCloud.Active
		total += p.EdgeCloud.Clients
	}
	frac := float64(active) / float64(total)
	if frac < 0.85 || frac > 0.95 {
		t.Errorf("loss C survival fraction = %v, want ~0.9", frac)
	}
}

func TestFigure9StillHasGreenIntervals(t *testing.T) {
	pts, err := Figure9()
	if err != nil {
		t.Fatal(err)
	}
	// The paper: with all losses the cap-35 setting "still has some
	// intervals where the edge+cloud scenario is more energy-efficient".
	wins := 0
	for _, p := range pts {
		if p.Diff() > 0 {
			wins++
		}
	}
	if wins == 0 {
		t.Fatal("no winning intervals for edge+cloud under full losses")
	}
	// And it should no longer win everywhere (the losses bite).
	if wins == len(pts) {
		t.Fatal("edge+cloud won everywhere despite losses")
	}
}

func TestFigure9ThreeServerBand(t *testing.T) {
	// Paper: "it is safe to assign three servers when the number of
	// clients is between 1600 and 1750, and the edge+cloud scenario will
	// be more energy-efficient than the edge scenario." Under a
	// self-consistent loss model the win holds in the well-utilized part
	// of the band (see EXPERIMENTS.md); the server count holds throughout.
	pts, err := Figure9()
	if err != nil {
		t.Fatal(err)
	}
	greens := 0
	for _, p := range pts {
		if p.Clients >= 1600 && p.Clients <= 1750 {
			if p.EdgeCloud.Servers > 4 {
				t.Fatalf("%d clients needed %d servers", p.Clients, p.EdgeCloud.Servers)
			}
			if p.Diff() > 0 {
				greens++
			}
		}
	}
	if greens < 15 {
		t.Fatalf("edge+cloud wins only %d/151 points in the 1600-1750 band", greens)
	}
}

func TestSweepValidation(t *testing.T) {
	svc, err := core.NewService(routine.CNN, Period)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Sweep(SweepConfig{Service: svc, Server: core.DefaultServer(10), From: 0, To: 5, Step: 1}); err == nil {
		t.Error("zero From accepted")
	}
	if _, err := Sweep(SweepConfig{Service: svc, Server: core.DefaultServer(10), From: 10, To: 5, Step: 1}); err == nil || !strings.Contains(err.Error(), "inverted sweep range") {
		t.Errorf("inverted range: err = %v, want descriptive inverted-range error", err)
	}
	// Regression: Step <= 0 used to be silently rewritten to 1, sweeping
	// a range the caller never asked for. It must be a descriptive error.
	for _, step := range []int{0, -3} {
		_, err := Sweep(SweepConfig{Service: svc, Server: core.DefaultServer(10), From: 10, To: 20, Step: step})
		if err == nil || !strings.Contains(err.Error(), "non-positive sweep step") {
			t.Errorf("Step=%d: err = %v, want descriptive step error", step, err)
		}
	}
}

func TestSweepSeriesAndCrossovers(t *testing.T) {
	pts, err := Figure7(35)
	if err != nil {
		t.Fatal(err)
	}
	edge, cloud, servers, err := SweepSeries(pts)
	if err != nil {
		t.Fatal(err)
	}
	if len(edge.X) != len(pts) || len(cloud.X) != len(pts) || len(servers.X) != len(pts) {
		t.Fatal("series length mismatch")
	}
	xs, err := CrossoverClients(pts)
	if err != nil {
		t.Fatal(err)
	}
	if len(xs) == 0 {
		t.Fatal("no crossovers found in the cap-35 sweep")
	}
	if xs[0] < 400 || xs[0] > 412 {
		t.Fatalf("first crossover at %v, want ~406", xs[0])
	}
	_ = stats.ArgMax // keep the stats dependency explicit
}

func TestFigure2ShortTrace(t *testing.T) {
	tr, err := Figure2Custom(2, 10*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Wakeups == 0 {
		t.Fatal("no wakeups in the trace")
	}
	if tr.Outages == 0 {
		t.Fatal("no night outages in the trace")
	}
}

func TestFigure5SmallSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("figure 5 trains CNNs")
	}
	cfg := DefaultFigure5()
	cfg.Sizes = []int{20, 40}
	cfg.CorpusSize = 24
	cfg.ClipSeconds = 1
	cfg.Epochs = 2
	pts, err := Figure5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[1].EdgeEnergy <= pts[0].EdgeEnergy {
		t.Fatal("edge energy not increasing with input size")
	}
	if pts[1].FLOPs/pts[0].FLOPs < 3 {
		t.Fatalf("FLOPs ratio %v, want ~4 (quadratic)", pts[1].FLOPs/pts[0].FLOPs)
	}
	acc, energy, err := Figure5Series(pts)
	if err != nil {
		t.Fatal(err)
	}
	if len(acc.X) != 2 || len(energy.X) != 2 {
		t.Fatal("series length mismatch")
	}
	if _, err := Figure5(Figure5Config{}); err == nil {
		t.Error("empty size list accepted")
	}
}

func TestSweepLedgerRecordsPerPoint(t *testing.T) {
	svc, err := core.NewService(routine.CNN, Period)
	if err != nil {
		t.Fatal(err)
	}
	lg := ledger.New()
	points, err := Sweep(SweepConfig{
		Service: svc,
		Server:  core.DefaultServer(10),
		From:    10, To: 14, Step: 2,
		Policy: core.FillSequential,
		Ledger: lg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := lg.Len(), 2*len(points); got != want {
		t.Fatalf("ledger entries = %d, want %d (2 per point)", got, want)
	}
	for i, e := range lg.Entries() {
		p := points[i/2]
		wantHive := fmt.Sprintf("fleet-%d", p.Clients)
		if e.Hive != wantHive || e.Store != "" {
			t.Fatalf("entry %d = %+v, want hive %q attribution-only", i, e, wantHive)
		}
		want := float64(p.EdgeOnly.PerClient())
		if i%2 == 1 {
			want = float64(p.EdgeCloud.PerClient())
		}
		if e.Joules != want {
			t.Fatalf("entry %d joules = %v, want %v", i, e.Joules, want)
		}
	}
}
