package experiments

import (
	"fmt"
	"time"

	"beesim/internal/audio"
	"beesim/internal/deployment"
	"beesim/internal/queendetect"
	"beesim/internal/report"
	"beesim/internal/units"
)

// ---------------------------------------------------------------------
// Figure 2: the deployed-hive trace
// ---------------------------------------------------------------------

// Figure2 runs the week-long deployment simulation of Figure 2 (Cachan,
// 10-minute wake-up period, night brownouts).
func Figure2() (*deployment.Trace, error) {
	return deployment.Run(deployment.DefaultConfig())
}

// Figure2Custom runs the deployment trace with a custom day count and
// wake period (Figure 2a uses a week; shorter runs are handy for tests).
func Figure2Custom(days int, wakePeriod time.Duration) (*deployment.Trace, error) {
	cfg := deployment.DefaultConfig()
	cfg.Days = days
	cfg.WakePeriod = wakePeriod
	return deployment.Run(cfg)
}

// ---------------------------------------------------------------------
// Figure 5: CNN accuracy & edge energy vs input size
// ---------------------------------------------------------------------

// Figure5Point is one input-size sample of Figure 5.
type Figure5Point struct {
	Size        int
	Accuracy    float64
	EdgeEnergy  units.Joules
	EdgeSeconds float64
	FLOPs       float64
}

// Figure5Config tunes the sweep cost. The paper trains on 1647 clips of
// 10 s; the defaults here use a smaller synthetic corpus that reproduces
// the qualitative curve in minutes instead of hours.
type Figure5Config struct {
	Sizes        []int
	CorpusSize   int
	ClipSeconds  float64
	Epochs       int
	LearningRate float64
	Channels     int
	Seed         uint64
}

// DefaultFigure5 sweeps the paper's size range around the 100x100
// optimum.
func DefaultFigure5() Figure5Config {
	return Figure5Config{
		Sizes:        []int{20, 40, 60, 80, 100, 120, 140, 160},
		CorpusSize:   120,
		ClipSeconds:  2,
		Epochs:       6,
		LearningRate: 0.01,
		Channels:     4,
		Seed:         1,
	}
}

// Figure5 trains the CNN at each input size on one shared corpus and
// reports accuracy and edge inference cost per size.
func Figure5(cfg Figure5Config) ([]Figure5Point, error) {
	if len(cfg.Sizes) == 0 {
		return nil, fmt.Errorf("experiments: figure 5 needs at least one size")
	}
	corpus, err := audio.Corpus(audio.Config{
		SampleRate: audio.SampleRate,
		Seconds:    cfg.ClipSeconds,
		Seed:       cfg.Seed,
	}, cfg.CorpusSize)
	if err != nil {
		return nil, err
	}
	out := make([]Figure5Point, 0, len(cfg.Sizes))
	for _, size := range cfg.Sizes {
		opts := queendetect.DefaultCNNOptions()
		opts.Size = size
		opts.Channels = cfg.Channels
		opts.Seed = cfg.Seed
		opts.Train.Epochs = cfg.Epochs
		opts.Train.LR = cfg.LearningRate
		opts.Train.Seed = cfg.Seed
		res, err := queendetect.TrainCNN(corpus, audio.SampleRate, opts)
		if err != nil {
			return nil, fmt.Errorf("experiments: figure 5 size %d: %w", size, err)
		}
		out = append(out, Figure5Point{
			Size:        size,
			Accuracy:    res.Metrics.Accuracy,
			EdgeEnergy:  res.EdgeEnergy,
			EdgeSeconds: res.EdgeDuration.Seconds(),
			FLOPs:       res.FLOPs,
		})
	}
	return out, nil
}

// Figure5Series converts the sweep to accuracy and energy series.
func Figure5Series(points []Figure5Point) (acc, energy report.Series, err error) {
	x := make([]float64, len(points))
	ya := make([]float64, len(points))
	ye := make([]float64, len(points))
	for i, p := range points {
		x[i] = float64(p.Size)
		ya[i] = p.Accuracy
		ye[i] = float64(p.EdgeEnergy)
	}
	if acc, err = report.NewSeries("accuracy", x, ya); err != nil {
		return
	}
	energy, err = report.NewSeries("edge energy (J)", x, ye)
	return
}
