// Package experiments regenerates every table and figure of the paper's
// evaluation. Each Table*/Figure* function produces both the structured
// numbers (for tests and benchmarks) and render-ready report artifacts
// (for the CLIs). See DESIGN.md §4 for the experiment index and
// EXPERIMENTS.md for paper-vs-measured values.
package experiments

import (
	"fmt"
	"time"

	"beesim/internal/core"
	"beesim/internal/ledger"
	"beesim/internal/netsim"
	"beesim/internal/obs"
	"beesim/internal/parallel"
	"beesim/internal/power"
	"beesim/internal/report"
	"beesim/internal/rng"
	"beesim/internal/routine"
	"beesim/internal/stats"
	"beesim/internal/units"
)

// Period is the paper's standard 5-minute cycle.
const Period = 5 * time.Minute

// ---------------------------------------------------------------------
// Tables I & II
// ---------------------------------------------------------------------

// ScenarioTable is one scenario's task breakdown for the tables.
type ScenarioTable struct {
	Spec  routine.Spec
	Cycle routine.Cycle
}

// TableI builds the edge-scenario breakdowns (SVM and CNN) of Table I.
func TableI() ([]ScenarioTable, error) {
	return buildScenarios(routine.EdgeOnly)
}

// TableII builds the edge+cloud breakdowns (SVM and CNN) of Table II.
func TableII() ([]ScenarioTable, error) {
	return buildScenarios(routine.EdgeCloud)
}

func buildScenarios(p routine.Placement) ([]ScenarioTable, error) {
	pi, cloud := power.DefaultPi3B(), power.DefaultCloud()
	var out []ScenarioTable
	for _, m := range []routine.Model{routine.SVM, routine.CNN} {
		spec := routine.Spec{Period: Period, Model: m, Placement: p}
		cycle, err := routine.Build(pi, cloud, spec)
		if err != nil {
			return nil, fmt.Errorf("experiments: %v/%v: %w", p, m, err)
		}
		out = append(out, ScenarioTable{Spec: spec, Cycle: cycle})
	}
	return out, nil
}

// RenderScenario formats one scenario as a text table in the paper's
// layout.
func RenderScenario(s ScenarioTable) *report.Table {
	title := fmt.Sprintf("Scenario: %s (%s), %s cycle",
		s.Spec.Placement, s.Spec.Model, s.Spec.Period)
	var t *report.Table
	if len(s.Cycle.CloudTasks) == 0 {
		t = report.NewTable(title, "Edge Task", "Energy of Edge (J)", "Time (s)")
		for _, task := range s.Cycle.EdgeTasks {
			t.MustAddRow(task.Name,
				fmt.Sprintf("%.1f", float64(task.Energy)),
				fmt.Sprintf("%.1f", task.Duration.Seconds()))
		}
		t.MustAddRow("Total",
			fmt.Sprintf("%.1f", float64(s.Cycle.EdgeEnergy())),
			fmt.Sprintf("%.0f", s.Cycle.Duration().Seconds()))
		return t
	}
	t = report.NewTable(title, "Edge Task", "Energy of Edge (J)",
		"Cloud Server Task", "Energy of Cloud Server (J)", "Time (s)")
	for i, task := range s.Cycle.EdgeTasks {
		cloud := s.Cycle.CloudTasks[i]
		t.MustAddRow(task.Name,
			fmt.Sprintf("%.1f", float64(task.Energy)),
			cloud.Name,
			fmt.Sprintf("%.1f", float64(cloud.Energy)),
			fmt.Sprintf("%.1f", task.Duration.Seconds()))
	}
	t.MustAddRow("Total",
		fmt.Sprintf("%.1f", float64(s.Cycle.EdgeEnergy())),
		"",
		fmt.Sprintf("%.1f", float64(s.Cycle.CloudEnergy())),
		fmt.Sprintf("%.0f", s.Cycle.Duration().Seconds()))
	return t
}

// ---------------------------------------------------------------------
// Section IV: routine statistics and Figure 3
// ---------------------------------------------------------------------

// RoutineStats replays the Section-IV measurement campaign (319 routines
// by default in the paper) with the process-default worker count.
func RoutineStats(n int) (routine.CampaignStats, error) {
	return RoutineStatsWorkers(n, 0)
}

// RoutineStatsWorkers replays the campaign fanning fixed-size routine
// batches across the given worker count (0 = process default, 1 =
// serial). The statistics are byte-identical for every worker count.
func RoutineStatsWorkers(n, workers int) (routine.CampaignStats, error) {
	return routine.SimulateCampaignParallel(power.DefaultPi3B(), netsim.DefaultConfig(), n, workers)
}

// Figure3Point is one wake-up-period sample of Figure 3.
type Figure3Point struct {
	Period   time.Duration
	AvgPower units.Watts
}

// Figure3 computes the average consumed power at the paper's six wake-up
// periods (5, 10, 15, 30, 60, 120 minutes).
func Figure3() []Figure3Point {
	pi := power.DefaultPi3B()
	periods := []time.Duration{5, 10, 15, 30, 60, 120}
	out := make([]Figure3Point, len(periods))
	for i, m := range periods {
		p := m * time.Minute
		out[i] = Figure3Point{Period: p, AvgPower: pi.AveragePower(p)}
	}
	return out
}

// Figure3Series converts the points to a report series (x in minutes).
func Figure3Series() report.Series {
	pts := Figure3()
	x := make([]float64, len(pts))
	y := make([]float64, len(pts))
	for i, p := range pts {
		x[i] = p.Period.Minutes()
		y[i] = float64(p.AvgPower)
	}
	s, _ := report.NewSeries("average power (W)", x, y)
	return s
}

// ---------------------------------------------------------------------
// Figures 6-9: the scale simulation
// ---------------------------------------------------------------------

// SweepPoint is one fleet size evaluated in both scenarios.
type SweepPoint struct {
	Clients   int
	EdgeOnly  core.CycleCost
	EdgeCloud core.CycleCost
}

// Diff returns edge-only minus edge+cloud per-client energy: positive
// values mean the edge+cloud scenario wins (the green regions of
// Figures 7 and 9).
func (p SweepPoint) Diff() units.Joules {
	return p.EdgeOnly.PerClient() - p.EdgeCloud.PerClient()
}

// SweepConfig parameterizes a client-range sweep.
type SweepConfig struct {
	Service  core.Service
	Server   core.ServerSpec
	Losses   core.Losses
	From, To int
	Step     int
	Policy   core.FillPolicy
	Seed     uint64

	// Workers bounds the fan-out of the point evaluations: 0 uses the
	// process default (parallel.Default, normally NumCPU), 1 forces the
	// serial legacy path. The sweep's output is byte-identical for
	// every worker count — each point draws losses from its own rng
	// stream keyed by the client count, and metrics, trace spans and
	// ledger entries are committed in a serial pass over the
	// index-ordered results.
	Workers int

	// Metrics, when non-nil, counts evaluated points and observes the
	// per-client energies of both scenarios.
	Metrics *obs.Registry
	// Tracer, when non-nil, records one span per sweep point on a
	// synthetic timeline (1 ms per point from the Unix epoch) so a whole
	// sweep can be profiled in Perfetto: span args carry clients, both
	// per-client energies and the server count.
	Tracer *obs.Tracer
	// Ledger, when non-nil, receives two attribution-only consume
	// entries per sweep point — the per-client cycle energy of each
	// scenario, keyed to the same synthetic timeline and labeled
	// "fleet-N" — so hivereport can break down and diff whole sweeps.
	Ledger *ledger.Ledger
}

// Metric names emitted by an instrumented sweep.
const (
	MetricSweepPoints = "experiments_sweep_points_total"
	MetricSweepEdgeJ  = "experiments_sweep_edge_j_per_client"
	MetricSweepCloudJ = "experiments_sweep_cloud_j_per_client"
)

// validate rejects degenerate sweep ranges with a descriptive error: a
// non-positive step would loop forever (or, with a naive fix-up,
// silently sweep something the caller did not ask for), and an
// inverted or non-positive range would yield a silent empty sweep.
func (cfg SweepConfig) validate() error {
	if cfg.Step <= 0 {
		return fmt.Errorf("experiments: non-positive sweep step %d (a sweep needs Step >= 1)", cfg.Step)
	}
	if cfg.From <= 0 {
		return fmt.Errorf("experiments: sweep must start at a positive fleet size, got From=%d", cfg.From)
	}
	if cfg.To < cfg.From {
		return fmt.Errorf("experiments: inverted sweep range [%d, %d] (From > To yields no points)", cfg.From, cfg.To)
	}
	return nil
}

// clientCounts expands the validated range into the evaluated fleet
// sizes, in ascending order.
func (cfg SweepConfig) clientCounts() []int {
	counts := make([]int, 0, (cfg.To-cfg.From)/cfg.Step+1)
	for n := cfg.From; n <= cfg.To; n += cfg.Step {
		counts = append(counts, n)
	}
	return counts
}

// sweepEval is one point's pure evaluation result, before commit.
type sweepEval struct {
	edge, cloud core.CycleCost
}

// Sweep evaluates both scenarios across a client range. Points are
// independent, so they fan out across cfg.Workers workers; each point
// draws its loss-C losses from a child rng stream keyed by the client
// count (not by evaluation order), and all observable side effects —
// metrics, trace spans, ledger entries — are committed serially over
// the index-ordered results. The output is therefore byte-identical
// for every worker count, including the workers=1 serial path.
func Sweep(cfg SweepConfig) ([]SweepPoint, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	counts := cfg.clientCounts()
	workers := parallel.Resolve(cfg.Workers)
	evals, err := parallel.Map(workers, len(counts), func(i int) (sweepEval, error) {
		n := counts[i]
		// The per-point stream is a stack value (rng.Seeded, not
		// rng.Stream) — still keyed by the stable client count, but no
		// per-point heap allocation.
		var src rng.Source
		var r *rng.Source
		if cfg.Losses.ClientLossFrac > 0 {
			src = rng.Seeded(rng.StreamSeed(cfg.Seed, uint64(n)))
			r = &src
		}
		edge, err := core.SimulateEdgeOnly(n, cfg.Service, cfg.Losses, r)
		if err != nil {
			return sweepEval{}, err
		}
		ec, err := core.SimulateEdgeCloud(n, cfg.Server, cfg.Service, cfg.Losses, cfg.Policy, r)
		if err != nil {
			return sweepEval{}, err
		}
		return sweepEval{edge: edge, cloud: ec}, nil
	})
	if err != nil {
		return nil, err
	}

	parallel.Record(cfg.Metrics, workers)
	mPoints := cfg.Metrics.Counter(MetricSweepPoints)
	hEdgeJ := cfg.Metrics.Histogram(MetricSweepEdgeJ)
	hCloudJ := cfg.Metrics.Histogram(MetricSweepCloudJ)
	// The sweep has no virtual clock of its own; points land on a
	// synthetic 1 ms-per-point timeline so traces stay deterministic.
	epoch := time.Unix(0, 0).UTC()
	out := make([]SweepPoint, 0, len(counts))
	for i, ev := range evals {
		n := counts[i]
		edge, ec := ev.edge, ev.cloud
		mPoints.Inc()
		hEdgeJ.Observe(float64(edge.PerClient()))
		hCloudJ.Observe(float64(ec.PerClient()))
		at := epoch.Add(time.Duration(len(out)) * time.Millisecond)
		// Span is nil-safe, but its name and args (Sprintf, a map, boxed
		// values) would still be built per point — on a 1901-point sweep
		// that is most of the commit loop's garbage — so guard the whole
		// construction for the common untraced run.
		if cfg.Tracer != nil {
			cfg.Tracer.Span(fmt.Sprintf("sweep point %d clients", n), "sweep", obs.TidEngine,
				at, time.Millisecond,
				map[string]any{
					"clients":        n,
					"edge_j_client":  float64(edge.PerClient()),
					"cloud_j_client": float64(ec.PerClient()),
					"servers":        ec.Servers,
				})
		}
		if cfg.Ledger != nil {
			hive := fmt.Sprintf("fleet-%d", n)
			cfg.Ledger.Append(ledger.Entry{
				T: at, Hive: hive, Device: "edge", Component: "pi3b",
				Task: "edge-only per-client cycle", Dir: ledger.Consume,
				Joules: float64(edge.PerClient()), Seconds: Period.Seconds(),
			})
			cfg.Ledger.Append(ledger.Entry{
				T: at, Hive: hive, Device: "fleet", Component: "edge+cloud",
				Task: "edge+cloud per-client cycle", Dir: ledger.Consume,
				Joules: float64(ec.PerClient()), Seconds: Period.Seconds(),
			})
		}
		out = append(out, SweepPoint{Clients: n, EdgeOnly: edge, EdgeCloud: ec})
	}
	return out, nil
}

// defaultService returns the CNN service the scale figures use.
func defaultService() (core.Service, error) {
	return core.NewService(routine.CNN, Period)
}

// Figure6Config returns the sweep configuration of Figure 6: 10-400
// clients at slot capacity 10 with no losses. Callers may attach
// instrumentation or a worker count before passing it to Sweep.
func Figure6Config() (SweepConfig, error) {
	svc, err := defaultService()
	if err != nil {
		return SweepConfig{}, err
	}
	return SweepConfig{
		Service: svc,
		Server:  core.DefaultServer(10),
		From:    10, To: 400, Step: 1,
		Policy: core.FillSequential,
	}, nil
}

// Figure6 sweeps 10-400 clients at slot capacity 10 with no losses,
// reproducing the server-count and per-client energy curves.
func Figure6() ([]SweepPoint, error) {
	cfg, err := Figure6Config()
	if err != nil {
		return nil, err
	}
	return Sweep(cfg)
}

// Figure7Config returns the sweep configuration of Figure 7: 100-2000
// clients at the given slot capacity with no losses.
func Figure7Config(maxParallel int) (SweepConfig, error) {
	svc, err := defaultService()
	if err != nil {
		return SweepConfig{}, err
	}
	return SweepConfig{
		Service: svc,
		Server:  core.DefaultServer(maxParallel),
		From:    100, To: 2000, Step: 1,
		Policy: core.FillSequential,
	}, nil
}

// Figure7 sweeps 100-2000 clients at the given slot capacity (the paper
// contrasts 10 and 35) with no losses.
func Figure7(maxParallel int) ([]SweepPoint, error) {
	cfg, err := Figure7Config(maxParallel)
	if err != nil {
		return nil, err
	}
	return Sweep(cfg)
}

// Figure7Milestones extracts the paper's headline numbers from a cap-35
// sweep: the first crossover, the peak advantage, and the fleet size
// beyond which the edge+cloud scenario always wins.
type Figure7Milestones struct {
	FirstCrossover int
	PeakClients    int
	PeakAdvantage  units.Joules
	PermanentFrom  int
}

// MilestonesOf scans a sweep for the Figure-7 milestones.
func MilestonesOf(points []SweepPoint) Figure7Milestones {
	var m Figure7Milestones
	best := units.Joules(0)
	for _, p := range points {
		d := p.Diff()
		if d > 0 && m.FirstCrossover == 0 {
			m.FirstCrossover = p.Clients
		}
		if d > best {
			best = d
			m.PeakClients = p.Clients
			m.PeakAdvantage = d
		}
		if d > 0 {
			if m.PermanentFrom == 0 {
				m.PermanentFrom = p.Clients
			}
		} else {
			m.PermanentFrom = 0
		}
	}
	return m
}

// LossVariant identifies one Figure-8 panel.
type LossVariant int

// The four panels of Figure 8.
const (
	LossA LossVariant = iota // slot saturation penalty
	LossB                    // transfer-time penalty
	LossC                    // Gaussian client loss
	LossAll
)

// String names the variant.
func (v LossVariant) String() string {
	switch v {
	case LossA:
		return "loss A (slot saturation)"
	case LossB:
		return "loss B (transfer penalty)"
	case LossC:
		return "loss C (client loss)"
	case LossAll:
		return "losses A+B+C"
	default:
		return fmt.Sprintf("LossVariant(%d)", int(v))
	}
}

// Losses returns the core loss configuration for the variant.
func (v LossVariant) Losses() core.Losses {
	switch v {
	case LossA:
		return core.PaperLosses(true, false, false)
	case LossB:
		return core.PaperLosses(false, true, false)
	case LossC:
		return core.PaperLosses(false, false, true)
	default:
		return core.PaperLosses(true, true, true)
	}
}

// Figure8Config returns the sweep configuration of one Figure-8 panel:
// 10-400 clients at capacity 10 under the given loss variant.
func Figure8Config(v LossVariant) (SweepConfig, error) {
	svc, err := defaultService()
	if err != nil {
		return SweepConfig{}, err
	}
	return SweepConfig{
		Service: svc,
		Server:  core.DefaultServer(10),
		Losses:  v.Losses(),
		From:    10, To: 400, Step: 1,
		Policy: core.FillSequential,
		Seed:   7,
	}, nil
}

// Figure8 sweeps 10-400 clients at capacity 10 under one loss variant.
func Figure8(v LossVariant) ([]SweepPoint, error) {
	cfg, err := Figure8Config(v)
	if err != nil {
		return nil, err
	}
	return Sweep(cfg)
}

// Figure9 sweeps 100-2000 clients at capacity 35 with all losses,
// comparing both scenarios as the paper's final figure does. It uses the
// loss semantics Figure 9's own numbers imply (core.Figure9Losses);
// Figure 8 uses the harsher variant its numbers imply — the paper's two
// loss figures are mutually inconsistent (EXPERIMENTS.md).
func Figure9() ([]SweepPoint, error) {
	cfg, err := Figure9Config()
	if err != nil {
		return nil, err
	}
	return Sweep(cfg)
}

// Figure9Config returns the sweep configuration of Figure 9: 100-2000
// clients at capacity 35 with the figure's own loss semantics.
func Figure9Config() (SweepConfig, error) {
	svc, err := defaultService()
	if err != nil {
		return SweepConfig{}, err
	}
	return SweepConfig{
		Service: svc,
		Server:  core.DefaultServer(35),
		Losses:  core.Figure9Losses(),
		From:    100, To: 2000, Step: 1,
		Policy: core.FillSequential,
		Seed:   7,
	}, nil
}

// SweepSeries converts sweep points into chart/CSV series: per-client
// energies of both scenarios plus the server count.
func SweepSeries(points []SweepPoint) (edge, cloud, servers report.Series, err error) {
	n := len(points)
	x := make([]float64, n)
	ye := make([]float64, n)
	yc := make([]float64, n)
	ys := make([]float64, n)
	for i, p := range points {
		x[i] = float64(p.Clients)
		ye[i] = float64(p.EdgeOnly.PerClient())
		yc[i] = float64(p.EdgeCloud.PerClient())
		ys[i] = float64(p.EdgeCloud.Servers)
	}
	if edge, err = report.NewSeries("edge J/client", x, ye); err != nil {
		return
	}
	if cloud, err = report.NewSeries("edge+cloud J/client", x, yc); err != nil {
		return
	}
	servers, err = report.NewSeries("servers", x, ys)
	return
}

// CrossoverClients returns the client counts where the two scenarios'
// per-client energies cross in a sweep.
func CrossoverClients(points []SweepPoint) ([]float64, error) {
	x := make([]float64, len(points))
	a := make([]float64, len(points))
	b := make([]float64, len(points))
	for i, p := range points {
		x[i] = float64(p.Clients)
		a[i] = float64(p.EdgeOnly.PerClient())
		b[i] = float64(p.EdgeCloud.PerClient())
	}
	cs, err := stats.Crossovers(x, a, b)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(cs))
	for i, c := range cs {
		out[i] = c.X
	}
	return out, nil
}
