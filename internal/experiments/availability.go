// The availability sweep: Figure 6/7 re-asked under a degraded uplink.
//
// The paper's crossover analysis assumes every upload succeeds on the
// first try. Here each availability point prices the edge+cloud cycle
// with the expected retry tax of a link whose attempts succeed with
// probability a — extra attempts re-pay the upload energy, undelivered
// cycles pay the local-inference fallback — and re-runs the full
// client-range sweep, showing how the edge-vs-cloud energy crossover
// shifts (and eventually disappears) as the link degrades.

package experiments

import (
	"fmt"
	"time"

	"beesim/internal/core"
	"beesim/internal/faults"
	"beesim/internal/ledger"
	"beesim/internal/netsim"
	"beesim/internal/obs"
	"beesim/internal/parallel"
	"beesim/internal/power"
	"beesim/internal/report"
	"beesim/internal/rng"
	"beesim/internal/units"
)

// AvailabilityConfig parameterizes an availability sweep: an inner
// client-range sweep (Service/Server/Losses/From/To/Step/Policy, as in
// SweepConfig) evaluated at each point of an availability grid.
type AvailabilityConfig struct {
	Service core.Service
	Server  core.ServerSpec
	Losses  core.Losses
	// Retry is the policy wrapped around each upload; its attempt
	// budget shapes both the delivery probability and the tax.
	Retry faults.RetryPolicy
	// UploadEnergy is the edge energy of one upload attempt;
	// FallbackEnergy the local inference run paid when delivery fails.
	UploadEnergy   units.Joules
	FallbackEnergy units.Joules

	From, To int
	Step     int
	Policy   core.FillPolicy

	// AvailFrom..AvailTo is the availability grid, AvailSteps points
	// inclusive of both ends.
	AvailFrom  float64
	AvailTo    float64
	AvailSteps int

	// UploadSamples is how many upload episodes each point replays
	// through a fault-armed link to measure the latency distribution
	// (0 selects DefaultUploadSamples). The episodes feed the per-point
	// netsim upload histograms, so every point carries its own p50/p99
	// upload latency and delivered fraction.
	UploadSamples int

	Seed uint64
	// Workers fans the availability points out; each point's inner
	// client sweep runs serially, and all side effects are committed in
	// a serial pass over the index-ordered results, so the output is
	// byte-identical for every worker count.
	Workers int

	// Metrics, when non-nil, counts evaluated points and observes each
	// point's crossover fleet size.
	Metrics *obs.Registry
	// Tracer, when non-nil, records one span per availability point on
	// the sweeps' synthetic 1 ms-per-point timeline.
	Tracer *obs.Tracer
	// Ledger, when non-nil, receives two attribution-only consume
	// entries per point (per-client cycle energy of each scenario at
	// the largest fleet), labeled "avail-<a>".
	Ledger *ledger.Ledger
}

// Metric names emitted by an instrumented availability sweep.
const (
	MetricAvailPoints    = "experiments_availability_points_total"
	MetricAvailCrossover = "experiments_availability_crossover_clients"
)

// DefaultUploadSamples is the per-point upload-episode count when the
// config leaves it zero: a day and a half of 10-minute routines, enough
// for a stable p99 over 64-attempt retry budgets.
const DefaultUploadSamples = 216

// DefaultAvailabilityConfig mirrors Figure 7 (100-2000 clients, cap-35
// servers, no losses) — the regime where the paper's crossover lives —
// with the default retry policy and the calibrated upload/fallback
// energies of the measured queen-detection routine, over availabilities
// 0.5..1.0 in 11 steps. At availability 1 the crossover sits at the
// fault-free Figure 7 value; degrading the link pushes it toward larger
// fleets until edge+cloud never wins.
func DefaultAvailabilityConfig() (AvailabilityConfig, error) {
	svc, err := defaultService()
	if err != nil {
		return AvailabilityConfig{}, err
	}
	pi := power.DefaultPi3B()
	return AvailabilityConfig{
		Service:        svc,
		Server:         core.DefaultServer(35),
		Retry:          faults.DefaultRetryPolicy(),
		UploadEnergy:   pi.SendAudio().Energy,
		FallbackEnergy: pi.InferCNN().Energy,
		From:           100,
		To:             2000,
		Step:           10,
		Policy:         core.FillSequential,
		AvailFrom:      0.5,
		AvailTo:        1.0,
		AvailSteps:     11,
		Seed:           1,
	}, nil
}

// validate rejects degenerate availability grids.
func (cfg AvailabilityConfig) validate() error {
	if cfg.AvailSteps < 1 {
		return fmt.Errorf("experiments: availability sweep needs AvailSteps >= 1, got %d", cfg.AvailSteps)
	}
	if !(cfg.AvailFrom >= 0 && cfg.AvailFrom <= 1) || !(cfg.AvailTo >= 0 && cfg.AvailTo <= 1) {
		return fmt.Errorf("experiments: availability range [%g, %g] outside [0, 1]",
			cfg.AvailFrom, cfg.AvailTo)
	}
	if cfg.AvailTo < cfg.AvailFrom {
		return fmt.Errorf("experiments: inverted availability range [%g, %g]",
			cfg.AvailFrom, cfg.AvailTo)
	}
	return cfg.Retry.Validate()
}

// grid expands the availability range into its evaluated points, in
// ascending order. Each point is computed directly from the index (not
// by repeated addition), so the grid is bit-reproducible.
func (cfg AvailabilityConfig) grid() []float64 {
	out := make([]float64, cfg.AvailSteps)
	if cfg.AvailSteps == 1 {
		out[0] = cfg.AvailFrom
		return out
	}
	span := cfg.AvailTo - cfg.AvailFrom
	for i := range out {
		out[i] = cfg.AvailFrom + span*float64(i)/float64(cfg.AvailSteps-1)
	}
	return out
}

// DegradeService returns svc with its edge+cloud cycle raised by the
// expected retry tax at the given availability. The edge-only cycle
// never touches the uplink, so it is unchanged — which is exactly why
// the crossover moves.
func DegradeService(svc core.Service, avail float64, retry faults.RetryPolicy,
	uploadEnergy, fallbackEnergy units.Joules) core.Service {
	svc.EdgeCloudCycle += units.Joules(
		retry.RetryTax(avail, float64(uploadEnergy), float64(fallbackEnergy)))
	return svc
}

// AvailabilityPoint is one availability evaluated over the full client
// range.
type AvailabilityPoint struct {
	// Availability is the per-attempt success probability.
	Availability float64
	// DeliveryProb is the chance an upload lands within the retry
	// budget; ExpectedAttempts the mean attempts consumed per upload.
	DeliveryProb     float64
	ExpectedAttempts float64
	// FirstCrossover is the smallest fleet size where edge+cloud wins
	// (0 when it never does within the swept range).
	FirstCrossover int
	// PeakAdvantage is the largest per-client saving of edge+cloud
	// over edge-only in the swept range (<= 0 when it never wins).
	PeakAdvantage units.Joules
	// EdgeJClient/CloudJClient are the per-client energies at the
	// largest swept fleet.
	EdgeJClient  units.Joules
	CloudJClient units.Joules
	// UploadP50S/UploadP99S are the measured p50/p99 upload latencies
	// (seconds, virtual time) over the point's replayed episodes; 0 when
	// no episode was delivered.
	UploadP50S float64
	UploadP99S float64
	// DeliveredFrac is the measured delivered fraction of the replayed
	// episodes.
	DeliveredFrac float64
	// Obs is the point's own metrics snapshot (link, retry and upload
	// histograms), ready for per-point SLO evaluation.
	Obs obs.Snapshot
}

// availEval is one availability point's pure evaluation, pre-commit.
// The registry rides along so the commit pass can fold every point's
// histograms into the sweep-level registry in index order.
type availEval struct {
	point AvailabilityPoint
	reg   *obs.Registry
}

// uploadEpisodes replays n upload episodes through a link armed with a
// drop probability of 1-avail, observing every episode into reg's
// netsim histograms. Episodes are spaced one routine period apart so
// the fault draws (keyed by virtual instant and attempt) decorrelate.
// Everything is a pure function of (seed, avail, n).
func uploadEpisodes(reg *obs.Registry, seed uint64, avail float64, retry faults.RetryPolicy, n int) error {
	linkCfg := netsim.DefaultConfig()
	linkCfg.Seed = rng.StreamSeed(seed, 1)
	link, err := netsim.NewLink(linkCfg)
	if err != nil {
		return err
	}
	drop := 1 - avail
	if drop < 0 {
		drop = 0
	}
	plan := faults.Plan{
		Seed: rng.StreamSeed(seed, 2),
		Link: faults.LinkFaults{DropProb: drop},
	}
	epoch := time.Unix(0, 0).UTC()
	inj, err := faults.NewInjector(plan, epoch)
	if err != nil {
		return err
	}
	link.Instrument(reg, nil, nil)
	if err := link.AttachFaults(inj, retry, reg); err != nil {
		return err
	}
	for j := 0; j < n; j++ {
		link.SendAt(epoch.Add(time.Duration(j)*Period), netsim.RoutinePayload())
	}
	return nil
}

// AvailabilitySweep evaluates the client-range sweep at every point of
// the availability grid. Points fan out across cfg.Workers workers;
// each point degrades the service by its retry tax and runs the inner
// sweep serially on an rng stream keyed by the grid index, and all
// side effects are committed serially over the index-ordered results —
// byte-identical output at any worker count.
func AvailabilitySweep(cfg AvailabilityConfig) ([]AvailabilityPoint, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	grid := cfg.grid()
	workers := parallel.Resolve(cfg.Workers)
	evals, err := parallel.Map(workers, len(grid), func(i int) (availEval, error) {
		a := grid[i]
		inner := SweepConfig{
			Service: DegradeService(cfg.Service, a, cfg.Retry, cfg.UploadEnergy, cfg.FallbackEnergy),
			Server:  cfg.Server,
			Losses:  cfg.Losses,
			From:    cfg.From, To: cfg.To, Step: cfg.Step,
			Policy:  cfg.Policy,
			Seed:    rng.StreamSeed(cfg.Seed, uint64(i)),
			Workers: 1, // nested parallelism stays in the outer fan-out
		}
		pts, err := Sweep(inner)
		if err != nil {
			return availEval{}, err
		}
		m := MilestonesOf(pts)
		last := pts[len(pts)-1]
		point := AvailabilityPoint{
			Availability:     a,
			DeliveryProb:     cfg.Retry.DeliveryProb(a),
			ExpectedAttempts: cfg.Retry.ExpectedAttempts(a),
			FirstCrossover:   m.FirstCrossover,
			PeakAdvantage:    m.PeakAdvantage,
			EdgeJClient:      last.EdgeOnly.PerClient(),
			CloudJClient:     last.EdgeCloud.PerClient(),
		}
		// Replay upload episodes on the point's own registry: the
		// stream seed is two levels below the sweep seed so it can
		// never collide with the inner sweep's stream.
		reg := obs.NewRegistry()
		samples := cfg.UploadSamples
		if samples <= 0 {
			samples = DefaultUploadSamples
		}
		if err := uploadEpisodes(reg, rng.StreamSeed(rng.StreamSeed(cfg.Seed, uint64(i)), 1<<32),
			a, cfg.Retry, samples); err != nil {
			return availEval{}, err
		}
		point.Obs = reg.Snapshot()
		if h, ok := point.Obs.FindHistogram(netsim.MetricUploadSeconds); ok {
			point.UploadP50S, _ = h.Quantile(0.5)
			point.UploadP99S, _ = h.Quantile(0.99)
		}
		if episodes, ok := point.Obs.FindCounter(netsim.MetricUploadEpisodes); ok && episodes > 0 {
			drops, _ := point.Obs.FindCounter(netsim.MetricSendDrops)
			point.DeliveredFrac = (episodes - drops) / episodes
		}
		return availEval{point: point, reg: reg}, nil
	})
	if err != nil {
		return nil, err
	}

	parallel.Record(cfg.Metrics, workers)
	mPoints := cfg.Metrics.Counter(MetricAvailPoints)
	hCrossover := cfg.Metrics.Histogram(MetricAvailCrossover)
	epoch := time.Unix(0, 0).UTC()
	out := make([]AvailabilityPoint, 0, len(grid))
	for i, ev := range evals {
		p := ev.point
		mPoints.Inc()
		if p.FirstCrossover > 0 {
			hCrossover.Observe(float64(p.FirstCrossover))
		}
		// Fold the point's upload histograms into the sweep registry.
		// The commit pass runs in index order at any worker count, so
		// the merged registry snapshots to identical bytes.
		cfg.Metrics.Merge(ev.reg)
		at := epoch.Add(time.Duration(i) * time.Millisecond)
		cfg.Tracer.Span(fmt.Sprintf("availability %.2f", p.Availability), "sweep",
			obs.TidEngine, at, time.Millisecond, map[string]any{
				"availability":    p.Availability,
				"delivery_prob":   p.DeliveryProb,
				"first_crossover": p.FirstCrossover,
				"cloud_j_client":  float64(p.CloudJClient),
			})
		if cfg.Ledger != nil {
			hive := fmt.Sprintf("avail-%.2f", p.Availability)
			cfg.Ledger.Append(ledger.Entry{
				T: at, Hive: hive, Device: "edge", Component: "pi3b",
				Task: "edge-only per-client cycle", Dir: ledger.Consume,
				Joules: float64(p.EdgeJClient), Seconds: Period.Seconds(),
			})
			cfg.Ledger.Append(ledger.Entry{
				T: at, Hive: hive, Device: "fleet", Component: "edge+cloud",
				Task: "degraded edge+cloud per-client cycle", Dir: ledger.Consume,
				Joules: float64(p.CloudJClient), Seconds: Period.Seconds(),
			})
		}
		out = append(out, p)
	}
	return out, nil
}

// AvailabilitySeries converts availability points into chart/CSV
// series over the availability axis: per-client energies of both
// scenarios at the largest fleet, the first-crossover fleet size, the
// delivery probability, and the measured p50/p99 upload latencies.
func AvailabilitySeries(points []AvailabilityPoint) (edge, cloud, crossover, delivered, uploadP50, uploadP99 report.Series, err error) {
	n := len(points)
	x := make([]float64, n)
	ye := make([]float64, n)
	yc := make([]float64, n)
	yx := make([]float64, n)
	yd := make([]float64, n)
	y50 := make([]float64, n)
	y99 := make([]float64, n)
	for i, p := range points {
		x[i] = p.Availability
		ye[i] = float64(p.EdgeJClient)
		yc[i] = float64(p.CloudJClient)
		yx[i] = float64(p.FirstCrossover)
		yd[i] = p.DeliveryProb
		y50[i] = p.UploadP50S
		y99[i] = p.UploadP99S
	}
	if edge, err = report.NewSeries("edge J/client", x, ye); err != nil {
		return
	}
	if cloud, err = report.NewSeries("edge+cloud J/client", x, yc); err != nil {
		return
	}
	if crossover, err = report.NewSeries("first crossover (clients)", x, yx); err != nil {
		return
	}
	if delivered, err = report.NewSeries("delivery probability", x, yd); err != nil {
		return
	}
	if uploadP50, err = report.NewSeries("upload p50 (s)", x, y50); err != nil {
		return
	}
	uploadP99, err = report.NewSeries("upload p99 (s)", x, y99)
	return
}
