package experiments

import (
	"errors"
	"fmt"
	"time"

	"beesim/internal/adaptive"
	"beesim/internal/deployment"
	"beesim/internal/parallel"
	"beesim/internal/routine"
	"beesim/internal/solar"
	"beesim/internal/units"
)

// This file holds the extension experiments beyond the paper's figures:
// the seasonal energy study, the five-hive apiary reproduction, and the
// adaptive-policy comparison the paper's future-work section sketches.

// SeasonPoint is one month's deployment summary.
type SeasonPoint struct {
	Month time.Month
	// RoutinesPerDay is the achieved data-collection cadence.
	RoutinesPerDay float64
	// MissedPerDay is the wake-ups lost to outages.
	MissedPerDay float64
	// HarvestPerDay and ConsumptionPerDay summarize the energy balance.
	HarvestPerDay     units.Joules
	ConsumptionPerDay units.Joules
}

// Seasonal runs the deployment simulation for a few days in every month
// of 2023 and summarizes the seasonal energy balance — quantifying how
// far the paper's spring observations generalize across the year.
func Seasonal(loc solar.Location, daysPerMonth int, wake time.Duration) ([]SeasonPoint, error) {
	if daysPerMonth <= 0 {
		return nil, errors.New("experiments: non-positive days per month")
	}
	// The twelve month-long deployments are independent (each already
	// owns a fixed per-month seed), so they fan out across the default
	// worker pool; the index-ordered merge keeps January first.
	return parallel.Map(0, 12, func(i int) (SeasonPoint, error) {
		m := time.January + time.Month(i)
		cfg := deployment.DefaultConfig()
		cfg.Location = loc
		cfg.Start = time.Date(2023, m, 10, 0, 0, 0, 0, time.UTC)
		cfg.Days = daysPerMonth
		cfg.WakePeriod = wake
		cfg.Seed = uint64(m)
		tr, err := deployment.Run(cfg)
		if err != nil {
			return SeasonPoint{}, fmt.Errorf("experiments: month %v: %w", m, err)
		}
		days := float64(daysPerMonth)
		return SeasonPoint{
			Month:             m,
			RoutinesPerDay:    float64(tr.Wakeups) / days,
			MissedPerDay:      float64(tr.MissedWakeups) / days,
			HarvestPerDay:     tr.HarvestedEnergy / units.Joules(days),
			ConsumptionPerDay: (tr.RecorderEnergy + tr.MonitorEnergy) / units.Joules(days),
		}, nil
	})
}

// ApiaryHive describes one deployed hive of the paper's fleet.
type ApiaryHive struct {
	Name     string
	Location solar.Location
	Seed     uint64
}

// PaperApiary returns the paper's deployment: "Five smart beehives are
// currently deployed. Two are located to the South of Paris in Cachan,
// and the others are in Lyon."
func PaperApiary() []ApiaryHive {
	return []ApiaryHive{
		{Name: "cachan-1", Location: solar.Cachan, Seed: 11},
		{Name: "cachan-2", Location: solar.Cachan, Seed: 12},
		{Name: "lyon-1", Location: solar.Lyon, Seed: 21},
		{Name: "lyon-2", Location: solar.Lyon, Seed: 22},
		{Name: "lyon-3", Location: solar.Lyon, Seed: 23},
	}
}

// ApiaryResult is one hive's trace summary.
type ApiaryResult struct {
	Hive  ApiaryHive
	Trace *deployment.Trace
}

// Apiary runs the full five-hive deployment for the given duration.
func Apiary(days int, wake time.Duration) ([]ApiaryResult, error) {
	if days <= 0 {
		return nil, errors.New("experiments: non-positive day count")
	}
	hives := PaperApiary()
	// One deployment per hive, each on its own fixed seed: embarrassingly
	// parallel, merged back in fleet order.
	return parallel.Map(0, len(hives), func(i int) (ApiaryResult, error) {
		h := hives[i]
		cfg := deployment.DefaultConfig()
		cfg.Location = h.Location
		cfg.Days = days
		cfg.WakePeriod = wake
		cfg.Seed = h.Seed
		tr, err := deployment.Run(cfg)
		if err != nil {
			return ApiaryResult{}, fmt.Errorf("experiments: hive %s: %w", h.Name, err)
		}
		return ApiaryResult{Hive: h, Trace: tr}, nil
	})
}

// PolicyComparison runs the adaptive-orchestration study: the fixed
// deployed behaviour against the threshold and forecast controllers,
// through identical weather.
func PolicyComparison(cfg adaptive.Config) ([]adaptive.Result, error) {
	return adaptive.Compare(cfg,
		adaptive.FixedPolicy{Action: adaptive.Action{
			Period: 10 * time.Minute, Placement: routine.EdgeOnly}},
		adaptive.FixedPolicy{Action: adaptive.Action{
			Period: 2 * time.Hour, Placement: routine.EdgeOnly}},
		adaptive.DefaultThreshold(),
		adaptive.DefaultForecast(),
	)
}
