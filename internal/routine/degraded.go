// Graceful degradation of the wake-up routine under uplink faults: a
// bounded buffer-and-drain queue for undelivered payloads, a local
// inference fallback while the cloud is unreachable, and a campaign
// variant that replays the Section-IV measurement loop through a fault
// plan.

package routine

import (
	"errors"
	"fmt"
	"time"

	"beesim/internal/faults"
	"beesim/internal/ledger"
	"beesim/internal/netsim"
	"beesim/internal/obs"
	"beesim/internal/power"
	"beesim/internal/stats"
	"beesim/internal/units"
)

// DefaultUploadBufferCap is the buffer depth used when a config leaves
// it zero: roughly 2.5 hours of 10-minute routines fit before data
// starts falling off the back.
const DefaultUploadBufferCap = 16

// Metric names emitted by an instrumented faulty campaign, alongside
// the link and retry metrics the netsim probes register.
const (
	// MetricWakeupAttempts distributes total send attempts per wake-up
	// (fresh upload plus backlog drain).
	MetricWakeupAttempts = "routine_wakeup_attempts"
	// MetricFallbackJ distributes the edge energy of each local
	// queen-detection inference run — the per-detection energy paid when
	// the cloud is unreachable.
	MetricFallbackJ = "routine_fallback_j"
)

// UploadBuffer is a bounded FIFO of upload payloads that could not be
// delivered. When full, the oldest payload is evicted to make room —
// on a hive monitor the newest observations are the valuable ones —
// and counted as dropped.
type UploadBuffer struct {
	capacity int
	q        []netsim.Bytes
	dropped  int
}

// NewUploadBuffer creates a buffer holding at most capacity payloads
// (capacity <= 0 selects DefaultUploadBufferCap).
func NewUploadBuffer(capacity int) *UploadBuffer {
	if capacity <= 0 {
		capacity = DefaultUploadBufferCap
	}
	return &UploadBuffer{capacity: capacity}
}

// Push enqueues p, evicting the oldest payload when the buffer is
// full. It reports whether an eviction happened.
func (b *UploadBuffer) Push(p netsim.Bytes) bool {
	evicted := false
	if len(b.q) >= b.capacity {
		copy(b.q, b.q[1:])
		b.q = b.q[:len(b.q)-1]
		b.dropped++
		evicted = true
	}
	b.q = append(b.q, p)
	return evicted
}

// PushFront returns p to the head of the queue — used when a drain
// attempt fails and the payload must keep its place in line. If the
// buffer is full the newest payload is evicted instead of the
// returning one.
func (b *UploadBuffer) PushFront(p netsim.Bytes) {
	if len(b.q) >= b.capacity {
		b.q = b.q[:len(b.q)-1]
		b.dropped++
	}
	b.q = append(b.q, 0)
	copy(b.q[1:], b.q)
	b.q[0] = p
}

// Pop dequeues the oldest payload.
func (b *UploadBuffer) Pop() (netsim.Bytes, bool) {
	if len(b.q) == 0 {
		return 0, false
	}
	p := b.q[0]
	copy(b.q, b.q[1:])
	b.q = b.q[:len(b.q)-1]
	return p, true
}

// Len returns the number of buffered payloads.
func (b *UploadBuffer) Len() int { return len(b.q) }

// Cap returns the buffer's capacity.
func (b *UploadBuffer) Cap() int { return b.capacity }

// Dropped returns how many payloads were evicted over the buffer's
// lifetime.
func (b *UploadBuffer) Dropped() int { return b.dropped }

// FaultyCampaignConfig parameterizes a degraded measurement campaign.
type FaultyCampaignConfig struct {
	// Link is the uplink the campaign sends over.
	Link netsim.Config
	// Plan is the fault plan; its seed drives every fault decision and
	// its retry policy (or the default) governs the backoff.
	Plan faults.Plan
	// Start anchors the plan's windows and keys the per-attempt draws.
	Start time.Time
	// Period separates consecutive wake-ups.
	Period time.Duration
	// Routines is the campaign length (the paper ran 319).
	Routines int
	// BufferCap bounds the buffer-and-drain queue (0 = default).
	BufferCap int
	// Metrics, when non-nil, receives the link and retry counters.
	Metrics *obs.Registry
	// Ledger, when non-nil, receives the radio's transfer and retry
	// energy as attribution-only entries under Hive.
	Ledger *ledger.Ledger
	// Hive labels the ledger entries.
	Hive string
}

// FaultyCampaignStats summarizes a degraded campaign. Payloads are
// conserved: Delivered + Flushed + Buffered + Dropped == Routines.
type FaultyCampaignStats struct {
	Routines int
	// Delivered counts payloads uploaded on their own wake-up.
	Delivered int
	// Flushed counts buffered payloads drained on a later wake-up.
	Flushed int
	// Buffered counts payloads still queued when the campaign ended.
	Buffered int
	// Dropped counts payloads evicted from the full buffer (data lost).
	Dropped int
	// Fallbacks counts wake-ups that ran the queen-detection model
	// locally because the upload never went through.
	Fallbacks int
	// Attempts is the total send attempts across fresh and drain
	// uploads; Failures is how many of them failed.
	Attempts int
	Failures int
	// RetryEnergy is the radio energy burned by failed attempts.
	RetryEnergy units.Joules
	// FallbackEnergy is the edge energy spent on local inference runs.
	FallbackEnergy units.Joules
}

// DeliveredAll returns fresh plus flushed deliveries.
func (s FaultyCampaignStats) DeliveredAll() int { return s.Delivered + s.Flushed }

// Conserved reports whether every routine's payload is accounted for.
func (s FaultyCampaignStats) Conserved() bool {
	return s.Delivered+s.Flushed+s.Buffered+s.Dropped == s.Routines
}

// SimulateFaultyCampaign replays a measurement campaign through a
// fault plan: each wake-up tries to upload its routine payload with
// retry/backoff; a failed upload is buffered and the edge falls back
// to local CNN inference so the hive is never blind; the next
// successful wake-up drains the buffer in FIFO order until a send
// fails again. Everything is deterministic in (cfg.Link.Seed,
// cfg.Plan.Seed, cfg.Start): the fault schedule is a pure function of
// virtual time, so two runs of the same config agree field for field.
func SimulateFaultyCampaign(pi power.Pi3B, cfg FaultyCampaignConfig) (FaultyCampaignStats, error) {
	if cfg.Routines <= 0 {
		return FaultyCampaignStats{}, errors.New("routine: campaign needs Routines > 0")
	}
	if cfg.Period <= 0 {
		return FaultyCampaignStats{}, errors.New("routine: campaign needs Period > 0")
	}
	link, err := netsim.NewLink(cfg.Link)
	if err != nil {
		return FaultyCampaignStats{}, err
	}
	inj, err := faults.NewInjector(cfg.Plan, cfg.Start)
	if err != nil {
		return FaultyCampaignStats{}, err
	}
	link.Instrument(cfg.Metrics, nil, nil)
	if err := link.AttachFaults(inj, cfg.Plan.RetryOrDefault(), cfg.Metrics); err != nil {
		return FaultyCampaignStats{}, err
	}
	if cfg.Ledger != nil {
		// SendAt stamps ledger entries with its explicit virtual time;
		// the clock only needs to be non-nil to arm the probe.
		epoch := cfg.Start
		link.AttachLedger(cfg.Ledger, cfg.Hive, func() time.Time { return epoch })
	}

	buf := NewUploadBuffer(cfg.BufferCap)
	fallback := pi.InferCNN()
	hAttempts := cfg.Metrics.Histogram(MetricWakeupAttempts)
	hFallbackJ := cfg.Metrics.Histogram(MetricFallbackJ)
	st := FaultyCampaignStats{Routines: cfg.Routines}
	var retryE, fallbackE stats.Kahan
	for i := 0; i < cfg.Routines; i++ {
		at := cfg.Start.Add(time.Duration(i) * cfg.Period)
		out := link.SendAt(at, netsim.RoutinePayload())
		st.Attempts += out.Attempts
		retryE.Add(float64(out.RetryEnergy))
		if !out.Delivered {
			st.Failures += out.Attempts
			buf.Push(netsim.RoutinePayload())
			st.Fallbacks++
			fallbackE.Add(float64(fallback.Energy))
			hAttempts.Observe(float64(out.Attempts))
			hFallbackJ.Observe(float64(fallback.Energy))
			continue
		}
		st.Failures += out.Attempts - 1
		st.Delivered++
		wakeAttempts := out.Attempts
		// Recovery: drain the backlog behind the fresh upload until a
		// send fails again or the queue empties.
		t := at.Add(out.TotalDuration)
		for buf.Len() > 0 {
			p, _ := buf.Pop()
			drain := link.SendAt(t, p)
			st.Attempts += drain.Attempts
			wakeAttempts += drain.Attempts
			retryE.Add(float64(drain.RetryEnergy))
			if !drain.Delivered {
				st.Failures += drain.Attempts
				buf.PushFront(p)
				break
			}
			st.Failures += drain.Attempts - 1
			st.Flushed++
			t = t.Add(drain.TotalDuration)
		}
		hAttempts.Observe(float64(wakeAttempts))
	}
	st.Buffered = buf.Len()
	st.Dropped = buf.Dropped()
	st.RetryEnergy = units.Joules(retryE.Sum())
	st.FallbackEnergy = units.Joules(fallbackE.Sum())
	if !st.Conserved() {
		return st, fmt.Errorf("routine: campaign payloads not conserved: %+v", st)
	}
	return st, nil
}
