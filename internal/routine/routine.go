// Package routine assembles the edge device's duty cycles: the exact
// task timelines behind the paper's Table I (edge scenario) and Table II
// (edge+cloud scenario), and the Section-IV measurement campaign whose
// statistics calibrate everything downstream.
//
// A cycle covers one wake-up period. In the edge scenario the Raspberry
// Pi 3B+ wakes, collects data, runs the queen-detection model locally,
// sends only the result, and shuts down. In the edge+cloud scenario it
// uploads the audio instead and the cloud executes the model while the
// edge is still shutting down — which is why the tables split the
// shutdown row in two at the model-execution boundary.
package routine

import (
	"errors"
	"fmt"
	"time"

	"beesim/internal/ledger"
	"beesim/internal/netsim"
	"beesim/internal/obs"
	"beesim/internal/parallel"
	"beesim/internal/power"
	"beesim/internal/rng"
	"beesim/internal/stats"
	"beesim/internal/units"
)

// Model selects the queen-detection classifier.
type Model int

// Queen-detection model choices of Section V.
const (
	SVM Model = iota
	CNN
)

// String returns the model's name.
func (m Model) String() string {
	switch m {
	case SVM:
		return "SVM"
	case CNN:
		return "CNN"
	default:
		return fmt.Sprintf("Model(%d)", int(m))
	}
}

// Placement selects where the service runs.
type Placement int

// The two scenarios of Section V.
const (
	// EdgeOnly: collect, infer locally, send only the result.
	EdgeOnly Placement = iota
	// EdgeCloud: collect, upload audio, the cloud infers.
	EdgeCloud
)

// String returns the placement's name.
func (p Placement) String() string {
	switch p {
	case EdgeOnly:
		return "edge"
	case EdgeCloud:
		return "edge+cloud"
	default:
		return fmt.Sprintf("Placement(%d)", int(p))
	}
}

// Spec selects one scenario variant.
type Spec struct {
	Period    time.Duration
	Model     Model
	Placement Placement
}

// Cycle is a fully assembled wake-up cycle: parallel edge and cloud task
// timelines covering exactly one period.
type Cycle struct {
	Spec       Spec
	EdgeTasks  []power.Task
	CloudTasks []power.Task // empty in the edge scenario
}

// EdgeEnergy returns the edge device's energy over the cycle.
func (c Cycle) EdgeEnergy() units.Joules {
	e, _ := power.Sum(c.EdgeTasks)
	return e
}

// CloudEnergy returns the cloud server's energy over the cycle (zero in
// the edge scenario).
func (c Cycle) CloudEnergy() units.Joules {
	e, _ := power.Sum(c.CloudTasks)
	return e
}

// TotalEnergy returns the system-wide energy of the cycle.
func (c Cycle) TotalEnergy() units.Joules { return c.EdgeEnergy() + c.CloudEnergy() }

// Duration returns the edge timeline length (always the full period).
func (c Cycle) Duration() time.Duration {
	_, d := power.Sum(c.EdgeTasks)
	return d
}

// Trace emits the cycle's task timelines into tr starting at start: the
// edge tasks on the routine track and the cloud tasks on the server
// track, each span carrying its joules and mean watts. This is Table
// I/II as a timeline — load the JSON in Perfetto to see the shutdown
// split of the edge+cloud scenario. A nil tracer is a no-op.
func (c Cycle) Trace(tr *obs.Tracer, start time.Time) {
	c.TraceCtx(tr, start, nil)
}

// TraceCtx is Trace with span identity: each task span becomes a child
// of sc (kinds "edge"/"cloud", indexed by task position) so the whole
// wake-up joins one causal trace. A nil sc is exactly Trace.
func (c Cycle) TraceCtx(tr *obs.Tracer, start time.Time, sc *obs.SpanContext) {
	traceTasks(tr, "edge", obs.TidRoutine, start, c.EdgeTasks, sc)
	traceTasks(tr, "cloud", obs.TidServer, start, c.CloudTasks, sc)
}

func traceTasks(tr *obs.Tracer, cat string, tid int, start time.Time, tasks []power.Task, sc *obs.SpanContext) {
	at := start
	for i, t := range tasks {
		args := map[string]any{
			"joules": float64(t.Energy),
			"watts":  float64(t.Power()),
		}
		if sc != nil {
			tr.SpanCtx(sc.Child(cat, uint64(i)), t.Name, cat, tid, at, t.Duration, args)
		} else {
			tr.Span(t.Name, cat, tid, at, t.Duration, args)
		}
		at = at.Add(t.Duration)
	}
}

// RecordLedger appends the cycle's task timelines to the energy ledger
// starting at start — the ledger twin of Trace. Edge tasks draw from
// the hive's battery, so they are store-bound ("battery"); cloud tasks
// run on grid power and enter as attribution-only entries, keeping them
// out of the battery's conservation balance while still visible in
// per-task breakdowns (Table II's right-hand column). It returns the
// time after the edge timeline. A nil ledger records nothing.
func (c Cycle) RecordLedger(lg *ledger.Ledger, hive string, start time.Time) time.Time {
	end := power.RecordTasks(lg, start, hive, "edge", "pi3b", "battery", c.EdgeTasks)
	power.RecordTasks(lg, start, hive, "cloud", "server", "", c.CloudTasks)
	return end
}

// Build assembles the cycle for a spec from the calibrated device models.
// It fails if the period cannot contain the active tasks.
func Build(pi power.Pi3B, cloud power.Cloud, spec Spec) (Cycle, error) {
	if spec.Period <= 0 {
		return Cycle{}, errors.New("routine: non-positive period")
	}
	switch spec.Placement {
	case EdgeOnly:
		return buildEdge(pi, spec)
	case EdgeCloud:
		return buildEdgeCloud(pi, cloud, spec)
	default:
		return Cycle{}, fmt.Errorf("routine: unknown placement %d", spec.Placement)
	}
}

func buildEdge(pi power.Pi3B, spec Spec) (Cycle, error) {
	var infer power.Task
	switch spec.Model {
	case SVM:
		infer = pi.InferSVM()
	case CNN:
		infer = pi.InferCNN()
	default:
		return Cycle{}, fmt.Errorf("routine: unknown model %d", spec.Model)
	}
	active := []power.Task{pi.WakeAndCollect(), infer, pi.SendResults(), pi.Shutdown()}
	_, activeDur := power.Sum(active)
	if activeDur >= spec.Period {
		return Cycle{}, fmt.Errorf("routine: active tasks (%v) exceed period %v",
			activeDur, spec.Period)
	}
	tasks := append([]power.Task{pi.Sleep(spec.Period - activeDur)}, active...)
	return Cycle{Spec: spec, EdgeTasks: tasks}, nil
}

func buildEdgeCloud(pi power.Pi3B, cloud power.Cloud, spec Spec) (Cycle, error) {
	var exec power.Task
	switch spec.Model {
	case SVM:
		exec = cloud.ExecSVM()
	case CNN:
		exec = cloud.ExecCNN()
	default:
		return Cycle{}, fmt.Errorf("routine: unknown model %d", spec.Model)
	}
	collect := pi.WakeAndCollect()
	send := pi.SendAudio()
	shutdown := pi.Shutdown()
	if exec.Duration >= shutdown.Duration {
		return Cycle{}, fmt.Errorf(
			"routine: cloud execution (%v) outlasts the edge shutdown (%v); the table split assumes otherwise",
			exec.Duration, shutdown.Duration)
	}

	activeDur := collect.Duration + send.Duration + shutdown.Duration
	if activeDur >= spec.Period {
		return Cycle{}, fmt.Errorf("routine: active tasks (%v) exceed period %v",
			activeDur, spec.Period)
	}
	sleep := pi.Sleep(spec.Period - activeDur)

	// The shutdown is split at the instant the cloud finishes executing
	// the model, mirroring the two shutdown rows of Table II.
	shutdownPower := shutdown.Power()
	shutdownA := power.Task{
		Name:     "Shutdown",
		Energy:   shutdownPower.Energy(exec.Duration),
		Duration: exec.Duration,
	}
	shutdownB := power.Task{
		Name:     "Shutdown",
		Energy:   shutdown.Energy - shutdownA.Energy,
		Duration: shutdown.Duration - exec.Duration,
	}

	edge := []power.Task{sleep, collect, send, shutdownA, shutdownB}
	cloudTasks := []power.Task{
		cloud.Idle(sleep.Duration),
		cloud.Idle(collect.Duration),
		cloud.Receive(),
		exec,
		cloud.Idle(shutdownB.Duration),
	}
	return Cycle{Spec: spec, EdgeTasks: edge, CloudTasks: cloudTasks}, nil
}

// CampaignStats summarizes a simulated Section-IV measurement campaign.
type CampaignStats struct {
	Routines     int
	MeanDuration time.Duration
	SDDuration   time.Duration
	MeanPower    units.Watts
	SDPower      units.Watts
	MeanEnergy   units.Joules
}

// SimulateCampaign replays n data-collection routines (boot, collect,
// upload over the jittery link, shutdown) and summarizes them the way
// Section IV does. The paper's campaign: 319 routines, mean 1 m 29 s,
// sigma 3.5 s, mean power 2.14 W, sigma 0.009 W, 190.1 J per routine.
func SimulateCampaign(pi power.Pi3B, link *netsim.Link, n int) (CampaignStats, error) {
	if n <= 0 {
		return CampaignStats{}, errors.New("routine: campaign needs n > 0")
	}
	if link == nil {
		return CampaignStats{}, errors.New("routine: nil link")
	}
	routine := pi.Routine()
	send := pi.SendAudio()
	// Fixed (non-network) portion of the routine: everything but the
	// nominal 15 s transfer. Only the transfer length varies between
	// routines; the transfer runs at the send-audio power. This is why
	// the paper sees large duration spread (sigma 3.5 s) but nearly
	// constant mean power (sigma 0.009 W): the send power (2.49 W) is
	// close to the routine mean (2.14 W), so stretching the transfer
	// barely moves the average.
	fixedDur := routine.Duration - send.Duration
	fixedEnergy := routine.Energy - send.Energy

	var durs, powers, energies stats.Online
	for i := 0; i < n; i++ {
		tr := link.Send(netsim.RoutinePayload())
		d := fixedDur + tr.Duration
		e := float64(fixedEnergy) + float64(send.Power().Energy(tr.Duration))
		durs.Add(d.Seconds())
		powers.Add(e / d.Seconds())
		energies.Add(e)
	}
	return CampaignStats{
		Routines:     n,
		MeanDuration: time.Duration(durs.Mean() * float64(time.Second)),
		SDDuration:   time.Duration(durs.StdDev() * float64(time.Second)),
		MeanPower:    units.Watts(powers.Mean()),
		SDPower:      units.Watts(powers.StdDev()),
		MeanEnergy:   units.Joules(energies.Mean()),
	}, nil
}

// campaignBatch is the fixed number of routines per parallel campaign
// batch. It is part of the determinism contract, not a tuning knob:
// each batch owns an rng stream keyed by its batch index, so changing
// the batch size changes which draws land in which routine. Worker
// counts only decide who evaluates a batch, never where it starts.
const campaignBatch = 64

// campaignSample is one routine's duration and energy.
type campaignSample struct {
	seconds float64
	joules  float64
}

// SimulateCampaignParallel replays the Section-IV campaign like
// SimulateCampaign but fans fixed-size batches of routines across
// workers. Every batch builds its own link whose seed is the
// rng.StreamSeed of (cfg.Seed, batch index), so the sampled transfers
// are a pure function of the configuration — byte-identical for every
// worker count, including the workers=1 serial path. The Welford
// accumulation happens in a serial pass over the batch-ordered samples
// because its float sums are order-sensitive.
//
// Note the sampling scheme differs from SimulateCampaign, which draws
// all n routines from one sequential stream; the two agree in
// distribution but not draw-for-draw.
func SimulateCampaignParallel(pi power.Pi3B, cfg netsim.Config, n, workers int) (CampaignStats, error) {
	if n <= 0 {
		return CampaignStats{}, errors.New("routine: campaign needs n > 0")
	}
	routine := pi.Routine()
	send := pi.SendAudio()
	fixedDur := routine.Duration - send.Duration
	fixedEnergy := routine.Energy - send.Energy

	batches := (n + campaignBatch - 1) / campaignBatch
	sampled, err := parallel.Map(workers, batches, func(b int) ([]campaignSample, error) {
		linkCfg := cfg
		linkCfg.Seed = rng.StreamSeed(cfg.Seed, uint64(b))
		link, err := netsim.NewLink(linkCfg)
		if err != nil {
			return nil, err
		}
		size := campaignBatch
		if rest := n - b*campaignBatch; rest < size {
			size = rest
		}
		out := make([]campaignSample, size)
		for i := range out {
			tr := link.Send(netsim.RoutinePayload())
			d := fixedDur + tr.Duration
			e := float64(fixedEnergy) + float64(send.Power().Energy(tr.Duration))
			out[i] = campaignSample{seconds: d.Seconds(), joules: e}
		}
		return out, nil
	})
	if err != nil {
		return CampaignStats{}, err
	}

	var durs, powers, energies stats.Online
	for _, batch := range sampled {
		for _, s := range batch {
			durs.Add(s.seconds)
			powers.Add(s.joules / s.seconds)
			energies.Add(s.joules)
		}
	}
	return CampaignStats{
		Routines:     n,
		MeanDuration: time.Duration(durs.Mean() * float64(time.Second)),
		SDDuration:   time.Duration(durs.StdDev() * float64(time.Second)),
		MeanPower:    units.Watts(powers.Mean()),
		SDPower:      units.Watts(powers.StdDev()),
		MeanEnergy:   units.Joules(energies.Mean()),
	}, nil
}
