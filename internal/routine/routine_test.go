package routine

import (
	"math"
	"testing"
	"time"

	"beesim/internal/ledger"
	"beesim/internal/netsim"
	"beesim/internal/power"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func build(t *testing.T, spec Spec) Cycle {
	t.Helper()
	c, err := Build(power.DefaultPi3B(), power.DefaultCloud(), spec)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

var fiveMin = 5 * time.Minute

// TestTableIEdgeSVM checks the cycle against Table I's SVM column.
func TestTableIEdgeSVM(t *testing.T) {
	c := build(t, Spec{Period: fiveMin, Model: SVM, Placement: EdgeOnly})
	rows := []struct {
		name    string
		joules  float64
		seconds float64
	}{
		{"Sleep", 111.6, 178.5},
		{"Wake up & Data collection", 131.8, 64.0},
		{"Queen detection model (SVM)", 98.9, 46.1},
		{"Send results", 3.0, 1.5},
		{"Shutdown", 21.0, 9.9},
	}
	if len(c.EdgeTasks) != len(rows) {
		t.Fatalf("edge tasks = %d, want %d", len(c.EdgeTasks), len(rows))
	}
	for i, row := range rows {
		task := c.EdgeTasks[i]
		if task.Name != row.name {
			t.Errorf("row %d name = %q, want %q", i, task.Name, row.name)
		}
		if !almostEq(float64(task.Energy), row.joules, 0.1) {
			t.Errorf("row %d energy = %v, want %v J", i, task.Energy, row.joules)
		}
		if !almostEq(task.Duration.Seconds(), row.seconds, 0.01) {
			t.Errorf("row %d duration = %v, want %v s", i, task.Duration, row.seconds)
		}
	}
	// Table I total: 366.3 J over 300 s.
	if !almostEq(float64(c.EdgeEnergy()), 366.3, 0.2) {
		t.Errorf("total edge energy = %v, want 366.3 J", c.EdgeEnergy())
	}
	if !almostEq(c.Duration().Seconds(), 300, 1e-9) {
		t.Errorf("cycle duration = %v, want 300 s", c.Duration())
	}
	if len(c.CloudTasks) != 0 || c.CloudEnergy() != 0 {
		t.Error("edge scenario must have no cloud tasks")
	}
}

// TestTableIEdgeCNN checks the cycle against Table I's CNN column.
func TestTableIEdgeCNN(t *testing.T) {
	c := build(t, Spec{Period: fiveMin, Model: CNN, Placement: EdgeOnly})
	// Sleep stretches to fill the shorter CNN inference: 187.0 s.
	if !almostEq(c.EdgeTasks[0].Duration.Seconds(), 187.0, 0.01) {
		t.Errorf("CNN sleep = %v, want 187.0 s", c.EdgeTasks[0].Duration)
	}
	if !almostEq(float64(c.EdgeTasks[0].Energy), 116.9, 0.1) {
		t.Errorf("CNN sleep energy = %v, want 116.9 J", c.EdgeTasks[0].Energy)
	}
	// Table I total: 367.5 J.
	if !almostEq(float64(c.EdgeEnergy()), 367.5, 0.2) {
		t.Errorf("total = %v, want 367.5 J", c.EdgeEnergy())
	}
}

// TestTableIIEdgeCloudSVM checks both timelines of Table II (SVM).
func TestTableIIEdgeCloudSVM(t *testing.T) {
	c := build(t, Spec{Period: fiveMin, Model: SVM, Placement: EdgeCloud})

	edgeRows := []struct {
		joules  float64
		seconds float64
	}{
		{131.9, 211.1}, // sleep
		{131.8, 64.0},  // wake & collect
		{37.3, 15.0},   // send audio
		{0.2, 0.1},     // shutdown (during cloud exec)
		{20.8, 9.8},    // shutdown (rest)
	}
	for i, row := range edgeRows {
		task := c.EdgeTasks[i]
		if !almostEq(float64(task.Energy), row.joules, 0.1) {
			t.Errorf("edge row %d energy = %v, want %v J", i, task.Energy, row.joules)
		}
		if !almostEq(task.Duration.Seconds(), row.seconds, 0.01) {
			t.Errorf("edge row %d duration = %v, want %v s", i, task.Duration, row.seconds)
		}
	}
	// Edge total: 322.0 J.
	if !almostEq(float64(c.EdgeEnergy()), 322.0, 0.2) {
		t.Errorf("edge total = %v, want 322.0 J", c.EdgeEnergy())
	}

	cloudRows := []struct {
		joules  float64
		seconds float64
	}{
		{9415, 211.1}, // idle during sleep
		{2854, 64.0},  // idle during collection
		{1032, 15.0},  // receive audio
		{6.3, 0.1},    // SVM execution
		{437, 9.8},    // idle during the rest of the shutdown
	}
	for i, row := range cloudRows {
		task := c.CloudTasks[i]
		if !almostEq(float64(task.Energy), row.joules, 1.0) {
			t.Errorf("cloud row %d energy = %v, want %v J", i, task.Energy, row.joules)
		}
		if !almostEq(task.Duration.Seconds(), row.seconds, 0.01) {
			t.Errorf("cloud row %d duration = %v, want %v s", i, task.Duration, row.seconds)
		}
	}
	// Cloud total: 13 744.3 J.
	if !almostEq(float64(c.CloudEnergy()), 13744.3, 2) {
		t.Errorf("cloud total = %v, want 13744.3 J", c.CloudEnergy())
	}
}

// TestTableIIEdgeCloudCNN checks the CNN variant's distinctive rows.
func TestTableIIEdgeCloudCNN(t *testing.T) {
	c := build(t, Spec{Period: fiveMin, Model: CNN, Placement: EdgeCloud})
	// Shutdown split at 1.0 s (CNN exec): 2.1 J + 18.9 J.
	if !almostEq(float64(c.EdgeTasks[3].Energy), 2.1, 0.05) {
		t.Errorf("shutdown A = %v, want 2.1 J", c.EdgeTasks[3].Energy)
	}
	if !almostEq(float64(c.EdgeTasks[4].Energy), 18.9, 0.05) {
		t.Errorf("shutdown B = %v, want 18.9 J", c.EdgeTasks[4].Energy)
	}
	if !almostEq(float64(c.EdgeEnergy()), 322.0, 0.2) {
		t.Errorf("edge total = %v, want 322.0 J", c.EdgeEnergy())
	}
	// CNN exec 108 J, trailing idle 397 J; cloud total 13 806 J.
	if !almostEq(float64(c.CloudTasks[3].Energy), 108, 0.01) {
		t.Errorf("CNN exec = %v, want 108 J", c.CloudTasks[3].Energy)
	}
	if !almostEq(float64(c.CloudTasks[4].Energy), 397, 1) {
		t.Errorf("trailing idle = %v, want 397 J", c.CloudTasks[4].Energy)
	}
	if !almostEq(float64(c.CloudEnergy()), 13806, 2) {
		t.Errorf("cloud total = %v, want 13806 J", c.CloudEnergy())
	}
}

// TestEdgeSavingMatchesPaper: the paper reports the edge consumes 12.1%
// (SVM) / 12.4% (CNN) less in the edge+cloud scenario.
func TestEdgeSavingMatchesPaper(t *testing.T) {
	for _, tc := range []struct {
		model Model
		want  float64
	}{
		{SVM, 12.1},
		{CNN, 12.4},
	} {
		edge := build(t, Spec{Period: fiveMin, Model: tc.model, Placement: EdgeOnly})
		ec := build(t, Spec{Period: fiveMin, Model: tc.model, Placement: EdgeCloud})
		saving := (1 - float64(ec.EdgeEnergy())/float64(edge.EdgeEnergy())) * 100
		if !almostEq(saving, tc.want, 0.2) {
			t.Errorf("%v edge saving = %.2f%%, want %.1f%%", tc.model, saving, tc.want)
		}
	}
}

// TestModelChoiceBarelyMatters: the paper notes only 1.2 J of difference
// between SVM and CNN at the edge.
func TestModelChoiceBarelyMatters(t *testing.T) {
	svm := build(t, Spec{Period: fiveMin, Model: SVM, Placement: EdgeOnly})
	cnn := build(t, Spec{Period: fiveMin, Model: CNN, Placement: EdgeOnly})
	diff := math.Abs(float64(svm.EdgeEnergy() - cnn.EdgeEnergy()))
	if diff > 2 {
		t.Fatalf("SVM/CNN edge difference = %v J, want ~1.2 J", diff)
	}
	// And the edge+cloud edge cost is identical between models.
	a := build(t, Spec{Period: fiveMin, Model: SVM, Placement: EdgeCloud})
	b := build(t, Spec{Period: fiveMin, Model: CNN, Placement: EdgeCloud})
	if !almostEq(float64(a.EdgeEnergy()), float64(b.EdgeEnergy()), 1e-9) {
		t.Fatal("edge cost in edge+cloud must not depend on the model")
	}
}

func TestBuildErrors(t *testing.T) {
	pi, cl := power.DefaultPi3B(), power.DefaultCloud()
	if _, err := Build(pi, cl, Spec{Period: 0}); err == nil {
		t.Error("zero period accepted")
	}
	if _, err := Build(pi, cl, Spec{Period: time.Minute, Placement: EdgeOnly}); err == nil {
		t.Error("period shorter than active tasks accepted (edge)")
	}
	if _, err := Build(pi, cl, Spec{Period: time.Minute, Placement: EdgeCloud}); err == nil {
		t.Error("period shorter than active tasks accepted (edge+cloud)")
	}
	if _, err := Build(pi, cl, Spec{Period: fiveMin, Model: Model(9)}); err == nil {
		t.Error("unknown model accepted")
	}
	if _, err := Build(pi, cl, Spec{Period: fiveMin, Placement: Placement(9)}); err == nil {
		t.Error("unknown placement accepted")
	}
	if _, err := Build(pi, cl, Spec{Period: fiveMin, Model: Model(9), Placement: EdgeCloud}); err == nil {
		t.Error("unknown model accepted (edge+cloud)")
	}
}

func TestLongerPeriodsOnlyStretchSleep(t *testing.T) {
	c5 := build(t, Spec{Period: fiveMin, Model: SVM, Placement: EdgeOnly})
	c60 := build(t, Spec{Period: time.Hour, Model: SVM, Placement: EdgeOnly})
	activeDiff := float64(c60.EdgeEnergy()-c5.EdgeEnergy()) -
		float64(power.DefaultPi3B().Sleep(55*time.Minute).Energy)
	if math.Abs(activeDiff) > 1e-9 {
		t.Fatalf("hourly cycle energy differs beyond the extra sleep: %v J", activeDiff)
	}
}

func TestStringers(t *testing.T) {
	if SVM.String() != "SVM" || CNN.String() != "CNN" || Model(7).String() == "" {
		t.Error("Model.String broken")
	}
	if EdgeOnly.String() != "edge" || EdgeCloud.String() != "edge+cloud" || Placement(7).String() == "" {
		t.Error("Placement.String broken")
	}
}

// TestCampaignMatchesSectionIV replays the 319-routine campaign.
func TestCampaignMatchesSectionIV(t *testing.T) {
	link, err := netsim.NewLink(netsim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	st, err := SimulateCampaign(power.DefaultPi3B(), link, 319)
	if err != nil {
		t.Fatal(err)
	}
	if st.Routines != 319 {
		t.Fatalf("routines = %d", st.Routines)
	}
	// Mean 1 m 29 s = 89 s (±3 s) and sigma ~3.5 s (1-7 s band).
	if !almostEq(st.MeanDuration.Seconds(), 89, 3) {
		t.Errorf("mean duration = %v, want ~89 s", st.MeanDuration)
	}
	if sd := st.SDDuration.Seconds(); sd < 1 || sd > 7 {
		t.Errorf("duration sigma = %v, want 1-7 s", sd)
	}
	// Mean power 2.14 W with tiny spread (paper: 0.009 W).
	if !almostEq(float64(st.MeanPower), 2.14, 0.02) {
		t.Errorf("mean power = %v, want 2.14 W", st.MeanPower)
	}
	if sd := float64(st.SDPower); sd > 0.05 {
		t.Errorf("power sigma = %v, want << 0.05 W", sd)
	}
	// Mean energy ~190 J.
	if !almostEq(float64(st.MeanEnergy), 190.1, 8) {
		t.Errorf("mean energy = %v, want ~190 J", st.MeanEnergy)
	}
}

func TestCampaignErrors(t *testing.T) {
	link, _ := netsim.NewLink(netsim.DefaultConfig())
	if _, err := SimulateCampaign(power.DefaultPi3B(), link, 0); err == nil {
		t.Error("zero routines accepted")
	}
	if _, err := SimulateCampaign(power.DefaultPi3B(), nil, 10); err == nil {
		t.Error("nil link accepted")
	}
}

func TestRecordLedgerMirrorsTableII(t *testing.T) {
	spec := Spec{Period: 5 * time.Minute, Model: CNN, Placement: EdgeCloud}
	c, err := Build(power.DefaultPi3B(), power.DefaultCloud(), spec)
	if err != nil {
		t.Fatal(err)
	}
	lg := ledger.New()
	start := time.Date(2023, 4, 10, 6, 0, 0, 0, time.UTC)
	end := c.RecordLedger(lg, "cachan-1", start)
	if got := end.Sub(start); got != c.Duration() {
		t.Fatalf("end-start = %v, want cycle duration %v", got, c.Duration())
	}

	var edgeJ, cloudJ float64
	for _, e := range lg.Entries() {
		switch e.Device {
		case "edge":
			if e.Store != "battery" {
				t.Fatalf("edge entry not battery-bound: %+v", e)
			}
			edgeJ += e.Joules
		case "cloud":
			if e.Store != "" {
				t.Fatalf("grid-powered cloud entry bound to a store: %+v", e)
			}
			cloudJ += e.Joules
		}
	}
	if math.Abs(edgeJ-float64(c.EdgeEnergy())) > 1e-9 {
		t.Fatalf("edge ledger total %v J, cycle %v J", edgeJ, c.EdgeEnergy())
	}
	if math.Abs(cloudJ-float64(c.CloudEnergy())) > 1e-9 {
		t.Fatalf("cloud ledger total %v J, cycle %v J", cloudJ, c.CloudEnergy())
	}

	// Nil ledger still returns the advanced clock.
	if got := c.RecordLedger(nil, "h", start); got != end {
		t.Fatalf("nil-ledger end = %v, want %v", got, end)
	}
}
