// Package battery models the smart beehive's energy buffer: a 20 000 mAh
// USB power bank charged from the solar panel through a 5 V DC/DC
// converter, discharged by the two Raspberry Pis.
//
// The model tracks state of charge with separate charge and discharge
// efficiencies, enforces capacity bounds, and exposes the low-voltage
// cutoff that, combined with the panel's night brownout, produces the
// outage gaps visible in the paper's Figure 2a.
package battery

import (
	"errors"
	"fmt"
	"time"

	"beesim/internal/ledger"
	"beesim/internal/obs"
	"beesim/internal/units"
)

// Config describes a battery pack.
type Config struct {
	// Capacity is the usable energy when full.
	Capacity units.WattHours
	// ChargeEfficiency is the fraction of input energy stored (0..1].
	ChargeEfficiency float64
	// DischargeEfficiency is the fraction of stored energy delivered (0..1].
	DischargeEfficiency float64
	// MaxChargePower limits the charging rate (converter limit).
	MaxChargePower units.Watts
	// CutoffFraction is the state of charge below which the pack's
	// protection circuit disconnects the load.
	CutoffFraction float64
	// ReconnectFraction is the state of charge the pack must recover to
	// before the load reconnects after a cutoff (hysteresis).
	ReconnectFraction float64
}

// DefaultConfig models the deployed 20 000 mAh (3.7 V cells = 74 Wh) power
// bank behind a 5 V / 3 A converter.
func DefaultConfig() Config {
	return Config{
		Capacity:            74,
		ChargeEfficiency:    0.92,
		DischargeEfficiency: 0.90,
		MaxChargePower:      15, // 5 V * 3 A converter ceiling
		CutoffFraction:      0.05,
		ReconnectFraction:   0.10,
	}
}

// Battery is a stateful pack. Construct with New.
type Battery struct {
	cfg      Config
	stored   units.WattHours // energy currently held
	cut      bool            // protection circuit open?
	brownout bool            // injected bus brownout active?

	// Lifetime counters for reporting.
	totalIn   units.Joules
	totalOut  units.Joules
	cutoffs   int
	brownouts int
	dumpErrs  int

	// Observability probes; all nil-safe no-ops until Instrument.
	mChargeJ    *obs.Counter
	mDischargeJ *obs.Counter
	mCutoffs    *obs.Counter
	mBrownouts  *obs.Counter
	mDumpErrs   *obs.Counter
	reg         *obs.Registry
	gSoC        *obs.Gauge
	tr          *obs.Tracer
	clock       func() time.Time

	// Energy-ledger probe; nil-safe no-op until AttachLedger.
	lg     *ledger.Ledger
	lgHive string
}

// Metric names emitted by an instrumented battery. The brownout
// counter is registered lazily on the first injected brownout, so
// fault-free metric snapshots stay byte-identical to earlier releases.
const (
	MetricChargeJ    = "battery_charge_j_total"
	MetricDischargeJ = "battery_discharge_j_total"
	MetricCutoffs    = "battery_cutoffs_total"
	MetricBrownouts  = "battery_brownouts_total"
	MetricDumpErrs   = "battery_trip_dump_errors_total"
	MetricSoC        = "battery_soc"
)

// Instrument attaches metrics and trace probes. clock supplies the
// virtual timestamp for trace events (pass the simulation's Now); trace
// events are skipped when either tr or clock is nil. Charge/discharge
// energy, cutoff counts, and the state of charge become visible in the
// registry; cutoff and reconnect transitions (the paper's brownouts)
// appear as instants on the power track.
func (b *Battery) Instrument(m *obs.Registry, tr *obs.Tracer, clock func() time.Time) {
	b.mChargeJ = m.Counter(MetricChargeJ)
	b.mDischargeJ = m.Counter(MetricDischargeJ)
	b.mCutoffs = m.Counter(MetricCutoffs)
	b.reg = m
	b.gSoC = m.Gauge(MetricSoC)
	b.gSoC.Set(b.SoC())
	if clock != nil {
		b.tr = tr
		b.clock = clock
	}
}

// AttachLedger wires the energy ledger: every Charge appends a harvest
// entry for the joules actually stored, every Discharge a store-loss
// entry for the conversion loss between stored and delivered energy,
// and a protection cutoff trips the ledger's flight recorder. Together
// with the caller's consume entries (attributing delivered energy to
// devices) the flows balance exactly: harvest − consume − loss =
// Δstored, which is what the conservation auditor checks. clock
// supplies the virtual time of each entry; entries are skipped when lg
// or clock is nil.
func (b *Battery) AttachLedger(lg *ledger.Ledger, hive string, clock func() time.Time) {
	if clock == nil {
		return
	}
	b.lg = lg
	b.lgHive = hive
	b.clock = clock
}

// Snapshot is an exported view of the pack's lifetime counters, for
// reports and for reconciling the energy ledger against the pack's own
// books.
type Snapshot struct {
	// Stored is the energy currently held.
	Stored units.WattHours
	// SoC is the state of charge in [0, 1].
	SoC float64
	// TotalInJ is the lifetime energy banked (after charge efficiency).
	TotalInJ units.Joules
	// TotalOutJ is the lifetime energy delivered to the load (after
	// discharge efficiency).
	TotalOutJ units.Joules
	// Cutoffs counts protection-circuit openings.
	Cutoffs int
	// Brownouts counts injected bus brownout windows entered.
	Brownouts int
	// LoadConnected reports whether discharge is currently allowed.
	LoadConnected bool
}

// Snapshot returns the pack's current state and lifetime counters.
func (b *Battery) Snapshot() Snapshot {
	return Snapshot{
		Stored:        b.stored,
		SoC:           b.SoC(),
		TotalInJ:      b.totalIn,
		TotalOutJ:     b.totalOut,
		Cutoffs:       b.cutoffs,
		Brownouts:     b.brownouts,
		LoadConnected: !b.cut && !b.brownout,
	}
}

// New creates a battery at the given initial state of charge (0..1).
func New(cfg Config, initialSoC float64) (*Battery, error) {
	if cfg.Capacity <= 0 {
		return nil, errors.New("battery: non-positive capacity")
	}
	if cfg.ChargeEfficiency <= 0 || cfg.ChargeEfficiency > 1 ||
		cfg.DischargeEfficiency <= 0 || cfg.DischargeEfficiency > 1 {
		return nil, errors.New("battery: efficiencies must be in (0,1]")
	}
	if cfg.CutoffFraction < 0 || cfg.ReconnectFraction < cfg.CutoffFraction ||
		cfg.ReconnectFraction > 1 {
		return nil, errors.New("battery: invalid cutoff/reconnect fractions")
	}
	if initialSoC < 0 || initialSoC > 1 {
		return nil, fmt.Errorf("battery: initial SoC %v out of [0,1]", initialSoC)
	}
	b := &Battery{cfg: cfg, stored: units.WattHours(float64(cfg.Capacity) * initialSoC)}
	b.cut = b.SoC() <= cfg.CutoffFraction
	return b, nil
}

// SoC returns the state of charge in [0, 1].
func (b *Battery) SoC() float64 {
	return float64(b.stored) / float64(b.cfg.Capacity)
}

// Stored returns the energy currently held.
func (b *Battery) Stored() units.WattHours { return b.stored }

// LoadConnected reports whether the pack currently delivers power: the
// protection circuit is closed and no brownout window is active.
func (b *Battery) LoadConnected() bool { return !b.cut && !b.brownout }

// Cutoffs returns how many times the protection circuit opened.
func (b *Battery) Cutoffs() int { return b.cutoffs }

// Brownouts returns how many injected brownout windows the pack
// entered.
func (b *Battery) Brownouts() int { return b.brownouts }

// TripDumpErrs returns how many cutoff flight-recorder dumps failed.
func (b *Battery) TripDumpErrs() int { return b.dumpErrs }

// SetBrownout opens (active=true) or closes the injected bus-brownout
// switch: while open the pack delivers nothing, as if the output
// converter stalled, independent of the state-of-charge protection
// circuit. The fault injector drives this from its brownout windows;
// repeated calls with the same state are no-ops, and each opening
// transition is counted, traced, and (lazily) registered as the
// battery_brownouts_total metric so fault-free snapshots are unchanged.
func (b *Battery) SetBrownout(active bool) {
	if active == b.brownout {
		return
	}
	b.brownout = active
	if active {
		b.brownouts++
		if b.mBrownouts == nil && b.reg != nil {
			b.mBrownouts = b.reg.Counter(MetricBrownouts)
		}
		b.mBrownouts.Inc()
		if b.tr != nil {
			b.tr.Instant("battery brownout", "battery", obs.TidPower, b.clock(),
				map[string]any{"soc": b.SoC()})
		}
	} else if b.tr != nil {
		b.tr.Instant("battery brownout end", "battery", obs.TidPower, b.clock(),
			map[string]any{"soc": b.SoC()})
	}
}

// Totals returns lifetime charged and delivered energies.
func (b *Battery) Totals() (in, out units.Joules) { return b.totalIn, b.totalOut }

// Charge feeds power p into the pack for duration d. Power beyond the
// configured charge limit is curtailed (a real MPPT/converter clips).
// It returns the energy actually stored.
func (b *Battery) Charge(p units.Watts, d time.Duration) units.Joules {
	if p <= 0 || d <= 0 {
		return 0
	}
	if p > b.cfg.MaxChargePower {
		p = b.cfg.MaxChargePower
	}
	in := p.Energy(d)
	stored := units.Joules(float64(in) * b.cfg.ChargeEfficiency)
	room := (b.cfg.Capacity - b.stored).Joules()
	if stored > room {
		stored = room
	}
	b.stored += stored.WattHours()
	b.totalIn += stored
	b.mChargeJ.Add(float64(stored))
	b.gSoC.Set(b.SoC())
	if b.lg != nil && stored > 0 {
		b.lg.Append(ledger.Entry{
			T: b.clock(), Hive: b.lgHive, Device: "battery", Component: "pack",
			Task: "charge", Dir: ledger.Harvest, Joules: float64(stored),
			Seconds: d.Seconds(), Store: "battery",
		})
	}
	if b.cut && b.SoC() >= b.cfg.ReconnectFraction {
		b.cut = false
		if b.tr != nil {
			b.tr.Instant("battery reconnect", "battery", obs.TidPower, b.clock(),
				map[string]any{"soc": b.SoC()})
		}
	}
	return stored
}

// Discharge draws power p for duration d from the pack. It returns the
// duration actually sustained: shorter than d if the pack hits its cutoff
// mid-interval (the paper's night outage), zero if the load is already
// disconnected.
func (b *Battery) Discharge(p units.Watts, d time.Duration) time.Duration {
	if p <= 0 || d <= 0 || b.cut || b.brownout {
		return 0
	}
	need := units.Joules(float64(p.Energy(d)) / b.cfg.DischargeEfficiency)
	floor := units.WattHours(float64(b.cfg.Capacity) * b.cfg.CutoffFraction)
	available := (b.stored - floor).Joules()
	if available <= 0 {
		b.openProtection()
		return 0
	}
	if need <= available {
		b.stored -= need.WattHours()
		delivered := units.Joules(float64(need) * b.cfg.DischargeEfficiency)
		b.totalOut += delivered
		b.mDischargeJ.Add(float64(delivered))
		b.gSoC.Set(b.SoC())
		b.recordLoss(float64(need-delivered), d)
		if b.SoC() <= b.cfg.CutoffFraction {
			b.openProtection()
		}
		return d
	}
	// Partial interval until cutoff.
	frac := float64(available) / float64(need)
	b.stored -= available.WattHours()
	delivered := units.Joules(float64(available) * b.cfg.DischargeEfficiency)
	b.totalOut += delivered
	b.mDischargeJ.Add(float64(delivered))
	b.gSoC.Set(b.SoC())
	sustained := time.Duration(float64(d) * frac)
	b.recordLoss(float64(available-delivered), sustained)
	b.openProtection()
	return sustained
}

// recordLoss appends the discharge conversion loss (the joules removed
// from the pack but not delivered to the load) to the ledger.
func (b *Battery) recordLoss(lossJ float64, d time.Duration) {
	if b.lg == nil || lossJ <= 0 {
		return
	}
	b.lg.Append(ledger.Entry{
		T: b.clock(), Hive: b.lgHive, Device: "battery", Component: "pack",
		Task: "discharge loss", Dir: ledger.StoreLoss, Joules: lossJ,
		Seconds: d.Seconds(), Store: "battery",
	})
}

func (b *Battery) openProtection() {
	if !b.cut {
		b.cut = true
		b.cutoffs++
		b.mCutoffs.Inc()
		if b.tr != nil {
			b.tr.Instant("battery cutoff", "battery", obs.TidPower, b.clock(),
				map[string]any{"soc": b.SoC()})
		}
		if b.lg != nil {
			if err := b.lg.Trip(fmt.Sprintf("battery cutoff hive=%q soc=%.4f", b.lgHive, b.SoC())); err != nil {
				// A failed flight-recorder dump means the cutoff evidence
				// is gone; count it so audits can see the hole.
				b.dumpErrs++
				if b.reg != nil {
					if b.mDumpErrs == nil {
						b.mDumpErrs = b.reg.Counter(MetricDumpErrs)
					}
					b.mDumpErrs.Inc()
				}
				if b.tr != nil {
					b.tr.Instant("battery trip dump failed", "battery", obs.TidPower, b.clock(),
						map[string]any{"err": err.Error()})
				}
			}
		}
	}
}
