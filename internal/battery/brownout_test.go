package battery

import (
	"testing"
	"time"

	"beesim/internal/obs"
)

// TestSetBrownoutOpensLoadPath: an active brownout disconnects the
// load like a protection trip, without consuming stored energy, and
// reconnects cleanly when it clears.
func TestSetBrownoutOpensLoadPath(t *testing.T) {
	b := mustNew(t, 0.8)
	before := b.Stored()
	b.SetBrownout(true)
	if b.LoadConnected() {
		t.Fatal("load connected during a brownout")
	}
	if got := b.Discharge(2, time.Hour); got != 0 {
		t.Fatalf("browned-out battery delivered for %v", got)
	}
	if b.Stored() != before {
		t.Fatalf("brownout drained the store: %v -> %v", before, b.Stored())
	}
	if b.Snapshot().LoadConnected {
		t.Fatal("snapshot shows the load connected during a brownout")
	}
	b.SetBrownout(false)
	if !b.LoadConnected() {
		t.Fatal("load still open after the brownout cleared")
	}
	if got := b.Discharge(2, time.Hour); got != time.Hour {
		t.Fatalf("recovered battery delivered only %v", got)
	}
	if b.Brownouts() != 1 || b.Snapshot().Brownouts != 1 {
		t.Fatalf("brownout count = %d", b.Brownouts())
	}
}

// TestSetBrownoutCountsTransitionsOnce: repeated same-state calls are
// no-ops; only a false→true edge counts.
func TestSetBrownoutCountsTransitionsOnce(t *testing.T) {
	b := mustNew(t, 0.5)
	for i := 0; i < 5; i++ {
		b.SetBrownout(true)
	}
	b.SetBrownout(false)
	b.SetBrownout(false)
	b.SetBrownout(true)
	if b.Brownouts() != 2 {
		t.Fatalf("brownouts = %d, want 2", b.Brownouts())
	}
}

// TestBrownoutMetricLazilyRegistered: the brownout counter must not
// exist in fault-free snapshots (which would change golden outputs) and
// must appear with the right count after the first transition.
func TestBrownoutMetricLazilyRegistered(t *testing.T) {
	m := obs.NewRegistry()
	b := mustNew(t, 0.5)
	b.Instrument(m, nil, func() time.Time { return t0 })
	b.Discharge(2, time.Minute)
	for _, c := range m.Snapshot().Counters {
		if c.Name == MetricBrownouts {
			t.Fatal("brownout counter registered before any brownout")
		}
	}
	b.SetBrownout(true)
	b.SetBrownout(false)
	b.SetBrownout(true)
	found := false
	for _, c := range m.Snapshot().Counters {
		if c.Name == MetricBrownouts {
			found = true
			if c.Value != 2 {
				t.Fatalf("brownout counter = %g, want 2", c.Value)
			}
		}
	}
	if !found {
		t.Fatal("brownout counter missing after brownouts")
	}
}
