package battery

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"beesim/internal/ledger"
	"beesim/internal/obs"
	"beesim/internal/rng"
	"beesim/internal/units"
)

var t0 = time.Date(2023, 4, 10, 0, 0, 0, 0, time.UTC)

func mustNew(t *testing.T, soc float64) *Battery {
	t.Helper()
	b, err := New(DefaultConfig(), soc)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestNewValidation(t *testing.T) {
	bad := []Config{
		{Capacity: 0, ChargeEfficiency: 0.9, DischargeEfficiency: 0.9, ReconnectFraction: 0.1, CutoffFraction: 0.05},
		{Capacity: 74, ChargeEfficiency: 0, DischargeEfficiency: 0.9, ReconnectFraction: 0.1, CutoffFraction: 0.05},
		{Capacity: 74, ChargeEfficiency: 0.9, DischargeEfficiency: 1.5, ReconnectFraction: 0.1, CutoffFraction: 0.05},
		{Capacity: 74, ChargeEfficiency: 0.9, DischargeEfficiency: 0.9, ReconnectFraction: 0.01, CutoffFraction: 0.05},
	}
	for i, cfg := range bad {
		if _, err := New(cfg, 0.5); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if _, err := New(DefaultConfig(), -0.1); err == nil {
		t.Error("negative SoC accepted")
	}
	if _, err := New(DefaultConfig(), 1.1); err == nil {
		t.Error("SoC > 1 accepted")
	}
}

func TestChargeStoresWithEfficiency(t *testing.T) {
	b := mustNew(t, 0.5)
	stored := b.Charge(10, time.Hour) // 10 W * 1 h = 36 kJ in
	want := 36000.0 * 0.92
	if math.Abs(float64(stored)-want) > 1e-6 {
		t.Fatalf("stored = %v, want %v", stored, want)
	}
}

func TestChargeCurtailedAtConverterLimit(t *testing.T) {
	b := mustNew(t, 0.1)
	stored := b.Charge(100, time.Hour) // converter clips to 15 W
	want := 15.0 * 3600 * 0.92
	if math.Abs(float64(stored)-want) > 1e-6 {
		t.Fatalf("stored = %v, want %v (clipped)", stored, want)
	}
}

func TestChargeStopsAtCapacity(t *testing.T) {
	b := mustNew(t, 0.99)
	b.Charge(15, 10*time.Hour)
	if soc := b.SoC(); soc > 1+1e-12 {
		t.Fatalf("SoC = %v, exceeded capacity", soc)
	}
	if math.Abs(b.SoC()-1) > 1e-9 {
		t.Fatalf("SoC = %v, want full", b.SoC())
	}
}

func TestDischargeFullInterval(t *testing.T) {
	b := mustNew(t, 0.8)
	got := b.Discharge(2, time.Hour)
	if got != time.Hour {
		t.Fatalf("sustained = %v, want full hour", got)
	}
	// 2 W over 1 h at 90% discharge efficiency drains 8000 J of storage.
	drained := 74*3600*0.8 - float64(b.Stored().Joules())
	if math.Abs(drained-8000) > 1 {
		t.Fatalf("drained = %v J, want 8000", drained)
	}
}

func TestDischargeHitsCutoff(t *testing.T) {
	b := mustNew(t, 0.06) // just above the 5% cutoff
	got := b.Discharge(10, 24*time.Hour)
	if got >= 24*time.Hour {
		t.Fatal("discharge did not cut off")
	}
	if b.LoadConnected() {
		t.Fatal("load still connected after cutoff")
	}
	if b.Cutoffs() != 1 {
		t.Fatalf("cutoffs = %d, want 1", b.Cutoffs())
	}
	// Further discharge is refused.
	if b.Discharge(1, time.Hour) != 0 {
		t.Fatal("discharge while disconnected returned time")
	}
}

func TestReconnectHysteresis(t *testing.T) {
	b := mustNew(t, 0.06)
	b.Discharge(10, 24*time.Hour) // force cutoff
	// Small charge: above cutoff but below reconnect threshold.
	b.Charge(1, 10*time.Minute)
	if b.LoadConnected() && b.SoC() < 0.10 {
		t.Fatal("load reconnected below hysteresis threshold")
	}
	// Morning sun: charge well past the reconnect fraction.
	b.Charge(15, 2*time.Hour)
	if !b.LoadConnected() {
		t.Fatalf("load did not reconnect at SoC %v", b.SoC())
	}
}

func TestZeroAndNegativeInputs(t *testing.T) {
	b := mustNew(t, 0.5)
	if b.Charge(0, time.Hour) != 0 || b.Charge(-5, time.Hour) != 0 {
		t.Fatal("non-positive power charged")
	}
	if b.Charge(5, 0) != 0 {
		t.Fatal("zero duration charged")
	}
	if b.Discharge(0, time.Hour) != 0 || b.Discharge(2, -time.Second) != 0 {
		t.Fatal("degenerate discharge returned time")
	}
}

func TestTotalsAccounting(t *testing.T) {
	b := mustNew(t, 0.5)
	b.Charge(10, time.Hour)
	b.Discharge(2, time.Hour)
	in, out := b.Totals()
	if in <= 0 || out <= 0 {
		t.Fatalf("totals = %v, %v, want positive", in, out)
	}
	if math.Abs(float64(out)-7200) > 1e-6 {
		t.Fatalf("delivered = %v, want 7200 J", out)
	}
}

func TestPropertySoCBounded(t *testing.T) {
	// Whatever sequence of charges and discharges happens, SoC stays in
	// [0, 1] and stored energy is conserved within efficiency losses.
	f := func(seed uint64, steps uint8) bool {
		b, err := New(DefaultConfig(), 0.5)
		if err != nil {
			return false
		}
		r := rng.New(seed)
		for i := 0; i < int(steps); i++ {
			p := units.Watts(r.Range(0, 20))
			d := time.Duration(r.Range(1, 3600)) * time.Second
			if r.Float64() < 0.5 {
				b.Charge(p, d)
			} else {
				b.Discharge(p, d)
			}
			if s := b.SoC(); s < -1e-9 || s > 1+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyDischargeNeverBelowCutoffFloor(t *testing.T) {
	cfg := DefaultConfig()
	f := func(seed uint64, steps uint8) bool {
		b, err := New(cfg, 0.3)
		if err != nil {
			return false
		}
		r := rng.New(seed)
		for i := 0; i < int(steps); i++ {
			b.Discharge(units.Watts(r.Range(0.1, 30)), time.Duration(r.Range(1, 7200))*time.Second)
			if b.SoC() < cfg.CutoffFraction-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDayNightCycleSurvival(t *testing.T) {
	// A beehive drawing ~1.2 W continuously with 8 h of decent sun per day
	// must survive indefinitely on the deployed pack; verify over a week.
	b := mustNew(t, 0.8)
	for day := 0; day < 7; day++ {
		for h := 0; h < 24; h++ {
			if h >= 9 && h < 17 {
				b.Charge(12, time.Hour)
			}
			if got := b.Discharge(1.2, time.Hour); got < time.Hour && b.LoadConnected() {
				t.Fatalf("day %d hour %d: load shed with connected pack", day, h)
			}
		}
	}
	if b.Cutoffs() != 0 {
		t.Fatalf("pack cut off %d times in a balanced week", b.Cutoffs())
	}
}

// TestSnapshotReconcilesWithLedger drives a week of charge/discharge
// with the ledger attached and checks two books against each other: the
// pack's own lifetime counters (exposed via Snapshot) and the ledger's
// conservation audit. totalIn must equal the sum of harvest entries,
// the discharge losses must equal totalOut's efficiency shortfall, and
// with a synthetic consume entry for the delivered energy the audit
// balances to zero violations.
func TestSnapshotReconcilesWithLedger(t *testing.T) {
	b := mustNew(t, 0.5)
	lg := ledger.New()
	now := t0
	clock := func() time.Time { return now }
	b.AttachLedger(lg, "cachan-1", clock)
	initialJ := float64(b.Stored().Joules())

	var deliveredJ float64
	for day := 0; day < 7; day++ {
		for h := 0; h < 24; h++ {
			now = now.Add(time.Hour)
			if h >= 9 && h < 17 {
				b.Charge(12, time.Hour)
			}
			sustained := b.Discharge(1.2, time.Hour)
			deliveredJ += float64(units.Watts(1.2).Energy(sustained))
		}
	}

	snap := b.Snapshot()
	if snap.Cutoffs != b.Cutoffs() || snap.LoadConnected != b.LoadConnected() {
		t.Fatalf("snapshot disagrees with accessors: %+v", snap)
	}
	in, out := b.Totals()
	if snap.TotalInJ != in || snap.TotalOutJ != out {
		t.Fatalf("snapshot totals %v/%v, accessors %v/%v", snap.TotalInJ, snap.TotalOutJ, in, out)
	}
	if math.Abs(float64(out)-deliveredJ) > 1e-6 {
		t.Fatalf("totalOut %v J, delivered per-interval sum %v J", out, deliveredJ)
	}

	var harvestJ, lossJ float64
	for _, e := range lg.Entries() {
		switch e.Dir {
		case ledger.Harvest:
			harvestJ += e.Joules
		case ledger.StoreLoss:
			lossJ += e.Joules
		}
	}
	if math.Abs(harvestJ-float64(in)) > 1e-6 {
		t.Fatalf("ledger harvest %v J, pack totalIn %v J", harvestJ, in)
	}
	// Loss is the gap between energy removed from the pack and energy
	// delivered: removed = out/eff, loss = removed − out.
	wantLoss := float64(out)/DefaultConfig().DischargeEfficiency - float64(out)
	if math.Abs(lossJ-wantLoss) > 1e-6 {
		t.Fatalf("ledger loss %v J, want %v J", lossJ, wantLoss)
	}

	// Close the books: attribute the delivered energy to the load and
	// register the observed delta. Conservation must hold exactly.
	lg.Append(ledger.Entry{T: now, Hive: "cachan-1", Device: "edge",
		Component: "pi3b", Task: "load", Dir: ledger.Consume,
		Joules: deliveredJ, Store: "battery"})
	lg.SetStore("cachan-1", "battery", initialJ, float64(b.Stored().Joules()))
	if rep := ledger.Audit(lg, ledger.DefaultTolerance()); !rep.OK() {
		t.Fatalf("battery books failed conservation: %v", rep.Violations)
	}
}

// TestLedgerTripsOnCutoff wires a flight-recorder ledger and drains the
// pack: the protection cutoff must trip the recorder and dump the
// retained entries.
func TestLedgerTripsOnCutoff(t *testing.T) {
	b := mustNew(t, 0.06)
	lg, err := ledger.NewRing(8)
	if err != nil {
		t.Fatal(err)
	}
	var dump bytes.Buffer
	lg.AutoDump(&dump)
	b.AttachLedger(lg, "h", func() time.Time { return t0 })
	b.Discharge(10, 24*time.Hour)
	if lg.Trips() != 1 {
		t.Fatalf("trips = %d, want 1", lg.Trips())
	}
	if !strings.Contains(dump.String(), "battery cutoff") {
		t.Fatalf("dump missing cutoff reason: %q", dump.String())
	}
	if b.TripDumpErrs() != 0 {
		t.Fatalf("dump errors = %d, want 0", b.TripDumpErrs())
	}
}

// failWriter rejects every write, standing in for a full disk under
// the flight recorder.
type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errors.New("disk full") }

// TestTripDumpErrorCounted arms the flight recorder with a writer that
// always fails: the cutoff must still open protection, and the failed
// dump must be counted — in the accessor and the metric — instead of
// vanishing.
func TestTripDumpErrorCounted(t *testing.T) {
	b := mustNew(t, 0.06)
	reg := obs.NewRegistry()
	b.Instrument(reg, nil, func() time.Time { return t0 })
	lg, err := ledger.NewRing(8)
	if err != nil {
		t.Fatal(err)
	}
	lg.AutoDump(failWriter{})
	b.AttachLedger(lg, "h", func() time.Time { return t0 })
	b.Discharge(10, 24*time.Hour)
	if b.Cutoffs() != 1 {
		t.Fatalf("cutoffs = %d, want 1", b.Cutoffs())
	}
	if lg.Trips() != 1 {
		t.Fatalf("trips = %d, want 1", lg.Trips())
	}
	if b.TripDumpErrs() != 1 {
		t.Fatalf("dump errors = %d, want 1", b.TripDumpErrs())
	}
	if got := reg.Counter(MetricDumpErrs).Value(); got != 1 {
		t.Fatalf("%s = %v, want 1", MetricDumpErrs, got)
	}
}
