// Fault-aware sending: retry/backoff around the stochastic link.
//
// SendAt is the fault-tolerant sibling of Send. With no injector
// attached it delegates to Send unchanged — same rng draw sequence,
// same probes, zero extra allocations — so arming faults is strictly
// opt-in and the fault-free outputs stay byte-identical. With an
// injector attached, each upload spends a budget of attempts governed
// by the retry policy: a failed attempt burns setup-plus-timeout of
// radio energy (accounted in the ledger as "uplink retry"), backoff
// waits between attempts use the injector's deterministic jitter, and
// the whole episode is summarized in an Outcome.

package netsim

import (
	"time"

	"beesim/internal/faults"
	"beesim/internal/ledger"
	"beesim/internal/obs"
	"beesim/internal/stats"
	"beesim/internal/units"
)

// Metric names emitted by a fault-armed link (registered by
// AttachFaults, so fault-free runs carry none of them).
const (
	MetricSendAttempts = "netsim_send_attempts_total"
	MetricSendFailures = "netsim_send_failures_total"
	MetricSendRetries  = "netsim_send_retries_total"
	MetricSendDrops    = "netsim_send_drops_total"
	MetricRetryEnergyJ = "netsim_retry_energy_j_total"
	// MetricUploadEpisodes counts whole upload episodes (one per SendAt
	// call); together with MetricSendDrops it yields the delivery ratio
	// an availability SLO checks.
	MetricUploadEpisodes = "netsim_upload_episodes_total"
	// MetricUploadSeconds distributes the virtual-time latency of
	// delivered episodes — first attempt through final payload byte,
	// including backoff waits — the p99 a latency SLO bounds.
	MetricUploadSeconds = "netsim_upload_seconds"
	// MetricAttemptsPerUpload distributes attempts consumed per episode
	// (delivered or not).
	MetricAttemptsPerUpload = "netsim_attempts_per_upload"
)

// Outcome is the result of one fault-aware upload: the delivered
// transfer (zero when the attempt budget ran out), how many attempts it
// took, the radio energy burned by the failed ones, and the total
// radio-busy time including backoff waits.
type Outcome struct {
	Transfer
	// Delivered reports whether any attempt succeeded.
	Delivered bool
	// Attempts is the number of attempts consumed (>= 1).
	Attempts int
	// RetryEnergy is the radio energy of the failed attempts; the
	// delivered transfer's own energy is in Transfer.ExtraEnergy.
	RetryEnergy units.Joules
	// TotalDuration spans first attempt to final verdict: failed
	// attempts, backoff waits, and the delivered transfer.
	TotalDuration time.Duration
}

// AttachFaults arms the link with a fault injector and retry policy and
// registers the retry counters on m (which may be nil for uncounted
// runs). A nil injector is a no-op: the link stays on the exact
// fault-free path. Call after Instrument so the fault counters land in
// the same registry as the transfer metrics.
func (l *Link) AttachFaults(inj *faults.Injector, pol faults.RetryPolicy, m *obs.Registry) error {
	if inj == nil {
		return nil
	}
	if err := pol.Validate(); err != nil {
		return err
	}
	l.inj = inj
	l.retry = pol
	l.mAttempts = m.Counter(MetricSendAttempts)
	l.mFailures = m.Counter(MetricSendFailures)
	l.mRetries = m.Counter(MetricSendRetries)
	l.mDrops = m.Counter(MetricSendDrops)
	l.mRetryEnergy = m.Counter(MetricRetryEnergyJ)
	l.mEpisodes = m.Counter(MetricUploadEpisodes)
	l.hUploadSecs = m.Histogram(MetricUploadSeconds)
	l.hAttempts = m.Histogram(MetricAttemptsPerUpload)
	return nil
}

// SendAt uploads payload starting at virtual instant now, retrying
// failed attempts under the armed policy. Without an armed injector it
// is exactly Send. SendAt is the untraced form of SendSpan: same rng
// draws, same metrics, same ledger entries, no span identity.
func (l *Link) SendAt(now time.Time, payload Bytes) Outcome {
	return l.SendSpan(now, payload, nil)
}

// SendSpan is SendAt carrying a span context through the radio episode.
// When sc is non-nil, every attempt becomes a child span of sc on the
// network track — delivered transfers as "uplink transfer" (tagged with
// the attempt number), failed attempts as "uplink retry" spans covering
// setup plus timeout, backoff waits as "uplink backoff" spans — and the
// upload latency/attempt histograms record exemplars pointing back at
// sc's trace ID. A nil sc is exactly SendAt: the rng draw sequence,
// metric increments, trace events and ledger entries are byte-identical
// to the untraced path, so arming tracing never perturbs a run.
func (l *Link) SendSpan(now time.Time, payload Bytes, sc *obs.SpanContext) Outcome {
	if l.inj == nil {
		if sc == nil {
			t := l.Send(payload)
			return Outcome{Transfer: t, Delivered: true, Attempts: 1, TotalDuration: t.Duration}
		}
		// Fault-free traced path: Send's accounting with the span's own
		// start instant and a tagged transfer span.
		t := l.sample(payload)
		l.mTransfers.Inc()
		l.mBytes.Add(float64(t.Payload))
		l.mTxEnergy.Add(float64(t.ExtraEnergy))
		l.hSeconds.ObserveExemplar(t.Duration.Seconds(), sc)
		if l.tr != nil {
			l.traceTransferCtx(sc.Child("attempt", 1), now, t, 1)
		}
		if l.lg != nil {
			l.ledgerTransfer(now, t)
		}
		return Outcome{Transfer: t, Delivered: true, Attempts: 1, TotalDuration: t.Duration}
	}
	var elapsed time.Duration
	var retryE stats.Kahan
	l.mEpisodes.Inc()
	budget := l.retry.MaxAttempts
	for a := 1; a <= budget; a++ {
		at := now.Add(elapsed)
		l.mAttempts.Inc()
		attemptSC := sc.Child("attempt", uint64(a)) // nil when sc is nil
		if l.inj.LinkUp(at) && !l.inj.DropUpload(at, a) {
			t := l.sample(payload)
			l.mTransfers.Inc()
			l.mBytes.Add(float64(t.Payload))
			l.mTxEnergy.Add(float64(t.ExtraEnergy))
			l.hSeconds.ObserveExemplar(t.Duration.Seconds(), sc)
			if l.tr != nil {
				if attemptSC != nil {
					l.traceTransferCtx(attemptSC, at, t, a)
				} else {
					l.traceTransfer(at, t)
				}
			}
			if l.lg != nil {
				l.ledgerTransfer(at, t)
			}
			l.hAttempts.ObserveExemplar(float64(a), sc)
			l.hUploadSecs.ObserveExemplar((elapsed+t.Duration).Seconds(), sc)
			return Outcome{
				Transfer:      t,
				Delivered:     true,
				Attempts:      a,
				RetryEnergy:   units.Joules(retryE.Sum()),
				TotalDuration: elapsed + t.Duration,
			}
		}
		elapsed += l.failAttempt(at, &retryE, attemptSC)
		if a < budget {
			l.mRetries.Inc()
			wait := l.retry.Backoff(a, l.inj.JitterU(at, a))
			if attemptSC != nil && wait > 0 {
				l.tr.SpanCtx(sc.Child("backoff", uint64(a)), "uplink backoff", "net",
					obs.TidNetwork, now.Add(elapsed), wait, map[string]any{"attempt": a})
			}
			elapsed += wait
		}
	}
	l.mDrops.Inc()
	l.hAttempts.ObserveExemplar(float64(budget), sc)
	if sc != nil {
		l.tr.InstantCtx(sc, "upload dropped", "net", obs.TidNetwork, now.Add(elapsed), map[string]any{
			"attempts": budget,
		})
	}
	return Outcome{
		Attempts:      budget,
		RetryEnergy:   units.Joules(retryE.Sum()),
		TotalDuration: elapsed,
	}
}

// traceTransferCtx is traceTransfer with span identity and the attempt
// number tagged onto the transfer span.
func (l *Link) traceTransferCtx(sc *obs.SpanContext, at time.Time, t Transfer, attempt int) {
	l.tr.SpanCtx(sc, "uplink transfer", "net", obs.TidNetwork, at, t.Duration, map[string]any{
		"bytes":        int64(t.Payload),
		"throughput_b": t.Throughput,
		"tx_joules":    float64(t.ExtraEnergy),
		"attempt":      attempt,
	})
}

// failAttempt accounts one failed attempt: the radio stays up for the
// link setup plus the attempt timeout before declaring failure, burning
// transmit power the whole time. The energy lands in the ledger as an
// attribution-only "uplink retry" entry (skipped when it rounds to
// zero, mirroring the zero-energy transfer rule) and in the retry
// counters; the duration is returned for the caller's virtual clock.
// With a span context the failed attempt becomes a tagged span covering
// the radio-busy window; without one it stays the classic instant
// marker, keeping untraced output byte-identical.
func (l *Link) failAttempt(at time.Time, retryE *stats.Kahan, sc *obs.SpanContext) time.Duration {
	d := l.cfg.SetupTime + l.retry.AttemptTimeout
	e := l.cfg.TxPower.Energy(d)
	retryE.Add(float64(e))
	l.mFailures.Inc()
	l.mTxEnergy.Add(float64(e))
	l.mRetryEnergy.Add(float64(e))
	if l.tr != nil {
		if sc != nil {
			l.tr.SpanCtx(sc, "uplink retry", "net", obs.TidNetwork, at, d, map[string]any{
				"tx_joules": float64(e),
				"timeout_s": d.Seconds(),
			})
		} else {
			l.tr.Instant("uplink retry", "net", obs.TidNetwork, at, map[string]any{
				"tx_joules": float64(e),
				"timeout_s": d.Seconds(),
			})
		}
	}
	if l.lg != nil && e > 0 {
		l.lg.Append(ledger.Entry{
			T: at, Hive: l.lgHive, Device: "edge", Component: "radio",
			Task: "uplink retry", Dir: ledger.Consume,
			Joules: float64(e), Seconds: d.Seconds(),
		})
	}
	return d
}

// Faulted reports whether a fault injector is armed on the link.
func (l *Link) Faulted() bool { return l.inj != nil }

// RetryPolicy returns the armed retry policy (zero value when no
// injector is armed).
func (l *Link) RetryPolicy() faults.RetryPolicy { return l.retry }
