// Fault-aware sending: retry/backoff around the stochastic link.
//
// SendAt is the fault-tolerant sibling of Send. With no injector
// attached it delegates to Send unchanged — same rng draw sequence,
// same probes, zero extra allocations — so arming faults is strictly
// opt-in and the fault-free outputs stay byte-identical. With an
// injector attached, each upload spends a budget of attempts governed
// by the retry policy: a failed attempt burns setup-plus-timeout of
// radio energy (accounted in the ledger as "uplink retry"), backoff
// waits between attempts use the injector's deterministic jitter, and
// the whole episode is summarized in an Outcome.

package netsim

import (
	"time"

	"beesim/internal/faults"
	"beesim/internal/ledger"
	"beesim/internal/obs"
	"beesim/internal/stats"
	"beesim/internal/units"
)

// Metric names emitted by a fault-armed link (registered by
// AttachFaults, so fault-free runs carry none of them).
const (
	MetricSendAttempts = "netsim_send_attempts_total"
	MetricSendFailures = "netsim_send_failures_total"
	MetricSendRetries  = "netsim_send_retries_total"
	MetricSendDrops    = "netsim_send_drops_total"
	MetricRetryEnergyJ = "netsim_retry_energy_j_total"
	// MetricUploadEpisodes counts whole upload episodes (one per SendAt
	// call); together with MetricSendDrops it yields the delivery ratio
	// an availability SLO checks.
	MetricUploadEpisodes = "netsim_upload_episodes_total"
	// MetricUploadSeconds distributes the virtual-time latency of
	// delivered episodes — first attempt through final payload byte,
	// including backoff waits — the p99 a latency SLO bounds.
	MetricUploadSeconds = "netsim_upload_seconds"
	// MetricAttemptsPerUpload distributes attempts consumed per episode
	// (delivered or not).
	MetricAttemptsPerUpload = "netsim_attempts_per_upload"
)

// Outcome is the result of one fault-aware upload: the delivered
// transfer (zero when the attempt budget ran out), how many attempts it
// took, the radio energy burned by the failed ones, and the total
// radio-busy time including backoff waits.
type Outcome struct {
	Transfer
	// Delivered reports whether any attempt succeeded.
	Delivered bool
	// Attempts is the number of attempts consumed (>= 1).
	Attempts int
	// RetryEnergy is the radio energy of the failed attempts; the
	// delivered transfer's own energy is in Transfer.ExtraEnergy.
	RetryEnergy units.Joules
	// TotalDuration spans first attempt to final verdict: failed
	// attempts, backoff waits, and the delivered transfer.
	TotalDuration time.Duration
}

// AttachFaults arms the link with a fault injector and retry policy and
// registers the retry counters on m (which may be nil for uncounted
// runs). A nil injector is a no-op: the link stays on the exact
// fault-free path. Call after Instrument so the fault counters land in
// the same registry as the transfer metrics.
func (l *Link) AttachFaults(inj *faults.Injector, pol faults.RetryPolicy, m *obs.Registry) error {
	if inj == nil {
		return nil
	}
	if err := pol.Validate(); err != nil {
		return err
	}
	l.inj = inj
	l.retry = pol
	l.mAttempts = m.Counter(MetricSendAttempts)
	l.mFailures = m.Counter(MetricSendFailures)
	l.mRetries = m.Counter(MetricSendRetries)
	l.mDrops = m.Counter(MetricSendDrops)
	l.mRetryEnergy = m.Counter(MetricRetryEnergyJ)
	l.mEpisodes = m.Counter(MetricUploadEpisodes)
	l.hUploadSecs = m.Histogram(MetricUploadSeconds)
	l.hAttempts = m.Histogram(MetricAttemptsPerUpload)
	return nil
}

// SendAt uploads payload starting at virtual instant now, retrying
// failed attempts under the armed policy. Without an armed injector it
// is exactly Send.
func (l *Link) SendAt(now time.Time, payload Bytes) Outcome {
	if l.inj == nil {
		t := l.Send(payload)
		return Outcome{Transfer: t, Delivered: true, Attempts: 1, TotalDuration: t.Duration}
	}
	var elapsed time.Duration
	var retryE stats.Kahan
	l.mEpisodes.Inc()
	budget := l.retry.MaxAttempts
	for a := 1; a <= budget; a++ {
		at := now.Add(elapsed)
		l.mAttempts.Inc()
		if l.inj.LinkUp(at) && !l.inj.DropUpload(at, a) {
			t := l.sample(payload)
			l.mTransfers.Inc()
			l.mBytes.Add(float64(t.Payload))
			l.mTxEnergy.Add(float64(t.ExtraEnergy))
			l.hSeconds.Observe(t.Duration.Seconds())
			if l.tr != nil {
				l.traceTransfer(at, t)
			}
			if l.lg != nil {
				l.ledgerTransfer(at, t)
			}
			l.hAttempts.Observe(float64(a))
			l.hUploadSecs.Observe((elapsed + t.Duration).Seconds())
			return Outcome{
				Transfer:      t,
				Delivered:     true,
				Attempts:      a,
				RetryEnergy:   units.Joules(retryE.Sum()),
				TotalDuration: elapsed + t.Duration,
			}
		}
		elapsed += l.failAttempt(at, &retryE)
		if a < budget {
			l.mRetries.Inc()
			elapsed += l.retry.Backoff(a, l.inj.JitterU(at, a))
		}
	}
	l.mDrops.Inc()
	l.hAttempts.Observe(float64(budget))
	return Outcome{
		Attempts:      budget,
		RetryEnergy:   units.Joules(retryE.Sum()),
		TotalDuration: elapsed,
	}
}

// failAttempt accounts one failed attempt: the radio stays up for the
// link setup plus the attempt timeout before declaring failure, burning
// transmit power the whole time. The energy lands in the ledger as an
// attribution-only "uplink retry" entry (skipped when it rounds to
// zero, mirroring the zero-energy transfer rule) and in the retry
// counters; the duration is returned for the caller's virtual clock.
func (l *Link) failAttempt(at time.Time, retryE *stats.Kahan) time.Duration {
	d := l.cfg.SetupTime + l.retry.AttemptTimeout
	e := l.cfg.TxPower.Energy(d)
	retryE.Add(float64(e))
	l.mFailures.Inc()
	l.mTxEnergy.Add(float64(e))
	l.mRetryEnergy.Add(float64(e))
	if l.tr != nil {
		l.tr.Instant("uplink retry", "net", obs.TidNetwork, at, map[string]any{
			"tx_joules": float64(e),
			"timeout_s": d.Seconds(),
		})
	}
	if l.lg != nil && e > 0 {
		l.lg.Append(ledger.Entry{
			T: at, Hive: l.lgHive, Device: "edge", Component: "radio",
			Task: "uplink retry", Dir: ledger.Consume,
			Joules: float64(e), Seconds: d.Seconds(),
		})
	}
	return d
}

// Faulted reports whether a fault injector is armed on the link.
func (l *Link) Faulted() bool { return l.inj != nil }

// RetryPolicy returns the armed retry policy (zero value when no
// injector is armed).
func (l *Link) RetryPolicy() faults.RetryPolicy { return l.retry }
