package netsim

import (
	"testing"
	"time"

	"beesim/internal/faults"
	"beesim/internal/ledger"
	"beesim/internal/obs"
)

var chaosEpoch = time.Date(2023, 4, 10, 0, 0, 0, 0, time.UTC)

func totalOutage() faults.Plan {
	return faults.Plan{Link: faults.LinkFaults{
		Outages: []faults.Window{{StartS: 0, DurationS: 1e6}},
	}}
}

func armed(t *testing.T, cfg Config, plan faults.Plan, pol faults.RetryPolicy, m *obs.Registry) *Link {
	t.Helper()
	l, err := NewLink(cfg)
	if err != nil {
		t.Fatal(err)
	}
	inj, err := faults.NewInjector(plan, chaosEpoch)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.AttachFaults(inj, pol, m); err != nil {
		t.Fatal(err)
	}
	return l
}

// TestSendAtNilInjectorMatchesSend: without an injector, SendAt is
// Send — same rng draw sequence, so interleaved calls on equal-seed
// links stay in lockstep.
func TestSendAtNilInjectorMatchesSend(t *testing.T) {
	a, _ := NewLink(DefaultConfig())
	b, _ := NewLink(DefaultConfig())
	for i := 0; i < 50; i++ {
		tr := a.Send(RoutinePayload())
		out := b.SendAt(chaosEpoch, RoutinePayload())
		if !out.Delivered || out.Attempts != 1 || out.RetryEnergy != 0 {
			t.Fatalf("nil-injector outcome carries fault state: %+v", out)
		}
		if out.Transfer != tr || out.TotalDuration != tr.Duration {
			t.Fatalf("nil-injector SendAt diverged from Send: %+v vs %+v", out.Transfer, tr)
		}
	}
	if a.Faulted() || b.Faulted() {
		t.Fatal("unarmed link reports faults")
	}
}

// TestSendAtNilInjectorAllocs: the fault-free path of SendAt must not
// allocate more than Send itself — arming the fault layer is free until
// a plan is actually attached.
func TestSendAtNilInjectorAllocs(t *testing.T) {
	a, _ := NewLink(DefaultConfig())
	b, _ := NewLink(DefaultConfig())
	sendAllocs := testing.AllocsPerRun(200, func() { a.Send(ScalarBatch) })
	sendAtAllocs := testing.AllocsPerRun(200, func() { b.SendAt(chaosEpoch, ScalarBatch) })
	if sendAtAllocs > sendAllocs {
		t.Fatalf("nil-injector SendAt allocates %.1f/op, Send %.1f/op", sendAtAllocs, sendAllocs)
	}
}

// TestZeroEnergyTransferNotLedgered is the regression for the latent
// double-count: a zero-duration or zero-power transfer used to be able
// to record a zero-energy ledger entry on the success path and again on
// the retry path. Both paths must skip entries that carry no joules.
func TestZeroEnergyTransferNotLedgered(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TxPower = 0 // radio draw below the measurement floor
	cfg.Sigma = 0

	// Plain Send: one transfer, zero energy, no entry.
	l, err := NewLink(cfg)
	if err != nil {
		t.Fatal(err)
	}
	lg := ledger.New()
	l.AttachLedger(lg, "h", func() time.Time { return chaosEpoch })
	if tr := l.Send(RoutinePayload()); tr.ExtraEnergy != 0 {
		t.Fatalf("zero-power link burned energy: %+v", tr)
	}
	if lg.Len() != 0 {
		t.Fatalf("zero-energy transfer ledgered %d entr(ies)", lg.Len())
	}

	// Retrying SendAt under a total outage: every attempt fails at zero
	// energy; none of them may appear in the ledger, and the delivered
	// retry on a recovering link may appear at most once.
	lg2 := ledger.New()
	pol := faults.DefaultRetryPolicy()
	l2 := armed(t, cfg, totalOutage(), pol, nil)
	l2.AttachLedger(lg2, "h", func() time.Time { return chaosEpoch })
	out := l2.SendAt(chaosEpoch, RoutinePayload())
	if out.Delivered || out.RetryEnergy != 0 {
		t.Fatalf("zero-power outage episode: %+v", out)
	}
	if lg2.Len() != 0 {
		t.Fatalf("zero-energy retries ledgered %d entr(ies)", lg2.Len())
	}

	// Sanity check the inverse: with real transmit power the same
	// episode records exactly one entry per failed attempt, no dupes.
	lg3 := ledger.New()
	l3 := armed(t, DefaultConfig(), totalOutage(), pol, nil)
	l3.AttachLedger(lg3, "h", func() time.Time { return chaosEpoch })
	l3.SendAt(chaosEpoch, RoutinePayload())
	if lg3.Len() != pol.MaxAttempts {
		t.Fatalf("powered retries ledgered %d entr(ies), want %d", lg3.Len(), pol.MaxAttempts)
	}
}

// TestSendAtRecoversAfterOutage: an outage covering the first attempts
// delays but does not kill the upload; the outcome accounts the failed
// attempts, the backoff waits and the delivered transfer.
func TestSendAtRecoversAfterOutage(t *testing.T) {
	pol := faults.RetryPolicy{
		MaxAttempts: 5, Base: 10 * time.Second, Max: 10 * time.Second,
		Multiplier: 1, JitterFrac: 0, AttemptTimeout: 5 * time.Second,
	}
	// Each failed attempt consumes setup (0.5 s) + timeout (5 s) + 10 s
	// backoff = 15.5 s; an 18 s outage eats the first two attempts.
	plan := faults.Plan{Link: faults.LinkFaults{
		Outages: []faults.Window{{StartS: 0, DurationS: 18}},
	}}
	m := obs.NewRegistry()
	l := armed(t, DefaultConfig(), plan, pol, m)
	out := l.SendAt(chaosEpoch, RoutinePayload())
	if !out.Delivered {
		t.Fatalf("upload died in a finite outage: %+v", out)
	}
	if out.Attempts != 3 {
		t.Fatalf("attempts = %d, want 3 (two eaten by the outage)", out.Attempts)
	}
	perAttempt := DefaultConfig().TxPower.Energy(DefaultConfig().SetupTime + pol.AttemptTimeout)
	if want := 2 * float64(perAttempt); float64(out.RetryEnergy) != want {
		t.Fatalf("retry energy = %v, want %g", out.RetryEnergy, want)
	}
	if out.TotalDuration <= out.Duration {
		t.Fatalf("total duration %v does not include the failed attempts (transfer %v)",
			out.TotalDuration, out.Duration)
	}
	snap := m.Snapshot()
	counters := map[string]float64{}
	for _, c := range snap.Counters {
		counters[c.Name] = c.Value
	}
	if counters[MetricSendAttempts] != 3 || counters[MetricSendFailures] != 2 ||
		counters[MetricSendRetries] != 2 || counters[MetricSendDrops] != 0 {
		t.Fatalf("fault counters wrong: %+v", counters)
	}
}

// TestSendAtDeterminism: equal links, plans and instants produce equal
// outcomes.
func TestSendAtDeterminism(t *testing.T) {
	plan := faults.Plan{Seed: 9, Link: faults.LinkFaults{DropProb: 0.5}}
	pol := faults.DefaultRetryPolicy()
	a := armed(t, DefaultConfig(), plan, pol, nil)
	b := armed(t, DefaultConfig(), plan, pol, nil)
	for i := 0; i < 100; i++ {
		at := chaosEpoch.Add(time.Duration(i) * 10 * time.Minute)
		oa, ob := a.SendAt(at, RoutinePayload()), b.SendAt(at, RoutinePayload())
		if oa != ob {
			t.Fatalf("equal faulted links diverged at %v:\n%+v\n%+v", at, oa, ob)
		}
	}
}
