// Package netsim models the smart beehive's Wi-Fi uplink.
//
// Section IV of the paper attributes the routine-length spread (sigma =
// 3.5 s over 319 routines) to "the variance of the duration of the data
// transfer correlated to the unstable network throughput", and Section V
// observes that "the network components have a larger energy cost than
// the sensors". The model therefore provides a lognormal effective
// throughput around a nominal rate, per-payload transfer durations, and
// the transmit energy implied by the edge device's radio power.
package netsim

import (
	"errors"
	"time"

	"beesim/internal/faults"
	"beesim/internal/ledger"
	"beesim/internal/obs"
	"beesim/internal/rng"
	"beesim/internal/units"
)

// Bytes is a payload size.
type Bytes int64

// Common payload sizes of the deployed routine, from Section III: three
// 10-second audio captures plus five 800x600 images plus scalar sensor
// readings per wake-up.
const (
	// AudioSample10s is one 10 s mono 16-bit capture at 22 050 Hz.
	AudioSample10s Bytes = 441_000
	// Image800x600 is one JPEG-compressed 800x600 camera frame (~0.1 bpp
	// of the raw 24-bit size).
	Image800x600 Bytes = 180_000
	// ScalarBatch is one batch of temperature/humidity/current readings.
	ScalarBatch Bytes = 2_000
)

// RoutinePayload is the full upload of one data-collection routine:
// 3 audio samples, 5 images and the scalar batch.
func RoutinePayload() Bytes {
	return 3*AudioSample10s + 5*Image800x600 + ScalarBatch
}

// Config describes a link.
type Config struct {
	// NominalThroughput is the median effective uplink rate in bytes/s.
	// A busy 2.4 GHz roof deployment delivers well under the PHY rate.
	NominalThroughput float64
	// Sigma is the lognormal shape parameter of the throughput
	// distribution; 0 gives a deterministic link.
	Sigma float64
	// TxPower is the extra electrical power the edge draws while
	// transmitting (radio + CPU busy-wait).
	TxPower units.Watts
	// SetupTime is the per-transfer association/TLS overhead.
	SetupTime time.Duration
	// Seed drives the stochastic throughput.
	Seed uint64
}

// DefaultConfig is calibrated so one full routine payload (≈2.2 MB)
// transfers in about 15 s — the "Send audio + images" duration implied by
// the paper's tables — with enough spread to reproduce the 3.5 s routine
// sigma.
func DefaultConfig() Config {
	return Config{
		NominalThroughput: 150_000, // ~1.2 Mbit/s effective
		Sigma:             0.22,
		TxPower:           0.45, // above-baseline radio draw
		SetupTime:         500 * time.Millisecond,
		Seed:              1,
	}
}

// Link is a stateful uplink model.
type Link struct {
	cfg Config
	r   *rng.Source

	// Observability probes; all nil-safe no-ops until Instrument.
	mTransfers *obs.Counter
	mBytes     *obs.Counter
	mTxEnergy  *obs.Counter
	hSeconds   *obs.Histogram
	tr         *obs.Tracer
	clock      func() time.Time

	// Energy-ledger probe; nil-safe no-op until AttachLedger.
	lg     *ledger.Ledger
	lgHive string

	// Fault-injection state; nil inj keeps Send/SendAt on the exact
	// fault-free path (see faults.go).
	inj          *faults.Injector
	retry        faults.RetryPolicy
	mAttempts    *obs.Counter
	mFailures    *obs.Counter
	mRetries     *obs.Counter
	mDrops       *obs.Counter
	mRetryEnergy *obs.Counter
	mEpisodes    *obs.Counter
	hUploadSecs  *obs.Histogram
	hAttempts    *obs.Histogram
}

// Metric names emitted by an instrumented link.
const (
	MetricTransfers       = "netsim_transfers_total"
	MetricBytes           = "netsim_bytes_total"
	MetricTxEnergyJ       = "netsim_tx_energy_j_total"
	MetricTransferSeconds = "netsim_transfer_seconds"
)

// Instrument attaches metrics and trace probes. clock supplies the
// virtual start time of each transfer (pass the simulation's Now);
// trace spans are skipped when either tr or clock is nil. Each Send
// then counts the transfer, its payload bytes and radio energy,
// observes its duration, and appears as a span on the network track.
func (l *Link) Instrument(m *obs.Registry, tr *obs.Tracer, clock func() time.Time) {
	l.mTransfers = m.Counter(MetricTransfers)
	l.mBytes = m.Counter(MetricBytes)
	l.mTxEnergy = m.Counter(MetricTxEnergyJ)
	l.hSeconds = m.Histogram(MetricTransferSeconds)
	if clock != nil {
		l.tr = tr
		l.clock = clock
	}
}

// AttachLedger wires the energy ledger: each Send appends the radio's
// extra transmit energy as an attribution-only consume entry. The
// entries carry no store because the task-level power envelopes already
// include the radio draw — binding them to the battery would count the
// same joules twice and fail the conservation audit. clock supplies the
// virtual start time of each transfer; entries are skipped when lg or
// clock is nil.
func (l *Link) AttachLedger(lg *ledger.Ledger, hive string, clock func() time.Time) {
	if clock == nil {
		return
	}
	l.lg = lg
	l.lgHive = hive
	l.clock = clock
}

// NewLink creates a link from the configuration.
func NewLink(cfg Config) (*Link, error) {
	if cfg.NominalThroughput <= 0 {
		return nil, errors.New("netsim: non-positive nominal throughput")
	}
	if cfg.Sigma < 0 {
		return nil, errors.New("netsim: negative sigma")
	}
	if cfg.SetupTime < 0 {
		return nil, errors.New("netsim: negative setup time")
	}
	return &Link{cfg: cfg, r: rng.New(cfg.Seed)}, nil
}

// Transfer is the outcome of one upload.
type Transfer struct {
	Payload     Bytes
	Duration    time.Duration
	Throughput  float64      // effective bytes/s achieved
	ExtraEnergy units.Joules // radio energy above the device baseline
}

// Send simulates uploading payload over the link, drawing a fresh
// throughput sample. Zero payloads take only the setup time.
func (l *Link) Send(payload Bytes) Transfer {
	t := l.sample(payload)
	l.mTransfers.Inc()
	l.mBytes.Add(float64(payload))
	l.mTxEnergy.Add(float64(t.ExtraEnergy))
	l.hSeconds.Observe(t.Duration.Seconds())
	if l.tr != nil {
		l.traceTransfer(l.clock(), t)
	}
	if l.lg != nil {
		l.ledgerTransfer(l.clock(), t)
	}
	return t
}

// sample draws one throughput realization and prices the transfer.
func (l *Link) sample(payload Bytes) Transfer {
	if payload < 0 {
		payload = 0
	}
	// Lognormal with median at the nominal rate.
	tput := l.cfg.NominalThroughput
	if l.cfg.Sigma > 0 {
		tput = l.cfg.NominalThroughput * l.r.LogNormal(0, l.cfg.Sigma)
	}
	d := l.cfg.SetupTime +
		time.Duration(float64(payload)/tput*float64(time.Second))
	return Transfer{
		Payload:     payload,
		Duration:    d,
		Throughput:  tput,
		ExtraEnergy: l.cfg.TxPower.Energy(d),
	}
}

// traceTransfer emits the transfer span at its virtual start time.
func (l *Link) traceTransfer(at time.Time, t Transfer) {
	l.tr.Span("uplink transfer", "net", obs.TidNetwork, at, t.Duration, map[string]any{
		"bytes":        int64(t.Payload),
		"throughput_b": t.Throughput,
		"tx_joules":    float64(t.ExtraEnergy),
	})
}

// ledgerTransfer appends the transfer's radio energy. Zero-energy
// transfers (a zero-power radio, or a zero-duration transfer) are
// skipped: they carry no flow, and under retry the same virtual instant
// can see several of them, which would otherwise pile up duplicate
// zero-joule entries at one timestamp.
func (l *Link) ledgerTransfer(at time.Time, t Transfer) {
	if t.ExtraEnergy <= 0 {
		return
	}
	l.lg.Append(ledger.Entry{
		T: at, Hive: l.lgHive, Device: "edge", Component: "radio",
		Task: "uplink transfer", Dir: ledger.Consume,
		Joules: float64(t.ExtraEnergy), Seconds: t.Duration.Seconds(),
	})
}

// ExpectedDuration returns the transfer time at exactly the nominal
// throughput (no sampling), used by deterministic scenario tables.
func (l *Link) ExpectedDuration(payload Bytes) time.Duration {
	if payload < 0 {
		payload = 0
	}
	return l.cfg.SetupTime +
		time.Duration(float64(payload)/l.cfg.NominalThroughput*float64(time.Second))
}
