package netsim

import (
	"math"
	"testing"
	"time"

	"beesim/internal/ledger"
	"beesim/internal/stats"
)

func TestNewLinkValidation(t *testing.T) {
	bad := []Config{
		{NominalThroughput: 0},
		{NominalThroughput: 100, Sigma: -1},
		{NominalThroughput: 100, SetupTime: -time.Second},
	}
	for i, cfg := range bad {
		if _, err := NewLink(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestRoutinePayloadSize(t *testing.T) {
	p := RoutinePayload()
	// 3*441000 + 5*180000 + 2000 = 2,225,000 bytes.
	if p != 2_225_000 {
		t.Fatalf("routine payload = %d, want 2225000", p)
	}
}

func TestDeterministicLink(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Sigma = 0
	l, err := NewLink(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr := l.Send(RoutinePayload())
	want := l.ExpectedDuration(RoutinePayload())
	if tr.Duration != want {
		t.Fatalf("deterministic duration = %v, want %v", tr.Duration, want)
	}
	// Calibration target: full payload ~15 s (paper's send-audio step).
	if tr.Duration < 13*time.Second || tr.Duration > 17*time.Second {
		t.Fatalf("routine transfer = %v, want ~15 s", tr.Duration)
	}
}

func TestThroughputMedianNearNominal(t *testing.T) {
	l, err := NewLink(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var tputs []float64
	for i := 0; i < 2000; i++ {
		tputs = append(tputs, l.Send(AudioSample10s).Throughput)
	}
	med, err := stats.Percentile(tputs, 50)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(med-150_000)/150_000 > 0.05 {
		t.Fatalf("median throughput = %v, want ~150000", med)
	}
}

func TestTransferVarianceMatchesPaperScale(t *testing.T) {
	// The paper reports sigma = 3.5 s on an ~89 s routine dominated by a
	// ~15 s transfer. Our full-payload transfer spread must be in the
	// same range (a few seconds), not milliseconds or minutes.
	l, err := NewLink(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var o stats.Online
	for i := 0; i < 1000; i++ {
		o.Add(l.Send(RoutinePayload()).Duration.Seconds())
	}
	if sd := o.StdDev(); sd < 1 || sd > 7 {
		t.Fatalf("transfer stddev = %.2f s, want 1-7 s", sd)
	}
}

func TestEnergyProportionalToDuration(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Sigma = 0
	l, err := NewLink(cfg)
	if err != nil {
		t.Fatal(err)
	}
	small := l.Send(ScalarBatch)
	large := l.Send(RoutinePayload())
	if large.ExtraEnergy <= small.ExtraEnergy {
		t.Fatal("larger payload did not cost more energy")
	}
	wantJ := 0.45 * large.Duration.Seconds()
	if math.Abs(float64(large.ExtraEnergy)-wantJ) > 1e-9 {
		t.Fatalf("energy = %v, want %v", large.ExtraEnergy, wantJ)
	}
}

func TestZeroAndNegativePayload(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Sigma = 0
	l, err := NewLink(cfg)
	if err != nil {
		t.Fatal(err)
	}
	z := l.Send(0)
	if z.Duration != cfg.SetupTime {
		t.Fatalf("zero payload duration = %v, want setup %v", z.Duration, cfg.SetupTime)
	}
	n := l.Send(-100)
	if n.Duration != cfg.SetupTime || n.Payload != 0 {
		t.Fatalf("negative payload handled wrong: %+v", n)
	}
	if l.ExpectedDuration(-1) != cfg.SetupTime {
		t.Fatal("ExpectedDuration on negative payload wrong")
	}
}

func TestSeedDeterminism(t *testing.T) {
	a, _ := NewLink(DefaultConfig())
	b, _ := NewLink(DefaultConfig())
	for i := 0; i < 100; i++ {
		if a.Send(Image800x600).Duration != b.Send(Image800x600).Duration {
			t.Fatal("equal seeds diverged")
		}
	}
}

func TestLinkLedgerRecordsRadioOverlay(t *testing.T) {
	l, err := NewLink(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	lg := ledger.New()
	at := time.Date(2023, 4, 10, 6, 0, 0, 0, time.UTC)
	l.AttachLedger(lg, "cachan-1", func() time.Time { return at })
	tr := l.Send(RoutinePayload())
	entries := lg.Entries()
	if len(entries) != 1 {
		t.Fatalf("entries = %d, want 1", len(entries))
	}
	e := entries[0]
	if e.Component != "radio" || e.Dir != ledger.Consume ||
		e.Joules != float64(tr.ExtraEnergy) || e.Store != "" {
		t.Fatalf("entry = %+v (transfer %+v)", e, tr)
	}
	// AttachLedger without a clock must stay inert, not panic in Send.
	l2, _ := NewLink(DefaultConfig())
	l2.AttachLedger(lg, "h", nil)
	l2.Send(ScalarBatch)
	if lg.Len() != 1 {
		t.Fatalf("clockless attach recorded entries: %d", lg.Len())
	}
}
