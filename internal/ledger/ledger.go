// Package ledger is beesim's energy ledger: an append-only record of
// every energy flow in a simulation as a typed entry — (virtual time,
// hive, device, component, task, direction, joules) — with a
// conservation auditor on top.
//
// The paper's core claims (Figures 2-3 and 6-9, Tables I and II) are
// energy decompositions: which joules went to sleep, the routine, queen
// detection, the transfer, cloud idle. The metrics registry of
// internal/obs exposes aggregates; the ledger keeps the provenance, so
// a miscounted joule is attributable to a hive and component instead of
// only being visible when a figure looks wrong.
//
// Like internal/obs, the package is stdlib-only and costs nothing when
// unused: every method on a nil *Ledger is a no-op, so instrumented
// packages hold a ledger pointer unconditionally and skip all call-site
// branching in the disabled case.
//
// Determinism: entries are keyed by the virtual simulation clock and
// recorded in append order, so two runs with the same seed produce
// byte-identical JSONL exports (see WriteJSONL) — the same property the
// obs tracer guarantees for Chrome traces.
package ledger

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Direction classifies an energy flow relative to the hive's energy
// store.
type Direction uint8

// The three flow directions.
const (
	// Harvest is energy entering a store (solar joules banked in the
	// battery, after conversion efficiency).
	Harvest Direction = iota
	// Consume is energy leaving a store into a device or task.
	Consume
	// StoreLoss is energy lost inside a store's conversion chain
	// (charge/discharge inefficiency).
	StoreLoss
)

// String returns the direction's wire name.
func (d Direction) String() string {
	switch d {
	case Harvest:
		return "harvest"
	case Consume:
		return "consume"
	case StoreLoss:
		return "store-loss"
	default:
		return fmt.Sprintf("Direction(%d)", int(d))
	}
}

// ParseDirection inverts String.
func ParseDirection(s string) (Direction, error) {
	switch s {
	case "harvest":
		return Harvest, nil
	case "consume":
		return Consume, nil
	case "store-loss":
		return StoreLoss, nil
	default:
		return 0, fmt.Errorf("ledger: unknown direction %q", s)
	}
}

// Entry is one recorded energy flow.
type Entry struct {
	// T is the virtual simulation time of the flow.
	T time.Time
	// Hive identifies the smart beehive ("" for fleet-level flows).
	Hive string
	// Device is the physical unit: "edge" (Pi 3B+), "monitor" (Pi
	// Zero), "panel", "battery", "cloud", "fleet".
	Device string
	// Component is the part within the device: "pi3b", "pi-zero",
	// "pv", "pack", "radio", "server", "service".
	Component string
	// Task is the duty-cycle step or service the joules paid for,
	// using the paper's table row names where one exists ("Sleep",
	// "Send audio", "Queen detection model (CNN)", ...).
	Task string
	// Dir is the flow direction.
	Dir Direction
	// Joules is the flow magnitude (always >= 0; the direction carries
	// the sign).
	Joules float64
	// Seconds is the task duration when the flow covers a time span
	// (0 for instantaneous accounting entries).
	Seconds float64
	// Store names the energy store this flow moves through ("battery"
	// for flows the conservation auditor balances). Entries with an
	// empty Store are attribution overlays — e.g. the radio's share of
	// a routine already counted at the device level, or grid-powered
	// cloud energy — and are excluded from conservation checks.
	Store string
}

// StoreDelta records a store's energy level at the start and end of a
// run, letting the auditor balance flows against the observed change.
type StoreDelta struct {
	Hive     string
	Store    string
	InitialJ float64
	FinalJ   float64
}

// DeltaJ returns the net change of stored energy over the run.
func (d StoreDelta) DeltaJ() float64 { return d.FinalJ - d.InitialJ }

// Ledger accumulates entries. Construct with New (unbounded) or
// NewRing (flight-recorder mode keeping only the last n entries). A
// nil *Ledger ignores all operations, so instrumented code can hold
// one unconditionally.
type Ledger struct {
	mu      sync.Mutex
	cap     int // 0 = unbounded
	entries []Entry
	head    int    // ring start index once full
	total   uint64 // lifetime appends (>= retained count in ring mode)
	stores  map[string]StoreDelta

	// Flight recorder: Trip dumps the retained entries to dumpW.
	dumpW io.Writer
	trips int
}

// New creates an unbounded ledger.
func New() *Ledger { return &Ledger{stores: map[string]StoreDelta{}} }

// NewRing creates a flight-recorder ledger retaining only the last n
// entries (n must be positive). Aggregations and audits then see only
// the retained window; use an unbounded ledger for full-run audits.
func NewRing(n int) (*Ledger, error) {
	if n <= 0 {
		return nil, fmt.Errorf("ledger: non-positive ring size %d", n)
	}
	return &Ledger{cap: n, stores: map[string]StoreDelta{}}, nil
}

// Append records one entry. Negative or NaN joules are recorded as-is;
// the auditor, not the hot path, judges them. A nil ledger is a no-op.
func (l *Ledger) Append(e Entry) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.total++
	if l.cap > 0 && len(l.entries) == l.cap {
		l.entries[l.head] = e
		l.head = (l.head + 1) % l.cap
	} else {
		l.entries = append(l.entries, e)
	}
	l.mu.Unlock()
}

// Len returns the number of retained entries (0 for a nil ledger).
func (l *Ledger) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.entries)
}

// Total returns the lifetime append count, including entries a ring
// has already overwritten.
func (l *Ledger) Total() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Entries returns a copy of the retained entries in append order.
func (l *Ledger) Entries() []Entry {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.entriesLocked()
}

func (l *Ledger) entriesLocked() []Entry {
	out := make([]Entry, 0, len(l.entries))
	out = append(out, l.entries[l.head:]...)
	out = append(out, l.entries[:l.head]...)
	return out
}

// SetStore registers (or updates) a store's start/end energy levels
// for the conservation audit. A nil ledger is a no-op.
func (l *Ledger) SetStore(hive, store string, initialJ, finalJ float64) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.stores[hive+"\x00"+store] = StoreDelta{
		Hive: hive, Store: store, InitialJ: initialJ, FinalJ: finalJ,
	}
	l.mu.Unlock()
}

// Stores returns the registered store deltas sorted by (hive, store).
func (l *Ledger) Stores() []StoreDelta {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.storesLocked()
}

func (l *Ledger) storesLocked() []StoreDelta {
	out := make([]StoreDelta, 0, len(l.stores))
	for _, d := range l.stores {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Hive != out[j].Hive {
			return out[i].Hive < out[j].Hive
		}
		return out[i].Store < out[j].Store
	})
	return out
}

// AutoDump arms the flight recorder: each Trip writes the retained
// entries to w as JSONL behind a trip-header line. Pass nil to disarm.
func (l *Ledger) AutoDump(w io.Writer) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.dumpW = w
	l.mu.Unlock()
}

// Trips returns how many times the flight recorder fired.
func (l *Ledger) Trips() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.trips
}

// Trip fires the flight recorder: when AutoDump armed a writer, the
// retained entries (the last N events in ring mode) are dumped as
// JSONL after a header line recording the reason and how many earlier
// entries the ring already dropped. Probes call this on auditor
// violations and battery cutoffs. Dump errors are returned but leave
// the ledger usable. A nil or disarmed ledger only counts the trip.
func (l *Ledger) Trip(reason string) error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.trips++
	if l.dumpW == nil {
		return nil
	}
	dropped := l.total - uint64(len(l.entries))
	if err := writeTripHeader(l.dumpW, reason, dropped); err != nil {
		return err
	}
	return writeEntries(l.dumpW, l.entriesLocked())
}
