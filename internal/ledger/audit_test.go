package ledger

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// TestAuditConservation is the auditor's table: a balanced hive passes,
// a deliberately lossy battery (its discharge loss never reported) is
// attributed to the store, and a double-counted routine probe is
// attributed to the over-counted component.
func TestAuditConservation(t *testing.T) {
	base := func() *Ledger {
		l := New()
		l.Append(entry(0, "h1", "battery", "pack", "charge", Harvest, 100))
		l.Append(entry(1, "h1", "edge", "pi3b", "Data collection routine", Consume, 60))
		l.Append(entry(2, "h1", "monitor", "pi-zero", "monitor", Consume, 20))
		l.Append(entry(3, "h1", "battery", "pack", "discharge loss", StoreLoss, 8))
		l.SetStore("h1", "battery", 50, 62) // delta +12 = 100 − 80 − 8
		return l
	}

	cases := []struct {
		name    string
		mutate  func(*Ledger)
		wantOK  bool
		suspect string
		sign    int // sign of the expected residual
	}{
		{
			name:   "balanced books pass",
			mutate: func(*Ledger) {},
			wantOK: true,
		},
		{
			name: "lossy battery config with unreported loss",
			mutate: func(l *Ledger) {
				// The pack actually lost 8 J more than its probe said:
				// the stored energy ends lower than the books explain.
				l.SetStore("h1", "battery", 50, 54)
			},
			wantOK:  false,
			suspect: "battery",
			sign:    +1,
		},
		{
			name: "double-counted routine probe",
			mutate: func(l *Ledger) {
				l.Append(entry(4, "h1", "edge", "pi3b", "Data collection routine", Consume, 60))
			},
			wantOK:  false,
			suspect: "pi3b",
			sign:    -1,
		},
		{
			name: "store registered with flows missing entirely",
			mutate: func(l *Ledger) {
				l.SetStore("h2", "battery", 10, 40)
			},
			wantOK:  false,
			suspect: "battery",
			sign:    -1,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			l := base()
			tc.mutate(l)
			rep := Audit(l, DefaultTolerance())
			if rep.OK() != tc.wantOK {
				t.Fatalf("OK = %v, want %v (%v)", rep.OK(), tc.wantOK, rep.Violations)
			}
			if tc.wantOK {
				if rep.StoresChecked == 0 || rep.EntriesAudited == 0 {
					t.Fatalf("clean audit checked nothing: %+v", rep)
				}
				return
			}
			if len(rep.Violations) != 1 {
				t.Fatalf("violations = %d, want 1: %v", len(rep.Violations), rep.Violations)
			}
			v := rep.Violations[0]
			if v.Suspect != tc.suspect {
				t.Fatalf("suspect = %q, want %q (%v)", v.Suspect, tc.suspect, v)
			}
			if tc.sign > 0 && v.ResidualJ <= 0 || tc.sign < 0 && v.ResidualJ >= 0 {
				t.Fatalf("residual sign = %v, want sign %d", v.ResidualJ, tc.sign)
			}
		})
	}
}

func TestAuditViolationNamesHive(t *testing.T) {
	l := New()
	l.Append(entry(0, "lyon-3", "battery", "pack", "charge", Harvest, 10))
	l.SetStore("lyon-3", "battery", 0, 0)
	rep := Audit(l, DefaultTolerance())
	if rep.OK() {
		t.Fatal("10 harvested joules vanished; audit should fail")
	}
	v := rep.Violations[0]
	if v.Hive != "lyon-3" || v.Store != "battery" {
		t.Fatalf("violation attribution = %+v", v)
	}
}

func TestAuditToleranceAbsorbsFloatDrift(t *testing.T) {
	l := New()
	var consumed float64
	// A megajoule of tiny flows: accumulation error stays far under the
	// relative tolerance.
	for i := 0; i < 10000; i++ {
		l.Append(entry(i, "h", "edge", "pi3b", "Sleep", Consume, 100.0001))
		consumed += 100.0001
	}
	l.Append(entry(10001, "h", "battery", "pack", "charge", Harvest, 2e6))
	l.SetStore("h", "battery", 0, 2e6-consumed)
	if rep := Audit(l, DefaultTolerance()); !rep.OK() {
		t.Fatalf("drift-scale residual flagged: %v", rep.Violations)
	}
	// A zero-tolerance audit of a 1 J hole must still fire.
	l.SetStore("h", "battery", 0, 2e6-consumed-1)
	if rep := Audit(l, Tolerance{}); rep.OK() {
		t.Fatal("1 J hole passed a zero tolerance")
	}
}

func TestAuditIgnoresAttributionOnlyEntries(t *testing.T) {
	l := New()
	l.Append(entry(0, "h", "battery", "pack", "charge", Harvest, 50))
	l.Append(entry(1, "h", "edge", "pi3b", "routine", Consume, 50))
	// Radio overlay: already inside the routine's power envelope, so it
	// carries no store and must not double-count.
	l.Append(Entry{T: t0, Hive: "h", Device: "edge", Component: "radio",
		Task: "uplink transfer", Dir: Consume, Joules: 7})
	l.SetStore("h", "battery", 100, 100)
	rep := Audit(l, DefaultTolerance())
	if !rep.OK() {
		t.Fatalf("attribution overlay double-counted: %v", rep.Violations)
	}
	if rep.AttributionOnly != 1 {
		t.Fatalf("AttributionOnly = %d, want 1", rep.AttributionOnly)
	}
}

func TestAuditNaNIsViolation(t *testing.T) {
	l := New()
	l.Append(entry(0, "h", "battery", "pack", "charge", Harvest, math.NaN()))
	l.SetStore("h", "battery", 0, 0)
	if rep := Audit(l, DefaultTolerance()); rep.OK() {
		t.Fatal("NaN joules audited clean")
	}
}

// TestAuditTripFiresFlightRecorder: a failed audit on an armed ring
// dumps the retained window, exactly like a battery cutoff would.
func TestAuditTripFiresFlightRecorder(t *testing.T) {
	l, err := NewRing(4)
	if err != nil {
		t.Fatal(err)
	}
	var dump bytes.Buffer
	l.AutoDump(&dump)
	l.Append(entry(0, "h", "edge", "pi3b", "Sleep", Consume, 10))
	l.SetStore("h", "battery", 100, 100) // 10 J vanished

	rep, tripErr := AuditTrip(l, DefaultTolerance())
	if tripErr != nil {
		t.Fatal(tripErr)
	}
	if rep.OK() {
		t.Fatal("unbalanced ledger audited clean")
	}
	if l.Trips() != 1 {
		t.Fatalf("trips = %d, want 1", l.Trips())
	}
	out := dump.String()
	if !strings.Contains(out, `"k":"trip"`) || !strings.Contains(out, "violation") {
		t.Fatalf("dump missing trip header: %s", out)
	}
	if !strings.Contains(out, `"task":"Sleep"`) {
		t.Fatalf("dump missing retained entry: %s", out)
	}

	// A clean ledger must not trip.
	clean := New()
	clean.Append(entry(0, "h", "battery", "pack", "charge", Harvest, 10))
	clean.SetStore("h", "battery", 0, 10)
	if rep, err := AuditTrip(clean, DefaultTolerance()); err != nil || !rep.OK() {
		t.Fatalf("clean audit: rep=%v err=%v", rep, err)
	}
	if clean.Trips() != 0 {
		t.Fatalf("clean ledger tripped %d time(s)", clean.Trips())
	}
}
