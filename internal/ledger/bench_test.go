package ledger

import (
	"testing"
	"time"
)

var benchEntry = Entry{
	T:    time.Date(2023, 4, 10, 0, 0, 0, 0, time.UTC),
	Hive: "cachan-1", Device: "edge", Component: "pi3b",
	Task: "Sleep", Dir: Consume, Joules: 111.6, Seconds: 178.5,
	Store: "battery",
}

// BenchmarkLedgerAppend measures the enabled hot path: one mutex
// round-trip plus an amortized slice append.
func BenchmarkLedgerAppend(b *testing.B) {
	l := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Append(benchEntry)
	}
}

// BenchmarkLedgerAppendRing measures flight-recorder mode, whose
// steady state overwrites in place and never allocates.
func BenchmarkLedgerAppendRing(b *testing.B) {
	l, err := NewRing(1024)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Append(benchEntry)
	}
}

// BenchmarkLedgerAppendNil measures the disabled path every
// instrumented package pays when no ledger is attached: a single nil
// check. The DES-loop bound lives in the root bench suite
// (BenchmarkDESLoopLedgerNil, <= 5% over the bare loop).
func BenchmarkLedgerAppendNil(b *testing.B) {
	var l *Ledger
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Append(benchEntry)
	}
}
