package ledger

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

var t0 = time.Date(2023, 4, 10, 0, 0, 0, 0, time.UTC)

func entry(minute int, hive, device, component, task string, dir Direction, j float64) Entry {
	return Entry{
		T:    t0.Add(time.Duration(minute) * time.Minute),
		Hive: hive, Device: device, Component: component, Task: task,
		Dir: dir, Joules: j, Store: "battery",
	}
}

func TestNilLedgerIsNoOp(t *testing.T) {
	var l *Ledger
	l.Append(entry(0, "h", "edge", "pi3b", "Sleep", Consume, 1))
	l.SetStore("h", "battery", 0, 0)
	l.AutoDump(&bytes.Buffer{})
	if err := l.Trip("test"); err != nil {
		t.Fatalf("nil Trip: %v", err)
	}
	if l.Len() != 0 || l.Total() != 0 || l.Entries() != nil || l.Stores() != nil || l.Trips() != 0 {
		t.Fatal("nil ledger leaked state")
	}
	var buf bytes.Buffer
	if err := l.WriteJSONL(&buf); err != nil {
		t.Fatalf("nil WriteJSONL: %v", err)
	}
	if got := buf.String(); got != `{"k":"hdr","v":1}`+"\n" {
		t.Fatalf("nil WriteJSONL = %q, want bare header", got)
	}
	if rep := Audit(l, DefaultTolerance()); !rep.OK() {
		t.Fatalf("nil audit not OK: %v", rep)
	}
}

func TestAppendAndEntriesOrder(t *testing.T) {
	l := New()
	for i := 0; i < 5; i++ {
		l.Append(entry(i, "h", "edge", "pi3b", "Sleep", Consume, float64(i)))
	}
	got := l.Entries()
	if len(got) != 5 || l.Len() != 5 || l.Total() != 5 {
		t.Fatalf("len=%d total=%d", l.Len(), l.Total())
	}
	for i, e := range got {
		if e.Joules != float64(i) {
			t.Fatalf("entry %d out of order: %v", i, e.Joules)
		}
	}
}

func TestRingRetainsLastN(t *testing.T) {
	l, err := NewRing(3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		l.Append(entry(i, "h", "edge", "pi3b", "Sleep", Consume, float64(i)))
	}
	if l.Len() != 3 || l.Total() != 7 {
		t.Fatalf("len=%d total=%d, want 3/7", l.Len(), l.Total())
	}
	got := l.Entries()
	for i, want := range []float64{4, 5, 6} {
		if got[i].Joules != want {
			t.Fatalf("ring[%d] = %v, want %v", i, got[i].Joules, want)
		}
	}
	if _, err := NewRing(0); err == nil {
		t.Fatal("NewRing(0) should fail")
	}
}

func TestFlightRecorderTrip(t *testing.T) {
	l, err := NewRing(2)
	if err != nil {
		t.Fatal(err)
	}
	var dump bytes.Buffer
	l.AutoDump(&dump)
	for i := 0; i < 4; i++ {
		l.Append(entry(i, "h", "edge", "pi3b", "Sleep", Consume, float64(i)))
	}
	if err := l.Trip("battery cutoff"); err != nil {
		t.Fatal(err)
	}
	if l.Trips() != 1 {
		t.Fatalf("trips = %d", l.Trips())
	}
	out := dump.String()
	if !strings.Contains(out, `"k":"trip"`) || !strings.Contains(out, "battery cutoff") {
		t.Fatalf("dump missing trip header: %q", out)
	}
	if !strings.Contains(out, `"dropped":2`) {
		t.Fatalf("dump missing dropped count: %q", out)
	}
	// The dump is itself a readable ledger (trip header tolerated).
	back, err := ReadJSONL(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 2 {
		t.Fatalf("dump reparse = %d entries, want 2", back.Len())
	}
}

func TestJSONLRoundTripAndDeterminism(t *testing.T) {
	build := func() *Ledger {
		l := New()
		l.Append(entry(0, "cachan-1", "edge", "pi3b", "Wake up & Data collection", Consume, 131.8))
		l.Append(Entry{T: t0.Add(time.Second), Hive: "cachan-1", Device: "panel",
			Component: "pv", Task: "panel output", Dir: Harvest, Joules: 12.25, Seconds: 60})
		l.Append(Entry{T: t0.Add(2 * time.Second), Hive: "cachan-1", Device: "battery",
			Component: "pack", Task: "discharge loss", Dir: StoreLoss, Joules: 0.5, Store: "battery"})
		l.SetStore("cachan-1", "battery", 100, 90)
		return l
	}
	var a, b bytes.Buffer
	if err := build().WriteJSONL(&a); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two identical ledgers exported different bytes")
	}

	back, err := ReadJSONL(bytes.NewReader(a.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	orig := build()
	if got, want := back.Entries(), orig.Entries(); len(got) != len(want) {
		t.Fatalf("round trip: %d entries, want %d", len(got), len(want))
	} else {
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("entry %d: got %+v, want %+v", i, got[i], want[i])
			}
		}
	}
	stores := back.Stores()
	if len(stores) != 1 || stores[0] != (StoreDelta{Hive: "cachan-1", Store: "battery", InitialJ: 100, FinalJ: 90}) {
		t.Fatalf("round trip stores = %+v", stores)
	}

	// Re-export of the parsed ledger is byte-identical too.
	var c bytes.Buffer
	if err := back.WriteJSONL(&c); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), c.Bytes()) {
		t.Fatal("re-export after parse changed bytes")
	}
}

func TestReadJSONLRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"{not json}\n",
		`{"k":"e","t":"not a time","dev":"edge","task":"x","dir":"consume","j":1}` + "\n",
		`{"k":"e","t":"2023-04-10T00:00:00Z","dev":"edge","task":"x","dir":"sideways","j":1}` + "\n",
	} {
		if _, err := ReadJSONL(strings.NewReader(bad)); err == nil {
			t.Fatalf("ReadJSONL(%q) should fail", bad)
		}
	}
	// Unknown kinds are skipped, not errors.
	l, err := ReadJSONL(strings.NewReader(`{"k":"future-thing","x":1}` + "\n"))
	if err != nil {
		t.Fatal(err)
	}
	if l.Len() != 0 {
		t.Fatal("unknown kind produced entries")
	}
}

func TestDirectionStringsRoundTrip(t *testing.T) {
	for _, d := range []Direction{Harvest, Consume, StoreLoss} {
		back, err := ParseDirection(d.String())
		if err != nil || back != d {
			t.Fatalf("round trip %v: %v, %v", d, back, err)
		}
	}
	if _, err := ParseDirection("nope"); err == nil {
		t.Fatal("ParseDirection should reject unknown names")
	}
}

func TestBreakdownAggregatesAndSorts(t *testing.T) {
	entries := []Entry{
		entry(0, "b", "edge", "pi3b", "Sleep", Consume, 10),
		entry(1, "a", "edge", "pi3b", "Sleep", Consume, 5),
		entry(2, "a", "edge", "pi3b", "Sleep", Consume, 7),
		entry(3, "a", "monitor", "pi-zero", "monitor", Consume, 3),
	}
	rows := Breakdown(entries, "")
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	if rows[0].Hive != "a" || rows[0].Joules != 12 || rows[0].Count != 2 {
		t.Fatalf("first row = %+v", rows[0])
	}
	if rows[2].Hive != "b" {
		t.Fatalf("rows not sorted by hive: %+v", rows)
	}
	only := Breakdown(entries, "b")
	if len(only) != 1 || only[0].Joules != 10 {
		t.Fatalf("hive filter: %+v", only)
	}
	if hs := Hives(entries); len(hs) != 2 || hs[0] != "a" || hs[1] != "b" {
		t.Fatalf("Hives = %v", hs)
	}
}

func TestDiffRanksLargestMovement(t *testing.T) {
	a := []Entry{
		entry(0, "h", "edge", "pi3b", "Queen detection model (CNN)", Consume, 94.8),
		entry(1, "h", "edge", "pi3b", "Sleep", Consume, 111.6),
	}
	b := []Entry{
		entry(0, "h", "cloud", "server", "Idle", Consume, 9415),
		entry(1, "h", "edge", "pi3b", "Sleep", Consume, 131.9),
		entry(2, "h", "edge", "radio", "Send audio", Consume, 37.3),
	}
	rows := Diff(a, b)
	if len(rows) != 4 {
		t.Fatalf("diff rows = %d, want 4", len(rows))
	}
	if rows[0].Task != "Idle" || rows[0].DeltaJ != 9415 {
		t.Fatalf("largest movement should be cloud idle: %+v", rows[0])
	}
	// The dropped edge inference appears with a negative delta.
	found := false
	for _, r := range rows {
		if r.Task == "Queen detection model (CNN)" && r.DeltaJ == -94.8 && r.BJ == 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing negative delta row: %+v", rows)
	}
}
