package ledger

import (
	"bytes"
	"testing"
)

// FuzzReadJSONL hammers the JSONL event-log decoder with hostile
// input. Two properties must hold for every input:
//
//  1. ReadJSONL never panics — it either parses or returns an error.
//  2. Anything it accepts round-trips: writing the parsed ledger and
//     reading it back must reproduce the written bytes exactly, the
//     same byte-stability bar the equal-seed export contract sets.
func FuzzReadJSONL(f *testing.F) {
	seeds := []string{
		// A complete well-formed log.
		`{"k":"hdr","v":1}
{"k":"e","t":"2023-07-01T12:00:00Z","hive":"h1","dev":"edge","comp":"cpu","task":"detect","dir":"consume","j":1.25,"s":0.5,"store":"battery"}
{"k":"e","t":"2023-07-01T12:00:01.5Z","dev":"panel","task":"harvest","dir":"harvest","j":3.5}
{"k":"store","hive":"h1","store":"battery","initial_j":100,"final_j":98.25}
`,
		// Flight-recorder dump header and an unknown kind to skip.
		`{"k":"hdr","v":1}
{"k":"trip","reason":"audit","dropped":12}
{"k":"future-kind","payload":true}
`,
		// Store-loss flow and exponent-heavy numbers.
		`{"k":"e","t":"2023-07-01T00:00:00Z","dev":"d","task":"t","dir":"store-loss","j":1e-9}`,
		// Malformed lines the decoder must reject, not crash on.
		`{"k":"e","t":"not a time","dev":"d","task":"t","dir":"consume","j":1}`,
		`{"k":"e","t":"2023-07-01T00:00:00Z","dev":"d","task":"t","dir":"sideways","j":1}`,
		`{"k":"e","j":1e999}`,
		`{"k":`,
		`not json at all`,
		"",
		"\n\n\n",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		l, err := ReadJSONL(bytes.NewReader(data))
		if err != nil {
			return // rejected input is fine; panicking is not
		}
		var first bytes.Buffer
		if err := l.WriteJSONL(&first); err != nil {
			t.Fatalf("write of accepted ledger failed: %v", err)
		}
		l2, err := ReadJSONL(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("re-read of own output failed: %v\noutput:\n%s", err, first.Bytes())
		}
		var second bytes.Buffer
		if err := l2.WriteJSONL(&second); err != nil {
			t.Fatalf("second write failed: %v", err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Errorf("round trip not stable:\n--- first ---\n%s\n--- second ---\n%s",
				first.Bytes(), second.Bytes())
		}
	})
}
