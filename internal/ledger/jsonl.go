package ledger

// JSONL export/import: the ledger's structured event log. One JSON
// object per line, virtual-time keyed, with fixed field order, so two
// equal-seed runs export byte-identical files — the same acceptance
// bar as the obs tracer. Every line carries a "k" kind tag:
//
//	{"k":"hdr","v":1}                                  version header
//	{"k":"e","t":"...","hive":...,...}                 one entry
//	{"k":"store","hive":...,"store":...,...}           store delta
//	{"k":"trip","reason":...,"dropped":N}              flight-recorder dump header
//
// Readers must ignore unknown kinds, so the format can grow.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// Version is the JSONL schema version written in the header line.
const Version = 1

// wireEntry is the JSON shape of one entry. Field order here fixes
// the byte layout (encoding/json marshals struct fields in declaration
// order).
type wireEntry struct {
	K         string  `json:"k"`
	T         string  `json:"t"`
	Hive      string  `json:"hive,omitempty"`
	Device    string  `json:"dev"`
	Component string  `json:"comp,omitempty"`
	Task      string  `json:"task"`
	Dir       string  `json:"dir"`
	Joules    float64 `json:"j"`
	Seconds   float64 `json:"s,omitempty"`
	Store     string  `json:"store,omitempty"`
}

type wireHeader struct {
	K string `json:"k"`
	V int    `json:"v"`
}

type wireStore struct {
	K        string  `json:"k"`
	Hive     string  `json:"hive,omitempty"`
	Store    string  `json:"store"`
	InitialJ float64 `json:"initial_j"`
	FinalJ   float64 `json:"final_j"`
}

type wireTrip struct {
	K       string `json:"k"`
	Reason  string `json:"reason"`
	Dropped uint64 `json:"dropped"`
}

// timeFormat keys entries by virtual time with enough resolution for
// sub-second simulation steps while staying byte-stable.
const timeFormat = time.RFC3339Nano

func writeLine(w io.Writer, v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	if _, err := w.Write(b); err != nil {
		return err
	}
	_, err = io.WriteString(w, "\n")
	return err
}

func writeEntries(w io.Writer, entries []Entry) error {
	bw := bufio.NewWriter(w)
	for _, e := range entries {
		we := wireEntry{
			K:         "e",
			T:         e.T.UTC().Format(timeFormat),
			Hive:      e.Hive,
			Device:    e.Device,
			Component: e.Component,
			Task:      e.Task,
			Dir:       e.Dir.String(),
			Joules:    e.Joules,
			Seconds:   e.Seconds,
			Store:     e.Store,
		}
		if err := writeLine(bw, we); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func writeTripHeader(w io.Writer, reason string, dropped uint64) error {
	return writeLine(w, wireTrip{K: "trip", Reason: reason, Dropped: dropped})
}

// WriteJSONL writes the retained entries and registered store deltas
// as a self-contained JSONL event log: header line, entries in append
// order, store lines sorted by (hive, store). A nil ledger writes only
// the header so the output is still a valid (empty) log.
func (l *Ledger) WriteJSONL(w io.Writer) error {
	if err := writeLine(w, wireHeader{K: "hdr", V: Version}); err != nil {
		return err
	}
	if l == nil {
		return nil
	}
	l.mu.Lock()
	entries := l.entriesLocked()
	stores := l.storesLocked()
	l.mu.Unlock()
	if err := writeEntries(w, entries); err != nil {
		return err
	}
	for _, d := range stores {
		ws := wireStore{K: "store", Hive: d.Hive, Store: d.Store,
			InitialJ: d.InitialJ, FinalJ: d.FinalJ}
		if err := writeLine(w, ws); err != nil {
			return err
		}
	}
	return nil
}

// ReadJSONL parses a JSONL event log back into a ledger (entries plus
// store deltas). Trip headers are tolerated — a flight-recorder dump
// is a readable ledger — and unknown kinds are skipped for forward
// compatibility. Malformed lines are errors: a truncated ledger should
// fail loudly, not silently lose joules.
func ReadJSONL(r io.Reader) (*Ledger, error) {
	l := New()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var kind struct {
			K string `json:"k"`
		}
		if err := json.Unmarshal(line, &kind); err != nil {
			return nil, fmt.Errorf("ledger: line %d: %w", lineNo, err)
		}
		switch kind.K {
		case "e":
			var we wireEntry
			if err := json.Unmarshal(line, &we); err != nil {
				return nil, fmt.Errorf("ledger: line %d: %w", lineNo, err)
			}
			t, err := time.Parse(timeFormat, we.T)
			if err != nil {
				return nil, fmt.Errorf("ledger: line %d: %w", lineNo, err)
			}
			dir, err := ParseDirection(we.Dir)
			if err != nil {
				return nil, fmt.Errorf("ledger: line %d: %w", lineNo, err)
			}
			l.Append(Entry{
				T: t, Hive: we.Hive, Device: we.Device, Component: we.Component,
				Task: we.Task, Dir: dir, Joules: we.Joules, Seconds: we.Seconds,
				Store: we.Store,
			})
		case "store":
			var ws wireStore
			if err := json.Unmarshal(line, &ws); err != nil {
				return nil, fmt.Errorf("ledger: line %d: %w", lineNo, err)
			}
			l.SetStore(ws.Hive, ws.Store, ws.InitialJ, ws.FinalJ)
		case "hdr", "trip":
			// Header and trip markers carry no flows.
		default:
			// Unknown kind: skip (forward compatibility).
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return l, nil
}
