package ledger

// Conservation auditing: per hive and per store, the flows must
// balance the observed change of stored energy,
//
//	harvested − consumed − conversion losses = ΔSoC·capacity
//
// within a tolerance. A violation is a structured report — never a
// panic — naming the hive, the residual joules, and the most likely
// suspect component, so a double-counted probe or an unreported loss
// is attributable instead of surfacing as a wrong figure.

import (
	"fmt"
	"math"
	"sort"
)

// Tolerance bounds the acceptable conservation residual: a store
// passes when |residual| <= AbsJ + Rel * scale, where scale is the
// gross energy moved through the store (harvest + consume + loss +
// |delta|). The relative term absorbs float64 accumulation drift on
// megajoule-scale runs; the absolute term keeps tiny runs honest.
type Tolerance struct {
	AbsJ float64
	Rel  float64
}

// DefaultTolerance is the documented audit bar: one millijoule plus
// one part per billion of gross flow.
func DefaultTolerance() Tolerance { return Tolerance{AbsJ: 1e-3, Rel: 1e-9} }

// Violation is one failed conservation check.
type Violation struct {
	Hive  string
	Store string
	// The balance terms, in joules.
	HarvestJ float64
	ConsumeJ float64
	LossJ    float64
	DeltaJ   float64
	// ResidualJ = HarvestJ − ConsumeJ − LossJ − DeltaJ. Negative
	// residuals mean more energy left the books than the store
	// delivered (e.g. a double-counted consumer); positive residuals
	// mean harvested energy is unaccounted for (e.g. an unreported
	// conversion loss).
	ResidualJ float64
	// AllowedJ is the tolerance the residual exceeded.
	AllowedJ float64
	// Suspect is the best-effort attribution: the largest consumer
	// component when the books over-consume, the store itself when
	// energy went missing inside it.
	Suspect string
	// PerComponent maps each consuming component to its total joules,
	// for manual investigation.
	PerComponent map[string]float64
}

// String formats the violation for logs.
func (v Violation) String() string {
	return fmt.Sprintf(
		"hive %q store %q: harvest %.3f − consume %.3f − loss %.3f − Δ %.3f = residual %+.6f J (allowed ±%.6f, suspect %q)",
		v.Hive, v.Store, v.HarvestJ, v.ConsumeJ, v.LossJ, v.DeltaJ,
		v.ResidualJ, v.AllowedJ, v.Suspect)
}

// AuditReport summarizes one conservation audit.
type AuditReport struct {
	// StoresChecked counts (hive, store) pairs with a registered delta.
	StoresChecked int
	// EntriesAudited counts store-bound entries folded into balances.
	EntriesAudited int
	// AttributionOnly counts entries with no store (overlays the audit
	// ignores by design).
	AttributionOnly int
	// Violations lists every failed balance, sorted by (hive, store).
	Violations []Violation
}

// OK reports whether the audit found no violations.
func (r AuditReport) OK() bool { return len(r.Violations) == 0 }

// String formats a one-line summary.
func (r AuditReport) String() string {
	if r.OK() {
		return fmt.Sprintf("conservation audit: ok (%d store(s), %d entries balanced, %d attribution-only)",
			r.StoresChecked, r.EntriesAudited, r.AttributionOnly)
	}
	return fmt.Sprintf("conservation audit: %d violation(s) over %d store(s)",
		len(r.Violations), r.StoresChecked)
}

type balance struct {
	harvest, consume, loss float64
	entries                int
	perComponent           map[string]float64
}

// Audit balances the ledger's store-bound entries against its
// registered store deltas. Entries naming a (hive, store) pair with no
// registered delta are balanced against an implicit zero delta — an
// unregistered store is more often a missing SetStore call than a
// perfectly cyclic battery, and the violation points there. A nil
// ledger audits clean.
func Audit(l *Ledger, tol Tolerance) AuditReport {
	var rep AuditReport
	if l == nil {
		return rep
	}
	entries := l.Entries()
	deltas := l.Stores()

	balances := map[string]*balance{}
	key := func(hive, store string) string { return hive + "\x00" + store }
	for _, e := range entries {
		if e.Store == "" {
			rep.AttributionOnly++
			continue
		}
		b := balances[key(e.Hive, e.Store)]
		if b == nil {
			b = &balance{perComponent: map[string]float64{}}
			balances[key(e.Hive, e.Store)] = b
		}
		b.entries++
		rep.EntriesAudited++
		switch e.Dir {
		case Harvest:
			b.harvest += e.Joules
		case Consume:
			b.consume += e.Joules
			b.perComponent[componentName(e)] += e.Joules
		case StoreLoss:
			b.loss += e.Joules
		}
	}

	// Every registered store is checked even with zero entries (a
	// non-zero delta with no flows is itself a violation); every
	// entry-bearing store is checked even without a delta.
	seen := map[string]bool{}
	var checks []StoreDelta
	for _, d := range deltas {
		checks = append(checks, d)
		seen[key(d.Hive, d.Store)] = true
	}
	for k := range balances {
		if !seen[k] {
			hive, store := splitKey(k)
			checks = append(checks, StoreDelta{Hive: hive, Store: store})
		}
	}
	sort.Slice(checks, func(i, j int) bool {
		if checks[i].Hive != checks[j].Hive {
			return checks[i].Hive < checks[j].Hive
		}
		return checks[i].Store < checks[j].Store
	})

	for _, d := range checks {
		rep.StoresChecked++
		b := balances[key(d.Hive, d.Store)]
		if b == nil {
			b = &balance{perComponent: map[string]float64{}}
		}
		delta := d.DeltaJ()
		residual := b.harvest - b.consume - b.loss - delta
		scale := b.harvest + b.consume + b.loss + math.Abs(delta)
		allowed := tol.AbsJ + tol.Rel*scale
		if math.Abs(residual) <= allowed && !anyNaN(residual, allowed) {
			continue
		}
		rep.Violations = append(rep.Violations, Violation{
			Hive: d.Hive, Store: d.Store,
			HarvestJ: b.harvest, ConsumeJ: b.consume, LossJ: b.loss,
			DeltaJ: delta, ResidualJ: residual, AllowedJ: allowed,
			Suspect:      suspect(d.Store, residual, b.perComponent),
			PerComponent: b.perComponent,
		})
	}
	return rep
}

// AuditTrip runs Audit and fires the flight recorder when the report
// has violations, so an armed ring dumps its retained window for
// post-mortem the same way a battery cutoff does. The trip error (a
// failed dump write) is returned alongside the report.
func AuditTrip(l *Ledger, tol Tolerance) (AuditReport, error) {
	rep := Audit(l, tol)
	if rep.OK() {
		return rep, nil
	}
	return rep, l.Trip(rep.String())
}

func anyNaN(vs ...float64) bool {
	for _, v := range vs {
		if math.IsNaN(v) {
			return true
		}
	}
	return false
}

func componentName(e Entry) string {
	if e.Component != "" {
		return e.Component
	}
	return e.Device
}

func splitKey(k string) (hive, store string) {
	for i := 0; i < len(k); i++ {
		if k[i] == 0 {
			return k[:i], k[i+1:]
		}
	}
	return k, ""
}

// suspect attributes a residual: over-consumption (negative residual)
// points at the heaviest consumer component — where a double-counted
// probe lands; missing energy (positive residual) points at the store
// itself — where an unreported conversion loss lands.
func suspect(store string, residual float64, perComponent map[string]float64) string {
	if residual >= 0 || len(perComponent) == 0 {
		return store
	}
	var top string
	var topJ float64
	names := make([]string, 0, len(perComponent))
	for name := range perComponent {
		names = append(names, name)
	}
	sort.Strings(names) // deterministic tie-break
	for _, name := range names {
		if j := perComponent[name]; j > topJ {
			top, topJ = name, j
		}
	}
	return top
}
