package ledger

// Aggregation for reporting: per-hive/per-task energy breakdowns in
// the shape of the paper's Tables I/II, and two-run diffs showing
// which component's energy moved between scenarios (the Section V
// edge vs edge+cloud comparison, regenerated from simulation output).

import (
	"math"
	"sort"
)

// RowKey identifies one breakdown row.
type RowKey struct {
	Hive      string
	Device    string
	Component string
	Task      string
	Dir       Direction
}

// Row is one aggregated breakdown line.
type Row struct {
	RowKey
	Joules  float64
	Seconds float64
	Count   int
}

// Breakdown aggregates entries into per-(hive, device, component,
// task, direction) rows, sorted by hive, then device, component, task
// and direction — a deterministic order for tables and diffs. The hive
// filter limits the aggregation when non-empty.
func Breakdown(entries []Entry, hive string) []Row {
	acc := map[RowKey]*Row{}
	for _, e := range entries {
		if hive != "" && e.Hive != hive {
			continue
		}
		k := RowKey{Hive: e.Hive, Device: e.Device, Component: e.Component,
			Task: e.Task, Dir: e.Dir}
		r := acc[k]
		if r == nil {
			r = &Row{RowKey: k}
			acc[k] = r
		}
		r.Joules += e.Joules
		r.Seconds += e.Seconds
		r.Count++
	}
	out := make([]Row, 0, len(acc))
	for _, r := range acc {
		out = append(out, *r)
	}
	sortRows(out)
	return out
}

func sortRows(rows []Row) {
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		if a.Hive != b.Hive {
			return a.Hive < b.Hive
		}
		if a.Device != b.Device {
			return a.Device < b.Device
		}
		if a.Component != b.Component {
			return a.Component < b.Component
		}
		if a.Task != b.Task {
			return a.Task < b.Task
		}
		return a.Dir < b.Dir
	})
}

// Hives returns the distinct hive ids appearing in entries, sorted.
func Hives(entries []Entry) []string {
	seen := map[string]bool{}
	for _, e := range entries {
		seen[e.Hive] = true
	}
	out := make([]string, 0, len(seen))
	for h := range seen {
		out = append(out, h)
	}
	sort.Strings(out)
	return out
}

// DiffRow is one row of a two-run comparison. The hive dimension is
// collapsed: a run diff asks where the fleet's joules moved, not which
// hive moved them.
type DiffRow struct {
	Device    string
	Component string
	Task      string
	Dir       Direction
	AJ, BJ    float64 // totals in run A and run B
	DeltaJ    float64 // BJ − AJ: positive means run B spends more here
}

// Diff compares two entry sets, aggregating each by (device,
// component, task, direction) and reporting every row present in
// either, sorted by |delta| descending (largest energy movement
// first), then by key for determinism.
func Diff(a, b []Entry) []DiffRow {
	type key struct {
		Device, Component, Task string
		Dir                     Direction
	}
	sum := func(entries []Entry) map[key]float64 {
		m := map[key]float64{}
		for _, e := range entries {
			m[key{e.Device, e.Component, e.Task, e.Dir}] += e.Joules
		}
		return m
	}
	as, bs := sum(a), sum(b)
	keys := map[key]bool{}
	for k := range as {
		keys[k] = true
	}
	for k := range bs {
		keys[k] = true
	}
	out := make([]DiffRow, 0, len(keys))
	for k := range keys {
		out = append(out, DiffRow{
			Device: k.Device, Component: k.Component, Task: k.Task, Dir: k.Dir,
			AJ: as[k], BJ: bs[k], DeltaJ: bs[k] - as[k],
		})
	}
	sort.Slice(out, func(i, j int) bool {
		di, dj := math.Abs(out[i].DeltaJ), math.Abs(out[j].DeltaJ)
		if di != dj {
			return di > dj
		}
		a, b := out[i], out[j]
		if a.Device != b.Device {
			return a.Device < b.Device
		}
		if a.Component != b.Component {
			return a.Component < b.Component
		}
		if a.Task != b.Task {
			return a.Task < b.Task
		}
		return a.Dir < b.Dir
	})
	return out
}
