// Package svm implements the paper's classical queen-detection model: a
// binary support vector machine with a radial basis function kernel,
// trained with a simplified sequential minimal optimization (SMO) solver.
//
// Section V fixes the hyper-parameters: "the SVM classifier is set with a
// radial basis function kernel, a regularization parameter of 20, and a
// kernel coefficient of 10^-5". PaperConfig reproduces them; GammaScale
// is available for standardized features, where the classical
// 1/(dim * variance) heuristic is the sensible default.
package svm

import (
	"errors"
	"fmt"
	"math"

	"beesim/internal/ml"
	"beesim/internal/rng"
)

// Config holds training hyper-parameters.
type Config struct {
	// C is the soft-margin regularization parameter.
	C float64
	// Gamma is the RBF kernel coefficient; <= 0 selects the "scale"
	// heuristic 1 / (dim * mean feature variance).
	Gamma float64
	// Tol is the KKT violation tolerance.
	Tol float64
	// MaxPasses is the number of consecutive alpha-stable sweeps that
	// ends training.
	MaxPasses int
	// MaxIters caps total sweeps as a safety net.
	MaxIters int
	// Seed drives the SMO partner selection.
	Seed uint64
}

// PaperConfig returns the hyper-parameters of Section V (C = 20,
// gamma = 1e-5), intended for raw (unstandardized) mel features.
func PaperConfig() Config {
	return Config{C: 20, Gamma: 1e-5, Tol: 1e-3, MaxPasses: 5, MaxIters: 200, Seed: 1}
}

// ScaleConfig returns C = 20 with the gamma-scale heuristic, the right
// choice after ml.Scaler standardization.
func ScaleConfig() Config {
	cfg := PaperConfig()
	cfg.Gamma = 0
	return cfg
}

// Model is a trained binary SVM. Labels are 0 and 1 externally, mapped to
// -1/+1 internally.
type Model struct {
	vectors [][]float64
	alphaY  []float64 // alpha_i * y_i for each support vector
	b       float64
	gamma   float64
}

// Train fits the SVM on a binary dataset (labels 0/1).
func Train(d *ml.Dataset, cfg Config) (*Model, error) {
	if d == nil || d.Len() == 0 {
		return nil, errors.New("svm: empty dataset")
	}
	if d.Classes() > 2 {
		return nil, fmt.Errorf("svm: binary model got %d classes", d.Classes())
	}
	if cfg.C <= 0 {
		return nil, errors.New("svm: C must be positive")
	}
	if cfg.MaxPasses <= 0 || cfg.MaxIters <= 0 {
		return nil, errors.New("svm: non-positive iteration limits")
	}

	n := d.Len()
	y := make([]float64, n)
	hasPos, hasNeg := false, false
	for i, label := range d.Y {
		if label == 1 {
			y[i] = 1
			hasPos = true
		} else {
			y[i] = -1
			hasNeg = true
		}
	}
	if !hasPos || !hasNeg {
		return nil, errors.New("svm: training data has a single class")
	}

	gamma := cfg.Gamma
	if gamma <= 0 {
		gamma = scaleGamma(d)
	}

	// Precompute the kernel matrix; corpus sizes here are modest
	// (the paper's full set is 1647 clips -> 21 MB, fine).
	k := make([][]float64, n)
	for i := range k {
		k[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		k[i][i] = 1
		for j := i + 1; j < n; j++ {
			v := rbf(d.X[i], d.X[j], gamma)
			k[i][j], k[j][i] = v, v
		}
	}

	alpha := make([]float64, n)
	b := 0.0
	r := rng.New(cfg.Seed)

	f := func(i int) float64 {
		sum := b
		for j := 0; j < n; j++ {
			if alpha[j] != 0 {
				sum += alpha[j] * y[j] * k[i][j]
			}
		}
		return sum
	}

	passes, iters := 0, 0
	for passes < cfg.MaxPasses && iters < cfg.MaxIters {
		changed := 0
		for i := 0; i < n; i++ {
			ei := f(i) - y[i]
			if (y[i]*ei < -cfg.Tol && alpha[i] < cfg.C) ||
				(y[i]*ei > cfg.Tol && alpha[i] > 0) {
				j := r.Intn(n - 1)
				if j >= i {
					j++
				}
				ej := f(j) - y[j]
				aiOld, ajOld := alpha[i], alpha[j]
				var lo, hi float64
				if y[i] != y[j] {
					lo = math.Max(0, ajOld-aiOld)
					hi = math.Min(cfg.C, cfg.C+ajOld-aiOld)
				} else {
					lo = math.Max(0, aiOld+ajOld-cfg.C)
					hi = math.Min(cfg.C, aiOld+ajOld)
				}
				if lo == hi {
					continue
				}
				eta := 2*k[i][j] - k[i][i] - k[j][j]
				if eta >= 0 {
					continue
				}
				aj := ajOld - y[j]*(ei-ej)/eta
				if aj > hi {
					aj = hi
				}
				if aj < lo {
					aj = lo
				}
				if math.Abs(aj-ajOld) < 1e-7 {
					continue
				}
				ai := aiOld + y[i]*y[j]*(ajOld-aj)
				b1 := b - ei - y[i]*(ai-aiOld)*k[i][i] - y[j]*(aj-ajOld)*k[i][j]
				b2 := b - ej - y[i]*(ai-aiOld)*k[i][j] - y[j]*(aj-ajOld)*k[j][j]
				switch {
				case ai > 0 && ai < cfg.C:
					b = b1
				case aj > 0 && aj < cfg.C:
					b = b2
				default:
					b = (b1 + b2) / 2
				}
				alpha[i], alpha[j] = ai, aj
				changed++
			}
		}
		if changed == 0 {
			passes++
		} else {
			passes = 0
		}
		iters++
	}

	// Keep only the support vectors.
	m := &Model{b: b, gamma: gamma}
	for i := 0; i < n; i++ {
		if alpha[i] > 1e-9 {
			m.vectors = append(m.vectors, d.X[i])
			m.alphaY = append(m.alphaY, alpha[i]*y[i])
		}
	}
	if len(m.vectors) == 0 {
		return nil, errors.New("svm: training produced no support vectors")
	}
	return m, nil
}

// scaleGamma implements the "scale" heuristic: 1 / (dim * mean variance).
func scaleGamma(d *ml.Dataset) float64 {
	dim := d.Dim()
	n := float64(d.Len())
	var totalVar float64
	for j := 0; j < dim; j++ {
		var mean, sq float64
		for _, row := range d.X {
			mean += row[j]
		}
		mean /= n
		for _, row := range d.X {
			diff := row[j] - mean
			sq += diff * diff
		}
		totalVar += sq / n
	}
	meanVar := totalVar / float64(dim)
	if meanVar == 0 {
		meanVar = 1
	}
	return 1 / (float64(dim) * meanVar)
}

func rbf(a, b []float64, gamma float64) float64 {
	var d2 float64
	for i := range a {
		diff := a[i] - b[i]
		d2 += diff * diff
	}
	return math.Exp(-gamma * d2)
}

// Decision returns the signed decision value for x (positive = class 1).
func (m *Model) Decision(x []float64) float64 {
	sum := m.b
	for i, v := range m.vectors {
		sum += m.alphaY[i] * rbf(v, x, m.gamma)
	}
	return sum
}

// Predict implements ml.Classifier.
func (m *Model) Predict(x []float64) int {
	if m.Decision(x) >= 0 {
		return 1
	}
	return 0
}

// NumSupportVectors returns the size of the support set.
func (m *Model) NumSupportVectors() int { return len(m.vectors) }

// Gamma returns the kernel coefficient actually used (after the scale
// heuristic is resolved).
func (m *Model) Gamma() float64 { return m.gamma }

// FLOPs estimates the arithmetic cost of one prediction: each support
// vector costs ~3*dim operations (diff, square, accumulate) plus an exp.
func (m *Model) FLOPs() float64 {
	if len(m.vectors) == 0 {
		return 0
	}
	dim := float64(len(m.vectors[0]))
	return float64(len(m.vectors)) * (3*dim + 20)
}

var _ ml.Classifier = (*Model)(nil)
