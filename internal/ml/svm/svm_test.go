package svm

import (
	"math"
	"testing"

	"beesim/internal/ml"
	"beesim/internal/rng"
)

// blobs builds two Gaussian clusters in dim dimensions.
func blobs(t *testing.T, n, dim int, sep float64, seed uint64) *ml.Dataset {
	t.Helper()
	r := rng.New(seed)
	x := make([][]float64, n)
	y := make([]int, n)
	for i := range x {
		row := make([]float64, dim)
		label := i % 2
		center := -sep / 2
		if label == 1 {
			center = sep / 2
		}
		for j := range row {
			row[j] = r.Gaussian(center, 1)
		}
		x[i], y[i] = row, label
	}
	d, err := ml.NewDataset(x, y)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// xorData builds the classic non-linearly-separable XOR pattern.
func xorData(t *testing.T, n int, seed uint64) *ml.Dataset {
	t.Helper()
	r := rng.New(seed)
	x := make([][]float64, n)
	y := make([]int, n)
	for i := range x {
		a := r.Range(-1, 1)
		b := r.Range(-1, 1)
		x[i] = []float64{a, b}
		if (a > 0) != (b > 0) {
			y[i] = 1
		}
	}
	d, err := ml.NewDataset(x, y)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestTrainValidation(t *testing.T) {
	d := blobs(t, 20, 2, 4, 1)
	if _, err := Train(nil, ScaleConfig()); err == nil {
		t.Error("nil dataset accepted")
	}
	bad := ScaleConfig()
	bad.C = 0
	if _, err := Train(d, bad); err == nil {
		t.Error("C=0 accepted")
	}
	bad = ScaleConfig()
	bad.MaxPasses = 0
	if _, err := Train(d, bad); err == nil {
		t.Error("MaxPasses=0 accepted")
	}
	single, _ := ml.NewDataset([][]float64{{1}, {2}}, []int{0, 0})
	if _, err := Train(single, ScaleConfig()); err == nil {
		t.Error("single-class data accepted")
	}
	three, _ := ml.NewDataset([][]float64{{1}, {2}, {3}}, []int{0, 1, 2})
	if _, err := Train(three, ScaleConfig()); err == nil {
		t.Error("3-class data accepted")
	}
}

func TestSeparableBlobs(t *testing.T) {
	train := blobs(t, 120, 4, 6, 1)
	test := blobs(t, 60, 4, 6, 2)
	m, err := Train(train, ScaleConfig())
	if err != nil {
		t.Fatal(err)
	}
	if acc := ml.Accuracy(m, test); acc < 0.95 {
		t.Fatalf("separable accuracy = %v, want >= 0.95", acc)
	}
	if m.NumSupportVectors() == 0 || m.NumSupportVectors() > train.Len() {
		t.Fatalf("support vectors = %d", m.NumSupportVectors())
	}
}

func TestXORNeedsRBF(t *testing.T) {
	// The RBF kernel must solve XOR, which no linear model can.
	train := xorData(t, 300, 3)
	test := xorData(t, 150, 4)
	cfg := ScaleConfig()
	cfg.Gamma = 2 // local kernel for the unit square
	m, err := Train(train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if acc := ml.Accuracy(m, test); acc < 0.9 {
		t.Fatalf("XOR accuracy = %v, want >= 0.9", acc)
	}
}

func TestDecisionSignMatchesPredict(t *testing.T) {
	d := blobs(t, 80, 3, 5, 5)
	m, err := Train(d, ScaleConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range d.X {
		dec := m.Decision(row)
		want := 0
		if dec >= 0 {
			want = 1
		}
		if m.Predict(row) != want {
			t.Fatal("Predict disagrees with Decision sign")
		}
	}
}

func TestPaperConfigValues(t *testing.T) {
	cfg := PaperConfig()
	if cfg.C != 20 {
		t.Errorf("C = %v, want 20 (paper)", cfg.C)
	}
	if cfg.Gamma != 1e-5 {
		t.Errorf("gamma = %v, want 1e-5 (paper)", cfg.Gamma)
	}
}

func TestScaleGammaHeuristic(t *testing.T) {
	d := blobs(t, 100, 8, 4, 6)
	m, err := Train(d, ScaleConfig())
	if err != nil {
		t.Fatal(err)
	}
	// gamma = 1/(dim * meanVar); blobs have per-feature variance ~1+sep²/4,
	// so gamma should be positive and below 1/dim.
	if m.Gamma() <= 0 || m.Gamma() > 1.0/8 {
		t.Fatalf("scale gamma = %v out of expected range", m.Gamma())
	}
}

func TestDeterministicTraining(t *testing.T) {
	d := blobs(t, 100, 3, 5, 7)
	a, err := Train(d, ScaleConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(d, ScaleConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.NumSupportVectors() != b.NumSupportVectors() {
		t.Fatal("same-seed training differs")
	}
	probe := []float64{0.3, -0.2, 0.8}
	if math.Abs(a.Decision(probe)-b.Decision(probe)) > 1e-12 {
		t.Fatal("same-seed decision functions differ")
	}
}

func TestNoisyDataDoesNotOverfitToUselessness(t *testing.T) {
	// Overlapping blobs: accuracy should beat chance clearly but the
	// solver must terminate and produce a bounded support set.
	train := blobs(t, 200, 2, 2, 8)
	test := blobs(t, 100, 2, 2, 9)
	m, err := Train(train, ScaleConfig())
	if err != nil {
		t.Fatal(err)
	}
	if acc := ml.Accuracy(m, test); acc < 0.7 {
		t.Fatalf("overlapping-blob accuracy = %v, want >= 0.7", acc)
	}
}

func TestFLOPsEstimate(t *testing.T) {
	d := blobs(t, 60, 10, 5, 10)
	m, err := Train(d, ScaleConfig())
	if err != nil {
		t.Fatal(err)
	}
	want := float64(m.NumSupportVectors()) * (3*10 + 20)
	if m.FLOPs() != want {
		t.Fatalf("FLOPs = %v, want %v", m.FLOPs(), want)
	}
}
