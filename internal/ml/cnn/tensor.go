// Package cnn implements the paper's deep queen-detection model: a small
// convolutional network (with a residual block in the spirit of the
// paper's ResNet18) trained by stochastic gradient descent, built from
// scratch on dense float64 tensors.
//
// The network takes the N x N mel-spectrogram images of Section V and
// predicts queen presence. Its FLOPs method feeds the edge inference
// energy model that regenerates Figure 5: for a fixed conv stack, FLOPs
// grow linearly with pixel count, so inference energy is quadratic in the
// image side length — exactly the paper's observation.
package cnn

import "fmt"

// Tensor is a dense rank-3 array in channel-major (C, H, W) layout.
type Tensor struct {
	C, H, W int
	Data    []float64
}

// NewTensor allocates a zeroed C x H x W tensor.
func NewTensor(c, h, w int) *Tensor {
	if c <= 0 || h <= 0 || w <= 0 {
		panic(fmt.Sprintf("cnn: invalid tensor shape %dx%dx%d", c, h, w))
	}
	return &Tensor{C: c, H: h, W: w, Data: make([]float64, c*h*w)}
}

// At returns the element at (c, y, x).
func (t *Tensor) At(c, y, x int) float64 { return t.Data[(c*t.H+y)*t.W+x] }

// Set stores v at (c, y, x).
func (t *Tensor) Set(c, y, x int, v float64) { t.Data[(c*t.H+y)*t.W+x] = v }

// Add accumulates v at (c, y, x).
func (t *Tensor) Add(c, y, x int, v float64) { t.Data[(c*t.H+y)*t.W+x] += v }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	out := NewTensor(t.C, t.H, t.W)
	copy(out.Data, t.Data)
	return out
}

// SameShape reports whether two tensors have identical dimensions.
func (t *Tensor) SameShape(o *Tensor) bool {
	return t.C == o.C && t.H == o.H && t.W == o.W
}

// Param is a learnable parameter array with its gradient accumulator and
// SGD momentum buffer.
type Param struct {
	Data     []float64
	Grad     []float64
	velocity []float64
}

func newParam(n int) *Param {
	return &Param{Data: make([]float64, n), Grad: make([]float64, n), velocity: make([]float64, n)}
}

// step applies one SGD-with-momentum update and clears the gradient.
func (p *Param) step(lr, momentum float64) {
	for i := range p.Data {
		p.velocity[i] = momentum*p.velocity[i] - lr*p.Grad[i]
		p.Data[i] += p.velocity[i]
		p.Grad[i] = 0
	}
}

// Layer is one differentiable stage of the network.
type Layer interface {
	// Forward consumes the input and returns the output, caching
	// whatever the backward pass needs.
	Forward(x *Tensor) *Tensor
	// Backward consumes dL/d(output) and returns dL/d(input),
	// accumulating parameter gradients along the way.
	Backward(grad *Tensor) *Tensor
	// Params returns the learnable parameters (nil for stateless layers).
	Params() []*Param
	// FLOPs returns the multiply-accumulate cost of one forward pass for
	// the given input shape, and the output shape.
	FLOPs(c, h, w int) (flops float64, oc, oh, ow int)
}
