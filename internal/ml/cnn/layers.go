package cnn

import (
	"fmt"
	"math"

	"beesim/internal/rng"
)

// Conv2D is a same- or valid-padded 2D convolution with square kernels.
type Conv2D struct {
	InC, OutC int
	Kernel    int
	Stride    int
	Pad       int
	weight    *Param // [outC][inC][k][k]
	bias      *Param // [outC]
	input     *Tensor
}

// NewConv2D creates a convolution with He-normal initialization.
func NewConv2D(inC, outC, kernel, stride, pad int, r *rng.Source) *Conv2D {
	c := &Conv2D{InC: inC, OutC: outC, Kernel: kernel, Stride: stride, Pad: pad}
	c.weight = newParam(outC * inC * kernel * kernel)
	c.bias = newParam(outC)
	std := math.Sqrt(2.0 / float64(inC*kernel*kernel))
	for i := range c.weight.Data {
		c.weight.Data[i] = r.Gaussian(0, std)
	}
	return c
}

func (c *Conv2D) outSize(h, w int) (int, int) {
	oh := (h+2*c.Pad-c.Kernel)/c.Stride + 1
	ow := (w+2*c.Pad-c.Kernel)/c.Stride + 1
	return oh, ow
}

func (c *Conv2D) wIdx(oc, ic, kh, kw int) int {
	return ((oc*c.InC+ic)*c.Kernel+kh)*c.Kernel + kw
}

// Forward implements Layer.
func (c *Conv2D) Forward(x *Tensor) *Tensor {
	if x.C != c.InC {
		panic(fmt.Sprintf("cnn: conv expects %d channels, got %d", c.InC, x.C))
	}
	c.input = x
	oh, ow := c.outSize(x.H, x.W)
	out := NewTensor(c.OutC, oh, ow)
	for oc := 0; oc < c.OutC; oc++ {
		b := c.bias.Data[oc]
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				sum := b
				for ic := 0; ic < c.InC; ic++ {
					for kh := 0; kh < c.Kernel; kh++ {
						iy := oy*c.Stride + kh - c.Pad
						if iy < 0 || iy >= x.H {
							continue
						}
						for kw := 0; kw < c.Kernel; kw++ {
							ix := ox*c.Stride + kw - c.Pad
							if ix < 0 || ix >= x.W {
								continue
							}
							sum += c.weight.Data[c.wIdx(oc, ic, kh, kw)] * x.At(ic, iy, ix)
						}
					}
				}
				out.Set(oc, oy, ox, sum)
			}
		}
	}
	return out
}

// Backward implements Layer.
func (c *Conv2D) Backward(grad *Tensor) *Tensor {
	x := c.input
	dx := NewTensor(x.C, x.H, x.W)
	for oc := 0; oc < c.OutC; oc++ {
		for oy := 0; oy < grad.H; oy++ {
			for ox := 0; ox < grad.W; ox++ {
				g := grad.At(oc, oy, ox)
				if g == 0 {
					continue
				}
				c.bias.Grad[oc] += g
				for ic := 0; ic < c.InC; ic++ {
					for kh := 0; kh < c.Kernel; kh++ {
						iy := oy*c.Stride + kh - c.Pad
						if iy < 0 || iy >= x.H {
							continue
						}
						for kw := 0; kw < c.Kernel; kw++ {
							ix := ox*c.Stride + kw - c.Pad
							if ix < 0 || ix >= x.W {
								continue
							}
							idx := c.wIdx(oc, ic, kh, kw)
							c.weight.Grad[idx] += g * x.At(ic, iy, ix)
							dx.Add(ic, iy, ix, g*c.weight.Data[idx])
						}
					}
				}
			}
		}
	}
	return dx
}

// Params implements Layer.
func (c *Conv2D) Params() []*Param { return []*Param{c.weight, c.bias} }

// FLOPs implements Layer: 2 ops per multiply-accumulate.
func (c *Conv2D) FLOPs(_, h, w int) (float64, int, int, int) {
	oh, ow := c.outSize(h, w)
	per := float64(2 * c.InC * c.Kernel * c.Kernel)
	return per * float64(c.OutC*oh*ow), c.OutC, oh, ow
}

// ReLU is the rectified linear activation.
type ReLU struct {
	mask []bool
}

// Forward implements Layer.
func (r *ReLU) Forward(x *Tensor) *Tensor {
	out := x.Clone()
	r.mask = make([]bool, len(x.Data))
	for i, v := range out.Data {
		if v <= 0 {
			out.Data[i] = 0
		} else {
			r.mask[i] = true
		}
	}
	return out
}

// Backward implements Layer.
func (r *ReLU) Backward(grad *Tensor) *Tensor {
	dx := grad.Clone()
	for i := range dx.Data {
		if !r.mask[i] {
			dx.Data[i] = 0
		}
	}
	return dx
}

// Params implements Layer.
func (r *ReLU) Params() []*Param { return nil }

// FLOPs implements Layer.
func (r *ReLU) FLOPs(c, h, w int) (float64, int, int, int) {
	return float64(c * h * w), c, h, w
}

// MaxPool2 is a 2x2 max pooling with stride 2. Odd trailing rows/columns
// are dropped (floor semantics).
type MaxPool2 struct {
	input  *Tensor
	argmax []int // flat input index chosen per output element
}

// Forward implements Layer.
func (p *MaxPool2) Forward(x *Tensor) *Tensor {
	oh, ow := x.H/2, x.W/2
	if oh == 0 || ow == 0 {
		panic(fmt.Sprintf("cnn: input %dx%d too small to pool", x.H, x.W))
	}
	p.input = x
	out := NewTensor(x.C, oh, ow)
	p.argmax = make([]int, x.C*oh*ow)
	for c := 0; c < x.C; c++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				best := math.Inf(-1)
				bestIdx := 0
				for dy := 0; dy < 2; dy++ {
					for dx := 0; dx < 2; dx++ {
						iy, ix := oy*2+dy, ox*2+dx
						v := x.At(c, iy, ix)
						if v > best {
							best = v
							bestIdx = (c*x.H+iy)*x.W + ix
						}
					}
				}
				out.Set(c, oy, ox, best)
				p.argmax[(c*oh+oy)*ow+ox] = bestIdx
			}
		}
	}
	return out
}

// Backward implements Layer.
func (p *MaxPool2) Backward(grad *Tensor) *Tensor {
	dx := NewTensor(p.input.C, p.input.H, p.input.W)
	for i, g := range grad.Data {
		dx.Data[p.argmax[i]] += g
	}
	return dx
}

// Params implements Layer.
func (p *MaxPool2) Params() []*Param { return nil }

// FLOPs implements Layer.
func (p *MaxPool2) FLOPs(c, h, w int) (float64, int, int, int) {
	return float64(c * h * w), c, h / 2, w / 2
}

// Dense flattens its input and applies a fully connected map to n
// outputs (returned as an n x 1 x 1 tensor).
type Dense struct {
	In, Out int
	weight  *Param // [out][in]
	bias    *Param
	input   *Tensor
}

// NewDense creates a fully connected layer with He initialization.
func NewDense(in, out int, r *rng.Source) *Dense {
	d := &Dense{In: in, Out: out}
	d.weight = newParam(in * out)
	d.bias = newParam(out)
	std := math.Sqrt(2.0 / float64(in))
	for i := range d.weight.Data {
		d.weight.Data[i] = r.Gaussian(0, std)
	}
	return d
}

// Forward implements Layer.
func (d *Dense) Forward(x *Tensor) *Tensor {
	if len(x.Data) != d.In {
		panic(fmt.Sprintf("cnn: dense expects %d inputs, got %d", d.In, len(x.Data)))
	}
	d.input = x
	out := NewTensor(d.Out, 1, 1)
	for o := 0; o < d.Out; o++ {
		sum := d.bias.Data[o]
		row := d.weight.Data[o*d.In : (o+1)*d.In]
		for i, v := range x.Data {
			sum += row[i] * v
		}
		out.Data[o] = sum
	}
	return out
}

// Backward implements Layer.
func (d *Dense) Backward(grad *Tensor) *Tensor {
	dx := NewTensor(d.input.C, d.input.H, d.input.W)
	for o := 0; o < d.Out; o++ {
		g := grad.Data[o]
		d.bias.Grad[o] += g
		row := d.weight.Data[o*d.In : (o+1)*d.In]
		gradRow := d.weight.Grad[o*d.In : (o+1)*d.In]
		for i, v := range d.input.Data {
			gradRow[i] += g * v
			dx.Data[i] += g * row[i]
		}
	}
	return dx
}

// Params implements Layer.
func (d *Dense) Params() []*Param { return []*Param{d.weight, d.bias} }

// FLOPs implements Layer.
func (d *Dense) FLOPs(_, _, _ int) (float64, int, int, int) {
	return float64(2 * d.In * d.Out), d.Out, 1, 1
}

// Residual is a ResNet-style identity block: out = ReLU(x + g(x)) where
// g is conv-ReLU-conv with channel-preserving 3x3 kernels — the
// structural idea of the paper's ResNet18 at a size a Raspberry Pi model
// sweep can afford.
type Residual struct {
	conv1, conv2 *Conv2D
	relu1        *ReLU
	sumInput     *Tensor // x, for the skip connection
	preAct       *Tensor // x + g(x), for the outer ReLU mask
}

// NewResidual builds a residual block over ch channels.
func NewResidual(ch int, r *rng.Source) *Residual {
	return &Residual{
		conv1: NewConv2D(ch, ch, 3, 1, 1, r),
		conv2: NewConv2D(ch, ch, 3, 1, 1, r),
		relu1: &ReLU{},
	}
}

// Forward implements Layer.
func (b *Residual) Forward(x *Tensor) *Tensor {
	b.sumInput = x
	g := b.conv2.Forward(b.relu1.Forward(b.conv1.Forward(x)))
	if !g.SameShape(x) {
		panic("cnn: residual branch changed shape")
	}
	sum := x.Clone()
	for i := range sum.Data {
		sum.Data[i] += g.Data[i]
	}
	b.preAct = sum
	out := sum.Clone()
	for i, v := range out.Data {
		if v <= 0 {
			out.Data[i] = 0
		}
	}
	return out
}

// Backward implements Layer.
func (b *Residual) Backward(grad *Tensor) *Tensor {
	// Through the outer ReLU.
	dSum := grad.Clone()
	for i := range dSum.Data {
		if b.preAct.Data[i] <= 0 {
			dSum.Data[i] = 0
		}
	}
	// Branch gradient.
	dBranch := b.conv1.Backward(b.relu1.Backward(b.conv2.Backward(dSum)))
	// Skip connection adds the sum gradient directly.
	dx := dSum.Clone()
	for i := range dx.Data {
		dx.Data[i] += dBranch.Data[i]
	}
	return dx
}

// Params implements Layer.
func (b *Residual) Params() []*Param {
	return append(b.conv1.Params(), b.conv2.Params()...)
}

// FLOPs implements Layer.
func (b *Residual) FLOPs(c, h, w int) (float64, int, int, int) {
	f1, c1, h1, w1 := b.conv1.FLOPs(c, h, w)
	fr, _, _, _ := b.relu1.FLOPs(c1, h1, w1)
	f2, c2, h2, w2 := b.conv2.FLOPs(c1, h1, w1)
	// plus the elementwise sum and outer ReLU
	return f1 + fr + f2 + 2*float64(c2*h2*w2), c2, h2, w2
}
