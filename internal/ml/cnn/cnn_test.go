package cnn

import (
	"math"
	"testing"

	"beesim/internal/dsp"
	"beesim/internal/rng"
)

func TestTensorBasics(t *testing.T) {
	x := NewTensor(2, 3, 4)
	x.Set(1, 2, 3, 7)
	if x.At(1, 2, 3) != 7 {
		t.Fatal("At/Set broken")
	}
	x.Add(1, 2, 3, 2)
	if x.At(1, 2, 3) != 9 {
		t.Fatal("Add broken")
	}
	c := x.Clone()
	c.Set(0, 0, 0, 5)
	if x.At(0, 0, 0) == 5 {
		t.Fatal("Clone aliases")
	}
	if !x.SameShape(c) {
		t.Fatal("SameShape broken")
	}
}

func TestTensorPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewTensor(0,1,1) did not panic")
		}
	}()
	NewTensor(0, 1, 1)
}

func TestConvIdentityKernel(t *testing.T) {
	r := rng.New(1)
	conv := NewConv2D(1, 1, 3, 1, 1, r)
	// Hand-set an identity kernel (center 1, rest 0) with zero bias.
	for i := range conv.weight.Data {
		conv.weight.Data[i] = 0
	}
	conv.weight.Data[4] = 1 // center of the 3x3
	conv.bias.Data[0] = 0
	x := NewTensor(1, 4, 4)
	for i := range x.Data {
		x.Data[i] = float64(i)
	}
	y := conv.Forward(x)
	for i := range x.Data {
		if y.Data[i] != x.Data[i] {
			t.Fatalf("identity conv altered element %d: %v", i, y.Data[i])
		}
	}
}

func TestConvOutputShape(t *testing.T) {
	r := rng.New(1)
	conv := NewConv2D(3, 5, 3, 2, 1, r)
	x := NewTensor(3, 9, 9)
	y := conv.Forward(x)
	if y.C != 5 || y.H != 5 || y.W != 5 {
		t.Fatalf("conv output = %dx%dx%d, want 5x5x5", y.C, y.H, y.W)
	}
	f, oc, oh, ow := conv.FLOPs(3, 9, 9)
	if oc != 5 || oh != 5 || ow != 5 {
		t.Fatal("FLOPs shape mismatch")
	}
	if want := float64(2*3*3*3) * float64(5*5*5); f != want {
		t.Fatalf("conv FLOPs = %v, want %v", f, want)
	}
}

// numericalGradCheck verifies backprop against finite differences for a
// tiny network on one example.
func TestGradientCheck(t *testing.T) {
	r := rng.New(3)
	conv := NewConv2D(1, 2, 3, 1, 1, r)
	dense := NewDense(2*4*4, 2, r)
	relu := &ReLU{}
	layers := []Layer{conv, relu, dense}

	x := NewTensor(1, 4, 4)
	for i := range x.Data {
		x.Data[i] = r.Norm()
	}
	label := 1

	loss := func() float64 {
		cur := x
		for _, l := range layers {
			cur = l.Forward(cur)
		}
		probs := Softmax(cur.Data)
		return -math.Log(probs[label])
	}

	// Analytic gradients.
	cur := x
	for _, l := range layers {
		cur = l.Forward(cur)
	}
	probs := Softmax(cur.Data)
	grad := NewTensor(2, 1, 1)
	copy(grad.Data, probs)
	grad.Data[label] -= 1
	g := Layer(nil)
	_ = g
	back := grad
	for i := len(layers) - 1; i >= 0; i-- {
		back = layers[i].Backward(back)
	}

	// Compare each parameter's analytic gradient with finite differences.
	const eps = 1e-6
	for li, l := range layers {
		for pi, p := range l.Params() {
			for k := 0; k < len(p.Data); k += 7 { // sample every 7th weight
				orig := p.Data[k]
				p.Data[k] = orig + eps
				up := loss()
				p.Data[k] = orig - eps
				down := loss()
				p.Data[k] = orig
				numeric := (up - down) / (2 * eps)
				if math.Abs(numeric-p.Grad[k]) > 1e-4*math.Max(1, math.Abs(numeric)) {
					t.Fatalf("layer %d param %d[%d]: analytic %v vs numeric %v",
						li, pi, k, p.Grad[k], numeric)
				}
			}
		}
	}
}

func TestReLU(t *testing.T) {
	relu := &ReLU{}
	x := NewTensor(1, 1, 4)
	copy(x.Data, []float64{-1, 0, 2, -3})
	y := relu.Forward(x)
	want := []float64{0, 0, 2, 0}
	for i := range want {
		if y.Data[i] != want[i] {
			t.Fatalf("relu = %v", y.Data)
		}
	}
	g := NewTensor(1, 1, 4)
	copy(g.Data, []float64{1, 1, 1, 1})
	dx := relu.Backward(g)
	wantG := []float64{0, 0, 1, 0}
	for i := range wantG {
		if dx.Data[i] != wantG[i] {
			t.Fatalf("relu grad = %v", dx.Data)
		}
	}
}

func TestMaxPool(t *testing.T) {
	p := &MaxPool2{}
	x := NewTensor(1, 2, 4)
	copy(x.Data, []float64{1, 5, 3, 2, 4, 0, 7, 1})
	y := p.Forward(x)
	if y.H != 1 || y.W != 2 || y.Data[0] != 5 || y.Data[1] != 7 {
		t.Fatalf("pool output = %+v", y)
	}
	g := NewTensor(1, 1, 2)
	copy(g.Data, []float64{10, 20})
	dx := p.Backward(g)
	if dx.Data[1] != 10 || dx.Data[6] != 20 {
		t.Fatalf("pool grad = %v", dx.Data)
	}
	// Everything else zero.
	var sum float64
	for _, v := range dx.Data {
		sum += v
	}
	if sum != 30 {
		t.Fatalf("pool grad sum = %v, want 30", sum)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{InputSize: 8, Classes: 2, BaseChannels: 4}); err == nil {
		t.Error("tiny input accepted")
	}
	if _, err := New(Config{InputSize: 32, Classes: 1, BaseChannels: 4}); err == nil {
		t.Error("single class accepted")
	}
	if _, err := New(Config{InputSize: 32, Classes: 2, BaseChannels: 0}); err == nil {
		t.Error("zero channels accepted")
	}
}

func TestForwardShapesAcrossFigure5Sizes(t *testing.T) {
	for _, size := range []int{20, 40, 60, 100, 160} {
		net, err := New(Config{InputSize: size, Classes: 2, BaseChannels: 4, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		x := NewTensor(1, size, size)
		logits := net.Forward(x)
		if len(logits) != 2 {
			t.Fatalf("size %d: %d logits", size, len(logits))
		}
	}
}

func TestFLOPsQuadraticInInputSide(t *testing.T) {
	// The conv stack dominates, and its FLOPs scale with pixel count.
	flops := func(size int) float64 {
		net, err := New(Config{InputSize: size, Classes: 2, BaseChannels: 8, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		return net.FLOPs()
	}
	f50, f100, f200 := flops(48), flops(96), flops(192)
	r1 := f100 / f50
	r2 := f200 / f100
	if r1 < 3.3 || r1 > 4.7 || r2 < 3.3 || r2 > 4.7 {
		t.Fatalf("FLOPs doubling ratios = %.2f, %.2f, want ~4 (quadratic)", r1, r2)
	}
}

func TestSoftmax(t *testing.T) {
	p := Softmax([]float64{1000, 1000}) // stability check
	if math.Abs(p[0]-0.5) > 1e-12 || math.IsNaN(p[0]) {
		t.Fatalf("softmax = %v", p)
	}
	p = Softmax([]float64{0, math.Log(3)})
	if math.Abs(p[1]-0.75) > 1e-12 {
		t.Fatalf("softmax = %v, want [0.25 0.75]", p)
	}
}

// stripes builds a toy image dataset: class 0 has horizontal bands,
// class 1 vertical bands (a crude stand-in for spectrogram structure).
func stripes(t *testing.T, n, size int, seed uint64) []Example {
	t.Helper()
	r := rng.New(seed)
	out := make([]Example, n)
	for i := range out {
		img := NewTensor(1, size, size)
		label := i % 2
		period := 4 + r.Intn(4)
		phase := r.Intn(period)
		for y := 0; y < size; y++ {
			for x := 0; x < size; x++ {
				coord := y
				if label == 1 {
					coord = x
				}
				v := 0.0
				if (coord+phase)%period < period/2 {
					v = 1.0
				}
				img.Set(0, y, x, v+0.1*r.Norm())
			}
		}
		out[i] = Example{Image: img, Label: label}
	}
	return out
}

func TestTrainLearnsStripes(t *testing.T) {
	net, err := New(Config{InputSize: 16, Classes: 2, BaseChannels: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	train := stripes(t, 120, 16, 1)
	test := stripes(t, 60, 16, 2)
	var losses []float64
	cfg := TrainConfig{Epochs: 6, BatchSize: 8, LR: 0.01, Momentum: 0.9, Seed: 3,
		OnEpoch: func(_ int, l float64) { losses = append(losses, l) }}
	if err := net.Train(train, cfg); err != nil {
		t.Fatal(err)
	}
	if len(losses) != 6 {
		t.Fatalf("epoch callback fired %d times", len(losses))
	}
	if losses[len(losses)-1] >= losses[0] {
		t.Fatalf("loss did not decrease: %v", losses)
	}
	correct := 0
	for _, ex := range test {
		if net.PredictImage(ex.Image) == ex.Label {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(test)); acc < 0.9 {
		t.Fatalf("stripe accuracy = %v, want >= 0.9", acc)
	}
}

func TestTrainValidation(t *testing.T) {
	net, _ := New(Config{InputSize: 16, Classes: 2, BaseChannels: 2, Seed: 1})
	if err := net.Train(nil, PaperTrain()); err == nil {
		t.Error("empty training set accepted")
	}
	ex := stripes(t, 4, 16, 1)
	bad := PaperTrain()
	bad.Epochs = 0
	if err := net.Train(ex, bad); err == nil {
		t.Error("zero epochs accepted")
	}
	bad = PaperTrain()
	bad.LR = 0
	if err := net.Train(ex, bad); err == nil {
		t.Error("zero LR accepted")
	}
	ex[0].Label = 7
	if err := net.Train(ex, PaperTrain()); err == nil {
		t.Error("out-of-range label accepted")
	}
}

func TestPredictFlatAndImageAgree(t *testing.T) {
	net, _ := New(Config{InputSize: 16, Classes: 2, BaseChannels: 2, Seed: 4})
	r := rng.New(9)
	img := NewTensor(1, 16, 16)
	for i := range img.Data {
		img.Data[i] = r.Norm()
	}
	if net.PredictImage(img) != net.Predict(img.Data) {
		t.Fatal("flat and tensor predictions disagree")
	}
}

func TestImageFromMatrix(t *testing.T) {
	m := dsp.NewMatrix(3, 4)
	for i := range m.Data {
		m.Data[i] = float64(i)
	}
	img := ImageFromMatrix(m)
	if img.C != 1 || img.H != 3 || img.W != 4 {
		t.Fatalf("image shape = %dx%dx%d", img.C, img.H, img.W)
	}
	if img.At(0, 1, 2) != m.At(1, 2) {
		t.Fatal("contents differ")
	}
}

func TestNumParamsPositiveAndStable(t *testing.T) {
	net, _ := New(DefaultConfig())
	if net.NumParams() == 0 {
		t.Fatal("no parameters")
	}
	if net.NumParams() != func() int { n, _ := New(DefaultConfig()); return n.NumParams() }() {
		t.Fatal("parameter count unstable")
	}
	if net.InputSize() != 100 {
		t.Fatal("input size accessor broken")
	}
}

func TestResidualIdentityAtZeroWeights(t *testing.T) {
	r := rng.New(5)
	block := NewResidual(2, r)
	// Zero the branch: out = ReLU(x).
	for _, p := range block.Params() {
		for i := range p.Data {
			p.Data[i] = 0
		}
	}
	x := NewTensor(2, 4, 4)
	for i := range x.Data {
		x.Data[i] = float64(i%5) - 2
	}
	y := block.Forward(x)
	for i, v := range x.Data {
		want := v
		if want < 0 {
			want = 0
		}
		if y.Data[i] != want {
			t.Fatalf("residual with zero branch != ReLU(x) at %d", i)
		}
	}
}
