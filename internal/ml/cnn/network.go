package cnn

import (
	"errors"
	"fmt"
	"math"

	"beesim/internal/dsp"
	"beesim/internal/rng"
)

// Network is a sequential stack of layers ending in class logits.
type Network struct {
	layers  []Layer
	classes int
	inC     int
	inSize  int
}

// Config shapes the queen-detection network.
type Config struct {
	// InputSize is the side length N of the square N x N input image —
	// the independent variable of Figure 5's sweep.
	InputSize int
	// Classes is the number of output classes (2 for queen detection).
	Classes int
	// BaseChannels sets the width of the first conv (doubled after the
	// first pooling stage).
	BaseChannels int
	// Seed fixes weight initialization.
	Seed uint64
}

// DefaultConfig is the reference queen-detection net at the paper's
// optimal 100 x 100 input.
func DefaultConfig() Config {
	return Config{InputSize: 100, Classes: 2, BaseChannels: 8, Seed: 1}
}

// New builds the reference architecture: conv-ReLU-pool, conv-ReLU-pool,
// residual block, pool, dense. Inputs smaller than 16 x 16 cannot survive
// the three pooling stages.
func New(cfg Config) (*Network, error) {
	if cfg.InputSize < 16 {
		return nil, fmt.Errorf("cnn: input size %d below the minimum 16", cfg.InputSize)
	}
	if cfg.Classes < 2 {
		return nil, errors.New("cnn: need at least 2 classes")
	}
	if cfg.BaseChannels < 1 {
		return nil, errors.New("cnn: need at least 1 base channel")
	}
	r := rng.New(cfg.Seed)
	ch1 := cfg.BaseChannels
	ch2 := 2 * cfg.BaseChannels

	s := cfg.InputSize
	s1 := s / 2  // after pool 1
	s2 := s1 / 2 // after pool 2
	s3 := s2 / 2 // after pool 3
	n := &Network{classes: cfg.Classes, inC: 1, inSize: cfg.InputSize}
	n.layers = []Layer{
		NewConv2D(1, ch1, 3, 1, 1, r),
		&ReLU{},
		&MaxPool2{},
		NewConv2D(ch1, ch2, 3, 1, 1, r),
		&ReLU{},
		&MaxPool2{},
		NewResidual(ch2, r),
		&MaxPool2{},
		NewDense(ch2*s3*s3, cfg.Classes, r),
	}
	return n, nil
}

// InputSize returns the expected square input side length.
func (n *Network) InputSize() int { return n.inSize }

// Forward runs the network and returns the class logits.
func (n *Network) Forward(x *Tensor) []float64 {
	if x.C != n.inC || x.H != n.inSize || x.W != n.inSize {
		panic(fmt.Sprintf("cnn: input %dx%dx%d, want %dx%dx%d",
			x.C, x.H, x.W, n.inC, n.inSize, n.inSize))
	}
	cur := x
	for _, l := range n.layers {
		cur = l.Forward(cur)
	}
	return append([]float64(nil), cur.Data...)
}

// Softmax converts logits to probabilities (numerically stabilized).
func Softmax(logits []float64) []float64 {
	max := logits[0]
	for _, v := range logits[1:] {
		if v > max {
			max = v
		}
	}
	out := make([]float64, len(logits))
	var sum float64
	for i, v := range logits {
		out[i] = math.Exp(v - max)
		sum += out[i]
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// lossAndGrad returns the cross-entropy loss for one example and runs the
// full backward pass, accumulating parameter gradients.
func (n *Network) lossAndGrad(x *Tensor, label int) float64 {
	logits := n.Forward(x)
	probs := Softmax(logits)
	loss := -math.Log(math.Max(probs[label], 1e-12))
	grad := NewTensor(n.classes, 1, 1)
	for i, p := range probs {
		grad.Data[i] = p
	}
	grad.Data[label] -= 1
	cur := grad
	for i := len(n.layers) - 1; i >= 0; i-- {
		cur = n.layers[i].Backward(cur)
	}
	return loss
}

// TrainConfig shapes an SGD run.
type TrainConfig struct {
	Epochs    int
	BatchSize int
	LR        float64
	Momentum  float64
	Seed      uint64
	// OnEpoch, when non-nil, observes (epoch, mean loss) after each epoch.
	OnEpoch func(epoch int, loss float64)
}

// PaperTrain mirrors Section V's schedule: 4 epochs at learning rate
// 0.001 (with a momentum term for stability at our batch size).
func PaperTrain() TrainConfig {
	return TrainConfig{Epochs: 4, BatchSize: 16, LR: 0.001, Momentum: 0.9, Seed: 1}
}

// Example is one training image with its label.
type Example struct {
	Image *Tensor
	Label int
}

// Train runs mini-batch SGD over the examples.
func (n *Network) Train(examples []Example, cfg TrainConfig) error {
	if len(examples) == 0 {
		return errors.New("cnn: no training examples")
	}
	if cfg.Epochs <= 0 || cfg.BatchSize <= 0 {
		return errors.New("cnn: non-positive epochs or batch size")
	}
	if cfg.LR <= 0 {
		return errors.New("cnn: non-positive learning rate")
	}
	for _, ex := range examples {
		if ex.Label < 0 || ex.Label >= n.classes {
			return fmt.Errorf("cnn: label %d out of range", ex.Label)
		}
	}
	r := rng.New(cfg.Seed)
	idx := make([]int, len(examples))
	for i := range idx {
		idx[i] = i
	}
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		r.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		var epochLoss float64
		for start := 0; start < len(idx); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(idx) {
				end = len(idx)
			}
			var batchLoss float64
			for _, i := range idx[start:end] {
				batchLoss += n.lossAndGrad(examples[i].Image, examples[i].Label)
			}
			// Average gradients over the batch, then step.
			scale := 1 / float64(end-start)
			for _, l := range n.layers {
				for _, p := range l.Params() {
					for i := range p.Grad {
						p.Grad[i] *= scale
					}
					p.step(cfg.LR, cfg.Momentum)
				}
			}
			epochLoss += batchLoss
		}
		if cfg.OnEpoch != nil {
			cfg.OnEpoch(epoch, epochLoss/float64(len(idx)))
		}
	}
	return nil
}

// PredictImage returns the predicted class of one image tensor.
func (n *Network) PredictImage(x *Tensor) int {
	logits := n.Forward(x)
	best := 0
	for i, v := range logits {
		if v > logits[best] {
			best = i
		}
	}
	return best
}

// Predict implements ml.Classifier over a flattened square image,
// allowing the shared metrics helpers to evaluate the CNN.
func (n *Network) Predict(x []float64) int {
	if len(x) != n.inSize*n.inSize {
		panic(fmt.Sprintf("cnn: flat input %d, want %d", len(x), n.inSize*n.inSize))
	}
	t := NewTensor(1, n.inSize, n.inSize)
	copy(t.Data, x)
	return n.PredictImage(t)
}

// FLOPs returns the arithmetic cost of one forward pass — the quantity
// the edge energy model converts into joules for Figure 5.
func (n *Network) FLOPs() float64 {
	var total float64
	c, h, w := n.inC, n.inSize, n.inSize
	for _, l := range n.layers {
		f, oc, oh, ow := l.FLOPs(c, h, w)
		total += f
		c, h, w = oc, oh, ow
	}
	return total
}

// NumParams returns the learnable parameter count.
func (n *Network) NumParams() int {
	total := 0
	for _, l := range n.layers {
		for _, p := range l.Params() {
			total += len(p.Data)
		}
	}
	return total
}

// ImageFromMatrix converts a dsp.Matrix (e.g. a resized mel spectrogram)
// into a single-channel input tensor.
func ImageFromMatrix(m *dsp.Matrix) *Tensor {
	t := NewTensor(1, m.Rows, m.Cols)
	copy(t.Data, m.Data)
	return t
}
