package ml

import (
	"math"
	"testing"
)

func toyData(t *testing.T) *Dataset {
	t.Helper()
	x := [][]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}, {2, 2}, {3, 3}, {4, 4}, {5, 5}}
	y := []int{0, 0, 0, 0, 1, 1, 1, 1}
	d, err := NewDataset(x, y)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestNewDatasetValidation(t *testing.T) {
	if _, err := NewDataset(nil, nil); err == nil {
		t.Error("empty dataset accepted")
	}
	if _, err := NewDataset([][]float64{{1}}, []int{0, 1}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := NewDataset([][]float64{{1, 2}, {1}}, []int{0, 1}); err == nil {
		t.Error("ragged features accepted")
	}
	if _, err := NewDataset([][]float64{{1}}, []int{-1}); err == nil {
		t.Error("negative label accepted")
	}
}

func TestDatasetAccessors(t *testing.T) {
	d := toyData(t)
	if d.Len() != 8 || d.Dim() != 2 || d.Classes() != 2 {
		t.Fatalf("len/dim/classes = %d/%d/%d", d.Len(), d.Dim(), d.Classes())
	}
}

func TestSplit(t *testing.T) {
	d := toyData(t)
	train, test, err := d.Split(0.75, 42)
	if err != nil {
		t.Fatal(err)
	}
	if train.Len() != 6 || test.Len() != 2 {
		t.Fatalf("split sizes = %d/%d, want 6/2", train.Len(), test.Len())
	}
	// Same seed gives the same split.
	train2, _, err := d.Split(0.75, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := range train.Y {
		if train.Y[i] != train2.Y[i] {
			t.Fatal("same-seed splits differ")
		}
	}
	// All examples accounted for exactly once.
	seen := map[float64]int{}
	for _, row := range train.X {
		seen[row[0]*10+row[1]]++
	}
	for _, row := range test.X {
		seen[row[0]*10+row[1]]++
	}
	if len(seen) != 8 {
		t.Fatalf("split lost or duplicated rows: %d distinct", len(seen))
	}
}

func TestSplitErrors(t *testing.T) {
	d := toyData(t)
	for _, frac := range []float64{0, 1, -0.2, 1.4, 0.01} {
		if _, _, err := d.Split(frac, 1); err == nil {
			t.Errorf("split fraction %v accepted", frac)
		}
	}
}

func TestScaler(t *testing.T) {
	d := toyData(t)
	s := FitScaler(d)
	scaled := s.TransformAll(d)
	// Each feature has mean ~0 and variance ~1 after scaling.
	for j := 0; j < d.Dim(); j++ {
		var mean, varsum float64
		for _, row := range scaled.X {
			mean += row[j]
		}
		mean /= float64(d.Len())
		for _, row := range scaled.X {
			varsum += (row[j] - mean) * (row[j] - mean)
		}
		varsum /= float64(d.Len())
		if math.Abs(mean) > 1e-9 {
			t.Errorf("feature %d scaled mean = %v", j, mean)
		}
		if math.Abs(varsum-1) > 1e-9 {
			t.Errorf("feature %d scaled variance = %v", j, varsum)
		}
	}
}

func TestScalerConstantFeature(t *testing.T) {
	d, err := NewDataset([][]float64{{5, 1}, {5, 2}, {5, 3}}, []int{0, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	s := FitScaler(d)
	out := s.Transform([]float64{5, 2})
	if out[0] != 0 {
		t.Fatalf("constant feature scaled to %v, want 0", out[0])
	}
	if math.IsNaN(out[1]) || math.IsInf(out[1], 0) {
		t.Fatalf("scaling produced %v", out[1])
	}
}

// threshold is a trivial classifier: class 1 when x[0] >= 2.
type threshold struct{}

func (threshold) Predict(x []float64) int {
	if x[0] >= 2 {
		return 1
	}
	return 0
}

func TestAccuracy(t *testing.T) {
	d := toyData(t)
	if acc := Accuracy(threshold{}, d); acc != 1 {
		t.Fatalf("accuracy = %v, want 1", acc)
	}
	if acc := Accuracy(threshold{}, &Dataset{}); acc != 0 {
		t.Fatalf("accuracy on empty = %v, want 0", acc)
	}
}

func TestConfusionMatrix(t *testing.T) {
	d := toyData(t)
	cm := ConfusionMatrix(threshold{}, d, 2)
	if cm[0][0] != 4 || cm[1][1] != 4 || cm[0][1] != 0 || cm[1][0] != 0 {
		t.Fatalf("confusion = %v", cm)
	}
}

// flipper misclassifies class-0 examples with x[0] == 1.
type flipper struct{}

func (flipper) Predict(x []float64) int {
	if x[0] >= 1 {
		return 1
	}
	return 0
}

func TestEvaluateBinary(t *testing.T) {
	d := toyData(t)
	m := EvaluateBinary(flipper{}, d)
	// flipper: 2 false positives (the {1,0},{1,1} rows), everything else right.
	if math.Abs(m.Accuracy-0.75) > 1e-9 {
		t.Errorf("accuracy = %v, want 0.75", m.Accuracy)
	}
	if math.Abs(m.Precision-4.0/6.0) > 1e-9 {
		t.Errorf("precision = %v, want 2/3", m.Precision)
	}
	if math.Abs(m.Recall-1) > 1e-9 {
		t.Errorf("recall = %v, want 1", m.Recall)
	}
	if m.F1 <= 0.7 || m.F1 >= 0.9 {
		t.Errorf("F1 = %v, want 0.8", m.F1)
	}
}

func TestEvaluateBinaryDegenerate(t *testing.T) {
	// All predictions negative: precision undefined -> 0, no NaN.
	d, _ := NewDataset([][]float64{{0}, {0}}, []int{1, 1})
	type never struct{ Classifier }
	_ = never{}
	m := EvaluateBinary(classifierFunc(func([]float64) int { return 0 }), d)
	if math.IsNaN(m.Precision) || math.IsNaN(m.F1) {
		t.Fatal("degenerate metrics produced NaN")
	}
	if m.Recall != 0 || m.Accuracy != 0 {
		t.Fatalf("metrics = %+v", m)
	}
}

type classifierFunc func([]float64) int

func (f classifierFunc) Predict(x []float64) int { return f(x) }
