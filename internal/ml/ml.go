// Package ml provides the shared machine-learning plumbing for the
// queen-detection service: labeled datasets, train/test splitting,
// feature standardization and classification metrics.
//
// The two classifiers of Section V live in the subpackages ml/svm (the
// classical option) and ml/cnn (the deep option); both consume the types
// defined here.
package ml

import (
	"errors"
	"fmt"
	"math"

	"beesim/internal/rng"
)

// Dataset is a labeled collection of fixed-length feature vectors.
// Labels are class indices starting at 0.
type Dataset struct {
	X [][]float64
	Y []int
}

// NewDataset validates and wraps features and labels.
func NewDataset(x [][]float64, y []int) (*Dataset, error) {
	if len(x) != len(y) {
		return nil, fmt.Errorf("ml: %d feature rows but %d labels", len(x), len(y))
	}
	if len(x) == 0 {
		return nil, errors.New("ml: empty dataset")
	}
	dim := len(x[0])
	for i, row := range x {
		if len(row) != dim {
			return nil, fmt.Errorf("ml: row %d has %d features, want %d", i, len(row), dim)
		}
	}
	for i, label := range y {
		if label < 0 {
			return nil, fmt.Errorf("ml: negative label at %d", i)
		}
	}
	return &Dataset{X: x, Y: y}, nil
}

// Len returns the number of examples.
func (d *Dataset) Len() int { return len(d.X) }

// Dim returns the feature dimensionality.
func (d *Dataset) Dim() int {
	if len(d.X) == 0 {
		return 0
	}
	return len(d.X[0])
}

// Classes returns the number of classes (max label + 1).
func (d *Dataset) Classes() int {
	max := -1
	for _, y := range d.Y {
		if y > max {
			max = y
		}
	}
	return max + 1
}

// Split shuffles deterministically and splits into train and test sets
// with trainFrac of the examples in the training set. Both halves must
// end up non-empty.
func (d *Dataset) Split(trainFrac float64, seed uint64) (train, test *Dataset, err error) {
	if trainFrac <= 0 || trainFrac >= 1 {
		return nil, nil, fmt.Errorf("ml: train fraction %v out of (0,1)", trainFrac)
	}
	n := d.Len()
	nTrain := int(math.Round(float64(n) * trainFrac))
	if nTrain == 0 || nTrain == n {
		return nil, nil, fmt.Errorf("ml: split of %d examples at %v leaves an empty side", n, trainFrac)
	}
	perm := rng.New(seed).Perm(n)
	mk := func(idx []int) *Dataset {
		x := make([][]float64, len(idx))
		y := make([]int, len(idx))
		for i, j := range idx {
			x[i], y[i] = d.X[j], d.Y[j]
		}
		return &Dataset{X: x, Y: y}
	}
	return mk(perm[:nTrain]), mk(perm[nTrain:]), nil
}

// Scaler standardizes features to zero mean and unit variance, fitted on
// training data and applied to both splits — the usual guard against
// test-set leakage.
type Scaler struct {
	Mean []float64
	Std  []float64
}

// FitScaler computes per-feature statistics over the dataset.
func FitScaler(d *Dataset) *Scaler {
	dim := d.Dim()
	mean := make([]float64, dim)
	std := make([]float64, dim)
	for _, row := range d.X {
		for j, v := range row {
			mean[j] += v
		}
	}
	n := float64(d.Len())
	for j := range mean {
		mean[j] /= n
	}
	for _, row := range d.X {
		for j, v := range row {
			diff := v - mean[j]
			std[j] += diff * diff
		}
	}
	for j := range std {
		std[j] = math.Sqrt(std[j] / n)
		if std[j] == 0 {
			std[j] = 1 // constant feature: leave centered at zero
		}
	}
	return &Scaler{Mean: mean, Std: std}
}

// Transform returns a standardized copy of one feature vector.
func (s *Scaler) Transform(x []float64) []float64 {
	out := make([]float64, len(x))
	for j, v := range x {
		out[j] = (v - s.Mean[j]) / s.Std[j]
	}
	return out
}

// TransformAll returns a standardized copy of the dataset.
func (s *Scaler) TransformAll(d *Dataset) *Dataset {
	x := make([][]float64, d.Len())
	for i, row := range d.X {
		x[i] = s.Transform(row)
	}
	return &Dataset{X: x, Y: d.Y}
}

// Classifier is anything that predicts a class for a feature vector.
type Classifier interface {
	Predict(x []float64) int
}

// Accuracy returns the fraction of correct predictions on the dataset.
func Accuracy(c Classifier, d *Dataset) float64 {
	if d.Len() == 0 {
		return 0
	}
	correct := 0
	for i, row := range d.X {
		if c.Predict(row) == d.Y[i] {
			correct++
		}
	}
	return float64(correct) / float64(d.Len())
}

// ConfusionMatrix counts predictions: element [true][predicted].
func ConfusionMatrix(c Classifier, d *Dataset, classes int) [][]int {
	m := make([][]int, classes)
	for i := range m {
		m[i] = make([]int, classes)
	}
	for i, row := range d.X {
		pred := c.Predict(row)
		if d.Y[i] < classes && pred < classes && pred >= 0 {
			m[d.Y[i]][pred]++
		}
	}
	return m
}

// BinaryMetrics summarizes a two-class confusion matrix with class 1 as
// the positive class (queen present).
type BinaryMetrics struct {
	Accuracy  float64
	Precision float64
	Recall    float64
	F1        float64
}

// EvaluateBinary computes accuracy/precision/recall/F1 for a binary task.
func EvaluateBinary(c Classifier, d *Dataset) BinaryMetrics {
	cm := ConfusionMatrix(c, d, 2)
	tn, fp := float64(cm[0][0]), float64(cm[0][1])
	fn, tp := float64(cm[1][0]), float64(cm[1][1])
	total := tn + fp + fn + tp
	m := BinaryMetrics{}
	if total > 0 {
		m.Accuracy = (tp + tn) / total
	}
	if tp+fp > 0 {
		m.Precision = tp / (tp + fp)
	}
	if tp+fn > 0 {
		m.Recall = tp / (tp + fn)
	}
	if m.Precision+m.Recall > 0 {
		m.F1 = 2 * m.Precision * m.Recall / (m.Precision + m.Recall)
	}
	return m
}
