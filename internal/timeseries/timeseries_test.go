package timeseries

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"
)

var t0 = time.Date(2023, 4, 10, 8, 0, 0, 0, time.UTC)

func mk(t *testing.T, vals ...float64) *Series {
	t.Helper()
	s := New("power", "W")
	for i, v := range vals {
		if err := s.Append(t0.Add(time.Duration(i)*time.Minute), v); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func TestAppendOrdering(t *testing.T) {
	s := New("x", "")
	if err := s.Append(t0, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(t0.Add(-time.Second), 2); err == nil {
		t.Fatal("out-of-order append accepted")
	}
	// Equal timestamps are allowed (two sensors reporting in one instant).
	if err := s.Append(t0, 3); err != nil {
		t.Fatalf("equal-timestamp append rejected: %v", err)
	}
}

func TestMustAppendPanics(t *testing.T) {
	s := New("x", "")
	s.MustAppend(t0, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("MustAppend out of order did not panic")
		}
	}()
	s.MustAppend(t0.Add(-time.Hour), 2)
}

func TestSpanValuesLen(t *testing.T) {
	s := mk(t, 1, 2, 3)
	start, end := s.Span()
	if !start.Equal(t0) || !end.Equal(t0.Add(2*time.Minute)) {
		t.Fatalf("span = %v..%v", start, end)
	}
	if s.Len() != 3 {
		t.Fatalf("len = %d", s.Len())
	}
	vs := s.Values()
	if len(vs) != 3 || vs[0] != 1 || vs[2] != 3 {
		t.Fatalf("values = %v", vs)
	}
}

func TestEmptySpan(t *testing.T) {
	s := New("x", "")
	start, end := s.Span()
	if !start.IsZero() || !end.IsZero() {
		t.Fatal("empty span must be zero times")
	}
}

func TestValueAtSampleAndHold(t *testing.T) {
	s := mk(t, 10, 20, 30)
	if _, ok := s.ValueAt(t0.Add(-time.Second)); ok {
		t.Fatal("value before first point must not exist")
	}
	if v, ok := s.ValueAt(t0); !ok || v != 10 {
		t.Fatalf("ValueAt(t0) = %v,%v", v, ok)
	}
	if v, _ := s.ValueAt(t0.Add(90 * time.Second)); v != 20 {
		t.Fatalf("ValueAt(+90s) = %v, want 20 (hold)", v)
	}
	if v, _ := s.ValueAt(t0.Add(time.Hour)); v != 30 {
		t.Fatalf("ValueAt(+1h) = %v, want 30", v)
	}
}

func TestSlice(t *testing.T) {
	s := mk(t, 1, 2, 3, 4, 5)
	sub := s.Slice(t0.Add(time.Minute), t0.Add(3*time.Minute))
	if sub.Len() != 2 {
		t.Fatalf("slice len = %d, want 2", sub.Len())
	}
	if sub.At(0).V != 2 || sub.At(1).V != 3 {
		t.Fatalf("slice values = %v, %v", sub.At(0).V, sub.At(1).V)
	}
}

func TestResampleMeanAndSum(t *testing.T) {
	s := mk(t, 1, 3, 5, 7) // minutes 0..3
	got, err := s.Resample(2*time.Minute, AggMean)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 || got.At(0).V != 2 || got.At(1).V != 6 {
		t.Fatalf("mean resample = %v", got.Values())
	}
	sum, err := s.Resample(2*time.Minute, AggSum)
	if err != nil {
		t.Fatal(err)
	}
	if sum.At(0).V != 4 || sum.At(1).V != 12 {
		t.Fatalf("sum resample = %v", sum.Values())
	}
}

func TestResampleSkipsEmptyWindows(t *testing.T) {
	s := New("x", "")
	s.MustAppend(t0, 1)
	s.MustAppend(t0.Add(10*time.Minute), 2)
	got, err := s.Resample(time.Minute, AggMean)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 {
		t.Fatalf("resample with gap produced %d windows, want 2", got.Len())
	}
}

func TestResampleModes(t *testing.T) {
	s := mk(t, 4, 1, 9)
	check := func(mode Agg, want float64) {
		t.Helper()
		r, err := s.Resample(time.Hour, mode)
		if err != nil {
			t.Fatal(err)
		}
		if r.Len() != 1 || r.At(0).V != want {
			t.Fatalf("mode %d = %v, want %v", mode, r.Values(), want)
		}
	}
	check(AggMax, 9)
	check(AggMin, 1)
	check(AggLast, 9)
	check(AggCount, 3)
}

func TestResampleErrors(t *testing.T) {
	s := mk(t, 1)
	if _, err := s.Resample(0, AggMean); err == nil {
		t.Fatal("zero window accepted")
	}
	if _, err := s.Resample(time.Minute, Agg(99)); err == nil {
		t.Fatal("unknown aggregation accepted")
	}
}

func TestIntegrateConstantPower(t *testing.T) {
	// 2 W held for 60 s = 120 J.
	s := New("power", "W")
	s.MustAppend(t0, 2)
	s.MustAppend(t0.Add(time.Minute), 2)
	if e := s.Integrate(); math.Abs(e-120) > 1e-9 {
		t.Fatalf("integral = %v, want 120", e)
	}
}

func TestIntegrateRamp(t *testing.T) {
	// Linear ramp 0..4 W over 10 s = 20 J.
	s := New("power", "W")
	s.MustAppend(t0, 0)
	s.MustAppend(t0.Add(10*time.Second), 4)
	if e := s.Integrate(); math.Abs(e-20) > 1e-9 {
		t.Fatalf("integral = %v, want 20", e)
	}
}

func TestGaps(t *testing.T) {
	s := New("x", "")
	s.MustAppend(t0, 1)
	s.MustAppend(t0.Add(time.Minute), 1)
	s.MustAppend(t0.Add(9*time.Hour), 1) // night outage
	gaps := s.Gaps(time.Hour)
	if len(gaps) != 1 {
		t.Fatalf("gaps = %d, want 1", len(gaps))
	}
	if !gaps[0].Start.Equal(t0.Add(time.Minute)) {
		t.Fatalf("gap start = %v", gaps[0].Start)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	s := mk(t, 1.5, 2.25, 3.125)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, s); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != s.Len() {
		t.Fatalf("round trip len = %d, want %d", back.Len(), s.Len())
	}
	for i := 0; i < s.Len(); i++ {
		if back.At(i).V != s.At(i).V || !back.At(i).T.Equal(s.At(i).T) {
			t.Fatalf("point %d mismatch: %v vs %v", i, back.At(i), s.At(i))
		}
	}
}

func TestWriteCSVMultiSeries(t *testing.T) {
	a := mk(t, 1, 2)
	b := New("temp", "C")
	b.MustAppend(t0.Add(30*time.Second), 35)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, a, b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 { // header + 3 distinct timestamps
		t.Fatalf("csv lines = %d, want 4:\n%s", len(lines), buf.String())
	}
	if !strings.Contains(lines[0], "power (W)") || !strings.Contains(lines[0], "temp (C)") {
		t.Fatalf("header = %q", lines[0])
	}
	// First row: temp has no value yet.
	if !strings.HasSuffix(lines[1], ",") {
		t.Fatalf("expected empty temp cell in first row: %q", lines[1])
	}
}

func TestWriteCSVNoSeries(t *testing.T) {
	if err := WriteCSV(&bytes.Buffer{}); err == nil {
		t.Fatal("WriteCSV with no series did not error")
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Error("empty CSV accepted")
	}
	if _, err := ReadCSV(strings.NewReader("time,a,b\n")); err == nil {
		t.Error("3-column CSV accepted")
	}
	if _, err := ReadCSV(strings.NewReader("time,v\nnot-a-time,1\n")); err == nil {
		t.Error("bad timestamp accepted")
	}
	if _, err := ReadCSV(strings.NewReader("time,v\n2023-04-10T08:00:00Z,zap\n")); err == nil {
		t.Error("bad value accepted")
	}
}
